GO ?= go

.PHONY: check build vet test test-race bench bench-smoke fuzz

# check is the CI gate: formatting, static analysis, and the full test
# suite under the race detector.
check: fmt-check vet test-race

fmt-check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# bench runs the experiment-index benchmarks briefly (regression smoke,
# not a measurement run).
bench:
	$(GO) test -run=NONE -bench . -benchtime=1x ./...

# bench-smoke runs just the checkpoint/recovery benchmarks once each, so
# the durability perf path keeps compiling and running in CI without a
# full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench 'Checkpoint|Recovery|Snapshot' -benchtime=1x ./...

# fuzz gives each fuzz target a short budget.
fuzz:
	$(GO) test -run=NONE -fuzz FuzzSnapshotDecode -fuzztime 30s ./internal/dynstore
