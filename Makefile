GO ?= go

.PHONY: check build vet test test-race test-crashmatrix test-delivery test-elasticity test-audit test-parallel test-transport test-planner soak-flake soak soak-net bench bench-smoke bench-trajectory fuzz fuzz-smoke

# check is the CI gate: formatting, static analysis, the full test suite
# under the race detector (test-delivery's and test-elasticity's cases
# run within it, and are also kept as named targets for the quick loop),
# the batched/parallel hot-path equivalence suite, and short fuzz smoke
# runs of the durability codecs.
check: fmt-check vet test-race test-delivery test-elasticity test-audit test-parallel test-transport test-planner fuzz-smoke

fmt-check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# test-crashmatrix runs just the fault-injection matrix (kill / restore /
# whole-cluster restart at every pipeline stage, oracle-asserted, plus
# the restart delivery-state scenarios) under the race detector — the
# quick loop while working on the durability subsystem.
test-crashmatrix:
	$(GO) test -race -run 'TestCrashMatrix|TestReopen|TestRestart' ./internal/cluster

# test-delivery runs the push-pipeline suite — funnel policies, the
# dedup LRU, and the durable state codec — under the race detector: the
# quick loop for the delivery tier.
test-delivery:
	$(GO) test -race ./internal/delivery

# test-elasticity runs the elastic placement suite (node replacement,
# base replication, live scale-out/in, auto-healer, placement table)
# under the race detector — the quick loop for the placement subsystem.
test-elasticity:
	$(GO) test -race -run 'TestElastic|TestAddReplica|TestReprovision|TestHealer|TestReopenRebuilds|TestReopenAllBases|TestReopenRecoversDespite|TestCrashMatrix/(reprovision|scale)' ./internal/cluster ./internal/placement

# test-audit runs the state-determinism layer under the race detector:
# the audit log codec and verifier, the compose-path fingerprint
# property, and the former scale-out flake as an always-on regression.
test-audit:
	$(GO) test -race ./internal/audit
	$(GO) test -race -run 'TestComposePathsFingerprintEqual' ./internal/partition
	$(GO) test -race -run 'TestFlakeHuntScaleOutKillOriginal|TestMirrorOnlySurvivor' ./internal/cluster

# test-parallel runs the batched/parallel detection hot path's suite
# under the race detector: sequential-equivalence properties (delivered
# multiset + state fingerprints across batch sizes, worker counts, and
# GOMAXPROCS), the checkpoint-clock clamp, engine batch equivalence, and
# the allocation-budget gates — the quick loop for hot-path work.
test-parallel:
	$(GO) test -race -run 'TestParallelApply|TestCkptClock|TestCheckpointClockOutlier|TestApplyBatch|TestLatencyMetricSplit' ./internal/cluster ./internal/core
	$(GO) test -run 'ZeroAlloc|TestApplyBatchAllocBudget' ./internal/graph ./internal/core

# test-transport runs the networked tier under the race detector: the
# wire codec and fault tests in internal/transport, plus the loopback
# multi-process cluster suite (hub + socket-attached workers, connection
# drops, worker crash/restart, full restart) — the quick loop for
# transport work.
test-transport:
	$(GO) test -race ./internal/transport
	$(GO) test -race -run 'TestNetworked' ./internal/cluster

# test-planner runs the motif planner and shared-execution suite under
# the race detector: the DSL (lexer/parser/plan IR/EXPLAIN goldens), the
# interpreted planned programs against the hand-written oracles, the
# engine's shared-trie differential and live-degree feed, and the
# cluster-level multi-query differential (shared vs independent multiset
# + fingerprint equality, multi-motif kill/restore) — the quick loop for
# planner and multi-query work. The multi-motif allocation gate runs
# without race (instrumentation changes allocation counts).
test-planner:
	$(GO) test -race ./internal/motifdsl ./internal/motif
	$(GO) test -race -run 'TestEngineShared|TestEngineFeedsLiveDegrees|TestMultiQuery' ./internal/core ./internal/cluster
	$(GO) test -run 'TestApplyBatchAllocBudgetMultiMotif' ./internal/core

# soak-flake is the nightly soak of the once-flaky scale-out scenario
# (the zombie-cut bug): 200 consecutive runs, any recurrence fails.
soak-flake:
	$(GO) test -run 'TestFlakeHuntScaleOutKillOriginal' -count=200 -timeout 60m ./internal/cluster

# bench runs the experiment-index benchmarks briefly (regression smoke,
# not a measurement run). -count=1 defeats the test cache (a cached "ok"
# would mask a freshly introduced benchmark panic), and the per-package
# loop stops at the first failing package instead of letting one
# package's noise bury another's failure in a long ./... transcript.
bench:
	@set -e; for pkg in $$($(GO) list ./...); do \
		$(GO) test -run=NONE -bench . -benchtime=1x -count=1 $$pkg; \
	done

# bench-smoke runs the durability benchmarks plus the wall-clock E2E
# detection-latency probe once each, so the perf paths the trajectory
# measures keep compiling and running in CI without a full measurement
# run.
bench-smoke:
	@set -e; for pkg in $$($(GO) list ./...); do \
		$(GO) test -run=NONE -bench 'Checkpoint|Recovery|Snapshot|Reprovision|E2EDetectionLatency|ApplyBatch' -benchtime=1x -count=1 $$pkg; \
	done

# bench-trajectory is the measurement run: the pinned trajectory workload
# (T1 ingest+latency, T2 recovery replay, T3 reprovision, T4 networked
# tier, T5 shared multi-query) emits a dated
# BENCH_<date>.json artifact and gates against the newest committed one —
# nonzero exit on any metric regressing beyond its tolerance. Commit the
# artifact to extend the trajectory. See docs/BENCHMARKS.md.
bench-trajectory:
	@mkdir -p bench
	$(GO) run ./cmd/benchreport -trajectory -json bench/BENCH_$$(date +%F).json -baseline bench -tol 0.5

# soak drives the long-haul churn harness (cmd/soak): sustained ingest
# under kills/restores, reprovisions, scale-out/in, and whole-process
# restarts, then proves oracle delivered-set equivalence, a clean
# fingerprint audit, bounded log growth, and flat goroutine/heap usage.
soak:
	$(GO) run ./cmd/soak -dur 2m

# soak-net is the networked-fault variant: the same harness drives a hub
# plus socket-attached workers and the faults are random connection
# drops mid-stream and worker crashes (Abort + restart over the same
# chains), with the identical oracle/audit/resource verification.
soak-net:
	$(GO) run ./cmd/soak -net -dur 2m

# fuzz gives each fuzz target a longer budget (manual runs).
fuzz:
	$(GO) test -run=NONE -fuzz FuzzSnapshotDecode -fuzztime 30s ./internal/dynstore
	$(GO) test -run=NONE -fuzz FuzzWALReadRecord -fuzztime 30s ./internal/queue
	$(GO) test -run=NONE -fuzz FuzzDeliveryStateReadFrom -fuzztime 30s ./internal/delivery
	$(GO) test -run=NONE -fuzz FuzzAuditRecords -fuzztime 30s ./internal/audit
	$(GO) test -run=NONE -fuzz FuzzBenchReport -fuzztime 30s ./internal/benchfmt
	$(GO) test -run=NONE -fuzz FuzzTransportFrame -fuzztime 30s ./internal/transport
	$(GO) test -run=NONE -fuzz FuzzCompile -fuzztime 30s ./internal/motifdsl

# fuzz-smoke is the CI-budget version: 10s per target keeps the decoders,
# the WAL record framing, the delivery-state codec, the transport wire
# protocol, and the motif DSL compiler continuously fuzzed without
# stalling checks.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz FuzzSnapshotDecode -fuzztime 10s ./internal/dynstore
	$(GO) test -run=NONE -fuzz FuzzWALReadRecord -fuzztime 10s ./internal/queue
	$(GO) test -run=NONE -fuzz FuzzDeliveryStateReadFrom -fuzztime 10s ./internal/delivery
	$(GO) test -run=NONE -fuzz FuzzAuditRecords -fuzztime 10s ./internal/audit
	$(GO) test -run=NONE -fuzz FuzzBenchReport -fuzztime 10s ./internal/benchfmt
	$(GO) test -run=NONE -fuzz FuzzTransportFrame -fuzztime 10s ./internal/transport
	$(GO) test -run=NONE -fuzz FuzzCompile -fuzztime 10s ./internal/motifdsl
