GO ?= go

.PHONY: check build vet test test-race test-crashmatrix test-delivery test-elasticity test-audit soak-flake bench bench-smoke fuzz fuzz-smoke

# check is the CI gate: formatting, static analysis, the full test suite
# under the race detector (test-delivery's and test-elasticity's cases
# run within it, and are also kept as named targets for the quick loop),
# and short fuzz smoke runs of the durability codecs.
check: fmt-check vet test-race test-delivery test-elasticity test-audit fuzz-smoke

fmt-check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# test-crashmatrix runs just the fault-injection matrix (kill / restore /
# whole-cluster restart at every pipeline stage, oracle-asserted, plus
# the restart delivery-state scenarios) under the race detector — the
# quick loop while working on the durability subsystem.
test-crashmatrix:
	$(GO) test -race -run 'TestCrashMatrix|TestReopen|TestRestart' ./internal/cluster

# test-delivery runs the push-pipeline suite — funnel policies, the
# dedup LRU, and the durable state codec — under the race detector: the
# quick loop for the delivery tier.
test-delivery:
	$(GO) test -race ./internal/delivery

# test-elasticity runs the elastic placement suite (node replacement,
# base replication, live scale-out/in, auto-healer, placement table)
# under the race detector — the quick loop for the placement subsystem.
test-elasticity:
	$(GO) test -race -run 'TestElastic|TestAddReplica|TestReprovision|TestHealer|TestReopenRebuilds|TestReopenAllBases|TestReopenRecoversDespite|TestCrashMatrix/(reprovision|scale)' ./internal/cluster ./internal/placement

# test-audit runs the state-determinism layer under the race detector:
# the audit log codec and verifier, the compose-path fingerprint
# property, and the former scale-out flake as an always-on regression.
test-audit:
	$(GO) test -race ./internal/audit
	$(GO) test -race -run 'TestComposePathsFingerprintEqual' ./internal/partition
	$(GO) test -race -run 'TestFlakeHuntScaleOutKillOriginal|TestMirrorOnlySurvivor' ./internal/cluster

# soak-flake is the nightly soak of the once-flaky scale-out scenario
# (the zombie-cut bug): 200 consecutive runs, any recurrence fails.
soak-flake:
	$(GO) test -run 'TestFlakeHuntScaleOutKillOriginal' -count=200 -timeout 60m ./internal/cluster

# bench runs the experiment-index benchmarks briefly (regression smoke,
# not a measurement run).
bench:
	$(GO) test -run=NONE -bench . -benchtime=1x ./...

# bench-smoke runs just the checkpoint/recovery benchmarks once each, so
# the durability perf path keeps compiling and running in CI without a
# full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench 'Checkpoint|Recovery|Snapshot|Reprovision' -benchtime=1x ./...

# fuzz gives each fuzz target a longer budget (manual runs).
fuzz:
	$(GO) test -run=NONE -fuzz FuzzSnapshotDecode -fuzztime 30s ./internal/dynstore
	$(GO) test -run=NONE -fuzz FuzzWALReadRecord -fuzztime 30s ./internal/queue
	$(GO) test -run=NONE -fuzz FuzzDeliveryStateReadFrom -fuzztime 30s ./internal/delivery
	$(GO) test -run=NONE -fuzz FuzzAuditRecords -fuzztime 30s ./internal/audit

# fuzz-smoke is the CI-budget version: 10s per target keeps the decoders,
# the WAL record framing, and the delivery-state codec continuously
# fuzzed without stalling checks.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz FuzzSnapshotDecode -fuzztime 10s ./internal/dynstore
	$(GO) test -run=NONE -fuzz FuzzWALReadRecord -fuzztime 10s ./internal/queue
	$(GO) test -run=NONE -fuzz FuzzDeliveryStateReadFrom -fuzztime 10s ./internal/delivery
	$(GO) test -run=NONE -fuzz FuzzAuditRecords -fuzztime 10s ./internal/audit
