GO ?= go

.PHONY: check build vet test test-race test-crashmatrix test-elasticity bench bench-smoke fuzz fuzz-smoke

# check is the CI gate: formatting, static analysis, the full test suite
# under the race detector (test-elasticity's cases run within it, and are
# also kept as a named target for the quick loop), and short fuzz smoke
# runs of the durability codecs.
check: fmt-check vet test-race test-elasticity fuzz-smoke

fmt-check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# test-crashmatrix runs just the fault-injection matrix (kill / restore /
# whole-cluster restart at every pipeline stage, oracle-asserted) under
# the race detector — the quick loop while working on the durability
# subsystem.
test-crashmatrix:
	$(GO) test -race -run 'TestCrashMatrix|TestReopen' ./internal/cluster

# test-elasticity runs the elastic placement suite (node replacement,
# base replication, live scale-out/in, auto-healer, placement table)
# under the race detector — the quick loop for the placement subsystem.
test-elasticity:
	$(GO) test -race -run 'TestElastic|TestAddReplica|TestReprovision|TestHealer|TestReopenRebuilds|TestReopenAllBases|TestReopenRecoversDespite|TestCrashMatrix/(reprovision|scale)' ./internal/cluster ./internal/placement

# bench runs the experiment-index benchmarks briefly (regression smoke,
# not a measurement run).
bench:
	$(GO) test -run=NONE -bench . -benchtime=1x ./...

# bench-smoke runs just the checkpoint/recovery benchmarks once each, so
# the durability perf path keeps compiling and running in CI without a
# full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench 'Checkpoint|Recovery|Snapshot|Reprovision' -benchtime=1x ./...

# fuzz gives each fuzz target a longer budget (manual runs).
fuzz:
	$(GO) test -run=NONE -fuzz FuzzSnapshotDecode -fuzztime 30s ./internal/dynstore
	$(GO) test -run=NONE -fuzz FuzzWALReadRecord -fuzztime 30s ./internal/queue

# fuzz-smoke is the CI-budget version: 10s per target keeps the decoders
# and the WAL record framing continuously fuzzed without stalling checks.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz FuzzSnapshotDecode -fuzztime 10s ./internal/dynstore
	$(GO) test -run=NONE -fuzz FuzzWALReadRecord -fuzztime 10s ./internal/queue
