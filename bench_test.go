// Benchmarks regenerating the reproduction's experiment index (DESIGN.md
// §4). Each BenchmarkE* target corresponds to one quantitative claim in
// the paper's §2; cmd/benchreport runs the richer table-producing
// versions, while these integrate with `go test -bench` for regression
// tracking.
package motifstream_test

import (
	"fmt"
	"testing"
	"time"

	"motifstream"
	"motifstream/internal/baseline"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
	"motifstream/internal/statstore"
	"motifstream/internal/workload"
)

// benchGraph/benchStream are shared across benchmarks; generation is
// deterministic so reuse is sound.
var (
	benchStaticEdges []graph.Edge
	benchStream      []graph.Edge
)

func benchWorkload(b *testing.B) ([]graph.Edge, []graph.Edge) {
	b.Helper()
	if benchStaticEdges == nil {
		benchStaticEdges = workload.GenFollowGraph(workload.GraphConfig{
			Users: 10_000, AvgFollows: 25, ZipfS: 1.35, Seed: 1,
		})
		benchStream = workload.GenEventStream(workload.StreamConfig{
			Users: 10_000, Events: 100_000, Rate: 10_000,
			BurstFraction: 0.35, BurstMeanSize: 12, BurstWindow: 10 * time.Minute,
			ContentFraction: 0.25, ZipfS: 1.35, Seed: 7,
		})
	}
	return benchStaticEdges, benchStream
}

func newBenchEngine(b *testing.B, static []graph.Edge, k int, window time.Duration) (*motif.Context, motif.Program) {
	b.Helper()
	builder := &statstore.Builder{MaxInfluencers: 200}
	s := statstore.New(builder.Build(static))
	d := dynstore.New(dynstore.Options{Retention: window, MaxPerTarget: 1024})
	return &motif.Context{S: s, D: d},
		motif.NewDiamond(motif.DiamondConfig{K: k, Window: window, MaxFanout: 64})
}

// BenchmarkE1IngestSingleNode measures raw per-event detection cost: the
// paper's design target is 10^4 edge insertions/second, i.e. a budget of
// 100µs/event; a healthy result here is a few µs.
func BenchmarkE1IngestSingleNode(b *testing.B) {
	static, stream := benchWorkload(b)
	ctx, prog := newBenchEngine(b, static, 3, 10*time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := stream[i%len(stream)]
		ctx.D.Insert(e)
		prog.OnEdge(ctx, e)
	}
	b.ReportMetric(float64(time.Second.Nanoseconds())/float64(b.Elapsed().Nanoseconds()/int64(b.N)), "events/s")
}

// BenchmarkE1IngestCluster sweeps partition counts, every partition
// ingesting the full stream (the paper's fan-out design).
func BenchmarkE1IngestCluster(b *testing.B) {
	static, stream := benchWorkload(b)
	for _, partitions := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("partitions=%d", partitions), func(b *testing.B) {
			clu, err := motifstream.NewCluster(static, motifstream.ClusterOptions{
				Partitions: partitions, K: 3, Window: 10 * time.Minute,
				MaxInfluencers: 200, MaxFanout: 64, DisableSleepHours: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := clu.Publish(stream[i%len(stream)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			clu.Stop()
		})
	}
}

// BenchmarkE2GraphQuery isolates the graph-query half of the latency
// split: D lookup + S lookups + threshold intersection, no queues. The
// paper reports "a few milliseconds" on production hardware; the shape
// requirement is staying orders of magnitude below the 7s queue delay.
func BenchmarkE2GraphQuery(b *testing.B) {
	static, stream := benchWorkload(b)
	ctx, prog := newBenchEngine(b, static, 3, 10*time.Minute)
	// Pre-load D with the full stream so queries see realistic fanout.
	for _, e := range stream {
		ctx.D.Insert(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.OnEdge(ctx, stream[i%len(stream)])
	}
}

// BenchmarkE4Polling measures one full poll pass over every user's
// network — the per-tick cost that makes the polling design unacceptable
// at low periods.
func BenchmarkE4Polling(b *testing.B) {
	static, stream := benchWorkload(b)
	rec := baseline.NewPollingRecommender(baseline.PollingConfig{
		Period: time.Minute, K: 3, Window: 10 * time.Minute,
	}, static)
	for _, e := range stream[:50_000] {
		rec.Ingest(e)
	}
	last := stream[50_000-1].TS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Poll(last)
		b.StopTimer()
		// Poll consumes the pending set; refill so every iteration does
		// comparable work.
		for _, e := range stream[:5_000] {
			rec.Ingest(e)
		}
		b.StartTimer()
	}
}

// BenchmarkE4TwoHopBuild measures materializing the rejected two-hop
// design at laptop scale (the Twitter-scale number comes from the model).
func BenchmarkE4TwoHopBuild(b *testing.B) {
	static, _ := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th := baseline.BuildTwoHop(baseline.TwoHopConfig{FPRate: 0.01}, static)
		b.ReportMetric(float64(th.MemoryBytes())/(1<<20), "MiB")
	}
}

// BenchmarkE5DynstoreInsert measures D-store ingestion with pruning, the
// operation every partition performs on every firehose event.
func BenchmarkE5DynstoreInsert(b *testing.B) {
	_, stream := benchWorkload(b)
	for _, retention := range []time.Duration{time.Minute, 10 * time.Minute, time.Hour} {
		b.Run(retention.String(), func(b *testing.B) {
			d := dynstore.New(dynstore.Options{Retention: retention})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Insert(stream[i%len(stream)])
			}
			b.StopTimer()
			st := d.Stats()
			b.ReportMetric(float64(st.Bytes)/(1<<20), "residentMiB")
		})
	}
}

// BenchmarkE6Params sweeps the paper's tunables k and τ; per-event cost
// and candidate volume both fall as k rises.
func BenchmarkE6Params(b *testing.B) {
	static, stream := benchWorkload(b)
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			ctx, prog := newBenchEngine(b, static, k, 10*time.Minute)
			cands := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := stream[i%len(stream)]
				ctx.D.Insert(e)
				cands += len(prog.OnEdge(ctx, e))
			}
			b.ReportMetric(float64(cands)/float64(b.N), "candidates/event")
		})
	}
}

// BenchmarkE7InfluencerCap measures S build time and memory across caps.
func BenchmarkE7InfluencerCap(b *testing.B) {
	static, _ := benchWorkload(b)
	for _, cap := range []int{10, 50, 0} {
		name := fmt.Sprintf("cap=%d", cap)
		if cap == 0 {
			name = "cap=unlimited"
		}
		b.Run(name, func(b *testing.B) {
			var snap *statstore.Snapshot
			for i := 0; i < b.N; i++ {
				builder := &statstore.Builder{MaxInfluencers: cap}
				snap = builder.Build(static)
			}
			b.ReportMetric(float64(snap.MemoryBytes())/(1<<20), "MiB")
		})
	}
}

// BenchmarkE8Intersect is the intersection-kernel ablation (paper §2:
// "intersections can be implemented efficiently using well-known
// algorithms").
func BenchmarkE8Intersect(b *testing.B) {
	small := graph.NewAdjList(seq(0, 1_000, 7))
	large := graph.NewAdjList(seq(0, 100_000, 3))
	even := graph.NewAdjList(seq(0, 10_000, 5))
	even2 := graph.NewAdjList(seq(2, 10_000, 5))
	b.Run("merge/balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.IntersectMerge(even, even2)
		}
	})
	b.Run("gallop/balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.IntersectGallop(even, even2)
		}
	})
	b.Run("merge/skewed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.IntersectMerge(small, large)
		}
	})
	b.Run("gallop/skewed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.IntersectGallop(small, large)
		}
	})

	lists := make([]graph.AdjList, 16)
	for i := range lists {
		lists[i] = graph.NewAdjList(seq(i, 2_000, 11))
	}
	b.Run("threshold/heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.ThresholdIntersect(lists, 3)
		}
	})
	b.Run("threshold/count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.ThresholdIntersectCount(lists, 3)
		}
	})
}

// BenchmarkE9BrokerReads measures read throughput through the broker as
// replicas scale (the paper: replication increases query throughput).
func BenchmarkE9BrokerReads(b *testing.B) {
	static, stream := benchWorkload(b)
	for _, replicas := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			clu, err := motifstream.NewCluster(static, motifstream.ClusterOptions{
				Partitions: 2, Replicas: replicas, K: 3,
				Window: 10 * time.Minute, MaxFanout: 64, DisableSleepHours: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range stream[:20_000] {
				clu.Publish(e)
			}
			clu.Stop() // reads keep working after stream shutdown
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					clu.RecommendationsFor(motifstream.VertexID(i % 10_000))
					i++
				}
			})
		})
	}
}

// BenchmarkE10DSLOverhead compares the DSL-compiled diamond with the
// hand-coded one on identical streams; E10's claim is zero meaningful
// overhead.
func BenchmarkE10DSLOverhead(b *testing.B) {
	static, stream := benchWorkload(b)
	run := func(b *testing.B, prog motif.Program) {
		builder := &statstore.Builder{MaxInfluencers: 200}
		s := statstore.New(builder.Build(static))
		d := dynstore.New(dynstore.Options{Retention: 10 * time.Minute, MaxPerTarget: 1024})
		ctx := &motif.Context{S: s, D: d}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := stream[i%len(stream)]
			d.Insert(e)
			prog.OnEdge(ctx, e)
		}
	}
	b.Run("handcoded", func(b *testing.B) {
		run(b, motif.NewDiamond(motif.DiamondConfig{
			K: 3, Window: 10 * time.Minute, MaxFanout: 64,
		}))
	})
	b.Run("dsl", func(b *testing.B) {
		progs, err := motifstream.CompileMotif(`
motif "dsl-diamond" {
    match A -> B;
    match B =[follow]=> C within 10m;
    where count(B) >= 3;
    emit C to A via B;
    limit fanout 64;
}`)
		if err != nil {
			b.Fatal(err)
		}
		run(b, progs[0])
	})
}

// BenchmarkE11RecoveryReplay measures the cost of replica crash recovery:
// a replica of a 2-partition, 2-replica cluster is killed after ingesting
// the stream, then restored from its durable checkpoint and caught up by
// replaying the retained firehose. The reported events/s is catch-up
// replay throughput — how fast a rejoining detection server chews through
// the log — which bounds recovery time after real outages.
func BenchmarkE11RecoveryReplay(b *testing.B) {
	static, stream := benchWorkload(b)
	const events = 50_000
	clu, err := motifstream.NewCluster(static, motifstream.ClusterOptions{
		Partitions: 2, Replicas: 2, K: 3,
		Window: 10 * time.Minute, MaxFanout: 64, DisableSleepHours: true,
		CheckpointDir:      b.TempDir(),
		CheckpointInterval: time.Minute, // stream time
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range stream[:events] {
		if err := clu.Publish(e); err != nil {
			b.Fatal(err)
		}
	}
	defer clu.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := clu.KillReplica(0, 1); err != nil {
			b.Fatal(err)
		}
		if err := clu.RestoreReplica(0, 1); err != nil {
			b.Fatal(err)
		}
		if err := clu.AwaitReplicaLive(0, 1, 5*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(events)/perOp, "replayed-events/s")
}

// BenchmarkE2EDetectionLatency measures real wall-clock detection latency
// through the full cluster: event publish → candidate batch reaching the
// delivery tier, with no simulated queue delay. This is the process's own
// queueing and scheduling cost — the number the trajectory harness tracks
// as trajectory.detect_latency_p50/p99 — and complements E2, which
// measures only the graph-query half.
func BenchmarkE2EDetectionLatency(b *testing.B) {
	static, stream := benchWorkload(b)
	clu, err := motifstream.NewCluster(static, motifstream.ClusterOptions{
		Partitions: 4, K: 3, Window: 10 * time.Minute,
		MaxInfluencers: 200, MaxFanout: 64, DisableSleepHours: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := clu.Publish(stream[i%len(stream)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	clu.Stop() // drains consumers; every published event has been detected
	st := clu.Stats()
	b.ReportMetric(float64(st.DetectLatencyP50.Nanoseconds()), "detect-p50-ns")
	b.ReportMetric(float64(st.DetectLatencyP99.Nanoseconds()), "detect-p99-ns")
}

// BenchmarkCheckpointPause measures the apply-loop pause of a checkpoint
// cut — the synchronous capture only; encode and fsync run on the async
// writer. "full" is the old pipeline's cost (capture the entire partition
// state), "delta" the incremental pipeline's (capture only what a
// checkpoint interval's worth of traffic dirtied). The acceptance bar is
// delta ≥5x cheaper; in practice it is orders of magnitude.
func BenchmarkCheckpointPause(b *testing.B) {
	static, stream := benchWorkload(b)
	newPart := func(b *testing.B) *partition.Partition {
		p, err := partition.New(partition.Config{
			ID:          0,
			StaticEdges: static,
			Partitioner: partition.NewHashPartitioner(1),
			Dynamic:     dynstore.Options{Retention: time.Hour, MaxPerTarget: 1024},
			Programs: []motif.Program{
				motif.NewDiamond(motif.DiamondConfig{K: 3, Window: 10 * time.Minute, MaxFanout: 64}),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range stream {
			p.Apply(e)
		}
		return p
	}
	b.Run("full", func(b *testing.B) {
		p := newPart(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.CaptureState()
		}
	})
	b.Run("delta", func(b *testing.B) {
		p := newPart(b)
		p.CaptureDelta() // drain the setup's dirt so cuts measure steady state
		j := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Dirty a checkpoint interval's worth of traffic between cuts.
			for k := 0; k < 64; k++ {
				p.Apply(stream[j%len(stream)])
				j++
			}
			b.StartTimer()
			p.CaptureDelta()
		}
	})
}

// BenchmarkF1Figure1 measures the minimal end-to-end detection: the
// Figure 1 motif completion itself.
func BenchmarkF1Figure1(b *testing.B) {
	static := []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 2, Dst: 10},
		{Src: 2, Dst: 11}, {Src: 3, Dst: 11},
	}
	builder := &statstore.Builder{}
	s := statstore.New(builder.Build(static))
	d := dynstore.New(dynstore.Options{Retention: time.Hour})
	ctx := &motif.Context{S: s, D: d}
	prog := motif.NewDiamond(motif.DiamondConfig{K: 2, Window: 10 * time.Minute})
	t0 := int64(1_000_000)
	e1 := graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0}
	d.Insert(e1)
	prog.OnEdge(ctx, e1)
	e2 := graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1}
	d.Insert(e2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := prog.OnEdge(ctx, e2); len(got) != 1 {
			b.Fatalf("detection broke: %v", got)
		}
	}
}

func seq(start, n, step int) []graph.VertexID {
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = graph.VertexID(start + i*step)
	}
	return out
}
