package motifstream

import (
	"fmt"
	"time"

	"motifstream/internal/audit"
	"motifstream/internal/cluster"
	"motifstream/internal/delivery"
	"motifstream/internal/dynstore"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
	"motifstream/internal/placement"
	"motifstream/internal/queue"
)

// ClusterOptions configures the full partitioned deployment. Zero values
// select production-shaped defaults.
type ClusterOptions struct {
	// Partitions is the number of hash partitions over users (paper: 20).
	// Zero selects 20.
	Partitions int
	// Replicas per partition (fault tolerance + read throughput). Zero
	// selects 1.
	Replicas int
	// K, Window, EdgeTypes, MaxInfluencers mirror Options.
	K              int
	Window         time.Duration
	EdgeTypes      []EdgeType
	MaxInfluencers int
	// MaxFanout caps the recent actors considered per event, bounding
	// work on viral items. Zero selects 256; negative means unlimited.
	MaxFanout int
	// ExtraDSL holds additional motif declarations compiled and run on
	// every partition alongside the primary diamond. RegisterMotifs is the
	// programmatic way to build up the same set incrementally.
	ExtraDSL string
	// DisableSharing turns off the per-replica engines' shared-prefix
	// execution trie, running every planned motif's probes independently.
	// Detection output is identical either way; this is a benchmark and
	// differential-testing lever, not a correctness switch.
	DisableSharing bool
	// motifSources holds DSL sources added via RegisterMotifs; each is
	// compiled per replica alongside ExtraDSL.
	motifSources []string
	// QueueDelayMedian and QueueDelayP99 shape the simulated end-to-end
	// message-queue propagation delay (the paper's dominant latency:
	// median 7s, p99 15s). Both zero disables delay modeling. The total
	// is split evenly between the ingest hop and the delivery hop.
	QueueDelayMedian, QueueDelayP99 time.Duration
	// MaxPushesPerUserPerDay is the fatigue budget (0 selects 4).
	MaxPushesPerUserPerDay int
	// DedupTTL suppresses repeat (user,item) pushes (0 selects 24h).
	DedupTTL time.Duration
	// DisableSleepHours turns off waking-hours suppression (useful in
	// latency-focused experiments).
	DisableSleepHours bool
	// OnNotify receives each delivered push.
	OnNotify func(Notification)
	// Seed makes delay sampling reproducible.
	Seed int64
	// CheckpointDir, when non-empty, enables the recovery subsystem:
	// replicas write periodic durable checkpoints here, the firehose
	// retains its log for offset replay, and KillReplica/RestoreReplica
	// become available for crash/recovery testing and operations.
	CheckpointDir string
	// CheckpointInterval is the stream-time interval between per-replica
	// checkpoints; zero selects one minute. Ignored without CheckpointDir.
	CheckpointInterval time.Duration
	// CheckpointCompactEvery is how many incremental delta segments a
	// replica's checkpoint chain accumulates before the background
	// compactor folds it into a fresh base; zero selects 8. Compaction
	// bounds restore time and advances the firehose log's truncation
	// horizon. Ignored without CheckpointDir.
	CheckpointCompactEvery int
	// StaticSnapshotDir, when non-empty, is where the offline pipeline
	// publishes per-partition S builds (statstore snapshot files named
	// s-p%03d.snap). A replica restored through RestoreReplica reloads
	// its partition's file if present, serving the newest offline build
	// instead of the S it was constructed with.
	StaticSnapshotDir string
	// LogDir, when non-empty, stores the firehose log as a durable
	// segmented WAL on disk, making whole-cluster restarts recoverable:
	// NewCluster (or ReopenCluster) over an existing LogDir plus
	// CheckpointDir restores every replica from its checkpoint chain and
	// replays the durable log from its floor offset. Requires
	// CheckpointDir. See docs/DURABILITY.md for the durable-log contract.
	LogDir string
	// LogSyncEvery is the durable log's fsync batch in records — the
	// bound on the torn tail an OS crash can lose; zero selects 256.
	// Ignored without LogDir.
	LogSyncEvery int
	// MirrorBases is the base replication factor: every compacted base
	// checkpoint is mirrored (CRC-verified) to up to this many peer
	// replica directories of the same partition. Mirrors make a corrupt
	// base above a truncated firehose log recoverable and feed the
	// re-provisioning path (see docs/OPERATIONS.md). Zero disables.
	// Ignored without CheckpointDir.
	MirrorBases int
	// HealAfter enables the placement auto-healer: a replica that stays
	// dead longer than this is automatically re-provisioned onto a fresh
	// node (ReprovisionReplica). Zero disables. Requires CheckpointDir.
	HealAfter time.Duration
	// ApplyBatch, when > 1, turns on the batched detection hot path: each
	// replica drains its firehose subscription into batches of up to this
	// many envelopes, amortizing lock acquisition and metric updates, and
	// publishes candidates / cuts checkpoints through an ordered-commit
	// stage that preserves exact sequential semantics (see
	// docs/DURABILITY.md, "Ordering invariants under batched apply").
	// Zero or one keeps per-envelope apply.
	ApplyBatch int
	// ApplyWorkers fans candidate generation for a batch across this many
	// goroutines, sharded by target vertex. Zero or one keeps detection
	// on the consumer goroutine. Ignored unless ApplyBatch > 1.
	ApplyWorkers int
	// Listen, when non-empty, runs this deployment as a networked hub: it
	// binds a TCP listener on the address (":0" picks a free port; see
	// ListenAddr), owns the durable firehose log and the delivery tier,
	// and serves every replica slot to out-of-process workers — no replica
	// runs in the hub process. Requires LogDir and CheckpointDir. Mutually
	// exclusive with Join. See docs/OPERATIONS.md, "Multi-process
	// deployment".
	Listen string
	// Join, when non-empty, runs this deployment as a networked worker: it
	// dials the hub at the address, subscribes to the firehose over TCP
	// for the slots in OwnedReplicas, and ships detected candidates back.
	// Requires CheckpointDir and OwnedReplicas; forbids LogDir (the log
	// lives in the hub process). Use Wait to block until the hub ends the
	// stream.
	Join string
	// OwnedReplicas lists the (partition, replica) slots a worker process
	// owns. Required with Join, forbidden otherwise.
	OwnedReplicas [][2]int
	// NetDrainTimeout bounds networked shutdown flushes (the hub's wait
	// for worker reconnects to quiesce, a worker's candidate-ack wait);
	// zero selects 10s. Ignored without Listen/Join.
	NetDrainTimeout time.Duration
	// Audit enables the detection-state fingerprint audit: every
	// checkpoint cut records a CRC32C fingerprint of the replica's full
	// recoverable state, recovery compositions are cross-checked against
	// the records, scale-out go-live is gated on a fingerprint match, and
	// VerifyFingerprints cross-checks all replicas of a partition. See
	// docs/DURABILITY.md, "State determinism & fingerprint audit".
	// Requires CheckpointDir.
	Audit bool
}

// RegisterMotifs validates src — one or more motif declarations in the
// DSL of docs/QUERIES.md — and adds it to the standing-query set every
// replica runs alongside the primary diamond. Call any number of times
// before NewCluster; an invalid source is rejected without modifying the
// set. Motifs whose plans share a probe prefix (same trigger types,
// windows, and fanout) are executed once per event through the engine's
// shared trie, so large standing-query sets cost far less than N
// independent scans.
func (o *ClusterOptions) RegisterMotifs(src string) error {
	if _, err := CompileMotif(src); err != nil {
		return err
	}
	o.motifSources = append(o.motifSources, src)
	return nil
}

// Cluster is the running multi-partition deployment.
type Cluster struct {
	inner  *cluster.Cluster
	healer *placement.Healer
}

// NewCluster builds and starts the deployment with the given static follow
// edges.
func NewCluster(staticEdges []Edge, opts ClusterOptions) (*Cluster, error) {
	if opts.HealAfter > 0 && (opts.Listen != "" || opts.Join != "") {
		// The healer drives ReprovisionReplica, which is a local-lifecycle
		// operation (ErrNotLocal over the network tier).
		return nil, fmt.Errorf("motifstream: HealAfter is not supported in networked mode")
	}
	if opts.Partitions == 0 {
		opts.Partitions = 20
	}
	if opts.K == 0 {
		opts.K = 3
	}
	if opts.Window <= 0 {
		opts.Window = 10 * time.Minute
	}
	if opts.MaxFanout == 0 {
		opts.MaxFanout = 256
	} else if opts.MaxFanout < 0 {
		opts.MaxFanout = 0 // DiamondConfig's "unlimited"
	}

	var ingestDelay, deliverDelay queue.DelayModel
	if opts.QueueDelayMedian > 0 && opts.QueueDelayP99 > opts.QueueDelayMedian {
		// Two lognormal hops whose sum approximates the configured
		// end-to-end quantiles: halve the median per hop; sums of two
		// iid lognormals keep roughly the same tail ratio.
		half := queue.LognormalFromQuantiles(opts.QueueDelayMedian/2, opts.QueueDelayP99/2)
		ingestDelay, deliverDelay = half, half
	}

	newPrograms := func() []motif.Program {
		progs := []motif.Program{
			motif.NewDiamond(motif.DiamondConfig{
				K:         opts.K,
				Window:    opts.Window,
				EdgeTypes: opts.EdgeTypes,
				MaxFanout: opts.MaxFanout,
			}),
		}
		if opts.ExtraDSL != "" {
			extra, err := CompileMotif(opts.ExtraDSL)
			if err == nil {
				progs = append(progs, extra...)
			}
		}
		for _, src := range opts.motifSources {
			extra, err := CompileMotif(src)
			if err == nil {
				progs = append(progs, extra...)
			}
		}
		return progs
	}
	if opts.ExtraDSL != "" {
		// Validate once up front so a bad declaration fails construction
		// rather than being silently dropped per replica.
		if _, err := CompileMotif(opts.ExtraDSL); err != nil {
			return nil, err
		}
	}
	for _, src := range opts.motifSources {
		// RegisterMotifs validated already; revalidate in case the options
		// struct was assembled by hand across goroutines or copied stale.
		if _, err := CompileMotif(src); err != nil {
			return nil, err
		}
	}

	dopts := delivery.Options{
		DedupTTL:         opts.DedupTTL,
		MaxPerUserPerDay: opts.MaxPushesPerUserPerDay,
	}
	if opts.DisableSleepHours {
		dopts.SleepStartHour = delivery.SleepDisabled
		dopts.SleepEndHour = delivery.SleepDisabled
	}

	var onNotify func(delivery.Notification)
	if opts.OnNotify != nil {
		onNotify = func(n delivery.Notification) { opts.OnNotify(n) }
	}

	inner, err := cluster.New(cluster.Config{
		Partitions:         opts.Partitions,
		Replicas:           opts.Replicas,
		StaticEdges:        staticEdges,
		MaxInfluencers:     opts.MaxInfluencers,
		Dynamic:            dynstore.Options{Retention: opts.Window, MaxPerTarget: 1024},
		NewPrograms:        newPrograms,
		DisableSharing:     opts.DisableSharing,
		IngestDelay:        ingestDelay,
		DeliveryDelay:      deliverDelay,
		Delivery:           dopts,
		Seed:               opts.Seed,
		OnNotify:           onNotify,
		CheckpointDir:      opts.CheckpointDir,
		CheckpointInterval: opts.CheckpointInterval,
		CompactEvery:       opts.CheckpointCompactEvery,
		StaticSnapshotDir:  opts.StaticSnapshotDir,
		LogDir:             opts.LogDir,
		LogSyncEvery:       opts.LogSyncEvery,
		MirrorBases:        opts.MirrorBases,
		ApplyBatch:         opts.ApplyBatch,
		ApplyWorkers:       opts.ApplyWorkers,
		Audit:              opts.Audit,
		Listen:             opts.Listen,
		Join:               opts.Join,
		OwnedReplicas:      opts.OwnedReplicas,
		NetDrainTimeout:    opts.NetDrainTimeout,
	})
	if err != nil {
		return nil, err
	}
	inner.Start()
	c := &Cluster{inner: inner}
	if opts.HealAfter > 0 && opts.CheckpointDir != "" {
		c.healer = placement.NewHealer(inner, placement.HealerOptions{After: opts.HealAfter})
		c.healer.Start()
	}
	return c, nil
}

// ReopenCluster restarts a previously shut-down durable deployment: a
// brand-new cluster over the same LogDir and CheckpointDir restores every
// replica from its durable checkpoint chain and replays the on-disk
// firehose log until caught up. After a clean Shutdown the reopened
// cluster delivers exactly the notification set an uninterrupted run
// would have. staticEdges and opts must describe the same deployment the
// directories were written by.
func ReopenCluster(staticEdges []Edge, opts ClusterOptions) (*Cluster, error) {
	if opts.LogDir == "" {
		return nil, fmt.Errorf("motifstream: ReopenCluster requires ClusterOptions.LogDir")
	}
	return NewCluster(staticEdges, opts)
}

// Publish feeds one edge into the cluster firehose. Blocks on backpressure.
func (c *Cluster) Publish(e Edge) error { return c.inner.Publish(e) }

// Stop drains and shuts down the cluster (the auto-healer first, so no
// re-provision can race the teardown). Safe to call multiple times.
func (c *Cluster) Stop() {
	c.stopHealer()
	c.inner.Stop()
}

// Shutdown gracefully stops a durable-log cluster: everything drained, a
// final checkpoint cut per replica, and the on-disk log fsynced — the
// state a later ReopenCluster resumes from losslessly. Equivalent to Stop
// on clusters without LogDir.
func (c *Cluster) Shutdown() {
	c.stopHealer()
	c.inner.Shutdown()
}

func (c *Cluster) stopHealer() {
	if c.healer != nil {
		c.healer.Stop()
	}
}

// ListenAddr returns a networked hub's bound listen address — needed to
// hand workers a dialable -join target when Listen was ":0". Empty on
// non-hub deployments.
func (c *Cluster) ListenAddr() string { return c.inner.ListenAddr() }

// Wait blocks until the hub ends the stream, then runs the worker's full
// durable stop (final checkpoint cuts gated on candidate acks). This is a
// networked worker process's main loop — construct, Wait, exit. Errors on
// non-worker deployments.
func (c *Cluster) Wait() error { return c.inner.Wait() }

// Abort tears a networked worker down as a crash would: connections
// drop, consumers stop, no final checkpoint cut. No-op on non-workers.
func (c *Cluster) Abort() { c.inner.Abort() }

// RecommendationsFor reads the most recent recommendations for a user
// through the broker tier.
func (c *Cluster) RecommendationsFor(a VertexID) ([]Candidate, error) {
	return c.inner.RecommendationsFor(a)
}

// ClusterStats summarizes a deployment.
type ClusterStats struct {
	// Events is the number of stream edges ingested.
	Events uint64
	// Delivered is the number of push notifications sent.
	Delivered uint64
	// LatencyP50 and LatencyP99 are end-to-end (edge creation → push)
	// latency quantiles including simulated queue propagation.
	LatencyP50, LatencyP99 time.Duration
	// DetectLatencyP50 and DetectLatencyP99 are wall-clock quantiles from
	// an event's publish to its candidates reaching the delivery tier —
	// the process's real queueing and scheduling, with no simulated delay.
	// Replayed (recovery) events are excluded.
	DetectLatencyP50, DetectLatencyP99 time.Duration
	// Funnel breaks down candidate drops by pipeline stage.
	Funnel FunnelStats
	// Checkpoints counts durable replica checkpoint segments written;
	// Restores counts replicas rejoined through checkpoint + replay.
	Checkpoints, Restores uint64
	// Compactions counts delta chains folded into fresh bases by the
	// background checkpoint writers.
	Compactions uint64
	// LogTruncatedBelow is the firehose log's compaction horizon: every
	// retained offset is at or above it. Zero until the first truncation.
	LogTruncatedBelow uint64
	// CheckpointPauseP99 is the 99th-percentile apply-loop pause taken by
	// a checkpoint cut: delta capture plus any backpressure wait on the
	// async writer (encode and fsync themselves run off-loop).
	CheckpointPauseP99 time.Duration
	// Reprovisions counts node replacements (ReprovisionReplica, operator
	// or auto-healer driven); Healed is the auto-healer's share.
	Reprovisions, Healed uint64
	// BaseMirrors counts base checkpoints replicated to peer replica
	// directories; BasePoolRestores counts restores recovered from the
	// partition base pool (a mirror or a peer's base) rather than the
	// replica's own chain.
	BaseMirrors, BasePoolRestores uint64
	// FsyncsSaved counts fsyncs elided by the async writers' cut
	// coalescing.
	FsyncsSaved uint64
	// ScaleOuts and ScaleIns count live membership changes.
	ScaleOuts, ScaleIns uint64
	// DeliveryStateCuts counts durable snapshots of the delivery
	// pipeline's suppression state (dedup LRU + fatigue budgets), cut
	// beside the delivery offsets; DeliveryStateRestores counts restarts
	// that installed one, keeping a (user, item) pair pushed before the
	// restart suppressed after it.
	DeliveryStateCuts, DeliveryStateRestores uint64
	// ApplyBatches counts batches applied through the batched detection
	// hot path; ApplyBatchMean and ApplyBatchP99 summarize how many
	// envelopes each batch actually carried (bounded by
	// ClusterOptions.ApplyBatch; small values mean the consumer is
	// keeping up and draining shallow). All zero without ApplyBatch > 1.
	ApplyBatches                  uint64
	ApplyBatchMean, ApplyBatchP99 float64
	// AuditRecords counts state fingerprints recorded by the audit layer;
	// AuditMismatches counts fingerprint disagreements the pipeline
	// detected (compaction self-checks, recovery cross-checks, go-live
	// gates). Any nonzero mismatch means two recovery-equivalent states
	// differed. Zero without ClusterOptions.Audit.
	AuditRecords, AuditMismatches uint64
}

// Stats returns current cluster totals.
func (c *Cluster) Stats() ClusterStats {
	s := c.inner.Stats()
	st := ClusterStats{
		Events:                s.Events,
		Delivered:             s.Delivered,
		LatencyP50:            s.E2ELatency.P50,
		LatencyP99:            s.E2ELatency.P99,
		DetectLatencyP50:      s.DetectLatency.P50,
		DetectLatencyP99:      s.DetectLatency.P99,
		Funnel:                s.Funnel,
		Checkpoints:           s.Checkpoints,
		Restores:              s.Restores,
		Compactions:           s.Compactions,
		LogTruncatedBelow:     s.LogTruncatedBelow,
		CheckpointPauseP99:    s.CutPause.P99,
		Reprovisions:          s.Reprovisions,
		BaseMirrors:           s.BaseMirrors,
		BasePoolRestores:      s.BasePoolRestores,
		FsyncsSaved:           s.FsyncsSaved,
		ScaleOuts:             s.ScaleOuts,
		ScaleIns:              s.ScaleIns,
		DeliveryStateCuts:     s.DeliveryStateCuts,
		DeliveryStateRestores: s.DeliveryStateRestores,
		ApplyBatches:          s.ApplyBatches,
		ApplyBatchMean:        float64(s.ApplyBatchSize.Mean),
		ApplyBatchP99:         float64(s.ApplyBatchSize.P99),
		AuditRecords:          s.AuditRecords,
		AuditMismatches:       s.AuditMismatches,
	}
	if c.healer != nil {
		st.Healed = c.healer.Healed()
	}
	return st
}

// ItemCount pairs a recommended item with its recommendation count.
type ItemCount = partition.ItemCount

// TopItems returns the n globally most-recommended items, gathered by
// fanning the query out to every partition through the broker tier.
func (c *Cluster) TopItems(n int) ([]ItemCount, error) {
	return c.inner.TopItems(n)
}

// FailReplica injects a transient replica failure: reads route around it
// while it keeps consuming, so delivery continues from the surviving
// copies. Use KillReplica for real crash semantics.
func (c *Cluster) FailReplica(partition, replica int) error {
	return c.inner.FailReplica(partition, replica)
}

// RecoverReplica restores a replica failed with FailReplica.
func (c *Cluster) RecoverReplica(partition, replica int) error {
	return c.inner.RecoverReplica(partition, replica)
}

// KillReplica crashes a replica for real: it stops consuming and drops
// all of its state. Requires ClusterOptions.CheckpointDir.
func (c *Cluster) KillReplica(partition, replica int) error {
	return c.inner.KillReplica(partition, replica)
}

// RestoreReplica rejoins a killed replica: it reloads the newest durable
// checkpoint and replays the firehose from the checkpoint's offset until
// caught up, at which point it serves reads again.
func (c *Cluster) RestoreReplica(partition, replica int) error {
	return c.inner.RestoreReplica(partition, replica)
}

// ReprovisionReplica replaces a replica's node — the elastic placement
// path for machines that die and are replaced rather than resurrected:
// the old slot's state and directory are discarded entirely, and a fresh
// replica (fresh S, new generation directory) is rebuilt from the
// partition's replicated base pool plus log replay, catching up through
// the standard replaying→live machine. Requires CheckpointDir.
func (c *Cluster) ReprovisionReplica(partition, replica int) error {
	return c.inner.ReprovisionReplica(partition, replica)
}

// AddReplica grows a partition by one replica while the stream is flowing
// (live scale-out); the newcomer catches up from the partition's base
// pool plus log replay and then serves reads. Returns the new replica's
// index. Requires CheckpointDir.
func (c *Cluster) AddReplica(partition int) (int, error) {
	return c.inner.AddReplica(partition)
}

// DecommissionReplica removes a replica permanently (live scale-in); its
// index becomes a stable tombstone and is never reused. The last alive
// replica of a partition cannot be removed. Requires CheckpointDir.
func (c *Cluster) DecommissionReplica(partition, replica int) error {
	return c.inner.DecommissionReplica(partition, replica)
}

// ReplicaCount reports a partition's current replica count, including
// decommissioned tombstones (indices are stable).
func (c *Cluster) ReplicaCount(partition int) int {
	return c.inner.Replicas(partition)
}

// ReplicaState reports "live", "replaying", "dead", or "removed" for a
// replica.
func (c *Cluster) ReplicaState(partition, replica int) (string, error) {
	return c.inner.ReplicaState(partition, replica)
}

// AwaitReplicaLive blocks until the replica finishes catch-up, up to
// timeout.
func (c *Cluster) AwaitReplicaLive(partition, replica int, timeout time.Duration) error {
	return c.inner.AwaitReplicaLive(partition, replica, timeout)
}

// AuditReport is the result of a cross-replica fingerprint verification:
// totals plus every offset at which recorded fingerprints disagreed.
type AuditReport = audit.Report

// AuditMismatch is one offset at which recorded fingerprints disagree.
type AuditMismatch = audit.Mismatch

// VerifyFingerprints cross-checks every state fingerprint recorded by the
// partition's replicas: at every offset two or more sources recorded, the
// fingerprints must agree (detection is deterministic, so replicas that
// applied the same firehose prefix hold bit-identical recoverable state).
// An empty Mismatches list with a nonzero Compared count is the
// bit-equality certificate for the audited offsets. Requires
// ClusterOptions.Audit.
func (c *Cluster) VerifyFingerprints(partition int) (AuditReport, error) {
	return c.inner.VerifyFingerprints(partition)
}
