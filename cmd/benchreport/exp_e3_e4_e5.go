package main

import (
	"fmt"
	"log"
	"time"

	"motifstream/internal/baseline"
	"motifstream/internal/benchfmt"
	"motifstream/internal/delivery"
	"motifstream/internal/dynstore"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

// runE3 measures the delivery funnel: "billions of raw candidates are
// generated, yielding millions of push notifications (after eliminating
// duplicates, suppressing messages during non-waking hours, controlling
// for fatigue, etc.)" — a roughly 1000:1 reduction. The raw volume comes
// from running a permissive k=2 diamond plus the k=1 fresh-follow
// broadcast, mirroring how many raw candidates upstream stages see.
func runE3(c runConfig) []benchfmt.Metric {
	users, avgFollows, events := workloadSizes(c.quick)
	static := cachedGraph(users, avgFollows)
	stream := cachedStream(users, events)

	builder := &statstore.Builder{MaxInfluencers: 200}
	s := statstore.New(builder.Build(static))
	d := dynstore.New(dynstore.Options{Retention: 10 * time.Minute})
	ctx := &motif.Context{S: s, D: d}
	progs := []motif.Program{
		motif.NewDiamond(motif.DiamondConfig{K: 2, Window: 10 * time.Minute, MaxFanout: 64}),
		&motif.FreshFollow{MaxCandidates: 64},
	}
	pipe := delivery.NewPipeline(delivery.Options{})

	for _, e := range stream {
		d.Insert(e)
		for _, p := range progs {
			for _, cand := range p.OnEdge(ctx, e) {
				pipe.Offer(cand, 0)
			}
		}
	}

	st := pipe.Stats()
	tb := newTable("stage", "count", "% of raw")
	pct := func(n uint64) string {
		if st.Raw == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.2f%%", 100*float64(n)/float64(st.Raw))
	}
	tb.addf("raw candidates|%d|%s", st.Raw, pct(st.Raw))
	tb.addf("dropped duplicate|%d|%s", st.DroppedDuplicate, pct(st.DroppedDuplicate))
	tb.addf("dropped asleep|%d|%s", st.DroppedAsleep, pct(st.DroppedAsleep))
	tb.addf("dropped fatigue|%d|%s", st.DroppedFatigue, pct(st.DroppedFatigue))
	tb.addf("delivered pushes|%d|%s", st.Delivered, pct(st.Delivered))
	tb.print()
	fmt.Printf("  reduction factor: %.0f:1 (paper: ~1000:1, \"billions\" -> \"millions\")\n",
		safeDiv(float64(st.Raw), float64(st.Delivered)))
	fmt.Println("  expected shape: raw candidates exceed pushes by orders of magnitude;")
	fmt.Println("  duplicates dominate the drops (hot items re-trigger constantly).")
	return []benchfmt.Metric{
		{Name: "e3.raw_candidates", Value: float64(st.Raw), Unit: "count"},
		{Name: "e3.delivered", Value: float64(st.Delivered), Unit: "count"},
		{Name: "e3.reduction_factor", Value: safeDiv(float64(st.Raw), float64(st.Delivered)), Unit: "x"},
	}
}

// runE4 measures the two rejected baselines. Polling: detection latency is
// ~Period/2 versus effectively instant for streaming. Two-hop: memory is
// quadratic in degree versus linear for S+D; measured at laptop scale and
// modeled at Twitter scale.
func runE4(c runConfig) []benchfmt.Metric {
	users, avgFollows, events := workloadSizes(c.quick)
	if !c.quick {
		users, events = 8_000, 60_000 // polling is O(users × followings) per tick
	}
	static := cachedGraph(users, avgFollows)
	// The stream must span many poll periods for polling latency to be
	// measurable: ~30 minutes of stream time.
	stream := cachedSlowStream(users, events, 1_800)

	// --- Polling latency vs streaming. ---
	fmt.Println("  (a) detection latency: polling vs streaming")
	tb := newTable("design", "poll period", "mean detection latency", "p99")
	for _, period := range []time.Duration{time.Minute, 5 * time.Minute} {
		rec := baseline.NewPollingRecommender(baseline.PollingConfig{
			Period: period, K: 3, Window: 10 * time.Minute,
		}, static)
		var total time.Duration
		var worst time.Duration
		n := 0
		for _, e := range stream {
			rec.Ingest(e)
			if rec.PollDue(e.TS) {
				for _, r := range rec.Poll(e.TS) {
					total += r.DetectionLatency
					if r.DetectionLatency > worst {
						worst = r.DetectionLatency
					}
					n++
				}
			}
		}
		mean := time.Duration(0)
		if n > 0 {
			mean = total / time.Duration(n)
		}
		tb.addf("polling|%v|%v|%v", period, mean.Round(time.Second), worst.Round(time.Second))
	}
	tb.addf("streaming (this system)|n/a|~0 (detect on arrival) + queue hops|see E2")
	tb.print()

	// --- Two-hop memory vs S+D. ---
	fmt.Println("\n  (b) memory: two-hop Bloom materialization vs S+D")
	twoHop := baseline.BuildTwoHop(baseline.TwoHopConfig{FPRate: 0.01}, static)
	builder := &statstore.Builder{}
	snap := builder.Build(static)
	d := dynstore.New(dynstore.Options{Retention: 10 * time.Minute})
	for _, e := range stream {
		d.Insert(e)
	}
	ds := d.Stats()

	tb2 := newTable("scale", "design", "memory")
	tb2.addf("laptop (%d users)|two-hop Bloom|%s", users, fmtBytes(twoHop.MemoryBytes()))
	tb2.addf("laptop (%d users)|S + D (this system)|%s", users, fmtBytes(snap.MemoryBytes()+ds.Bytes))
	model := baseline.TwitterScaleModel()
	tb2.addf("Twitter 2012 (model)|two-hop Bloom|%s", fmtBytes(uint64(model.TwoHopBytes)))
	tb2.addf("Twitter 2012 (model)|S + D (this system)|%s", fmtBytes(uint64(model.StreamingBytes)))
	tb2.print()
	fmt.Printf("  measured laptop ratio: %.0fx; modeled Twitter-scale ratio: %.0fx\n",
		safeDiv(float64(twoHop.MemoryBytes()), float64(snap.MemoryBytes()+ds.Bytes)),
		safeDiv(model.TwoHopBytes, model.StreamingBytes))

	// --- Degree sweep: the asymptotics, measured. ---
	fmt.Println("\n  (c) memory vs mean degree (measured at laptop scale)")
	tb3 := newTable("mean follows", "S memory (linear)", "two-hop memory (quadratic)", "ratio")
	sweepUsers := 4_000
	if c.quick {
		sweepUsers = 2_000
	}
	for _, deg := range []int{10, 20, 40, 80} {
		g := cachedGraph(sweepUsers, deg)
		sb := (&statstore.Builder{}).Build(g)
		th := baseline.BuildTwoHop(baseline.TwoHopConfig{FPRate: 0.01}, g)
		tb3.addf("%d|%s|%s|%.1fx", deg, fmtBytes(sb.MemoryBytes()),
			fmtBytes(th.MemoryBytes()),
			safeDiv(float64(th.MemoryBytes()), float64(sb.MemoryBytes())))
	}
	tb3.print()
	fmt.Println("  expected shape: doubling mean degree doubles S but ~quadruples two-hop;")
	fmt.Println("  the paper's \"rough calculation shows this is impractical\" holds at scale.")
	return []benchfmt.Metric{
		{Name: "e4.twohop_over_streaming_mem_ratio",
			Value: safeDiv(float64(twoHop.MemoryBytes()), float64(snap.MemoryBytes()+ds.Bytes)), Unit: "x"},
	}
}

// runE5 measures D-store resident memory and detection recall across
// retention windows: "memory pressure can be alleviated by pruning the D
// data structure to only retain the most recent edges."
func runE5(c runConfig) []benchfmt.Metric {
	users, avgFollows, events := workloadSizes(c.quick)
	static := cachedGraph(users, avgFollows)
	// Retention only bites when the stream outlives it: ~2h of stream
	// time against retentions of 1m..1h.
	stream := cachedSlowStream(users, events, 7_200)
	builder := &statstore.Builder{MaxInfluencers: 200}
	s := statstore.New(builder.Build(static))

	type row struct {
		retention time.Duration
		bytes     uint64
		edges     int64
		cands     int
	}
	retentions := []time.Duration{time.Minute, 5 * time.Minute, 10 * time.Minute, 30 * time.Minute, time.Hour}
	var rows []row
	var maxCands int
	for _, ret := range retentions {
		d := dynstore.New(dynstore.Options{Retention: ret})
		ctx := &motif.Context{S: s, D: d}
		// Window is capped by retention: edges older than retention are
		// gone regardless of the program's τ.
		window := 10 * time.Minute
		if ret < window {
			window = ret
		}
		prog := motif.NewDiamond(motif.DiamondConfig{K: 3, Window: window, MaxFanout: 64})
		cands := 0
		var peakBytes uint64
		var peakEdges int64
		for i, e := range stream {
			d.Insert(e)
			cands += len(prog.OnEdge(ctx, e))
			if i%5000 == 0 {
				d.Sweep(e.TS)
				st := d.Stats()
				if st.Bytes > peakBytes {
					peakBytes = st.Bytes
					peakEdges = st.Edges
				}
			}
		}
		rows = append(rows, row{ret, peakBytes, peakEdges, cands})
		if cands > maxCands {
			maxCands = cands
		}
	}

	tb := newTable("retention", "peak D edges", "peak D memory", "candidates", "recall vs 1h")
	for _, r := range rows {
		tb.addf("%v|%d|%s|%d|%.1f%%", r.retention, r.edges, fmtBytes(r.bytes), r.cands,
			100*safeDiv(float64(r.cands), float64(maxCands)))
	}
	tb.print()
	fmt.Println("  expected shape: memory grows with retention and saturates once retention")
	fmt.Println("  exceeds the stream span; recall saturates once retention >= the 10m window.")
	var out []benchfmt.Metric
	for _, r := range rows {
		if r.retention == 10*time.Minute {
			out = append(out, benchfmt.Metric{
				Name: "e5.peak_d_bytes_10m", Value: float64(r.bytes), Unit: "bytes",
				Better: benchfmt.LowerIsBetter,
			})
		}
	}
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%.1f TiB", float64(b)/(1<<40))
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

var _ = log.Fatal
