package main

import (
	"fmt"
	"math/rand"
	"time"

	"motifstream/internal/benchfmt"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

// runE6 sweeps the paper's two tunables: "if more than k of them follow an
// account C within a time period τ ... (where k and τ are tunable
// parameters)" with production k=3. Candidate volume should fall sharply
// as k rises or τ shrinks.
func runE6(c runConfig) []benchfmt.Metric {
	users, avgFollows, events := workloadSizes(c.quick)
	static := cachedGraph(users, avgFollows)
	// τ only matters when the stream spans several windows: ~1h of
	// stream time against 5m/10m windows.
	stream := cachedSlowStream(users, events, 3_600)
	builder := &statstore.Builder{MaxInfluencers: 200}
	s := statstore.New(builder.Build(static))

	var out []benchfmt.Metric
	tb := newTable("k", "window", "candidates", "distinct users", "per-event work (ns)")
	for _, k := range []int{2, 3, 4} {
		for _, window := range []time.Duration{5 * time.Minute, 10 * time.Minute} {
			d := dynstore.New(dynstore.Options{Retention: window})
			ctx := &motif.Context{S: s, D: d}
			prog := motif.NewDiamond(motif.DiamondConfig{K: k, Window: window, MaxFanout: 64})
			cands := 0
			seenUsers := make(map[graph.VertexID]bool)
			start := time.Now()
			for _, e := range stream {
				d.Insert(e)
				for _, cand := range prog.OnEdge(ctx, e) {
					cands++
					seenUsers[cand.User] = true
				}
			}
			perEvent := time.Since(start).Nanoseconds() / int64(len(stream))
			tb.addf("%d|%v|%d|%d|%d", k, window, cands, len(seenUsers), perEvent)
			if k == 3 && window == 10*time.Minute {
				out = append(out,
					benchfmt.Metric{Name: "e6.candidates_k3_w10m", Value: float64(cands), Unit: "count"},
					benchfmt.Metric{Name: "e6.per_event_ns_k3_w10m", Value: float64(perEvent), Unit: "ns",
						Better: benchfmt.LowerIsBetter, Tolerance: latencyTol})
			}
		}
	}
	tb.print()
	fmt.Println("  expected shape: volume drops sharply with rising k and shrinking window;")
	fmt.Println("  production chose k=3 to trade reach for precision.")
	return out
}

// runE7 sweeps the influencer cap: "we have found it more effective to
// limit the number of 'influencers' (e.g., B's) each user can have. This
// has the additional benefit of limiting the size of the S data
// structures held in memory."
func runE7(c runConfig) []benchfmt.Metric {
	users, avgFollows, events := workloadSizes(c.quick)
	static := cachedGraph(users, avgFollows)
	stream := cachedStream(users, events)

	type row struct {
		cap    int
		sEdges uint64
		sBytes uint64
		cands  int
	}
	caps := []int{5, 10, 25, 50, 100, 0}
	var rows []row
	var uncapped int
	for _, capN := range caps {
		builder := &statstore.Builder{MaxInfluencers: capN}
		snap := builder.Build(static)
		s := statstore.New(snap)
		d := dynstore.New(dynstore.Options{Retention: 10 * time.Minute})
		ctx := &motif.Context{S: s, D: d}
		prog := motif.NewDiamond(motif.DiamondConfig{K: 3, Window: 10 * time.Minute, MaxFanout: 64})
		cands := 0
		for _, e := range stream {
			d.Insert(e)
			cands += len(prog.OnEdge(ctx, e))
		}
		rows = append(rows, row{capN, snap.NumEdges(), snap.MemoryBytes(), cands})
		if capN == 0 {
			uncapped = cands
		}
	}
	tb := newTable("influencer cap", "S edges", "S memory", "candidates", "recall vs uncapped")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.cap)
		if r.cap == 0 {
			label = "unlimited"
		}
		tb.addf("%s|%d|%s|%d|%.1f%%", label, r.sEdges, fmtBytes(r.sBytes), r.cands,
			100*safeDiv(float64(r.cands), float64(uncapped)))
	}
	tb.print()
	fmt.Println("  expected shape: S memory grows with the cap and saturates at the true")
	fmt.Println("  degree distribution; recall is already high at moderate caps because")
	fmt.Println("  the cap keeps each user's strongest (most recent) followings.")
	var out []benchfmt.Metric
	for _, r := range rows {
		if r.cap == 50 {
			out = append(out, benchfmt.Metric{
				Name: "e7.s_bytes_cap50", Value: float64(r.sBytes), Unit: "bytes",
				Better: benchfmt.LowerIsBetter,
			})
		}
	}
	return out
}

// runE8 is the intersection-kernel ablation behind "intersections can be
// implemented efficiently using well-known algorithms": two-pointer merge
// vs galloping vs heap-based k-threshold vs a counting-map baseline.
func runE8(c runConfig) []benchfmt.Metric {
	r := rand.New(rand.NewSource(1))
	genList := func(n int, space int64) graph.AdjList {
		ids := make([]graph.VertexID, n)
		for i := range ids {
			ids[i] = graph.VertexID(r.Int63n(space))
		}
		return graph.NewAdjList(ids)
	}
	iters := 2000
	if c.quick {
		iters = 400
	}

	var out []benchfmt.Metric
	fmt.Println("  (a) exact two-list intersection, 1M ID space")
	tb := newTable("|a|", "|b|", "merge", "gallop", "winner")
	for _, shape := range []struct{ a, b int }{
		{1_000, 1_000}, {1_000, 10_000}, {100, 100_000}, {10_000, 100_000},
	} {
		a, b := genList(shape.a, 1_000_000), genList(shape.b, 1_000_000)
		mergeNS := timeOp(iters, func() { graph.IntersectMerge(a, b) })
		gallopNS := timeOp(iters, func() { graph.IntersectGallop(a, b) })
		winner := "merge"
		if gallopNS < mergeNS {
			winner = "gallop"
		}
		tb.addf("%d|%d|%v|%v|%s", shape.a, shape.b,
			time.Duration(mergeNS), time.Duration(gallopNS), winner)
		if shape.a == 100 && shape.b == 100_000 {
			out = append(out, benchfmt.Metric{Name: "e8.gallop_skewed_ns", Value: float64(gallopNS),
				Unit: "ns", Better: benchfmt.LowerIsBetter, Tolerance: latencyTol})
		}
	}
	tb.print()

	fmt.Println("\n  (b) k-of-n threshold intersection (n lists of 2k over 100k IDs)")
	tb2 := newTable("n lists", "k", "heap merge", "counting map", "speedup")
	for _, n := range []int{4, 8, 16, 32} {
		lists := make([]graph.AdjList, n)
		for i := range lists {
			lists[i] = genList(2_000, 100_000)
		}
		k := 3
		heapNS := timeOp(iters/4, func() { graph.ThresholdIntersect(lists, k) })
		countNS := timeOp(iters/4, func() { graph.ThresholdIntersectCount(lists, k) })
		tb2.addf("%d|%d|%v|%v|%.1fx", n, k,
			time.Duration(heapNS), time.Duration(countNS),
			safeDiv(float64(countNS), float64(heapNS)))
	}
	tb2.print()
	fmt.Println("  expected shape: galloping wins when list sizes are highly skewed (the")
	fmt.Println("  celebrity case); the sorted heap merge beats hashing at all n.")
	return out
}

// timeOp returns mean ns/op over iters calls.
func timeOp(iters int, fn func()) int64 {
	if iters < 1 {
		iters = 1
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start).Nanoseconds() / int64(iters)
}
