package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"motifstream/internal/benchfmt"
	"motifstream/internal/broker"
	"motifstream/internal/cluster"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/motifdsl"
	"motifstream/internal/statstore"
)

// runE9 measures the replication claim: "we can replicate the partitions
// for both fault tolerance and increased query throughput." Read
// throughput should scale with replicas, and killing a replica must not
// interrupt service.
func runE9(c runConfig) []benchfmt.Metric {
	users, avgFollows, events := workloadSizes(c.quick)
	if !c.quick {
		events = 60_000
	}
	static := cachedGraph(users, avgFollows)
	stream := cachedStream(users, events)

	newCluster := func(replicas int) *cluster.Cluster {
		clu, err := cluster.New(cluster.Config{
			Partitions:     4,
			Replicas:       replicas,
			StaticEdges:    static,
			MaxInfluencers: 200,
			Dynamic:        dynstore.Options{Retention: 10 * time.Minute},
			NewPrograms: func() []motif.Program {
				return []motif.Program{motif.NewDiamond(motif.DiamondConfig{
					K: 3, Window: 10 * time.Minute, MaxFanout: 64,
				})}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		clu.Start()
		for _, e := range stream {
			if err := clu.Publish(e); err != nil {
				log.Fatal(err)
			}
		}
		clu.Stop()
		return clu
	}

	// In-process replica reads take nanoseconds, so raw reads would never
	// show the paper's replication benefit (its replicas are separate
	// servers with finite capacity). capacityReplica models that: one
	// request at a time per replica, with a fixed per-read service time.
	fmt.Println("  (a) broker read throughput vs replicas (32 readers, 500µs service time/replica)")
	var out []benchfmt.Metric
	tb := newTable("replicas", "reads/s", "scaling vs 1 replica")
	var base float64
	for _, replicas := range []int{1, 2, 3} {
		clu := newCluster(replicas)
		groups := make([][]broker.Replica, 4)
		for pid := 0; pid < 4; pid++ {
			for rep := 0; rep < replicas; rep++ {
				p, err := clu.Replica(pid, rep)
				if err != nil {
					log.Fatal(err)
				}
				groups[pid] = append(groups[pid], &capacityReplica{inner: p, service: 500 * time.Microsecond})
			}
		}
		capped, err := broker.New(clu.Partitioner(), groups)
		if err != nil {
			log.Fatal(err)
		}
		const readers = 32
		perReader := 500
		if c.quick {
			perReader = 200
		}
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perReader; i++ {
					a := graph.VertexID((w*perReader + i) % users)
					if _, err := capped.RecommendationsFor(a); err != nil {
						log.Fatal(err)
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		rate := float64(readers*perReader) / elapsed.Seconds()
		if replicas == 1 {
			base = rate
		}
		tb.addf("%d|%.0f|%.2fx", replicas, rate, rate/base)
		if replicas == 3 {
			out = append(out, benchfmt.Metric{Name: "e9.read_scaling_r3", Value: rate / base,
				Unit: "x", Better: benchfmt.HigherIsBetter})
		}
	}
	tb.print()

	fmt.Println("\n  (b) failover continuity with 2 replicas")
	clu := newCluster(2)
	// Probe a user that actually has recommendations.
	probe := graph.VertexID(0)
	for a := graph.VertexID(0); a < graph.VertexID(users); a++ {
		if recs, err := clu.RecommendationsFor(a); err == nil && len(recs) > 0 {
			probe = a
			break
		}
	}
	before, err := clu.RecommendationsFor(probe)
	if err != nil {
		log.Fatal(err)
	}
	pid := clu.Partitioner().PartitionOf(probe)
	if err := clu.FailReplica(pid, 0); err != nil {
		log.Fatal(err)
	}
	after, err := clu.RecommendationsFor(probe)
	if err != nil {
		log.Fatalf("reads failed after single-replica failure: %v", err)
	}
	fmt.Printf("  replica 0 of partition %d failed: reads continue (%d results before, %d after) ✔\n",
		pid, len(before), len(after))
	if err := clu.FailReplica(pid, 1); err != nil {
		log.Fatal(err)
	}
	if _, err := clu.RecommendationsFor(probe); err == nil {
		log.Fatal("expected an error with every replica down")
	}
	fmt.Println("  both replicas failed: reads error out as expected ✔")
	fmt.Println("  expected shape: read throughput grows with replica count; single-replica")
	fmt.Println("  failure is invisible to clients.")
	return out
}

// runE10 verifies the declarative path of §3: a DSL-compiled diamond must
// produce byte-for-byte the same candidates as the hand-coded program, at
// negligible runtime overhead (compilation happens once, off the hot
// path).
func runE10(c runConfig) []benchfmt.Metric {
	users, avgFollows, events := workloadSizes(c.quick)
	static := cachedGraph(users, avgFollows)
	stream := cachedStream(users, events)
	builder := &statstore.Builder{MaxInfluencers: 200}
	s := statstore.New(builder.Build(static))

	const src = `
motif "dsl-diamond" {
    match A -> B;
    match B =[follow]=> C within 10m;
    where count(B) >= 3;
    emit C to A via B;
    limit fanout 64;
}`
	prog, err := motifdsl.CompileOne(src)
	if err != nil {
		log.Fatal(err)
	}
	hand := motif.NewDiamond(motif.DiamondConfig{
		K: 3, Window: 10 * time.Minute, MaxFanout: 64,
	})

	run := func(p motif.Program) (keys []string, elapsed time.Duration) {
		d := dynstore.New(dynstore.Options{Retention: 10 * time.Minute})
		ctx := &motif.Context{S: s, D: d}
		start := time.Now()
		for _, e := range stream {
			d.Insert(e)
			for _, cand := range p.OnEdge(ctx, e) {
				keys = append(keys, fmt.Sprintf("%d>%d@%d", cand.User, cand.Item, cand.Trigger.TS))
			}
		}
		elapsed = time.Since(start)
		sort.Strings(keys)
		return keys, elapsed
	}

	// Alternate runs and keep each program's best time: on a small
	// machine, run order (cache warmth, GC debt) would otherwise bias the
	// comparison.
	handKeys, handTime := run(hand)
	dslKeys, dslTime := run(prog)
	if _, t2 := run(hand); t2 < handTime {
		handTime = t2
	}
	if _, t2 := run(prog); t2 < dslTime {
		dslTime = t2
	}

	same := len(handKeys) == len(dslKeys)
	if same {
		for i := range handKeys {
			if handKeys[i] != dslKeys[i] {
				same = false
				break
			}
		}
	}
	tb := newTable("program", "candidates", "run time", "identical output")
	tb.addf("hand-coded diamond|%d|%v|-", len(handKeys), handTime.Round(time.Millisecond))
	tb.addf("DSL-compiled|%d|%v|%v", len(dslKeys), dslTime.Round(time.Millisecond), same)
	tb.print()
	if !same {
		log.Fatal("E10 FAILED: DSL and hand-coded candidates differ")
	}
	overhead := 100 * (dslTime.Seconds() - handTime.Seconds()) / handTime.Seconds()
	fmt.Printf("  runtime overhead of the declarative path: %+.1f%% (compile-once, same engine)\n", overhead)
	fmt.Println("  expected shape: identical candidates; overhead within noise.")
	return []benchfmt.Metric{
		{Name: "e10.dsl_overhead_pct", Value: overhead, Unit: "%"},
	}
}

// capacityReplica wraps a replica with a per-server capacity model: one
// in-flight read at a time, each costing a fixed service time. This is
// what makes replication's read-throughput benefit visible in-process.
type capacityReplica struct {
	inner   broker.Replica
	service time.Duration
	mu      sync.Mutex
}

func (r *capacityReplica) ID() int { return r.inner.ID() }

func (r *capacityReplica) RecommendationsFor(a graph.VertexID) []motif.Candidate {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.inner.RecommendationsFor(a)
	// Sleep while holding the replica's lock: the replica is busy for the
	// service time (requests to it queue), but the host CPU is free, so
	// independent replicas overlap — the property replication buys. A
	// busy-wait would serialize on host cores instead and hide the effect
	// entirely on small machines.
	time.Sleep(r.service)
	return out
}
