package main

import (
	"fmt"
	"log"
	"time"

	"motifstream/internal/benchfmt"
	"motifstream/internal/cluster"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/motif"
	"motifstream/internal/queue"
	"motifstream/internal/statstore"
)

// runF1 replays the paper's Figure 1 walkthrough: with k=2, creating edge
// B2→C2 must recommend C2 to exactly A2.
func runF1(runConfig) []benchfmt.Metric {
	const (
		a1 = graph.VertexID(iota + 1)
		a2
		a3
		b1
		b2
		c2
	)
	static := []graph.Edge{
		{Src: a1, Dst: b1}, {Src: a2, Dst: b1},
		{Src: a2, Dst: b2}, {Src: a3, Dst: b2},
	}
	builder := &statstore.Builder{}
	s := statstore.New(builder.Build(static))
	d := dynstore.New(dynstore.Options{Retention: 10 * time.Minute})
	ctx := &motif.Context{S: s, D: d}
	prog := motif.NewDiamond(motif.DiamondConfig{K: 2, Window: 10 * time.Minute})

	t0 := int64(1_000_000)
	e1 := graph.Edge{Src: b1, Dst: c2, Type: graph.Follow, TS: t0}
	e2 := graph.Edge{Src: b2, Dst: c2, Type: graph.Follow, TS: t0 + 120_000}

	d.Insert(e1)
	first := prog.OnEdge(ctx, e1)
	d.Insert(e2)
	second := prog.OnEdge(ctx, e2)

	tb := newTable("step", "paper says", "measured")
	tb.addf("B1→C2 arrives|no motif yet|%d candidates", len(first))
	got := "none"
	if len(second) == 1 && second[0].User == a2 && second[0].Item == c2 {
		got = fmt.Sprintf("push C2 to A2 (via %d supporting B's)", len(second[0].Via))
	}
	tb.addf("B2→C2 arrives|push C2 to A2|%s", got)
	tb.print()
	if len(first) != 0 || len(second) != 1 || second[0].User != a2 || second[0].Item != c2 {
		log.Fatalf("F1 FAILED: first=%v second=%v", first, second)
	}
	fmt.Println("  shape holds: the closing edge recommends C2 to exactly A2 ✔")
	return nil
}

// runE1 measures sustained ingestion throughput as partitions scale. The
// paper's design target is 10^4 edge insertions per second; every
// partition consumes the full stream, so added partitions add detection
// parallelism at the cost of fan-out work.
func runE1(c runConfig) []benchfmt.Metric {
	users, avgFollows, events := workloadSizes(c.quick)
	static := cachedGraph(users, avgFollows)
	stream := cachedStream(users, events)
	parts := []int{1, 2, 4, 8, 16, 32}
	if c.quick {
		parts = []int{1, 4, 16}
	}

	var out []benchfmt.Metric
	tb := newTable("partitions", "events/s", "vs target 10^4/s", "wall")
	for _, p := range parts {
		clu, err := cluster.New(cluster.Config{
			Partitions:     p,
			StaticEdges:    static,
			MaxInfluencers: 200,
			Dynamic:        dynstore.Options{Retention: 10 * time.Minute},
			NewPrograms: func() []motif.Program {
				return []motif.Program{motif.NewDiamond(motif.DiamondConfig{
					K: 3, Window: 10 * time.Minute, MaxFanout: 64,
				})}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		clu.Start()
		wall := cluster.Elapsed(func() {
			for _, e := range stream {
				if err := clu.Publish(e); err != nil {
					log.Fatal(err)
				}
			}
			clu.Stop()
		})
		eps := float64(len(stream)) / wall.Seconds()
		tb.addf("%d|%.0f|%.1fx|%v", p, eps, eps/1e4, wall.Round(time.Millisecond))
		out = append(out, benchfmt.Metric{
			Name:  fmt.Sprintf("e1.ingest_events_per_sec.p%d", p),
			Value: eps, Unit: "events/s", Better: benchfmt.HigherIsBetter,
		})
	}
	tb.print()
	fmt.Println("  expected shape: comfortably above 10^4/s; throughput degrades gently")
	fmt.Println("  with partition count because each partition ingests the full stream.")
	return out
}

// runE2 reproduces the latency split: "median 7s, p99 15s ... nearly all
// the latency comes from event propagation delays in various message
// queues; the actual graph queries take only a few milliseconds."
func runE2(c runConfig) []benchfmt.Metric {
	users, avgFollows, events := workloadSizes(c.quick)
	if !c.quick {
		events = 100_000 // latency shape converges quickly
	}
	static := cachedGraph(users, avgFollows)
	stream := cachedStream(users, events)

	reg := metrics.NewRegistry()
	hop := queue.LognormalFromQuantiles(3500*time.Millisecond, 7500*time.Millisecond)
	clu, err := cluster.New(cluster.Config{
		Partitions:     4,
		StaticEdges:    static,
		MaxInfluencers: 200,
		Dynamic:        dynstore.Options{Retention: 10 * time.Minute},
		NewPrograms: func() []motif.Program {
			return []motif.Program{motif.NewDiamond(motif.DiamondConfig{
				K: 3, Window: 10 * time.Minute, MaxFanout: 64,
			})}
		},
		IngestDelay:   hop,
		DeliveryDelay: hop,
		Metrics:       reg,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	clu.Start()
	for _, e := range stream {
		if err := clu.Publish(e); err != nil {
			log.Fatal(err)
		}
	}
	clu.Stop()

	e2e := clu.Stats().E2ELatency
	query := reg.Histogram("engine.query_latency").Snapshot()

	tb := newTable("metric", "paper", "measured")
	tb.addf("end-to-end median|~7s|%v", e2e.P50.Round(100*time.Millisecond))
	tb.addf("end-to-end p99|~15s|%v", e2e.P99.Round(100*time.Millisecond))
	tb.addf("graph query p50|few ms|%v", query.P50.Round(10*time.Microsecond))
	tb.addf("graph query p99|few ms|%v", query.P99.Round(10*time.Microsecond))
	tb.print()
	frac := 1 - query.P50.Seconds()/e2e.P50.Seconds()
	fmt.Printf("  queue propagation accounts for %.3f%% of median end-to-end latency\n", 100*frac)
	fmt.Println("  expected shape: seconds-scale e2e dominated by queue hops; graph work stays sub-ms..ms.")
	return []benchfmt.Metric{
		{Name: "e2.e2e_latency_p50_ns", Value: float64(e2e.P50), Unit: "ns", Better: benchfmt.LowerIsBetter},
		{Name: "e2.e2e_latency_p99_ns", Value: float64(e2e.P99), Unit: "ns", Better: benchfmt.LowerIsBetter},
		{Name: "e2.query_latency_p50_ns", Value: float64(query.P50), Unit: "ns", Better: benchfmt.LowerIsBetter, Tolerance: latencyTol},
		{Name: "e2.query_latency_p99_ns", Value: float64(query.P99), Unit: "ns", Better: benchfmt.LowerIsBetter, Tolerance: latencyTol},
	}
}
