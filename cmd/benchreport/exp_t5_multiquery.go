package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"motifstream/internal/benchfmt"
	"motifstream/internal/cluster"
	"motifstream/internal/delivery"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/motifdsl"
)

// t5Motifs is the pinned standing-query count; t5DSL must compile to
// exactly this many programs or the run aborts.
const t5Motifs = 100

// t5DSL generates the pinned 100-motif standing-query set: four follow
// families (one window+fanout pair each, thresholds k=2..21), one content
// family with per-type windows (k=2..11), and ten k=1 broadcasts. Every
// family compiles to one share group — 6 groups over 100 programs — so the
// shared trie runs 6 probe prefixes per event where independent execution
// runs 100. Emission is capped at 4 candidates per motif so the measured
// difference is probe work, not notification fan-out.
func t5DSL() string {
	var sb strings.Builder
	families := []struct {
		window string
		fanout int
	}{{"5m", 64}, {"10m", 64}, {"20m", 32}, {"10m", 128}}
	for fi, f := range families {
		for k := 2; k <= 21; k++ {
			fmt.Fprintf(&sb, `
motif "follow-f%d-k%d" {
    match A -> B;
    match B =[follow]=> C within %s;
    where count(B) >= %d;
    emit C to A via B;
    limit fanout %d;
    limit candidates 4;
}`, fi, k, f.window, k, f.fanout)
		}
	}
	for k := 2; k <= 11; k++ {
		fmt.Fprintf(&sb, `
motif "content-k%d" {
    match A -> B;
    match B =[retweet]=> C within 5m;
    match B =[favorite]=> C within 20m;
    where count(B) >= %d;
    emit C to A via B;
    limit fanout 64;
    limit candidates 4;
}`, k, k)
	}
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&sb, `
motif "broadcast-%d" {
    match A -> B;
    match B =[follow]=> C;
    where count(B) >= 1;
    emit C to A;
    limit candidates 4;
}`, i)
	}
	return sb.String()
}

// t5Note identifies one delivered notification for multiset comparison.
type t5Note struct {
	user, item graph.VertexID
}

// runT5 measures shared multi-query execution: the pinned stream ingested
// by the trajectory deployment running 100 standing motifs, once with the
// shared-prefix trie and once with every motif probing independently. The
// delivered notification multisets must be identical; the headline numbers
// are shared-mode ingest throughput, the shared fraction of per-event
// scans, the speedup over independent execution, and the statistics-free
// planning cost per motif (hard-gated at 1ms).
func runT5(c runConfig) []benchfmt.Metric {
	users, _, events := workloadSizes(c.quick)
	// A tenth of the pinned stream: the independent baseline runs 100 probe
	// chains per event, so the full stream would cost tens of minutes for
	// no extra signal. The slice is pinned (a prefix of the same cached
	// stream), keeping the metrics comparable across runs.
	stream := cachedStream(users, events)[:events/10]
	src := t5DSL()

	planStart := time.Now()
	progs, err := motifdsl.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	planWall := time.Since(planStart)
	if len(progs) != t5Motifs {
		log.Fatalf("T5: motif set compiled to %d programs, want %d", len(progs), t5Motifs)
	}
	perMotif := planWall / t5Motifs
	if perMotif > time.Millisecond {
		log.Fatalf("T5: planning took %v per motif; the statistics-free planner budget is 1ms", perMotif)
	}
	newPrograms := func() []motif.Program {
		ps, err := motifdsl.Compile(src)
		if err != nil {
			panic(err)
		}
		return ps
	}

	type result struct {
		eps            float64
		notes          map[t5Note]int
		sharedFraction float64
		delivered      uint64
	}
	runOne := func(disable bool) result {
		dir, err := os.MkdirTemp("", "trajectory-t5-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg := trajectoryConfig(c, dir)
		cfg.NewPrograms = newPrograms
		cfg.DisableSharing = disable
		var mu sync.Mutex
		notes := map[t5Note]int{}
		cfg.OnNotify = func(n delivery.Notification) {
			mu.Lock()
			notes[t5Note{n.Candidate.User, n.Candidate.Item}]++
			mu.Unlock()
		}
		clu, err := cluster.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		clu.Start()
		wall := cluster.Elapsed(func() {
			for _, e := range stream {
				if err := clu.Publish(e); err != nil {
					log.Fatal(err)
				}
			}
			clu.Stop() // the drain is part of sustained throughput
		})
		p, err := clu.Replica(0, 0)
		if err != nil {
			log.Fatal(err)
		}
		return result{
			eps:            float64(len(stream)) / wall.Seconds(),
			notes:          notes,
			sharedFraction: p.Engine().Sharing().SharedFraction(),
			delivered:      clu.Stats().Delivered,
		}
	}

	indep := runOne(true)
	shared := runOne(false)

	// The trie is an execution strategy, not a semantics change: the two
	// runs must deliver the same notification multiset.
	if len(shared.notes) == 0 {
		log.Fatal("T5: vacuous run — no notifications delivered")
	}
	for k, n := range indep.notes {
		if shared.notes[k] != n {
			log.Fatalf("T5: notification %v delivered %d times shared, %d independent", k, shared.notes[k], n)
		}
	}
	for k := range shared.notes {
		if _, ok := indep.notes[k]; !ok {
			log.Fatalf("T5: shared run delivered %v, independent did not", k)
		}
	}

	speedup := shared.eps / indep.eps

	tb := newTable("metric", "value")
	tb.addf("standing motifs|%d (%d share groups)", t5Motifs, 6)
	tb.addf("planning cost|%v per motif (budget 1ms)", perMotif.Round(time.Microsecond))
	tb.addf("shared fraction of per-event scans|%.2f", shared.sharedFraction)
	tb.addf("ingest throughput (shared trie)|%.0f events/s", shared.eps)
	tb.addf("ingest throughput (independent)|%.0f events/s", indep.eps)
	tb.addf("speedup|%.1fx", speedup)
	tb.addf("delivered pushes (both runs)|%d", shared.delivered)
	tb.print()
	fmt.Println("  expected shape: >= 3x over independent scans — 6 probe prefixes run per")
	fmt.Println("  event instead of 100, with identical delivered notifications.")
	if speedup < 3 {
		fmt.Printf("  WARNING: speedup %.1fx is below the 3x design target\n", speedup)
	}

	return []benchfmt.Metric{
		{Name: "multiquery.ingest_events_per_sec", Value: shared.eps, Unit: "events/s", Better: benchfmt.HigherIsBetter},
		{Name: "multiquery.shared_fraction", Value: shared.sharedFraction, Unit: "fraction", Better: benchfmt.HigherIsBetter},
		{Name: "multiquery.speedup_vs_independent", Value: speedup, Unit: "x", Better: benchfmt.HigherIsBetter, Tolerance: latencyTol},
		{Name: "multiquery.planning_us_per_motif", Value: float64(perMotif.Microseconds()), Unit: "us", Better: benchfmt.LowerIsBetter, Tolerance: cutPauseTol},
	}
}
