package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"motifstream/internal/benchfmt"
	"motifstream/internal/cluster"
	"motifstream/internal/delivery"
	"motifstream/internal/dynstore"
	"motifstream/internal/motif"
)

// The pinned trajectory deployment shape. docs/BENCHMARKS.md documents the
// full workload (seeds 1/7, sizes from workloadSizes); changing any of it
// renames the workload and breaks comparability on purpose.
const (
	trajectoryPartitions = 4
	trajectoryReplicas   = 2
	// trajectoryCkptInterval is stream time between checkpoint cuts. The
	// pinned stream spans ~20s of stream time at the design rate, so 2s
	// yields ~10 cuts per replica — enough cut-pause samples for a p99.
	trajectoryCkptInterval = 2 * time.Second
)

// Latency-like trajectory metrics get a more generous tolerance than the
// CLI default: wall-clock quantiles on shared CI hosts are far noisier
// than throughput, and the gate is a catastrophe detector, not a
// microbenchmark.
const latencyTol = 2.0

// The cut-pause p99 is the noisiest of all: with ~10 cuts per replica it
// is effectively the max over a few dozen samples, and a single fsync
// stall on a shared-disk CI host moves it 20x. The regression it exists
// to catch — cuts degrading from delta capture back to full-state capture
// — is a 100-1000x move, so the band can be this wide and still bite.
const cutPauseTol = 25.0

// trajectoryConfig is the pinned durable deployment: 4 partitions x 2
// replicas, checkpointing on, suppression-free delivery so the delivered
// count is deterministic and comparable across runs.
func trajectoryConfig(c runConfig, dir string) cluster.Config {
	users, avgFollows, _ := workloadSizes(c.quick)
	static := cachedGraph(users, avgFollows)
	return cluster.Config{
		Partitions:     trajectoryPartitions,
		Replicas:       trajectoryReplicas,
		StaticEdges:    static,
		MaxInfluencers: 200,
		Dynamic:        dynstore.Options{Retention: 10 * time.Minute, MaxPerTarget: 1024},
		NewPrograms: func() []motif.Program {
			return []motif.Program{motif.NewDiamond(motif.DiamondConfig{
				K: 3, Window: 10 * time.Minute, MaxFanout: 64,
			})}
		},
		Delivery: delivery.Options{
			SleepStartHour:   delivery.SleepDisabled,
			SleepEndHour:     delivery.SleepDisabled,
			MaxPerUserPerDay: 1 << 30,
		},
		Seed:               1,
		CheckpointDir:      dir,
		CheckpointInterval: trajectoryCkptInterval,
		// The batched hot path is part of the measured deployment: replicas
		// drain the subscription into bounded batches and fan detection
		// across the worker pool, with the ordered-commit stage preserving
		// sequential semantics. On multi-core hosts the workers overlap;
		// on a single core the win is the amortized locking and the
		// allocation-free kernels. The batch bound is kept moderate so the
		// per-event wall-clock latency the trajectory also gates (publish →
		// delivery) does not pay a deep-queueing tax for the throughput.
		ApplyBatch:   16,
		ApplyWorkers: 2,
	}
}

// newTrajectoryCluster builds the pinned deployment in-process.
func newTrajectoryCluster(c runConfig, dir string) (*cluster.Cluster, error) {
	return cluster.New(trajectoryConfig(c, dir))
}

// runT1 measures the trajectory's steady-state point: sustained ingest
// throughput and real wall-clock detection latency (event publish →
// candidate batch at the delivery tier) on the pinned workload, plus the
// checkpoint cut-pause p99 the ingest path paid while doing it.
func runT1(c runConfig) []benchfmt.Metric {
	users, _, events := workloadSizes(c.quick)
	stream := cachedStream(users, events)
	dir, err := os.MkdirTemp("", "trajectory-t1-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	clu, err := newTrajectoryCluster(c, dir)
	if err != nil {
		log.Fatal(err)
	}
	clu.Start()
	wall := cluster.Elapsed(func() {
		for _, e := range stream {
			if err := clu.Publish(e); err != nil {
				log.Fatal(err)
			}
		}
		clu.Stop() // the drain is part of sustained throughput
	})
	st := clu.Stats()
	eps := float64(len(stream)) / wall.Seconds()

	tb := newTable("metric", "value")
	tb.addf("ingest throughput|%.0f events/s (%.1fx the 10^4/s target)", eps, eps/1e4)
	tb.addf("detection latency p50 (wall)|%v", st.DetectLatency.P50.Round(10*time.Microsecond))
	tb.addf("detection latency p99 (wall)|%v", st.DetectLatency.P99.Round(10*time.Microsecond))
	tb.addf("checkpoint cut pause p99|%v", st.CutPause.P99.Round(time.Microsecond))
	tb.addf("delivered pushes|%d", st.Delivered)
	tb.print()
	fmt.Println("  expected shape: ingest comfortably above 10^4/s; detection latency is")
	fmt.Println("  pure process queueing (ms-scale), dwarfed by E2's simulated queue hops.")

	return []benchfmt.Metric{
		{Name: "trajectory.ingest_events_per_sec", Value: eps, Unit: "events/s", Better: benchfmt.HigherIsBetter},
		{Name: "trajectory.detect_latency_p50_ns", Value: float64(st.DetectLatency.P50), Unit: "ns", Better: benchfmt.LowerIsBetter, Tolerance: latencyTol},
		{Name: "trajectory.detect_latency_p99_ns", Value: float64(st.DetectLatency.P99), Unit: "ns", Better: benchfmt.LowerIsBetter, Tolerance: latencyTol},
		{Name: "trajectory.cut_pause_p99_ns", Value: float64(st.CutPause.P99), Unit: "ns", Better: benchfmt.LowerIsBetter, Tolerance: cutPauseTol},
		{Name: "trajectory.delivered", Value: float64(st.Delivered), Unit: "count"},
	}
}

// runT2 measures crash-recovery replay rate: after the pinned stream is
// ingested, one replica is killed and restored; the rate is the ingested
// event count over the kill→live wall time — how fast a rejoining replica
// chews through checkpoint restore plus log replay.
func runT2(c runConfig) []benchfmt.Metric {
	users, _, events := workloadSizes(c.quick)
	stream := cachedStream(users, events)
	dir, err := os.MkdirTemp("", "trajectory-t2-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	clu, err := newTrajectoryCluster(c, dir)
	if err != nil {
		log.Fatal(err)
	}
	defer clu.Stop()
	clu.Start()
	for _, e := range stream {
		if err := clu.Publish(e); err != nil {
			log.Fatal(err)
		}
	}
	// Average over a few cycles: a single restore's wall time is dominated
	// by scheduler jitter at this scale.
	const cycles = 3
	wall := cluster.Elapsed(func() {
		for i := 0; i < cycles; i++ {
			if err := clu.KillReplica(0, 1); err != nil {
				log.Fatal(err)
			}
			if err := clu.RestoreReplica(0, 1); err != nil {
				log.Fatal(err)
			}
			if err := clu.AwaitReplicaLive(0, 1, 5*time.Minute); err != nil {
				log.Fatal(err)
			}
		}
	})
	perRestore := wall / cycles
	rate := float64(len(stream)) / perRestore.Seconds()

	tb := newTable("metric", "value")
	tb.addf("events replayed per restore|%d", len(stream))
	tb.addf("restore wall time (mean of %d)|%v", cycles, perRestore.Round(time.Millisecond))
	tb.addf("recovery replay rate|%.0f events/s", rate)
	tb.print()
	fmt.Println("  expected shape: replay rate within an order of magnitude of ingest —")
	fmt.Println("  recovery re-runs detection, it does not redo candidate delivery.")

	return []benchfmt.Metric{
		{Name: "trajectory.recovery_replay_events_per_sec", Value: rate, Unit: "events/s", Better: benchfmt.HigherIsBetter},
	}
}

// runT3 measures elastic reprovision latency: replacing a replica's node
// wholesale (fresh directory, rebuilt from the partition's base pool plus
// log replay) until the newcomer serves reads.
func runT3(c runConfig) []benchfmt.Metric {
	users, _, events := workloadSizes(c.quick)
	stream := cachedStream(users, events)
	dir, err := os.MkdirTemp("", "trajectory-t3-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	clu, err := newTrajectoryCluster(c, dir)
	if err != nil {
		log.Fatal(err)
	}
	defer clu.Stop()
	clu.Start()
	for _, e := range stream {
		if err := clu.Publish(e); err != nil {
			log.Fatal(err)
		}
	}
	const cycles = 3
	wall := cluster.Elapsed(func() {
		for i := 0; i < cycles; i++ {
			if err := clu.ReprovisionReplica(0, 1); err != nil {
				log.Fatal(err)
			}
			if err := clu.AwaitReplicaLive(0, 1, 5*time.Minute); err != nil {
				log.Fatal(err)
			}
		}
	})
	perOp := wall / cycles

	tb := newTable("metric", "value")
	tb.addf("reprovision latency (mean of %d)|%v", cycles, perOp.Round(time.Millisecond))
	tb.print()
	fmt.Println("  expected shape: same order as a restore (T2) — the newcomer rebuilds")
	fmt.Println("  from the base pool instead of its own chain, then replays the same log.")

	return []benchfmt.Metric{
		{Name: "trajectory.reprovision_latency_ns", Value: float64(perOp), Unit: "ns", Better: benchfmt.LowerIsBetter, Tolerance: latencyTol},
	}
}

// runT4 measures the networked deployment tier on the pinned workload:
// the same stream ingested with every replica slot in a socket-attached
// worker over loopback TCP (one worker per replica index, each owning
// its index across all partitions), and the candidate envelope RPC
// round-trip p99 — batch write to cumulative ack — paid by the workers'
// forwarders. The wall clock covers publish through the full networked
// drain (worker flush, FIN, worker exit), so the throughput is honest
// about the socket tier's framing, batching, and ack overhead.
func runT4(c runConfig) []benchfmt.Metric {
	users, _, events := workloadSizes(c.quick)
	stream := cachedStream(users, events)
	root, err := os.MkdirTemp("", "trajectory-t4-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	hubCfg := trajectoryConfig(c, filepath.Join(root, "ckpt"))
	hubCfg.Listen = "127.0.0.1:0"
	hubCfg.LogDir = filepath.Join(root, "log")
	hub, err := cluster.New(hubCfg)
	if err != nil {
		log.Fatal(err)
	}
	hub.Start()

	workers := make([]*cluster.Cluster, 0, trajectoryReplicas)
	joins := make([]chan error, 0, trajectoryReplicas)
	for i := 0; i < trajectoryReplicas; i++ {
		wcfg := hubCfg
		wcfg.Listen = ""
		wcfg.LogDir = ""
		wcfg.Join = hub.ListenAddr()
		owned := make([][2]int, trajectoryPartitions)
		for pid := range owned {
			owned[pid] = [2]int{pid, i}
		}
		wcfg.OwnedReplicas = owned
		w, err := cluster.New(wcfg)
		if err != nil {
			log.Fatal(err)
		}
		w.Start()
		done := make(chan error, 1)
		go func() { done <- w.Wait() }()
		workers = append(workers, w)
		joins = append(joins, done)
	}
	for pid := 0; pid < trajectoryPartitions; pid++ {
		for r := 0; r < trajectoryReplicas; r++ {
			if err := hub.AwaitReplicaLive(pid, r, 5*time.Minute); err != nil {
				log.Fatal(err)
			}
		}
	}

	wall := cluster.Elapsed(func() {
		for _, e := range stream {
			if err := hub.Publish(e); err != nil {
				log.Fatal(err)
			}
		}
		hub.Shutdown()
		for _, done := range joins {
			if err := <-done; err != nil {
				log.Fatal(err)
			}
		}
	})
	st := hub.Stats()
	eps := float64(len(stream)) / wall.Seconds()

	// The RTT histogram lives in each worker's registry; gate on the worst
	// worker's p99 — a regression anywhere in the framing/ack path counts.
	var rttP99 time.Duration
	var rttN uint64
	for _, w := range workers {
		snap := w.Metrics().Histogram("transport.cands.rtt").Snapshot()
		rttN += snap.Count
		if snap.P99 > rttP99 {
			rttP99 = snap.P99
		}
	}
	if rttN == 0 {
		log.Fatal("T4: no candidate RPC round-trips recorded")
	}

	tb := newTable("metric", "value")
	tb.addf("networked ingest throughput|%.0f events/s (%.2fx the paper's 1e4/s target)", eps, eps/1e4)
	tb.addf("envelope RPC RTT p99 (worst worker)|%v over %d batches", rttP99.Round(10*time.Microsecond), rttN)
	tb.addf("delivered pushes|%d", st.Delivered)
	tb.print()
	fmt.Println("  expected shape: within a small factor of T1 ingest — the socket tier")
	fmt.Println("  batches envelopes and pipelines acks, so loopback adds framing cost,")
	fmt.Println("  not a per-event round-trip.")

	return []benchfmt.Metric{
		{Name: "trajectory.net_ingest_events_per_sec", Value: eps, Unit: "events/s", Better: benchfmt.HigherIsBetter},
		{Name: "trajectory.net_cand_rtt_p99_ns", Value: float64(rttP99), Unit: "ns", Better: benchfmt.LowerIsBetter, Tolerance: latencyTol},
		{Name: "trajectory.net_delivered", Value: float64(st.Delivered), Unit: "count"},
	}
}
