// Command benchreport regenerates every experiment in the reproduction's
// experiment index (DESIGN.md §4): the Figure 1 walkthrough and the ten
// quantitative claims of the paper's §2, printing paper-vs-measured tables.
//
// Usage:
//
//	benchreport            # run everything
//	benchreport -exp E2,E5 # run a subset
//	benchreport -quick     # smaller workloads, faster run
//
// Absolute numbers differ from the paper's production testbed (this is a
// laptop-scale simulation); the *shapes* — who wins, by what factor, where
// crossovers fall — are what each experiment checks. EXPERIMENTS.md
// records a full run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"
)

// experiment is one entry in the index.
type experiment struct {
	id    string
	title string
	run   func(c runConfig)
}

// runConfig carries global harness settings into each experiment.
type runConfig struct {
	quick bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")

	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment IDs (F1,E1..E10) or 'all'")
		quick   = flag.Bool("quick", false, "use smaller workloads")
	)
	flag.Parse()

	experiments := []experiment{
		{"F1", "Figure 1 walkthrough (k=2 diamond on the sample fragment)", runF1},
		{"E1", "ingestion throughput vs partition count (target 10^4/s)", runE1},
		{"E2", "end-to-end latency split: queue hops vs graph queries", runE2},
		{"E3", "delivery funnel: raw candidates -> pushes", runE3},
		{"E4", "rejected baselines: polling latency, two-hop memory", runE4},
		{"E5", "D-store memory vs retention window (pruning)", runE5},
		{"E6", "candidate volume vs k and window", runE6},
		{"E7", "S memory and recall vs influencer cap", runE7},
		{"E8", "intersection kernel ablation", runE8},
		{"E9", "read throughput and failover vs replica count", runE9},
		{"E10", "DSL-compiled vs hand-coded diamond", runE10},
	}

	all := *expFlag == "all"
	want := map[string]bool{}
	if !all {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	cfg := runConfig{quick: *quick}
	ran := 0
	start := time.Now()
	for _, e := range experiments {
		if !all && !want[e.id] {
			continue
		}
		delete(want, e.id)
		fmt.Printf("\n===== %s: %s =====\n", e.id, e.title)
		t := time.Now()
		e.run(cfg)
		fmt.Printf("[%s completed in %v]\n", e.id, time.Since(t).Round(time.Millisecond))
		ran++
	}
	if len(want) > 0 {
		ids := make([]string, 0, len(want))
		for id := range want {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		log.Printf("unknown experiment IDs: %s", strings.Join(ids, ", "))
		os.Exit(2)
	}
	fmt.Printf("\n%d experiment(s) in %v\n", ran, time.Since(start).Round(time.Millisecond))
}

// table is a minimal aligned-column printer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) print() {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < width[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		fmt.Println("  " + strings.TrimRight(sb.String(), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}
