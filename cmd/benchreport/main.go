// Command benchreport regenerates every experiment in the reproduction's
// experiment index (DESIGN.md §4): the Figure 1 walkthrough and the ten
// quantitative claims of the paper's §2, printing paper-vs-measured tables.
// The trajectory experiments (T1..T5) additionally measure the pinned
// benchmark-trajectory point (docs/BENCHMARKS.md) and every experiment
// returns its headline numbers as structured benchfmt metrics, so a run
// can be written to a BENCH_<date>.json artifact and gated against the
// previous one.
//
// Usage:
//
//	benchreport                 # run the full experiment index
//	benchreport -exp E2,E5      # run a subset
//	benchreport -quick          # smaller workloads, faster run
//	benchreport -trajectory \
//	  -json bench/BENCH_$(date +%F).json \
//	  -baseline bench -tol 0.5  # trajectory point + regression gate
//
// Absolute numbers differ from the paper's production testbed (this is a
// laptop-scale simulation); the *shapes* — who wins, by what factor, where
// crossovers fall — are what each experiment checks. EXPERIMENTS.md
// records a full run; docs/BENCHMARKS.md documents the artifact schema and
// the trajectory runbook.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"motifstream/internal/benchfmt"
)

// experiment is one entry in the index. run prints its human table and
// returns the headline measurements as structured metrics.
type experiment struct {
	id    string
	title string
	run   func(c runConfig) []benchfmt.Metric
}

// runConfig carries global harness settings into each experiment.
type runConfig struct {
	quick bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")

	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiment IDs (F1,E1..E10,T1..T5) or 'all'")
		quick      = flag.Bool("quick", false, "use smaller workloads")
		trajectory = flag.Bool("trajectory", false, "run only the trajectory experiments (T1..T5)")
		jsonOut    = flag.String("json", "", "write a benchfmt artifact (BENCH_<date>.json) to this path")
		baseline   = flag.String("baseline", "", "prior artifact to gate against: a file, or a directory whose newest BENCH_*.json is used")
		tol        = flag.Float64("tol", 0.5, "default relative tolerance for the -baseline regression gate")
	)
	flag.Parse()

	experiments := []experiment{
		{"F1", "Figure 1 walkthrough (k=2 diamond on the sample fragment)", runF1},
		{"E1", "ingestion throughput vs partition count (target 10^4/s)", runE1},
		{"E2", "end-to-end latency split: queue hops vs graph queries", runE2},
		{"E3", "delivery funnel: raw candidates -> pushes", runE3},
		{"E4", "rejected baselines: polling latency, two-hop memory", runE4},
		{"E5", "D-store memory vs retention window (pruning)", runE5},
		{"E6", "candidate volume vs k and window", runE6},
		{"E7", "S memory and recall vs influencer cap", runE7},
		{"E8", "intersection kernel ablation", runE8},
		{"E9", "read throughput and failover vs replica count", runE9},
		{"E10", "DSL-compiled vs hand-coded diamond", runE10},
		{"T1", "trajectory: pinned ingest throughput + wall-clock detection latency", runT1},
		{"T2", "trajectory: recovery replay rate (kill/restore/catch-up)", runT2},
		{"T3", "trajectory: reprovision latency (node replacement)", runT3},
		{"T4", "trajectory: networked ingest + envelope RPC RTT (loopback sockets)", runT4},
		{"T5", "trajectory: shared multi-query execution, 100 standing motifs", runT5},
	}

	sel := *expFlag
	if *trajectory {
		sel = "T1,T2,T3,T4,T5"
	}
	all := sel == "all"
	want := map[string]bool{}
	if !all {
		for _, id := range strings.Split(sel, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	// Resolve the baseline before writing anything, so a fresh artifact in
	// the same directory can never become its own baseline.
	var prior *benchfmt.Report
	if *baseline != "" {
		var err error
		prior, err = loadBaseline(*baseline)
		if err != nil {
			log.Fatalf("baseline: %v", err)
		}
		if prior == nil {
			fmt.Printf("no prior artifact under %s; this run seeds the trajectory\n", *baseline)
		}
	}

	cfg := runConfig{quick: *quick}
	ran := 0
	var collected []benchfmt.Metric
	start := time.Now()
	for _, e := range experiments {
		if !all && !want[e.id] {
			continue
		}
		delete(want, e.id)
		fmt.Printf("\n===== %s: %s =====\n", e.id, e.title)
		t := time.Now()
		collected = append(collected, e.run(cfg)...)
		fmt.Printf("[%s completed in %v]\n", e.id, time.Since(t).Round(time.Millisecond))
		ran++
	}
	if len(want) > 0 {
		ids := make([]string, 0, len(want))
		for id := range want {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		log.Printf("unknown experiment IDs: %s", strings.Join(ids, ", "))
		os.Exit(2)
	}
	fmt.Printf("\n%d experiment(s) in %v\n", ran, time.Since(start).Round(time.Millisecond))

	if *jsonOut == "" && prior == nil {
		return
	}
	rep := buildReport(cfg, collected)
	if *jsonOut != "" {
		if err := rep.WriteFile(*jsonOut); err != nil {
			log.Fatalf("write artifact: %v", err)
		}
		fmt.Printf("\nwrote %s (%d metrics)\n", *jsonOut, len(rep.Metrics))
	}
	if prior != nil {
		cmp := benchfmt.Compare(prior, rep, *tol)
		fmt.Printf("\ntrajectory vs %s:\n%s", prior.Date, cmp.Format())
		if !cmp.Ok() {
			// The artifact is already on disk — a regressing run still
			// records its trajectory point — but the gate fails.
			log.Printf("regression gate FAILED (%d regression(s))", len(cmp.Regressions()))
			os.Exit(1)
		}
		fmt.Println("regression gate ok")
	}
}

// buildReport wraps collected metrics with run metadata and the pinned
// workload description.
func buildReport(cfg runConfig, metrics []benchfmt.Metric) *benchfmt.Report {
	users, avgFollows, events := workloadSizes(cfg.quick)
	name := "trajectory-v1"
	if cfg.quick {
		// Quick runs measure a different workload; naming them differently
		// makes the comparator refuse apples-to-oranges gating.
		name = "trajectory-v1-quick"
	}
	return &benchfmt.Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		Commit:    vcsRevision(),
		GoVersion: runtime.Version(),
		Host:      fmt.Sprintf("%s/%s/%dcpu", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Workload: benchfmt.Workload{
			Name: name, Seed: 1, Users: users, AvgFollows: avgFollows,
			Events: events, Partitions: trajectoryPartitions, Replicas: trajectoryReplicas,
		},
		Metrics: metrics,
	}
}

// vcsRevision extracts the short VCS revision stamped into the binary, or
// "" when built outside a repository (e.g. go test binaries).
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return ""
}

// loadBaseline resolves path — an artifact file or a directory of them —
// to the prior trajectory point. A directory without artifacts (or a
// missing directory) is the first-run case: no prior, no error. A present
// but unreadable artifact is an error: silently skipping the gate would
// make every later regression invisible.
func loadBaseline(path string) (*benchfmt.Report, error) {
	st, err := os.Stat(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		latest, err := benchfmt.LatestArtifact(path)
		if err != nil {
			return nil, err
		}
		if latest == "" {
			return nil, nil
		}
		path = latest
	}
	return benchfmt.ReadFile(path)
}

// table is a minimal aligned-column printer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) print() {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < width[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		fmt.Println("  " + strings.TrimRight(sb.String(), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}
