package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout around fn.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTableAlignment(t *testing.T) {
	tb := newTable("name", "value")
	tb.add("short", "1")
	tb.addf("much-longer-name|%d", 123456)
	out := captureStdout(t, tb.print)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("lines = %q", lines)
	}
	// The separator row dashes must cover the widest cell per column.
	if !strings.Contains(lines[1], strings.Repeat("-", len("much-longer-name"))) {
		t.Fatalf("separator too short: %q", lines[1])
	}
	// Every row starts with the two-space indent.
	for _, l := range lines {
		if !strings.HasPrefix(l, "  ") {
			t.Fatalf("row %q lacks indent", l)
		}
	}
}

func TestTableAddfSplitsOnPipe(t *testing.T) {
	tb := newTable("a", "b", "c")
	tb.addf("x|%d|%s", 1, "y")
	if len(tb.rows) != 1 || len(tb.rows[0]) != 3 {
		t.Fatalf("rows = %v", tb.rows)
	}
	if tb.rows[0][2] != "y" {
		t.Fatalf("cells = %v", tb.rows[0])
	}
}

func TestWorkloadSizes(t *testing.T) {
	qu, qf, qe := workloadSizes(true)
	fu, ff, fe := workloadSizes(false)
	if qu >= fu || qe >= fe || qf > ff {
		t.Fatal("quick sizes should be smaller than full sizes")
	}
}

func TestCachedWorkloadsAreMemoized(t *testing.T) {
	a := cachedGraph(500, 5)
	b := cachedGraph(500, 5)
	if &a[0] != &b[0] {
		t.Fatal("cachedGraph rebuilt instead of memoizing")
	}
	s1 := cachedSlowStream(500, 1_000, 60)
	s2 := cachedSlowStream(500, 1_000, 60)
	if &s1[0] != &s2[0] {
		t.Fatal("cachedSlowStream rebuilt instead of memoizing")
	}
	// Different spans are different cache entries.
	s3 := cachedSlowStream(500, 1_000, 120)
	if &s1[0] == &s3[0] {
		t.Fatal("different spans share a cache entry")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[uint64]string{
		512:     "512 B",
		2 << 10: "2.0 KiB",
		3 << 20: "3.0 MiB",
		4 << 30: "4.0 GiB",
		5 << 40: "5.0 TiB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSafeDiv(t *testing.T) {
	if safeDiv(10, 2) != 5 {
		t.Fatal("safeDiv broken")
	}
	if safeDiv(10, 0) != 0 {
		t.Fatal("division by zero should yield 0")
	}
}
