package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"motifstream/internal/benchfmt"
)

// captureStdout redirects os.Stdout around fn.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTableAlignment(t *testing.T) {
	tb := newTable("name", "value")
	tb.add("short", "1")
	tb.addf("much-longer-name|%d", 123456)
	out := captureStdout(t, tb.print)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("lines = %q", lines)
	}
	// The separator row dashes must cover the widest cell per column.
	if !strings.Contains(lines[1], strings.Repeat("-", len("much-longer-name"))) {
		t.Fatalf("separator too short: %q", lines[1])
	}
	// Every row starts with the two-space indent.
	for _, l := range lines {
		if !strings.HasPrefix(l, "  ") {
			t.Fatalf("row %q lacks indent", l)
		}
	}
}

func TestTableAddfSplitsOnPipe(t *testing.T) {
	tb := newTable("a", "b", "c")
	tb.addf("x|%d|%s", 1, "y")
	if len(tb.rows) != 1 || len(tb.rows[0]) != 3 {
		t.Fatalf("rows = %v", tb.rows)
	}
	if tb.rows[0][2] != "y" {
		t.Fatalf("cells = %v", tb.rows[0])
	}
}

func TestWorkloadSizes(t *testing.T) {
	qu, qf, qe := workloadSizes(true)
	fu, ff, fe := workloadSizes(false)
	if qu >= fu || qe >= fe || qf > ff {
		t.Fatal("quick sizes should be smaller than full sizes")
	}
}

func TestCachedWorkloadsAreMemoized(t *testing.T) {
	a := cachedGraph(500, 5)
	b := cachedGraph(500, 5)
	if &a[0] != &b[0] {
		t.Fatal("cachedGraph rebuilt instead of memoizing")
	}
	s1 := cachedSlowStream(500, 1_000, 60)
	s2 := cachedSlowStream(500, 1_000, 60)
	if &s1[0] != &s2[0] {
		t.Fatal("cachedSlowStream rebuilt instead of memoizing")
	}
	// Different spans are different cache entries.
	s3 := cachedSlowStream(500, 1_000, 120)
	if &s1[0] == &s3[0] {
		t.Fatal("different spans share a cache entry")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[uint64]string{
		512:     "512 B",
		2 << 10: "2.0 KiB",
		3 << 20: "3.0 MiB",
		4 << 30: "4.0 GiB",
		5 << 40: "5.0 TiB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSafeDiv(t *testing.T) {
	if safeDiv(10, 2) != 5 {
		t.Fatal("safeDiv broken")
	}
	if safeDiv(10, 0) != 0 {
		t.Fatal("division by zero should yield 0")
	}
}

func TestBuildReport(t *testing.T) {
	metrics := []benchfmt.Metric{{Name: "m", Value: 1, Unit: "x"}}
	full := buildReport(runConfig{}, metrics)
	quick := buildReport(runConfig{quick: true}, metrics)
	if full.Workload.Name == quick.Workload.Name {
		t.Fatal("quick and full runs must pin differently-named workloads")
	}
	if full.Workload.Partitions != trajectoryPartitions || full.Workload.Replicas != trajectoryReplicas {
		t.Fatalf("workload shape = %+v", full.Workload)
	}
	if full.Date == "" || full.Host == "" || full.GoVersion == "" {
		t.Fatalf("missing run metadata: %+v", full)
	}
	if len(full.Metrics) != 1 || full.Metrics[0].Name != "m" {
		t.Fatalf("metrics not carried: %+v", full.Metrics)
	}
	// The report must survive the artifact round trip.
	var buf bytes.Buffer
	if err := full.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := benchfmt.Decode(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	// Missing path: first run, no prior, no error.
	if rep, err := loadBaseline(filepath.Join(dir, "nope")); err != nil || rep != nil {
		t.Fatalf("missing: (%v, %v)", rep, err)
	}
	// Empty directory: same.
	if rep, err := loadBaseline(dir); err != nil || rep != nil {
		t.Fatalf("empty dir: (%v, %v)", rep, err)
	}
	// Directory with artifacts: the newest is used.
	old := buildReport(runConfig{}, nil)
	old.Date = "2026-01-01"
	if err := old.WriteFile(filepath.Join(dir, benchfmt.ArtifactName("2026-01-01"))); err != nil {
		t.Fatal(err)
	}
	newer := buildReport(runConfig{}, nil)
	newer.Date = "2026-02-02"
	if err := newer.WriteFile(filepath.Join(dir, benchfmt.ArtifactName("2026-02-02"))); err != nil {
		t.Fatal(err)
	}
	rep, err := loadBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Date != "2026-02-02" {
		t.Fatalf("loaded %s, want the newest artifact", rep.Date)
	}
	// A direct file path works too.
	rep, err = loadBaseline(filepath.Join(dir, benchfmt.ArtifactName("2026-01-01")))
	if err != nil || rep.Date != "2026-01-01" {
		t.Fatalf("file path: (%+v, %v)", rep, err)
	}
	// A present-but-corrupt artifact must error, not silently skip the gate.
	bad := filepath.Join(dir, "BENCH_2026-03-03.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(dir); err == nil {
		t.Fatal("corrupt baseline must fail the gate loudly")
	}
}
