package main

import (
	"sync"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/workload"
)

// workloadSizes returns the standard (or quick) workload dimensions shared
// by the experiments so results are comparable across tables.
func workloadSizes(quick bool) (users, avgFollows, events int) {
	if quick {
		return 5_000, 20, 50_000
	}
	return 20_000, 30, 200_000
}

var (
	wlMu    sync.Mutex
	wlCache = map[[2]int64][]graph.Edge{}
)

// cachedGraph memoizes follow-graph generation across experiments (the
// generators are deterministic, so sharing is safe).
func cachedGraph(users, avgFollows int) []graph.Edge {
	key := [2]int64{1, int64(users)<<20 | int64(avgFollows)}
	wlMu.Lock()
	defer wlMu.Unlock()
	if e, ok := wlCache[key]; ok {
		return e
	}
	e := workload.GenFollowGraph(workload.GraphConfig{
		Users: users, AvgFollows: avgFollows, ZipfS: 1.35, Seed: 1,
	})
	wlCache[key] = e
	return e
}

// cachedStream memoizes event-stream generation at the paper's design
// rate of 10^4 events/s. At that rate a laptop-scale stream spans only
// seconds, so it suits throughput experiments (E1, E2) where wall-clock
// cost matters, not stream-time structure.
func cachedStream(users, events int) []graph.Edge {
	key := [2]int64{2, int64(users)<<24 | int64(events)}
	wlMu.Lock()
	defer wlMu.Unlock()
	if e, ok := wlCache[key]; ok {
		return e
	}
	e := workload.GenEventStream(workload.StreamConfig{
		Users: users, Events: events, Rate: 10_000,
		BurstFraction: 0.35, BurstMeanSize: 12, BurstWindow: 10 * time.Minute,
		ContentFraction: 0.25, ZipfS: 1.35, Seed: 7,
	})
	wlCache[key] = e
	return e
}

// cachedSlowStream memoizes a stream stretched over spanSeconds of stream
// time. Window-sensitive experiments (E4 polling, E5 retention, E6 τ
// sweep) need the stream span to exceed the windows under study, or every
// retention setting trivially retains everything.
func cachedSlowStream(users, events, spanSeconds int) []graph.Edge {
	key := [2]int64{3, int64(users)<<40 | int64(events)<<16 | int64(spanSeconds)}
	wlMu.Lock()
	defer wlMu.Unlock()
	if e, ok := wlCache[key]; ok {
		return e
	}
	e := workload.GenEventStream(workload.StreamConfig{
		Users: users, Events: events,
		Rate:          float64(events) / float64(spanSeconds),
		BurstFraction: 0.35, BurstMeanSize: 12, BurstWindow: 10 * time.Minute,
		ContentFraction: 0.25, ZipfS: 1.35, Seed: 7,
	})
	wlCache[key] = e
	return e
}
