// Command loadgen generates synthetic workloads — a static follow graph
// and a dynamic event stream — and writes them to disk in the binary
// stream format, for replay by cmd/magicrecs or external tooling.
//
// Usage:
//
//	loadgen -out data -users 20000 -follows 30 -events 200000
//
// It writes <out>/static.edges and <out>/stream.edges.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/stream"
	"motifstream/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	var (
		out      = flag.String("out", "data", "output directory")
		users    = flag.Int("users", 20_000, "number of accounts")
		follows  = flag.Int("follows", 30, "mean followings per account")
		zipf     = flag.Float64("zipf", 1.35, "Zipf exponent of popularity")
		events   = flag.Int("events", 200_000, "dynamic events to generate")
		rate     = flag.Float64("rate", 10_000, "mean stream events per second")
		burst    = flag.Float64("burst", 0.35, "fraction of events in correlated bursts")
		burstSz  = flag.Int("burstsize", 12, "mean events per burst")
		burstWin = flag.Duration("burstwindow", 10*time.Minute, "burst time span")
		content  = flag.Float64("content", 0.25, "fraction of content (retweet/favorite) events")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	gcfg := workload.GraphConfig{
		Users: *users, AvgFollows: *follows, ZipfS: *zipf, Seed: *seed,
	}
	static := workload.GenFollowGraph(gcfg)
	if err := writeEdges(filepath.Join(*out, "static.edges"), static); err != nil {
		log.Fatal(err)
	}
	inDeg := graph.ComputeDegreeStats(graph.InDegrees(static))
	fmt.Printf("static: %d edges for %d users -> %s\n", len(static), *users, filepath.Join(*out, "static.edges"))
	fmt.Printf("  in-degree: mean=%.1f p50=%d p99=%d max=%d gini=%.2f\n",
		inDeg.Mean, inDeg.P50, inDeg.P99, inDeg.Max, inDeg.Gini)

	scfg := workload.StreamConfig{
		Users: *users, Events: *events, Rate: *rate,
		BurstFraction: *burst, BurstMeanSize: *burstSz, BurstWindow: *burstWin,
		ContentFraction: *content, ZipfS: *zipf, Seed: *seed + 6,
	}
	dynamic := workload.GenEventStream(scfg)
	if err := writeEdges(filepath.Join(*out, "stream.edges"), dynamic); err != nil {
		log.Fatal(err)
	}
	var span time.Duration
	if len(dynamic) > 1 {
		span = time.Duration(dynamic[len(dynamic)-1].TS-dynamic[0].TS) * time.Millisecond
	}
	fmt.Printf("stream: %d events spanning %v -> %s\n",
		len(dynamic), span.Round(time.Second), filepath.Join(*out, "stream.edges"))
}

func writeEdges(path string, edges []graph.Edge) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := stream.WriteEdges(f, edges); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
