package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/stream"
	"motifstream/internal/workload"
)

// TestWriteEdgesRoundTrip pins the contract between loadgen and every
// consumer of its files: what writeEdges puts on disk, stream.ReadEdges
// must reproduce field-for-field. A property run over several seeds
// guards the varint delta encoding against workload shapes a single
// fixture would miss (timestamp plateaus, bursts, ID jumps).
func TestWriteEdgesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, seed := range []int64{1, 7, 42, 1000003} {
		scfg := workload.StreamConfig{
			Users: 200, Events: 3_000, Rate: 10_000,
			BurstFraction: 0.35, BurstMeanSize: 12, BurstWindow: 10 * time.Minute,
			ContentFraction: 0.25, ZipfS: 1.35, Seed: seed,
		}
		want := workload.GenEventStream(scfg)
		path := filepath.Join(dir, "stream.edges")
		if err := writeEdges(path, want); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stream.ReadEdges(f)
		f.Close()
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: round trip lost events: wrote %d, read %d", seed, len(want), len(got))
		}
		content := 0
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: edge %d round-tripped as %+v, wrote %+v", seed, i, got[i], want[i])
			}
			if i > 0 && got[i].TS < got[i-1].TS {
				t.Fatalf("seed %d: timestamps regress at %d: %d after %d", seed, i, got[i].TS, got[i-1].TS)
			}
			if got[i].Type == graph.Retweet || got[i].Type == graph.Favorite {
				content++
			}
		}
		// The generator draws content events at ContentFraction; the read
		// back stream must show that mix (3000 draws: ±5 points is lax).
		if frac := float64(content) / float64(len(got)); frac < 0.20 || frac > 0.30 {
			t.Fatalf("seed %d: content fraction %.3f, want ~0.25", seed, frac)
		}
	}
}

// TestWriteEdgesStaticRoundTrip covers the other artifact loadgen emits:
// the static follow graph, which has constant timestamps (all-zero
// deltas) unlike the stream.
func TestWriteEdgesStaticRoundTrip(t *testing.T) {
	static := workload.GenFollowGraph(workload.GraphConfig{
		Users: 300, AvgFollows: 10, ZipfS: 1.35, Seed: 9,
	})
	path := filepath.Join(t.TempDir(), "static.edges")
	if err := writeEdges(path, static); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := stream.ReadEdges(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(static) {
		t.Fatalf("wrote %d edges, read %d", len(static), len(got))
	}
	for i := range got {
		if got[i] != static[i] {
			t.Fatalf("edge %d round-tripped as %+v, wrote %+v", i, got[i], static[i])
		}
	}
}

// TestWriteEdgesCreatesParents would be wrong: writeEdges requires the
// directory to exist (main MkdirAlls it); a missing parent must surface
// as an error, not a silent no-op.
func TestWriteEdgesMissingDirErrors(t *testing.T) {
	err := writeEdges(filepath.Join(t.TempDir(), "no", "such", "dir", "x.edges"), nil)
	if err == nil {
		t.Fatal("writeEdges into a missing directory succeeded")
	}
}
