// Command magicrecs runs the full simulated recommendation cluster — the
// production system the paper describes, nicknamed "Magic Recs" — on a
// synthetic or recorded workload, printing live throughput, latency, and
// funnel statistics.
//
// Usage:
//
//	magicrecs -scenario medium
//	magicrecs -static data/static.edges -stream data/stream.edges
//
// Multi-process deployment (see docs/OPERATIONS.md):
//
//	magicrecs -listen :7400 -logdir /data/log -checkpointdir /data/ckpt -workerprocs 2
//	magicrecs -join hub:7400 -owned 0/0,1/0 -checkpointdir /data/ckpt
//
// Flags control the paper's tunables: k, the window τ, partition and
// replica counts, influencer cap, and queue-delay modeling.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"motifstream"
	"motifstream/internal/graph"
	"motifstream/internal/stream"
	"motifstream/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("magicrecs: ")
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is the testable entry point: flag parsing and validation write to
// errOut and return an exit code instead of killing the process.
func run(args []string, errOut io.Writer) int {
	fs := flag.NewFlagSet("magicrecs", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		scenario   = fs.String("scenario", "medium", "workload preset: small, medium, large (ignored when -static/-stream set)")
		staticPath = fs.String("static", "", "recorded static edge file (from loadgen)")
		streamPath = fs.String("stream", "", "recorded stream edge file (from loadgen)")
		partitions = fs.Int("partitions", 20, "number of partitions (paper: 20)")
		replicas   = fs.Int("replicas", 1, "replicas per partition")
		k          = fs.Int("k", 3, "support threshold k (paper production: 3)")
		window     = fs.Duration("window", 10*time.Minute, "freshness window tau")
		maxInfl    = fs.Int("maxinfluencers", 200, "influencer cap per user (0 = unlimited)")
		maxFanout  = fs.Int("maxfanout", 64, "recent-actor cap per event (-1 = unlimited)")
		motifsPath = fs.String("motifs", "", "file of motif DSL declarations run as standing queries on every replica alongside the primary diamond (see docs/QUERIES.md)")
		noSharing  = fs.Bool("nosharing", false, "disable the shared-prefix execution trie; every motif runs its own probes per event")
		queueMed   = fs.Duration("queuemedian", 7*time.Second, "simulated queue-delay median (0 disables)")
		queueP99   = fs.Duration("queuep99", 15*time.Second, "simulated queue-delay p99")
		progress   = fs.Int("progress", 50_000, "print progress every N events (0 disables)")
		ckptDir    = fs.String("checkpointdir", "", "directory for durable replica checkpoints (enables crash recovery; empty disables)")
		ckptEvery  = fs.Duration("checkpointinterval", time.Minute, "stream-time interval between replica checkpoints")
		compactN   = fs.Int("compactevery", 8, "delta checkpoint segments per chain before the background compactor folds a new base")
		staticSnap = fs.String("staticsnapdir", "", "directory of offline-built S snapshots (s-p%03d.snap) reloaded on replica restore")
		logDir     = fs.String("logdir", "", "directory for the durable firehose log (WAL); with -checkpointdir, whole-cluster restarts recover from disk")
		restarts   = fs.Int("restarts", 0, "restart the whole cluster N times mid-stream (Shutdown + Reopen over the same dirs; requires -logdir)")
		mirrorN    = fs.Int("mirrorbases", 0, "replicate each compacted base checkpoint to N peer replica directories (base replication; 0 disables)")
		reprovN    = fs.Int("reprovision", 0, "N times mid-stream, kill replica 1 of every partition and reprovision it onto a fresh node (requires -checkpointdir and -replicas >= 2)")
		scaleN     = fs.Int("scale-events", 0, "perform N live scale events mid-stream, alternating AddReplica and DecommissionReplica on every partition (requires -checkpointdir)")
		healAfter  = fs.Duration("healafter", 0, "auto-reprovision replicas dead longer than this (auto-healer; 0 disables)")
		auditOn    = fs.Bool("audit", false, "record a CRC32C state fingerprint at every checkpoint cut and cross-verify replicas after the run (requires -checkpointdir)")
		batchN     = fs.Int("applybatch", 0, "batched detection hot path: drain up to N envelopes per apply batch (0/1 = per-envelope apply)")
		workersN   = fs.Int("applyworkers", 0, "worker goroutines for candidate generation per batch, sharded by target (0/1 = consumer goroutine; needs -applybatch > 1)")

		listen      = fs.String("listen", "", "run as a networked hub: bind this TCP address, own the durable log and delivery tier, and serve every replica slot to worker processes (requires -logdir and -checkpointdir)")
		join        = fs.String("join", "", "run as a networked worker: dial the hub at this address and consume the slots in -owned (requires -owned and -checkpointdir; forbids -logdir)")
		ownedStr    = fs.String("owned", "", "comma-separated partition/replica slots this worker owns, e.g. 0/0,1/0 (requires -join)")
		workerProcs = fs.Int("workerprocs", 0, "with -listen: spawn N worker OS processes (re-exec of this binary with -join), splitting all replica slots among them")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(errOut, "magicrecs: %s\n", fmt.Sprintf(format, a...))
		fs.Usage()
		return 2
	}

	if *restarts > 0 && (*logDir == "" || *ckptDir == "") {
		return fail("-restarts requires -logdir and -checkpointdir")
	}
	if (*reprovN > 0 || *scaleN > 0 || *healAfter > 0) && *ckptDir == "" {
		return fail("-reprovision, -scale-events, and -healafter require -checkpointdir")
	}
	if *reprovN > 0 && *replicas < 2 {
		return fail("-reprovision requires -replicas >= 2 (the last alive replica cannot be replaced)")
	}
	if *auditOn && *ckptDir == "" {
		return fail("-audit requires -checkpointdir")
	}
	workersSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "applyworkers" {
			workersSet = true
		}
	})
	if workersSet && *batchN <= 1 {
		return fail("-applyworkers requires -applybatch > 1 (parallel candidate generation only exists on the batched hot path)")
	}

	networked := *listen != "" || *join != ""
	if *listen != "" && *join != "" {
		return fail("-listen and -join are mutually exclusive (a process is a hub or a worker, not both)")
	}
	if *listen != "" && (*logDir == "" || *ckptDir == "") {
		return fail("-listen requires -logdir and -checkpointdir (the hub owns the durable firehose log)")
	}
	if *join != "" && *ownedStr == "" {
		return fail("-join requires -owned (the partition/replica slots this worker consumes)")
	}
	if *join != "" && *ckptDir == "" {
		return fail("-join requires -checkpointdir (workers cut their own durable checkpoints)")
	}
	if *join != "" && *logDir != "" {
		return fail("-join forbids -logdir (the durable log lives in the hub process)")
	}
	if *ownedStr != "" && *join == "" {
		return fail("-owned requires -join")
	}
	if *workerProcs > 0 && *listen == "" {
		return fail("-workerprocs requires -listen (only a hub spawns workers)")
	}
	if networked && (*restarts > 0 || *reprovN > 0 || *scaleN > 0 || *healAfter > 0) {
		return fail("-restarts, -reprovision, -scale-events, and -healafter are single-process lifecycle drivers; they are not available with -listen/-join")
	}
	owned, err := parseOwned(*ownedStr, *partitions, *replicas)
	if err != nil {
		return fail("%v", err)
	}

	var motifSrc string
	if *motifsPath != "" {
		data, err := os.ReadFile(*motifsPath)
		if err != nil {
			return fail("-motifs: %v", err)
		}
		motifSrc = string(data)
		if _, err := motifstream.CompileMotif(motifSrc); err != nil {
			return fail("-motifs %s: %v", *motifsPath, err)
		}
	}

	static, events, err := loadWorkload(*scenario, *staticPath, *streamPath)
	if err != nil {
		log.Fatal(err)
	}

	opts := motifstream.ClusterOptions{
		Partitions:             *partitions,
		Replicas:               *replicas,
		K:                      *k,
		Window:                 *window,
		MaxInfluencers:         *maxInfl,
		MaxFanout:              *maxFanout,
		DisableSharing:         *noSharing,
		QueueDelayMedian:       *queueMed,
		QueueDelayP99:          *queueP99,
		Seed:                   1,
		CheckpointDir:          *ckptDir,
		CheckpointInterval:     *ckptEvery,
		CheckpointCompactEvery: *compactN,
		StaticSnapshotDir:      *staticSnap,
		LogDir:                 *logDir,
		MirrorBases:            *mirrorN,
		HealAfter:              *healAfter,
		ApplyBatch:             *batchN,
		ApplyWorkers:           *workersN,
		Audit:                  *auditOn,
		Listen:                 *listen,
		Join:                   *join,
		OwnedReplicas:          owned,
	}
	if motifSrc != "" {
		if err := opts.RegisterMotifs(motifSrc); err != nil {
			return fail("-motifs %s: %v", *motifsPath, err)
		}
	}

	if *join != "" {
		// Worker process: consume the owned slots until the hub ends the
		// stream, then exit through the full durable stop. The workload
		// flags must match the hub's — the static follow graph is what the
		// worker's partitions detect against.
		clu, err := motifstream.NewCluster(static, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("worker: joined %s owning %s (%d static edges)\n", *join, *ownedStr, len(static))
		if err := clu.Wait(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("worker: stream ended, durable stop complete\n")
		return 0
	}

	fmt.Printf("workload: %d static follow edges, %d stream events\n", len(static), len(events))
	clu, err := motifstream.NewCluster(static, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Hub with -workerprocs: split every replica slot round-robin across N
	// re-exec'd worker processes, then drive the workload as usual. The
	// children inherit the workload and shape flags so each builds the
	// same static graph and detection programs.
	var workers []*exec.Cmd
	if *listen != "" && *workerProcs > 0 {
		addr := clu.ListenAddr()
		fmt.Printf("hub: listening on %s, spawning %d worker processes\n", addr, *workerProcs)
		groups := splitSlots(*partitions, *replicas, *workerProcs)
		for wi, slots := range groups {
			if len(slots) == 0 {
				continue
			}
			cmd, err := spawnWorker(addr, slots, fs)
			if err != nil {
				log.Fatalf("spawn worker %d: %v", wi, err)
			}
			workers = append(workers, cmd)
		}
	} else if *listen != "" {
		fmt.Printf("hub: listening on %s, waiting for external workers (-join)\n", clu.ListenAddr())
	}
	if *listen != "" {
		// Publishing into a hub with absent workers would stream into the
		// log with nobody consuming, then shut the listener before slow
		// joiners attach; wait until every slot's worker is caught up.
		for pid := 0; pid < *partitions; pid++ {
			for r := 0; r < *replicas; r++ {
				if err := clu.AwaitReplicaLive(pid, r, 5*time.Minute); err != nil {
					log.Fatalf("waiting for the worker owning slot %d/%d: %v", pid, r, err)
				}
			}
		}
		fmt.Printf("hub: all %d replica slots live\n", *partitions**replicas)
	}

	start := time.Now()
	var delivered, ingested uint64

	// With -restarts N the stream is split into N+1 runs; between runs the
	// whole cluster shuts down and a brand-new one reopens over the same
	// durable log and checkpoint directories — the cross-process restart
	// path, driven end to end.
	boundaries := map[int]bool{}
	for r := 1; r <= *restarts; r++ {
		boundaries[r*len(events)/(*restarts+1)] = true
	}
	// Elastic placement events are spread the same way: -reprovision
	// replaces replica 1 of every partition mid-stream (node death +
	// replacement), -scale-events alternates a live scale-out with a
	// scale-in of the replica it added.
	reprovAt := map[int]bool{}
	for r := 1; r <= *reprovN; r++ {
		reprovAt[r*len(events)/(*reprovN+1)] = true
	}
	scaleAt := map[int]int{}
	for s := 1; s <= *scaleN; s++ {
		scaleAt[s*len(events)/(*scaleN+1)] = s
	}
	scaledIdx := -1

	for i, e := range events {
		if reprovAt[i] {
			for pid := 0; pid < *partitions; pid++ {
				if err := clu.KillReplica(pid, 1); err != nil {
					log.Fatalf("kill %d/1: %v", pid, err)
				}
				if err := clu.ReprovisionReplica(pid, 1); err != nil {
					log.Fatalf("reprovision %d/1: %v", pid, err)
				}
			}
			fmt.Printf("  --- event %d: replaced the node of replica 1 in all %d partitions ---\n", i, *partitions)
		}
		if s, ok := scaleAt[i]; ok {
			if s%2 == 1 {
				for pid := 0; pid < *partitions; pid++ {
					idx, err := clu.AddReplica(pid)
					if err != nil {
						log.Fatalf("add replica to %d: %v", pid, err)
					}
					scaledIdx = idx
				}
				fmt.Printf("  --- event %d: scaled out to replica %d in all partitions ---\n", i, scaledIdx)
			} else if scaledIdx >= 0 {
				for pid := 0; pid < *partitions; pid++ {
					if err := clu.DecommissionReplica(pid, scaledIdx); err != nil {
						log.Fatalf("decommission %d/%d: %v", pid, scaledIdx, err)
					}
				}
				fmt.Printf("  --- event %d: decommissioned replica %d in all partitions ---\n", i, scaledIdx)
			}
		}
		if boundaries[i] {
			// Shut down before reading stats: the drain delivers whatever
			// is still in flight in the firehose and delivery queues, and
			// those pushes belong in this run's totals.
			clu.Shutdown()
			s := clu.Stats()
			delivered += s.Delivered
			ingested += s.Events
			fmt.Printf("  --- restart at event %d: shut down (%d pushed this run), reopening from %s + %s ---\n",
				i, s.Delivered, *logDir, *ckptDir)
			clu, err = motifstream.ReopenCluster(static, opts)
			if err != nil {
				log.Fatalf("reopen: %v", err)
			}
		}
		if err := clu.Publish(e); err != nil {
			log.Fatal(err)
		}
		if *progress > 0 && (i+1)%*progress == 0 {
			s := clu.Stats()
			fmt.Printf("  %8d events published | %8d pushed | wall %v\n",
				i+1, delivered+s.Delivered, time.Since(start).Round(time.Millisecond))
		}
	}
	clu.Shutdown()
	wall := time.Since(start)

	// A networked shutdown ends every worker's stream; collect the
	// children before reporting so their final flushes are on disk.
	for wi, cmd := range workers {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("worker %d: %v", wi, err)
		}
	}

	// Counters reset at each restart boundary; fold the earlier runs back
	// in (latency quantiles and the funnel describe the final run).
	s := clu.Stats()
	s.Delivered += delivered
	s.Events += ingested
	fmt.Printf("\n=== run complete ===\n")
	fmt.Printf("events:      %d in %v (%.0f events/s; paper design target 10^4/s)\n",
		s.Events, wall.Round(time.Millisecond), float64(s.Events)/wall.Seconds())
	fmt.Printf("pushes:      %d\n", s.Delivered)
	fmt.Printf("latency:     p50=%v p99=%v end-to-end (paper: 7s / 15s)\n",
		s.LatencyP50.Round(100*time.Millisecond), s.LatencyP99.Round(100*time.Millisecond))
	fmt.Printf("funnel:      raw=%d -> dup-%d asleep-%d fatigue-%d -> delivered=%d (%.3f%%)\n",
		s.Funnel.Raw, s.Funnel.DroppedDuplicate, s.Funnel.DroppedAsleep,
		s.Funnel.DroppedFatigue, s.Funnel.Delivered, 100*s.Funnel.DeliveryRate())
	if *ckptDir != "" {
		fmt.Printf("recovery:    %d checkpoint segments (%d compactions) in %s; cut pause p99=%v; firehose log truncated below offset %d\n",
			s.Checkpoints, s.Compactions, *ckptDir, s.CheckpointPauseP99, s.LogTruncatedBelow)
		fmt.Printf("delivery:    %d pipeline state cuts (dedup LRU + fatigue budgets), %d restored at restarts\n",
			s.DeliveryStateCuts, s.DeliveryStateRestores)
		fmt.Printf("placement:   %d reprovisions (%d auto-healed), %d base mirrors, %d pool restores, %d scale-outs, %d scale-ins, %d fsyncs saved\n",
			s.Reprovisions, s.Healed, s.BaseMirrors, s.BasePoolRestores, s.ScaleOuts, s.ScaleIns, s.FsyncsSaved)
	}
	if s.ApplyBatches > 0 {
		fmt.Printf("batching:    %d apply batches (mean %.1f / p99 %.0f envelopes per batch, bound %d, %d workers)\n",
			s.ApplyBatches, s.ApplyBatchMean, s.ApplyBatchP99, *batchN, *workersN)
	}
	if *auditOn {
		// Cross-verify the recorded per-cut fingerprints of every
		// partition's replica group: any two replicas that recorded the
		// same firehose offset must have held bit-identical state.
		var records, compared, mismatches int
		for pid := 0; pid < *partitions; pid++ {
			rep, err := clu.VerifyFingerprints(pid)
			if err != nil {
				log.Fatalf("verify fingerprints %d: %v", pid, err)
			}
			records += rep.Records
			compared += rep.Compared
			mismatches += len(rep.Mismatches)
			for _, m := range rep.Mismatches {
				fmt.Printf("  AUDIT MISMATCH partition %d offset %d: %v\n", pid, m.Offset, m.Sums)
			}
		}
		fmt.Printf("audit:       %d fingerprints recorded, %d offsets cross-compared, %d mismatches (%d flagged by the pipeline)\n",
			records, compared, mismatches, s.AuditMismatches)
		if mismatches > 0 || s.AuditMismatches > 0 {
			log.Fatal("audit: replica state diverged — fingerprint mismatch")
		}
	}

	// The broker fan-out read path: globally hottest recommendations.
	if top, err := clu.TopItems(5); err == nil && len(top) > 0 {
		fmt.Println("top recommended items (broker fan-out/gather):")
		for _, ic := range top {
			fmt.Printf("  item %-10d recommended %d times\n", ic.Item, ic.Count)
		}
	}
	return 0
}

// parseOwned parses "0/0,1/0" into (partition, replica) pairs and
// validates them against the deployment shape.
func parseOwned(s string, partitions, replicas int) ([][2]int, error) {
	if s == "" {
		return nil, nil
	}
	var owned [][2]int
	for _, part := range strings.Split(s, ",") {
		pr := strings.Split(strings.TrimSpace(part), "/")
		if len(pr) != 2 {
			return nil, fmt.Errorf("-owned: %q is not partition/replica", part)
		}
		pid, err1 := strconv.Atoi(pr[0])
		r, err2 := strconv.Atoi(pr[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("-owned: %q is not partition/replica", part)
		}
		if pid < 0 || pid >= partitions || r < 0 || r >= replicas {
			return nil, fmt.Errorf("-owned: slot %d/%d outside %d partitions x %d replicas", pid, r, partitions, replicas)
		}
		owned = append(owned, [2]int{pid, r})
	}
	return owned, nil
}

// splitSlots deals every (partition, replica) slot round-robin across n
// worker processes.
func splitSlots(partitions, replicas, n int) [][][2]int {
	groups := make([][][2]int, n)
	i := 0
	for pid := 0; pid < partitions; pid++ {
		for r := 0; r < replicas; r++ {
			groups[i%n] = append(groups[i%n], [2]int{pid, r})
			i++
		}
	}
	return groups
}

// workerFlags is the set of flags a spawned worker inherits from the hub
// verbatim: the workload (for the static graph) and every knob that
// shapes per-replica detection or checkpointing.
var workerFlags = map[string]bool{
	"scenario": true, "static": true, "stream": true,
	"partitions": true, "replicas": true, "k": true, "window": true,
	"maxinfluencers": true, "maxfanout": true,
	"motifs": true, "nosharing": true,
	"queuemedian": true, "queuep99": true,
	"checkpointdir": true, "checkpointinterval": true, "compactevery": true,
	"staticsnapdir": true, "mirrorbases": true,
	"applybatch": true, "applyworkers": true, "audit": true,
}

// spawnWorker re-execs this binary as a worker owning the given slots.
func spawnWorker(hubAddr string, slots [][2]int, fs *flag.FlagSet) (*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	parts := make([]string, len(slots))
	for i, s := range slots {
		parts[i] = fmt.Sprintf("%d/%d", s[0], s[1])
	}
	args := []string{"-join", hubAddr, "-owned", strings.Join(parts, ","), "-progress", "0"}
	fs.Visit(func(f *flag.Flag) {
		if workerFlags[f.Name] {
			args = append(args, "-"+f.Name+"="+f.Value.String())
		}
	})
	cmd := exec.Command(self, args...)
	// MAGICRECS_BE_MAIN routes a re-exec'd *test* binary into main()
	// instead of the test runner; the real binary ignores it.
	cmd.Env = append(os.Environ(), "MAGICRECS_BE_MAIN=1")
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// loadWorkload returns the static and dynamic edge sets, either from
// recorded files or from a named scenario preset.
func loadWorkload(scenario, staticPath, streamPath string) (static, events []graph.Edge, err error) {
	if staticPath != "" || streamPath != "" {
		if staticPath == "" || streamPath == "" {
			return nil, nil, fmt.Errorf("-static and -stream must be given together")
		}
		if static, err = readEdges(staticPath); err != nil {
			return nil, nil, err
		}
		if events, err = readEdges(streamPath); err != nil {
			return nil, nil, err
		}
		return static, events, nil
	}
	sc, ok := workload.ScenarioByName(scenario)
	if !ok {
		return nil, nil, fmt.Errorf("unknown scenario %q (want small, medium, or large)", scenario)
	}
	return workload.GenFollowGraph(sc.Graph), workload.GenEventStream(sc.Stream), nil
}

func readEdges(path string) ([]graph.Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return stream.ReadEdges(f)
}
