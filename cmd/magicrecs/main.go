// Command magicrecs runs the full simulated recommendation cluster — the
// production system the paper describes, nicknamed "Magic Recs" — on a
// synthetic or recorded workload, printing live throughput, latency, and
// funnel statistics.
//
// Usage:
//
//	magicrecs -scenario medium
//	magicrecs -static data/static.edges -stream data/stream.edges
//
// Flags control the paper's tunables: k, the window τ, partition and
// replica counts, influencer cap, and queue-delay modeling.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"motifstream"
	"motifstream/internal/graph"
	"motifstream/internal/stream"
	"motifstream/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("magicrecs: ")

	var (
		scenario   = flag.String("scenario", "medium", "workload preset: small, medium, large (ignored when -static/-stream set)")
		staticPath = flag.String("static", "", "recorded static edge file (from loadgen)")
		streamPath = flag.String("stream", "", "recorded stream edge file (from loadgen)")
		partitions = flag.Int("partitions", 20, "number of partitions (paper: 20)")
		replicas   = flag.Int("replicas", 1, "replicas per partition")
		k          = flag.Int("k", 3, "support threshold k (paper production: 3)")
		window     = flag.Duration("window", 10*time.Minute, "freshness window tau")
		maxInfl    = flag.Int("maxinfluencers", 200, "influencer cap per user (0 = unlimited)")
		maxFanout  = flag.Int("maxfanout", 64, "recent-actor cap per event (-1 = unlimited)")
		queueMed   = flag.Duration("queuemedian", 7*time.Second, "simulated queue-delay median (0 disables)")
		queueP99   = flag.Duration("queuep99", 15*time.Second, "simulated queue-delay p99")
		progress   = flag.Int("progress", 50_000, "print progress every N events (0 disables)")
		ckptDir    = flag.String("checkpointdir", "", "directory for durable replica checkpoints (enables crash recovery; empty disables)")
		ckptEvery  = flag.Duration("checkpointinterval", time.Minute, "stream-time interval between replica checkpoints")
		compactN   = flag.Int("compactevery", 8, "delta checkpoint segments per chain before the background compactor folds a new base")
		staticSnap = flag.String("staticsnapdir", "", "directory of offline-built S snapshots (s-p%03d.snap) reloaded on replica restore")
		logDir     = flag.String("logdir", "", "directory for the durable firehose log (WAL); with -checkpointdir, whole-cluster restarts recover from disk")
		restarts   = flag.Int("restarts", 0, "restart the whole cluster N times mid-stream (Shutdown + Reopen over the same dirs; requires -logdir)")
		mirrorN    = flag.Int("mirrorbases", 0, "replicate each compacted base checkpoint to N peer replica directories (base replication; 0 disables)")
		reprovN    = flag.Int("reprovision", 0, "N times mid-stream, kill replica 1 of every partition and reprovision it onto a fresh node (requires -checkpointdir and -replicas >= 2)")
		scaleN     = flag.Int("scale-events", 0, "perform N live scale events mid-stream, alternating AddReplica and DecommissionReplica on every partition (requires -checkpointdir)")
		healAfter  = flag.Duration("healafter", 0, "auto-reprovision replicas dead longer than this (auto-healer; 0 disables)")
		auditOn    = flag.Bool("audit", false, "record a CRC32C state fingerprint at every checkpoint cut and cross-verify replicas after the run (requires -checkpointdir)")
		batchN     = flag.Int("applybatch", 0, "batched detection hot path: drain up to N envelopes per apply batch (0/1 = per-envelope apply)")
		workersN   = flag.Int("applyworkers", 0, "worker goroutines for candidate generation per batch, sharded by target (0/1 = consumer goroutine; needs -applybatch > 1)")
	)
	flag.Parse()

	if *restarts > 0 && (*logDir == "" || *ckptDir == "") {
		log.Fatal("-restarts requires -logdir and -checkpointdir")
	}
	if (*reprovN > 0 || *scaleN > 0 || *healAfter > 0) && *ckptDir == "" {
		log.Fatal("-reprovision, -scale-events, and -healafter require -checkpointdir")
	}
	if *reprovN > 0 && *replicas < 2 {
		log.Fatal("-reprovision requires -replicas >= 2 (the last alive replica cannot be replaced)")
	}
	if *auditOn && *ckptDir == "" {
		log.Fatal("-audit requires -checkpointdir")
	}

	static, events, err := loadWorkload(*scenario, *staticPath, *streamPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d static follow edges, %d stream events\n", len(static), len(events))

	opts := motifstream.ClusterOptions{
		Partitions:             *partitions,
		Replicas:               *replicas,
		K:                      *k,
		Window:                 *window,
		MaxInfluencers:         *maxInfl,
		MaxFanout:              *maxFanout,
		QueueDelayMedian:       *queueMed,
		QueueDelayP99:          *queueP99,
		Seed:                   1,
		CheckpointDir:          *ckptDir,
		CheckpointInterval:     *ckptEvery,
		CheckpointCompactEvery: *compactN,
		StaticSnapshotDir:      *staticSnap,
		LogDir:                 *logDir,
		MirrorBases:            *mirrorN,
		HealAfter:              *healAfter,
		ApplyBatch:             *batchN,
		ApplyWorkers:           *workersN,
		Audit:                  *auditOn,
	}
	clu, err := motifstream.NewCluster(static, opts)
	if err != nil {
		log.Fatal(err)
	}

	// With -restarts N the stream is split into N+1 runs; between runs the
	// whole cluster shuts down and a brand-new one reopens over the same
	// durable log and checkpoint directories — the cross-process restart
	// path, driven end to end.
	boundaries := map[int]bool{}
	for r := 1; r <= *restarts; r++ {
		boundaries[r*len(events)/(*restarts+1)] = true
	}
	// Elastic placement events are spread the same way: -reprovision
	// replaces replica 1 of every partition mid-stream (node death +
	// replacement), -scale-events alternates a live scale-out with a
	// scale-in of the replica it added.
	reprovAt := map[int]bool{}
	for r := 1; r <= *reprovN; r++ {
		reprovAt[r*len(events)/(*reprovN+1)] = true
	}
	scaleAt := map[int]int{}
	for s := 1; s <= *scaleN; s++ {
		scaleAt[s*len(events)/(*scaleN+1)] = s
	}
	scaledIdx := -1

	start := time.Now()
	var delivered, ingested uint64
	for i, e := range events {
		if reprovAt[i] {
			for pid := 0; pid < *partitions; pid++ {
				if err := clu.KillReplica(pid, 1); err != nil {
					log.Fatalf("kill %d/1: %v", pid, err)
				}
				if err := clu.ReprovisionReplica(pid, 1); err != nil {
					log.Fatalf("reprovision %d/1: %v", pid, err)
				}
			}
			fmt.Printf("  --- event %d: replaced the node of replica 1 in all %d partitions ---\n", i, *partitions)
		}
		if s, ok := scaleAt[i]; ok {
			if s%2 == 1 {
				for pid := 0; pid < *partitions; pid++ {
					idx, err := clu.AddReplica(pid)
					if err != nil {
						log.Fatalf("add replica to %d: %v", pid, err)
					}
					scaledIdx = idx
				}
				fmt.Printf("  --- event %d: scaled out to replica %d in all partitions ---\n", i, scaledIdx)
			} else if scaledIdx >= 0 {
				for pid := 0; pid < *partitions; pid++ {
					if err := clu.DecommissionReplica(pid, scaledIdx); err != nil {
						log.Fatalf("decommission %d/%d: %v", pid, scaledIdx, err)
					}
				}
				fmt.Printf("  --- event %d: decommissioned replica %d in all partitions ---\n", i, scaledIdx)
			}
		}
		if boundaries[i] {
			// Shut down before reading stats: the drain delivers whatever
			// is still in flight in the firehose and delivery queues, and
			// those pushes belong in this run's totals.
			clu.Shutdown()
			s := clu.Stats()
			delivered += s.Delivered
			ingested += s.Events
			fmt.Printf("  --- restart at event %d: shut down (%d pushed this run), reopening from %s + %s ---\n",
				i, s.Delivered, *logDir, *ckptDir)
			clu, err = motifstream.ReopenCluster(static, opts)
			if err != nil {
				log.Fatalf("reopen: %v", err)
			}
		}
		if err := clu.Publish(e); err != nil {
			log.Fatal(err)
		}
		if *progress > 0 && (i+1)%*progress == 0 {
			s := clu.Stats()
			fmt.Printf("  %8d events published | %8d pushed | wall %v\n",
				i+1, delivered+s.Delivered, time.Since(start).Round(time.Millisecond))
		}
	}
	clu.Shutdown()
	wall := time.Since(start)

	// Counters reset at each restart boundary; fold the earlier runs back
	// in (latency quantiles and the funnel describe the final run).
	s := clu.Stats()
	s.Delivered += delivered
	s.Events += ingested
	fmt.Printf("\n=== run complete ===\n")
	fmt.Printf("events:      %d in %v (%.0f events/s; paper design target 10^4/s)\n",
		s.Events, wall.Round(time.Millisecond), float64(s.Events)/wall.Seconds())
	fmt.Printf("pushes:      %d\n", s.Delivered)
	fmt.Printf("latency:     p50=%v p99=%v end-to-end (paper: 7s / 15s)\n",
		s.LatencyP50.Round(100*time.Millisecond), s.LatencyP99.Round(100*time.Millisecond))
	fmt.Printf("funnel:      raw=%d -> dup-%d asleep-%d fatigue-%d -> delivered=%d (%.3f%%)\n",
		s.Funnel.Raw, s.Funnel.DroppedDuplicate, s.Funnel.DroppedAsleep,
		s.Funnel.DroppedFatigue, s.Funnel.Delivered, 100*s.Funnel.DeliveryRate())
	if *ckptDir != "" {
		fmt.Printf("recovery:    %d checkpoint segments (%d compactions) in %s; cut pause p99=%v; firehose log truncated below offset %d\n",
			s.Checkpoints, s.Compactions, *ckptDir, s.CheckpointPauseP99, s.LogTruncatedBelow)
		fmt.Printf("delivery:    %d pipeline state cuts (dedup LRU + fatigue budgets), %d restored at restarts\n",
			s.DeliveryStateCuts, s.DeliveryStateRestores)
		fmt.Printf("placement:   %d reprovisions (%d auto-healed), %d base mirrors, %d pool restores, %d scale-outs, %d scale-ins, %d fsyncs saved\n",
			s.Reprovisions, s.Healed, s.BaseMirrors, s.BasePoolRestores, s.ScaleOuts, s.ScaleIns, s.FsyncsSaved)
	}
	if s.ApplyBatches > 0 {
		fmt.Printf("batching:    %d apply batches (mean %.1f / p99 %.0f envelopes per batch, bound %d, %d workers)\n",
			s.ApplyBatches, s.ApplyBatchMean, s.ApplyBatchP99, *batchN, *workersN)
	}
	if *auditOn {
		// Cross-verify the recorded per-cut fingerprints of every
		// partition's replica group: any two replicas that recorded the
		// same firehose offset must have held bit-identical state.
		var records, compared, mismatches int
		for pid := 0; pid < *partitions; pid++ {
			rep, err := clu.VerifyFingerprints(pid)
			if err != nil {
				log.Fatalf("verify fingerprints %d: %v", pid, err)
			}
			records += rep.Records
			compared += rep.Compared
			mismatches += len(rep.Mismatches)
			for _, m := range rep.Mismatches {
				fmt.Printf("  AUDIT MISMATCH partition %d offset %d: %v\n", pid, m.Offset, m.Sums)
			}
		}
		fmt.Printf("audit:       %d fingerprints recorded, %d offsets cross-compared, %d mismatches (%d flagged by the pipeline)\n",
			records, compared, mismatches, s.AuditMismatches)
		if mismatches > 0 || s.AuditMismatches > 0 {
			log.Fatal("audit: replica state diverged — fingerprint mismatch")
		}
	}

	// The broker fan-out read path: globally hottest recommendations.
	if top, err := clu.TopItems(5); err == nil && len(top) > 0 {
		fmt.Println("top recommended items (broker fan-out/gather):")
		for _, ic := range top {
			fmt.Printf("  item %-10d recommended %d times\n", ic.Item, ic.Count)
		}
	}
}

// loadWorkload returns the static and dynamic edge sets, either from
// recorded files or from a named scenario preset.
func loadWorkload(scenario, staticPath, streamPath string) (static, events []graph.Edge, err error) {
	if staticPath != "" || streamPath != "" {
		if staticPath == "" || streamPath == "" {
			return nil, nil, fmt.Errorf("-static and -stream must be given together")
		}
		if static, err = readEdges(staticPath); err != nil {
			return nil, nil, err
		}
		if events, err = readEdges(streamPath); err != nil {
			return nil, nil, err
		}
		return static, events, nil
	}
	sc, ok := workload.ScenarioByName(scenario)
	if !ok {
		return nil, nil, fmt.Errorf("unknown scenario %q (want small, medium, or large)", scenario)
	}
	return workload.GenFollowGraph(sc.Graph), workload.GenEventStream(sc.Stream), nil
}

func readEdges(path string) ([]graph.Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return stream.ReadEdges(f)
}
