package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"motifstream"
	"motifstream/internal/graph"
	"motifstream/internal/stream"
	"motifstream/internal/workload"
)

// TestMain doubles as the re-exec target: with MAGICRECS_BE_MAIN=1 the
// test binary behaves as the magicrecs CLI, which lets the multi-process
// tests spawn real worker OS processes without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("MAGICRECS_BE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"applyworkers without applybatch", []string{"-applyworkers=4"}, "-applyworkers requires -applybatch > 1"},
		{"applyworkers with applybatch 1", []string{"-applyworkers=4", "-applybatch=1"}, "-applyworkers requires -applybatch > 1"},
		{"audit without checkpointdir", []string{"-audit"}, "-audit requires -checkpointdir"},
		{"restarts without dirs", []string{"-restarts=1"}, "-restarts requires -logdir and -checkpointdir"},
		{"restarts without checkpointdir", []string{"-restarts=1", "-logdir=x"}, "-restarts requires -logdir and -checkpointdir"},
		{"listen and join", []string{"-listen=:0", "-join=h:1", "-logdir=a", "-checkpointdir=b"}, "mutually exclusive"},
		{"listen without dirs", []string{"-listen=:0"}, "-listen requires -logdir and -checkpointdir"},
		{"join without owned", []string{"-join=h:1", "-checkpointdir=b"}, "-join requires -owned"},
		{"join without checkpointdir", []string{"-join=h:1", "-owned=0/0"}, "-join requires -checkpointdir"},
		{"join with logdir", []string{"-join=h:1", "-owned=0/0", "-checkpointdir=b", "-logdir=a"}, "-join forbids -logdir"},
		{"owned without join", []string{"-owned=0/0"}, "-owned requires -join"},
		{"workerprocs without listen", []string{"-workerprocs=2"}, "-workerprocs requires -listen"},
		{"lifecycle flags in networked mode", []string{"-listen=:0", "-logdir=a", "-checkpointdir=b", "-scale-events=1"}, "not available with -listen/-join"},
		{"owned slot out of range", []string{"-join=h:1", "-owned=5/9", "-checkpointdir=b"}, "outside 20 partitions x 1 replicas"},
		{"owned malformed", []string{"-join=h:1", "-owned=5", "-checkpointdir=b"}, "not partition/replica"},
		{"motifs missing file", []string{"-motifs=/nonexistent/standing.motif"}, "-motifs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			code := run(tc.args, &buf)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2", code)
			}
			out := buf.String()
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out)
			}
			if !strings.Contains(out, "Usage of magicrecs") {
				t.Fatalf("validation failure did not print usage:\n%s", out)
			}
		})
	}
}

// TestMotifsFlagRejectsBadSource checks that a -motifs file that fails to
// compile aborts before any workload is generated.
func TestMotifsFlagRejectsBadSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.motif")
	if err := os.WriteFile(path, []byte("motif bogus"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if code := run([]string{"-motifs=" + path}, &buf); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(buf.String(), "-motifs") || !strings.Contains(buf.String(), "motifdsl") {
		t.Fatalf("output missing compile error:\n%s", buf.String())
	}
}

// noteKey identifies a delivered (user, item) push; with suppression
// reduced to dedup-only, the delivered set is deterministic across
// process topologies and crash schedules.
type noteKey struct {
	user, item graph.VertexID
}

func baseOptions(ckptDir, logDir string) motifstream.ClusterOptions {
	return motifstream.ClusterOptions{
		Partitions:             2,
		Replicas:               1,
		K:                      2,
		Window:                 10 * time.Minute,
		MaxInfluencers:         200,
		MaxFanout:              64,
		DisableSleepHours:      true,
		MaxPushesPerUserPerDay: 1 << 30,
		Seed:                   1,
		CheckpointDir:          ckptDir,
		CheckpointInterval:     2 * time.Second,
		LogDir:                 logDir,
		Audit:                  true,
	}
}

// TestMultiProcessCrashRestart is the networked crash matrix at the OS
// process level: a hub in this process, workers as SIGKILL-able child
// processes of the test binary, and the single-process run as the
// delivered-set oracle.
func TestMultiProcessCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	tmp := t.TempDir()

	gcfg := workload.GraphConfig{Users: 60, AvgFollows: 6, ZipfS: 1.2, Seed: 3}
	scfg := workload.StreamConfig{
		Users: 60, Events: 600, Rate: 50,
		BurstFraction: 0.5, BurstMeanSize: 6, BurstWindow: 2 * time.Minute,
		ContentFraction: 0.25, ZipfS: 1.3, Seed: 5,
	}
	static := workload.GenFollowGraph(gcfg)
	events := workload.GenEventStream(scfg)
	staticFile := filepath.Join(tmp, "static.edges")
	streamFile := filepath.Join(tmp, "stream.edges")
	writeEdgeFile(t, staticFile, static)
	writeEdgeFile(t, streamFile, events)

	// Oracle: the same workload through a single in-process cluster.
	var mu sync.Mutex
	want := map[noteKey]bool{}
	oopts := baseOptions(filepath.Join(tmp, "oracle-ckpt"), filepath.Join(tmp, "oracle-log"))
	oopts.OnNotify = func(n motifstream.Notification) {
		mu.Lock()
		want[noteKey{n.Candidate.User, n.Candidate.Item}] = true
		mu.Unlock()
	}
	oracle, err := motifstream.NewCluster(static, oopts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := oracle.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	oracle.Shutdown()
	if len(want) == 0 {
		t.Fatal("oracle delivered nothing; workload too weak to test against")
	}

	// Networked: hub here, one worker process per partition.
	ckptDir := filepath.Join(tmp, "ckpt")
	got := map[noteKey]bool{}
	hopts := baseOptions(ckptDir, filepath.Join(tmp, "log"))
	hopts.Listen = "127.0.0.1:0"
	hopts.OnNotify = func(n motifstream.Notification) {
		mu.Lock()
		got[noteKey{n.Candidate.User, n.Candidate.Item}] = true
		mu.Unlock()
	}
	hub, err := motifstream.NewCluster(static, hopts)
	if err != nil {
		t.Fatal(err)
	}
	addr := hub.ListenAddr()
	workerArgs := func(owned string) []string {
		return []string{
			"-join", addr, "-owned", owned, "-checkpointdir", ckptDir,
			"-static", staticFile, "-stream", streamFile,
			"-partitions", "2", "-replicas", "1", "-k", "2",
			"-maxfanout", "64", "-queuemedian", "0s", "-queuep99", "0s",
			"-checkpointinterval", "2s", "-audit", "-progress", "0",
		}
	}
	workerA := spawnTestWorker(t, workerArgs("0/0"))
	workerB := spawnTestWorker(t, workerArgs("1/0"))

	third := len(events) / 3
	for _, e := range events[:third] {
		if err := hub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}

	// Kill worker A the way machines die: SIGKILL, no flush, no FIN.
	if err := workerA.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	workerA.cmd.Wait() // reaps the kill; exit status is expected to be bad
	awaitState(t, hub, 0, 0, "dead")

	// The stream keeps flowing while partition 0 has no worker.
	for _, e := range events[third : 2*third] {
		if err := hub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}

	// Respawn over the same slots and directories: checkpoint restore plus
	// socket replay from the durable floor.
	workerA2 := spawnTestWorker(t, workerArgs("0/0"))
	if err := hub.AwaitReplicaLive(0, 0, 30*time.Second); err != nil {
		t.Fatalf("respawned worker never went live: %v", err)
	}
	for _, e := range events[2*third:] {
		if err := hub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}

	hub.Shutdown()
	waitWorker(t, workerA2, "respawned worker A")
	waitWorker(t, workerB, "worker B")

	mu.Lock()
	defer mu.Unlock()
	for k := range want {
		if !got[k] {
			t.Errorf("missing push user=%d item=%d", k.user, k.item)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected push user=%d item=%d", k.user, k.item)
		}
	}
	if s := hub.Stats(); s.Delivered == 0 {
		t.Error("hub delivered nothing")
	}
	for pid := 0; pid < 2; pid++ {
		rep, err := hub.VerifyFingerprints(pid)
		if err != nil {
			t.Fatalf("verify partition %d: %v", pid, err)
		}
		if len(rep.Mismatches) > 0 {
			t.Errorf("partition %d: %d fingerprint mismatches", pid, len(rep.Mismatches))
		}
		if rep.Records == 0 {
			t.Errorf("partition %d: no audit records survived the crash schedule", pid)
		}
	}
}

// TestWorkerProcsEndToEnd drives the -workerprocs path: one hub process
// (the re-exec'd test binary) spawning its own worker children, run to
// completion over a recorded workload.
func TestWorkerProcsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	tmp := t.TempDir()
	gcfg := workload.GraphConfig{Users: 40, AvgFollows: 5, ZipfS: 1.2, Seed: 11}
	scfg := workload.StreamConfig{
		Users: 40, Events: 300, Rate: 100,
		BurstFraction: 0.5, BurstMeanSize: 5, BurstWindow: 2 * time.Minute,
		ContentFraction: 0.25, ZipfS: 1.3, Seed: 13,
	}
	staticFile := filepath.Join(tmp, "static.edges")
	streamFile := filepath.Join(tmp, "stream.edges")
	writeEdgeFile(t, staticFile, workload.GenFollowGraph(gcfg))
	writeEdgeFile(t, streamFile, workload.GenEventStream(scfg))

	cmd := exec.Command(os.Args[0],
		"-listen", "127.0.0.1:0", "-workerprocs", "2",
		"-logdir", filepath.Join(tmp, "log"), "-checkpointdir", filepath.Join(tmp, "ckpt"),
		"-static", staticFile, "-stream", streamFile,
		"-partitions", "2", "-replicas", "1", "-k", "2",
		"-queuemedian", "0s", "-queuep99", "0s", "-audit", "-progress", "0")
	cmd.Env = append(os.Environ(), "MAGICRECS_BE_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("hub process failed: %v\n%s", err, out)
	}
	for _, wantLine := range []string{"spawning 2 worker processes", "worker: joined", "=== run complete ===", "audit:"} {
		if !strings.Contains(string(out), wantLine) {
			t.Errorf("output missing %q:\n%s", wantLine, out)
		}
	}
	if strings.Contains(string(out), "AUDIT MISMATCH") {
		t.Errorf("fingerprint mismatch in run:\n%s", out)
	}
}

type testWorker struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

func spawnTestWorker(t *testing.T, args []string) *testWorker {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "MAGICRECS_BE_MAIN=1")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &testWorker{cmd: cmd, out: &buf}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return w
}

func waitWorker(t *testing.T, w *testWorker, label string) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- w.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s exited with %v\n%s", label, err, w.out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("%s did not exit after hub shutdown\n%s", label, w.out.String())
	}
}

func awaitState(t *testing.T, c *motifstream.Cluster, pid, r int, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		state, err := c.ReplicaState(pid, r)
		if err != nil {
			t.Fatal(err)
		}
		if state == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %d/%d state = %q, want %q", pid, r, state, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func writeEdgeFile(t *testing.T, path string, edges []graph.Edge) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.WriteEdges(f, edges); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
