// Command soak drives a durable cluster under sustained ingest while
// continuously injecting the full fault menu — replica kills and
// restores, node reprovisions, scale-out/scale-in, and whole-process
// restarts (Shutdown + Reopen over the same durable directories) — for a
// wall-clock budget, then proves the run changed nothing observable:
//
//   - the delivered notification multiset must equal a no-fault oracle
//     run over the same event stream (exactly-once, no loss, no dupes);
//   - every recorded state fingerprint must agree across replicas
//     (bit-identical recoverable state at every audited offset);
//   - the firehose log must have truncated (compaction keeps disk
//     bounded under churn);
//   - goroutine count and heap must not grow monotonically across waves
//     (no leaked workers or state across kill/reopen cycles).
//
// The process exits nonzero on the first violated invariant, so it can
// gate CI directly. Where the in-repo crash matrix probes each fault at
// surgically chosen pipeline stages, soak asks the complementary
// question: does the same machinery hold up under minutes of arbitrary
// interleaving?
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"motifstream/internal/cluster"
	"motifstream/internal/delivery"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

func main() {
	dur := flag.Duration("dur", 2*time.Minute, "wall-clock churn budget before the final verification phase")
	seed := flag.Int64("seed", 1, "workload seed (same seed + same ops = same delivered set)")
	users := flag.Int("users", 48, "ring-graph population")
	wave := flag.Int("wave", 50, "motif completions published per churn wave")
	flag.Parse()

	log.SetFlags(log.Ltime)
	if err := run(*dur, *seed, *users, *wave); err != nil {
		log.Fatalf("soak: FAIL: %v", err)
	}
	fmt.Println("soak: PASS")
}

// noteKey identifies one delivered notification for multiset comparison.
type noteKey struct {
	user, item graph.VertexID
}

// collectNotes wires a mutex-guarded notification recorder into cfg and
// returns a snapshot function.
func collectNotes(cfg *cluster.Config) func() map[noteKey]int {
	var mu sync.Mutex
	got := map[noteKey]int{}
	cfg.OnNotify = func(n delivery.Notification) {
		mu.Lock()
		got[noteKey{n.Candidate.User, n.Candidate.Item}]++
		mu.Unlock()
	}
	return func() map[noteKey]int {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[noteKey]int, len(got))
		for k, v := range got {
			out[k] = v
		}
		return out
	}
}

// ringStatic wires users 0..n-1 so each follows the next two; motifs can
// complete for A's in every partition.
func ringStatic(n int) []graph.Edge {
	var static []graph.Edge
	for a := graph.VertexID(0); a < graph.VertexID(n); a++ {
		static = append(static,
			graph.Edge{Src: a, Dst: (a + 1) % graph.VertexID(n)},
			graph.Edge{Src: a, Dst: (a + 2) % graph.VertexID(n)},
		)
	}
	return static
}

// waveGen emits a seeded stream in waves: each step has two consecutive
// ring members follow a fresh target, completing a K=2 diamond. Stream
// time advances 3s per step so checkpoint cuts and retention sweeps keep
// firing throughout the run, and the global step counter keeps targets
// unique and timestamps monotonic across waves and restarts.
type waveGen struct {
	r     *rand.Rand
	users int
	step  int
}

func newWaveGen(seed int64, users int) *waveGen {
	return &waveGen{r: rand.New(rand.NewSource(seed)), users: users}
}

func (g *waveGen) wave(steps int) []graph.Edge {
	const t0 = int64(10_000_000)
	out := make([]graph.Edge, 0, 2*steps)
	for i := 0; i < steps; i++ {
		b1 := graph.VertexID(g.r.Intn(g.users))
		b2 := (b1 + 1) % graph.VertexID(g.users)
		target := graph.VertexID(100_000 + g.step)
		ts := t0 + int64(g.step)*3_000
		out = append(out,
			graph.Edge{Src: b1, Dst: target, Type: graph.Follow, TS: ts},
			graph.Edge{Src: b2, Dst: target, Type: graph.Follow, TS: ts + 1},
		)
		g.step++
	}
	return out
}

// soakCfg is the durable deployment under test: checkpoints, a durable
// firehose log with tiny segments (so restarts exercise WAL rotation and
// truncation within minutes), one mirrored base per partition (so
// reprovision always has a pool to rebuild from), the fingerprint audit
// on, and a suppression-free deterministic delivery pipeline — the
// delivered multiset depends only on the event stream, never on faults.
func soakCfg(root string, seed int64, static []graph.Edge) cluster.Config {
	return cluster.Config{
		Partitions:  2,
		Replicas:    2,
		StaticEdges: static,
		Dynamic:     dynstore.Options{Retention: time.Hour},
		NewPrograms: func() []motif.Program {
			return []motif.Program{motif.NewDiamond(motif.DiamondConfig{K: 2, Window: 10 * time.Minute})}
		},
		Seed:               seed,
		CheckpointDir:      filepath.Join(root, "ckpt"),
		CheckpointInterval: 3 * time.Second, // stream time: a cut per step
		CompactEvery:       2,               // fold chains constantly
		Audit:              true,
		LogDir:             filepath.Join(root, "log"),
		LogSegmentBytes:    16 << 10,
		LogSyncEvery:       64,
		MirrorBases:        1,
		Delivery: delivery.Options{
			SleepStartHour: 1, SleepEndHour: 1, // equal = suppression off
			MaxPerUserPerDay: 1 << 30,
			TimezoneOf:       func(graph.VertexID) int { return 0 },
		},
	}
}

const awaitTimeout = 30 * time.Second

// soak owns the cluster under churn. A restart replaces the Cluster
// value wholesale, so every op goes through s.c.
type soak struct {
	cfg        cluster.Config
	c          *cluster.Cluster
	gen        *waveGen
	waveSteps  int
	published  []graph.Edge
	notes      func() map[noteKey]int
	goroutines []int
	heaps      []uint64
	waves      int
}

func (s *soak) publishWave() error {
	w := s.gen.wave(s.waveSteps)
	for _, e := range w {
		if err := s.c.Publish(e); err != nil {
			return fmt.Errorf("publish: %w", err)
		}
	}
	s.published = append(s.published, w...)
	return nil
}

func (s *soak) killAll(idx int) error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		if err := s.c.KillReplica(pid, idx); err != nil {
			return fmt.Errorf("kill %d/%d: %w", pid, idx, err)
		}
	}
	return nil
}

func (s *soak) restoreAll(idx int) error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		if err := s.c.RestoreReplica(pid, idx); err != nil {
			return fmt.Errorf("restore %d/%d: %w", pid, idx, err)
		}
	}
	return nil
}

func (s *soak) awaitAll(idx int) error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		if err := s.c.AwaitReplicaLive(pid, idx, awaitTimeout); err != nil {
			return fmt.Errorf("await %d/%d: %w", pid, idx, err)
		}
	}
	return nil
}

func (s *soak) reprovisionAll(idx int) error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		if err := s.c.ReprovisionReplica(pid, idx); err != nil {
			return fmt.Errorf("reprovision %d/%d: %w", pid, idx, err)
		}
	}
	return nil
}

// addAll scales every partition out by one replica and returns the (per
// the placement contract, common) new index.
func (s *soak) addAll() (int, error) {
	idx := -1
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		got, err := s.c.AddReplica(pid)
		if err != nil {
			return -1, fmt.Errorf("add replica to %d: %w", pid, err)
		}
		if idx == -1 {
			idx = got
		} else if got != idx {
			return -1, fmt.Errorf("AddReplica index skew: partition %d got %d, earlier got %d", pid, got, idx)
		}
	}
	return idx, nil
}

func (s *soak) decommissionAll(idx int) error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		if err := s.c.DecommissionReplica(pid, idx); err != nil {
			return fmt.Errorf("decommission %d/%d: %w", pid, idx, err)
		}
	}
	return nil
}

// restart is the cross-process boundary: graceful shutdown, then a
// brand-new Cluster over the same durable directories.
func (s *soak) restart() error {
	s.c.Shutdown()
	c, err := cluster.Reopen(s.cfg)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	s.c = c
	return nil
}

// waitForTruncation keeps publishing until the firehose compaction
// horizon has advanced past zero — proof disk use stays bounded under
// churn. The checkpoint writers drive truncation off stream time, so
// the wait must feed the stream rather than idle.
func (s *soak) waitForTruncation() error {
	deadline := time.Now().Add(awaitTimeout)
	for s.c.Stats().LogTruncatedBelow == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("firehose log never truncated (published %d events)", len(s.published))
		}
		if err := s.publishWave(); err != nil {
			return err
		}
	}
	return nil
}

// sample records post-wave steady-state resource usage. Goroutine counts
// are taken with the topology back at rest (every op awaits live before
// the wave ends), so a leak shows as monotonic growth across samples.
func (s *soak) sample() {
	s.goroutines = append(s.goroutines, runtime.NumGoroutine())
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.heaps = append(s.heaps, ms.HeapAlloc)
}

// checkWave asserts the invariants that must hold mid-run, after every
// wave: the pipeline's own fingerprint cross-checks found nothing.
func (s *soak) checkWave() error {
	if n := s.c.Stats().AuditMismatches; n != 0 {
		return fmt.Errorf("wave %d: pipeline detected %d fingerprint mismatches", s.waves, n)
	}
	return nil
}

// ops is the churn menu, cycled for the duration budget. Each op leaves
// the cluster fully live so samples compare like with like.
func (s *soak) ops() []struct {
	name string
	fn   func() error
} {
	return []struct {
		name string
		fn   func() error
	}{
		{"kill r1, ingest while dead, restore", func() error {
			if err := s.killAll(1); err != nil {
				return err
			}
			if err := s.publishWave(); err != nil {
				return err
			}
			if err := s.restoreAll(1); err != nil {
				return err
			}
			return s.awaitAll(1)
		}},
		{"reprovision r1 under ingest", func() error {
			if err := s.publishWave(); err != nil {
				return err
			}
			if err := s.reprovisionAll(1); err != nil {
				return err
			}
			return s.awaitAll(1)
		}},
		{"scale out, ingest, scale back in", func() error {
			idx, err := s.addAll()
			if err != nil {
				return err
			}
			if err := s.publishWave(); err != nil {
				return err
			}
			if err := s.awaitAll(idx); err != nil {
				return err
			}
			return s.decommissionAll(idx)
		}},
		{"whole-process restart", func() error {
			if err := s.restart(); err != nil {
				return err
			}
			return s.publishWave()
		}},
		{"kill r0 (emitter), ingest, restore", func() error {
			if err := s.killAll(0); err != nil {
				return err
			}
			if err := s.publishWave(); err != nil {
				return err
			}
			if err := s.restoreAll(0); err != nil {
				return err
			}
			return s.awaitAll(0)
		}},
		{"ingest and verify log truncation", func() error {
			if err := s.publishWave(); err != nil {
				return err
			}
			return s.waitForTruncation()
		}},
	}
}

// finish restores anything left dead, drains the cluster, and runs the
// full fingerprint audit: every replica of every partition must have
// recorded bit-identical state at every audited offset.
func (s *soak) finish() error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		for r := 0; r < s.c.Replicas(pid); r++ {
			if state, _ := s.c.ReplicaState(pid, r); state == "dead" {
				if err := s.c.RestoreReplica(pid, r); err != nil {
					return fmt.Errorf("final restore %d/%d: %w", pid, r, err)
				}
			}
		}
	}
	s.c.Shutdown()
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		for r := 0; r < s.c.Replicas(pid); r++ {
			if state, _ := s.c.ReplicaState(pid, r); state != "live" && state != "removed" {
				return fmt.Errorf("replica %d/%d state %q after drain, want live", pid, r, state)
			}
		}
	}
	records := 0
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		rep, err := s.c.VerifyFingerprints(pid)
		if err != nil {
			return fmt.Errorf("VerifyFingerprints(%d): %w", pid, err)
		}
		if len(rep.Mismatches) > 0 {
			return fmt.Errorf("partition %d: state fingerprint mismatches: %+v", pid, rep.Mismatches)
		}
		records += rep.Records
	}
	if records == 0 {
		return fmt.Errorf("vacuous: audit enabled but no fingerprints recorded")
	}
	if n := s.c.Stats().AuditMismatches; n != 0 {
		return fmt.Errorf("pipeline detected %d fingerprint mismatches", n)
	}
	return nil
}

// checkGoroutines fails on monotonic growth: once warmed up, the low
// watermark of the final waves must not sit above the whole early range.
// A fixed slack absorbs scheduler and finalizer jitter; a real leak (one
// worker per kill/restore cycle, say) clears it within a few waves.
func checkGoroutines(samples []int) error {
	const warmup, window, slack = 2, 3, 16
	if len(samples) < warmup+2*window {
		return nil // too short a run to call it a trend
	}
	early := samples[warmup : warmup+window]
	late := samples[len(samples)-window:]
	earlyMax, lateMin := early[0], late[0]
	for _, v := range early {
		if v > earlyMax {
			earlyMax = v
		}
	}
	for _, v := range late {
		if v < lateMin {
			lateMin = v
		}
	}
	if lateMin > earlyMax+slack {
		return fmt.Errorf("goroutines grew monotonically: early max %d, late min %d (samples %v)",
			earlyMax, lateMin, samples)
	}
	return nil
}

// checkHeap fails on egregious post-GC heap growth. The workload keeps
// every published edge in the dynamic store (retention exceeds the run),
// so the heap legitimately grows with the stream; the bound is a
// generous multiple over the warmed-up baseline that a per-wave leak of
// cluster-sized state would still blow through.
func checkHeap(samples []uint64) error {
	const warmup = 2
	if len(samples) <= warmup {
		return nil
	}
	base := samples[warmup]
	if base < 32<<20 {
		base = 32 << 20
	}
	if last := samples[len(samples)-1]; last > 4*base {
		return fmt.Errorf("heap grew from %d to %d bytes post-GC (>4x warmed-up baseline)", samples[warmup], last)
	}
	return nil
}

// oracle replays every published edge through a fresh no-fault cluster
// of the same shape and returns its delivered multiset.
func oracle(root string, seed int64, static []graph.Edge, published []graph.Edge) (map[noteKey]int, error) {
	cfg := soakCfg(root, seed, static)
	snapshot := collectNotes(&cfg)
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	c.Start()
	for _, e := range published {
		if err := c.Publish(e); err != nil {
			return nil, fmt.Errorf("oracle publish: %w", err)
		}
	}
	c.Stop()
	return snapshot(), nil
}

// compareNotes fails unless the churn run delivered exactly the oracle
// multiset.
func compareNotes(want, got map[noteKey]int) error {
	if len(want) == 0 {
		return fmt.Errorf("vacuous: oracle run delivered nothing")
	}
	for k, n := range want {
		if got[k] != n {
			return fmt.Errorf("notification %v delivered %d times under churn, %d in oracle", k, got[k], n)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Errorf("churn run delivered %v, oracle did not", k)
		}
	}
	return nil
}

func run(dur time.Duration, seed int64, users, wave int) error {
	root, err := os.MkdirTemp("", "soak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	static := ringStatic(users)
	s := &soak{
		cfg:       soakCfg(filepath.Join(root, "churn"), seed, static),
		gen:       newWaveGen(seed, users),
		waveSteps: wave,
	}
	s.notes = collectNotes(&s.cfg)
	c, err := cluster.New(s.cfg)
	if err != nil {
		return err
	}
	c.Start()
	s.c = c

	log.Printf("churn phase: %v budget, %d users, %d completions/wave", dur, users, wave)
	ops := s.ops()
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		op := ops[s.waves%len(ops)]
		start := time.Now()
		if err := op.fn(); err != nil {
			return fmt.Errorf("wave %d (%s): %w", s.waves, op.name, err)
		}
		if err := s.checkWave(); err != nil {
			return err
		}
		s.sample()
		s.waves++
		log.Printf("wave %3d  %-40s %6s  %d events  %d goroutines",
			s.waves, op.name, time.Since(start).Round(time.Millisecond), len(s.published),
			s.goroutines[len(s.goroutines)-1])
	}
	if s.waves < len(ops) {
		return fmt.Errorf("only %d waves in %v: every op must run at least once (raise -dur)", s.waves, dur)
	}

	log.Printf("verification phase: %d waves, %d events published", s.waves, len(s.published))
	if err := s.finish(); err != nil {
		return err
	}
	// Counters reset at each whole-process restart, so these cover the
	// final incarnation only; the delivered-set oracle below covers the
	// whole run.
	st := s.c.Stats()
	log.Printf("fingerprint audit clean (%d audit records since last restart)", st.AuditRecords)

	want, err := oracle(filepath.Join(root, "oracle"), seed, static, s.published)
	if err != nil {
		return err
	}
	if err := compareNotes(want, s.notes()); err != nil {
		return err
	}
	log.Printf("oracle equivalence: %d distinct notifications match exactly", len(want))

	if err := checkGoroutines(s.goroutines); err != nil {
		return err
	}
	if err := checkHeap(s.heaps); err != nil {
		return err
	}
	log.Printf("resource check: goroutines %v, heap %d -> %d bytes",
		s.goroutines, s.heaps[0], s.heaps[len(s.heaps)-1])
	return nil
}
