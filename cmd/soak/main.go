// Command soak drives a durable cluster under sustained ingest while
// continuously injecting the full fault menu — replica kills and
// restores, node reprovisions, scale-out/scale-in, and whole-process
// restarts (Shutdown + Reopen over the same durable directories) — for a
// wall-clock budget, then proves the run changed nothing observable:
//
//   - the delivered notification multiset must equal a no-fault oracle
//     run over the same event stream (exactly-once, no loss, no dupes);
//   - every recorded state fingerprint must agree across replicas
//     (bit-identical recoverable state at every audited offset);
//   - the firehose log must have truncated (compaction keeps disk
//     bounded under churn);
//   - goroutine count and heap must not grow monotonically across waves
//     (no leaked workers or state across kill/reopen cycles).
//
// The process exits nonzero on the first violated invariant, so it can
// gate CI directly. Where the in-repo crash matrix probes each fault at
// surgically chosen pipeline stages, soak asks the complementary
// question: does the same machinery hold up under minutes of arbitrary
// interleaving?
//
// With -net the deployment under churn is networked instead: a hub plus
// one worker per replica index attached over real loopback sockets, and
// the fault menu becomes network faults — random connection drops
// mid-stream (every worker socket severed at seeded points inside a
// wave) and worker crashes (Abort: sockets drop, no flush, no final
// checkpoint cut) with recovery over the same durable chains. The same
// no-fault oracle equivalence, fingerprint audit, truncation, and
// resource-flatness invariants apply.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"motifstream/internal/cluster"
	"motifstream/internal/delivery"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

func main() {
	dur := flag.Duration("dur", 2*time.Minute, "wall-clock churn budget before the final verification phase")
	seed := flag.Int64("seed", 1, "workload seed (same seed + same ops = same delivered set)")
	users := flag.Int("users", 48, "ring-graph population")
	wave := flag.Int("wave", 50, "motif completions published per churn wave")
	netMode := flag.Bool("net", false, "networked mode: hub + socket-attached workers under connection drops and worker crashes instead of the local lifecycle menu")
	flag.Parse()

	log.SetFlags(log.Ltime)
	var err error
	if *netMode {
		err = runNet(*dur, *seed, *users, *wave)
	} else {
		err = run(*dur, *seed, *users, *wave)
	}
	if err != nil {
		log.Fatalf("soak: FAIL: %v", err)
	}
	fmt.Println("soak: PASS")
}

// noteKey identifies one delivered notification for multiset comparison.
type noteKey struct {
	user, item graph.VertexID
}

// collectNotes wires a mutex-guarded notification recorder into cfg and
// returns a snapshot function.
func collectNotes(cfg *cluster.Config) func() map[noteKey]int {
	var mu sync.Mutex
	got := map[noteKey]int{}
	cfg.OnNotify = func(n delivery.Notification) {
		mu.Lock()
		got[noteKey{n.Candidate.User, n.Candidate.Item}]++
		mu.Unlock()
	}
	return func() map[noteKey]int {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[noteKey]int, len(got))
		for k, v := range got {
			out[k] = v
		}
		return out
	}
}

// ringStatic wires users 0..n-1 so each follows the next two; motifs can
// complete for A's in every partition.
func ringStatic(n int) []graph.Edge {
	var static []graph.Edge
	for a := graph.VertexID(0); a < graph.VertexID(n); a++ {
		static = append(static,
			graph.Edge{Src: a, Dst: (a + 1) % graph.VertexID(n)},
			graph.Edge{Src: a, Dst: (a + 2) % graph.VertexID(n)},
		)
	}
	return static
}

// waveGen emits a seeded stream in waves: each step has two consecutive
// ring members follow a fresh target, completing a K=2 diamond. Stream
// time advances 3s per step so checkpoint cuts and retention sweeps keep
// firing throughout the run, and the global step counter keeps targets
// unique and timestamps monotonic across waves and restarts.
type waveGen struct {
	r     *rand.Rand
	users int
	step  int
}

func newWaveGen(seed int64, users int) *waveGen {
	return &waveGen{r: rand.New(rand.NewSource(seed)), users: users}
}

func (g *waveGen) wave(steps int) []graph.Edge {
	const t0 = int64(10_000_000)
	out := make([]graph.Edge, 0, 2*steps)
	for i := 0; i < steps; i++ {
		b1 := graph.VertexID(g.r.Intn(g.users))
		b2 := (b1 + 1) % graph.VertexID(g.users)
		target := graph.VertexID(100_000 + g.step)
		ts := t0 + int64(g.step)*3_000
		out = append(out,
			graph.Edge{Src: b1, Dst: target, Type: graph.Follow, TS: ts},
			graph.Edge{Src: b2, Dst: target, Type: graph.Follow, TS: ts + 1},
		)
		g.step++
	}
	return out
}

// soakCfg is the durable deployment under test: checkpoints, a durable
// firehose log with tiny segments (so restarts exercise WAL rotation and
// truncation within minutes), one mirrored base per partition (so
// reprovision always has a pool to rebuild from), the fingerprint audit
// on, and a suppression-free deterministic delivery pipeline — the
// delivered multiset depends only on the event stream, never on faults.
func soakCfg(root string, seed int64, static []graph.Edge) cluster.Config {
	return cluster.Config{
		Partitions:  2,
		Replicas:    2,
		StaticEdges: static,
		Dynamic:     dynstore.Options{Retention: time.Hour},
		NewPrograms: func() []motif.Program {
			return []motif.Program{motif.NewDiamond(motif.DiamondConfig{K: 2, Window: 10 * time.Minute})}
		},
		Seed:               seed,
		CheckpointDir:      filepath.Join(root, "ckpt"),
		CheckpointInterval: 3 * time.Second, // stream time: a cut per step
		CompactEvery:       2,               // fold chains constantly
		Audit:              true,
		LogDir:             filepath.Join(root, "log"),
		LogSegmentBytes:    16 << 10,
		LogSyncEvery:       64,
		MirrorBases:        1,
		Delivery: delivery.Options{
			SleepStartHour: 1, SleepEndHour: 1, // equal = suppression off
			MaxPerUserPerDay: 1 << 30,
			TimezoneOf:       func(graph.VertexID) int { return 0 },
		},
	}
}

const awaitTimeout = 30 * time.Second

// soak owns the cluster under churn. A restart replaces the Cluster
// value wholesale, so every op goes through s.c.
type soak struct {
	cfg        cluster.Config
	c          *cluster.Cluster
	gen        *waveGen
	waveSteps  int
	published  []graph.Edge
	notes      func() map[noteKey]int
	goroutines []int
	heaps      []uint64
	waves      int
}

func (s *soak) publishWave() error {
	w := s.gen.wave(s.waveSteps)
	for _, e := range w {
		if err := s.c.Publish(e); err != nil {
			return fmt.Errorf("publish: %w", err)
		}
	}
	s.published = append(s.published, w...)
	return nil
}

func (s *soak) killAll(idx int) error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		if err := s.c.KillReplica(pid, idx); err != nil {
			return fmt.Errorf("kill %d/%d: %w", pid, idx, err)
		}
	}
	return nil
}

func (s *soak) restoreAll(idx int) error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		if err := s.c.RestoreReplica(pid, idx); err != nil {
			return fmt.Errorf("restore %d/%d: %w", pid, idx, err)
		}
	}
	return nil
}

func (s *soak) awaitAll(idx int) error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		if err := s.c.AwaitReplicaLive(pid, idx, awaitTimeout); err != nil {
			return fmt.Errorf("await %d/%d: %w", pid, idx, err)
		}
	}
	return nil
}

func (s *soak) reprovisionAll(idx int) error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		if err := s.c.ReprovisionReplica(pid, idx); err != nil {
			return fmt.Errorf("reprovision %d/%d: %w", pid, idx, err)
		}
	}
	return nil
}

// addAll scales every partition out by one replica and returns the (per
// the placement contract, common) new index.
func (s *soak) addAll() (int, error) {
	idx := -1
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		got, err := s.c.AddReplica(pid)
		if err != nil {
			return -1, fmt.Errorf("add replica to %d: %w", pid, err)
		}
		if idx == -1 {
			idx = got
		} else if got != idx {
			return -1, fmt.Errorf("AddReplica index skew: partition %d got %d, earlier got %d", pid, got, idx)
		}
	}
	return idx, nil
}

func (s *soak) decommissionAll(idx int) error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		if err := s.c.DecommissionReplica(pid, idx); err != nil {
			return fmt.Errorf("decommission %d/%d: %w", pid, idx, err)
		}
	}
	return nil
}

// restart is the cross-process boundary: graceful shutdown, then a
// brand-new Cluster over the same durable directories.
func (s *soak) restart() error {
	s.c.Shutdown()
	c, err := cluster.Reopen(s.cfg)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	s.c = c
	return nil
}

// waitForTruncation keeps publishing until the firehose compaction
// horizon has advanced past zero — proof disk use stays bounded under
// churn. The checkpoint writers drive truncation off stream time, so
// the wait must feed the stream rather than idle.
func (s *soak) waitForTruncation() error {
	deadline := time.Now().Add(awaitTimeout)
	for s.c.Stats().LogTruncatedBelow == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("firehose log never truncated (published %d events)", len(s.published))
		}
		if err := s.publishWave(); err != nil {
			return err
		}
	}
	return nil
}

// sample records post-wave steady-state resource usage. Goroutine counts
// are taken with the topology back at rest (every op awaits live before
// the wave ends), so a leak shows as monotonic growth across samples.
func (s *soak) sample() {
	s.goroutines = append(s.goroutines, runtime.NumGoroutine())
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.heaps = append(s.heaps, ms.HeapAlloc)
}

// checkWave asserts the invariants that must hold mid-run, after every
// wave: the pipeline's own fingerprint cross-checks found nothing.
func (s *soak) checkWave() error {
	if n := s.c.Stats().AuditMismatches; n != 0 {
		return fmt.Errorf("wave %d: pipeline detected %d fingerprint mismatches", s.waves, n)
	}
	return nil
}

// ops is the churn menu, cycled for the duration budget. Each op leaves
// the cluster fully live so samples compare like with like.
func (s *soak) ops() []struct {
	name string
	fn   func() error
} {
	return []struct {
		name string
		fn   func() error
	}{
		{"kill r1, ingest while dead, restore", func() error {
			if err := s.killAll(1); err != nil {
				return err
			}
			if err := s.publishWave(); err != nil {
				return err
			}
			if err := s.restoreAll(1); err != nil {
				return err
			}
			return s.awaitAll(1)
		}},
		{"reprovision r1 under ingest", func() error {
			if err := s.publishWave(); err != nil {
				return err
			}
			if err := s.reprovisionAll(1); err != nil {
				return err
			}
			return s.awaitAll(1)
		}},
		{"scale out, ingest, scale back in", func() error {
			idx, err := s.addAll()
			if err != nil {
				return err
			}
			if err := s.publishWave(); err != nil {
				return err
			}
			if err := s.awaitAll(idx); err != nil {
				return err
			}
			return s.decommissionAll(idx)
		}},
		{"whole-process restart", func() error {
			if err := s.restart(); err != nil {
				return err
			}
			return s.publishWave()
		}},
		{"kill r0 (emitter), ingest, restore", func() error {
			if err := s.killAll(0); err != nil {
				return err
			}
			if err := s.publishWave(); err != nil {
				return err
			}
			if err := s.restoreAll(0); err != nil {
				return err
			}
			return s.awaitAll(0)
		}},
		{"ingest and verify log truncation", func() error {
			if err := s.publishWave(); err != nil {
				return err
			}
			return s.waitForTruncation()
		}},
	}
}

// finish restores anything left dead, drains the cluster, and runs the
// full fingerprint audit: every replica of every partition must have
// recorded bit-identical state at every audited offset.
func (s *soak) finish() error {
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		for r := 0; r < s.c.Replicas(pid); r++ {
			if state, _ := s.c.ReplicaState(pid, r); state == "dead" {
				if err := s.c.RestoreReplica(pid, r); err != nil {
					return fmt.Errorf("final restore %d/%d: %w", pid, r, err)
				}
			}
		}
	}
	s.c.Shutdown()
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		for r := 0; r < s.c.Replicas(pid); r++ {
			if state, _ := s.c.ReplicaState(pid, r); state != "live" && state != "removed" {
				return fmt.Errorf("replica %d/%d state %q after drain, want live", pid, r, state)
			}
		}
	}
	records := 0
	for pid := 0; pid < s.cfg.Partitions; pid++ {
		rep, err := s.c.VerifyFingerprints(pid)
		if err != nil {
			return fmt.Errorf("VerifyFingerprints(%d): %w", pid, err)
		}
		if len(rep.Mismatches) > 0 {
			return fmt.Errorf("partition %d: state fingerprint mismatches: %+v", pid, rep.Mismatches)
		}
		records += rep.Records
	}
	if records == 0 {
		return fmt.Errorf("vacuous: audit enabled but no fingerprints recorded")
	}
	if n := s.c.Stats().AuditMismatches; n != 0 {
		return fmt.Errorf("pipeline detected %d fingerprint mismatches", n)
	}
	return nil
}

// checkGoroutines fails on monotonic growth: once warmed up, the low
// watermark of the final waves must not sit above the whole early range.
// A fixed slack absorbs scheduler and finalizer jitter; a real leak (one
// worker per kill/restore cycle, say) clears it within a few waves.
func checkGoroutines(samples []int) error {
	const warmup, window, slack = 2, 3, 16
	if len(samples) < warmup+2*window {
		return nil // too short a run to call it a trend
	}
	early := samples[warmup : warmup+window]
	late := samples[len(samples)-window:]
	earlyMax, lateMin := early[0], late[0]
	for _, v := range early {
		if v > earlyMax {
			earlyMax = v
		}
	}
	for _, v := range late {
		if v < lateMin {
			lateMin = v
		}
	}
	if lateMin > earlyMax+slack {
		return fmt.Errorf("goroutines grew monotonically: early max %d, late min %d (samples %v)",
			earlyMax, lateMin, samples)
	}
	return nil
}

// checkHeap fails on egregious post-GC heap growth. The workload keeps
// every published edge in the dynamic store (retention exceeds the run),
// so the heap legitimately grows with the stream; the bound is a
// generous multiple over the warmed-up baseline that a per-wave leak of
// cluster-sized state would still blow through.
func checkHeap(samples []uint64) error {
	const warmup = 2
	if len(samples) <= warmup {
		return nil
	}
	base := samples[warmup]
	if base < 32<<20 {
		base = 32 << 20
	}
	if last := samples[len(samples)-1]; last > 4*base {
		return fmt.Errorf("heap grew from %d to %d bytes post-GC (>4x warmed-up baseline)", samples[warmup], last)
	}
	return nil
}

// oracle replays every published edge through a fresh no-fault cluster
// of the same shape and returns its delivered multiset.
func oracle(root string, seed int64, static []graph.Edge, published []graph.Edge) (map[noteKey]int, error) {
	cfg := soakCfg(root, seed, static)
	snapshot := collectNotes(&cfg)
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	c.Start()
	for _, e := range published {
		if err := c.Publish(e); err != nil {
			return nil, fmt.Errorf("oracle publish: %w", err)
		}
	}
	c.Stop()
	return snapshot(), nil
}

// compareNotes fails unless the churn run delivered exactly the oracle
// multiset.
func compareNotes(want, got map[noteKey]int) error {
	if len(want) == 0 {
		return fmt.Errorf("vacuous: oracle run delivered nothing")
	}
	for k, n := range want {
		if got[k] != n {
			return fmt.Errorf("notification %v delivered %d times under churn, %d in oracle", k, got[k], n)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Errorf("churn run delivered %v, oracle did not", k)
		}
	}
	return nil
}

func run(dur time.Duration, seed int64, users, wave int) error {
	root, err := os.MkdirTemp("", "soak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	static := ringStatic(users)
	s := &soak{
		cfg:       soakCfg(filepath.Join(root, "churn"), seed, static),
		gen:       newWaveGen(seed, users),
		waveSteps: wave,
	}
	s.notes = collectNotes(&s.cfg)
	c, err := cluster.New(s.cfg)
	if err != nil {
		return err
	}
	c.Start()
	s.c = c

	log.Printf("churn phase: %v budget, %d users, %d completions/wave", dur, users, wave)
	ops := s.ops()
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		op := ops[s.waves%len(ops)]
		start := time.Now()
		if err := op.fn(); err != nil {
			return fmt.Errorf("wave %d (%s): %w", s.waves, op.name, err)
		}
		if err := s.checkWave(); err != nil {
			return err
		}
		s.sample()
		s.waves++
		log.Printf("wave %3d  %-40s %6s  %d events  %d goroutines",
			s.waves, op.name, time.Since(start).Round(time.Millisecond), len(s.published),
			s.goroutines[len(s.goroutines)-1])
	}
	if s.waves < len(ops) {
		return fmt.Errorf("only %d waves in %v: every op must run at least once (raise -dur)", s.waves, dur)
	}

	log.Printf("verification phase: %d waves, %d events published", s.waves, len(s.published))
	if err := s.finish(); err != nil {
		return err
	}
	// Counters reset at each whole-process restart, so these cover the
	// final incarnation only; the delivered-set oracle below covers the
	// whole run.
	st := s.c.Stats()
	log.Printf("fingerprint audit clean (%d audit records since last restart)", st.AuditRecords)

	want, err := oracle(filepath.Join(root, "oracle"), seed, static, s.published)
	if err != nil {
		return err
	}
	if err := compareNotes(want, s.notes()); err != nil {
		return err
	}
	log.Printf("oracle equivalence: %d distinct notifications match exactly", len(want))

	if err := checkGoroutines(s.goroutines); err != nil {
		return err
	}
	if err := checkHeap(s.heaps); err != nil {
		return err
	}
	log.Printf("resource check: goroutines %v, heap %d -> %d bytes",
		s.goroutines, s.heaps[0], s.heaps[len(s.heaps)-1])
	return nil
}

// netWorker is one in-process stand-in for a worker OS process: its own
// Cluster joined to the hub over a real loopback socket, with the worker
// main loop (Wait) on a goroutine whose result lands on done.
type netWorker struct {
	cfg  cluster.Config
	c    *cluster.Cluster
	done chan error
}

func startNetWorker(cfg cluster.Config) (*netWorker, error) {
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	c.Start()
	w := &netWorker{cfg: cfg, c: c, done: make(chan error, 1)}
	go func() { w.done <- c.Wait() }()
	return w, nil
}

func (w *netWorker) join(timeout time.Duration) error {
	select {
	case err := <-w.done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("worker owning %v did not exit within %v", w.cfg.OwnedReplicas, timeout)
	}
}

// netSoak owns the networked deployment under churn: the hub plus one
// worker per replica index, each owning that index across every
// partition. A worker crash replaces the netWorker value wholesale.
type netSoak struct {
	hubCfg     cluster.Config
	hub        *cluster.Cluster
	workers    []*netWorker
	gen        *waveGen
	waveSteps  int
	published  []graph.Edge
	notes      func() map[noteKey]int
	rng        *rand.Rand
	goroutines []int
	heaps      []uint64
	waves      int
	drops      int    // connections severed by injected blips
	reconnects uint64 // reconnect counters of workers since crashed (counters die with the Cluster)
}

// publishWave feeds one wave into the hub's firehose; if blips > 0,
// every worker connection is severed at that many seeded random points
// mid-wave. A blip that lands while workers are still redialing from the
// previous one severs nothing — the running drop count, asserted nonzero
// at the end, keeps the injection honest without making the schedule
// timing-sensitive.
func (s *netSoak) publishWave(blips int) error {
	w := s.gen.wave(s.waveSteps)
	cut := make(map[int]bool, blips)
	for i := 0; i < blips; i++ {
		cut[s.rng.Intn(len(w))] = true
	}
	for i, e := range w {
		if cut[i] {
			s.drops += s.hub.DropConnections()
		}
		if err := s.hub.Publish(e); err != nil {
			return fmt.Errorf("publish: %w", err)
		}
	}
	s.published = append(s.published, w...)
	return nil
}

func (s *netSoak) awaitAllLive() error {
	for pid := 0; pid < s.hubCfg.Partitions; pid++ {
		for r := 0; r < s.hubCfg.Replicas; r++ {
			if err := s.hub.AwaitReplicaLive(pid, r, awaitTimeout); err != nil {
				return fmt.Errorf("await %d/%d: %w", pid, r, err)
			}
		}
	}
	return nil
}

// crashWorker crashes one worker (Abort: sockets drop, no flush, no
// final checkpoint cut — the in-process equivalent of SIGKILL), ingests
// a wave while its slots are dead and the peer covers delivery, then
// brings a fresh worker up over the same durable chains and waits for it
// to replay live.
func (s *netSoak) crashWorker(i int) error {
	w := s.workers[i]
	s.reconnects += w.c.Metrics().Counter("transport.reconnects").Value()
	w.c.Abort()
	if err := w.join(awaitTimeout); err != nil {
		return err
	}
	// The hub's feed handlers notice the severed sockets asynchronously.
	for _, or := range w.cfg.OwnedReplicas {
		deadline := time.Now().Add(awaitTimeout)
		for {
			st, err := s.hub.ReplicaState(or[0], or[1])
			if err != nil {
				return err
			}
			if st == "dead" {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("crashed worker slot %d/%d state %q, want dead", or[0], or[1], st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := s.publishWave(0); err != nil {
		return err
	}
	w2, err := startNetWorker(w.cfg)
	if err != nil {
		return err
	}
	s.workers[i] = w2
	for _, or := range w.cfg.OwnedReplicas {
		if err := s.hub.AwaitReplicaLive(or[0], or[1], awaitTimeout); err != nil {
			return fmt.Errorf("restarted worker %d/%d: %w", or[0], or[1], err)
		}
	}
	return nil
}

// waitForTruncation proves compaction holds over sockets too: worker
// checkpoint cuts report floors over the wire, and the hub truncates the
// shared log off the reported minimum. Unlike the local mode, floors
// arrive a full publish→detect→ack→cut→report round-trip later, so the
// loop paces its waves — a tight loop would bury the run (and every
// later replay) under hundreds of thousands of events before the first
// report lands.
func (s *netSoak) waitForTruncation() error {
	deadline := time.Now().Add(awaitTimeout)
	for s.hub.Stats().LogTruncatedBelow == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("firehose log never truncated (published %d events)", len(s.published))
		}
		if err := s.publishWave(0); err != nil {
			return err
		}
		time.Sleep(25 * time.Millisecond)
	}
	return nil
}

func (s *netSoak) sample() {
	s.goroutines = append(s.goroutines, runtime.NumGoroutine())
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.heaps = append(s.heaps, ms.HeapAlloc)
}

// ops is the network-fault menu, cycled for the duration budget.
func (s *netSoak) ops() []struct {
	name string
	fn   func() error
} {
	return []struct {
		name string
		fn   func() error
	}{
		{"ingest through one random mid-wave connection drop", func() error {
			return s.publishWave(1)
		}},
		{"crash worker r0 mid-stream, restart over same chains", func() error {
			return s.crashWorker(0)
		}},
		{"ingest through a double blip (drop during replay)", func() error {
			return s.publishWave(2)
		}},
		{"crash worker r1 mid-stream, restart over same chains", func() error {
			return s.crashWorker(1)
		}},
		{"ingest with a drop and verify log truncation", func() error {
			if err := s.publishWave(1); err != nil {
				return err
			}
			return s.waitForTruncation()
		}},
	}
}

// finish drains the deployment — hub EOS, workers flush + FIN and exit —
// then runs the cross-replica fingerprint audit and the fault-injection
// vacuousness checks.
func (s *netSoak) finish() error {
	s.hub.Shutdown()
	for _, w := range s.workers {
		if err := w.join(time.Minute); err != nil {
			return err
		}
	}
	records := 0
	for pid := 0; pid < s.hubCfg.Partitions; pid++ {
		rep, err := s.hub.VerifyFingerprints(pid)
		if err != nil {
			return fmt.Errorf("VerifyFingerprints(%d): %w", pid, err)
		}
		if len(rep.Mismatches) > 0 {
			return fmt.Errorf("partition %d: state fingerprint mismatches: %+v", pid, rep.Mismatches)
		}
		records += rep.Records
	}
	if records == 0 {
		return fmt.Errorf("vacuous: audit enabled but no fingerprints recorded")
	}
	if n := s.hub.Stats().AuditMismatches; n != 0 {
		return fmt.Errorf("pipeline detected %d fingerprint mismatches", n)
	}
	if s.drops == 0 {
		return fmt.Errorf("vacuous: no connection was ever severed")
	}
	for _, w := range s.workers {
		s.reconnects += w.c.Metrics().Counter("transport.reconnects").Value()
	}
	if s.reconnects == 0 {
		return fmt.Errorf("no worker ever reconnected despite %d severed connections", s.drops)
	}
	return nil
}

// runNet is the networked counterpart of run: same workload and
// invariants, but the cluster under churn is a hub plus socket-attached
// workers and the faults are network blips and worker crashes.
func runNet(dur time.Duration, seed int64, users, wave int) error {
	root, err := os.MkdirTemp("", "soak-net-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	static := ringStatic(users)
	s := &netSoak{
		hubCfg:    soakCfg(filepath.Join(root, "churn"), seed, static),
		gen:       newWaveGen(seed, users),
		waveSteps: wave,
		// The fault schedule draws from its own stream so the workload
		// stays identical to the local mode's for the same seed.
		rng: rand.New(rand.NewSource(seed ^ 0x6e6574)),
	}
	s.hubCfg.Listen = "127.0.0.1:0"
	s.notes = collectNotes(&s.hubCfg)
	hub, err := cluster.New(s.hubCfg)
	if err != nil {
		return err
	}
	hub.Start()
	s.hub = hub

	for i := 0; i < s.hubCfg.Replicas; i++ {
		wcfg := s.hubCfg
		wcfg.Listen = ""
		wcfg.LogDir = ""
		wcfg.Join = hub.ListenAddr()
		wcfg.OwnedReplicas = [][2]int{{0, i}, {1, i}}
		wcfg.OnNotify = nil
		wcfg.Metrics = nil
		w, err := startNetWorker(wcfg)
		if err != nil {
			return err
		}
		s.workers = append(s.workers, w)
	}
	if err := s.awaitAllLive(); err != nil {
		return err
	}

	log.Printf("networked churn phase: %v budget, %d users, %d completions/wave, hub %s + %d workers",
		dur, users, wave, hub.ListenAddr(), len(s.workers))
	ops := s.ops()
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		op := ops[s.waves%len(ops)]
		start := time.Now()
		if err := op.fn(); err != nil {
			return fmt.Errorf("wave %d (%s): %w", s.waves, op.name, err)
		}
		if n := s.hub.Stats().AuditMismatches; n != 0 {
			return fmt.Errorf("wave %d: pipeline detected %d fingerprint mismatches", s.waves, n)
		}
		s.sample()
		s.waves++
		log.Printf("wave %3d  %-52s %6s  %d events  %d drops  %d goroutines",
			s.waves, op.name, time.Since(start).Round(time.Millisecond), len(s.published),
			s.drops, s.goroutines[len(s.goroutines)-1])
	}
	if s.waves < len(ops) {
		return fmt.Errorf("only %d waves in %v: every op must run at least once (raise -dur)", s.waves, dur)
	}

	log.Printf("verification phase: %d waves, %d events published, %d connections severed", s.waves, len(s.published), s.drops)
	if err := s.finish(); err != nil {
		return err
	}
	log.Printf("fingerprint audit clean; %d reconnects absorbed %d severed connections", s.reconnects, s.drops)

	want, err := oracle(filepath.Join(root, "oracle"), seed, static, s.published)
	if err != nil {
		return err
	}
	if err := compareNotes(want, s.notes()); err != nil {
		return err
	}
	log.Printf("oracle equivalence: %d distinct notifications match exactly", len(want))

	if err := checkGoroutines(s.goroutines); err != nil {
		return err
	}
	if err := checkHeap(s.heaps); err != nil {
		return err
	}
	log.Printf("resource check: goroutines %v, heap %d -> %d bytes",
		s.goroutines, s.heaps[0], s.heaps[len(s.heaps)-1])
	return nil
}
