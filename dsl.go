package motifstream

import "motifstream/internal/motifdsl"

// CompileMotif compiles declarative motif source (the language of the
// paper's §3 vision) into runnable programs. Example:
//
//	motif "content" {
//	    match A -> B;
//	    match B =[retweet,favorite]=> C within 10m;
//	    where count(B) >= 3;
//	    emit C to A via B;
//	}
//
// Multiple declarations compile to multiple programs. Errors carry
// line:col positions.
func CompileMotif(src string) ([]Program, error) {
	return motifdsl.Compile(src)
}

// ExplainMotif returns the human-readable query plan for each declaration
// in src — the paper's "optimized query plan against an online graph
// database", in EXPLAIN form.
func ExplainMotif(src string) ([]string, error) {
	specs, err := motifdsl.Parse(src)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(specs))
	for _, s := range specs {
		p, err := motifdsl.PlanSpec(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p.Describe())
	}
	return out, nil
}
