package motifstream_test

import (
	"fmt"
	"strings"
	"time"

	"motifstream"
)

// ExampleSystem reproduces the paper's Figure 1: with k=2, the edge
// B2→C2 completes the diamond and recommends C2 to A2.
func ExampleSystem() {
	// A1,A2 follow B1 (vertex 4); A2,A3 follow B2 (vertex 5).
	static := []motifstream.Edge{
		{Src: 1, Dst: 4, Type: motifstream.Follow},
		{Src: 2, Dst: 4, Type: motifstream.Follow},
		{Src: 2, Dst: 5, Type: motifstream.Follow},
		{Src: 3, Dst: 5, Type: motifstream.Follow},
	}
	sys, err := motifstream.New(static, motifstream.Options{
		K:      2,
		Window: 10 * time.Minute,
	})
	if err != nil {
		panic(err)
	}
	t0 := int64(1_409_572_800_000)
	sys.Apply(motifstream.Edge{Src: 4, Dst: 7, Type: motifstream.Follow, TS: t0})
	cands := sys.Apply(motifstream.Edge{Src: 5, Dst: 7, Type: motifstream.Follow, TS: t0 + 120_000})
	for _, c := range cands {
		fmt.Printf("recommend %d to user %d (supported by %d followings)\n",
			c.Item, c.User, len(c.Via))
	}
	// Output:
	// recommend 7 to user 2 (supported by 2 followings)
}

// ExampleCompileMotif declares the production diamond in the paper's
// envisioned declarative form and prints its query plan.
func ExampleCompileMotif() {
	const src = `
motif "who-to-follow" {
    match A -> B;
    match B =[follow]=> C within 10m;
    where count(B) >= 3;
    emit C to A via B;
}`
	programs, err := motifstream.CompileMotif(src)
	if err != nil {
		panic(err)
	}
	fmt.Println(programs[0].Name())

	// The full EXPLAIN (probe order, estimates, sharing key, rationale)
	// is pinned by golden files in internal/motifdsl; the example shows
	// the header and the probe pipeline.
	plans, err := motifstream.ExplainMotif(src)
	if err != nil {
		panic(err)
	}
	for _, line := range strings.Split(plans[0], "\n")[:7] {
		fmt.Println(line)
	}
	// Output:
	// who-to-follow
	// plan "who-to-follow" (k-of-n diamond)
	//   probe order (greedy, statistics-free):
	//     1. filter-trigger: follow(within 10m0s)
	//     2. probe-dynamic D.recent(item): est ~8 in-window actors (cold-start default), early-exit < 3
	//     3. probe-static S.followers(B) per actor: est ~16 followers/list (cold-start default)
	//     4. threshold-intersect k=3 over the follower lists
	//     5. emit item -> user with via attribution
}

// ExampleNewCluster runs the Figure 1 scenario through the full
// partitioned topology with the delivery funnel.
func ExampleNewCluster() {
	static := []motifstream.Edge{
		{Src: 1, Dst: 4, Type: motifstream.Follow},
		{Src: 2, Dst: 4, Type: motifstream.Follow},
		{Src: 2, Dst: 5, Type: motifstream.Follow},
		{Src: 3, Dst: 5, Type: motifstream.Follow},
	}
	clu, err := motifstream.NewCluster(static, motifstream.ClusterOptions{
		Partitions:        4,
		K:                 2,
		Window:            10 * time.Minute,
		DisableSleepHours: true,
		OnNotify: func(n motifstream.Notification) {
			fmt.Printf("push %d to user %d\n", n.Candidate.Item, n.Candidate.User)
		},
	})
	if err != nil {
		panic(err)
	}
	t0 := int64(1_409_572_800_000)
	clu.Publish(motifstream.Edge{Src: 4, Dst: 7, Type: motifstream.Follow, TS: t0})
	clu.Publish(motifstream.Edge{Src: 5, Dst: 7, Type: motifstream.Follow, TS: t0 + 1_000})
	clu.Stop()
	// Output:
	// push 7 to user 2
}
