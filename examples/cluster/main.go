// Command cluster runs the full production topology of the paper's §2 in
// one process: 20 hash partitions with replication, every partition
// consuming the entire firehose, broker-routed reads, simulated message
// queue delays matching the paper's 7s-median/15s-p99 observation, and the
// push-delivery funnel (dedup, waking hours, fatigue).
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"time"

	"motifstream"
)

func main() {
	gcfg := motifstream.GraphConfig{Users: 20_000, AvgFollows: 30, ZipfS: 1.35, Seed: 1}
	static := motifstream.GenFollowGraph(gcfg)
	fmt.Printf("follow graph: %d users, %d edges\n", gcfg.Users, len(static))

	clu, err := motifstream.NewCluster(static, motifstream.ClusterOptions{
		Partitions:       20, // the paper's production count
		Replicas:         2,
		K:                3,
		Window:           10 * time.Minute,
		MaxInfluencers:   200,
		MaxFanout:        64,
		QueueDelayMedian: 7 * time.Second, // the paper's measured median
		QueueDelayP99:    15 * time.Second,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}

	events := motifstream.GenEventStream(motifstream.StreamConfig{
		Users: gcfg.Users, Events: 100_000, Rate: 10_000,
		BurstFraction: 0.35, BurstMeanSize: 12, BurstWindow: 10 * time.Minute,
		ZipfS: 1.35, Seed: 7,
	})

	fmt.Printf("ingesting %d events across 20 partitions x 2 replicas...\n", len(events))
	start := time.Now()
	for _, e := range events {
		if err := clu.Publish(e); err != nil {
			log.Fatal(err)
		}
	}
	clu.Stop()
	wall := time.Since(start)

	s := clu.Stats()
	fmt.Printf("\ningested %d events in %v (%.0f events/s wall; paper target 10^4/s)\n",
		s.Events, wall.Round(time.Millisecond), float64(s.Events)/wall.Seconds())
	fmt.Printf("delivered %d pushes\n", s.Delivered)
	fmt.Printf("end-to-end latency (incl. simulated queue hops): p50=%v p99=%v\n",
		s.LatencyP50.Round(100*time.Millisecond), s.LatencyP99.Round(100*time.Millisecond))
	fmt.Printf("funnel: raw=%d dup=%d asleep=%d fatigue=%d delivered=%d (%.2f%%)\n",
		s.Funnel.Raw, s.Funnel.DroppedDuplicate, s.Funnel.DroppedAsleep,
		s.Funnel.DroppedFatigue, s.Funnel.Delivered, 100*s.Funnel.DeliveryRate())
}
