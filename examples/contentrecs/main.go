// Command contentrecs demonstrates the content-recommendation application
// from the paper's introduction: "The idea applies to recommending content
// as well, based on user actions such as retweets, favorites, etc." It
// generates a synthetic follow graph and a bursty engagement stream, then
// surfaces the tweets that several of a user's followings engaged with
// within minutes of each other.
//
// Run with: go run ./examples/contentrecs
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"motifstream"
)

func main() {
	gcfg := motifstream.GraphConfig{Users: 8_000, AvgFollows: 25, ZipfS: 1.35, Seed: 42}
	static := motifstream.GenFollowGraph(gcfg)
	fmt.Printf("generated follow graph: %d users, %d follow edges\n", gcfg.Users, len(static))

	sys, err := motifstream.New(static, motifstream.Options{
		K:         3,
		Window:    10 * time.Minute,
		EdgeTypes: []motifstream.EdgeType{motifstream.Retweet, motifstream.Favorite},
	})
	if err != nil {
		log.Fatal(err)
	}

	scfg := motifstream.StreamConfig{
		Users:           gcfg.Users,
		Events:          120_000,
		Rate:            10_000,
		BurstFraction:   0.4,
		BurstMeanSize:   14,
		BurstWindow:     8 * time.Minute,
		ContentFraction: 0.9, // almost all events are engagements, not follows
		ZipfS:           1.35,
		Seed:            7,
	}
	events := motifstream.GenEventStream(scfg)
	fmt.Printf("replaying %d engagement events...\n", len(events))

	perTweet := make(map[motifstream.VertexID]int)
	perUser := make(map[motifstream.VertexID]int)
	total := 0
	for _, e := range events {
		for _, c := range sys.Apply(e) {
			total++
			perTweet[c.Item]++
			perUser[c.User]++
		}
	}

	st := sys.Stats()
	fmt.Printf("\n%d tweet recommendations for %d users (from %d events)\n",
		total, len(perUser), st.Events)
	fmt.Printf("graph-query latency: p50=%v p99=%v (the paper: \"a few milliseconds\")\n",
		st.QueryP50, st.QueryP99)

	type hot struct {
		tweet motifstream.VertexID
		n     int
	}
	hots := make([]hot, 0, len(perTweet))
	for t, n := range perTweet {
		hots = append(hots, hot{t, n})
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].n > hots[j].n })
	fmt.Println("\nhottest recommended tweets:")
	for i, h := range hots {
		if i >= 5 {
			break
		}
		fmt.Printf("  tweet %-8d recommended to %d users\n", h.tweet, h.n)
	}
}
