// Command dsl demonstrates the declarative motif language of the paper's
// conclusion: "we envision the development of a generalized framework
// where one can declaratively specify a motif, which would yield an
// optimized query plan against an online graph database" (§3). It
// declares two motifs, prints their query plans, and runs them side by
// side over one synthetic stream.
//
// Run with: go run ./examples/dsl
package main

import (
	"fmt"
	"log"
	"time"

	"motifstream"
)

const motifs = `
# The production "Magic Recs" diamond: recommend account C to user A when
# at least 3 of A's followings follow C within 10 minutes.
motif "who-to-follow" {
    match A -> B;
    match B =[follow]=> C within 10m;
    where count(B) >= 3;
    emit C to A via B;
    limit fanout 64;
}

# The content variant over engagement actions, with a tighter window.
motif "hot-tweets" {
    match A -> B;
    match B =[retweet,favorite]=> C within 5m;
    where count(B) >= 3;
    emit C to A via B;
}
`

func main() {
	plans, err := motifstream.ExplainMotif(motifs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query plans:")
	for _, p := range plans {
		fmt.Println("  " + p)
	}

	programs, err := motifstream.CompileMotif(motifs)
	if err != nil {
		log.Fatal(err)
	}

	static := motifstream.GenFollowGraph(motifstream.GraphConfig{
		Users: 10_000, AvgFollows: 30, ZipfS: 1.35, Seed: 1,
	})
	// Run the compiled programs only: disable none, but note that New
	// always installs its own primary diamond, so configure it to match
	// the first declaration and add the second as an extra.
	sys, err := motifstream.New(static, motifstream.Options{
		K:             3,
		Window:        10 * time.Minute,
		MaxFanout:     64,
		ExtraPrograms: programs[1:],
	})
	if err != nil {
		log.Fatal(err)
	}

	events := motifstream.GenEventStream(motifstream.StreamConfig{
		Users: 10_000, Events: 150_000, Rate: 10_000,
		BurstFraction: 0.35, BurstMeanSize: 12, BurstWindow: 8 * time.Minute,
		ContentFraction: 0.5, ZipfS: 1.35, Seed: 7,
	})

	byProgram := make(map[string]int)
	for _, e := range events {
		for _, c := range sys.Apply(e) {
			byProgram[c.Program]++
		}
	}
	fmt.Printf("\ncandidates per program over %d events:\n", len(events))
	for name, n := range byProgram {
		fmt.Printf("  %-15s %d\n", name, n)
	}
}
