// Command offline demonstrates the batch side of the paper's design:
// "the A→B edges are computed offline and loaded into the system
// periodically: this allows us to take advantage of rich features to
// prune the graph" (§2). It scores follow edges against engagement
// history, prunes each user to their strongest influencers, and shows how
// pruning changes both memory and the recommendations produced.
//
// Run with: go run ./examples/offline
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"motifstream"
)

func main() {
	gcfg := motifstream.GraphConfig{Users: 10_000, AvgFollows: 40, ZipfS: 1.35, Seed: 3}
	rawFollows := motifstream.GenFollowGraph(gcfg)

	// Synthesize engagement history: each user engages mostly with a few
	// of their followings (the real signal the production scorer uses).
	now := motifstream.Millis(time.Date(2014, 9, 1, 0, 0, 0, 0, time.UTC))
	r := rand.New(rand.NewSource(5))
	byUser := map[motifstream.VertexID][]motifstream.VertexID{}
	for _, e := range rawFollows {
		byUser[e.Src] = append(byUser[e.Src], e.Dst)
	}
	var interactions []motifstream.Interaction
	for a, followings := range byUser {
		// Engage with ~3 favourites repeatedly.
		for j := 0; j < 3 && j < len(followings); j++ {
			b := followings[r.Intn(len(followings))]
			for k := 0; k < 1+r.Intn(5); k++ {
				interactions = append(interactions, motifstream.Interaction{
					A: a, B: b, TS: now - int64(r.Intn(7*24*3_600_000)),
				})
			}
		}
	}

	fmt.Printf("raw graph: %d follow edges, %d engagement events\n",
		len(rawFollows), len(interactions))

	pruned, stats := motifstream.BuildStatic(rawFollows, interactions, now, motifstream.BatchOptions{
		MaxInfluencers: 15,
	})
	fmt.Println(stats)
	fmt.Printf("pruned graph: %d edges (%.0f%% of raw)\n",
		len(pruned), 100*float64(len(pruned))/float64(len(rawFollows)))

	// Run the same stream against raw and pruned graphs.
	events := motifstream.GenEventStream(motifstream.StreamConfig{
		Users: gcfg.Users, Events: 80_000, Rate: 10_000,
		BurstFraction: 0.4, BurstMeanSize: 12, BurstWindow: 10 * time.Minute,
		ZipfS: 1.35, Seed: 11,
	})
	for _, name := range []string{"raw", "pruned"} {
		static := rawFollows
		if name == "pruned" {
			static = pruned
		}
		sys, err := motifstream.New(static, motifstream.Options{
			K: 3, Window: 10 * time.Minute, MaxFanout: 64,
		})
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		users := map[motifstream.VertexID]bool{}
		for _, e := range events {
			for _, c := range sys.Apply(e) {
				total++
				users[c.User] = true
			}
		}
		st := sys.Stats()
		fmt.Printf("%-7s S: %8d candidates for %5d users | query p99 %v\n",
			name, total, len(users), st.QueryP99)
	}
	fmt.Println("\nthe cap is the paper's precision/volume lever: the pruned S costs a")
	fmt.Println("fraction of the memory and floods users far less, because only motifs")
	fmt.Println("completed by each user's strongest (engaged-with) influencers survive.")
}
