// Command quickstart reproduces the paper's Figure 1 walkthrough with the
// public API: a small follow graph in which the arrival of edge B2→C2
// completes a diamond motif and triggers the recommendation of C2 to A2
// (with k=2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"motifstream"
)

// Vertex IDs matching Figure 1's labels.
const (
	A1 = motifstream.VertexID(iota + 1)
	A2
	A3
	B1
	B2
	C1
	C2
	C3
)

func main() {
	// The static A→B follow edges of Figure 1: A1 and A2 follow B1;
	// A2 and A3 follow B2.
	static := []motifstream.Edge{
		{Src: A1, Dst: B1, Type: motifstream.Follow},
		{Src: A2, Dst: B1, Type: motifstream.Follow},
		{Src: A2, Dst: B2, Type: motifstream.Follow},
		{Src: A3, Dst: B2, Type: motifstream.Follow},
	}

	sys, err := motifstream.New(static, motifstream.Options{
		K:      2, // the paper's walkthrough uses k=2 (production uses 3)
		Window: 10 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	now := motifstream.Millis(time.Date(2014, 9, 1, 12, 0, 0, 0, time.UTC))

	// The dynamic stream: B1 follows C2, then B2 follows C2 two minutes
	// later. The second edge completes the diamond.
	first := motifstream.Edge{Src: B1, Dst: C2, Type: motifstream.Follow, TS: now}
	second := motifstream.Edge{Src: B2, Dst: C2, Type: motifstream.Follow, TS: now + 2*60*1000}

	if cands := sys.Apply(first); len(cands) != 0 {
		log.Fatalf("no motif should complete after one edge, got %v", cands)
	}
	fmt.Printf("event %v: no motif yet (only 1 of A2's followings acted on C2)\n", first)

	cands := sys.Apply(second)
	fmt.Printf("event %v: %d recommendation(s)\n", second, len(cands))
	for _, c := range cands {
		fmt.Printf("  -> recommend %s to %s (supported by %v)\n",
			name(c.Item), name(c.User), names(c.Via))
	}

	// The paper: "when the edge B2→C2 is created ... we want to push C2
	// to A2". A1 follows only B1 and A3 only B2, so neither reaches k=2.
	if len(cands) != 1 || cands[0].User != A2 || cands[0].Item != C2 {
		log.Fatalf("expected exactly [recommend C2 to A2], got %v", cands)
	}
	fmt.Println("matches the paper's Figure 1 walkthrough ✔")
}

var labels = map[motifstream.VertexID]string{
	A1: "A1", A2: "A2", A3: "A3", B1: "B1", B2: "B2", C1: "C1", C2: "C2", C3: "C3",
}

func name(v motifstream.VertexID) string { return labels[v] }

func names(vs []motifstream.VertexID) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = labels[v]
	}
	return out
}
