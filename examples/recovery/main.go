// Command recovery demonstrates the crash/recovery subsystem: a replica
// of a running cluster is killed mid-stream (losing its entire D store),
// then rejoined by restoring its newest durable checkpoint and replaying
// the retained firehose log until caught up. The run prints the replica's
// state transitions and shows its D store converging back to its healthy
// peer's.
//
// Run with: go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"motifstream"
)

func main() {
	ckptDir, err := os.MkdirTemp("", "motifstream-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)

	gcfg := motifstream.GraphConfig{Users: 5_000, AvgFollows: 25, ZipfS: 1.35, Seed: 1}
	static := motifstream.GenFollowGraph(gcfg)
	scfg := motifstream.StreamConfig{
		Users: 5_000, Events: 60_000, Rate: 10_000,
		BurstFraction: 0.35, BurstMeanSize: 12, BurstWindow: 10 * time.Minute,
		ZipfS: 1.35, Seed: 7,
	}
	stream := motifstream.GenEventStream(scfg)
	fmt.Printf("workload: %d static edges, %d stream events\n", len(static), len(stream))

	clu, err := motifstream.NewCluster(static, motifstream.ClusterOptions{
		Partitions: 4, Replicas: 2, K: 3,
		Window: 10 * time.Minute, MaxInfluencers: 200, MaxFanout: 64,
		DisableSleepHours:  true,
		CheckpointDir:      ckptDir,
		CheckpointInterval: time.Second, // stream time
	})
	if err != nil {
		log.Fatal(err)
	}

	third := len(stream) / 3
	publish := func(events []motifstream.Edge) {
		for _, e := range events {
			if err := clu.Publish(e); err != nil {
				log.Fatal(err)
			}
		}
	}

	state := func() string {
		s, err := clu.ReplicaState(0, 1)
		if err != nil {
			return err.Error()
		}
		return s
	}

	publish(stream[:third])
	fmt.Printf("replica 0/1 state: %-9s after %d events\n", state(), third)

	// Crash it: consumption stops, the D store is dropped.
	if err := clu.KillReplica(0, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica 0/1 state: %-9s (killed — state lost, reads route around it)\n", state())

	publish(stream[third : 2*third])

	// Rejoin: restore the durable checkpoint, replay the firehose.
	start := time.Now()
	if err := clu.RestoreReplica(0, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica 0/1 state: %-9s (restored checkpoint, replaying firehose)\n", state())
	if err := clu.AwaitReplicaLive(0, 1, time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica 0/1 state: %-9s (caught up in %v)\n", state(), time.Since(start).Round(time.Millisecond))

	publish(stream[2*third:])
	clu.Stop()

	s := clu.Stats()
	fmt.Printf("\nevents=%d delivered=%d checkpoints=%d restores=%d\n",
		s.Events, s.Delivered, s.Checkpoints, s.Restores)
}
