module motifstream

go 1.22
