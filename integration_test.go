package motifstream_test

import (
	"testing"
	"time"

	"motifstream"
)

// TestIntegrationSyntheticWorkload replays a generated workload through
// the single-node System and checks the system-level invariants that the
// experiments rely on: detection happens, every candidate is well-formed,
// and graph queries stay far below the paper's "few milliseconds".
func TestIntegrationSyntheticWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("workload replay")
	}
	gcfg := motifstream.GraphConfig{Users: 3_000, AvgFollows: 20, ZipfS: 1.35, Seed: 1}
	static := motifstream.GenFollowGraph(gcfg)
	sys, err := motifstream.New(static, motifstream.Options{
		K: 3, Window: 10 * time.Minute, MaxInfluencers: 100,
		MaxFanout: 16, SuppressKnown: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	follows := map[[2]motifstream.VertexID]bool{}
	followsOf := map[motifstream.VertexID]map[motifstream.VertexID]bool{}
	for _, e := range static {
		follows[[2]motifstream.VertexID{e.Src, e.Dst}] = true
		m := followsOf[e.Src]
		if m == nil {
			m = map[motifstream.VertexID]bool{}
			followsOf[e.Src] = m
		}
		m[e.Dst] = true
	}

	events := motifstream.GenEventStream(motifstream.StreamConfig{
		Users: gcfg.Users, Events: 10_000, Rate: 100, // ~100s span
		BurstFraction: 0.5, BurstMeanSize: 15, BurstWindow: 5 * time.Minute,
		ZipfS: 1.35, Seed: 7,
	})

	total := 0
	for _, e := range events {
		for _, c := range sys.Apply(e) {
			total++
			if c.User == c.Item {
				t.Fatal("self-recommendation leaked")
			}
			if follows[[2]motifstream.VertexID{c.User, c.Item}] {
				t.Fatalf("user %d already follows recommended %d", c.User, c.Item)
			}
			if len(c.Via) < 3 {
				t.Fatalf("candidate with %d supporters at k=3", len(c.Via))
			}
			// Every supporter must actually be followed by the user.
			for _, b := range c.Via {
				if !followsOf[c.User][b] {
					t.Fatalf("supporter %d not followed by user %d", b, c.User)
				}
			}
			if c.Trigger.Dst != c.Item {
				t.Fatal("trigger edge does not point at the item")
			}
		}
	}
	if total == 0 {
		t.Fatal("bursty workload produced no recommendations; generator or detector broken")
	}

	st := sys.Stats()
	if st.Events != 10_000 {
		t.Fatalf("Events = %d", st.Events)
	}
	// "The actual graph queries take only a few milliseconds" — at this
	// scale they must be far under 10ms even at p99.
	if st.QueryP99 > 10*time.Millisecond {
		t.Fatalf("graph query p99 = %v, want << 10ms", st.QueryP99)
	}
	t.Logf("integration: %d candidates from %d events; query p50=%v p99=%v",
		total, st.Events, st.QueryP50, st.QueryP99)
}

// TestIntegrationClusterMatchesSystem verifies the partitioned cluster
// delivers a superset-free, duplicate-free projection of the single-node
// candidates on the same workload (modulo the delivery funnel, which is
// disabled here via generous budgets).
func TestIntegrationClusterMatchesSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("workload replay")
	}
	gcfg := motifstream.GraphConfig{Users: 1_000, AvgFollows: 15, ZipfS: 1.35, Seed: 2}
	static := motifstream.GenFollowGraph(gcfg)
	events := motifstream.GenEventStream(motifstream.StreamConfig{
		Users: gcfg.Users, Events: 4_000, Rate: 50,
		BurstFraction: 0.5, BurstMeanSize: 10, BurstWindow: 5 * time.Minute,
		ZipfS: 1.35, Seed: 3,
	})

	// Single node.
	sys, err := motifstream.New(static, motifstream.Options{K: 2, Window: 5 * time.Minute, MaxFanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		user, item motifstream.VertexID
		ts         int64
	}
	ref := map[key]bool{}
	for _, e := range events {
		for _, c := range sys.Apply(e) {
			ref[key{c.User, c.Item, c.Trigger.TS}] = true
		}
	}

	// Cluster with the funnel opened wide (no dedup TTL pressure, huge
	// budget, no sleep suppression).
	got := map[key]bool{}
	clu, err := motifstream.NewCluster(static, motifstream.ClusterOptions{
		Partitions:             8,
		K:                      2,
		Window:                 5 * time.Minute,
		MaxFanout:              16,
		DisableSleepHours:      true,
		MaxPushesPerUserPerDay: 1 << 30,
		DedupTTL:               time.Millisecond,
		OnNotify: func(n motifstream.Notification) {
			got[key{n.Candidate.User, n.Candidate.Item, n.Candidate.Trigger.TS}] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := clu.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	clu.Stop()

	if len(ref) == 0 {
		t.Fatal("vacuous: single node found nothing")
	}
	// Dedup with TTL 1ms still suppresses identical (user,item) pairs
	// re-triggered within a millisecond of stream time, so the cluster
	// may deliver slightly fewer; every delivery must exist in ref.
	for k := range got {
		if !ref[k] {
			t.Fatalf("cluster delivered %v not found by single node", k)
		}
	}
	if float64(len(got)) < 0.5*float64(len(ref)) {
		t.Fatalf("cluster delivered %d of %d reference candidates; too lossy", len(got), len(ref))
	}
	t.Logf("cluster delivered %d / %d reference candidates", len(got), len(ref))
}

// TestIntegrationLatencyShape reproduces E2's shape in miniature: with
// lognormal queue hops targeting the paper's quantiles, end-to-end
// latency lands in seconds while graph queries stay in microseconds.
func TestIntegrationLatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("workload replay")
	}
	gcfg := motifstream.GraphConfig{Users: 2_000, AvgFollows: 15, ZipfS: 1.35, Seed: 4}
	static := motifstream.GenFollowGraph(gcfg)
	events := motifstream.GenEventStream(motifstream.StreamConfig{
		Users: gcfg.Users, Events: 8_000, Rate: 100,
		BurstFraction: 0.5, BurstMeanSize: 15, BurstWindow: 5 * time.Minute,
		ZipfS: 1.35, Seed: 5,
	})
	clu, err := motifstream.NewCluster(static, motifstream.ClusterOptions{
		Partitions:        4,
		K:                 2,
		Window:            5 * time.Minute,
		MaxFanout:         16,
		QueueDelayMedian:  7 * time.Second,
		QueueDelayP99:     15 * time.Second,
		DisableSleepHours: true,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := clu.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	clu.Stop()
	st := clu.Stats()
	if st.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if st.LatencyP50 < 3*time.Second || st.LatencyP50 > 14*time.Second {
		t.Fatalf("p50 = %v, want seconds-scale around 7s", st.LatencyP50)
	}
	if st.LatencyP99 < st.LatencyP50 {
		t.Fatalf("p99 %v < p50 %v", st.LatencyP99, st.LatencyP50)
	}
	t.Logf("e2e latency p50=%v p99=%v over %d deliveries",
		st.LatencyP50, st.LatencyP99, st.Delivered)
}
