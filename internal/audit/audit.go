// Package audit is the detection-state provenance layer: an append-only
// per-replica log of (firehose offset, state fingerprint) records captured
// at checkpoint cuts, plus the cross-source verification that turns those
// records into a bit-equality proof. Detection is deterministic, so every
// replica of a group that has applied the same firehose prefix holds
// byte-identical recoverable state; the audit log pins that invariant to
// disk, and any two sources that recorded the same offset with different
// fingerprints expose a divergence — a recovery path that composed wrong
// state, a zombie cut, a torn base — that delivered-set oracles only catch
// probabilistically.
//
// The log is advisory, not load-bearing: records are appended without
// fsync, a torn or corrupt tail is silently ignored at read time, and a
// file stamped by a foreign run is discarded. Losing audit records can
// only weaken the audit, never corrupt recovery.
package audit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"motifstream/internal/codecutil"
)

// auditMagic identifies the audit log format, version 1.
var auditMagic = [8]byte{'M', 'S', 'A', 'U', 'D', 'I', 'T', 1}

// headerSize is magic plus the little-endian run id.
const headerSize = len(auditMagic) + 8

// maxRecordSize bounds one encoded record: two uvarints plus the CRC.
const maxRecordSize = 2*binary.MaxVarintLen64 + 4

// Record is one audited cut: the firehose offset the cut covers (exclusive
// upper bound, i.e. the cut's nextOffset) and the CRC32C fingerprint of
// the replica's recoverable state at that offset.
type Record struct {
	Offset uint64
	Sum    uint32
}

// appendRecord encodes rec onto b: uvarint offset, uvarint sum, then a
// CRC32C over the two fields. Each record is self-framed and self-checked
// so a reader can stop cleanly at the first torn or corrupt tail.
func appendRecord(b []byte, rec Record) []byte {
	start := len(b)
	b = binary.AppendUvarint(b, rec.Offset)
	b = binary.AppendUvarint(b, uint64(rec.Sum))
	return binary.LittleEndian.AppendUint32(b, codecutil.CRC32C(b[start:]))
}

// decodeRecord parses one record from b, returning it and the bytes
// consumed; ok is false when b holds no complete, checksum-valid record.
func decodeRecord(b []byte) (rec Record, n int, ok bool) {
	off, n1 := binary.Uvarint(b)
	if n1 <= 0 {
		return rec, 0, false
	}
	sum, n2 := binary.Uvarint(b[n1:])
	if n2 <= 0 || sum > 1<<32-1 {
		return rec, 0, false
	}
	n = n1 + n2
	if len(b) < n+4 {
		return rec, 0, false
	}
	if binary.LittleEndian.Uint32(b[n:]) != codecutil.CRC32C(b[:n]) {
		return rec, 0, false
	}
	return Record{Offset: off, Sum: uint32(sum)}, n + 4, true
}

// Log is an open audit log. Appends go straight to the file descriptor —
// no buffering, so concurrent readers (peer verification scans) see every
// completed record — and are not fsynced (the log is advisory).
type Log struct {
	f *os.File
}

// Open opens or creates the audit log at path, stamped with runID. An
// existing file with a matching header is appended to; a missing, foreign,
// or malformed header starts the file over (the old records indexed a log
// that no longer assigns these offsets).
func Open(path string, runID uint64) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: open: %w", err)
	}
	var hdr [headerSize]byte
	_, err = io.ReadFull(f, hdr[:])
	if err == nil {
		var magic [8]byte
		copy(magic[:], hdr[:])
		if magic == auditMagic && binary.LittleEndian.Uint64(hdr[len(auditMagic):]) == runID {
			if _, err := f.Seek(0, io.SeekEnd); err != nil {
				f.Close()
				return nil, fmt.Errorf("audit: seek: %w", err)
			}
			return &Log{f: f}, nil
		}
	} else if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		f.Close()
		return nil, fmt.Errorf("audit: header: %w", err)
	}
	// Fresh, foreign, or torn header: restart the file under this run.
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("audit: truncate: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("audit: seek: %w", err)
	}
	copy(hdr[:], auditMagic[:])
	binary.LittleEndian.PutUint64(hdr[len(auditMagic):], runID)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("audit: header: %w", err)
	}
	return &Log{f: f}, nil
}

// Append writes one record. A record lands in a single write call, so a
// concurrent reader sees it completely or not at all.
func (l *Log) Append(rec Record) error {
	buf := make([]byte, 0, maxRecordSize)
	if _, err := l.f.Write(appendRecord(buf, rec)); err != nil {
		return fmt.Errorf("audit: append: %w", err)
	}
	return nil
}

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }

// Read returns every valid record in the log at path that was stamped by
// runID. A missing file, a foreign or torn header, or zero valid records
// yields (nil, nil) — an absent audit is not an error. Decoding stops
// silently at the first torn or corrupt record.
func Read(path string, runID uint64) ([]Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("audit: read: %w", err)
	}
	return Decode(b, runID), nil
}

// Decode parses an audit log image, returning the records stamped by
// runID; nil when the header is missing, foreign, or torn. Exported for
// the fuzz target — Decode must never panic on arbitrary input.
func Decode(b []byte, runID uint64) []Record {
	if len(b) < headerSize {
		return nil
	}
	var magic [8]byte
	copy(magic[:], b)
	if magic != auditMagic || binary.LittleEndian.Uint64(b[len(auditMagic):headerSize]) != runID {
		return nil
	}
	b = b[headerSize:]
	var recs []Record
	for len(b) > 0 {
		rec, n, ok := decodeRecord(b)
		if !ok {
			break
		}
		recs = append(recs, rec)
		b = b[n:]
	}
	return recs
}

// SourceSum is one source's recorded fingerprint at an offset.
type SourceSum struct {
	Source string
	Sum    uint32
}

// Mismatch is one offset at which recorded fingerprints disagree across
// sources — direct evidence that two recovery-equivalent replicas held
// different state after the same firehose prefix.
type Mismatch struct {
	Offset uint64
	Sums   []SourceSum
}

// Report summarizes a cross-source verification.
type Report struct {
	// Records is the total records read across sources; Offsets the
	// distinct offsets seen; Compared the offsets recorded by at least two
	// sources (the offsets that actually constrain anything).
	Records, Offsets, Compared int
	// Mismatches lists every compared offset whose sums disagree, offset
	// ascending. Empty means every comparable cut matched bit-for-bit.
	Mismatches []Mismatch
}

// Verify cross-checks recorded fingerprints from several sources
// (typically the replicas of one partition group, keyed by a replica
// label). Within one source, a re-recorded offset must also self-agree —
// e.g. a compacted base re-deriving a cut it covered live.
func Verify(bySource map[string][]Record) Report {
	type cell struct {
		sums    []SourceSum
		sources int
		differs bool
	}
	byOffset := make(map[uint64]*cell)
	var rep Report
	// Deterministic source order so mismatch output is stable.
	names := make([]string, 0, len(bySource))
	for name := range bySource {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		recs := bySource[name]
		rep.Records += len(recs)
		seen := make(map[uint64]bool, len(recs))
		for _, rec := range recs {
			c := byOffset[rec.Offset]
			if c == nil {
				c = &cell{}
				byOffset[rec.Offset] = c
			}
			if !seen[rec.Offset] {
				seen[rec.Offset] = true
				c.sources++
			}
			if len(c.sums) > 0 && c.sums[0].Sum != rec.Sum {
				c.differs = true
			}
			c.sums = append(c.sums, SourceSum{Source: name, Sum: rec.Sum})
		}
	}
	rep.Offsets = len(byOffset)
	offsets := make([]uint64, 0, len(byOffset))
	for off := range byOffset {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	for _, off := range offsets {
		c := byOffset[off]
		if c.sources >= 2 {
			rep.Compared++
		}
		if c.differs {
			rep.Mismatches = append(rep.Mismatches, Mismatch{Offset: off, Sums: c.sums})
		}
	}
	return rep
}
