package audit

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "audit.log")
}

func mustOpen(t *testing.T, path string, runID uint64) *Log {
	t.Helper()
	l, err := Open(path, runID)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendReadRoundtrip(t *testing.T) {
	path := logPath(t)
	recs := []Record{
		{Offset: 0, Sum: 0},
		{Offset: 1, Sum: 0xdeadbeef},
		{Offset: 1 << 40, Sum: 0xffffffff},
		{Offset: ^uint64(0), Sum: 1},
	}
	l := mustOpen(t, path, 7)
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestReopenSameRunAppends(t *testing.T) {
	path := logPath(t)
	l := mustOpen(t, path, 3)
	if err := l.Append(Record{Offset: 10, Sum: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l = mustOpen(t, path, 3)
	if err := l.Append(Record{Offset: 20, Sum: 2}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, err := Read(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Offset != 10 || got[1].Offset != 20 {
		t.Fatalf("reopen lost records: %+v", got)
	}
}

func TestForeignRunRestartsFile(t *testing.T) {
	path := logPath(t)
	l := mustOpen(t, path, 3)
	l.Append(Record{Offset: 10, Sum: 1})
	l.Close()

	// A new run over the same directory must not inherit offsets the old
	// run's log assigned.
	l = mustOpen(t, path, 4)
	l.Append(Record{Offset: 5, Sum: 9})
	l.Close()
	if got, _ := Read(path, 3); got != nil {
		t.Fatalf("old run's records survived a restart: %+v", got)
	}
	got, err := Read(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || (got[0] != Record{Offset: 5, Sum: 9}) {
		t.Fatalf("new run's records wrong: %+v", got)
	}
}

func TestTornHeaderAndMissingFile(t *testing.T) {
	path := logPath(t)
	if got, err := Read(path, 1); err != nil || got != nil {
		t.Fatalf("missing file: got %+v, %v; want nil, nil", got, err)
	}
	if err := os.WriteFile(path, []byte("MSAUD"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := Read(path, 1); err != nil || got != nil {
		t.Fatalf("torn header: got %+v, %v; want nil, nil", got, err)
	}
	// Open over the torn header restarts cleanly.
	l := mustOpen(t, path, 1)
	l.Append(Record{Offset: 1, Sum: 2})
	l.Close()
	if got, _ := Read(path, 1); len(got) != 1 {
		t.Fatalf("restart over torn header: %+v", got)
	}
}

func TestTornTailIsIgnored(t *testing.T) {
	path := logPath(t)
	l := mustOpen(t, path, 5)
	l.Append(Record{Offset: 100, Sum: 0xaa})
	l.Append(Record{Offset: 200, Sum: 0xbb})
	l.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file at every length from "whole" down to the bare header:
	// the reader must return a clean prefix of the records, never an
	// error, never garbage.
	for cut := len(b); cut >= headerSize; cut-- {
		got := Decode(b[:cut], 5)
		if len(got) > 2 {
			t.Fatalf("cut %d: %d records from a 2-record log", cut, len(got))
		}
		if len(got) >= 1 && (got[0] != Record{Offset: 100, Sum: 0xaa}) {
			t.Fatalf("cut %d: first record corrupted: %+v", cut, got[0])
		}
		if len(got) == 2 && (got[1] != Record{Offset: 200, Sum: 0xbb}) {
			t.Fatalf("cut %d: second record corrupted: %+v", cut, got[1])
		}
	}
}

func TestCorruptRecordStopsDecode(t *testing.T) {
	path := logPath(t)
	l := mustOpen(t, path, 5)
	l.Append(Record{Offset: 100, Sum: 0xaa})
	l.Append(Record{Offset: 200, Sum: 0xbb})
	l.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize] ^= 0xff // flip a byte inside the first record
	got := Decode(b, 5)
	if len(got) != 0 {
		// The flipped byte must fail the first record's CRC; decoding
		// stops there rather than resyncing into the second.
		t.Fatalf("decoded %+v through a corrupt record", got)
	}
}

func TestVerify(t *testing.T) {
	rep := Verify(map[string][]Record{
		"r00": {{Offset: 10, Sum: 1}, {Offset: 20, Sum: 2}, {Offset: 30, Sum: 3}},
		"r01": {{Offset: 10, Sum: 1}, {Offset: 20, Sum: 9}},
		"r02": {{Offset: 30, Sum: 3}},
	})
	if rep.Records != 6 || rep.Offsets != 3 || rep.Compared != 3 {
		t.Fatalf("report counts wrong: %+v", rep)
	}
	if len(rep.Mismatches) != 1 || rep.Mismatches[0].Offset != 20 {
		t.Fatalf("mismatches wrong: %+v", rep.Mismatches)
	}
	if len(rep.Mismatches[0].Sums) != 2 {
		t.Fatalf("mismatch sums wrong: %+v", rep.Mismatches[0].Sums)
	}
}

func TestVerifySelfDisagreement(t *testing.T) {
	// One source re-recording an offset with a different sum (a compacted
	// base re-deriving a live cut) is a mismatch even with no peer.
	rep := Verify(map[string][]Record{
		"r00": {{Offset: 10, Sum: 1}, {Offset: 10, Sum: 2}},
	})
	if rep.Compared != 0 {
		t.Fatalf("single source counted as compared: %+v", rep)
	}
	if len(rep.Mismatches) != 1 || rep.Mismatches[0].Offset != 10 {
		t.Fatalf("self-disagreement not flagged: %+v", rep)
	}
}

func TestVerifyEmpty(t *testing.T) {
	rep := Verify(nil)
	if rep.Records != 0 || rep.Offsets != 0 || rep.Compared != 0 || rep.Mismatches != nil {
		t.Fatalf("empty verify not zero: %+v", rep)
	}
}

// FuzzAuditRecords drives Decode with arbitrary bytes: it must never
// panic, and whatever records it accepts must re-encode to a log image
// that decodes to the same records (the codec is a proper injection on
// its accepted set).
func FuzzAuditRecords(f *testing.F) {
	var seed []byte
	seed = append(seed, auditMagic[:]...)
	seed = binary.LittleEndian.AppendUint64(seed, 42)
	seed = appendRecord(seed, Record{Offset: 1234, Sum: 0xdeadbeef})
	seed = appendRecord(seed, Record{Offset: 1 << 33, Sum: 7})
	f.Add(seed, uint64(42))
	f.Add([]byte{}, uint64(0))
	f.Add(seed[:headerSize+3], uint64(42))
	f.Fuzz(func(t *testing.T, b []byte, runID uint64) {
		recs := Decode(b, runID)
		// Roundtrip: rebuild a clean log image from the accepted records
		// and decode it back.
		img := make([]byte, 0, headerSize+len(recs)*maxRecordSize)
		img = append(img, auditMagic[:]...)
		img = binary.LittleEndian.AppendUint64(img, runID)
		for _, rec := range recs {
			img = appendRecord(img, rec)
		}
		got := Decode(img, runID)
		if len(got) != len(recs) {
			t.Fatalf("roundtrip lost records: %d -> %d", len(recs), len(got))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("roundtrip record %d: %+v -> %+v", i, recs[i], got[i])
			}
		}
	})
}
