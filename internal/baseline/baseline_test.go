package baseline

import (
	"testing"
	"time"

	"motifstream/internal/graph"
)

func fig1Static() []graph.Edge {
	return []graph.Edge{
		{Src: 1, Dst: 10, TS: 0}, {Src: 2, Dst: 10, TS: 0},
		{Src: 2, Dst: 11, TS: 0}, {Src: 3, Dst: 11, TS: 0},
	}
}

func TestPollingDetectsFigure1(t *testing.T) {
	rec := NewPollingRecommender(PollingConfig{
		Period: time.Minute, K: 2, Window: 10 * time.Minute,
	}, fig1Static())
	if rec.NumUsers() != 3 {
		t.Fatalf("NumUsers = %d", rec.NumUsers())
	}
	t0 := int64(1_000_000)
	rec.Ingest(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0})
	rec.Ingest(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 10_000})

	if rec.PollDue(t0 + 10_000) {
		// lastPollMS starts at 0, so this is vacuously due; run the poll
		// at the due time to start the cycle.
	}
	results := rec.Poll(t0 + 60_000)
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	r := results[0]
	if r.Candidate.User != 2 || r.Candidate.Item != 99 {
		t.Fatalf("candidate = %+v", r.Candidate)
	}
	// The motif completed at t0+10000; polled at t0+60000 → 50s latency.
	if r.DetectionLatency != 50*time.Second {
		t.Fatalf("latency = %v, want 50s", r.DetectionLatency)
	}
	if len(r.Candidate.Via) != 2 {
		t.Fatalf("via = %v", r.Candidate.Via)
	}
}

func TestPollingSuppressesSelfAndKnown(t *testing.T) {
	static := append(fig1Static(), graph.Edge{Src: 2, Dst: 99, TS: 0}) // A2 already follows 99
	rec := NewPollingRecommender(PollingConfig{Period: time.Minute, K: 2, Window: 10 * time.Minute}, static)
	t0 := int64(1_000_000)
	rec.Ingest(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0})
	rec.Ingest(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1})
	if results := rec.Poll(t0 + 30_000); len(results) != 0 {
		t.Fatalf("known follow should be suppressed: %v", results)
	}
}

func TestPollingWindowExpiry(t *testing.T) {
	rec := NewPollingRecommender(PollingConfig{Period: time.Minute, K: 2, Window: time.Minute}, fig1Static())
	t0 := int64(1_000_000)
	rec.Ingest(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0})
	rec.Ingest(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1_000})
	// Poll far in the future: both actions expired.
	if results := rec.Poll(t0 + 600_000); len(results) != 0 {
		t.Fatalf("expired actions still detected: %v", results)
	}
}

func TestPollingMotifSpansPollPeriods(t *testing.T) {
	// First supporting edge before a poll, second after it: the motif
	// must still be found on the second poll (the window rescan).
	rec := NewPollingRecommender(PollingConfig{Period: time.Minute, K: 2, Window: 10 * time.Minute}, fig1Static())
	t0 := int64(1_000_000)
	rec.Ingest(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0})
	if results := rec.Poll(t0 + 30_000); len(results) != 0 {
		t.Fatalf("half-motif detected: %v", results)
	}
	rec.Ingest(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 40_000})
	results := rec.Poll(t0 + 90_000)
	if len(results) != 1 {
		t.Fatalf("straddling motif missed: %v", results)
	}
}

func TestPollDue(t *testing.T) {
	rec := NewPollingRecommender(PollingConfig{Period: time.Minute, K: 2, Window: 10 * time.Minute}, fig1Static())
	rec.Poll(1_000_000)
	if rec.PollDue(1_000_000 + 30_000) {
		t.Fatal("poll due after 30s with a 60s period")
	}
	if !rec.PollDue(1_000_000 + 60_000) {
		t.Fatal("poll not due after a full period")
	}
}

func TestPollingDefaults(t *testing.T) {
	rec := NewPollingRecommender(PollingConfig{}, fig1Static())
	cfg := rec.Config()
	if cfg.Period <= 0 || cfg.K < 2 || cfg.Window <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if rec.ExpectedDetectionLatency() != cfg.Period/2 {
		t.Fatal("expected latency should be half the period")
	}
}

// TestPollingAgreesWithStreaming is E4's correctness premise: both designs
// find the same (user, item) recommendations; they differ in latency and
// cost, not results.
func TestPollingAgreesWithStreaming(t *testing.T) {
	cfg := PollingConfig{Period: time.Minute, K: 2, Window: 10 * time.Minute}
	static := fig1Static()
	t0 := int64(1_000_000)
	dynamic := []graph.Edge{
		{Src: 10, Dst: 99, Type: graph.Follow, TS: t0},
		{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 5_000},
		{Src: 10, Dst: 55, Type: graph.Follow, TS: t0 + 6_000},
		{Src: 11, Dst: 55, Type: graph.Follow, TS: t0 + 7_000},
	}

	streaming := StreamingEquivalent(cfg, static, dynamic)
	streamSet := map[[2]graph.VertexID]bool{}
	for _, c := range streaming {
		streamSet[[2]graph.VertexID{c.User, c.Item}] = true
	}

	rec := NewPollingRecommender(cfg, static)
	for _, e := range dynamic {
		rec.Ingest(e)
	}
	pollSet := map[[2]graph.VertexID]bool{}
	for _, r := range rec.Poll(t0 + 30_000) {
		pollSet[[2]graph.VertexID{r.Candidate.User, r.Candidate.Item}] = true
	}

	if len(streamSet) == 0 {
		t.Fatal("streaming found nothing; test is vacuous")
	}
	if len(streamSet) != len(pollSet) {
		t.Fatalf("streaming %v vs polling %v", streamSet, pollSet)
	}
	for k := range streamSet {
		if !pollSet[k] {
			t.Fatalf("polling missed %v", k)
		}
	}
}

func TestTwoHopNoFalseNegatives(t *testing.T) {
	static := fig1Static()
	// Add B→C edges so two-hop sets are non-trivial: 10→99, 11→98.
	static = append(static,
		graph.Edge{Src: 10, Dst: 99}, graph.Edge{Src: 11, Dst: 98})
	th := BuildTwoHop(TwoHopConfig{FPRate: 0.01, TrackExact: true}, static)
	// User 1 follows 10; 10 follows 99 → 99 is in 1's two-hop set.
	if !th.MayContain(1, 99) || !th.ContainsExact(1, 99) {
		t.Fatal("two-hop member missing")
	}
	// User 2 follows both 10 and 11 → both 99 and 98 reachable.
	if !th.MayContain(2, 99) || !th.MayContain(2, 98) {
		t.Fatal("user 2 two-hop set wrong")
	}
	// User 1 does not follow 11, so 98 must not be exact for 1.
	if th.ContainsExact(1, 98) {
		t.Fatal("exact set contains non-member")
	}
	if th.NumUsers() == 0 || th.Entries() == 0 || th.MemoryBytes() == 0 {
		t.Fatal("accounting empty")
	}
}

func TestTwoHopExactAgreesWithBloom(t *testing.T) {
	// Every exact member must be claimed by the Bloom side too.
	var static []graph.Edge
	for a := graph.VertexID(0); a < 50; a++ {
		static = append(static, graph.Edge{Src: a, Dst: 50 + a%10})
	}
	for b := graph.VertexID(50); b < 60; b++ {
		static = append(static, graph.Edge{Src: b, Dst: 100 + b})
	}
	th := BuildTwoHop(TwoHopConfig{FPRate: 0.01, TrackExact: true}, static)
	for a := graph.VertexID(0); a < 50; a++ {
		c := graph.VertexID(100 + 50 + a%10)
		if th.ContainsExact(a, c) && !th.MayContain(a, c) {
			t.Fatalf("false negative for user %d item %d", a, c)
		}
	}
}

func TestMemoryModelShape(t *testing.T) {
	m := ModelAtScale(2e8, 100, 0.01, 1e9)
	// The paper's "rough calculation": two-hop memory exceeds streaming
	// memory by orders of magnitude at Twitter scale.
	if m.TwoHopBytes < m.StreamingBytes*10 {
		t.Fatalf("two-hop %g should dwarf streaming %g", m.TwoHopBytes, m.StreamingBytes)
	}
	// Quadratic in degree: doubling degree roughly quadruples two-hop
	// memory but only doubles S.
	m2 := ModelAtScale(2e8, 200, 0.01, 1e9)
	ratio := m2.TwoHopBytes / m.TwoHopBytes
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("doubling degree scaled two-hop by %.2f, want ~4", ratio)
	}
	// Bad FP rates are defaulted.
	if bad := ModelAtScale(10, 5, 0, 100); bad.FPRate != 0.01 {
		t.Fatal("fp default not applied")
	}
	if TwitterScaleModel().TwoHopBytes <= 0 {
		t.Fatal("Twitter-scale model empty")
	}
}

func TestTwoHopDefaultFPRate(t *testing.T) {
	static := append(fig1Static(), graph.Edge{Src: 10, Dst: 99})
	th := BuildTwoHop(TwoHopConfig{}, static)
	if th.NumUsers() == 0 {
		t.Fatal("default FP rate build failed")
	}
	// Without TrackExact, ContainsExact is always false.
	if th.ContainsExact(1, 99) {
		t.Fatal("exact tracking should be off by default")
	}
}
