// Package baseline implements the two designs the paper considered and
// rejected (§2), so that experiment E4 can measure why: a polling
// recommender that re-queries each user's network on a fixed period, and a
// two-hop neighborhood materialization using Bloom filters. Both produce
// the same recommendations as the streaming diamond detector; they lose on
// detection latency and memory respectively.
package baseline

import (
	"sort"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

// PollingConfig parametrizes the polling recommender.
type PollingConfig struct {
	// Period is how often each user's network is re-examined. The paper:
	// "One could poll each user's network periodically to see if the motif
	// has been formed since the last query; however, the latency would be
	// unacceptably large."
	Period time.Duration
	// K is the motif support threshold (same meaning as the diamond K).
	K int
	// Window is the freshness window τ.
	Window time.Duration
}

// PollingRecommender periodically recomputes, for every user A, the items
// that at least K of A's followings acted on within the window. Detection
// latency is therefore uniform in [0, Period) after motif completion —
// Period/2 on average — versus effectively zero for the streaming design.
type PollingRecommender struct {
	cfg PollingConfig
	// follows maps each A to its sorted followings (the B's).
	follows map[graph.VertexID]graph.AdjList
	users   []graph.VertexID
	// recent is the in-window dynamic history, pruned each poll. Motifs
	// may straddle poll boundaries, so the whole window must be rescanned,
	// not just edges since the last tick — one of the reasons polling does
	// redundant work.
	recent     []graph.Edge
	lastPollMS int64
	// satisfiedAt dedupes detections across polls: a motif stays
	// satisfied for the whole window, so without episode tracking every
	// poll would re-report it with ever-growing latency. The value is
	// the last poll time at which the pair was satisfied; a pair
	// satisfied at consecutive polls is one continuing episode and is
	// reported only at its first poll.
	satisfiedAt map[reportKey]int64
}

type reportKey struct {
	a, c graph.VertexID
}

// PollResult is one detection produced by a poll pass.
type PollResult struct {
	Candidate motif.Candidate
	// DetectionLatency is poll time minus motif completion time: the
	// latency penalty inherent to polling.
	DetectionLatency time.Duration
}

// NewPollingRecommender builds the baseline from the global A→B follow
// edges. Unlike the streaming system it needs the *forward* adjacency: it
// walks from each A outward.
func NewPollingRecommender(cfg PollingConfig, followEdges []graph.Edge) *PollingRecommender {
	if cfg.Period <= 0 {
		cfg.Period = time.Minute
	}
	if cfg.K < 2 {
		cfg.K = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Minute
	}
	byA := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range followEdges {
		byA[e.Src] = append(byA[e.Src], e.Dst)
	}
	follows := make(map[graph.VertexID]graph.AdjList, len(byA))
	users := make([]graph.VertexID, 0, len(byA))
	for a, bs := range byA {
		follows[a] = graph.NewAdjList(bs)
		users = append(users, a)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	return &PollingRecommender{
		cfg:         cfg,
		follows:     follows,
		users:       users,
		satisfiedAt: make(map[reportKey]int64),
	}
}

// Ingest buffers one dynamic edge. Nothing is detected until the next poll
// tick — that is the point of the baseline.
func (p *PollingRecommender) Ingest(e graph.Edge) {
	p.recent = append(p.recent, e)
}

// PollDue reports whether a poll pass is due at stream time nowMS.
func (p *PollingRecommender) PollDue(nowMS int64) bool {
	return nowMS-p.lastPollMS >= p.cfg.Period.Milliseconds()
}

// Poll runs one full pass at stream time nowMS: for every user, gather the
// in-window actions of their followings, group by target, and emit targets
// with at least K distinct acting followings. DetectionLatency for each
// result measures the time since the motif actually completed (the Kth
// supporting edge arrived).
func (p *PollingRecommender) Poll(nowMS int64) []PollResult {
	prevPollMS := p.lastPollMS
	p.lastPollMS = nowMS
	since := nowMS - p.cfg.Window.Milliseconds()

	// Prune the window, then index in-window actions by acting user B.
	keep := p.recent[:0]
	for _, e := range p.recent {
		if e.TS >= since {
			keep = append(keep, e)
		}
	}
	p.recent = keep

	type action struct {
		c  graph.VertexID
		ts int64
	}
	actionsByB := make(map[graph.VertexID][]action, len(p.recent))
	for _, e := range p.recent {
		actionsByB[e.Src] = append(actionsByB[e.Src], action{c: e.Dst, ts: e.TS})
	}

	var out []PollResult
	for _, a := range p.users {
		bs := p.follows[a]
		// Distinct supporting B's per target C. A B acting twice on the
		// same C counts once; keep its earliest in-window timestamp.
		firstSeen := make(map[graph.VertexID]map[graph.VertexID]int64)
		for _, b := range bs {
			for _, act := range actionsByB[b] {
				m := firstSeen[act.c]
				if m == nil {
					m = make(map[graph.VertexID]int64, 4)
					firstSeen[act.c] = m
				}
				if old, ok := m[b]; !ok || act.ts < old {
					m[b] = act.ts
				}
			}
		}
		for c, byB := range firstSeen {
			if len(byB) < p.cfg.K || c == a || bs.Contains(c) {
				continue
			}
			tss := make([]int64, 0, len(byB))
			via := make([]graph.VertexID, 0, len(byB))
			for b, ts := range byB {
				tss = append(tss, ts)
				via = append(via, b)
			}
			sort.Slice(tss, func(i, j int) bool { return tss[i] < tss[j] })
			sort.Slice(via, func(i, j int) bool { return via[i] < via[j] })
			completedMS := tss[p.cfg.K-1]
			rk := reportKey{a: a, c: c}
			continuing := p.satisfiedAt[rk] == prevPollMS && prevPollMS != 0
			p.satisfiedAt[rk] = nowMS
			if continuing {
				continue // same episode, already reported
			}
			lat := time.Duration(nowMS-completedMS) * time.Millisecond
			if lat < 0 {
				lat = 0
			}
			out = append(out, PollResult{
				Candidate: motif.Candidate{
					User:         a,
					Item:         c,
					Via:          via,
					DetectedAtMS: nowMS,
					Program:      "baseline-polling",
					Score:        float64(len(byB)),
				},
				DetectionLatency: lat,
			})
		}
	}
	// Drop episodes that ended (not satisfied at this poll) so the pair
	// can report again if it re-completes later.
	for k, at := range p.satisfiedAt {
		if at != nowMS {
			delete(p.satisfiedAt, k)
		}
	}
	return out
}

// Config returns the recommender's configuration.
func (p *PollingRecommender) Config() PollingConfig { return p.cfg }

// NumUsers returns the number of users with at least one following.
func (p *PollingRecommender) NumUsers() int { return len(p.users) }

// ExpectedDetectionLatency returns the analytical mean detection latency of
// polling with the configured period: Period/2 (motif completion times are
// uniform within a period).
func (p *PollingRecommender) ExpectedDetectionLatency() time.Duration {
	return p.cfg.Period / 2
}

// StreamingEquivalent runs the same detection with the streaming diamond
// program over equivalent stores, used by E4 to verify the two designs
// agree on what they detect. It returns candidates for the given edges
// applied in order.
func StreamingEquivalent(cfg PollingConfig, followEdges, dynamicEdges []graph.Edge) []motif.Candidate {
	builder := &statstore.Builder{}
	static := statstore.New(builder.Build(followEdges))
	d := dynstore.New(dynstore.Options{Retention: cfg.Window})
	follows := make(map[graph.VertexID]graph.AdjList)
	{
		byA := make(map[graph.VertexID][]graph.VertexID)
		for _, e := range followEdges {
			byA[e.Src] = append(byA[e.Src], e.Dst)
		}
		for a, bs := range byA {
			follows[a] = graph.NewAdjList(bs)
		}
	}
	ctx := &motif.Context{
		S: static,
		D: d,
		Follows: func(a, c graph.VertexID) bool {
			return follows[a].Contains(c)
		},
	}
	prog := motif.NewDiamond(motif.DiamondConfig{
		K:         cfg.K,
		Window:    cfg.Window,
		EdgeTypes: []graph.EdgeType{graph.Follow, graph.Retweet, graph.Favorite},
	})
	var out []motif.Candidate
	for _, e := range dynamicEdges {
		d.Insert(e)
		out = append(out, prog.OnEdge(ctx, e)...)
	}
	return out
}
