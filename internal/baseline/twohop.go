package baseline

import (
	"math"

	"motifstream/internal/bloom"
	"motifstream/internal/graph"
)

// TwoHop materializes, for every user A, the set of accounts reachable in
// two hops (the C's that any of A's followings follow) — the paper's second
// rejected design. Detection of a forming motif would then be a membership
// probe, but the materialized sets are enormous: a user following n
// accounts of mean out-degree d owns a two-hop set of ~n·d entries, and the
// whole structure costs Θ(Σ_A |followings(A)|·d̄) ≈ E·d̄ entries for E
// first-hop edges. Bloom filters shave the constant (≈10 bits/entry at 1%
// FP) but not the asymptotics, which is exactly the paper's "rough
// calculation shows that this is impractical".
type TwoHop struct {
	filters map[graph.VertexID]*bloom.Filter
	exact   map[graph.VertexID]map[graph.VertexID]bool // nil unless TrackExact
	entries uint64
}

// TwoHopConfig parametrizes materialization.
type TwoHopConfig struct {
	// FPRate is the Bloom false-positive target per user filter.
	// Zero selects 0.01.
	FPRate float64
	// TrackExact additionally keeps exact sets for verification; only
	// feasible at laptop scale.
	TrackExact bool
}

// BuildTwoHop materializes two-hop neighborhoods from the A→B follow edge
// list. Every A gets a Bloom filter over {C : ∃B, A→B and B→C}.
func BuildTwoHop(cfg TwoHopConfig, followEdges []graph.Edge) *TwoHop {
	if cfg.FPRate <= 0 || cfg.FPRate >= 1 {
		cfg.FPRate = 0.01
	}
	forward := graph.BuildCSR(followEdges)
	t := &TwoHop{filters: make(map[graph.VertexID]*bloom.Filter)}
	if cfg.TrackExact {
		t.exact = make(map[graph.VertexID]map[graph.VertexID]bool)
	}
	n := forward.NumVertices()
	for a := 0; a < n; a++ {
		av := graph.VertexID(a)
		bs := forward.Neighbors(av)
		if len(bs) == 0 {
			continue
		}
		// Expected two-hop size: sum of following out-degrees.
		var expected uint64
		for _, b := range bs {
			expected += uint64(forward.OutDegree(b))
		}
		if expected == 0 {
			continue
		}
		f := bloom.New(expected, cfg.FPRate)
		var exact map[graph.VertexID]bool
		if t.exact != nil {
			exact = make(map[graph.VertexID]bool, expected)
			t.exact[av] = exact
		}
		for _, b := range bs {
			for _, c := range forward.Neighbors(b) {
				f.Add(uint64(c))
				if exact != nil {
					exact[c] = true
				}
			}
		}
		t.filters[av] = f
		t.entries += f.Count()
	}
	return t
}

// MayContain reports whether c may be within two hops of a (Bloom
// semantics: false negatives never, false positives at the configured
// rate).
func (t *TwoHop) MayContain(a, c graph.VertexID) bool {
	f := t.filters[a]
	return f != nil && f.Contains(uint64(c))
}

// ContainsExact reports exact membership; it requires TrackExact and
// returns false otherwise.
func (t *TwoHop) ContainsExact(a, c graph.VertexID) bool {
	return t.exact != nil && t.exact[a][c]
}

// NumUsers returns the number of users with a materialized filter.
func (t *TwoHop) NumUsers() int { return len(t.filters) }

// Entries returns the total (with multiplicity) two-hop entries inserted.
func (t *TwoHop) Entries() uint64 { return t.entries }

// MemoryBytes returns the measured resident size of all Bloom filters.
func (t *TwoHop) MemoryBytes() uint64 {
	var total uint64
	for _, f := range t.filters {
		total += f.MemoryBytes()
	}
	return total
}

// MemoryModel is the analytical scaling model used to extrapolate the
// two-hop design to Twitter scale, where building it is impossible.
type MemoryModel struct {
	Users          uint64  // accounts
	MeanOutDegree  float64 // mean followings per account
	FPRate         float64 // per-filter Bloom FP target
	BitsPerEntry   float64 // derived: -ln(p)/(ln 2)^2
	TwoHopEntries  float64 // derived: Users · MeanOutDegree²
	TwoHopBytes    float64 // derived: Bloom bytes for all two-hop sets
	StreamingBytes float64 // derived: S+D bytes for the paper's design
}

// ModelAtScale evaluates the memory model. The streaming design's S holds
// one 8-byte entry per follow edge (Users·MeanOutDegree) and D holds the
// retained stream window (dEntries), both linear; the two-hop design holds
// Users·MeanOutDegree² Bloom entries — quadratic in degree.
func ModelAtScale(users uint64, meanOutDegree float64, fpRate float64, dEntries uint64) MemoryModel {
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	bitsPerEntry := -math.Log(fpRate) / (math.Ln2 * math.Ln2)
	twoHopEntries := float64(users) * meanOutDegree * meanOutDegree
	m := MemoryModel{
		Users:         users,
		MeanOutDegree: meanOutDegree,
		FPRate:        fpRate,
		BitsPerEntry:  bitsPerEntry,
		TwoHopEntries: twoHopEntries,
		TwoHopBytes:   twoHopEntries * bitsPerEntry / 8,
	}
	sBytes := float64(users) * meanOutDegree * 8
	dBytes := float64(dEntries) * 16
	m.StreamingBytes = sBytes + dBytes
	return m
}

// TwitterScaleModel returns the model at the paper's 2012 numbers:
// O(10^8) vertices, O(10^10) edges (mean degree ~100).
func TwitterScaleModel() MemoryModel {
	return ModelAtScale(2e8, 100, 0.01, 1e9)
}
