// Package benchfmt defines the versioned BENCH_<date>.json artifact that
// records the system's performance trajectory across PRs, and the
// comparator that turns two artifacts into per-metric deltas and
// regression verdicts.
//
// Every perf claim the repo makes — events/s ingested, end-to-end
// detection latency, recovery replay rate, checkpoint cut pause,
// reprovision latency — is emitted by cmd/benchreport as a Report on a
// pinned synthetic workload, written to bench/BENCH_<date>.json, and
// compared against the newest committed artifact. A regression beyond the
// per-metric tolerance fails the build, so "faster" and "no slower" are
// provable rather than asserted in commit messages. docs/BENCHMARKS.md
// documents the schema, the pinned workload, and the runbook.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SchemaVersion is the artifact format version. Readers refuse artifacts
// with a different major version rather than guessing: a trajectory that
// silently compared incompatible measurements would be worse than none.
const SchemaVersion = 1

// Direction states which way a metric improves.
type Direction string

const (
	// HigherIsBetter marks throughput-like metrics (events/s).
	HigherIsBetter Direction = "higher"
	// LowerIsBetter marks latency-like metrics (p99, pause, bytes).
	LowerIsBetter Direction = "lower"
)

// Metric is one measured value.
type Metric struct {
	// Name is the stable metric identifier, dotted by subsystem, e.g.
	// "trajectory.ingest_events_per_sec". Comparisons join on it.
	Name string `json:"name"`
	// Value is the measurement in Unit.
	Value float64 `json:"value"`
	// Unit is the human-readable unit ("events/s", "ns", "bytes", "x").
	Unit string `json:"unit"`
	// Better states which direction improves; empty means the metric is
	// informational and never produces a regression verdict.
	Better Direction `json:"better,omitempty"`
	// Tolerance overrides the comparator's default relative tolerance for
	// this metric (0.25 = a 25% move against Better is a regression).
	// Zero means use the default.
	Tolerance float64 `json:"tolerance,omitempty"`
}

// Workload pins the synthetic workload a report was measured on. Two
// reports are only comparable when their workloads match; the comparator
// flags a mismatch instead of producing meaningless deltas.
type Workload struct {
	Name       string `json:"name"`
	Seed       int64  `json:"seed"`
	Users      int    `json:"users"`
	AvgFollows int    `json:"avg_follows"`
	Events     int    `json:"events"`
	Partitions int    `json:"partitions"`
	Replicas   int    `json:"replicas"`
}

// Report is one point on the benchmark trajectory.
type Report struct {
	// Schema is the artifact format version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// Date is the measurement date, YYYY-MM-DD. It names the artifact.
	Date string `json:"date"`
	// Commit is the VCS revision the binary was built from, when known.
	Commit string `json:"commit,omitempty"`
	// GoVersion records the toolchain; host performance context.
	GoVersion string `json:"go_version,omitempty"`
	// Host is "GOOS/GOARCH/<ncpu>cpu" — absolute numbers are only
	// comparable within one host class, and the comparator's generous
	// default tolerance exists exactly because CI hosts vary.
	Host string `json:"host,omitempty"`
	// Workload pins the synthetic workload measured.
	Workload Workload `json:"workload"`
	// Metrics are the measurements, sorted by name at write time.
	Metrics []Metric `json:"metrics"`
}

// ErrSchema is returned (wrapped) when an artifact's schema version does
// not match SchemaVersion.
var ErrSchema = fmt.Errorf("benchfmt: unsupported schema version")

// maxArtifactBytes bounds decoding: a trajectory artifact is a few KiB; a
// multi-megabyte one is damage, not data.
const maxArtifactBytes = 8 << 20

// Decode reads one Report from r, validating the schema version.
func Decode(r io.Reader) (*Report, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxArtifactBytes+1))
	if err != nil {
		return nil, fmt.Errorf("benchfmt: read: %w", err)
	}
	if len(data) > maxArtifactBytes {
		return nil, fmt.Errorf("benchfmt: artifact exceeds %d bytes", maxArtifactBytes)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchfmt: decode: %w", err)
	}
	if rep.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrSchema, rep.Schema, SchemaVersion)
	}
	for i, m := range rep.Metrics {
		if m.Name == "" {
			return nil, fmt.Errorf("benchfmt: metric %d has no name", i)
		}
		switch m.Better {
		case "", HigherIsBetter, LowerIsBetter:
		default:
			return nil, fmt.Errorf("benchfmt: metric %q: bad direction %q", m.Name, m.Better)
		}
		if m.Tolerance < 0 {
			return nil, fmt.Errorf("benchfmt: metric %q: negative tolerance", m.Name)
		}
	}
	return &rep, nil
}

// Encode writes the report as indented JSON, metrics sorted by name so
// committed artifacts diff cleanly.
func (r *Report) Encode(w io.Writer) error {
	r.Schema = SchemaVersion
	sort.Slice(r.Metrics, func(i, j int) bool { return r.Metrics[i].Name < r.Metrics[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadFile loads an artifact from disk.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// WriteFile atomically writes the artifact (tmp + rename), so a crashed
// run never leaves a torn trajectory point behind.
func (r *Report) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Lookup returns the named metric, or false.
func (r *Report) Lookup(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// ArtifactName returns the conventional file name for a trajectory point
// measured on the given date (YYYY-MM-DD).
func ArtifactName(date string) string { return "BENCH_" + date + ".json" }

// LatestArtifact returns the lexically newest BENCH_*.json in dir — the
// date-stamped naming makes lexical order chronological — or "" when the
// directory holds none (a missing directory counts as empty: the first
// trajectory point has no prior).
func LatestArtifact(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	newest := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		if name > newest {
			newest = name
		}
	}
	if newest == "" {
		return "", nil
	}
	return filepath.Join(dir, newest), nil
}
