package benchfmt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Schema:    SchemaVersion,
		Date:      "2026-08-08",
		Commit:    "abc1234",
		GoVersion: "go1.22.0",
		Host:      "linux/amd64/8cpu",
		Workload: Workload{
			Name: "trajectory-v1", Seed: 1, Users: 20_000, AvgFollows: 30,
			Events: 200_000, Partitions: 4, Replicas: 2,
		},
		// Sorted by name, matching Encode's canonical order.
		Metrics: []Metric{
			{Name: "trajectory.delivered", Value: 1234, Unit: "count"},
			{Name: "trajectory.detect_latency_p99_ns", Value: 1.5e9, Unit: "ns", Better: LowerIsBetter},
			{Name: "trajectory.ingest_events_per_sec", Value: 31000, Unit: "events/s", Better: HigherIsBetter},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rep)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ArtifactName("2026-08-08"))
	rep := sampleReport()
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatal("file round trip mismatch")
	}
	// The atomic write leaves no tmp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(entries))
	}
}

// TestGoldenArtifact pins the on-disk schema: if the JSON shape changes,
// this golden file must be regenerated deliberately (and SchemaVersion
// bumped if the change is incompatible), not silently.
func TestGoldenArtifact(t *testing.T) {
	golden := filepath.Join("testdata", "BENCH_golden.json")
	rep, err := ReadFile(golden)
	if err != nil {
		t.Fatalf("golden artifact unreadable: %v", err)
	}
	if !reflect.DeepEqual(rep, sampleReport()) {
		t.Fatalf("golden decode mismatch:\n got %+v\nwant %+v", rep, sampleReport())
	}
	// And byte-for-byte stability of the encoder.
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("encoder output drifted from golden:\n got %s\nwant %s", buf.Bytes(), want)
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	for _, schema := range []string{"0", "2", "999"} {
		in := `{"schema": ` + schema + `, "date": "2026-01-01", "metrics": []}`
		if _, err := Decode(strings.NewReader(in)); !errors.Is(err, ErrSchema) {
			t.Fatalf("schema %s: err = %v, want ErrSchema", schema, err)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":           "}{",
		"nameless metric":    `{"schema":1,"metrics":[{"value":1}]}`,
		"bad direction":      `{"schema":1,"metrics":[{"name":"x","better":"sideways"}]}`,
		"negative tolerance": `{"schema":1,"metrics":[{"name":"x","tolerance":-0.5}]}`,
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decode accepted %q", name, in)
		}
	}
}

func TestLatestArtifact(t *testing.T) {
	dir := t.TempDir()
	// Missing or empty directory: no prior, no error.
	if p, err := LatestArtifact(filepath.Join(dir, "nope")); err != nil || p != "" {
		t.Fatalf("missing dir: (%q, %v)", p, err)
	}
	if p, err := LatestArtifact(dir); err != nil || p != "" {
		t.Fatalf("empty dir: (%q, %v)", p, err)
	}
	for _, name := range []string{"BENCH_2026-01-05.json", "BENCH_2025-12-31.json", "notes.md", "BENCH_bad.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err := LatestArtifact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_2026-01-05.json" {
		t.Fatalf("latest = %q", p)
	}
}

func TestLookup(t *testing.T) {
	rep := sampleReport()
	if m, ok := rep.Lookup("trajectory.delivered"); !ok || m.Value != 1234 {
		t.Fatalf("Lookup = %+v, %v", m, ok)
	}
	if _, ok := rep.Lookup("missing"); ok {
		t.Fatal("Lookup found a missing metric")
	}
}
