package benchfmt

import (
	"fmt"
	"strings"
)

// Verdict classifies one metric's movement between two trajectory points.
type Verdict string

const (
	// VerdictImproved: the metric moved in its Better direction by more
	// than the tolerance.
	VerdictImproved Verdict = "improved"
	// VerdictWithin: the movement is inside the tolerance band (noise).
	VerdictWithin Verdict = "within"
	// VerdictRegressed: the metric moved against its Better direction by
	// more than the tolerance. Comparisons with any regression gate CI.
	VerdictRegressed Verdict = "regressed"
	// VerdictAdded: the metric exists only in the current report.
	VerdictAdded Verdict = "added"
	// VerdictRemoved: the metric exists only in the prior report. Not a
	// regression by itself, but surfaced so a silently dropped measurement
	// cannot masquerade as "nothing got worse".
	VerdictRemoved Verdict = "removed"
	// VerdictInfo: the metric carries no Better direction; the delta is
	// reported but never judged.
	VerdictInfo Verdict = "info"
)

// Delta is one metric's comparison across two reports.
type Delta struct {
	Name string
	Unit string
	// Prev and Cur are the two values; meaningless for added/removed.
	Prev, Cur float64
	// Change is the relative movement (Cur-Prev)/Prev; +0.10 means the
	// value rose 10%. Zero when Prev is zero.
	Change float64
	// Tolerance is the band actually applied.
	Tolerance float64
	Verdict   Verdict
}

// Comparison is the full result of comparing two trajectory points.
type Comparison struct {
	Deltas []Delta
	// WorkloadMismatch is set when the two reports measured different
	// pinned workloads; deltas are still produced but the comparison
	// cannot gate (apples to oranges).
	WorkloadMismatch bool
}

// Regressions returns the deltas whose verdict is VerdictRegressed.
func (c Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Verdict == VerdictRegressed {
			out = append(out, d)
		}
	}
	return out
}

// Ok reports whether the comparison can gate a build and found no
// regression. A workload mismatch is not ok: the gate would be vacuous.
func (c Comparison) Ok() bool {
	return !c.WorkloadMismatch && len(c.Regressions()) == 0
}

// Compare joins prev and cur on metric name and classifies every
// movement. defaultTol is the relative tolerance applied when a metric
// carries none of its own; the current report's per-metric Tolerance (or,
// failing that, the prior's) wins. Tolerances are deliberately generous
// in CI — the trajectory gate is a catastrophe detector across hosts, not
// a microbenchmark.
func Compare(prev, cur *Report, defaultTol float64) Comparison {
	var c Comparison
	if prev.Workload != cur.Workload {
		c.WorkloadMismatch = true
	}
	prevBy := make(map[string]Metric, len(prev.Metrics))
	for _, m := range prev.Metrics {
		prevBy[m.Name] = m
	}
	seen := make(map[string]bool, len(cur.Metrics))
	for _, m := range cur.Metrics {
		seen[m.Name] = true
		pm, ok := prevBy[m.Name]
		if !ok {
			c.Deltas = append(c.Deltas, Delta{Name: m.Name, Unit: m.Unit, Cur: m.Value, Verdict: VerdictAdded})
			continue
		}
		tol := m.Tolerance
		if tol == 0 {
			tol = pm.Tolerance
		}
		if tol == 0 {
			tol = defaultTol
		}
		d := Delta{Name: m.Name, Unit: m.Unit, Prev: pm.Value, Cur: m.Value, Tolerance: tol}
		if pm.Value != 0 {
			d.Change = (m.Value - pm.Value) / pm.Value
		}
		d.Verdict = classify(m.Better, d.Change, tol)
		c.Deltas = append(c.Deltas, d)
	}
	for _, m := range prev.Metrics {
		if !seen[m.Name] {
			c.Deltas = append(c.Deltas, Delta{Name: m.Name, Unit: m.Unit, Prev: m.Value, Verdict: VerdictRemoved})
		}
	}
	return c
}

// classify turns a relative change into a verdict given the metric's
// improvement direction and tolerance.
func classify(better Direction, change, tol float64) Verdict {
	switch better {
	case HigherIsBetter:
		if change < -tol {
			return VerdictRegressed
		}
		if change > tol {
			return VerdictImproved
		}
		return VerdictWithin
	case LowerIsBetter:
		if change > tol {
			return VerdictRegressed
		}
		if change < -tol {
			return VerdictImproved
		}
		return VerdictWithin
	default:
		return VerdictInfo
	}
}

// Format renders the comparison as an aligned text table, one metric per
// line, regression lines marked so they stand out in CI logs.
func (c Comparison) Format() string {
	var sb strings.Builder
	if c.WorkloadMismatch {
		sb.WriteString("!! workload mismatch: deltas are not comparable\n")
	}
	nameW := len("metric")
	for _, d := range c.Deltas {
		if len(d.Name) > nameW {
			nameW = len(d.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %14s  %14s  %8s  %s\n", nameW, "metric", "prev", "cur", "change", "verdict")
	for _, d := range c.Deltas {
		mark := "  "
		if d.Verdict == VerdictRegressed {
			mark = "!!"
		}
		switch d.Verdict {
		case VerdictAdded:
			fmt.Fprintf(&sb, "%-*s  %14s  %14.4g  %8s  %s added\n", nameW, d.Name, "-", d.Cur, "-", mark)
		case VerdictRemoved:
			fmt.Fprintf(&sb, "%-*s  %14.4g  %14s  %8s  %s removed\n", nameW, d.Name, d.Prev, "-", "-", mark)
		default:
			fmt.Fprintf(&sb, "%-*s  %14.4g  %14.4g  %+7.1f%%  %s %s (tol ±%.0f%%)\n",
				nameW, d.Name, d.Prev, d.Cur, 100*d.Change, mark, d.Verdict, 100*d.Tolerance)
		}
	}
	return sb.String()
}
