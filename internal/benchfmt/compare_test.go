package benchfmt

import (
	"strings"
	"testing"
)

// mkReport builds a minimal report over one pinned workload.
func mkReport(metrics ...Metric) *Report {
	return &Report{
		Schema:   SchemaVersion,
		Date:     "2026-08-08",
		Workload: Workload{Name: "trajectory-v1", Seed: 1, Users: 100, Events: 1000, Partitions: 2, Replicas: 2},
		Metrics:  metrics,
	}
}

func deltaFor(t *testing.T, c Comparison, name string) Delta {
	t.Helper()
	for _, d := range c.Deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no delta for %q in %+v", name, c.Deltas)
	return Delta{}
}

func TestCompareVerdicts(t *testing.T) {
	prev := mkReport(
		Metric{Name: "tput", Value: 1000, Better: HigherIsBetter},
		Metric{Name: "lat", Value: 100, Better: LowerIsBetter},
		Metric{Name: "info", Value: 5},
		Metric{Name: "gone", Value: 1, Better: LowerIsBetter},
	)
	cases := []struct {
		name string
		cur  Metric
		want Verdict
	}{
		{"throughput collapse regresses", Metric{Name: "tput", Value: 400, Better: HigherIsBetter}, VerdictRegressed},
		{"throughput noise is within", Metric{Name: "tput", Value: 900, Better: HigherIsBetter}, VerdictWithin},
		{"throughput jump improves", Metric{Name: "tput", Value: 2000, Better: HigherIsBetter}, VerdictImproved},
		{"latency spike regresses", Metric{Name: "lat", Value: 300, Better: LowerIsBetter}, VerdictRegressed},
		{"latency noise is within", Metric{Name: "lat", Value: 110, Better: LowerIsBetter}, VerdictWithin},
		{"latency drop improves", Metric{Name: "lat", Value: 30, Better: LowerIsBetter}, VerdictImproved},
		{"directionless is info", Metric{Name: "info", Value: 500}, VerdictInfo},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Compare(prev, mkReport(tc.cur), 0.25)
			if got := deltaFor(t, c, tc.cur.Name).Verdict; got != tc.want {
				t.Fatalf("verdict = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestCompareAddedRemoved(t *testing.T) {
	prev := mkReport(Metric{Name: "gone", Value: 1, Better: LowerIsBetter})
	cur := mkReport(Metric{Name: "fresh", Value: 2, Better: HigherIsBetter})
	c := Compare(prev, cur, 0.25)
	if got := deltaFor(t, c, "fresh").Verdict; got != VerdictAdded {
		t.Fatalf("fresh verdict = %q", got)
	}
	if got := deltaFor(t, c, "gone").Verdict; got != VerdictRemoved {
		t.Fatalf("gone verdict = %q", got)
	}
	// Added/removed are surfaced but are not regressions.
	if !c.Ok() {
		t.Fatal("added/removed alone should not fail the gate")
	}
}

// TestCompareToleranceMath pins the band edges: a move of exactly the
// tolerance is within; epsilon past it flips the verdict.
func TestCompareToleranceMath(t *testing.T) {
	prev := mkReport(Metric{Name: "lat", Value: 1000, Better: LowerIsBetter})
	within := Compare(prev, mkReport(Metric{Name: "lat", Value: 1250, Better: LowerIsBetter}), 0.25)
	if got := deltaFor(t, within, "lat").Verdict; got != VerdictWithin {
		t.Fatalf("exactly-at-tolerance verdict = %q, want within", got)
	}
	past := Compare(prev, mkReport(Metric{Name: "lat", Value: 1251, Better: LowerIsBetter}), 0.25)
	if got := deltaFor(t, past, "lat").Verdict; got != VerdictRegressed {
		t.Fatalf("past-tolerance verdict = %q, want regressed", got)
	}
}

// TestComparePerMetricTolerance: a metric's own tolerance overrides the
// default, current report first, then the prior's.
func TestComparePerMetricTolerance(t *testing.T) {
	prev := mkReport(Metric{Name: "m", Value: 100, Better: LowerIsBetter, Tolerance: 0.5})
	// +40% regresses under the default 0.25 but the metric carries 0.5.
	c := Compare(prev, mkReport(Metric{Name: "m", Value: 140, Better: LowerIsBetter}), 0.25)
	d := deltaFor(t, c, "m")
	if d.Verdict != VerdictWithin || d.Tolerance != 0.5 {
		t.Fatalf("delta = %+v, want within at tol 0.5", d)
	}
	// The current report's tolerance wins over the prior's.
	c = Compare(prev, mkReport(Metric{Name: "m", Value: 140, Better: LowerIsBetter, Tolerance: 0.1}), 0.25)
	d = deltaFor(t, c, "m")
	if d.Verdict != VerdictRegressed || d.Tolerance != 0.1 {
		t.Fatalf("delta = %+v, want regressed at tol 0.1", d)
	}
}

func TestCompareZeroPrev(t *testing.T) {
	prev := mkReport(Metric{Name: "m", Value: 0, Better: HigherIsBetter})
	c := Compare(prev, mkReport(Metric{Name: "m", Value: 100, Better: HigherIsBetter}), 0.25)
	d := deltaFor(t, c, "m")
	// Change is undefined against a zero prior; the verdict must not be a
	// regression (and must not divide by zero).
	if d.Verdict == VerdictRegressed {
		t.Fatalf("zero-prev verdict = %q", d.Verdict)
	}
}

func TestCompareWorkloadMismatch(t *testing.T) {
	prev := mkReport(Metric{Name: "m", Value: 100, Better: HigherIsBetter})
	cur := mkReport(Metric{Name: "m", Value: 100, Better: HigherIsBetter})
	cur.Workload.Events = 999
	c := Compare(prev, cur, 0.25)
	if !c.WorkloadMismatch || c.Ok() {
		t.Fatalf("mismatched workloads must not gate ok: %+v", c)
	}
}

// TestCompareGateCatchesInjectedRegression is the acceptance-criteria
// scenario end to end: take a real trajectory report, inject a synthetic
// regression (halve throughput, triple a latency), and the comparison
// must gate with those exact metrics listed.
func TestCompareGateCatchesInjectedRegression(t *testing.T) {
	prev := mkReport(
		Metric{Name: "trajectory.ingest_events_per_sec", Value: 30000, Unit: "events/s", Better: HigherIsBetter},
		Metric{Name: "trajectory.cut_pause_p99_ns", Value: 1e6, Unit: "ns", Better: LowerIsBetter},
		Metric{Name: "trajectory.recovery_replay_events_per_sec", Value: 25000, Unit: "events/s", Better: HigherIsBetter},
	)
	cur := mkReport(
		Metric{Name: "trajectory.ingest_events_per_sec", Value: 15000, Unit: "events/s", Better: HigherIsBetter},
		Metric{Name: "trajectory.cut_pause_p99_ns", Value: 3e6, Unit: "ns", Better: LowerIsBetter},
		Metric{Name: "trajectory.recovery_replay_events_per_sec", Value: 24000, Unit: "events/s", Better: HigherIsBetter},
	)
	c := Compare(prev, cur, 0.4)
	if c.Ok() {
		t.Fatal("injected regression passed the gate")
	}
	regs := c.Regressions()
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want ingest + cut pause", regs)
	}
	names := map[string]bool{}
	for _, d := range regs {
		names[d.Name] = true
	}
	if !names["trajectory.ingest_events_per_sec"] || !names["trajectory.cut_pause_p99_ns"] {
		t.Fatalf("wrong regressions flagged: %v", names)
	}
	// And the rendering marks them for CI logs.
	out := c.Format()
	if !strings.Contains(out, "!! regressed") {
		t.Fatalf("Format lacks regression marker:\n%s", out)
	}
}
