package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzBenchReport fuzzes the artifact decoder: arbitrary bytes must never
// panic, and anything that decodes must re-encode and decode back to an
// equal report (the decoder defines the format; the encoder must stay
// inside it).
func FuzzBenchReport(f *testing.F) {
	var seed bytes.Buffer
	if err := sampleReport().Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"schema":1,"date":"2026-01-01","metrics":[]}`))
	f.Add([]byte(`{"schema":1,"metrics":[{"name":"m","value":1,"better":"higher","tolerance":0.5}]}`))
	f.Add([]byte(`{"schema":2}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := rep.Encode(&buf); err != nil {
			t.Fatalf("decoded report failed to encode: %v", err)
		}
		first := buf.String()
		again, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded report failed to decode: %v\n%s", err, first)
		}
		// Encode sorts metrics, so compare via the canonical encoding.
		var buf2 bytes.Buffer
		if err := again.Encode(&buf2); err != nil {
			t.Fatal(err)
		}
		if first != buf2.String() {
			t.Fatalf("canonical encoding unstable:\n%s\nvs\n%s",
				strings.TrimSpace(first), strings.TrimSpace(buf2.String()))
		}
	})
}
