package bloom

import "testing"

func BenchmarkAdd(b *testing.B) {
	f := New(1_000_000, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkContainsHit(b *testing.B) {
	f := New(100_000, 0.01)
	for i := uint64(0); i < 100_000; i++ {
		f.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i % 100_000))
	}
}

func BenchmarkContainsMiss(b *testing.B) {
	f := New(100_000, 0.01)
	for i := uint64(0); i < 100_000; i++ {
		f.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i) + 1<<40)
	}
}
