// Package bloom implements a standard Bloom filter. It exists to make the
// paper's rejected second baseline concrete: "keep track of each A's
// two-hop neighborhood; a rough calculation shows that this is impractical,
// even using approximate data structures such as Bloom filters" (§2).
// Experiment E4 materializes exactly that design at laptop scale and uses
// the analytical model in Sizing to extrapolate to Twitter scale.
package bloom

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Filter is a fixed-size Bloom filter with double hashing (Kirsch &
// Mitzenmacher): h_i(x) = h1(x) + i*h2(x). Not safe for concurrent writes.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    uint32 // number of hash functions
	n    uint64 // items added
}

// New creates a filter sized for expectedItems at the target false-positive
// rate fpRate. Panics on non-positive expectedItems or out-of-range fpRate,
// which indicate programmer error.
func New(expectedItems uint64, fpRate float64) *Filter {
	if expectedItems == 0 {
		expectedItems = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		panic("bloom: fpRate must be in (0,1)")
	}
	m, k := Sizing(expectedItems, fpRate)
	return &Filter{
		bits: make([]uint64, (m+63)/64),
		m:    m,
		k:    k,
	}
}

// Sizing returns the optimal bit count m and hash count k for n items at
// false-positive rate p: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
func Sizing(n uint64, p float64) (m uint64, k uint32) {
	ln2 := math.Ln2
	mf := -float64(n) * math.Log(p) / (ln2 * ln2)
	m = uint64(math.Ceil(mf))
	if m < 64 {
		m = 64
	}
	kf := math.Ceil(mf / float64(n) * ln2)
	if kf < 1 {
		kf = 1
	}
	k = uint32(kf)
	return m, k
}

func hash2(x uint64) (uint64, uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], x)
	h := fnv.New64a()
	h.Write(buf[:])
	h1 := h.Sum64()
	// Derive an independent second hash by re-hashing with a salt byte.
	h.Write([]byte{0x9e})
	h2 := h.Sum64()
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

// Add inserts x.
func (f *Filter) Add(x uint64) {
	h1, h2 := hash2(x)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		f.bits[bit>>6] |= 1 << (bit & 63)
	}
	f.n++
}

// Contains reports whether x may be in the set. False positives occur at
// roughly the configured rate; false negatives never.
func (f *Filter) Contains(x uint64) bool {
	h1, h2 := hash2(x)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		if f.bits[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of Add calls.
func (f *Filter) Count() uint64 { return f.n }

// Bits returns the filter's bit capacity m.
func (f *Filter) Bits() uint64 { return f.m }

// MemoryBytes returns the resident size of the bit array.
func (f *Filter) MemoryBytes() uint64 { return uint64(len(f.bits)) * 8 }

// EstimatedFPRate returns the expected false-positive probability given the
// current fill: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFPRate() float64 {
	if f.n == 0 {
		return 0
	}
	exp := -float64(f.k) * float64(f.n) / float64(f.m)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}
