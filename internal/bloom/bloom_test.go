package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1_000, 0.01)
	for i := uint64(0); i < 1_000; i++ {
		f.Add(i * 7)
	}
	for i := uint64(0); i < 1_000; i++ {
		if !f.Contains(i * 7) {
			t.Fatalf("false negative for %d", i*7)
		}
	}
	if f.Count() != 1_000 {
		t.Fatalf("Count = %d", f.Count())
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 10_000
	const target = 0.01
	f := New(n, target)
	r := rand.New(rand.NewSource(1))
	members := make(map[uint64]bool, n)
	for len(members) < n {
		v := r.Uint64() >> 1
		if !members[v] {
			members[v] = true
			f.Add(v)
		}
	}
	fp := 0
	const probes = 50_000
	for i := 0; i < probes; i++ {
		v := r.Uint64()>>1 | 1<<62 // disjoint-ish range; skip true members
		if members[v] {
			continue
		}
		if f.Contains(v) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > target*3 {
		t.Fatalf("observed FP rate %.4f far above target %.4f", rate, target)
	}
	est := f.EstimatedFPRate()
	if est <= 0 || est > target*3 {
		t.Fatalf("estimated FP rate %.4f implausible", est)
	}
}

func TestSizingFormula(t *testing.T) {
	m, k := Sizing(1_000, 0.01)
	// Standard result: ~9.59 bits/entry at 1%, k ~ 7.
	bitsPer := float64(m) / 1_000
	if bitsPer < 9 || bitsPer > 10.5 {
		t.Fatalf("bits/entry = %.2f, want ~9.6", bitsPer)
	}
	if k < 6 || k > 8 {
		t.Fatalf("k = %d, want ~7", k)
	}
	// Tighter FP costs more bits.
	m2, _ := Sizing(1_000, 0.001)
	if m2 <= m {
		t.Fatal("lower FP target should need more bits")
	}
	// Minimum size floor.
	if m3, _ := Sizing(1, 0.5); m3 < 64 {
		t.Fatalf("m = %d below 64-bit floor", m3)
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New with fpRate=%f should panic", bad)
				}
			}()
			New(100, bad)
		}()
	}
	// Zero items is coerced, not panicked.
	if f := New(0, 0.01); f == nil {
		t.Fatal("New(0, ...) should still construct")
	}
}

func TestMemoryBytes(t *testing.T) {
	f := New(1_000, 0.01)
	want := (f.Bits() + 63) / 64 * 8
	if f.MemoryBytes() != want {
		t.Fatalf("MemoryBytes = %d, want %d", f.MemoryBytes(), want)
	}
}

func TestEmptyFilter(t *testing.T) {
	f := New(100, 0.01)
	if f.Contains(42) {
		t.Fatal("empty filter claims membership")
	}
	if f.EstimatedFPRate() != 0 {
		t.Fatal("empty filter FP estimate should be 0")
	}
}

// Property: anything added is always found (no false negatives, ever).
func TestNoFalseNegativesQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		fl := New(uint64(len(vals))+1, 0.05)
		for _, v := range vals {
			fl.Add(v)
		}
		for _, v := range vals {
			if !fl.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
