// Package broker implements the coordination tier of the paper's
// "partitioned, replicated architecture with coordination handled by
// brokers that fan-out queries and gather results" (§2). A Broker routes
// user-keyed reads to the replica group that owns the user, load-balances
// across healthy replicas, and fans out non-keyed queries to every group.
//
// Replica groups are dynamic: the elastic placement subsystem grows a
// group on live scale-out (AddReplica), swaps a member's backing state on
// node replacement (ReplaceReplica), and permanently downs a member on
// decommission — member indices stay stable for the life of a partition,
// so health flags and the cluster's slot bookkeeping always agree on who
// is who.
package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
)

// Replica is one copy of a partition served behind the broker. The
// in-process implementation wraps *partition.Partition; a networked
// deployment would substitute an RPC client.
type Replica interface {
	// RecommendationsFor returns recent candidates for user a.
	RecommendationsFor(a graph.VertexID) []motif.Candidate
	// ID identifies the underlying partition.
	ID() int
}

// ErrNoReplica is returned when every replica of the owning group is
// marked down.
var ErrNoReplica = errors.New("broker: no healthy replica for partition")

// member is one replica slot of a group. The slot itself is stable;
// ReplaceReplica swaps rep under the group's write lock when a node is
// replaced.
type member struct {
	rep  Replica
	down atomic.Bool
}

// group is one partition's replica set with health flags. The members
// slice is guarded by mu (it grows on scale-out); the down flags are
// atomic so the health fast path never writes under the read lock.
type group struct {
	mu      sync.RWMutex
	members []*member
	next    atomic.Uint64 // round-robin cursor
}

// snapshot returns the current member list; the slice is never mutated in
// place (growth appends under mu), so holding it beyond the lock is safe.
func (g *group) snapshot() []*member {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.members
}

// Broker fronts all replica groups.
type Broker struct {
	part   partition.Partitioner
	groups []*group

	queries  atomic.Uint64
	failures atomic.Uint64
}

// New creates a broker for the given replica groups; groups[i] must hold
// the replicas of partition i. Every group needs at least one replica.
func New(part partition.Partitioner, groups [][]Replica) (*Broker, error) {
	if part == nil {
		return nil, fmt.Errorf("broker: partitioner is required")
	}
	if len(groups) != part.N() {
		return nil, fmt.Errorf("broker: have %d groups for %d partitions", len(groups), part.N())
	}
	b := &Broker{part: part}
	for i, rs := range groups {
		if len(rs) == 0 {
			return nil, fmt.Errorf("broker: partition %d has no replicas", i)
		}
		g := &group{}
		for _, r := range rs {
			g.members = append(g.members, &member{rep: r})
		}
		b.groups = append(b.groups, g)
	}
	return b, nil
}

// AddReplica appends a new member to partitionID's group — the read-path
// half of live scale-out. The member starts marked down; the cluster
// marks it up once its catch-up completes. Returns the new member's
// index.
func (b *Broker) AddReplica(partitionID int, rep Replica) (int, error) {
	if partitionID < 0 || partitionID >= len(b.groups) {
		return 0, fmt.Errorf("broker: partition %d out of range", partitionID)
	}
	if rep == nil {
		return 0, fmt.Errorf("broker: nil replica")
	}
	g := b.groups[partitionID]
	g.mu.Lock()
	defer g.mu.Unlock()
	m := &member{rep: rep}
	m.down.Store(true)
	// Append to a fresh slice so snapshots taken before the growth stay
	// immutable.
	members := make([]*member, len(g.members), len(g.members)+1)
	copy(members, g.members)
	g.members = append(members, m)
	return len(g.members) - 1, nil
}

// ReplaceReplica swaps the backing replica of an existing member — node
// replacement: same slot, new machine. Health is unchanged (the cluster
// downs the slot before replacing and ups it after catch-up).
func (b *Broker) ReplaceReplica(partitionID, idx int, rep Replica) error {
	if partitionID < 0 || partitionID >= len(b.groups) {
		return fmt.Errorf("broker: partition %d out of range", partitionID)
	}
	if rep == nil {
		return fmt.Errorf("broker: nil replica")
	}
	g := b.groups[partitionID]
	g.mu.Lock()
	defer g.mu.Unlock()
	if idx < 0 || idx >= len(g.members) {
		return fmt.Errorf("broker: replica %d out of range for partition %d", idx, partitionID)
	}
	// Swap inside a fresh member so readers holding an old snapshot keep a
	// consistent (rep, down) pair.
	m := &member{rep: rep}
	m.down.Store(g.members[idx].down.Load())
	members := make([]*member, len(g.members))
	copy(members, g.members)
	members[idx] = m
	g.members = members
	return nil
}

// RecommendationsFor routes the read to a healthy replica of the partition
// owning a, rotating round-robin for load spreading. Returns ErrNoReplica
// if the whole group is down.
func (b *Broker) RecommendationsFor(a graph.VertexID) ([]motif.Candidate, error) {
	g := b.groups[b.part.PartitionOf(a)]
	members := g.snapshot()
	n := len(members)
	start := int(g.next.Add(1)) % n
	for i := 0; i < n; i++ {
		m := members[(start+i)%n]
		if m.down.Load() {
			continue
		}
		b.queries.Add(1)
		return m.rep.RecommendationsFor(a), nil
	}
	b.failures.Add(1)
	return nil, ErrNoReplica
}

// FanOut invokes fn on one healthy replica of every partition group and
// returns the per-partition results, indexed by partition. Partitions with
// no healthy replica get a zero value and contribute to the returned error.
func FanOut[T any](b *Broker, fn func(r Replica) T) ([]T, error) {
	out := make([]T, len(b.groups))
	var wg sync.WaitGroup
	errs := make([]error, len(b.groups))
	for i, g := range b.groups {
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			members := g.snapshot()
			n := len(members)
			start := int(g.next.Add(1)) % n
			for j := 0; j < n; j++ {
				m := members[(start+j)%n]
				if m.down.Load() {
					continue
				}
				out[i] = fn(m.rep)
				return
			}
			errs[i] = fmt.Errorf("partition %d: %w", i, ErrNoReplica)
		}(i, g)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// MarkDown flags replica idx of the given partition as unhealthy; reads
// route around it until MarkUp.
func (b *Broker) MarkDown(partitionID, idx int) error {
	return b.setHealth(partitionID, idx, true)
}

// MarkUp restores a replica flagged by MarkDown.
func (b *Broker) MarkUp(partitionID, idx int) error {
	return b.setHealth(partitionID, idx, false)
}

func (b *Broker) setHealth(partitionID, idx int, down bool) error {
	if partitionID < 0 || partitionID >= len(b.groups) {
		return fmt.Errorf("broker: partition %d out of range", partitionID)
	}
	members := b.groups[partitionID].snapshot()
	if idx < 0 || idx >= len(members) {
		return fmt.Errorf("broker: replica %d out of range for partition %d", idx, partitionID)
	}
	members[idx].down.Store(down)
	return nil
}

// ReplicaHealthy reports whether the given replica is currently marked
// healthy. Out-of-range indices report false.
func (b *Broker) ReplicaHealthy(partitionID, idx int) bool {
	if partitionID < 0 || partitionID >= len(b.groups) {
		return false
	}
	members := b.groups[partitionID].snapshot()
	if idx < 0 || idx >= len(members) {
		return false
	}
	return !members[idx].down.Load()
}

// HealthyReplicas returns the number of healthy replicas for partitionID.
func (b *Broker) HealthyReplicas(partitionID int) int {
	if partitionID < 0 || partitionID >= len(b.groups) {
		return 0
	}
	n := 0
	for _, m := range b.groups[partitionID].snapshot() {
		if !m.down.Load() {
			n++
		}
	}
	return n
}

// Stats reports broker activity totals.
func (b *Broker) Stats() (queries, failures uint64) {
	return b.queries.Load(), b.failures.Load()
}
