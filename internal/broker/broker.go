// Package broker implements the coordination tier of the paper's
// "partitioned, replicated architecture with coordination handled by
// brokers that fan-out queries and gather results" (§2). A Broker routes
// user-keyed reads to the replica group that owns the user, load-balances
// across healthy replicas, and fans out non-keyed queries to every group.
package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
)

// Replica is one copy of a partition served behind the broker. The
// in-process implementation wraps *partition.Partition; a networked
// deployment would substitute an RPC client.
type Replica interface {
	// RecommendationsFor returns recent candidates for user a.
	RecommendationsFor(a graph.VertexID) []motif.Candidate
	// ID identifies the underlying partition.
	ID() int
}

// ErrNoReplica is returned when every replica of the owning group is
// marked down.
var ErrNoReplica = errors.New("broker: no healthy replica for partition")

// group is one partition's replica set with health flags.
type group struct {
	replicas []Replica
	down     []atomic.Bool
	next     atomic.Uint64 // round-robin cursor
}

// Broker fronts all replica groups.
type Broker struct {
	part   partition.Partitioner
	groups []*group

	queries  atomic.Uint64
	failures atomic.Uint64
}

// New creates a broker for the given replica groups; groups[i] must hold
// the replicas of partition i. Every group needs at least one replica.
func New(part partition.Partitioner, groups [][]Replica) (*Broker, error) {
	if part == nil {
		return nil, fmt.Errorf("broker: partitioner is required")
	}
	if len(groups) != part.N() {
		return nil, fmt.Errorf("broker: have %d groups for %d partitions", len(groups), part.N())
	}
	b := &Broker{part: part}
	for i, rs := range groups {
		if len(rs) == 0 {
			return nil, fmt.Errorf("broker: partition %d has no replicas", i)
		}
		b.groups = append(b.groups, &group{
			replicas: rs,
			down:     make([]atomic.Bool, len(rs)),
		})
	}
	return b, nil
}

// RecommendationsFor routes the read to a healthy replica of the partition
// owning a, rotating round-robin for load spreading. Returns ErrNoReplica
// if the whole group is down.
func (b *Broker) RecommendationsFor(a graph.VertexID) ([]motif.Candidate, error) {
	g := b.groups[b.part.PartitionOf(a)]
	n := len(g.replicas)
	start := int(g.next.Add(1)) % n
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if g.down[idx].Load() {
			continue
		}
		b.queries.Add(1)
		return g.replicas[idx].RecommendationsFor(a), nil
	}
	b.failures.Add(1)
	return nil, ErrNoReplica
}

// FanOut invokes fn on one healthy replica of every partition group and
// returns the per-partition results, indexed by partition. Partitions with
// no healthy replica get a zero value and contribute to the returned error.
func FanOut[T any](b *Broker, fn func(r Replica) T) ([]T, error) {
	out := make([]T, len(b.groups))
	var wg sync.WaitGroup
	errs := make([]error, len(b.groups))
	for i, g := range b.groups {
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			n := len(g.replicas)
			start := int(g.next.Add(1)) % n
			for j := 0; j < n; j++ {
				idx := (start + j) % n
				if g.down[idx].Load() {
					continue
				}
				out[i] = fn(g.replicas[idx])
				return
			}
			errs[i] = fmt.Errorf("partition %d: %w", i, ErrNoReplica)
		}(i, g)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// MarkDown flags replica idx of the given partition as unhealthy; reads
// route around it until MarkUp.
func (b *Broker) MarkDown(partitionID, idx int) error {
	return b.setHealth(partitionID, idx, true)
}

// MarkUp restores a replica flagged by MarkDown.
func (b *Broker) MarkUp(partitionID, idx int) error {
	return b.setHealth(partitionID, idx, false)
}

func (b *Broker) setHealth(partitionID, idx int, down bool) error {
	if partitionID < 0 || partitionID >= len(b.groups) {
		return fmt.Errorf("broker: partition %d out of range", partitionID)
	}
	g := b.groups[partitionID]
	if idx < 0 || idx >= len(g.replicas) {
		return fmt.Errorf("broker: replica %d out of range for partition %d", idx, partitionID)
	}
	g.down[idx].Store(down)
	return nil
}

// ReplicaHealthy reports whether the given replica is currently marked
// healthy. Out-of-range indices report false.
func (b *Broker) ReplicaHealthy(partitionID, idx int) bool {
	if partitionID < 0 || partitionID >= len(b.groups) {
		return false
	}
	g := b.groups[partitionID]
	if idx < 0 || idx >= len(g.replicas) {
		return false
	}
	return !g.down[idx].Load()
}

// HealthyReplicas returns the number of healthy replicas for partitionID.
func (b *Broker) HealthyReplicas(partitionID int) int {
	if partitionID < 0 || partitionID >= len(b.groups) {
		return 0
	}
	g := b.groups[partitionID]
	n := 0
	for i := range g.down {
		if !g.down[i].Load() {
			n++
		}
	}
	return n
}

// Stats reports broker activity totals.
func (b *Broker) Stats() (queries, failures uint64) {
	return b.queries.Load(), b.failures.Load()
}
