package broker

import (
	"errors"
	"sync"
	"testing"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
)

// fakeReplica records which replica served each read.
type fakeReplica struct {
	id    int
	tag   int
	mu    sync.Mutex
	reads int
}

func (f *fakeReplica) ID() int { return f.id }

func (f *fakeReplica) RecommendationsFor(a graph.VertexID) []motif.Candidate {
	f.mu.Lock()
	f.reads++
	f.mu.Unlock()
	return []motif.Candidate{{User: a, Item: graph.VertexID(f.tag)}}
}

func (f *fakeReplica) readCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads
}

func newTestBroker(t *testing.T, partitions, replicas int) (*Broker, [][]*fakeReplica) {
	t.Helper()
	part := partition.NewHashPartitioner(partitions)
	fakes := make([][]*fakeReplica, partitions)
	groups := make([][]Replica, partitions)
	for p := 0; p < partitions; p++ {
		for r := 0; r < replicas; r++ {
			f := &fakeReplica{id: p, tag: p*100 + r}
			fakes[p] = append(fakes[p], f)
			groups[p] = append(groups[p], f)
		}
	}
	b, err := New(part, groups)
	if err != nil {
		t.Fatal(err)
	}
	return b, fakes
}

func TestNewValidation(t *testing.T) {
	part := partition.NewHashPartitioner(2)
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil partitioner accepted")
	}
	if _, err := New(part, make([][]Replica, 1)); err == nil {
		t.Fatal("group/partition count mismatch accepted")
	}
	if _, err := New(part, make([][]Replica, 2)); err == nil {
		t.Fatal("empty replica group accepted")
	}
}

func TestRoutesToOwningPartition(t *testing.T) {
	b, _ := newTestBroker(t, 4, 1)
	part := partition.NewHashPartitioner(4)
	for a := graph.VertexID(0); a < 100; a++ {
		got, err := b.RecommendationsFor(a)
		if err != nil {
			t.Fatal(err)
		}
		wantPartition := part.PartitionOf(a)
		if int(got[0].Item)/100 != wantPartition {
			t.Fatalf("user %d served by partition %d, want %d",
				a, got[0].Item/100, wantPartition)
		}
	}
	q, f := b.Stats()
	if q != 100 || f != 0 {
		t.Fatalf("stats = %d queries, %d failures", q, f)
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	b, fakes := newTestBroker(t, 1, 3)
	for i := 0; i < 300; i++ {
		if _, err := b.RecommendationsFor(1); err != nil {
			t.Fatal(err)
		}
	}
	for r, f := range fakes[0] {
		if c := f.readCount(); c < 50 || c > 150 {
			t.Fatalf("replica %d served %d of 300 reads; poor balance", r, c)
		}
	}
}

func TestFailoverRoutesAroundDownReplica(t *testing.T) {
	b, fakes := newTestBroker(t, 1, 2)
	if err := b.MarkDown(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := b.RecommendationsFor(1); err != nil {
			t.Fatal(err)
		}
	}
	if fakes[0][0].readCount() != 0 {
		t.Fatal("down replica served reads")
	}
	if fakes[0][1].readCount() != 10 {
		t.Fatalf("healthy replica served %d of 10", fakes[0][1].readCount())
	}
	// Recovery restores routing.
	if err := b.MarkUp(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b.RecommendationsFor(1)
	}
	if fakes[0][0].readCount() == 0 {
		t.Fatal("recovered replica never served")
	}
}

func TestAllReplicasDown(t *testing.T) {
	b, _ := newTestBroker(t, 1, 2)
	b.MarkDown(0, 0)
	b.MarkDown(0, 1)
	if _, err := b.RecommendationsFor(1); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
	_, failures := b.Stats()
	if failures != 1 {
		t.Fatalf("failures = %d", failures)
	}
}

func TestHealthAccessors(t *testing.T) {
	b, _ := newTestBroker(t, 2, 2)
	if n := b.HealthyReplicas(0); n != 2 {
		t.Fatalf("HealthyReplicas = %d", n)
	}
	if !b.ReplicaHealthy(0, 1) {
		t.Fatal("fresh replica should be healthy")
	}
	b.MarkDown(0, 1)
	if b.ReplicaHealthy(0, 1) {
		t.Fatal("down replica reported healthy")
	}
	if n := b.HealthyReplicas(0); n != 1 {
		t.Fatalf("HealthyReplicas after MarkDown = %d", n)
	}
	// Out-of-range queries are safe.
	if b.HealthyReplicas(99) != 0 || b.ReplicaHealthy(99, 0) || b.ReplicaHealthy(0, 99) {
		t.Fatal("out-of-range health queries should be false/0")
	}
	if err := b.MarkDown(99, 0); err == nil {
		t.Fatal("out-of-range MarkDown accepted")
	}
	if err := b.MarkDown(0, 99); err == nil {
		t.Fatal("out-of-range replica MarkDown accepted")
	}
}

func TestFanOut(t *testing.T) {
	b, _ := newTestBroker(t, 4, 2)
	got, err := FanOut(b, func(r Replica) int { return r.ID() })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("FanOut returned %d results", len(got))
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("partition %d answered with ID %d", i, id)
		}
	}
}

func TestFanOutWithDownGroup(t *testing.T) {
	b, _ := newTestBroker(t, 2, 1)
	b.MarkDown(1, 0)
	got, err := FanOut(b, func(r Replica) int { return 1 })
	if err == nil {
		t.Fatal("expected partial failure error")
	}
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v", err)
	}
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("results = %v, want healthy partition served, down zeroed", got)
	}
}

func TestConcurrentReads(t *testing.T) {
	b, _ := newTestBroker(t, 4, 3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if _, err := b.RecommendationsFor(graph.VertexID(w*500 + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	q, _ := b.Stats()
	if q != 4_000 {
		t.Fatalf("queries = %d, want 4000", q)
	}
}
