package cluster

// Cluster-level surface of the fingerprint audit (internal/audit): the
// cross-replica verification method, the on-demand live fingerprint, and
// the recorded-fingerprint lookup the recovery paths gate on. All of it
// reads the per-replica audit logs the checkpoint writers append —
// concurrent reads are safe because records land in single appends and a
// torn tail decodes to nothing.

import (
	"fmt"

	"motifstream/internal/audit"
)

// ErrAuditDisabled is returned by the audit methods when the cluster was
// built without Config.Audit.
var ErrAuditDisabled = fmt.Errorf("cluster: audit requires Config.Audit (and Config.CheckpointDir)")

// auditSources snapshots partition pid's non-removed replica audit-log
// paths, keyed by a stable replica label.
func (c *Cluster) auditSources(pid int) map[string]string {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	out := make(map[string]string)
	for _, s := range c.slots[pid] {
		if s.state.Load() == replicaRemoved || s.dir == "" {
			continue
		}
		out[fmt.Sprintf("r%02d-g%d", s.idx, s.gen)] = auditLogPath(s.dir)
	}
	return out
}

// VerifyFingerprints cross-checks every recorded state fingerprint across
// partition pid's replicas: at every offset two or more sources recorded
// (live cuts, compacted-base re-derivations, any incarnation), the sums
// must agree — detection is deterministic, so replicas that applied the
// same firehose prefix must hold bit-identical recoverable state. The
// returned report lists every disagreement; an empty Mismatches with a
// nonzero Compared is the bit-equality certificate for the offsets the
// group actually audited. Reading is safe while the cluster runs.
func (c *Cluster) VerifyFingerprints(pid int) (audit.Report, error) {
	if !c.audit {
		return audit.Report{}, ErrAuditDisabled
	}
	if pid < 0 || pid >= len(c.slots) {
		return audit.Report{}, fmt.Errorf("cluster: partition %d out of range", pid)
	}
	bySource := make(map[string][]audit.Record)
	for label, path := range c.auditSources(pid) {
		recs, err := audit.Read(path, c.runID)
		if err != nil {
			return audit.Report{}, fmt.Errorf("cluster: partition %d: %w", pid, err)
		}
		if recs != nil {
			bySource[label] = recs
		}
	}
	return audit.Verify(bySource), nil
}

// ReplicaFingerprint computes the replica's state fingerprint on demand.
// Meaningful for cross-replica comparison only when the stream is
// quiescent (replicas at different stream positions legitimately differ);
// the recorded per-offset fingerprints are the running-cluster instrument.
func (c *Cluster) ReplicaFingerprint(pid, r int) (uint32, error) {
	if !c.audit {
		return 0, ErrAuditDisabled
	}
	p, err := c.Replica(pid, r)
	if err != nil {
		return 0, err
	}
	return p.Fingerprint()
}

// recordedFingerprint looks up the fingerprint any of partition pid's
// replicas recorded at the given cut offset. found is false when no audit
// log mentions the offset. When several records exist (peers, compaction
// re-derivations) the newest read wins — if they disagree with each other
// that surfaces through VerifyFingerprints; the caller's comparison
// catches disagreement with the composed state either way.
func (c *Cluster) recordedFingerprint(pid int, offset uint64) (uint32, bool) {
	var sum uint32
	found := false
	for _, path := range c.auditSources(pid) {
		recs, err := audit.Read(path, c.runID)
		if err != nil {
			c.ckptErrors.Inc()
			continue
		}
		for _, rec := range recs {
			if rec.Offset == offset {
				sum, found = rec.Sum, true
			}
		}
	}
	return sum, found
}

// verifyComposedState cross-checks a restore composition against the
// audit record: the state a chain (or pool base) composes to at offset
// must fingerprint-equal what a replica recorded when it held that state
// live. Used by the chain-restore paths, where a mismatch is counted and
// surfaced through stats rather than failing the restore — the delivery
// tier's offset filter keeps the group exactly-once regardless, and a
// bricked restore helps nobody; the elastic go-live gate is the strict
// variant. No-op when auditing is off or nothing recorded the offset.
func (c *Cluster) verifyComposedState(pid int, st interface{ Fingerprint() (uint32, error) }, offset uint64) {
	if !c.audit || offset == 0 {
		return
	}
	want, found := c.recordedFingerprint(pid, offset)
	if !found {
		return
	}
	got, err := st.Fingerprint()
	if err != nil {
		c.ckptErrors.Inc()
		return
	}
	if got != want {
		c.auditMismatches.Inc()
	}
}
