package cluster

import (
	"math/rand"
	"testing"
	"time"

	"motifstream/internal/delivery"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

// TestChaosFailuresDuringStream injects replica failures and recoveries
// while the stream is flowing. The invariants: the cluster never
// deadlocks, candidates for groups with a surviving replica keep
// delivering, and the run drains cleanly.
func TestChaosFailuresDuringStream(t *testing.T) {
	const partitions, replicas = 3, 2
	// Ring follow graph: every user follows the next two, so motifs can
	// land in any partition.
	var static []graph.Edge
	const users = 60
	for a := graph.VertexID(0); a < users; a++ {
		static = append(static,
			graph.Edge{Src: a, Dst: (a + 1) % users},
			graph.Edge{Src: a, Dst: (a + 2) % users},
		)
	}
	delivered := 0
	cfg := Config{
		Partitions:  partitions,
		Replicas:    replicas,
		StaticEdges: static,
		Dynamic:     dynstore.Options{Retention: time.Hour},
		NewPrograms: func() []motif.Program {
			return []motif.Program{motif.NewDiamond(motif.DiamondConfig{
				K: 2, Window: time.Hour,
			})}
		},
		Delivery: delivery.Options{
			SleepStartHour: 1, SleepEndHour: 1,
			MaxPerUserPerDay: 1 << 30,
			DedupTTL:         time.Millisecond,
			TimezoneOf:       func(graph.VertexID) int { return 0 },
		},
		OnNotify: func(delivery.Notification) { delivered++ },
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()

	r := rand.New(rand.NewSource(1))
	t0 := int64(1_000_000)
	downs := map[[2]int]bool{}
	for i := 0; i < 2_000; i++ {
		// Complete a motif: two consecutive ring members follow a target.
		b1 := graph.VertexID(r.Intn(users))
		b2 := (b1 + users - 1) % users // the user before b1 follows both... approximately
		target := graph.VertexID(1_000 + i)
		ts := t0 + int64(i)*10
		if err := c.Publish(graph.Edge{Src: b1, Dst: target, Type: graph.Follow, TS: ts}); err != nil {
			t.Fatal(err)
		}
		if err := c.Publish(graph.Edge{Src: b2, Dst: target, Type: graph.Follow, TS: ts + 1}); err != nil {
			t.Fatal(err)
		}
		// Every so often, flip a random replica's fate, keeping at least
		// one replica per group alive.
		if i%100 == 50 {
			pid := r.Intn(partitions)
			rep := r.Intn(replicas)
			key := [2]int{pid, rep}
			if downs[key] {
				if err := c.RecoverReplica(pid, rep); err != nil {
					t.Fatal(err)
				}
				delete(downs, key)
			} else if !downs[[2]int{pid, 1 - rep}] {
				if err := c.FailReplica(pid, rep); err != nil {
					t.Fatal(err)
				}
				downs[key] = true
			}
		}
	}
	c.Stop()

	if delivered == 0 {
		t.Fatal("chaos run delivered nothing")
	}
	st := c.Stats()
	if st.Events != 4_000 {
		t.Fatalf("Events = %d, want 4000", st.Events)
	}
	// Reads still work for users in groups with a healthy replica.
	served := 0
	for a := graph.VertexID(0); a < users; a++ {
		if _, err := c.RecommendationsFor(a); err == nil {
			served++
		}
	}
	if served == 0 {
		t.Fatal("no reads served after chaos")
	}
	t.Logf("chaos: %d delivered, %d/%d users readable, %d replicas down at end",
		delivered, served, users, len(downs))
}

// TestChaosFlapDuringCatchUp drives the nastiest recovery interleaving:
// a replica is killed and restored mid-stream, and while it is replaying
// the firehose to catch up, its surviving peer — the group's only fresh
// copy — is health-flapped repeatedly. The delivered notification set
// must exactly match a no-fault oracle run: nothing lost, nothing
// duplicated.
func TestChaosFlapDuringCatchUp(t *testing.T) {
	static := ringStatic(50)
	stream := motifWorkload(99, 50, 700)

	run := func(chaos bool) map[noteKey]int {
		cfg := recoveryConfig(t, static)
		cfg.CheckpointInterval = 10 * time.Second // stream time
		notes := collectNotes(&cfg)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		r := rand.New(rand.NewSource(4))
		killAt := len(stream) / 4
		restoreAt := len(stream) / 2
		for i, e := range stream {
			if chaos {
				if i == killAt {
					if err := c.KillReplica(0, 1); err != nil {
						t.Fatal(err)
					}
				}
				if i == restoreAt {
					if err := c.RestoreReplica(0, 1); err != nil {
						t.Fatal(err)
					}
				}
				// While the restored replica races to catch up, flap its
				// peer's health flag — reads degrade, delivery must not.
				if i > restoreAt && i%20 == 0 {
					if r.Intn(2) == 0 {
						if err := c.FailReplica(0, 0); err != nil {
							t.Fatal(err)
						}
					} else {
						if err := c.RecoverReplica(0, 0); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			if err := c.Publish(e); err != nil {
				t.Fatal(err)
			}
		}
		c.Stop()
		if chaos {
			if state, _ := c.ReplicaState(0, 1); state != "live" {
				t.Fatalf("restored replica state = %q after drain", state)
			}
		}
		return notes()
	}

	want := run(false)
	got := run(true)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle delivered nothing")
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("notification %v: chaos run delivered %d, oracle %d (lost or duplicated)",
				k, got[k], n)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("chaos run delivered %v, oracle did not", k)
		}
	}
	t.Logf("flap chaos: %d distinct notifications, sets identical", len(want))
}
