// Package cluster wires the complete system of the paper's §2 into one
// in-process deployment: an edge firehose topic that every partition
// replica consumes in full, hash-partitioned detection servers with
// replication, a broker tier for fan-out reads, a candidate queue, and the
// delivery pipeline. The topology is "a fairly standard partitioned,
// replicated architecture with coordination handled by brokers that
// fan-out queries and gather results".
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"motifstream/internal/broker"
	"motifstream/internal/delivery"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
	"motifstream/internal/queue"
)

// Config assembles a Cluster.
type Config struct {
	// Partitions is the number of partitions (paper: 20). Required >= 1.
	Partitions int
	// Replicas is the number of replicas per partition; 0 selects 1.
	Replicas int
	// StaticEdges are the global A→B follow edges loaded into every
	// partition's S (each keeps only its own A's).
	StaticEdges []graph.Edge
	// MaxInfluencers caps B's per A in S; 0 = unlimited.
	MaxInfluencers int
	// Dynamic configures each replica's D store.
	Dynamic dynstore.Options
	// NewPrograms constructs the motif programs for one replica. Programs
	// hold no mutable state in this codebase, but giving each replica its
	// own instances mirrors a real deployment and keeps the option open.
	// Required.
	NewPrograms func() []motif.Program
	// IngestDelay models the firehose→partition queue hop; nil = NoDelay.
	IngestDelay queue.DelayModel
	// DeliveryDelay models the partition→push-gateway hop; nil = NoDelay.
	DeliveryDelay queue.DelayModel
	// Delivery configures the push pipeline.
	Delivery delivery.Options
	// Buffer sizes the queue channels; 0 selects 4096.
	Buffer int
	// Seed seeds the delay samplers.
	Seed int64
	// Metrics receives cluster instrumentation; nil creates a private one.
	Metrics *metrics.Registry
	// OnNotify, if set, receives every delivered notification.
	OnNotify func(delivery.Notification)
}

// Cluster is a running deployment.
type Cluster struct {
	cfg    Config
	part   partition.Partitioner
	groups [][]*partition.Partition
	broker *broker.Broker

	firehose   *queue.Topic[graph.Edge]
	candidates *queue.Topic[candidateMsg]
	pipeline   *delivery.Pipeline

	reg        *metrics.Registry
	e2eLatency *metrics.Histogram
	ingested   *metrics.Counter
	delivered  *metrics.Counter

	// emitter[g] is the replica index of group g currently allowed to
	// forward candidates to delivery; replicas other than the emitter
	// detect identically but stay silent, so a failover can promote one
	// without gaps or duplicates.
	emitter []atomic.Int32

	wg        sync.WaitGroup
	deliverWG sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once
}

type candidateMsg struct {
	c motif.Candidate
}

// New validates cfg and builds all partitions and replicas. The cluster is
// idle until Start.
func New(cfg Config) (*Cluster, error) {
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("cluster: need at least one partition")
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.NewPrograms == nil {
		return nil, fmt.Errorf("cluster: NewPrograms is required")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 4096
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	part := partition.NewHashPartitioner(cfg.Partitions)
	c := &Cluster{
		cfg:  cfg,
		part: part,
		reg:  reg,
		firehose: queue.NewTopic[graph.Edge](queue.Options{
			Name:   "firehose",
			Delay:  cfg.IngestDelay,
			Buffer: cfg.Buffer,
			Seed:   cfg.Seed,
		}),
		candidates: queue.NewTopic[candidateMsg](queue.Options{
			Name:   "candidates",
			Delay:  cfg.DeliveryDelay,
			Buffer: cfg.Buffer,
			Seed:   cfg.Seed + 1,
		}),
		pipeline:   delivery.NewPipeline(cfg.Delivery),
		e2eLatency: reg.Histogram("cluster.e2e_latency"),
		ingested:   reg.Counter("cluster.events"),
		delivered:  reg.Counter("cluster.delivered"),
		emitter:    make([]atomic.Int32, cfg.Partitions),
	}

	groups := make([][]*partition.Partition, cfg.Partitions)
	replicaGroups := make([][]broker.Replica, cfg.Partitions)
	for pid := 0; pid < cfg.Partitions; pid++ {
		for r := 0; r < cfg.Replicas; r++ {
			p, err := partition.New(partition.Config{
				ID:             pid,
				StaticEdges:    cfg.StaticEdges,
				Partitioner:    part,
				MaxInfluencers: cfg.MaxInfluencers,
				Dynamic:        cfg.Dynamic,
				Programs:       cfg.NewPrograms(),
				Metrics:        reg,
			})
			if err != nil {
				return nil, fmt.Errorf("cluster: partition %d replica %d: %w", pid, r, err)
			}
			groups[pid] = append(groups[pid], p)
			replicaGroups[pid] = append(replicaGroups[pid], p)
		}
	}
	c.groups = groups
	b, err := broker.New(part, replicaGroups)
	if err != nil {
		return nil, err
	}
	c.broker = b
	return c, nil
}

// Start launches one consumer goroutine per replica plus the delivery
// consumer. It may be called once; later calls are no-ops.
func (c *Cluster) Start() {
	c.startOnce.Do(func() {
		for pid, group := range c.groups {
			for r, p := range group {
				sub := c.firehose.Subscribe()
				c.wg.Add(1)
				go c.runReplica(pid, r, p, sub)
			}
		}
		deliverSub := c.candidates.Subscribe()
		c.deliverWG.Add(1)
		go c.runDelivery(deliverSub)
	})
}

// runReplica consumes the full firehose, applies each edge, and — if this
// replica is its group's current emitter — forwards candidates toward
// delivery with the accumulated virtual queue delay.
func (c *Cluster) runReplica(pid, r int, p *partition.Partition, sub <-chan queue.Envelope[graph.Edge]) {
	defer c.wg.Done()
	for env := range sub {
		cands := p.Apply(env.Msg)
		if r == 0 {
			// Count each event once per cluster, not once per replica.
			if pid == 0 {
				c.ingested.Inc()
			}
		}
		if len(cands) == 0 || int(c.emitter[pid].Load()) != r {
			continue
		}
		for _, cand := range cands {
			// Publishing to a closed candidates topic only happens during
			// shutdown races; drop silently then.
			if err := c.candidates.Publish(candidateMsg{c: cand}, env.VirtualDelay); err != nil {
				return
			}
		}
	}
}

// runDelivery consumes candidates and runs the push pipeline.
func (c *Cluster) runDelivery(sub <-chan queue.Envelope[candidateMsg]) {
	defer c.deliverWG.Done()
	for env := range sub {
		decision, note := c.pipeline.Offer(env.Msg.c, env.VirtualDelay)
		if decision != delivery.Delivered {
			continue
		}
		c.delivered.Inc()
		c.e2eLatency.Observe(note.Latency)
		if c.cfg.OnNotify != nil {
			c.cfg.OnNotify(*note)
		}
	}
}

// Publish feeds one edge into the firehose. It blocks when consumers lag
// (backpressure) and fails after Stop.
func (c *Cluster) Publish(e graph.Edge) error {
	return c.firehose.Publish(e, 0)
}

// Stop closes the firehose, waits for partitions to drain, then closes the
// candidate queue and waits for delivery. Safe to call multiple times.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		c.firehose.Close()
		c.wg.Wait()
		c.candidates.Close()
		c.deliverWG.Wait()
	})
}

// Broker returns the read-path broker.
func (c *Cluster) Broker() *broker.Broker { return c.broker }

// Pipeline returns the delivery pipeline (for funnel stats).
func (c *Cluster) Pipeline() *delivery.Pipeline { return c.pipeline }

// Metrics returns the cluster's registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// Partitioner returns the cluster's A-space partitioner.
func (c *Cluster) Partitioner() partition.Partitioner { return c.part }

// Replica returns the given replica, for tests and failure injection.
func (c *Cluster) Replica(pid, r int) (*partition.Partition, error) {
	if pid < 0 || pid >= len(c.groups) {
		return nil, fmt.Errorf("cluster: partition %d out of range", pid)
	}
	if r < 0 || r >= len(c.groups[pid]) {
		return nil, fmt.Errorf("cluster: replica %d out of range for partition %d", r, pid)
	}
	return c.groups[pid][r], nil
}

// FailReplica marks a replica down for reads and, if it was its group's
// candidate emitter, promotes the next healthy replica, preserving
// delivery continuity — experiment E9's failover scenario.
func (c *Cluster) FailReplica(pid, r int) error {
	if err := c.broker.MarkDown(pid, r); err != nil {
		return err
	}
	if int(c.emitter[pid].Load()) == r {
		n := len(c.groups[pid])
		for i := 1; i < n; i++ {
			next := (r + i) % n
			if c.broker.ReplicaHealthy(pid, next) {
				c.emitter[pid].Store(int32(next))
				break
			}
		}
	}
	return nil
}

// RecoverReplica marks a replica healthy again. The emitter is not moved
// back automatically; the promoted replica keeps the role.
func (c *Cluster) RecoverReplica(pid, r int) error {
	return c.broker.MarkUp(pid, r)
}

// Stats summarizes a running cluster.
type Stats struct {
	Events     uint64
	Delivered  uint64
	E2ELatency metrics.Snapshot
	Funnel     delivery.FunnelStats
}

// Stats returns current cluster totals.
func (c *Cluster) Stats() Stats {
	return Stats{
		Events:     c.ingested.Value(),
		Delivered:  c.delivered.Value(),
		E2ELatency: c.e2eLatency.Snapshot(),
		Funnel:     c.pipeline.Stats(),
	}
}

// RecommendationsFor serves a user read through the broker.
func (c *Cluster) RecommendationsFor(a graph.VertexID) ([]motif.Candidate, error) {
	return c.broker.RecommendationsFor(a)
}

// TopItems fans the "most recommended items" query out to one healthy
// replica of every partition and gathers the merged global top-n — the
// paper's broker fan-out/gather read path.
func (c *Cluster) TopItems(n int) ([]partition.ItemCount, error) {
	lists, err := broker.FanOut(c.broker, func(r broker.Replica) []partition.ItemCount {
		p, ok := r.(*partition.Partition)
		if !ok {
			return nil
		}
		return p.TopItems(n)
	})
	if err != nil {
		return nil, err
	}
	return partition.MergeItemCounts(lists, n), nil
}

// Run ingests every edge from the slice, then stops the cluster and
// returns final stats — the one-call path used by examples and benches.
func Run(cfg Config, edges []graph.Edge) (Stats, error) {
	c, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	c.Start()
	for _, e := range edges {
		if err := c.Publish(e); err != nil {
			return Stats{}, err
		}
	}
	c.Stop()
	return c.Stats(), nil
}

// Elapsed measures the wall-clock cost of fn; a convenience for throughput
// reporting in cmd/benchreport.
func Elapsed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
