// Package cluster wires the complete system of the paper's §2 into one
// in-process deployment: an edge firehose topic that every partition
// replica consumes in full, hash-partitioned detection servers with
// replication, a broker tier for fan-out reads, a candidate queue, and the
// delivery pipeline. The topology is "a fairly standard partitioned,
// replicated architecture with coordination handled by brokers that
// fan-out queries and gather results".
//
// # Failure and recovery
//
// Two failure models are provided. FailReplica/RecoverReplica model
// transient unreachability: the replica keeps its state and keeps
// consuming, but reads route around it and candidate emission fails over —
// experiment E9's scenario. KillReplica models a real crash: the replica
// stops consuming the firehose and its entire recoverable state (the D
// store, sweep clock, candidate log, item counters) is dropped.
//
// A killed replica rejoins through RestoreReplica, which runs the
// catch-up state machine restoring → replaying → live: it composes the
// newest durable checkpoint chain (a compacted base plus incremental
// delta segments, written per replica when Config.CheckpointDir is set),
// then replays the retained firehose log from the chain's offset via
// SubscribeFrom until it reaches the offset that was the head when
// recovery began. Until then the broker keeps the replica marked down, so
// a stale replica never serves reads.
//
// With Config.LogDir the firehose log itself is durable (a segmented
// on-disk WAL), and the failure model extends from replicas to the whole
// process: Shutdown drains, cuts a final checkpoint per replica, and
// fsyncs the log; Reopen constructs a brand-new Cluster over the same
// directories, restoring every replica from its chain — gated by the
// log's persistent identity and the segments' checksums rather than a
// per-process run id — and replaying the durable log from each floor
// offset.
//
// # Incremental checkpoint pipeline
//
// Checkpointing is split into a cheap synchronous cut and asynchronous
// persistence. On the apply loop, a cut only captures the entries dirtied
// since the previous cut (partition.CaptureDelta — cost proportional to
// recent write activity, not store size). Encoding, fsync, and manifest
// publication run on a per-replica writer goroutine fed through a small
// bounded queue, so a slow disk back-pressures the replica instead of
// growing unbounded memory. The writer folds long delta chains back into
// a fresh base (compaction), which bounds restore composition time and
// advances the replica's restore floor. The cluster truncates the
// retained firehose log below the minimum floor across replicas — log
// compaction — so retained-log memory is bounded by checkpoint cadence
// rather than stream length. The delivery consumer's per-group high-water
// offsets are persisted alongside the checkpoints, closing the
// promoted-replica gap (a sole-coverage restore clamps its chain back to
// the group's delivered offset). docs/DURABILITY.md states the full
// contract and its safety arguments.
//
// # Elastic placement
//
// Replica membership is dynamic (see elastic.go and internal/placement):
// each replica is a *placement* on a virtual node, with a generation that
// advances on node replacement. ReprovisionReplica discards a dead (or
// planned-out live) replica's slot entirely — new directory, fresh S —
// and rebuilds its state from the partition's replicated base pool plus
// durable-log replay; AddReplica/DecommissionReplica grow and shrink a
// group while the stream is flowing; and with Config.MirrorBases > 0 the
// checkpoint compactor replicates every fresh base to peer replica
// directories, which is what turns "corrupt base above a truncated log"
// from the documented unrecoverable corner into a recoverable one. The
// delivery tier's per-group offset filter is membership-independent, so
// exactly-once survives every one of these transitions.
//
// # Exactly-once candidate delivery
//
// Detection is deterministic and idempotent, so every alive replica of a
// group forwards its (identical) candidate batches toward delivery,
// tagged with the firehose offset of the triggering event. The delivery
// consumer keeps a per-group high-water offset and processes a batch only
// if its offset is new — at-least-once emission collapsed to exactly-once
// per event per group. This is what makes crash recovery lossless without
// coordination: a replica can die, rejoin, and replay — its re-emitted
// batches for already-covered offsets are dropped by construction, and
// any offsets its peers covered while it was gone were delivered from
// their copies. The fault-equivalence oracle tests pin this end to end:
// a kill/checkpoint/restore/replay run delivers exactly the notification
// set of a no-fault run.
package cluster

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"motifstream/internal/broker"
	"motifstream/internal/delivery"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
	"motifstream/internal/placement"
	"motifstream/internal/queue"
	"motifstream/internal/transport"
)

// Config assembles a Cluster.
type Config struct {
	// Partitions is the number of partitions (paper: 20). Required >= 1.
	Partitions int
	// Replicas is the number of replicas per partition; 0 selects 1.
	Replicas int
	// StaticEdges are the global A→B follow edges loaded into every
	// partition's S (each keeps only its own A's).
	StaticEdges []graph.Edge
	// MaxInfluencers caps B's per A in S; 0 = unlimited.
	MaxInfluencers int
	// Dynamic configures each replica's D store.
	Dynamic dynstore.Options
	// NewPrograms constructs the motif programs for one replica. Programs
	// hold no mutable state in this codebase, but giving each replica its
	// own instances mirrors a real deployment and keeps the option open.
	// Required.
	NewPrograms func() []motif.Program
	// DisableSharing turns off each replica engine's shared-prefix
	// execution trie, running every planned motif's probes independently
	// per event. Detection output is identical either way; this exists for
	// differential tests and the multi-query benchmark's baseline mode.
	DisableSharing bool
	// IngestDelay models the firehose→partition queue hop; nil = NoDelay.
	IngestDelay queue.DelayModel
	// DeliveryDelay models the partition→push-gateway hop; nil = NoDelay.
	DeliveryDelay queue.DelayModel
	// Delivery configures the push pipeline.
	Delivery delivery.Options
	// Buffer sizes the queue channels; 0 selects 4096.
	Buffer int
	// ApplyBatch, when > 1, switches each replica consumer to the batched
	// hot path: it drains its subscription into bounded batches of up to
	// this many envelopes, runs candidate generation for the whole batch
	// (fanned across ApplyWorkers), then republishes candidates and cuts
	// checkpoints in offset order through an ordered commit stage. Batch
	// boundaries are forced wherever the sequential path would sweep D or
	// cut a checkpoint, so recoverable state and delivered notifications
	// are byte-identical to ApplyBatch == 1 (see docs/DURABILITY.md,
	// "Ordering invariants under batched apply"). 0 or 1 selects the
	// envelope-at-a-time path.
	ApplyBatch int
	// ApplyWorkers bounds the per-replica worker pool for in-batch
	// candidate generation. Envelopes are sharded by edge target — same
	// target, same worker, offset order within a worker — which preserves
	// exact sequential semantics because motif programs only read D at the
	// triggering edge's target. 0 or 1 runs detection inline on the
	// consumer goroutine. Ignored unless ApplyBatch > 1.
	ApplyWorkers int
	// Seed seeds the delay samplers.
	Seed int64
	// Metrics receives cluster instrumentation; nil creates a private one.
	Metrics *metrics.Registry
	// OnNotify, if set, receives every delivered notification.
	OnNotify func(delivery.Notification)
	// CheckpointDir, when non-empty, enables the recovery subsystem: the
	// firehose retains its log for offset replay, each replica writes
	// periodic durable checkpoints here, and KillReplica/RestoreReplica
	// become available. The directory is created if missing.
	CheckpointDir string
	// LogDir, when non-empty, stores the retained firehose log as a
	// durable segmented WAL on disk instead of in memory. The log — and
	// therefore every checkpoint offset — then outlives the process:
	// checkpoints are gated by the log's persistent identity (plus their
	// own checksums) rather than a per-process run id, and constructing a
	// cluster over an existing LogDir+CheckpointDir restores every
	// replica from its chain and replays the log from its floor (see
	// Reopen). Requires CheckpointDir: the restart path needs the
	// delivery high-water offsets persisted there to keep replayed
	// candidate batches exactly-once.
	LogDir string
	// LogSyncEvery is the WAL's fsync batch in records (the bound on the
	// torn tail an OS crash can lose); zero selects 256. Ignored without
	// LogDir.
	LogSyncEvery int
	// LogSegmentBytes is the WAL's segment rotation threshold — also the
	// granularity of firehose log compaction, which deletes whole
	// segments. Zero selects 4 MiB. Ignored without LogDir.
	LogSegmentBytes int64
	// CheckpointInterval is the stream-time interval between per-replica
	// checkpoints; zero selects one minute. Ignored without CheckpointDir.
	CheckpointInterval time.Duration
	// CompactEvery is the number of delta segments a replica's chain
	// accumulates before the async writer folds it into a fresh base;
	// zero selects 8. Ignored without CheckpointDir.
	CompactEvery int
	// StaticSnapshotDir, when non-empty, is where the offline pipeline
	// publishes per-partition S builds (statstore.WriteSnapshot files
	// named s-p%03d.snap). RestoreReplica reloads the partition's file if
	// present, so a rejoining replica serves the newest offline build
	// rather than the S it was constructed with; re-provisioned and
	// scaled-out replicas build their fresh S straight from it.
	StaticSnapshotDir string
	// Audit enables the detection-state fingerprint audit (internal/audit):
	// every checkpoint cut also records a CRC32C fingerprint of the
	// replica's full recoverable state to an append-only per-replica
	// audit log, the compactor self-checks every composed base against
	// the live cut it re-derives, recovery paths cross-check composed
	// state against recorded fingerprints, and scale-out go-live is gated
	// on a fingerprint match. VerifyFingerprints exposes the cross-replica
	// check. Costs one full-state hash per cut on the apply loop; ignored
	// without CheckpointDir.
	Audit bool
	// MirrorBases is the base replication factor: every base the
	// checkpoint compactor publishes is also mirrored (CRC-verified) to
	// up to this many peer replica directories of the same partition.
	// Mirrors are what make a corrupt base above a truncated firehose log
	// recoverable, and what a re-provisioned replica's state is rebuilt
	// from. Zero disables mirroring. Ignored without CheckpointDir.
	MirrorBases int
	// Listen, when non-empty, runs this cluster as a networked hub: it
	// binds a TCP listener (":0" picks a port; see ListenAddr), owns the
	// durable firehose log, delivery, placement, and broker tiers, and
	// serves every replica slot remotely — worker processes attach over
	// the socket and animate them. Requires LogDir. See networked.go.
	Listen string
	// Join, when non-empty, runs this cluster as a networked worker
	// against the hub listening at this address. The worker consumes the
	// hub's firehose over TCP for the slots in OwnedReplicas, ships
	// candidates back over a sequenced acked stream, and serves reads via
	// its own listener. Requires CheckpointDir (the shared filesystem
	// holding the checkpoint chains); forbids LogDir (the hub owns the
	// log). Mutually exclusive with Listen.
	Join string
	// OwnedReplicas lists the (partition, replica) slots a worker process
	// owns. Required with Join, forbidden otherwise.
	OwnedReplicas [][2]int
	// ReadListen is a worker's read-RPC bind address; empty picks an
	// ephemeral loopback port (advertised to the hub on attach).
	ReadListen string
	// NetTimeout bounds each dial/hello attempt and read RPC (default 5s).
	NetTimeout time.Duration
	// NetRetryFor bounds a worker's initial handshake retries (default
	// 10s); reconnects after a successful attach retry forever.
	NetRetryFor time.Duration
	// NetDrainTimeout bounds shutdown flushes: the hub's wait for worker
	// candidate FINs and a worker's wait for candidate acks before a
	// final checkpoint cut (default 30s).
	NetDrainTimeout time.Duration
}

// Replica catch-up states. A replica is born live; KillReplica moves it to
// dead; RestoreReplica moves it to replaying (or straight to live when
// already at the head); applying the catch-up target offset moves
// replaying to live. DecommissionReplica moves any state to removed — a
// terminal tombstone that keeps the group's indices stable.
const (
	replicaLive int32 = iota
	replicaReplaying
	replicaDead
	replicaRemoved
)

// replicaSlot is the cluster-side handle for one running replica: the
// partition state plus the consumer goroutine's lifecycle and catch-up
// bookkeeping. quit/stopped/sub are replaced on restore; they are only
// written while no consumer goroutine is running.
type replicaSlot struct {
	pid, idx int
	// gen is the placement generation (bumped by ReprovisionReplica) and
	// dir the generation's checkpoint directory ("" without recovery).
	// Both are rewritten only under ctl+topoMu; read them under either.
	gen int
	dir string
	// p is the backing partition. It is an atomic pointer because node
	// replacement swaps in a brand-new partition while observers (tests,
	// the broker's owner) may be reading; nil only on a tombstone slot
	// rebuilt from a persisted decommission.
	p atomic.Pointer[partition.Partition]

	state atomic.Int32

	quit    chan struct{} // closed by KillReplica to stop the consumer
	stopped chan struct{} // closed by the consumer on exit
	live    chan struct{} // closed when the replica (re)enters live
	sub     <-chan queue.Envelope[graph.Edge]

	// target is the firehose offset the replica must reach to leave
	// replaying; meaningful only while state == replicaReplaying.
	target uint64
	// clock is the replica's checkpoint stream clock (see ckptClock). Only
	// the consumer goroutine advances it; lifecycle operations reset it
	// while no consumer is running.
	clock ckptClock

	// writer is the replica's async checkpoint persistence goroutine; nil
	// before Start, while dead, and on clusters without recovery. Only
	// the consume goroutine reads it, and it is only rewritten while no
	// consumer is running.
	writer *ckptWriter
	// restoreMan and restoreOffset are the startup-restore plan of a
	// durable-log cluster, computed by New (chain composed and installed)
	// and consumed by Start (subscribe at the offset, continue the
	// manifest). Unused without Config.LogDir.
	restoreMan    manifest
	restoreOffset uint64
	// floor is the offset of the replica's oldest durable restore point
	// (its base segment's cut offset; zero until the first compaction).
	// The firehose log is only ever truncated below the minimum floor
	// across replicas.
	floor atomic.Uint64
	// applied is the next unapplied feed offset, maintained only on
	// networked workers: a worker's final shutdown cut must claim exactly
	// what this slot applied, not the hub log's head (other workers may
	// be behind or ahead of it).
	applied atomic.Uint64
}

// Cluster is a running deployment.
type Cluster struct {
	cfg    Config
	part   partition.Partitioner
	slots  [][]*replicaSlot
	broker *broker.Broker

	firehose   edgeFeed
	candidates *queue.Topic[candidateMsg]
	pipeline   *delivery.Pipeline

	// wal is the durable firehose log backend when Config.LogDir is set;
	// the cluster owns it and closes it after the last drain in stop.
	wal     *queue.WAL[graph.Edge]
	durable bool
	// chains reports that replica checkpoint chains outlive this process
	// (durable log, or a networked worker whose log lives on the hub):
	// leftover chains are restored rather than wiped, and Shutdown cuts
	// final checkpoints.
	chains bool
	// hub and worker are the networked-deployment roles (networked.go);
	// both nil in a single-process cluster, at most one non-nil.
	hub    *hubState
	worker *workerState

	ckptEveryMS  int64
	compactEvery int
	mirrorBases  int
	// audit is Config.Audit gated on recovery being enabled: fingerprint
	// records live in the replica checkpoint directories.
	audit bool
	// table is the durable placement assignment (generations, scale-out
	// membership, decommission tombstones); nil without CheckpointDir.
	table *placement.Table
	// runID stamps this cluster instance's checkpoint files. With an
	// in-memory firehose log the log dies with the process, so the id is
	// random per construction and foreign-run files are wiped rather than
	// resurrected. With a durable log (Config.LogDir) the id is the WAL's
	// persistent identity: checkpoints stay valid across restarts exactly
	// as long as they index the same on-disk log, and are validated by
	// their checksums instead of the run gate.
	runID uint64

	// initialDelivery seeds runDelivery's per-group high-water offsets on
	// a durable-log restart, so replicas replaying their tail spans do
	// not re-deliver batches the previous run already pushed.
	initialDelivery []uint64

	reg                   *metrics.Registry
	e2eLatency            *metrics.Histogram
	detectLatency         *metrics.Histogram
	cutPause              *metrics.Histogram
	batchSize             *metrics.Histogram
	applyBatches          *metrics.Counter
	ingested              *metrics.Counter
	delivered             *metrics.Counter
	checkpoints           *metrics.Counter
	ckptErrors            *metrics.Counter
	restores              *metrics.Counter
	compactions           *metrics.Counter
	truncated             *metrics.Counter
	staticReloads         *metrics.Counter
	reprovisions          *metrics.Counter
	mirrorsOut            *metrics.Counter
	poolRestores          *metrics.Counter
	fsyncsSaved           *metrics.Counter
	scaleOuts             *metrics.Counter
	scaleIns              *metrics.Counter
	deliveryStateCuts     *metrics.Counter
	deliveryStateRestores *metrics.Counter
	auditRecords          *metrics.Counter
	auditMismatches       *metrics.Counter

	// stateWG tracks in-flight async delivery-state cuts; stateBusy keeps
	// at most one in flight (a busy tick is skipped, the next one captures
	// a strictly newer state). Cuts are only spawned by the delivery
	// goroutine, which waits for the last one before its final exact cut.
	stateWG   sync.WaitGroup
	stateBusy atomic.Bool

	// ctl serializes the replica lifecycle operations (KillReplica,
	// RestoreReplica) and guards the slot fields they rewrite, so
	// concurrent chaos injection cannot double-close a quit channel or
	// race the last-alive-replica guard.
	ctl sync.Mutex
	// truncMu makes a writer's floor-scan-plus-truncate atomic against a
	// restore lowering its replica's floor and subscribing: without it, a
	// writer could read a stale (higher) floor, then truncate the log out
	// from under a replay the restore just started. Writers take only
	// truncMu (never ctl — stopWriterLocked waits on them while holding
	// ctl); RestoreReplica takes ctl then truncMu, so the order is acyclic.
	truncMu sync.Mutex
	// topoMu guards the topology itself — the per-partition slot slices,
	// which grow on AddReplica, and each slot's dir/gen/p, which node
	// replacement rewrites. Mutations additionally hold ctl; lock order
	// is ctl → truncMu → topoMu (topoMu is always innermost), so readers
	// on any path can take the read lock without ordering worries.
	topoMu sync.RWMutex

	wg        sync.WaitGroup
	deliverWG sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once
	// started gates the elastic lifecycle calls that must attach to a
	// running delivery pipeline (AddReplica, ReprovisionReplica).
	started atomic.Bool
}

// candidateMsg is one event's worth of candidates from one replica: the
// group it came from and the firehose offset of the triggering event, so
// the delivery consumer can collapse the replicas' redundant emissions to
// exactly one batch per event per group. pubNS carries the triggering
// event's wall-clock publish time (zero for replayed events), letting the
// delivery tier measure real end-to-end detection latency alongside the
// virtual-delay model.
type candidateMsg struct {
	pid    int
	offset uint64
	pubNS  int64
	cands  []motif.Candidate
}

// New validates cfg and builds all partitions and replicas. The cluster is
// idle until Start. With Config.LogDir the construction is also the
// recovery path: an existing durable log is reopened (its identity gates
// the checkpoints), every replica's chain is composed — checksums
// verified, corrupt tails trimmed — and installed, and Start replays the
// log from each replica's restore point. A fresh LogDir degenerates to a
// normal cold start.
func New(cfg Config) (c *Cluster, err error) {
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("cluster: need at least one partition")
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.NewPrograms == nil {
		return nil, fmt.Errorf("cluster: NewPrograms is required")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 4096
	}
	if err := validateNetworked(cfg); err != nil {
		return nil, err
	}
	recovery := cfg.CheckpointDir != ""
	durable := cfg.LogDir != ""
	workerMode := cfg.Join != ""
	hubMode := cfg.Listen != ""
	if durable && !recovery {
		// The restart path leans on the delivery high-water offsets and
		// replica chains stored under CheckpointDir; a durable log alone
		// would replay the world and re-push the previous run's tail.
		return nil, fmt.Errorf("cluster: LogDir requires CheckpointDir")
	}
	if recovery {
		if cfg.CheckpointInterval <= 0 {
			cfg.CheckpointInterval = time.Minute
		}
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("cluster: checkpoint dir: %w", err)
		}
	}
	var wal *queue.WAL[graph.Edge]
	if durable {
		wal, err = queue.OpenWAL(queue.WALOptions[graph.Edge]{
			Dir:          cfg.LogDir,
			Marshal:      marshalEdge,
			Unmarshal:    unmarshalEdge,
			SyncEvery:    cfg.LogSyncEvery,
			SegmentBytes: cfg.LogSegmentBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: durable log: %w", err)
		}
		defer func() {
			if err != nil {
				wal.Close()
			}
		}()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	part := partition.NewHashPartitioner(cfg.Partitions)
	var firehose edgeFeed
	var worker *workerState
	if workerMode {
		// The worker's firehose is the hub's log over a socket; the meta
		// handshake (with retry, so workers can start first) yields the
		// log's identity, which gates every durable artifact below.
		worker, err = newWorkerState(cfg, reg)
		if err != nil {
			return nil, fmt.Errorf("cluster: join %s: %w", cfg.Join, err)
		}
		defer func() {
			if err != nil {
				worker.close()
			}
		}()
		firehose = worker.feed
	} else {
		firehoseOpts := queue.Options{
			Name:   "firehose",
			Delay:  cfg.IngestDelay,
			Buffer: cfg.Buffer,
			Seed:   cfg.Seed,
			Retain: recovery,
			// The delivery tier sequences on firehose offsets, so offset
			// order must equal every replica's delivery order even when
			// Publish is called from multiple goroutines.
			Ordered: true,
		}
		if durable {
			firehose = queue.NewTopicWithLog[graph.Edge](firehoseOpts, wal)
		} else {
			firehose = queue.NewTopic[graph.Edge](firehoseOpts)
		}
	}
	c = &Cluster{
		cfg:      cfg,
		part:     part,
		reg:      reg,
		wal:      wal,
		durable:  durable,
		firehose: firehose,
		candidates: queue.NewTopic[candidateMsg](queue.Options{
			Name:   "candidates",
			Delay:  cfg.DeliveryDelay,
			Buffer: cfg.Buffer,
			Seed:   cfg.Seed + 1,
		}),
		pipeline:              delivery.NewPipeline(cfg.Delivery),
		e2eLatency:            reg.Histogram("cluster.e2e_latency"),
		detectLatency:         reg.Histogram("cluster.detect_latency_wall"),
		cutPause:              reg.Histogram("cluster.checkpoint_cut_pause"),
		batchSize:             reg.Histogram("cluster.apply_batch_size"),
		applyBatches:          reg.Counter("cluster.apply_batches"),
		ingested:              reg.Counter("cluster.events"),
		delivered:             reg.Counter("cluster.delivered"),
		checkpoints:           reg.Counter("cluster.checkpoints"),
		ckptErrors:            reg.Counter("cluster.checkpoint_errors"),
		restores:              reg.Counter("cluster.restores"),
		compactions:           reg.Counter("cluster.compactions"),
		truncated:             reg.Counter("cluster.log_truncated_events"),
		staticReloads:         reg.Counter("cluster.static_reloads"),
		reprovisions:          reg.Counter("cluster.reprovisions"),
		mirrorsOut:            reg.Counter("cluster.base_mirrors"),
		poolRestores:          reg.Counter("cluster.base_pool_restores"),
		fsyncsSaved:           reg.Counter("cluster.fsyncs_saved"),
		scaleOuts:             reg.Counter("cluster.scale_outs"),
		scaleIns:              reg.Counter("cluster.scale_ins"),
		deliveryStateCuts:     reg.Counter("cluster.delivery_state_cuts"),
		deliveryStateRestores: reg.Counter("cluster.delivery_state_restores"),
		auditRecords:          reg.Counter("cluster.audit_records"),
		auditMismatches:       reg.Counter("cluster.audit_mismatches"),
	}
	c.chains = durable || workerMode
	c.worker = worker
	if hubMode {
		// The listener itself binds last (below), after the topology
		// exists; the state is installed now so backend callbacks can
		// never observe a half-built hub.
		c.hub = &hubState{
			remotes:      make(map[[2]int]*transport.RemoteReplica),
			drainTimeout: cfg.netDrainTimeout(),
		}
	}
	if recovery {
		c.audit = cfg.Audit
		c.ckptEveryMS = cfg.CheckpointInterval.Milliseconds()
		c.compactEvery = cfg.CompactEvery
		if c.compactEvery <= 0 {
			c.compactEvery = 8
		}
		if durable {
			// Checkpoint offsets index the durable log, so its persistent
			// identity is the gate: a chain survives exactly as long as
			// the log that assigned its offsets.
			c.runID = wal.ID()
		} else if workerMode {
			// A worker's offsets index the hub's durable log; its identity
			// (from the meta handshake) gates the worker's chains exactly
			// as a local WAL's would — and matches the hub's own runID, so
			// both sides agree on the shared placement table and audit
			// records.
			c.runID = worker.feed.LogID()
		} else {
			var id [8]byte
			if _, err := rand.Read(id[:]); err != nil {
				return nil, fmt.Errorf("cluster: run id: %w", err)
			}
			c.runID = binary.LittleEndian.Uint64(id[:])
		}
		c.mirrorBases = cfg.MirrorBases
		// Load the durable placement assignment — generations chosen by
		// past re-provisions, membership changed by past scale events —
		// gated by the run/log identity like every other durable artifact
		// (a foreign table loads empty, a malformed one is counted and
		// replaced at the next mutation).
		tbl, err := placement.Load(placement.TablePath(cfg.CheckpointDir), c.runID)
		if err != nil {
			c.ckptErrors.Inc()
		}
		c.table = tbl
	}

	slots := make([][]*replicaSlot, cfg.Partitions)
	replicaGroups := make([][]broker.Replica, cfg.Partitions)
	var tombstones [][2]int
	for pid := 0; pid < cfg.Partitions; pid++ {
		// The persisted placement table can widen a partition beyond the
		// configured replica count (live scale-out survives restarts) and
		// mark indices decommissioned (tombstones keep peers' indices
		// stable).
		replicas := cfg.Replicas
		if c.table != nil {
			if n := c.table.Replicas(pid); n > replicas {
				replicas = n
			}
		}
		for r := 0; r < replicas; r++ {
			var pl placement.Placement
			if c.table != nil {
				pl = c.table.Get(pid, r)
			}
			slot := &replicaSlot{pid: pid, idx: r, gen: pl.Gen, live: make(chan struct{})}
			if pl.Removed || (workerMode && !worker.owned[[2]int{pid, r}]) {
				// A decommissioned placement — or, on a worker, a slot some
				// other process owns: no partition, no consumer. On the hub
				// and in-process, also a permanent broker tombstone (marked
				// after broker construction below).
				slot.state.Store(replicaRemoved)
				slots[pid] = append(slots[pid], slot)
				if !workerMode {
					replicaGroups[pid] = append(replicaGroups[pid], tombstone{pid: pid})
					tombstones = append(tombstones, [2]int{pid, r})
				}
				continue
			}
			if hubMode {
				// A remote slot: a worker process owns the partition state.
				// The hub keeps the slot's chain directory (shared-fs floor
				// scans and fingerprint audits read it) and a dial-based
				// broker member, born down until the worker attaches and
				// reports live.
				slot.state.Store(replicaDead)
				slot.dir = placement.Dir(cfg.CheckpointDir, pid, r, pl.Gen)
				if err := os.MkdirAll(slot.dir, 0o755); err != nil {
					return nil, fmt.Errorf("cluster: checkpoint dir: %w", err)
				}
				rr := transport.NewRemoteReplica(pid, r, cfg.netTimeout(), reg)
				c.hub.remotes[[2]int{pid, r}] = rr
				slots[pid] = append(slots[pid], slot)
				replicaGroups[pid] = append(replicaGroups[pid], rr)
				tombstones = append(tombstones, [2]int{pid, r})
				continue
			}
			p, err := c.buildPartition(pid)
			if err != nil {
				return nil, fmt.Errorf("cluster: partition %d replica %d: %w", pid, r, err)
			}
			slot.p.Store(p)
			close(slot.live) // replicas are born live
			if recovery {
				slot.dir = placement.Dir(cfg.CheckpointDir, pid, r, pl.Gen)
				if !c.chains {
					// In-memory log: any leftover chain belongs to a
					// previous run whose firehose log is gone, so it is
					// wiped rather than resurrected. A cluster whose log
					// outlives the process (durable, or networked worker)
					// keeps the directory — restoring it is the point —
					// and relies on the log-identity gate plus segment
					// checksums instead.
					if err := os.RemoveAll(slot.dir); err != nil {
						return nil, fmt.Errorf("cluster: checkpoint dir: %w", err)
					}
				}
				if err := os.MkdirAll(slot.dir, 0o755); err != nil {
					return nil, fmt.Errorf("cluster: checkpoint dir: %w", err)
				}
			}
			slots[pid] = append(slots[pid], slot)
			if !workerMode {
				replicaGroups[pid] = append(replicaGroups[pid], p)
			}
		}
	}
	c.slots = slots
	if workerMode {
		// Every owned slot must have materialized: the configured geometry
		// plus the shared placement table are the authority, and silently
		// running without a claimed slot would strand its partition.
		for or := range worker.owned {
			if or[1] >= len(slots[or[0]]) {
				return nil, fmt.Errorf("cluster: owned replica %d/%d does not exist in the placement geometry", or[0], or[1])
			}
			if slots[or[0]][or[1]].state.Load() == replicaRemoved {
				return nil, fmt.Errorf("cluster: owned replica %d/%d is decommissioned", or[0], or[1])
			}
		}
	}
	if c.chains && !hubMode {
		// Compose and install every replica's durable chain now, so Start
		// only has to subscribe at the planned offsets. The hub skips
		// this: its slots are remote, and the worker that owns each chain
		// composes it. A worker runs it against the shared CheckpointDir
		// with offsets indexing the hub's log.
		for _, group := range c.slots {
			for _, slot := range group {
				if slot.state.Load() == replicaRemoved {
					continue
				}
				if err := c.planStartupRestore(slot); err != nil {
					return nil, err
				}
			}
		}
	}
	if durable {
		// Seed the delivery tier's exactly-once filter from the persisted
		// high-water offsets: the replicas are about to replay their tail
		// spans, and those batches were already pushed by a previous run.
		// Seed the delivery tier's exactly-once filter AND the pipeline's
		// suppression state (dedup LRU + fatigue budgets) from
		// delivery.state, which bundles both as one atomic snapshot: a
		// (user, item) pair pushed before the shutdown stays suppressed
		// across the restart, daily budgets are not silently reset, and
		// the filter can never run ahead of the dedup state because they
		// were captured together. A missing, foreign, or corrupt
		// delivery.state degrades to the fresher-but-unpaired
		// delivery.off seeds with a fresh pipeline — the documented
		// pre-durable-state tolerance (a repeated pair may be re-pushed
		// once), never a failed reopen.
		if offs, ok := c.loadDeliveryState(); ok {
			c.initialDelivery = offs
		} else {
			c.initialDelivery = c.loadDeliveryOffsets()
		}
		// Clamp the seeds to the recovered log head: after a torn-tail
		// crash the log may have lost a suffix whose offsets the delivery
		// filter already covered — those offsets are about to be REUSED by
		// brand-new events, and a seed beyond the head would drop their
		// notifications forever. Clamping down only risks re-delivering
		// the lost span's pushes, the documented duplicate tolerance;
		// never loss (and dedup entries covering the lost span only
		// suppress re-pushes of pairs the previous run demonstrably
		// delivered).
		head := c.firehose.Published()
		for i, off := range c.initialDelivery {
			if off > head {
				c.initialDelivery[i] = head
			}
		}
	}
	if !workerMode {
		b, err := broker.New(part, replicaGroups)
		if err != nil {
			return nil, err
		}
		c.broker = b
		for _, ts := range tombstones {
			c.broker.MarkDown(ts[0], ts[1])
		}
	}
	if hubMode {
		if err = c.startHubServer(cfg); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// marshalEdge and unmarshalEdge are the WAL's record codec for firehose
// events: varint fields, no framing (the WAL frames and checksums).
func marshalEdge(e graph.Edge) ([]byte, error) {
	b := make([]byte, 0, 2*binary.MaxVarintLen64+binary.MaxVarintLen64+1)
	b = binary.AppendUvarint(b, uint64(e.Src))
	b = binary.AppendUvarint(b, uint64(e.Dst))
	b = append(b, byte(e.Type))
	b = binary.AppendVarint(b, e.TS)
	return b, nil
}

func unmarshalEdge(b []byte) (graph.Edge, error) {
	var e graph.Edge
	src, n := binary.Uvarint(b)
	if n <= 0 {
		return e, fmt.Errorf("cluster: edge src: short payload")
	}
	b = b[n:]
	dst, n := binary.Uvarint(b)
	if n <= 0 {
		return e, fmt.Errorf("cluster: edge dst: short payload")
	}
	b = b[n:]
	if len(b) < 1 {
		return e, fmt.Errorf("cluster: edge type: short payload")
	}
	typ := b[0]
	b = b[1:]
	ts, n := binary.Varint(b)
	if n <= 0 {
		return e, fmt.Errorf("cluster: edge ts: short payload")
	}
	if len(b) != n {
		return e, fmt.Errorf("cluster: edge payload has %d trailing bytes", len(b)-n)
	}
	e.Src = graph.VertexID(src)
	e.Dst = graph.VertexID(dst)
	e.Type = graph.EdgeType(typ)
	e.TS = ts
	return e, nil
}

// buildPartition constructs one replica's partition from configuration.
func (c *Cluster) buildPartition(pid int) (*partition.Partition, error) {
	return partition.New(partition.Config{
		ID:             pid,
		StaticEdges:    c.cfg.StaticEdges,
		Partitioner:    c.part,
		MaxInfluencers: c.cfg.MaxInfluencers,
		Dynamic:        c.cfg.Dynamic,
		Programs:       c.cfg.NewPrograms(),
		DisableSharing: c.cfg.DisableSharing,
		Metrics:        c.reg,
	})
}

// Start launches one consumer goroutine per replica plus the delivery
// consumer. It may be called once; later calls are no-ops. On a
// durable-log cluster each replica subscribes at its startup-restore
// offset (computed by New) and runs the replaying→live catch-up state
// machine exactly as a RestoreReplica rejoin would: broker-down until it
// has applied every offset that was durable when the cluster opened.
func (c *Cluster) Start() {
	c.startOnce.Do(func() {
		head := c.firehose.Published()
		// Two phases: wire every slot's subscription first, launch the
		// consumers after — a networked worker's subs map must be complete
		// (and thereafter read-only) before any consumer can report live
		// through it.
		var ready []*replicaSlot
		for _, group := range c.slots {
			for _, slot := range group {
				if slot.state.Load() == replicaRemoved {
					continue
				}
				if c.hub != nil {
					// Remote slot: a worker process runs the consumer; the
					// hub only serves its feed and brokers its reads.
					continue
				}
				slot.quit = make(chan struct{})
				slot.stopped = make(chan struct{})
				if c.worker != nil {
					ws, err := c.worker.feed.SubscribeReplica(slot.pid, slot.idx, slot.gen, slot.restoreOffset, c.worker.rs.Addr())
					if err != nil {
						c.ckptErrors.Inc()
						slot.state.Store(replicaDead)
						slot.live = make(chan struct{})
						close(slot.stopped)
						continue
					}
					c.worker.subs[[2]int{slot.pid, slot.idx}] = ws
					slot.sub = ws.C()
					slot.applied.Store(slot.restoreOffset)
					if slot.restoreOffset < head {
						slot.target = head
						slot.state.Store(replicaReplaying)
						slot.live = make(chan struct{})
					} else {
						// Already at the head observed in the handshake:
						// announce live now (sticky; re-sent on reconnects)
						// — the catch-up CAS below will never fire.
						ws.NotifyLive()
					}
					if slot.restoreOffset > 0 || head > 0 {
						c.restores.Inc()
					}
					c.worker.rs.Register(slot.pid, slot.idx, slot.p.Load())
				} else if c.durable {
					sub, err := c.firehose.SubscribeFrom(slot.restoreOffset)
					if err != nil {
						// Unreachable: New validated the restore point
						// against the log's bounds and nothing can publish
						// or truncate before Start. Leave the replica dead
						// rather than crash.
						c.ckptErrors.Inc()
						slot.state.Store(replicaDead)
						slot.live = make(chan struct{})
						c.broker.MarkDown(slot.pid, slot.idx)
						close(slot.stopped)
						continue
					}
					slot.sub = sub
					if slot.restoreOffset < head {
						slot.target = head
						slot.state.Store(replicaReplaying)
						slot.live = make(chan struct{})
						c.broker.MarkDown(slot.pid, slot.idx)
					}
					if slot.restoreOffset > 0 || head > 0 {
						c.restores.Inc()
					}
				} else {
					slot.sub = c.firehose.Subscribe()
				}
				if c.ckptEveryMS > 0 {
					slot.writer = c.startWriter(slot, slot.restoreMan)
				}
				ready = append(ready, slot)
			}
		}
		for _, slot := range ready {
			c.wg.Add(1)
			go c.runReplica(slot)
		}
		deliverSub := c.candidates.Subscribe()
		c.deliverWG.Add(1)
		if c.worker != nil {
			go c.runForwarder(deliverSub)
		} else {
			go c.runDelivery(deliverSub)
		}
		c.started.Store(true)
	})
}

// runReplica consumes the replica's subscription — live from Start, or
// replay-then-live from RestoreReplica — until the topic closes or
// KillReplica pulls the plug. With Config.ApplyBatch > 1 it runs the
// batched hot path (parallel.go) instead of envelope-at-a-time.
func (c *Cluster) runReplica(slot *replicaSlot) {
	defer c.wg.Done()
	defer close(slot.stopped)
	if c.cfg.ApplyBatch > 1 {
		c.consumeBatched(slot)
		return
	}
	for {
		select {
		case <-slot.quit:
			return
		case env, ok := <-slot.sub:
			if !ok {
				return
			}
			if !c.applyEnvelope(slot, env) {
				return
			}
		}
	}
}

// applyEnvelope runs one firehose envelope through the replica: detection,
// candidate forwarding, the checkpoint cut, and the replaying→live
// transition. Every alive replica forwards its batches; the delivery
// consumer's per-group offset filter collapses the redundancy to exactly
// one batch per event. Returns false only when the candidates topic has
// closed (shutdown race).
func (c *Cluster) applyEnvelope(slot *replicaSlot, env queue.Envelope[graph.Edge]) bool {
	cands := slot.p.Load().Apply(env.Msg)

	// One state load gates BOTH the candidate publish and the checkpoint
	// cut below. KillReplica stores replicaDead before closing quit, but
	// the consumer's select may still drain buffered envelopes first —
	// a "zombie" span. Suppressing only the publish while still cutting
	// would let a durable cut claim offsets whose candidates were never
	// handed to the delivery tier; the restored replica would resume past
	// the suppressed offset, and its first accepted emission would jump
	// the group's high-water filter over the lost batch. Publish and cut
	// must therefore share one fate per envelope.
	state := slot.state.Load()

	// Candidates are published before any checkpoint cut covering this
	// offset: a cut at Offset+1 must never claim durability for an event
	// whose candidates were not yet handed to the delivery tier, or a
	// restore from that cut would skip re-emitting them. Publishing to a
	// closed candidates topic only happens during shutdown races; drop
	// silently then.
	if len(cands) > 0 && state != replicaDead {
		msg := candidateMsg{pid: slot.pid, offset: env.Offset, pubNS: env.PubUnixNS, cands: cands}
		// On a networked worker the message is counted against the
		// checkpoint ack gate BEFORE the publish, so a drained gate is an
		// upper bound on what was ever handed to the forwarder.
		if c.worker != nil {
			c.worker.fw.NoteEnqueued()
		}
		if c.candidates.Publish(msg, env.VirtualDelay) != nil {
			if c.worker != nil {
				c.worker.fw.NoteAbandoned()
			}
			return false
		}
	}

	if c.worker != nil {
		slot.applied.Store(env.Offset + 1)
	}

	if c.ckptEveryMS > 0 && state != replicaDead {
		if slot.clock.tick(env.Msg.TS, c.ckptEveryMS) {
			c.cutCheckpoint(slot, env.Offset+1)
		}
	}

	if slot.state.Load() == replicaReplaying && env.Offset+1 >= slot.target {
		// Caught up with the head observed at restore time: from here the
		// replica is as fresh as any live one (behind by at most its
		// subscription buffer), so the broker may serve reads from it.
		// CAS, not Store: a concurrent KillReplica may have already moved
		// the state to dead, and resurrecting it would mark a reset
		// replica broker-healthy.
		if slot.state.CompareAndSwap(replicaReplaying, replicaLive) {
			c.markLive(slot)
			close(slot.live)
		}
	}
	return true
}

// cutCheckpoint is the synchronous half of an incremental checkpoint: it
// captures the state dirtied since the last cut — cost proportional to
// recent write activity, not store size — and hands it to the replica's
// async writer for encoding, fsync, and manifest publication. The send
// blocks when the writer's small queue is full, back-pressuring the apply
// loop instead of letting pending checkpoint memory grow without bound.
func (c *Cluster) cutCheckpoint(slot *replicaSlot, nextOffset uint64) {
	w := slot.writer
	if w == nil {
		return
	}
	if c.worker != nil && !c.worker.fw.WaitDrained(c.worker.drainTimeout) {
		// The hub has not acked every candidate message published below
		// this offset: a cut now could durably cover offsets whose
		// candidates exist only in this process. Skip the cut entirely —
		// the dirty keys stay captured by the next one. (Checked before
		// CaptureDelta: a post-capture skip would drop the delta.)
		c.ckptErrors.Inc()
		return
	}
	start := time.Now()
	delta := slot.p.Load().CaptureDelta()
	job := ckptJob{delta: delta, offset: nextOffset}
	c.stampFingerprint(slot, &job)
	w.jobs <- job
	// Observed after the send so the metric is the apply loop's whole
	// checkpoint stall: capture plus any backpressure wait on a slow
	// writer — the honest number an operator watches to confirm
	// checkpointing is not pausing ingest.
	c.cutPause.Observe(time.Since(start))
}

// stampFingerprint attaches the replica's current state fingerprint to a
// checkpoint job when auditing is on. Called on the apply loop (or at
// drained shutdown) — the only places Apply is quiescent, which the
// fingerprint's streaming encode requires. A failed encode is counted and
// the cut proceeds unaudited: the audit is advisory, the cut is not.
func (c *Cluster) stampFingerprint(slot *replicaSlot, job *ckptJob) {
	if !c.audit {
		return
	}
	fp, err := slot.p.Load().Fingerprint()
	if err != nil {
		c.ckptErrors.Inc()
		return
	}
	job.fp, job.hasFP = fp, true
}

// runDelivery consumes candidate batches and runs the push pipeline.
// nextOffset[g] is group g's exactly-once high-water mark: a batch is
// processed only when its firehose offset has not been covered yet, so
// the replicas' redundant emissions — including a recovering replica's
// replay — produce exactly one delivery attempt per candidate.
func (c *Cluster) runDelivery(sub <-chan queue.Envelope[candidateMsg]) {
	defer c.deliverWG.Done()
	nextOffset := make([]uint64, c.cfg.Partitions)
	// A durable-log restart seeds the filter from the persisted offsets:
	// every replica is about to replay its tail span, and the previous
	// run already delivered those batches.
	copy(nextOffset, c.initialDelivery)
	persist := c.cfg.CheckpointDir != ""
	batches := 0
	for env := range sub {
		if env.Msg.offset < nextOffset[env.Msg.pid] {
			continue // another replica's copy already covered this event
		}
		nextOffset[env.Msg.pid] = env.Msg.offset + 1
		// Wall-clock detection latency, measured once per accepted batch:
		// first publish of the triggering event to the moment its candidates
		// reach the delivery tier. Replayed events carry pubNS zero and are
		// excluded — recovery lag is the replay-rate metric's job, not this
		// one's.
		if env.Msg.pubNS > 0 {
			if d := time.Duration(time.Now().UnixNano() - env.Msg.pubNS); d >= 0 {
				c.detectLatency.Observe(d)
			}
		}
		for _, cand := range env.Msg.cands {
			decision, note := c.pipeline.Offer(cand, env.VirtualDelay)
			if decision != delivery.Delivered {
				continue
			}
			c.delivered.Inc()
			c.e2eLatency.Observe(note.Latency)
			if c.cfg.OnNotify != nil {
				c.cfg.OnNotify(*note)
			}
		}
		if persist {
			// Periodically persist the per-group high-water offsets next
			// to the checkpoints: RestoreReplica reads them to clamp a
			// sole-coverage rejoin back to the delivered point.
			if batches++; batches%deliveryPersistEvery == 0 {
				c.persistDeliveryOffsets(nextOffset, false)
			}
			// And, on a coarser cadence, cut the delivery restart state —
			// the pipeline's suppression state (dedup LRU + fatigue
			// budgets) bundled with the filter offsets captured right now
			// — written asynchronously so the encode and fsync never
			// stall the delivery tier.
			if batches%deliveryStatePersistEvery == 0 {
				c.cutDeliveryStateAsync(append([]uint64(nil), nextOffset...))
			}
		}
	}
	if persist && batches > 0 {
		// Final exact persists at the drained point: wait out any async
		// state cut, then write the state+offsets snapshot (one atomic
		// file — a restart seeded from it can never run its filter ahead
		// of the dedup state restored with it; docs/DURABILITY.md,
		// "Durable delivery-pipeline state") and the standalone offsets
		// file, which remains the mid-run clamp source and the restart
		// fallback when the snapshot is missing or corrupt.
		c.stateWG.Wait()
		c.persistDeliveryState(nextOffset)
		c.persistDeliveryOffsets(nextOffset, true)
	}
}

// Publish feeds one edge into the firehose. It blocks when consumers lag
// (backpressure) and fails after Stop.
func (c *Cluster) Publish(e graph.Edge) error {
	if err := c.firehose.Publish(e, 0); err != nil {
		return err
	}
	c.ingested.Inc()
	return nil
}

// Stop closes the firehose, waits for partitions to drain — a replica
// mid-catch-up finishes its replay first — then stops the checkpoint
// writers (pending cuts land on disk), closes the candidate queue, and
// waits for delivery. Safe to call multiple times; must not be called
// concurrently with RestoreReplica.
func (c *Cluster) Stop() { c.stop(false) }

// Shutdown is the graceful durable stop: Stop plus one final checkpoint
// cut per alive replica at the drained head — so a subsequent Reopen
// composes straight to the end of the log instead of replaying the whole
// last checkpoint interval — and a hard fsync barrier on the durable log
// before it closes. On a cluster without Config.LogDir it behaves exactly
// like Stop (the final cuts would be wiped at the next construction
// anyway). On a networked worker the final cuts are gated on candidate
// acks and claim each slot's applied offset.
func (c *Cluster) Shutdown() { c.stop(c.chains) }

func (c *Cluster) stop(finalCut bool) {
	c.stopOnce.Do(func() {
		c.firehose.Close()
		c.wg.Wait()
		if c.hub != nil {
			// The topic close above ended every feed with EOS; wait for
			// the workers' candidate FIN exchanges — including workers that
			// were mid-reconnect when the stream closed and still need to
			// replay the tail — so everything they flushed lands in the
			// delivery queue before it closes.
			if !c.hub.server.DrainWorkers(c.hub.drainTimeout) {
				c.ckptErrors.Inc()
			}
		}
		if finalCut && c.worker != nil {
			// Final cuts claim applied offsets, so the ack gate must cover
			// them. On timeout skip the cuts — the chains stay at their
			// last sound offsets.
			if !c.worker.fw.WaitDrained(c.worker.drainTimeout) {
				c.ckptErrors.Inc()
				finalCut = false
			}
		}
		c.ctl.Lock()
		for _, group := range c.slots {
			for _, slot := range group {
				if st := slot.state.Load(); finalCut && slot.writer != nil && st != replicaDead && st != replicaRemoved {
					// The consumers have drained: every retained envelope
					// is applied and its candidates are in the delivery
					// queue, so a cut claiming the full head is sound. An
					// empty delta means the chain head already covers the
					// log (nothing applied since the last cut) — skip the
					// no-op segment.
					if delta := slot.p.Load().CaptureDelta(); delta.Len() > 0 {
						offset := c.firehose.Published()
						if c.worker != nil {
							// This slot applied exactly this much of the
							// hub's log; the cached head may be ahead.
							offset = slot.applied.Load()
						}
						job := ckptJob{delta: delta, offset: offset}
						c.stampFingerprint(slot, &job)
						slot.writer.jobs <- job
					}
				}
				stopWriterLocked(slot)
			}
		}
		c.ctl.Unlock()
		c.candidates.Close()
		c.deliverWG.Wait()
		if c.worker != nil {
			// The forwarder finished (FIN acked) inside runForwarder,
			// which deliverWG just waited out.
			c.worker.close()
		}
		if c.hub != nil {
			c.hub.server.Close()
			for _, rr := range c.hub.remotes {
				rr.Close()
			}
		}
		if c.wal != nil {
			// Consumers and replayers have drained; everything appended is
			// fsynced by the close, so the checkpoints written above never
			// claim offsets the log could lose.
			if err := c.wal.Close(); err != nil {
				c.ckptErrors.Inc()
			}
		}
	})
}

// Broker returns the read-path broker.
func (c *Cluster) Broker() *broker.Broker { return c.broker }

// Pipeline returns the delivery pipeline (for funnel stats).
func (c *Cluster) Pipeline() *delivery.Pipeline { return c.pipeline }

// Metrics returns the cluster's registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// Partitioner returns the cluster's A-space partitioner.
func (c *Cluster) Partitioner() partition.Partitioner { return c.part }

// slot validates indices and returns the slot. The topology read lock
// covers the group slice, which AddReplica grows mid-run.
func (c *Cluster) slot(pid, r int) (*replicaSlot, error) {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	if pid < 0 || pid >= len(c.slots) {
		return nil, fmt.Errorf("cluster: partition %d out of range", pid)
	}
	if r < 0 || r >= len(c.slots[pid]) {
		return nil, fmt.Errorf("cluster: replica %d out of range for partition %d", r, pid)
	}
	return c.slots[pid][r], nil
}

// Replica returns the given replica, for tests and failure injection.
// Decommissioned slots have no partition and return an error.
func (c *Cluster) Replica(pid, r int) (*partition.Partition, error) {
	slot, err := c.slot(pid, r)
	if err != nil {
		return nil, err
	}
	if slot.state.Load() == replicaRemoved {
		return nil, fmt.Errorf("cluster: replica %d/%d is decommissioned", pid, r)
	}
	p := slot.p.Load()
	if p == nil {
		return nil, fmt.Errorf("cluster: replica %d/%d is remote (runs in a worker process)", pid, r)
	}
	return p, nil
}

// FailReplica marks a replica down for reads — experiment E9's failover
// scenario. The replica keeps its state and keeps consuming (transient
// unreachability), so candidate delivery continues seamlessly from the
// surviving copies; use KillReplica for real state loss.
func (c *Cluster) FailReplica(pid, r int) error {
	if c.broker == nil {
		return ErrNotLocal
	}
	return c.broker.MarkDown(pid, r)
}

// RecoverReplica marks a flag-failed replica healthy again. Replicas
// killed with KillReplica must rejoin through RestoreReplica instead:
// their state is gone, so serving reads would be a lie.
func (c *Cluster) RecoverReplica(pid, r int) error {
	if c.broker == nil {
		return ErrNotLocal
	}
	slot, err := c.slot(pid, r)
	if err != nil {
		return err
	}
	if slot.state.Load() != replicaLive {
		return fmt.Errorf("cluster: replica %d/%d is not merely flagged down; use RestoreReplica", pid, r)
	}
	return c.broker.MarkUp(pid, r)
}

// Stats summarizes a running cluster.
type Stats struct {
	Events      uint64
	Delivered   uint64
	Checkpoints uint64
	Restores    uint64
	// Compactions counts delta chains folded into fresh bases by the
	// async writers.
	Compactions uint64
	// Reprovisions counts node replacements (ReprovisionReplica).
	Reprovisions uint64
	// BaseMirrors counts base checkpoints replicated to peer replica
	// directories; BasePoolRestores counts restores that recovered state
	// from the partition's base pool (a mirror or a peer's base) rather
	// than the replica's own chain.
	BaseMirrors      uint64
	BasePoolRestores uint64
	// FsyncsSaved counts fsyncs the async writers elided by coalescing
	// queued checkpoint cuts into one segment per drain.
	FsyncsSaved uint64
	// DeliveryStateCuts counts durable snapshots of the delivery
	// pipeline's suppression state (dedup LRU + fatigue budgets);
	// DeliveryStateRestores counts restarts that installed one.
	DeliveryStateCuts, DeliveryStateRestores uint64
	// ScaleOuts and ScaleIns count live membership changes (AddReplica /
	// DecommissionReplica).
	ScaleOuts, ScaleIns uint64
	// AuditRecords counts fingerprint records appended to the per-replica
	// audit logs; AuditMismatches counts fingerprint disagreements the
	// pipeline itself detected (compaction self-checks, recovery
	// cross-checks, go-live gates). Any nonzero mismatch count means two
	// recovery-equivalent states differed — run VerifyFingerprints for
	// the offsets. Zero without Config.Audit.
	AuditRecords, AuditMismatches uint64
	// LogTruncatedBelow is the firehose log's compaction horizon: every
	// retained offset is at or above it. Zero until the first truncation.
	LogTruncatedBelow uint64
	// ApplyBatches counts batches applied by the batched replica hot path
	// (zero with ApplyBatch <= 1); ApplyBatchSize is the distribution of
	// their envelope counts (stored unitless in the histogram).
	ApplyBatches   uint64
	ApplyBatchSize metrics.Snapshot
	// CutPause is the distribution of apply-loop pauses taken by
	// checkpoint cuts: delta capture plus any backpressure wait on the
	// async writer (encode and fsync themselves happen off-loop).
	CutPause   metrics.Snapshot
	E2ELatency metrics.Snapshot
	// DetectLatency is the wall-clock distribution from an event's first
	// publish to its candidate batch reaching the delivery tier. Unlike
	// E2ELatency (the simulated virtual-delay model), this measures the
	// process's real scheduling and queueing; replayed events are excluded.
	DetectLatency metrics.Snapshot
	Funnel        delivery.FunnelStats
}

// Stats returns current cluster totals.
func (c *Cluster) Stats() Stats {
	return Stats{
		Events:                c.ingested.Value(),
		Delivered:             c.delivered.Value(),
		Checkpoints:           c.checkpoints.Value(),
		Restores:              c.restores.Value(),
		Compactions:           c.compactions.Value(),
		Reprovisions:          c.reprovisions.Value(),
		BaseMirrors:           c.mirrorsOut.Value(),
		BasePoolRestores:      c.poolRestores.Value(),
		FsyncsSaved:           c.fsyncsSaved.Value(),
		DeliveryStateCuts:     c.deliveryStateCuts.Value(),
		DeliveryStateRestores: c.deliveryStateRestores.Value(),
		ScaleOuts:             c.scaleOuts.Value(),
		ScaleIns:              c.scaleIns.Value(),
		AuditRecords:          c.auditRecords.Value(),
		AuditMismatches:       c.auditMismatches.Value(),
		LogTruncatedBelow:     c.firehose.LogStart(),
		ApplyBatches:          c.applyBatches.Value(),
		ApplyBatchSize:        c.batchSize.Snapshot(),
		CutPause:              c.cutPause.Snapshot(),
		E2ELatency:            c.e2eLatency.Snapshot(),
		DetectLatency:         c.detectLatency.Snapshot(),
		Funnel:                c.pipeline.Stats(),
	}
}

// RecommendationsFor serves a user read through the broker. Workers have
// no broker — the hub fans reads out to them over their read listeners.
func (c *Cluster) RecommendationsFor(a graph.VertexID) ([]motif.Candidate, error) {
	if c.broker == nil {
		return nil, ErrNotLocal
	}
	return c.broker.RecommendationsFor(a)
}

// TopItems fans the "most recommended items" query out to one healthy
// replica of every partition and gathers the merged global top-n — the
// paper's broker fan-out/gather read path.
func (c *Cluster) TopItems(n int) ([]partition.ItemCount, error) {
	if c.broker == nil {
		return nil, ErrNotLocal
	}
	lists, err := broker.FanOut(c.broker, func(r broker.Replica) []partition.ItemCount {
		// Behavioral interface, not a concrete type: both local partitions
		// and the hub's dial-based remote members serve the query.
		q, ok := r.(interface {
			TopItems(int) []partition.ItemCount
		})
		if !ok {
			return nil
		}
		return q.TopItems(n)
	})
	if err != nil {
		return nil, err
	}
	return partition.MergeItemCounts(lists, n), nil
}

// Run ingests every edge from the slice, then stops the cluster and
// returns final stats — the one-call path used by examples and benches.
func Run(cfg Config, edges []graph.Edge) (Stats, error) {
	c, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	c.Start()
	for _, e := range edges {
		if err := c.Publish(e); err != nil {
			return Stats{}, err
		}
	}
	c.Stop()
	return c.Stats(), nil
}

// Elapsed measures the wall-clock cost of fn; a convenience for throughput
// reporting in cmd/benchreport.
func Elapsed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
