package cluster

import (
	"testing"
	"time"

	"motifstream/internal/delivery"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/queue"
)

func fig1Static() []graph.Edge {
	return []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 2, Dst: 10},
		{Src: 2, Dst: 11}, {Src: 3, Dst: 11},
	}
}

func diamondPrograms() []motif.Program {
	return []motif.Program{
		motif.NewDiamond(motif.DiamondConfig{K: 2, Window: 10 * time.Minute}),
	}
}

// awakeDelivery disables time-of-day suppression so tests are
// deterministic.
func awakeDelivery() delivery.Options {
	return delivery.Options{
		SleepStartHour: 1, SleepEndHour: 1,
		TimezoneOf: func(graph.VertexID) int { return 0 },
	}
}

func testConfig(partitions, replicas int) Config {
	return Config{
		Partitions:  partitions,
		Replicas:    replicas,
		StaticEdges: fig1Static(),
		Dynamic:     dynstore.Options{Retention: time.Hour},
		NewPrograms: diamondPrograms,
		Delivery:    awakeDelivery(),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Partitions: 0, NewPrograms: diamondPrograms}); err == nil {
		t.Fatal("0 partitions accepted")
	}
	if _, err := New(Config{Partitions: 1}); err == nil {
		t.Fatal("missing NewPrograms accepted")
	}
}

func TestEndToEndFigure1(t *testing.T) {
	var notes []delivery.Notification
	cfg := testConfig(4, 1)
	cfg.OnNotify = func(n delivery.Notification) { notes = append(notes, n) }
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t0 := int64(1_000_000)
	if err := c.Publish(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1_000}); err != nil {
		t.Fatal(err)
	}
	c.Stop()

	st := c.Stats()
	if st.Events != 2 {
		t.Fatalf("Events = %d", st.Events)
	}
	if st.Delivered != 1 {
		t.Fatalf("Delivered = %d (funnel %+v)", st.Delivered, st.Funnel)
	}
	if len(notes) != 1 {
		t.Fatalf("notifications = %v", notes)
	}
	n := notes[0]
	if n.Candidate.User != 2 || n.Candidate.Item != 99 {
		t.Fatalf("notification = %+v", n.Candidate)
	}

	// The read path serves the same candidate through the broker.
	recs, err := c.RecommendationsFor(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Item != 99 {
		t.Fatalf("RecommendationsFor(2) = %v", recs)
	}
}

func TestPublishAfterStopFails(t *testing.T) {
	c, err := New(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Stop()
	if err := c.Publish(graph.Edge{Src: 1, Dst: 2}); err == nil {
		t.Fatal("Publish after Stop succeeded")
	}
	c.Stop() // idempotent
}

func TestReplicasDoNotDuplicateDeliveries(t *testing.T) {
	// With 3 replicas, each detects the same candidates; only the
	// emitter's copy must reach delivery.
	cfg := testConfig(2, 3)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t0 := int64(1_000_000)
	c.Publish(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0})
	c.Publish(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1})
	c.Stop()
	st := c.Stats()
	if st.Funnel.Raw != 1 {
		t.Fatalf("raw candidates = %d, want 1 (no replica duplication)", st.Funnel.Raw)
	}
}

func TestQueueDelayFeedsLatency(t *testing.T) {
	cfg := testConfig(1, 1)
	cfg.IngestDelay = queue.Fixed{D: 3 * time.Second}
	cfg.DeliveryDelay = queue.Fixed{D: 4 * time.Second}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t0 := int64(1_000_000)
	c.Publish(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0})
	c.Publish(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1})
	c.Stop()
	st := c.Stats()
	if st.Delivered != 1 {
		t.Fatalf("Delivered = %d", st.Delivered)
	}
	// End-to-end latency = 3s ingest hop + 4s delivery hop = 7s; the
	// histogram reports bucket upper bounds, so allow the bucket width.
	if st.E2ELatency.P50 < 7*time.Second || st.E2ELatency.P50 > 9*time.Second {
		t.Fatalf("latency p50 = %v, want ~7s", st.E2ELatency.P50)
	}
}

func TestFailoverPromotesEmitter(t *testing.T) {
	cfg := testConfig(1, 2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t0 := int64(1_000_000)
	// First motif completes with replica 0 as emitter.
	c.Publish(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0})
	c.Publish(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1})
	// Fail replica 0 of partition 0: replica 1 takes over emission.
	if err := c.FailReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	// Second motif on a fresh item still gets delivered.
	c.Publish(graph.Edge{Src: 10, Dst: 55, Type: graph.Follow, TS: t0 + 2})
	c.Publish(graph.Edge{Src: 11, Dst: 55, Type: graph.Follow, TS: t0 + 3})
	c.Stop()
	st := c.Stats()
	if st.Delivered != 2 {
		t.Fatalf("Delivered = %d, want 2 (continuity across failover; funnel %+v)",
			st.Delivered, st.Funnel)
	}
	// Reads survive too.
	if _, err := c.RecommendationsFor(2); err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	// Recovery is accepted.
	if err := c.RecoverReplica(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFailReplicaValidation(t *testing.T) {
	c, err := New(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FailReplica(5, 0); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	if err := c.FailReplica(0, 5); err == nil {
		t.Fatal("out-of-range replica accepted")
	}
}

func TestReplicaAccessor(t *testing.T) {
	c, err := New(testConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Replica(1, 1)
	if err != nil || p == nil {
		t.Fatalf("Replica(1,1) = %v, %v", p, err)
	}
	if p.ID() != 1 {
		t.Fatalf("replica partition ID = %d", p.ID())
	}
	if _, err := c.Replica(9, 0); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	if _, err := c.Replica(0, 9); err == nil {
		t.Fatal("out-of-range replica accepted")
	}
}

func TestRunConvenience(t *testing.T) {
	t0 := int64(1_000_000)
	st, err := Run(testConfig(2, 1), []graph.Edge{
		{Src: 10, Dst: 99, Type: graph.Follow, TS: t0},
		{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 2 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPartitionedEqualsSingleNode is the system-level locality check: a
// 1-partition and an 8-partition cluster deliver the same candidate set.
func TestPartitionedEqualsSingleNode(t *testing.T) {
	static := fig1Static()
	static = append(static,
		graph.Edge{Src: 4, Dst: 10}, graph.Edge{Src: 4, Dst: 11},
		graph.Edge{Src: 5, Dst: 10}, graph.Edge{Src: 5, Dst: 11},
	)
	t0 := int64(1_000_000)
	var events []graph.Edge
	for i, item := range []graph.VertexID{90, 91, 92} {
		ts := t0 + int64(i)*10_000
		events = append(events,
			graph.Edge{Src: 10, Dst: item, Type: graph.Follow, TS: ts},
			graph.Edge{Src: 11, Dst: item, Type: graph.Follow, TS: ts + 1},
		)
	}

	collect := func(partitions int) map[[2]graph.VertexID]bool {
		got := map[[2]graph.VertexID]bool{}
		cfg := Config{
			Partitions:  partitions,
			StaticEdges: static,
			Dynamic:     dynstore.Options{Retention: time.Hour},
			NewPrograms: diamondPrograms,
			Delivery: delivery.Options{
				SleepStartHour: 1, SleepEndHour: 1,
				MaxPerUserPerDay: 1 << 30,
				TimezoneOf:       func(graph.VertexID) int { return 0 },
			},
			OnNotify: func(n delivery.Notification) {
				got[[2]graph.VertexID{n.Candidate.User, n.Candidate.Item}] = true
			},
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		for _, e := range events {
			if err := c.Publish(e); err != nil {
				t.Fatal(err)
			}
		}
		c.Stop()
		return got
	}

	single := collect(1)
	sharded := collect(8)
	if len(single) == 0 {
		t.Fatal("vacuous: single-node delivered nothing")
	}
	if len(single) != len(sharded) {
		t.Fatalf("single %v != sharded %v", single, sharded)
	}
	for k := range single {
		if !sharded[k] {
			t.Fatalf("sharded run missing %v", k)
		}
	}
}

func TestTopItemsFanOut(t *testing.T) {
	// Two users in different partitions both get item 99 recommended;
	// the fan-out gather must merge the per-partition counts.
	static := fig1Static()
	static = append(static,
		graph.Edge{Src: 4, Dst: 10}, graph.Edge{Src: 4, Dst: 11},
		graph.Edge{Src: 5, Dst: 10}, graph.Edge{Src: 5, Dst: 11},
	)
	c2, err := New(Config{
		Partitions:  4,
		StaticEdges: static,
		Dynamic:     dynstore.Options{Retention: time.Hour},
		NewPrograms: diamondPrograms,
		Delivery:    awakeDelivery(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	t0 := int64(1_000_000)
	for i, item := range []graph.VertexID{99, 99, 77} {
		ts := t0 + int64(i)*100_000
		c2.Publish(graph.Edge{Src: 10, Dst: item, Type: graph.Follow, TS: ts})
		c2.Publish(graph.Edge{Src: 11, Dst: item, Type: graph.Follow, TS: ts + 1})
	}
	c2.Stop()
	top, err := c2.TopItems(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) < 2 || top[0].Item != 99 {
		t.Fatalf("TopItems = %v, want 99 first", top)
	}
	if top[0].Count <= top[1].Count {
		t.Fatalf("counts not descending: %v", top)
	}
	// With a replica down in every group the fan-out errors.
	c3, err := New(testConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	c3.Start()
	c3.Stop()
	c3.Broker().MarkDown(0, 0)
	if _, err := c3.TopItems(5); err == nil {
		t.Fatal("fan-out with a dead group should error")
	}
}
