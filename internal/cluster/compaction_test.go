package cluster

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
	"motifstream/internal/statstore"
)

// TestCompactionUnderLoadChaos is the incremental pipeline's
// fault-equivalence check: with aggressive checkpoint cadence, a tiny
// compaction threshold (chains fold constantly), firehose truncation
// active, and a replica crash/restore mid-stream, the delivered
// notification set must exactly match a no-fault oracle run.
func TestCompactionUnderLoadChaos(t *testing.T) {
	static := ringStatic(50)
	stream := motifWorkload(77, 50, 700)

	run := func(chaos bool) (map[noteKey]int, Stats) {
		cfg := recoveryConfig(t, static)
		cfg.CheckpointInterval = 3 * time.Second // stream time: cuts constantly
		cfg.CompactEvery = 2                     // fold chains constantly
		notes := collectNotes(&cfg)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		killAt := len(stream) / 4
		restoreAt := len(stream) / 2
		for i, e := range stream {
			if chaos {
				if i == killAt {
					for pid := 0; pid < cfg.Partitions; pid++ {
						if err := c.KillReplica(pid, 1); err != nil {
							t.Fatal(err)
						}
					}
				}
				if i == restoreAt {
					for pid := 0; pid < cfg.Partitions; pid++ {
						if err := c.RestoreReplica(pid, 1); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			if err := c.Publish(e); err != nil {
				t.Fatal(err)
			}
		}
		c.Stop()
		if chaos {
			for pid := 0; pid < cfg.Partitions; pid++ {
				if state, _ := c.ReplicaState(pid, 1); state != "live" {
					t.Fatalf("partition %d replica 1 state = %q after drain", pid, state)
				}
			}
			// Recovered replicas converge to their surviving peers.
			for pid := 0; pid < cfg.Partitions; pid++ {
				restored, _ := c.Replica(pid, 1)
				peer, _ := c.Replica(pid, 0)
				got := restored.Engine().Dynamic().Stats()
				want := peer.Engine().Dynamic().Stats()
				if got != want {
					t.Fatalf("partition %d recovered D stats %+v != peer %+v", pid, got, want)
				}
			}
		}
		return notes(), c.Stats()
	}

	want, _ := run(false)
	got, st := run(true)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle delivered nothing")
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("notification %v: chaos run delivered %d, oracle %d (lost or duplicated)", k, got[k], n)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("chaos run delivered %v, oracle did not", k)
		}
	}
	if st.Compactions == 0 {
		t.Fatal("vacuous: no compactions ran under load")
	}
	if st.LogTruncatedBelow == 0 {
		t.Fatal("vacuous: firehose log never truncated")
	}
	t.Logf("compaction chaos: %d notifications identical, %d checkpoints, %d compactions, log truncated below %d",
		len(want), st.Checkpoints, st.Compactions, st.LogTruncatedBelow)
}

// TestLogTruncationBoundedByDurableFloor checks the compaction safety
// invariant end to end: the firehose log is only truncated below every
// replica's durable restore floor, so a kill/restore after truncation
// still replays cleanly and converges.
func TestLogTruncationBoundedByDurableFloor(t *testing.T) {
	cfg := recoveryConfig(t, ringStatic(40))
	cfg.CheckpointInterval = 3 * time.Second
	cfg.CompactEvery = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	stream := motifWorkload(55, 40, 500)
	half := len(stream) / 2
	for _, e := range stream[:half] {
		c.Publish(e)
	}
	if err := c.KillReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	for _, e := range stream[half:] {
		c.Publish(e)
	}
	c.Stop()
	st := c.Stats()
	if st.LogTruncatedBelow == 0 {
		t.Fatal("vacuous: log never truncated")
	}
	// The truncation horizon never exceeds any replica's floor.
	for _, group := range c.slots {
		for _, s := range group {
			if f := s.floor.Load(); f < st.LogTruncatedBelow {
				t.Fatalf("log truncated below %d but replica %d/%d floor is %d",
					st.LogTruncatedBelow, s.pid, s.idx, f)
			}
		}
	}
	restored, _ := c.Replica(0, 1)
	peer, _ := c.Replica(0, 0)
	if got, want := restored.Engine().Dynamic().Stats(), peer.Engine().Dynamic().Stats(); got != want {
		t.Fatalf("post-truncation restore diverged: %+v != %+v", got, want)
	}
}

// TestFailedSegmentWriteCarriesDirtForward pins the chain's hole-freedom
// under persistence failures: CaptureDelta drains the dirty sets, so a
// cut whose segment write fails must be merged into the next cut rather
// than dropped, or later restores would silently miss its keys.
func TestFailedSegmentWriteCarriesDirtForward(t *testing.T) {
	cfg := recoveryConfig(t, fig1Static())
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slot := c.slots[0][0]
	goodDir := replicaCkptDir(cfg.CheckpointDir, 0, 0)
	w := &ckptWriter{
		c:    c,
		slot: slot,
		dir:  filepath.Join(cfg.CheckpointDir, "no-such-parent", "dir"),
	}
	mkDelta := func(sweep int64, target graph.VertexID) *partition.Delta {
		return &partition.Delta{
			SweepClock: sweep,
			Users:      map[graph.VertexID][]motif.Candidate{},
			Items:      map[graph.VertexID]uint64{},
			Dynamic: dynstore.Delta{Targets: map[graph.VertexID][]dynstore.InEdge{
				target: {{B: 1, TS: 100 + sweep}},
			}},
		}
	}
	// First cut fails to persist (unwritable directory): the dirt parks.
	w.appendSegment(ckptJob{delta: mkDelta(1, 7), offset: 10})
	if w.pending == nil {
		t.Fatal("failed cut not parked in pending")
	}
	if len(w.man.segs) != 0 {
		t.Fatalf("failed cut still entered the manifest: %v", w.man.segs)
	}
	// Second cut persists and must carry the first cut's keys.
	w.dir = goodDir
	w.appendSegment(ckptJob{delta: mkDelta(2, 9), offset: 20})
	if w.pending != nil {
		t.Fatal("pending not cleared after successful segment")
	}
	if len(w.man.segs) != 1 {
		t.Fatalf("manifest has %d segments, want 1", len(w.man.segs))
	}
	st, used, offset := composeChain(goodDir, w.man.segs)
	if used != 1 || offset != 20 {
		t.Fatalf("composeChain = used %d offset %d", used, offset)
	}
	if _, ok := st.Targets[7]; !ok {
		t.Fatal("failed cut's target 7 missing from the chain (hole)")
	}
	if _, ok := st.Targets[9]; !ok {
		t.Fatal("second cut's target 9 missing from the chain")
	}
}

func TestClampChainPrefix(t *testing.T) {
	segs := []segmentRef{
		{kind: segKindBase, seq: 1, offset: 3},
		{kind: segKindDelta, seq: 2, offset: 7},
		{kind: segKindDelta, seq: 3, offset: 12},
	}
	for _, tc := range []struct {
		limit uint64
		want  int
	}{
		{0, 0}, {2, 0}, {3, 1}, {7, 2}, {11, 2}, {12, 3}, {100, 3},
	} {
		if got := clampChainPrefix(segs, tc.limit); got != tc.want {
			t.Fatalf("clampChainPrefix(limit=%d) = %d, want %d", tc.limit, got, tc.want)
		}
	}
	if got := clampChainPrefix(nil, 5); got != 0 {
		t.Fatalf("clampChainPrefix(nil) = %d", got)
	}
}

// TestDeliveryOffsetsPersistence covers the file the promoted-replica
// clamp reads: round trip, out-of-range groups, and the run-id gate that
// keeps a new cluster from trusting a previous run's offsets.
func TestDeliveryOffsetsPersistence(t *testing.T) {
	dir := t.TempDir()
	newCluster := func() *Cluster {
		cfg := recoveryConfig(t, fig1Static())
		cfg.CheckpointDir = dir
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := newCluster()
	c.persistDeliveryOffsets([]uint64{5, 9}, true)
	if got, ok := c.loadDeliveryOffset(0); !ok || got != 5 {
		t.Fatalf("loadDeliveryOffset(0) = %d, %v", got, ok)
	}
	if got, ok := c.loadDeliveryOffset(1); !ok || got != 9 {
		t.Fatalf("loadDeliveryOffset(1) = %d, %v", got, ok)
	}
	if _, ok := c.loadDeliveryOffset(2); ok {
		t.Fatal("out-of-range group reported ok")
	}
	// A different run must not trust this run's offsets.
	c2 := newCluster()
	if _, ok := c2.loadDeliveryOffset(0); ok {
		t.Fatal("foreign-run delivery offsets accepted")
	}
	// Absent file.
	os.Remove(deliveryOffsetsPath(dir))
	if _, ok := c.loadDeliveryOffset(0); ok {
		t.Fatal("absent delivery offsets reported ok")
	}
}

// TestRestoreReloadsOfflineStaticBuild is the wiring of
// statstore.ReadSnapshot into RestoreReplica: a replaying replica picks
// up the newer offline S build published for its partition instead of
// keeping the S it was constructed with.
func TestRestoreReloadsOfflineStaticBuild(t *testing.T) {
	static := ringStatic(40)
	cfg := recoveryConfig(t, static)
	snapDir := t.TempDir()
	cfg.StaticSnapshotDir = snapDir
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	stream := motifWorkload(61, 40, 200)
	half := len(stream) / 2
	for _, e := range stream[:half] {
		c.Publish(e)
	}

	// The offline pipeline publishes a richer build for partition 0:
	// the original edges plus a fresh follower per user, filtered to the
	// partition exactly as a production S shipment would be.
	richer := append([]graph.Edge{}, static...)
	for a := graph.VertexID(0); a < 40; a++ {
		richer = append(richer, graph.Edge{Src: a, Dst: (a + 3) % 40})
	}
	builder := &statstore.Builder{
		Keep: func(a graph.VertexID) bool { return c.part.PartitionOf(a) == 0 },
	}
	offline := builder.Build(richer)
	f, err := os.Create(staticSnapshotPath(snapDir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := statstore.WriteSnapshot(f, offline); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := c.KillReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	for _, e := range stream[half:] {
		c.Publish(e)
	}
	c.Stop()

	restored, _ := c.Replica(0, 1)
	got := restored.Engine().Static().Snapshot()
	if got.NumEdges() != offline.NumEdges() {
		t.Fatalf("restored replica serves S with %d edges, offline build has %d", got.NumEdges(), offline.NumEdges())
	}
	// Its peer — never restored — still serves the construction-time S.
	peer, _ := c.Replica(0, 0)
	if peerSnap := peer.Engine().Static().Snapshot(); peerSnap.NumEdges() == offline.NumEdges() {
		t.Fatal("vacuous: offline build indistinguishable from construction-time S")
	}
	if c.staticReloads.Value() != 1 {
		t.Fatalf("staticReloads = %d, want 1", c.staticReloads.Value())
	}
}
