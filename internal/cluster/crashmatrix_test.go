package cluster

import (
	"errors"
	"os"
	"testing"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/queue"
)

// The crash matrix is the executable form of the whole-system durability
// claim: the same seeded workload runs through a no-fault oracle cluster
// and through a cluster subjected to kill/restore/restart faults injected
// at a specific pipeline stage — mid-checkpoint, mid-compaction,
// mid-truncation, mid-replay, and across full-process restarts
// (Shutdown + Reopen of a brand-new Cluster value over the same durable
// directories) — and the delivered notification sets must be identical,
// with the touched replicas' D stores converging to the oracle's.

// durableConfig is recoveryConfig plus a durable firehose log with tiny
// segments, so restarts exercise WAL rotation and segment truncation.
func durableConfig(t *testing.T, static []graph.Edge) Config {
	t.Helper()
	cfg := recoveryConfig(t, static)
	cfg.LogDir = t.TempDir()
	cfg.LogSegmentBytes = 16 << 10
	cfg.LogSyncEvery = 64
	return cfg
}

// crashHarness drives one fault-injected run: it owns the stream cursor
// and the current Cluster value, which a restart replaces wholesale.
type crashHarness struct {
	t      *testing.T
	cfg    Config
	c      *Cluster
	stream []graph.Edge
	pos    int
}

func newCrashHarness(t *testing.T, cfg Config, stream []graph.Edge) *crashHarness {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	return &crashHarness{t: t, cfg: cfg, c: c, stream: stream}
}

// publishTo publishes stream events up to the given fraction of the run.
func (h *crashHarness) publishTo(frac float64) {
	h.t.Helper()
	end := int(frac * float64(len(h.stream)))
	for ; h.pos < end; h.pos++ {
		if err := h.c.Publish(h.stream[h.pos]); err != nil {
			h.t.Fatal(err)
		}
	}
}

// killAll kills replica idx of every partition.
func (h *crashHarness) killAll(idx int) {
	h.t.Helper()
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		if err := h.c.KillReplica(pid, idx); err != nil {
			h.t.Fatal(err)
		}
	}
}

// restoreAll restores replica idx of every partition.
func (h *crashHarness) restoreAll(idx int) {
	h.t.Helper()
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		if err := h.c.RestoreReplica(pid, idx); err != nil {
			h.t.Fatal(err)
		}
	}
}

// awaitAll waits for replica idx of every partition to reach live.
func (h *crashHarness) awaitAll(idx int) {
	h.t.Helper()
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		if err := h.c.AwaitReplicaLive(pid, idx, 30*time.Second); err != nil {
			h.t.Fatal(err)
		}
	}
}

// restart is the cross-process boundary: gracefully shut the current
// cluster down, then reopen a brand-new Cluster value over the same
// durable log and checkpoint directories.
func (h *crashHarness) restart() {
	h.t.Helper()
	if h.cfg.LogDir == "" {
		h.t.Fatal("restart needs a durable-log config")
	}
	h.c.Shutdown()
	c, err := Reopen(h.cfg)
	if err != nil {
		h.t.Fatalf("Reopen: %v", err)
	}
	h.c = c
}

// finish publishes the remainder of the stream, restores any replica the
// scenario left dead, and drains the cluster.
func (h *crashHarness) finish() {
	h.t.Helper()
	h.publishTo(1.0)
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		for r := 0; r < h.cfg.Replicas; r++ {
			if state, _ := h.c.ReplicaState(pid, r); state == "dead" {
				if err := h.c.RestoreReplica(pid, r); err != nil {
					h.t.Fatal(err)
				}
			}
		}
	}
	h.c.Shutdown()
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		for r := 0; r < h.cfg.Replicas; r++ {
			if state, _ := h.c.ReplicaState(pid, r); state != "live" {
				h.t.Fatalf("replica %d/%d state %q after drain, want live", pid, r, state)
			}
		}
	}
}

// assertSameNotes fails unless the fault run delivered exactly the oracle
// set, with matching multiplicities.
func assertSameNotes(t *testing.T, want, got map[noteKey]int) {
	t.Helper()
	if len(want) == 0 {
		t.Fatal("vacuous: oracle run delivered nothing")
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("notification %v delivered %d times in fault run, %d in oracle", k, got[k], n)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("fault run delivered %v, oracle did not", k)
		}
	}
}

// assertConverged compares every replica's D store against the oracle's.
func assertConverged(t *testing.T, fault, oracle *Cluster, cfg Config) {
	t.Helper()
	for pid := 0; pid < cfg.Partitions; pid++ {
		for r := 0; r < cfg.Replicas; r++ {
			got, _ := fault.Replica(pid, r)
			want, _ := oracle.Replica(pid, r)
			g := got.Engine().Dynamic().Stats()
			w := want.Engine().Dynamic().Stats()
			if g != w {
				t.Fatalf("partition %d replica %d D stats %+v != oracle %+v", pid, r, g, w)
			}
		}
	}
}

func TestCrashMatrix(t *testing.T) {
	const users = 50
	static := ringStatic(users)

	cases := []struct {
		name string
		// durable selects a disk-WAL firehose (required by restarts).
		durable bool
		// tune adjusts checkpoint cadence to pin the named pipeline stage.
		tune func(*Config)
		// fault drives the scenario between 0%% and 100%% of the stream;
		// finish() publishes the rest and drains.
		fault func(h *crashHarness)
		// verify runs extra non-vacuousness assertions on the drained
		// fault cluster.
		verify func(t *testing.T, h *crashHarness)
	}{
		{
			// Dense cuts: the async writers are persisting segments at the
			// moment the kill lands, so the restore composes a mid-flight
			// chain.
			name: "mid-checkpoint",
			tune: func(cfg *Config) { cfg.CheckpointInterval = time.Second },
			fault: func(h *crashHarness) {
				h.publishTo(0.4)
				h.killAll(1)
				h.publishTo(0.7)
				h.restoreAll(1)
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.Checkpoints == 0 {
					t.Fatal("vacuous: no checkpoints written")
				}
			},
		},
		{
			// Aggressive compaction: chains fold into fresh bases under
			// the kill and under the restore's chain composition.
			name: "mid-compaction",
			tune: func(cfg *Config) {
				cfg.CheckpointInterval = time.Second
				cfg.CompactEvery = 2
			},
			fault: func(h *crashHarness) {
				h.publishTo(0.35)
				h.killAll(1)
				h.publishTo(0.65)
				h.restoreAll(1)
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.Compactions == 0 {
					t.Fatal("vacuous: no compactions ran")
				}
			},
		},
		{
			// Compaction on every replica advances the cluster floor, so
			// the firehose log is actively truncated while replicas die
			// and rejoin — the restore's replay must stay above the
			// moving horizon.
			name: "mid-truncation",
			tune: func(cfg *Config) {
				cfg.CheckpointInterval = time.Second
				cfg.CompactEvery = 2
			},
			fault: func(h *crashHarness) {
				h.publishTo(0.5)
				h.killAll(0)
				h.publishTo(0.75)
				h.restoreAll(0)
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.LogTruncatedBelow == 0 {
					t.Fatal("vacuous: firehose log never truncated")
				}
			},
		},
		{
			// The second kill lands while the replica is replaying its
			// chain — the catch-up state machine is torn down mid-replay
			// and rebuilt.
			name: "mid-replay",
			tune: func(cfg *Config) { cfg.CheckpointInterval = 2 * time.Second },
			fault: func(h *crashHarness) {
				h.publishTo(0.3)
				h.killAll(1)
				h.publishTo(0.5)
				h.restoreAll(1) // starts replaying ~20% of the stream
				h.killAll(1)    // killed mid-replay
				h.publishTo(0.7)
				h.restoreAll(1)
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.Restores < 4 {
					t.Fatalf("expected two restore rounds, got %d restores", st.Restores)
				}
			},
		},
		{
			// The acceptance case: feed half the stream, Shutdown, Reopen
			// a brand-new Cluster value over the same directories, feed
			// the rest.
			name:    "cross-process-restart",
			durable: true,
			tune:    func(cfg *Config) { cfg.CheckpointInterval = 2 * time.Second },
			fault: func(h *crashHarness) {
				h.publishTo(0.5)
				h.restart()
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.Restores == 0 {
					t.Fatal("vacuous: reopen restored nothing")
				}
			},
		},
		{
			// Two restarts back to back, with compaction and log
			// truncation active across them: chains and the WAL's segment
			// horizon must stay consistent over repeated process
			// boundaries.
			name:    "double-restart-under-truncation",
			durable: true,
			tune: func(cfg *Config) {
				cfg.CheckpointInterval = time.Second
				cfg.CompactEvery = 2
			},
			fault: func(h *crashHarness) {
				h.publishTo(0.33)
				h.restart()
				h.publishTo(0.66)
				h.restart()
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.LogTruncatedBelow == 0 {
					t.Fatal("vacuous: firehose log never truncated")
				}
			},
		},
		{
			// Restart while a replica group member is dead: Shutdown cuts
			// finals only for the alive replicas, and Reopen resurrects
			// the dead one from its stale chain with a deeper replay.
			name:    "restart-with-dead-replica",
			durable: true,
			tune:    func(cfg *Config) { cfg.CheckpointInterval = time.Second },
			fault: func(h *crashHarness) {
				h.publishTo(0.4)
				h.killAll(1)
				h.publishTo(0.6)
				h.restart() // replica 1 of each partition is dead at shutdown
			},
		},
		{
			// Restart immediately after a restore, while the replica may
			// still be replaying: Shutdown drains the replay first, the
			// final cut covers it, and the reopened cluster continues.
			name:    "restart-mid-replay",
			durable: true,
			tune:    func(cfg *Config) { cfg.CheckpointInterval = 2 * time.Second },
			fault: func(h *crashHarness) {
				h.publishTo(0.3)
				h.killAll(1)
				h.publishTo(0.55)
				h.restoreAll(1)
				h.restart() // no await: replay may be in flight
			},
		},
	}

	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stream := motifWorkload(900+int64(i), users, 500)

			newCfg := func() Config {
				var cfg Config
				if tc.durable {
					cfg = durableConfig(t, static)
				} else {
					cfg = recoveryConfig(t, static)
				}
				if tc.tune != nil {
					tc.tune(&cfg)
				}
				return cfg
			}

			// Oracle: the identical configuration, fresh directories, no
			// faults.
			oracleCfg := newCfg()
			oracleNotes := collectNotes(&oracleCfg)
			oracle, err := New(oracleCfg)
			if err != nil {
				t.Fatal(err)
			}
			oracle.Start()
			for _, e := range stream {
				if err := oracle.Publish(e); err != nil {
					t.Fatal(err)
				}
			}
			oracle.Stop()

			// Fault run.
			faultCfg := newCfg()
			faultNotes := collectNotes(&faultCfg)
			h := newCrashHarness(t, faultCfg, stream)
			tc.fault(h)
			h.finish()

			assertSameNotes(t, oracleNotes(), faultNotes())
			assertConverged(t, h.c, oracle, faultCfg)
			if tc.verify != nil {
				tc.verify(t, h)
			}
		})
	}
}

// TestReopenBaseCorruptionForcesDeepReplay is the acceptance case's
// corruption arm: replicas idx 0 die before their first checkpoint cut
// (pinning the cluster floor at zero, so the durable log is never
// truncated), the surviving replicas compact real base segments, and
// after Shutdown every base on disk is bit-flipped. Reopen must detect
// the damage via the segment checksums, fall each chain back to scratch,
// and replay the entire durable log — delivering exactly the oracle set.
func TestReopenBaseCorruptionForcesDeepReplay(t *testing.T) {
	const users = 50
	static := ringStatic(users)
	stream := motifWorkload(77, users, 500)

	newCfg := func() Config {
		cfg := durableConfig(t, static)
		cfg.CheckpointInterval = time.Second
		cfg.CompactEvery = 2
		return cfg
	}

	oracleCfg := newCfg()
	oracleNotes := collectNotes(&oracleCfg)
	oracle, err := New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Start()
	for _, e := range stream {
		if err := oracle.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	oracle.Stop()

	faultCfg := newCfg()
	faultNotes := collectNotes(&faultCfg)
	h := newCrashHarness(t, faultCfg, stream)
	// Kill replica 0 of each partition before any checkpoint interval can
	// elapse: their floors stay zero, so the log retains offset 0 forever.
	h.publishTo(0.01)
	h.killAll(0)
	h.publishTo(0.6)
	if st := h.c.Stats(); st.LogTruncatedBelow != 0 {
		t.Fatalf("log truncated to %d despite a zero-floor replica", st.LogTruncatedBelow)
	}
	h.c.Shutdown()

	// Flip one byte in every base segment on disk.
	corrupted := 0
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		for r := 0; r < faultCfg.Replicas; r++ {
			dir := replicaCkptDir(faultCfg.CheckpointDir, pid, r)
			man, err := loadManifest(manifestPath(dir), h.c.runID)
			if err != nil || len(man.segs) == 0 {
				continue
			}
			if man.segs[0].kind != segKindBase {
				continue
			}
			path := segmentPath(dir, man.segs[0])
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/3] ^= 0x20
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("vacuous: no base segments to corrupt")
	}

	c, err := Reopen(faultCfg)
	if err != nil {
		t.Fatalf("Reopen over corrupt bases: %v", err)
	}
	h.c = c
	if st := c.Stats(); st.Restores == 0 {
		t.Fatal("vacuous: reopen restored nothing")
	}
	h.finish()

	assertSameNotes(t, oracleNotes(), faultNotes())
	assertConverged(t, h.c, oracle, faultCfg)
}

// TestReopenCorruptBaseAboveTruncatedLogFails pins the documented
// unrecoverable corner (docs/DURABILITY.md): once the durable log has
// been compacted past offset zero, a corrupt base leaves no restore point
// the log can back — Reopen must refuse with ErrTruncated instead of
// composing garbage.
func TestReopenCorruptBaseAboveTruncatedLogFails(t *testing.T) {
	const users = 40
	static := ringStatic(users)
	stream := motifWorkload(88, users, 400)

	cfg := durableConfig(t, static)
	cfg.Replicas = 1 // every replica compacts, so truncation advances
	cfg.CheckpointInterval = time.Second
	cfg.CompactEvery = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for _, e := range stream {
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	c.Shutdown()
	if st := c.Stats(); st.LogTruncatedBelow == 0 {
		t.Fatal("vacuous: log never truncated; the corruption would be recoverable")
	}

	// Corrupt partition 0's base segment.
	dir := replicaCkptDir(cfg.CheckpointDir, 0, 0)
	man, err := loadManifest(manifestPath(dir), c.runID)
	if err != nil || len(man.segs) == 0 || man.segs[0].kind != segKindBase {
		t.Fatalf("no base to corrupt: %v (%d segs)", err, len(man.segs))
	}
	path := segmentPath(dir, man.segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Reopen(cfg); !errors.Is(err, queue.ErrTruncated) {
		t.Fatalf("Reopen over corrupt base above truncated log = %v, want ErrTruncated", err)
	}
}

// TestReopenSeedsDeliveryFilter pins the mechanism behind restart
// exactly-once: the reopened delivery consumer starts from the persisted
// per-group high-water offsets, not zero.
func TestReopenSeedsDeliveryFilter(t *testing.T) {
	static := ringStatic(40)
	stream := motifWorkload(99, 40, 300)
	cfg := durableConfig(t, static)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for _, e := range stream {
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	c.Shutdown()
	if st := c.Stats(); st.Delivered == 0 {
		t.Fatal("vacuous: nothing delivered before restart")
	}

	c2, err := Reopen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()
	seeded := false
	for _, off := range c2.initialDelivery {
		if off > 0 {
			seeded = true
		}
	}
	if !seeded {
		t.Fatal("reopened cluster has all-zero delivery offsets")
	}
}
