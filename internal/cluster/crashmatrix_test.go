package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/queue"
)

// The crash matrix is the executable form of the whole-system durability
// claim: the same seeded workload runs through a no-fault oracle cluster
// and through a cluster subjected to kill/restore/restart faults injected
// at a specific pipeline stage — mid-checkpoint, mid-compaction,
// mid-truncation, mid-replay, and across full-process restarts
// (Shutdown + Reopen of a brand-new Cluster value over the same durable
// directories) — and the delivered notification sets must be identical,
// with the touched replicas' D stores converging to the oracle's.

// durableConfig is recoveryConfig plus a durable firehose log with tiny
// segments, so restarts exercise WAL rotation and segment truncation.
func durableConfig(t testing.TB, static []graph.Edge) Config {
	t.Helper()
	cfg := recoveryConfig(t, static)
	cfg.LogDir = t.TempDir()
	cfg.LogSegmentBytes = 16 << 10
	cfg.LogSyncEvery = 64
	return cfg
}

// crashHarness drives one fault-injected run: it owns the stream cursor
// and the current Cluster value, which a restart replaces wholesale.
type crashHarness struct {
	t      *testing.T
	cfg    Config
	c      *Cluster
	stream []graph.Edge
	pos    int
}

func newCrashHarness(t *testing.T, cfg Config, stream []graph.Edge) *crashHarness {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	return &crashHarness{t: t, cfg: cfg, c: c, stream: stream}
}

// publishTo publishes stream events up to the given fraction of the run.
func (h *crashHarness) publishTo(frac float64) {
	h.t.Helper()
	end := int(frac * float64(len(h.stream)))
	for ; h.pos < end; h.pos++ {
		if err := h.c.Publish(h.stream[h.pos]); err != nil {
			h.t.Fatal(err)
		}
	}
}

// killAll kills replica idx of every partition.
func (h *crashHarness) killAll(idx int) {
	h.t.Helper()
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		if err := h.c.KillReplica(pid, idx); err != nil {
			h.t.Fatal(err)
		}
	}
}

// restoreAll restores replica idx of every partition.
func (h *crashHarness) restoreAll(idx int) {
	h.t.Helper()
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		if err := h.c.RestoreReplica(pid, idx); err != nil {
			h.t.Fatal(err)
		}
	}
}

// awaitAll waits for replica idx of every partition to reach live.
func (h *crashHarness) awaitAll(idx int) {
	h.t.Helper()
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		if err := h.c.AwaitReplicaLive(pid, idx, 30*time.Second); err != nil {
			h.t.Fatal(err)
		}
	}
}

// reprovisionAll replaces the node of replica idx of every partition.
func (h *crashHarness) reprovisionAll(idx int) {
	h.t.Helper()
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		if err := h.c.ReprovisionReplica(pid, idx); err != nil {
			h.t.Fatal(err)
		}
	}
}

// addAll scales every partition out by one replica; all partitions must
// land on the same new index, which is returned.
func (h *crashHarness) addAll() int {
	h.t.Helper()
	idx := -1
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		got, err := h.c.AddReplica(pid)
		if err != nil {
			h.t.Fatal(err)
		}
		if idx == -1 {
			idx = got
		} else if got != idx {
			h.t.Fatalf("AddReplica returned index %d for partition %d, %d for earlier ones", got, pid, idx)
		}
	}
	return idx
}

// decommissionAll scales replica idx of every partition in.
func (h *crashHarness) decommissionAll(idx int) {
	h.t.Helper()
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		if err := h.c.DecommissionReplica(pid, idx); err != nil {
			h.t.Fatal(err)
		}
	}
}

// waitForBases waits until replica idx of every partition has a compacted
// base at the head of its durable chain (floor > 0) — the precondition
// for log truncation to advance and for the base pool to be non-empty.
func (h *crashHarness) waitForBases(idx int) {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		slot, err := h.c.slot(pid, idx)
		if err != nil {
			h.t.Fatal(err)
		}
		for {
			man, err := loadManifest(manifestPath(slot.dir), h.c.runID)
			if err == nil && len(man.segs) > 0 && man.segs[0].kind == segKindBase {
				break
			}
			if time.Now().After(deadline) {
				h.t.Fatalf("replica %d/%d never compacted a base", pid, idx)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// waitForTruncation waits until the firehose log's compaction horizon has
// advanced past zero. The async writers drive truncation, so this only
// converges once every replica's floor is positive (waitForBases).
func (h *crashHarness) waitForTruncation() {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for h.c.Stats().LogTruncatedBelow == 0 {
		if time.Now().After(deadline) {
			var floors []uint64
			for _, group := range h.c.slots {
				for _, s := range group {
					floors = append(floors, s.floor.Load())
				}
			}
			h.t.Fatalf("firehose log never truncated (floors %v, published %d)",
				floors, h.c.firehose.Published())
		}
		time.Sleep(time.Millisecond)
	}
}

// corruptBases flips a byte in every base segment of replica idx's chain
// and in every mirror file stored in its directory — "all local bases
// corrupt", the state of a machine whose disk went bad.
func (h *crashHarness) corruptBases(idx int) {
	h.t.Helper()
	corrupted := 0
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		slot, err := h.c.slot(pid, idx)
		if err != nil {
			h.t.Fatal(err)
		}
		man, err := loadManifest(manifestPath(slot.dir), h.c.runID)
		if err == nil {
			for _, seg := range man.segs {
				if seg.kind != segKindBase {
					continue
				}
				flipByte(h.t, segmentPath(slot.dir, seg))
				corrupted++
			}
		}
		mdir := filepath.Join(slot.dir, mirrorSubdir)
		if entries, err := os.ReadDir(mdir); err == nil {
			for _, e := range entries {
				flipByte(h.t, filepath.Join(mdir, e.Name()))
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		h.t.Fatal("vacuous: no base files to corrupt")
	}
}

func flipByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// restart is the cross-process boundary: gracefully shut the current
// cluster down, then reopen a brand-new Cluster value over the same
// durable log and checkpoint directories.
func (h *crashHarness) restart() {
	h.t.Helper()
	if h.cfg.LogDir == "" {
		h.t.Fatal("restart needs a durable-log config")
	}
	h.c.Shutdown()
	c, err := Reopen(h.cfg)
	if err != nil {
		h.t.Fatalf("Reopen: %v", err)
	}
	h.c = c
}

// finish publishes the remainder of the stream, restores any replica the
// scenario left dead, and drains the cluster. Membership may have changed
// mid-scenario, so the scans cover the live topology, and decommissioned
// tombstones are exempt from the all-live drain invariant.
func (h *crashHarness) finish() {
	h.t.Helper()
	h.publishTo(1.0)
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		for r := 0; r < h.c.Replicas(pid); r++ {
			if state, _ := h.c.ReplicaState(pid, r); state == "dead" {
				if err := h.c.RestoreReplica(pid, r); err != nil {
					h.t.Fatal(err)
				}
			}
		}
	}
	h.c.Shutdown()
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		for r := 0; r < h.c.Replicas(pid); r++ {
			if state, _ := h.c.ReplicaState(pid, r); state != "live" && state != "removed" {
				h.t.Fatalf("replica %d/%d state %q after drain, want live", pid, r, state)
			}
		}
	}
	h.assertFingerprints()
}

// assertFingerprints cross-checks every recorded state fingerprint across
// each partition's replicas (and asserts the pipeline's own checks found
// nothing): at every audited offset all replicas must have held
// bit-identical state. Called after the drain so the final cuts — which
// land at the common drained head — are recorded for every replica.
func (h *crashHarness) assertFingerprints() {
	h.t.Helper()
	if !h.c.audit {
		return
	}
	total := 0
	for pid := 0; pid < h.cfg.Partitions; pid++ {
		rep, err := h.c.VerifyFingerprints(pid)
		if err != nil {
			h.t.Fatalf("VerifyFingerprints(%d): %v", pid, err)
		}
		if len(rep.Mismatches) > 0 {
			h.t.Fatalf("partition %d: state fingerprint mismatches: %+v", pid, rep.Mismatches)
		}
		total += rep.Records
	}
	if total == 0 {
		h.t.Fatal("vacuous: audit enabled but no fingerprints recorded")
	}
	if n := h.c.Stats().AuditMismatches; n != 0 {
		h.t.Fatalf("pipeline detected %d fingerprint mismatches", n)
	}
}

// assertSameNotes fails unless the fault run delivered exactly the oracle
// set, with matching multiplicities.
func assertSameNotes(t *testing.T, want, got map[noteKey]int) {
	t.Helper()
	if len(want) == 0 {
		t.Fatal("vacuous: oracle run delivered nothing")
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("notification %v delivered %d times in fault run, %d in oracle", k, got[k], n)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("fault run delivered %v, oracle did not", k)
		}
	}
}

// assertConverged compares every (non-decommissioned) replica's D store
// against the oracle's. Oracle replicas are deterministic clones, so
// replica 0 stands for the whole group — which also covers fault-side
// replicas added by scale-out, which have no oracle counterpart by index.
func assertConverged(t *testing.T, fault, oracle *Cluster, cfg Config) {
	t.Helper()
	for pid := 0; pid < cfg.Partitions; pid++ {
		want, err := oracle.Replica(pid, 0)
		if err != nil {
			t.Fatal(err)
		}
		w := want.Engine().Dynamic().Stats()
		for r := 0; r < fault.Replicas(pid); r++ {
			if state, _ := fault.ReplicaState(pid, r); state == "removed" {
				continue
			}
			got, err := fault.Replica(pid, r)
			if err != nil {
				t.Fatalf("replica %d/%d: %v", pid, r, err)
			}
			g := got.Engine().Dynamic().Stats()
			if g != w {
				t.Fatalf("partition %d replica %d D stats %+v != oracle %+v", pid, r, g, w)
			}
		}
	}
}

func TestCrashMatrix(t *testing.T) {
	const users = 50
	static := ringStatic(users)

	cases := []struct {
		name string
		// durable selects a disk-WAL firehose (required by restarts).
		durable bool
		// tune adjusts checkpoint cadence to pin the named pipeline stage.
		tune func(*Config)
		// fault drives the scenario between 0%% and 100%% of the stream;
		// finish() publishes the rest and drains.
		fault func(h *crashHarness)
		// verify runs extra non-vacuousness assertions on the drained
		// fault cluster.
		verify func(t *testing.T, h *crashHarness)
	}{
		{
			// Dense cuts: the async writers are persisting segments at the
			// moment the kill lands, so the restore composes a mid-flight
			// chain.
			name: "mid-checkpoint",
			tune: func(cfg *Config) { cfg.CheckpointInterval = time.Second },
			fault: func(h *crashHarness) {
				h.publishTo(0.4)
				h.killAll(1)
				h.publishTo(0.7)
				h.restoreAll(1)
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.Checkpoints == 0 {
					t.Fatal("vacuous: no checkpoints written")
				}
			},
		},
		{
			// Aggressive compaction: chains fold into fresh bases under
			// the kill and under the restore's chain composition.
			name: "mid-compaction",
			tune: func(cfg *Config) {
				cfg.CheckpointInterval = time.Second
				cfg.CompactEvery = 2
			},
			fault: func(h *crashHarness) {
				h.publishTo(0.35)
				h.killAll(1)
				h.publishTo(0.65)
				h.restoreAll(1)
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.Compactions == 0 {
					t.Fatal("vacuous: no compactions ran")
				}
			},
		},
		{
			// Compaction on every replica advances the cluster floor, so
			// the firehose log is actively truncated while replicas die
			// and rejoin — the restore's replay must stay above the
			// moving horizon.
			name: "mid-truncation",
			tune: func(cfg *Config) {
				cfg.CheckpointInterval = time.Second
				cfg.CompactEvery = 2
			},
			fault: func(h *crashHarness) {
				h.publishTo(0.5)
				h.killAll(0)
				h.publishTo(0.75)
				h.restoreAll(0)
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.LogTruncatedBelow == 0 {
					t.Fatal("vacuous: firehose log never truncated")
				}
			},
		},
		{
			// The second kill lands while the replica is replaying its
			// chain — the catch-up state machine is torn down mid-replay
			// and rebuilt.
			name: "mid-replay",
			tune: func(cfg *Config) { cfg.CheckpointInterval = 2 * time.Second },
			fault: func(h *crashHarness) {
				h.publishTo(0.3)
				h.killAll(1)
				h.publishTo(0.5)
				h.restoreAll(1) // starts replaying ~20% of the stream
				h.killAll(1)    // killed mid-replay
				h.publishTo(0.7)
				h.restoreAll(1)
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.Restores < 4 {
					t.Fatalf("expected two restore rounds, got %d restores", st.Restores)
				}
			},
		},
		{
			// The acceptance case: feed half the stream, Shutdown, Reopen
			// a brand-new Cluster value over the same directories, feed
			// the rest.
			name:    "cross-process-restart",
			durable: true,
			tune:    func(cfg *Config) { cfg.CheckpointInterval = 2 * time.Second },
			fault: func(h *crashHarness) {
				h.publishTo(0.5)
				h.restart()
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.Restores == 0 {
					t.Fatal("vacuous: reopen restored nothing")
				}
			},
		},
		{
			// Two restarts back to back, with compaction and log
			// truncation active across them: chains and the WAL's segment
			// horizon must stay consistent over repeated process
			// boundaries.
			name:    "double-restart-under-truncation",
			durable: true,
			tune: func(cfg *Config) {
				cfg.CheckpointInterval = time.Second
				cfg.CompactEvery = 2
			},
			fault: func(h *crashHarness) {
				h.publishTo(0.33)
				h.restart()
				h.publishTo(0.66)
				h.restart()
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.LogTruncatedBelow == 0 {
					t.Fatal("vacuous: firehose log never truncated")
				}
			},
		},
		{
			// Restart while a replica group member is dead: Shutdown cuts
			// finals only for the alive replicas, and Reopen resurrects
			// the dead one from its stale chain with a deeper replay.
			name:    "restart-with-dead-replica",
			durable: true,
			tune:    func(cfg *Config) { cfg.CheckpointInterval = time.Second },
			fault: func(h *crashHarness) {
				h.publishTo(0.4)
				h.killAll(1)
				h.publishTo(0.6)
				h.restart() // replica 1 of each partition is dead at shutdown
			},
		},
		{
			// Restart immediately after a restore, while the replica may
			// still be replaying: Shutdown drains the replay first, the
			// final cut covers it, and the reopened cluster continues.
			name:    "restart-mid-replay",
			durable: true,
			tune:    func(cfg *Config) { cfg.CheckpointInterval = 2 * time.Second },
			fault: func(h *crashHarness) {
				h.publishTo(0.3)
				h.killAll(1)
				h.publishTo(0.55)
				h.restoreAll(1)
				h.restart() // no await: replay may be in flight
			},
		},
		{
			// Node replacement mid-stream: replica 1 of every partition
			// dies and is replaced entirely — new generation directory,
			// fresh S, state rebuilt from the partition's base pool plus
			// log replay — while the survivors keep compacting and
			// truncating underneath.
			name:    "reprovision-mid-stream",
			durable: true,
			tune: func(cfg *Config) {
				cfg.CheckpointInterval = time.Second
				cfg.CompactEvery = 2
				cfg.MirrorBases = 1
			},
			fault: func(h *crashHarness) {
				h.publishTo(0.4)
				h.killAll(1)
				h.publishTo(0.7)
				h.reprovisionAll(1)
			},
			verify: func(t *testing.T, h *crashHarness) {
				st := h.c.Stats()
				if st.Reprovisions == 0 {
					t.Fatal("vacuous: nothing reprovisioned")
				}
				if st.BaseMirrors == 0 {
					t.Fatal("vacuous: no bases mirrored")
				}
				// The replacement lives in a new generation directory.
				slot, err := h.c.slot(0, 1)
				if err != nil {
					t.Fatal(err)
				}
				if slot.gen == 0 {
					t.Fatal("reprovisioned replica kept generation 0")
				}
			},
		},
		{
			// The acceptance case: every base file of replica 1 — chain
			// bases and the mirrors stored on its disk — is corrupted
			// after its node dies, and the log has been truncated above
			// its floor, so neither its chain nor a scratch replay can
			// restore it. ReprovisionReplica must still bring it back via
			// the peers' base pool, oracle-equivalent.
			name:    "reprovision-all-local-bases-corrupt",
			durable: true,
			tune: func(cfg *Config) {
				cfg.CheckpointInterval = time.Second
				cfg.CompactEvery = 2
				cfg.MirrorBases = 1
				// Tiny WAL segments: truncation deletes whole segments, and
				// the dead replica's frozen floor must have whole segments
				// below it for the log to actually shrink mid-scenario.
				cfg.LogSegmentBytes = 2 << 10
			},
			fault: func(h *crashHarness) {
				h.publishTo(0.4)
				// Publishing is asynchronous (the firehose buffers), so let
				// every replica's compactor catch up far enough for whole
				// WAL segments to fall below the cluster floor before the
				// kill freezes replica 1's floors: after it, scratch
				// recovery (offset 0) is permanently below the log start.
				h.waitForTruncation()
				h.killAll(1)
				h.publishTo(0.7) // survivors keep compacting past the corpses
				h.corruptBases(1)
				h.reprovisionAll(1)
			},
			verify: func(t *testing.T, h *crashHarness) {
				st := h.c.Stats()
				if st.LogTruncatedBelow == 0 {
					t.Fatal("vacuous: log never truncated; plain replay would have sufficed")
				}
				if st.Reprovisions == 0 || st.BasePoolRestores == 0 {
					t.Fatalf("vacuous: reprovisions=%d pool restores=%d", st.Reprovisions, st.BasePoolRestores)
				}
			},
		},
		{
			// Live scale-out, then the original replicas die: the
			// scaled-out replica carries the group (the kill guard counts
			// it), and the dead originals restore as usual. Exactly-once
			// must hold across the membership change.
			name:    "scale-out-then-kill-original",
			durable: true,
			tune: func(cfg *Config) {
				cfg.CheckpointInterval = time.Second
				cfg.MirrorBases = 1
			},
			fault: func(h *crashHarness) {
				h.publishTo(0.3)
				idx := h.addAll()
				h.awaitAll(idx)
				h.publishTo(0.5)
				h.killAll(0)
				h.killAll(1) // only the scaled-out replica remains
				h.publishTo(0.8)
				h.restoreAll(0)
				h.restoreAll(1)
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.ScaleOuts == 0 {
					t.Fatal("vacuous: no scale-out happened")
				}
				if n := h.c.Replicas(0); n != 3 {
					t.Fatalf("partition 0 has %d replicas, want 3", n)
				}
			},
		},
		{
			// Live scale-in under load: an added replica takes over and an
			// original is decommissioned for good — no dupes, no losses,
			// and the tombstone never comes back (finish() asserts the
			// drain invariant around it).
			name:    "scale-out-scale-in",
			durable: true,
			tune: func(cfg *Config) {
				cfg.CheckpointInterval = time.Second
				cfg.MirrorBases = 1
			},
			fault: func(h *crashHarness) {
				h.publishTo(0.3)
				idx := h.addAll()
				h.awaitAll(idx)
				h.publishTo(0.6)
				h.decommissionAll(1)
			},
			verify: func(t *testing.T, h *crashHarness) {
				if st := h.c.Stats(); st.ScaleIns == 0 {
					t.Fatal("vacuous: no scale-in happened")
				}
				if state, _ := h.c.ReplicaState(0, 1); state != "removed" {
					t.Fatalf("decommissioned replica state = %q", state)
				}
			},
		},
	}

	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stream := motifWorkload(900+int64(i), users, 500)

			newCfg := func() Config {
				var cfg Config
				if tc.durable {
					cfg = durableConfig(t, static)
				} else {
					cfg = recoveryConfig(t, static)
				}
				if tc.tune != nil {
					tc.tune(&cfg)
				}
				return cfg
			}

			// Oracle: the identical configuration, fresh directories, no
			// faults.
			oracleCfg := newCfg()
			oracleNotes := collectNotes(&oracleCfg)
			oracle, err := New(oracleCfg)
			if err != nil {
				t.Fatal(err)
			}
			oracle.Start()
			for _, e := range stream {
				if err := oracle.Publish(e); err != nil {
					t.Fatal(err)
				}
			}
			oracle.Stop()

			// Fault run — on the batched worker-pool hot path, so every
			// matrix scenario doubles as a batched-vs-sequential
			// equivalence check (the oracle stays envelope-at-a-time).
			faultCfg := newCfg()
			faultCfg.ApplyBatch = 16
			faultCfg.ApplyWorkers = 2
			faultNotes := collectNotes(&faultCfg)
			h := newCrashHarness(t, faultCfg, stream)
			tc.fault(h)
			h.finish()

			assertSameNotes(t, oracleNotes(), faultNotes())
			assertConverged(t, h.c, oracle, faultCfg)
			if tc.verify != nil {
				tc.verify(t, h)
			}
		})
	}
}

// TestReopenBaseCorruptionForcesDeepReplay is the acceptance case's
// corruption arm: replicas idx 0 die before their first checkpoint cut
// (pinning the cluster floor at zero, so the durable log is never
// truncated), the surviving replicas compact real base segments, and
// after Shutdown every base on disk is bit-flipped. Reopen must detect
// the damage via the segment checksums, fall each chain back to scratch,
// and replay the entire durable log — delivering exactly the oracle set.
func TestReopenBaseCorruptionForcesDeepReplay(t *testing.T) {
	const users = 50
	static := ringStatic(users)
	stream := motifWorkload(77, users, 500)

	newCfg := func() Config {
		cfg := durableConfig(t, static)
		cfg.CheckpointInterval = time.Second
		cfg.CompactEvery = 2
		return cfg
	}

	oracleCfg := newCfg()
	oracleNotes := collectNotes(&oracleCfg)
	oracle, err := New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Start()
	for _, e := range stream {
		if err := oracle.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	oracle.Stop()

	faultCfg := newCfg()
	faultNotes := collectNotes(&faultCfg)
	h := newCrashHarness(t, faultCfg, stream)
	// Kill replica 0 of each partition before any checkpoint interval can
	// elapse: their floors stay zero, so the log retains offset 0 forever.
	h.publishTo(0.01)
	h.killAll(0)
	h.publishTo(0.6)
	if st := h.c.Stats(); st.LogTruncatedBelow != 0 {
		t.Fatalf("log truncated to %d despite a zero-floor replica", st.LogTruncatedBelow)
	}
	h.c.Shutdown()

	// Flip one byte in every base segment on disk.
	corrupted := 0
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		for r := 0; r < faultCfg.Replicas; r++ {
			dir := replicaCkptDir(faultCfg.CheckpointDir, pid, r)
			man, err := loadManifest(manifestPath(dir), h.c.runID)
			if err != nil || len(man.segs) == 0 {
				continue
			}
			if man.segs[0].kind != segKindBase {
				continue
			}
			path := segmentPath(dir, man.segs[0])
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/3] ^= 0x20
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("vacuous: no base segments to corrupt")
	}

	c, err := Reopen(faultCfg)
	if err != nil {
		t.Fatalf("Reopen over corrupt bases: %v", err)
	}
	h.c = c
	if st := c.Stats(); st.Restores == 0 {
		t.Fatal("vacuous: reopen restored nothing")
	}
	h.finish()

	assertSameNotes(t, oracleNotes(), faultNotes())
	assertConverged(t, h.c, oracle, faultCfg)
}

// TestReopenCorruptBaseAboveTruncatedLogFails pins the documented
// unrecoverable corner (docs/DURABILITY.md): once the durable log has
// been compacted past offset zero, a corrupt base leaves no restore point
// the log can back — Reopen must refuse with ErrTruncated instead of
// composing garbage.
func TestReopenCorruptBaseAboveTruncatedLogFails(t *testing.T) {
	const users = 40
	static := ringStatic(users)
	stream := motifWorkload(88, users, 400)

	cfg := durableConfig(t, static)
	cfg.Replicas = 1 // every replica compacts, so truncation advances
	cfg.CheckpointInterval = time.Second
	cfg.CompactEvery = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for _, e := range stream {
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	c.Shutdown()
	if st := c.Stats(); st.LogTruncatedBelow == 0 {
		t.Fatal("vacuous: log never truncated; the corruption would be recoverable")
	}

	// Corrupt partition 0's base segment.
	dir := replicaCkptDir(cfg.CheckpointDir, 0, 0)
	man, err := loadManifest(manifestPath(dir), c.runID)
	if err != nil || len(man.segs) == 0 || man.segs[0].kind != segKindBase {
		t.Fatalf("no base to corrupt: %v (%d segs)", err, len(man.segs))
	}
	path := segmentPath(dir, man.segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Reopen(cfg); !errors.Is(err, queue.ErrTruncated) {
		t.Fatalf("Reopen over corrupt base above truncated log = %v, want ErrTruncated", err)
	}
}

// repushEdges returns one motif completion for (user 0, item) in
// ringStatic space: users 1 and 2 — both followed by user 0 — acting on
// the item within the detection window, at the given stream time.
func repushEdges(item graph.VertexID, ts int64) []graph.Edge {
	return []graph.Edge{
		{Src: 1, Dst: item, Type: graph.Follow, TS: ts},
		{Src: 2, Dst: item, Type: graph.Follow, TS: ts + 1},
	}
}

func publishAll(t *testing.T, c *Cluster, edges []graph.Edge) {
	t.Helper()
	for _, e := range edges {
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestartRepushesSuppressed is the crash matrix's
// restart-repushes-suppressed scenario: a (user, item) pair pushed before
// a clean Shutdown must be DroppedDuplicate — not re-pushed — when the
// stream repeats the pair after Reopen. This is the restart
// duplicate-push window the durable delivery.state closes; before it the
// reopened pipeline's empty dedup LRU re-delivered the pair.
func TestRestartRepushesSuppressed(t *testing.T) {
	cfg := durableConfig(t, ringStatic(8))
	notes := collectNotes(&cfg)
	const item = graph.VertexID(500_000)
	const ts = int64(10_000_000)
	key := noteKey{0, item}

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	publishAll(t, c, repushEdges(item, ts))
	c.Shutdown()
	if got := notes()[key]; got != 1 {
		t.Fatalf("vacuous: (0,%d) delivered %d times before restart, want 1", item, got)
	}
	if st := c.Stats(); st.DeliveryStateCuts == 0 {
		t.Fatal("Shutdown cut no delivery state")
	}

	c2, err := Reopen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	publishAll(t, c2, repushEdges(item, ts+60_000))
	c2.Shutdown()

	if got := notes()[key]; got != 1 {
		t.Fatalf("(0,%d) delivered %d times across the restart, want 1 (re-push suppressed)", item, got)
	}
	if f := c2.Pipeline().Stats(); f.DroppedDuplicate == 0 {
		t.Fatalf("reopened funnel saw no duplicate drop: %+v", f)
	}
	if st := c2.Stats(); st.DeliveryStateRestores != 1 {
		t.Fatalf("DeliveryStateRestores = %d, want 1", st.DeliveryStateRestores)
	}
}

// TestRestartFatigueBudgetSurvives is the fatigue arm of the scenario: a
// user's daily push budget spent before Shutdown must still be spent
// after Reopen within the same stream day, not silently reset.
func TestRestartFatigueBudgetSurvives(t *testing.T) {
	cfg := durableConfig(t, ringStatic(8))
	cfg.Delivery.MaxPerUserPerDay = 1
	notes := collectNotes(&cfg)
	const itemA = graph.VertexID(500_000)
	const itemB = graph.VertexID(500_001)
	const ts = int64(10_000_000)

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	publishAll(t, c, repushEdges(itemA, ts))
	c.Shutdown()
	if got := notes()[noteKey{0, itemA}]; got != 1 {
		t.Fatalf("vacuous: first push delivered %d times, want 1", got)
	}

	// Same stream day, different item: the restored budget (1/1 spent)
	// must block it.
	c2, err := Reopen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	publishAll(t, c2, repushEdges(itemB, ts+120_000))
	c2.Shutdown()

	if got := notes()[noteKey{0, itemB}]; got != 0 {
		t.Fatalf("second push of the day delivered %d times across restart, want 0 (budget restored)", got)
	}
	if f := c2.Pipeline().Stats(); f.DroppedFatigue == 0 {
		t.Fatalf("reopened funnel saw no fatigue drop: %+v", f)
	}
}

// TestRestartCorruptDeliveryStateDegrades pins the failure contract: a
// corrupt (or missing) delivery.state must degrade Reopen to the
// pre-durable-state tolerance — the repeated pair is re-pushed once, the
// documented product-level-dedup corner — never fail the reopen.
func TestRestartCorruptDeliveryStateDegrades(t *testing.T) {
	cases := []struct {
		name   string
		damage func(t *testing.T, path string)
	}{
		{"corrupt", func(t *testing.T, path string) { flipByte(t, path) }},
		{"missing", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := durableConfig(t, ringStatic(8))
			notes := collectNotes(&cfg)
			const item = graph.VertexID(500_000)
			const ts = int64(10_000_000)
			key := noteKey{0, item}

			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c.Start()
			publishAll(t, c, repushEdges(item, ts))
			c.Shutdown()
			if got := notes()[key]; got != 1 {
				t.Fatalf("vacuous: delivered %d times before restart", got)
			}
			tc.damage(t, deliveryStatePath(cfg.CheckpointDir))

			c2, err := Reopen(cfg)
			if err != nil {
				t.Fatalf("Reopen over %s delivery.state: %v", tc.name, err)
			}
			publishAll(t, c2, repushEdges(item, ts+60_000))
			c2.Shutdown()

			if st := c2.Stats(); st.DeliveryStateRestores != 0 {
				t.Fatalf("DeliveryStateRestores = %d over %s state", st.DeliveryStateRestores, tc.name)
			}
			// Degraded semantics: the pair is re-pushed exactly once more.
			if got := notes()[key]; got != 2 {
				t.Fatalf("(0,%d) delivered %d times, want 2 (degraded tolerance)", item, got)
			}
		})
	}
}

// TestReopenSeedsDeliveryFilter pins the mechanism behind restart
// exactly-once: the reopened delivery consumer starts from the persisted
// per-group high-water offsets, not zero.
func TestReopenSeedsDeliveryFilter(t *testing.T) {
	static := ringStatic(40)
	stream := motifWorkload(99, 40, 300)
	cfg := durableConfig(t, static)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for _, e := range stream {
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	c.Shutdown()
	if st := c.Stats(); st.Delivered == 0 {
		t.Fatal("vacuous: nothing delivered before restart")
	}

	c2, err := Reopen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()
	seeded := false
	for _, off := range c2.initialDelivery {
		if off > 0 {
			seeded = true
		}
	}
	if !seeded {
		t.Fatal("reopened cluster has all-zero delivery offsets")
	}
}
