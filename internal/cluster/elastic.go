package cluster

// Elastic placement: the mechanisms behind internal/placement's model of
// replicas as placements on virtual nodes.
//
//   - ReprovisionReplica is node *replacement*: the old slot — its
//     in-memory state and its on-disk directory — is discarded entirely,
//     and a fresh replica is built on a new generation directory with a
//     fresh S, its state recovered from the partition's base pool plus
//     durable-log replay.
//   - mirrorBase is base *replication*: every base the compactor
//     publishes is copied (CRC-verified) into up to Config.MirrorBases
//     peer replica directories, so the partition keeps restore points
//     even when a machine or a base is lost.
//   - AddReplica / DecommissionReplica are live scale-out and scale-in:
//     membership changes under a flowing stream, with the new replica
//     catching up from the base pool and the delivery tier's per-group
//     offset filter keeping exactly-once across the transition.
//
// The base pool is the partition-wide set of potential restore points:
// every non-removed replica directory's own compacted base plus the
// mirror files pushed into it. Replicas of a partition are deterministic
// clones, so *any* CRC-valid base of the partition restores *any*
// replica — what matters is only that the durable log still extends it
// (base offset within [log start, head]).

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"motifstream/internal/codecutil"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
	"motifstream/internal/placement"
	"motifstream/internal/queue"
	"motifstream/internal/statstore"
)

// tombstone stands in for a decommissioned placement in the broker's
// replica groups, keeping member indices aligned with slot indices; it is
// permanently marked down and never serves.
type tombstone struct{ pid int }

func (t tombstone) RecommendationsFor(graph.VertexID) []motif.Candidate { return nil }
func (t tombstone) ID() int                                             { return t.pid }

// Partitions returns the number of partitions (placement.Elastic).
func (c *Cluster) Partitions() int { return len(c.slots) }

// Replicas returns partition pid's current replica count, decommissioned
// tombstones included — indices stay stable, so this is also the bound
// for ReplicaState scans (placement.Elastic).
func (c *Cluster) Replicas(pid int) int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	if pid < 0 || pid >= len(c.slots) {
		return 0
	}
	return len(c.slots[pid])
}

// mirrorSubdir is the subdirectory of a replica directory holding base
// mirrors pushed by peers.
const mirrorSubdir = "mirror"

// mirrorName formats a mirror file name: the source replica index (so a
// source's newer push retires only its own older ones) and the base's cut
// offset, zero-padded so lexical order is offset order.
func mirrorName(srcIdx int, offset uint64) string {
	return fmt.Sprintf("mirror-r%02d-%020d.seg", srcIdx, offset)
}

// parseMirrorName inverts mirrorName.
func parseMirrorName(name string) (srcIdx int, offset uint64, ok bool) {
	rest, found := strings.CutPrefix(name, "mirror-r")
	if !found {
		return 0, 0, false
	}
	rest, found = strings.CutSuffix(rest, ".seg")
	if !found {
		return 0, 0, false
	}
	idxStr, offStr, found := strings.Cut(rest, "-")
	if !found {
		return 0, 0, false
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 0 {
		return 0, 0, false
	}
	off, err := strconv.ParseUint(offStr, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return idx, off, true
}

// checksumOK verifies a base file's CRC32C trailer over its payload — the
// cheap byte-level gate mirror writes use; compose-time reads do the full
// structural decode.
func checksumOK(data []byte) bool {
	if len(data) < 4 {
		return false
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	want := uint32(trailer[0]) | uint32(trailer[1])<<8 | uint32(trailer[2])<<16 | uint32(trailer[3])<<24
	return codecutil.CRC32C(payload) == want
}

// mirrorBase replicates a freshly compacted base to up to
// Config.MirrorBases peer replica directories of the same partition.
// Called from the owning replica's writer goroutine after the base is
// published. Strictly best-effort: the source is CRC-verified before any
// push, each push is independent, and a failed one is counted and left
// where it tore (a crashed pusher would too — readers CRC-gate every
// mirror, so torn files are inert).
func (c *Cluster) mirrorBase(slot *replicaSlot, srcPath string, offset uint64) {
	budget := c.mirrorBases
	if budget <= 0 {
		return
	}
	data, err := os.ReadFile(srcPath)
	if err != nil || !checksumOK(data) {
		c.ckptErrors.Inc()
		return
	}
	// Snapshot peer directories under the topology lock; the writes
	// happen outside it. A peer decommissioned or reprovisioned between
	// the snapshot and the push at worst leaves garbage in a directory
	// about to be (or already) deleted — generation directories are never
	// reused, so nothing can ever resurrect it.
	c.topoMu.RLock()
	var peerDirs []string
	for _, s := range c.slots[slot.pid] {
		if s != slot && s.state.Load() != replicaRemoved && s.dir != "" {
			peerDirs = append(peerDirs, s.dir)
		}
	}
	c.topoMu.RUnlock()
	for _, peerDir := range peerDirs {
		if budget == 0 {
			break
		}
		dir := filepath.Join(peerDir, mirrorSubdir)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			c.ckptErrors.Inc()
			continue
		}
		if err := writeMirrorFile(filepath.Join(dir, mirrorName(slot.idx, offset)), data); err != nil {
			c.ckptErrors.Inc()
			continue
		}
		removeOlderMirrors(dir, slot.idx, offset)
		c.mirrorsOut.Inc()
		budget--
	}
}

// writeMirrorFile writes one mirror push. Unlike writeFileSync it does
// NOT remove the file on failure: a crashed pusher leaves a torn file on
// the peer's disk, and modeling that honestly is the point — readers
// CRC-gate every mirror before trusting it.
func writeMirrorFile(path string, data []byte) error {
	f, err := openSegFile(path)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// removeOlderMirrors retires srcIdx's mirrors older than newest — one
// live mirror per source bounds pool disk to MirrorBases extra bases per
// replica.
func removeOlderMirrors(dir string, srcIdx int, newest uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if idx, off, ok := parseMirrorName(e.Name()); ok && idx == srcIdx && off < newest {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// mirrorOffsets lists, per source replica, the replay point of the
// newest CRC-intact mirror base hosted in a replica directory's mirror
// subdir — the truncation floor scan's view of the base pool. Only the
// newest intact mirror per source counts: that is the file composeFromPool
// would actually install (it picks the newest base that passes the gate),
// so its offset is the pool's real claim on the log. Torn mirrors are
// deliberately excluded — they are inert for restore, and counting them
// would let a crashing pusher (whose retirement pass never ran) pin the
// firehose log at a dead offset forever.
func mirrorOffsets(dir string) []uint64 {
	mdir := filepath.Join(dir, mirrorSubdir)
	entries, err := os.ReadDir(mdir)
	if err != nil {
		return nil
	}
	// Per source, walk candidate offsets newest-first and take the first
	// file whose checksum holds. ReadDir returns names sorted, and
	// mirrorName zero-pads offsets, so per source the order is ascending.
	bySrc := make(map[int][]string)
	for _, e := range entries {
		if idx, _, ok := parseMirrorName(e.Name()); ok {
			bySrc[idx] = append(bySrc[idx], e.Name())
		}
	}
	var out []uint64
	for _, names := range bySrc {
		for i := len(names) - 1; i >= 0; i-- {
			data, err := os.ReadFile(filepath.Join(mdir, names[i]))
			if err != nil || !checksumOK(data) {
				continue
			}
			_, off, _ := parseMirrorName(names[i])
			out = append(out, off)
			break
		}
	}
	return out
}

// removeSourceMirrors retires every mirror srcIdx pushed into partition
// pid's replica directories. Called when the source placement is
// decommissioned: its mirrors would otherwise never be retired (only the
// source's own newer pushes retire them), and with the truncation floor
// counting mirror offsets an orphaned mirror would pin the firehose log
// forever.
func (c *Cluster) removeSourceMirrors(pid, srcIdx int) {
	c.topoMu.RLock()
	var dirs []string
	for _, s := range c.slots[pid] {
		if s.state.Load() != replicaRemoved && s.dir != "" {
			dirs = append(dirs, s.dir)
		}
	}
	c.topoMu.RUnlock()
	for _, dir := range dirs {
		mdir := filepath.Join(dir, mirrorSubdir)
		entries, err := os.ReadDir(mdir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if idx, _, ok := parseMirrorName(e.Name()); ok && idx == srcIdx {
				os.Remove(filepath.Join(mdir, e.Name()))
			}
		}
	}
}

// baseSource is one candidate restore point in a partition's base pool.
type baseSource struct {
	path   string
	offset uint64
}

// basePool lists every potential restore base for partition pid — each
// non-removed replica directory's own manifest base plus the mirrors
// pushed into it — newest offset first. Purely advisory: candidates are
// fully CRC-verified at compose time, so concurrent compaction retiring a
// file, a torn mirror push, or plain corruption just moves composition to
// the next candidate.
func (c *Cluster) basePool(pid int, exclude *replicaSlot) []baseSource {
	c.topoMu.RLock()
	var dirs []string
	for _, s := range c.slots[pid] {
		if s == exclude || s.state.Load() == replicaRemoved || s.dir == "" {
			continue
		}
		dirs = append(dirs, s.dir)
	}
	c.topoMu.RUnlock()
	var out []baseSource
	for _, dir := range dirs {
		if man, err := loadManifest(manifestPath(dir), c.runID); err == nil &&
			len(man.segs) > 0 && man.segs[0].kind == segKindBase {
			out = append(out, baseSource{path: segmentPath(dir, man.segs[0]), offset: man.segs[0].offset})
		}
		mdir := filepath.Join(dir, mirrorSubdir)
		entries, err := os.ReadDir(mdir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if _, off, ok := parseMirrorName(e.Name()); ok {
				out = append(out, baseSource{path: filepath.Join(mdir, e.Name()), offset: off})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].offset > out[j].offset })
	return out
}

// composeFromPool tries pool candidates newest-first and returns the
// first fully CRC-valid base whose offset the durable log extends
// (start ≤ offset ≤ head): the decoded state, the raw bytes (for
// re-seeding a chain), and the offset.
func composeFromPool(pool []baseSource, start, head uint64) (*partition.CheckpointState, []byte, uint64, bool) {
	for _, src := range pool {
		if src.offset < start || src.offset > head {
			continue
		}
		data, err := os.ReadFile(src.path)
		if err != nil {
			continue
		}
		st := partition.NewCheckpointState()
		if _, err := st.ReadBaseFrom(bytes.NewReader(data)); err != nil {
			continue
		}
		return st, data, src.offset, true
	}
	return nil, nil, 0, false
}

// seedChain installs a recovered base as a replica directory's entire
// durable chain: segment file first, then the manifest naming it — the
// writer's crash-safe order — continuing old's sequence numbers so file
// names never collide, and retiring old's now-unreferenced segments.
func (c *Cluster) seedChain(dir string, data []byte, offset uint64, old manifest) (manifest, error) {
	ref := segmentRef{kind: segKindBase, seq: old.nextSeq, offset: offset}
	if err := writeFileSync(segmentPath(dir, ref), func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		return manifest{}, err
	}
	man := manifest{segs: []segmentRef{ref}, nextSeq: old.nextSeq + 1}
	if err := man.write(manifestPath(dir), c.runID); err != nil {
		os.Remove(segmentPath(dir, ref))
		return manifest{}, err
	}
	for _, s := range old.segs {
		os.Remove(segmentPath(dir, s))
	}
	return man, nil
}

// buildFreshPartition constructs a replacement (or scale-out) replica's
// partition: S comes from the newest offline build in StaticSnapshotDir
// when one exists for the partition — a replacement machine boots the
// latest published S, it does not recompute history — else fresh from
// Config.StaticEdges.
func (c *Cluster) buildFreshPartition(pid int) (*partition.Partition, error) {
	var snap *statstore.Snapshot
	if dir := c.cfg.StaticSnapshotDir; dir != "" {
		s, err := statstore.LoadSnapshotFile(staticSnapshotPath(dir, pid))
		switch {
		case err == nil:
			snap = s
			c.staticReloads.Inc()
		case !os.IsNotExist(err):
			c.ckptErrors.Inc()
		}
	}
	return partition.New(partition.Config{
		ID:             pid,
		StaticEdges:    c.cfg.StaticEdges,
		StaticSnapshot: snap,
		Partitioner:    c.part,
		MaxInfluencers: c.cfg.MaxInfluencers,
		Dynamic:        c.cfg.Dynamic,
		Programs:       c.cfg.NewPrograms(),
		Metrics:        c.reg,
	})
}

// startPlacement brings a freshly provisioned placement — empty state,
// empty directory — to live: recover the newest usable base from the
// partition's base pool, seed the new chain with it, replay the log from
// its offset, and run the standard replaying → live machine. With no
// usable base the placement rebuilds from the log's start — sound only
// when that is offset zero; otherwise the gap is unrecoverable history
// and the documented ErrTruncated surfaces. The caller holds ctl and has
// already installed the fresh partition and directory on the slot.
func (c *Cluster) startPlacement(slot *replicaSlot) error {
	var (
		man    manifest
		offset uint64
	)
	start := c.firehose.LogStart()
	head := c.firehose.Published()
	st, data, off, ok := composeFromPool(c.basePool(slot.pid, slot), start, head)
	if ok {
		// Go-live fingerprint gate: a base's file CRC32C is by construction
		// the fingerprint of the state it encodes, so it must equal the
		// fingerprint the source replica recorded when it held that state
		// live. A mismatch means the pool would seed this placement with
		// state no replica ever held — refuse to go live rather than let a
		// diverged newcomer advance the group's delivery high-water. The
		// slot stays dead with its floor pinning the log; the operator can
		// retry once the pool heals.
		if c.audit {
			if want, found := c.recordedFingerprint(slot.pid, off); found && want != codecutil.CRC32C(data) {
				c.auditMismatches.Inc()
				return fmt.Errorf("cluster: replica %d/%d: pool base at offset %d has fingerprint %08x, source recorded %08x; refusing go-live",
					slot.pid, slot.idx, off, codecutil.CRC32C(data), want)
			}
		}
		man2, err := c.seedChain(slot.dir, data, off, manifest{})
		if err != nil {
			// Without a durable seed base the chain would silently
			// compose a hole (deltas cut after the install describe only
			// post-install changes); refuse rather than diverge.
			c.ckptErrors.Inc()
			return fmt.Errorf("cluster: replica %d/%d: seeding chain from base pool: %w", slot.pid, slot.idx, err)
		}
		man = man2
		offset = off
		slot.p.Load().LoadState(st)
		c.poolRestores.Inc()
	} else if start > 0 {
		return fmt.Errorf("cluster: replica %d/%d: no usable base in partition pool and log compacted below %d: %w",
			slot.pid, slot.idx, start, queue.ErrTruncated)
	}
	// Publish the floor and subscribe as one atomic step against the
	// writers' floor-scan-plus-truncate, exactly like RestoreReplica.
	c.truncMu.Lock()
	slot.floor.Store(man.floorOffset())
	target := c.firehose.Published()
	sub, err := c.firehose.SubscribeFrom(offset)
	c.truncMu.Unlock()
	if err != nil {
		return fmt.Errorf("cluster: replay from %d: %w", offset, err)
	}
	slot.sub = sub
	slot.quit = make(chan struct{})
	slot.stopped = make(chan struct{})
	slot.clock = ckptClock{}
	if c.ckptEveryMS > 0 {
		slot.writer = c.startWriter(slot, man)
	}
	if offset >= target {
		slot.state.Store(replicaLive)
		c.broker.MarkUp(slot.pid, slot.idx)
		close(slot.live)
	} else {
		slot.target = target
		slot.state.Store(replicaReplaying)
	}
	c.restores.Inc()
	c.wg.Add(1)
	go c.runReplica(slot)
	return nil
}

// ReprovisionReplica replaces a replica's node: the old placement — its
// in-memory state and its directory, chains, mirrors and all — is
// discarded, and a fresh replica is built on a new generation directory
// with a fresh S (from Config.StaticEdges, or the newest
// StaticSnapshotDir build), its state recovered from the partition's base
// pool plus durable-log replay through the standard replaying → live
// machine. A dead replica (the auto-healer's case) is replaced in place;
// a live one is first torn down like KillReplica, guarding the group's
// last alive copy. Must not be called concurrently with Stop.
func (c *Cluster) ReprovisionReplica(pid, r int) error {
	if c.cfg.CheckpointDir == "" {
		return ErrRecoveryDisabled
	}
	if c.networked() {
		return ErrNotLocal
	}
	slot, err := c.slot(pid, r)
	if err != nil {
		return err
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	switch slot.state.Load() {
	case replicaRemoved:
		return fmt.Errorf("cluster: replica %d/%d is decommissioned", pid, r)
	case replicaDead:
		// The node is already gone; replace it in place.
	default:
		if slot.quit == nil {
			return fmt.Errorf("cluster: replica %d/%d cannot be reprovisioned before Start", pid, r)
		}
		// Planned replacement of a running node: tear the consumer down
		// exactly like KillReplica, with the same last-alive guard.
		if c.aliveLocked(pid, slot) < 1 {
			return fmt.Errorf("cluster: cannot reprovision last alive replica of partition %d", pid)
		}
		slot.state.Store(replicaDead)
		close(slot.quit)
		c.firehose.Unsubscribe(slot.sub)
		<-slot.stopped
		stopWriterLocked(slot)
		c.broker.MarkDown(pid, r)
		slot.live = make(chan struct{})
	}
	if !c.started.Load() {
		return fmt.Errorf("cluster: replica %d/%d cannot be reprovisioned before Start", pid, r)
	}
	// The replacement machine: fresh partition, new generation directory.
	// The generation bump persists before anything touches disk, so even
	// a crash mid-provision leaves a restart opening the right (empty)
	// directory rather than the dead node's.
	p, err := c.buildFreshPartition(pid)
	if err != nil {
		return fmt.Errorf("cluster: reprovision %d/%d: %w", pid, r, err)
	}
	pl, err := c.table.Bump(pid, r)
	if err != nil {
		c.ckptErrors.Inc()
		return fmt.Errorf("cluster: reprovision %d/%d: placement table: %w", pid, r, err)
	}
	oldDir := slot.dir
	newDir := placement.Dir(c.cfg.CheckpointDir, pid, r, pl.Gen)
	if err := os.RemoveAll(newDir); err != nil {
		return fmt.Errorf("cluster: reprovision %d/%d: %w", pid, r, err)
	}
	if err := os.MkdirAll(newDir, 0o755); err != nil {
		return fmt.Errorf("cluster: reprovision %d/%d: %w", pid, r, err)
	}
	c.topoMu.Lock()
	slot.gen = pl.Gen
	slot.dir = newDir
	slot.p.Store(p)
	c.topoMu.Unlock()
	// The old machine's disk dies with the machine — including the
	// mirrors peers pushed onto it.
	if oldDir != "" {
		os.RemoveAll(oldDir)
	}
	if err := c.broker.ReplaceReplica(pid, r, p); err != nil {
		return err
	}
	c.reprovisions.Inc()
	return c.startPlacement(slot)
}

// AddReplica grows partition pid by one replica while the stream is
// flowing — live scale-out. The new replica is a fresh placement
// (generation 0 of a brand-new index, persisted in the placement table so
// restarts rebuild it) that catches up from the partition's base pool
// plus log replay and turns live exactly like a restored replica; the
// delivery tier's per-group offset filter makes its re-emitted candidate
// batches exactly-once by construction. Returns the new replica's index.
// Requires a started cluster; must not be called concurrently with Stop.
func (c *Cluster) AddReplica(pid int) (int, error) {
	if c.cfg.CheckpointDir == "" {
		return 0, ErrRecoveryDisabled
	}
	if c.networked() {
		return 0, ErrNotLocal
	}
	if pid < 0 || pid >= len(c.slots) {
		return 0, fmt.Errorf("cluster: partition %d out of range", pid)
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	if !c.started.Load() {
		return 0, fmt.Errorf("cluster: AddReplica requires a started cluster")
	}
	idx := len(c.slots[pid]) // stable: all topology mutations hold ctl
	// Fallible provisioning first, the table persist last: a failure here
	// leaves nothing recorded (an orphan directory at worst, wiped by the
	// next attempt), so a transient error never wedges the index; a crash
	// between the persist and the in-memory append restarts into a
	// replica with an empty directory — a scratch catch-up, the intended
	// end state.
	dir := placement.Dir(c.cfg.CheckpointDir, pid, idx, 0)
	if err := os.RemoveAll(dir); err != nil {
		return 0, fmt.Errorf("cluster: add replica %d/%d: %w", pid, idx, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("cluster: add replica %d/%d: %w", pid, idx, err)
	}
	p, err := c.buildFreshPartition(pid)
	if err != nil {
		return 0, fmt.Errorf("cluster: add replica %d/%d: %w", pid, idx, err)
	}
	pl, err := c.table.Add(pid, idx)
	if err != nil {
		os.RemoveAll(dir)
		return 0, fmt.Errorf("cluster: add replica %d/%d: placement table: %w", pid, idx, err)
	}
	slot := &replicaSlot{pid: pid, idx: idx, gen: pl.Gen, dir: dir, live: make(chan struct{})}
	slot.p.Store(p)
	slot.state.Store(replicaDead) // until catch-up wiring below
	// Membership first, with a floor of zero: from this instant the
	// truncation scan counts the newcomer, so the log cannot be compacted
	// out from under the catch-up startPlacement is about to begin.
	c.topoMu.Lock()
	c.slots[pid] = append(c.slots[pid], slot)
	c.topoMu.Unlock()
	if _, err := c.broker.AddReplica(pid, p); err != nil {
		return 0, err
	}
	c.scaleOuts.Inc()
	if err := c.startPlacement(slot); err != nil {
		// The slot stays dead (and its floor pins the log); the operator
		// can retry via RestoreReplica or ReprovisionReplica.
		return idx, err
	}
	return idx, nil
}

// DecommissionReplica removes a replica from service permanently — live
// scale-in. Its consumer is torn down like KillReplica's, its directory
// (with the mirrors peers pushed there) is deleted, and the placement
// table records a tombstone so the index is never reused and restarts do
// not rebuild it. The group's last alive replica cannot be removed. Must
// not be called concurrently with Stop.
func (c *Cluster) DecommissionReplica(pid, r int) error {
	if c.cfg.CheckpointDir == "" {
		return ErrRecoveryDisabled
	}
	if c.networked() {
		return ErrNotLocal
	}
	slot, err := c.slot(pid, r)
	if err != nil {
		return err
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	state := slot.state.Load()
	if state == replicaRemoved {
		return fmt.Errorf("cluster: replica %d/%d is already decommissioned", pid, r)
	}
	if state != replicaDead && slot.quit == nil {
		return fmt.Errorf("cluster: replica %d/%d cannot be decommissioned before Start", pid, r)
	}
	if c.aliveLocked(pid, slot) < 1 {
		return fmt.Errorf("cluster: cannot decommission last alive replica of partition %d", pid)
	}
	// Persist the tombstone while the replica still runs: a crash after
	// the save but before the teardown reopens without the replica —
	// exactly the end state.
	if err := c.table.Remove(pid, r); err != nil {
		c.ckptErrors.Inc()
		return fmt.Errorf("cluster: decommission %d/%d: placement table: %w", pid, r, err)
	}
	if state != replicaDead {
		close(slot.quit)
		c.firehose.Unsubscribe(slot.sub)
		<-slot.stopped
		stopWriterLocked(slot)
	}
	c.broker.MarkDown(pid, r)
	slot.state.Store(replicaRemoved)
	if p := slot.p.Load(); p != nil {
		p.Reset() // release the replica's memory; the slot object stays
	}
	slot.live = make(chan struct{})
	if slot.dir != "" {
		os.RemoveAll(slot.dir)
	}
	// Retire the mirrors this replica pushed to its peers: no source will
	// ever supersede them, and the truncation floor counts hosted mirrors.
	c.removeSourceMirrors(pid, r)
	c.scaleIns.Inc()
	return nil
}
