package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"motifstream/internal/codecutil"
	"motifstream/internal/graph"
	"motifstream/internal/partition"
	"motifstream/internal/placement"
	"motifstream/internal/statstore"
)

// The elasticity suite covers the placement subsystem's mechanisms
// directly: lifecycle guards, live scale-out/in, node replacement, base
// replication (including recovery of the previously documented
// unrecoverable corner), torn mirror pushes, and the auto-healer driving
// a real cluster. Oracle-equivalence under these faults lives in
// crashmatrix_test.go.

func TestElasticValidation(t *testing.T) {
	plain, err := New(testConfig(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.AddReplica(0); err != ErrRecoveryDisabled {
		t.Fatalf("AddReplica without CheckpointDir = %v", err)
	}
	if err := plain.ReprovisionReplica(0, 0); err != ErrRecoveryDisabled {
		t.Fatalf("ReprovisionReplica without CheckpointDir = %v", err)
	}
	if err := plain.DecommissionReplica(0, 0); err != ErrRecoveryDisabled {
		t.Fatalf("DecommissionReplica without CheckpointDir = %v", err)
	}

	cfg := recoveryConfig(t, ringStatic(40))
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddReplica(0); err == nil {
		t.Fatal("AddReplica before Start accepted")
	}
	if err := c.ReprovisionReplica(0, 0); err == nil {
		t.Fatal("ReprovisionReplica before Start accepted")
	}
	c.Start()
	defer c.Stop()

	if _, err := c.AddReplica(99); err == nil {
		t.Fatal("out-of-range AddReplica accepted")
	}
	if err := c.DecommissionReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if state, _ := c.ReplicaState(0, 1); state != "removed" {
		t.Fatalf("decommissioned state = %q", state)
	}
	if err := c.DecommissionReplica(0, 1); err == nil {
		t.Fatal("double decommission accepted")
	}
	if err := c.KillReplica(0, 1); err == nil {
		t.Fatal("killing a decommissioned replica accepted")
	}
	if err := c.RestoreReplica(0, 1); err == nil {
		t.Fatal("restoring a decommissioned replica accepted")
	}
	if err := c.ReprovisionReplica(0, 1); err == nil {
		t.Fatal("reprovisioning a decommissioned replica accepted")
	}
	if _, err := c.Replica(0, 1); err == nil {
		t.Fatal("Replica() on a decommissioned slot accepted")
	}
	if err := c.DecommissionReplica(0, 0); err == nil {
		t.Fatal("decommissioning the last alive replica accepted")
	}
	if err := c.ReprovisionReplica(0, 0); err == nil {
		t.Fatal("reprovisioning the last alive replica accepted")
	}
	// Scale back out: the tombstone's index is never reused.
	idx, err := c.AddReplica(0)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("AddReplica reused index %d", idx)
	}
	if err := c.AwaitReplicaLive(0, idx, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// With the newcomer alive, the formerly-last replica may be replaced.
	if err := c.ReprovisionReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitReplicaLive(0, 0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestAddReplicaCatchesUpAndServes pins live scale-out end to end: the
// new replica replays the stream so far, converges with its peers, and
// the broker serves reads from it.
func TestAddReplicaCatchesUpAndServes(t *testing.T) {
	cfg := recoveryConfig(t, ringStatic(40))
	cfg.CheckpointInterval = time.Second
	cfg.CompactEvery = 2
	cfg.MirrorBases = 1
	notes := collectNotes(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	stream := motifWorkload(61, 40, 400)
	half := len(stream) / 2
	for _, e := range stream[:half] {
		c.Publish(e)
	}
	idx, err := c.AddReplica(0)
	if err != nil {
		t.Fatal(err)
	}
	if idx != cfg.Replicas {
		t.Fatalf("new replica index %d, want %d", idx, cfg.Replicas)
	}
	if err := c.AwaitReplicaLive(0, idx, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.Broker().ReplicaHealthy(0, idx) {
		t.Fatal("scaled-out replica not broker-healthy after catch-up")
	}
	for _, e := range stream[half:] {
		c.Publish(e)
	}
	c.Stop()
	added, err := c.Replica(0, idx)
	if err != nil {
		t.Fatal(err)
	}
	peer, _ := c.Replica(0, 0)
	if got, want := added.Engine().Dynamic().Stats(), peer.Engine().Dynamic().Stats(); got != want {
		t.Fatalf("scaled-out replica diverged: %+v != %+v", got, want)
	}
	if len(notes()) == 0 {
		t.Fatal("vacuous: nothing delivered")
	}
	if st := c.Stats(); st.ScaleOuts != 1 {
		t.Fatalf("ScaleOuts = %d", st.ScaleOuts)
	}
}

// TestReopenRebuildsElasticTopology pins that membership and generations
// survive a whole-cluster restart: a reopened cluster rebuilds the added
// replica, keeps the tombstone gone, and opens the reprovisioned
// replica's generation directory.
func TestReopenRebuildsElasticTopology(t *testing.T) {
	static := ringStatic(40)
	cfg := durableConfig(t, static)
	cfg.CheckpointInterval = time.Second
	cfg.CompactEvery = 2
	cfg.MirrorBases = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	stream := motifWorkload(62, 40, 400)
	half := len(stream) / 2
	for _, e := range stream[:half] {
		c.Publish(e)
	}
	idx, err := c.AddReplica(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitReplicaLive(0, idx, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.DecommissionReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.ReprovisionReplica(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitReplicaLive(1, 1, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	reprovHead := c.firehose.Published()
	threeQ := 3 * len(stream) / 4
	for _, e := range stream[half:threeQ] {
		c.Publish(e)
	}
	c.Shutdown()
	// The reprovisioned replica's writer must have followed the slot to
	// its generation directory: no failed segment writes, and a chain in
	// the new dir whose head advanced past the reprovision point (cuts
	// kept landing after the replacement).
	if n := c.ckptErrors.Value(); n != 0 {
		t.Fatalf("%d checkpoint errors after reprovision (writer in the wrong directory?)", n)
	}
	man, err := loadManifest(manifestPath(placement.Dir(cfg.CheckpointDir, 1, 1, 1)), c.runID)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.segs) == 0 || man.segs[len(man.segs)-1].offset <= reprovHead {
		t.Fatalf("reprovisioned replica's chain never advanced past offset %d (%d segments)", reprovHead, len(man.segs))
	}

	c2, err := Reopen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := c2.Replicas(0); n != 3 {
		t.Fatalf("reopened partition 0 has %d replicas, want 3", n)
	}
	if state, _ := c2.ReplicaState(0, 1); state != "removed" {
		t.Fatalf("tombstone resurrected: state = %q", state)
	}
	slot, err := c2.slot(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slot.gen != 1 {
		t.Fatalf("reprovisioned replica reopened at generation %d, want 1", slot.gen)
	}
	if want := placement.Dir(cfg.CheckpointDir, 1, 1, 1); slot.dir != want {
		t.Fatalf("reopened dir %q, want %q", slot.dir, want)
	}
	for _, e := range stream[threeQ:] {
		c2.Publish(e)
	}
	c2.Stop()
	// Every surviving replica of partition 0 converges.
	ref, err := c2.Replica(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Engine().Dynamic().Stats()
	for _, r := range []int{2} {
		p, err := c2.Replica(0, r)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Engine().Dynamic().Stats(); got != want {
			t.Fatalf("replica 0/%d diverged after reopen: %+v != %+v", r, got, want)
		}
	}
}

// TestReopenAllBasesCorruptRecoversViaMirrors upgrades the documented
// unrecoverable corner (corrupt base above a truncated log ⇒
// ErrTruncated): with base replication on, every replica's own chain base
// can be corrupted — above a truncated log — and the reopen still
// recovers from the mirrors peers pushed, delivering exactly the oracle
// set. The mirror-less variant of this scenario is pinned as ErrTruncated
// by TestReopenCorruptBaseAboveTruncatedLogFails.
func TestReopenAllBasesCorruptRecoversViaMirrors(t *testing.T) {
	const users = 40
	static := ringStatic(users)
	stream := motifWorkload(63, users, 400)

	newCfg := func() Config {
		cfg := durableConfig(t, static)
		cfg.CheckpointInterval = time.Second
		cfg.CompactEvery = 2
		cfg.MirrorBases = 1
		cfg.LogSegmentBytes = 2 << 10
		return cfg
	}

	oracleCfg := newCfg()
	oracleNotes := collectNotes(&oracleCfg)
	oracle, err := New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Start()
	for _, e := range stream {
		oracle.Publish(e)
	}
	oracle.Stop()

	faultCfg := newCfg()
	faultNotes := collectNotes(&faultCfg)
	h := newCrashHarness(t, faultCfg, stream)
	h.publishTo(1.0)
	h.c.Shutdown()
	if st := h.c.Stats(); st.LogTruncatedBelow == 0 || st.BaseMirrors == 0 {
		t.Fatalf("vacuous: truncated below %d, mirrors %d", st.LogTruncatedBelow, st.BaseMirrors)
	}

	// Corrupt every replica's own chain base; leave the mirrors alone.
	corrupted := 0
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		for r := 0; r < faultCfg.Replicas; r++ {
			dir := replicaCkptDir(faultCfg.CheckpointDir, pid, r)
			man, err := loadManifest(manifestPath(dir), h.c.runID)
			if err != nil || len(man.segs) == 0 || man.segs[0].kind != segKindBase {
				continue
			}
			flipByte(t, segmentPath(dir, man.segs[0]))
			corrupted++
		}
	}
	if corrupted != faultCfg.Partitions*faultCfg.Replicas {
		t.Fatalf("corrupted %d bases, want %d", corrupted, faultCfg.Partitions*faultCfg.Replicas)
	}

	c, err := Reopen(faultCfg)
	if err != nil {
		t.Fatalf("Reopen over corrupt bases with mirrors available: %v", err)
	}
	h.c = c
	if st := c.Stats(); st.BasePoolRestores == 0 {
		t.Fatal("vacuous: nothing recovered via the base pool")
	}
	h.finish()

	assertSameNotes(t, oracleNotes(), faultNotes())
	assertConverged(t, h.c, oracle, faultCfg)
}

// TestReopenRecoversDespiteTornMirrorWrites is the errfs-lite crash case:
// every mirror push from replica 0 is torn mid-Write (the pusher's
// machine "crashes" inside the write, leaving a half file on the peer's
// disk). Recovery must CRC-gate the torn mirrors, recover from the intact
// ones, and stay oracle-equivalent.
func TestReopenRecoversDespiteTornMirrorWrites(t *testing.T) {
	const users = 40
	static := ringStatic(users)
	stream := motifWorkload(64, users, 400)

	newCfg := func() Config {
		cfg := durableConfig(t, static)
		cfg.CheckpointInterval = time.Second
		cfg.CompactEvery = 2
		cfg.MirrorBases = 1
		cfg.LogSegmentBytes = 2 << 10
		return cfg
	}

	// Oracle runs before the fault hook is armed (the hook is package
	// scoped and writers read it concurrently).
	oracleCfg := newCfg()
	oracleNotes := collectNotes(&oracleCfg)
	oracle, err := New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Start()
	for _, e := range stream {
		oracle.Publish(e)
	}
	oracle.Stop()

	// Arm the injector: every mirror push sourced from replica 0 fails
	// inside its first Write, leaving a torn file.
	orig := openSegFile
	openSegFile = func(path string) (codecutil.WriteSyncCloser, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(filepath.Base(path), "mirror-r00-") {
			return &codecutil.FailNth{F: f, FailWriteAt: 1}, nil
		}
		return f, nil
	}
	defer func() { openSegFile = orig }()

	faultCfg := newCfg()
	faultNotes := collectNotes(&faultCfg)
	h := newCrashHarness(t, faultCfg, stream)
	h.publishTo(1.0)
	h.c.Shutdown()
	if st := h.c.Stats(); st.LogTruncatedBelow == 0 || st.BaseMirrors == 0 {
		t.Fatalf("vacuous: truncated below %d, intact mirrors %d", st.LogTruncatedBelow, st.BaseMirrors)
	}

	// Replica 1's directories hold only replica 0's pushes — every one of
	// them torn — and the tear really left half files behind.
	torn := 0
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		mdir := filepath.Join(replicaCkptDir(faultCfg.CheckpointDir, pid, 1), mirrorSubdir)
		entries, err := os.ReadDir(mdir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(mdir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if checksumOK(data) {
				t.Fatalf("mirror %s survived the injected tear intact", e.Name())
			}
			torn++
		}
	}
	if torn == 0 {
		t.Fatal("vacuous: no torn mirror files on disk")
	}

	// Corrupt every primary base: recovery must come from the pool, and
	// the torn mirrors must be skipped for the intact ones.
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		for r := 0; r < faultCfg.Replicas; r++ {
			dir := replicaCkptDir(faultCfg.CheckpointDir, pid, r)
			man, err := loadManifest(manifestPath(dir), h.c.runID)
			if err != nil || len(man.segs) == 0 || man.segs[0].kind != segKindBase {
				t.Fatalf("replica %d/%d has no base to corrupt", pid, r)
			}
			flipByte(t, segmentPath(dir, man.segs[0]))
		}
	}

	c, err := Reopen(faultCfg)
	if err != nil {
		t.Fatalf("Reopen with only torn+intact mirrors: %v", err)
	}
	h.c = c
	if st := c.Stats(); st.BasePoolRestores == 0 {
		t.Fatal("vacuous: nothing recovered via the base pool")
	}
	h.finish()

	assertSameNotes(t, oracleNotes(), faultNotes())
	assertConverged(t, h.c, oracle, faultCfg)
}

// TestMirrorOnlySurvivorReplaysAfterTruncation pins the truncation
// floor's mirror-awareness. The regression it guards: maybeTruncateLog
// once counted only replica chain floors, so a stale-but-intact mirror —
// every newer push from its source torn mid-write — fell below the
// truncation horizon while both replicas' own floors marched on. The
// moment those chains corrupt, that mirror is the partition's only
// restore point, and with the log truncated past its offset the replay
// gap is gone for good. The floor must therefore count each source's
// newest intact mirror as a restore point.
func TestMirrorOnlySurvivorReplaysAfterTruncation(t *testing.T) {
	const users = 40
	static := ringStatic(users)
	stream := motifWorkload(65, users, 400)

	newCfg := func() Config {
		cfg := durableConfig(t, static)
		cfg.CheckpointInterval = time.Second
		cfg.CompactEvery = 2
		cfg.MirrorBases = 1
		cfg.LogSegmentBytes = 2 << 10
		return cfg
	}

	oracleCfg := newCfg()
	oracleNotes := collectNotes(&oracleCfg)
	oracle, err := New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Start()
	for _, e := range stream {
		oracle.Publish(e)
	}
	oracle.Stop()

	// Install the injector before the cluster starts (the hook is package
	// scoped and writers read it concurrently); the tear switches on
	// mid-run via the atomic flag.
	var tear atomic.Bool
	orig := openSegFile
	openSegFile = func(path string) (codecutil.WriteSyncCloser, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if tear.Load() && strings.HasPrefix(filepath.Base(path), "mirror-") {
			return &codecutil.FailNth{F: f, FailWriteAt: 1}, nil
		}
		return f, nil
	}
	defer func() { openSegFile = orig }()

	faultCfg := newCfg()
	faultNotes := collectNotes(&faultCfg)
	h := newCrashHarness(t, faultCfg, stream)
	h.publishTo(0.5)

	// Wait until every partition hosts at least one CRC-intact mirror;
	// those are the replay points that must survive truncation.
	intactMirrors := func(pid int) map[int]uint64 {
		// Newest intact mirror offset per source, across the partition's
		// replica directories — the floor scan's view of the pool.
		out := map[int]uint64{}
		for r := 0; r < faultCfg.Replicas; r++ {
			mdir := filepath.Join(replicaCkptDir(faultCfg.CheckpointDir, pid, r), mirrorSubdir)
			entries, err := os.ReadDir(mdir)
			if err != nil {
				continue
			}
			for _, e := range entries {
				idx, off, ok := parseMirrorName(e.Name())
				if !ok || off <= out[idx] {
					continue
				}
				if data, err := os.ReadFile(filepath.Join(mdir, e.Name())); err == nil && checksumOK(data) {
					out[idx] = off
				}
			}
		}
		return out
	}
	deadline := time.Now().Add(30 * time.Second)
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		for len(intactMirrors(pid)) == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("partition %d never hosted an intact mirror", pid)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Let the horizon pass zero before freezing the mirrors, so the
	// truncation machinery is demonstrably live in this run — otherwise
	// "the mirror was respected" would be indistinguishable from "nothing
	// ever truncated".
	h.waitForBases(0)
	h.waitForBases(1)
	h.waitForTruncation()

	// Arm the tear: from here every mirror push, from every source,
	// tears mid-write. The intact mirrors freeze at their mid-stream
	// offsets while both replicas' chain floors keep advancing.
	tear.Store(true)

	h.publishTo(1.0)
	h.c.Shutdown()

	st := h.c.Stats()
	if st.LogTruncatedBelow == 0 {
		t.Fatal("vacuous: the log was never truncated")
	}
	// The floor respected every frozen intact mirror, and for at least
	// one partition a chain floor advanced strictly past its pool's
	// replay point — i.e. the mirror really was the binding constraint
	// the old floor ignored.
	binding := false
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		for src, off := range intactMirrors(pid) {
			if off < st.LogTruncatedBelow {
				t.Fatalf("partition %d: intact mirror from r%02d at offset %d fell below the horizon %d",
					pid, src, off, st.LogTruncatedBelow)
			}
			for r := 0; r < faultCfg.Replicas; r++ {
				dir := replicaCkptDir(faultCfg.CheckpointDir, pid, r)
				if man, err := loadManifest(manifestPath(dir), h.c.runID); err == nil && man.floorOffset() > off {
					binding = true
				}
			}
		}
	}
	if !binding {
		t.Fatal("vacuous: no chain floor ever advanced past a frozen mirror")
	}

	// Corrupt every primary base: the frozen mirrors become the only
	// restore points, and recovery must replay the log from their
	// offsets — the span the old floor would have truncated away.
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		for r := 0; r < faultCfg.Replicas; r++ {
			dir := replicaCkptDir(faultCfg.CheckpointDir, pid, r)
			man, err := loadManifest(manifestPath(dir), h.c.runID)
			if err != nil || len(man.segs) == 0 || man.segs[0].kind != segKindBase {
				t.Fatalf("replica %d/%d has no base to corrupt", pid, r)
			}
			flipByte(t, segmentPath(dir, man.segs[0]))
		}
	}

	c, err := Reopen(faultCfg)
	if err != nil {
		t.Fatalf("Reopen with only stale mirrors: %v", err)
	}
	h.c = c
	if st := c.Stats(); st.BasePoolRestores == 0 {
		t.Fatal("vacuous: nothing recovered via the base pool")
	}
	h.finish()

	assertSameNotes(t, oracleNotes(), faultNotes())
	assertConverged(t, h.c, oracle, faultCfg)
}

// TestReprovisionBuildsFreshSFromSnapshotDir pins the fresh-S build path:
// a replacement node boots the newest offline S build instead of
// recomputing from the static edge set.
func TestReprovisionBuildsFreshSFromSnapshotDir(t *testing.T) {
	static := ringStatic(40)
	cfg := recoveryConfig(t, static)
	cfg.StaticSnapshotDir = t.TempDir()

	// Publish an offline build that differs from the configured edges:
	// every user follows three successors instead of two.
	var newer []graph.Edge
	for a := graph.VertexID(0); a < 40; a++ {
		for d := graph.VertexID(1); d <= 3; d++ {
			newer = append(newer, graph.Edge{Src: a, Dst: (a + d) % 40})
		}
	}
	part := partition.NewHashPartitioner(cfg.Partitions)
	for pid := 0; pid < cfg.Partitions; pid++ {
		builder := &statstore.Builder{Keep: func(a graph.VertexID) bool { return part.PartitionOf(a) == pid }}
		snap := builder.Build(newer)
		f, err := os.Create(staticSnapshotPath(cfg.StaticSnapshotDir, pid))
		if err != nil {
			t.Fatal(err)
		}
		if err := statstore.WriteSnapshot(f, snap); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	for _, e := range motifWorkload(65, 40, 100) {
		c.Publish(e)
	}
	before, _ := c.Replica(0, 1)
	beforeEdges := before.Engine().Static().Snapshot().NumEdges()
	if err := c.KillReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.ReprovisionReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitReplicaLive(0, 1, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	after, err := c.Replica(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	afterEdges := after.Engine().Static().Snapshot().NumEdges()
	if afterEdges <= beforeEdges {
		t.Fatalf("replacement S has %d edges, want more than the configured build's %d", afterEdges, beforeEdges)
	}
}

// TestHealerReprovisionsOnRealCluster wires the placement auto-healer to
// a live cluster: a killed replica is re-provisioned and returns to live
// without any operator call.
func TestHealerReprovisionsOnRealCluster(t *testing.T) {
	cfg := recoveryConfig(t, ringStatic(40))
	cfg.CheckpointInterval = time.Second
	cfg.CompactEvery = 2
	cfg.MirrorBases = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for _, e := range motifWorkload(66, 40, 200) {
		c.Publish(e)
	}
	healer := placement.NewHealer(c, placement.HealerOptions{
		After:    50 * time.Millisecond,
		Interval: 10 * time.Millisecond,
	})
	healer.Start()
	if err := c.KillReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if state, _ := c.ReplicaState(0, 1); state == "live" {
			break
		}
		if time.Now().After(deadline) {
			state, _ := c.ReplicaState(0, 1)
			t.Fatalf("healer never revived replica 0/1 (state %q)", state)
		}
		time.Sleep(5 * time.Millisecond)
	}
	healer.Stop() // before Stop: lifecycle calls must not race shutdown
	c.Stop()
	if healer.Healed() == 0 {
		t.Fatal("healer reports zero heals")
	}
	if st := c.Stats(); st.Reprovisions == 0 {
		t.Fatal("no reprovision recorded")
	}
	restored, _ := c.Replica(0, 1)
	peer, _ := c.Replica(0, 0)
	if got, want := restored.Engine().Dynamic().Stats(), peer.Engine().Dynamic().Stats(); got != want {
		t.Fatalf("healed replica diverged: %+v != %+v", got, want)
	}
}

// BenchmarkReprovision measures a full node replacement round: tear down
// a live replica, provision a fresh node from the partition's base pool,
// and replay to live.
func BenchmarkReprovision(b *testing.B) {
	static := ringStatic(40)
	cfg := recoveryConfig(b, static)
	cfg.CheckpointInterval = time.Second
	cfg.CompactEvery = 2
	cfg.MirrorBases = 1
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c.Start()
	for _, e := range motifWorkload(67, 40, 400) {
		if err := c.Publish(e); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ReprovisionReplica(0, 1); err != nil {
			b.Fatal(err)
		}
		if err := c.AwaitReplicaLive(0, 1, 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c.Stop()
}
