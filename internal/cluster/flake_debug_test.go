package cluster

// Diagnostic harness for the pre-existing scale-out-then-kill-original
// flake (see ROADMAP "Flake to investigate"): re-runs the scenario with
// the delivery filter's batch stream recorded, and on a delivered-set
// mismatch dumps the batch arrivals around the lost notification.
//
// Findings so far (reproduced at the PR 4 commit c06a27d with this same
// harness, so the defect predates PR 5): the lost pair's batch arrives
// at the filter exactly twice, both times as correctly-skipped replays
// from the restored original replicas — meaning (a) both originals were
// killed mid-buffer before emitting the offset live, and (b) the
// scaled-out replica, which subscribed well below the offset and was
// never killed, advanced the group's high-water past the offset without
// ever emitting the pair: its pool-composed state produced no (or
// different) candidates for that event. The divergence lives somewhere
// in the AddReplica base-pool compose/replay path. ~1-7%% reproduction
// per run under load; run with MOTIFSTREAM_FLAKE_HUNT=1 and -count=60.

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlakeHuntScaleOutKillOriginal(t *testing.T) {
	if os.Getenv("MOTIFSTREAM_FLAKE_HUNT") == "" {
		t.Skip("diagnostic for a known pre-existing flake; set MOTIFSTREAM_FLAKE_HUNT=1 to hunt")
	}
	const users = 50
	static := ringStatic(users)
	stream := motifWorkload(909, users, 500)

	newCfg := func() Config {
		cfg := durableConfig(t, static)
		cfg.CheckpointInterval = time.Second
		cfg.MirrorBases = 1
		return cfg
	}

	oracleCfg := newCfg()
	oracleNotes := collectNotes(&oracleCfg)
	oracle, err := New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Start()
	for _, e := range stream {
		if err := oracle.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	oracle.Stop()

	type arrival struct {
		pid   int
		off   uint64
		next  uint64
		cands string
	}
	var mu sync.Mutex
	var log []arrival
	deliveryDebug = func(msg candidateMsg, next uint64) {
		mu.Lock()
		s := ""
		for _, c := range msg.cands {
			s += fmt.Sprintf("(%d,%d)", c.User, c.Item)
		}
		log = append(log, arrival{pid: msg.pid, off: msg.offset, next: next, cands: s})
		mu.Unlock()
	}
	defer func() { deliveryDebug = nil }()

	faultCfg := newCfg()
	faultNotes := collectNotes(&faultCfg)
	h := newCrashHarness(t, faultCfg, stream)
	h.publishTo(0.3)
	idx := h.addAll()
	h.awaitAll(idx)
	h.publishTo(0.5)
	h.killAll(0)
	h.killAll(1)
	h.publishTo(0.8)
	h.restoreAll(0)
	h.restoreAll(1)
	h.finish()

	want, got := oracleNotes(), faultNotes()
	for k, n := range want {
		if got[k] != n {
			// Dump every arrival for the lost pair's offsets, plus the
			// arrivals that advanced the group filter past them.
			mu.Lock()
			var lostOff uint64
			var lostPid int
			for _, a := range log {
				if containsPair(a.cands, k) {
					lostOff, lostPid = a.off, a.pid
				}
			}
			for _, a := range log {
				if a.pid == lostPid && a.off+3 >= lostOff && a.off <= lostOff+3 {
					t.Logf("arrival pid=%d off=%d next=%d skipped=%v cands=%s",
						a.pid, a.off, a.next, a.off < a.next, a.cands)
				}
			}
			mu.Unlock()
			t.Fatalf("notification %v delivered %d times in fault run, %d in oracle", k, got[k], n)
		}
	}
}

func containsPair(s string, k noteKey) bool {
	return strings.Contains(s, fmt.Sprintf("(%d,%d)", k.user, k.item))
}
