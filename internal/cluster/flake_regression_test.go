package cluster

// Regression test for the scale-out-then-kill-original divergence (ROADMAP
// "Flake to investigate", fixed in PR 6). The root cause was a zombie cut:
// KillReplica stores replicaDead before closing quit, but the consumer's
// select could still drain buffered envelopes. applyEnvelope suppressed the
// candidate publish for those envelopes yet still ran the checkpoint cut,
// so a durable cut could claim offsets whose candidates were never handed
// to delivery. The restored replica resumed past the suppressed offset,
// and its first accepted emission jumped the group's high-water filter
// over the lost batch (~1-7% reproduction per run under load).
//
// applyEnvelope now gates the publish AND the cut on one state load, and
// the fingerprint audit layer asserts every replica's state agrees at
// every recorded offset. This scenario doubles as the nightly soak target
// (make soak-flake, -count=200).

import (
	"testing"
	"time"
)

func TestFlakeHuntScaleOutKillOriginal(t *testing.T) {
	const users = 50
	static := ringStatic(users)
	stream := motifWorkload(909, users, 500)

	newCfg := func() Config {
		cfg := durableConfig(t, static)
		cfg.CheckpointInterval = time.Second
		cfg.MirrorBases = 1
		cfg.Audit = true
		return cfg
	}

	oracleCfg := newCfg()
	oracleNotes := collectNotes(&oracleCfg)
	oracle, err := New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Start()
	for _, e := range stream {
		if err := oracle.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	oracle.Stop()

	faultCfg := newCfg()
	// The fault run uses the batched/parallel apply path: the zombie-cut
	// invariant (one state load gating publish AND cut) must hold in the
	// ordered-commit stage too, and the kill can now land mid-batch.
	faultCfg.ApplyBatch = 16
	faultCfg.ApplyWorkers = 2
	faultNotes := collectNotes(&faultCfg)
	h := newCrashHarness(t, faultCfg, stream)
	h.publishTo(0.3)
	idx := h.addAll()
	h.awaitAll(idx)
	h.publishTo(0.5)
	h.killAll(0)
	h.killAll(1)
	h.publishTo(0.8)
	h.restoreAll(0)
	h.restoreAll(1)

	// Before shutdown: every replica group's recorded fingerprints must
	// agree at every common offset — the audit layer's cross-replica check
	// is exactly the instrument that catches this divergence class.
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		rep, err := h.c.VerifyFingerprints(pid)
		if err != nil {
			t.Fatalf("VerifyFingerprints(%d): %v", pid, err)
		}
		if len(rep.Mismatches) > 0 {
			t.Fatalf("partition %d: fingerprint mismatches: %+v", pid, rep.Mismatches)
		}
	}
	h.finish()

	assertSameNotes(t, oracleNotes(), faultNotes())
}
