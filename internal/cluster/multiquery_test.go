package cluster

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/motifdsl"
)

// multiQueryDSL generates a seeded standing-query set whose plans share
// probe prefixes: follow families (one window+fanout each, several
// thresholds), a content family with per-type windows, and k=1
// broadcasts. Thresholds above the static fan-out never fire, which
// exercises the shared executor's early-exit paths alongside the hot ones.
func multiQueryDSL(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	id := 0
	windows := []string{"5m", "10m", "20m"}
	for f := 0; f < 2; f++ {
		w := windows[r.Intn(len(windows))]
		fan := 32 * (1 + r.Intn(2))
		for _, k := range []int{2, 3, 2 + r.Intn(3)} {
			id++
			fmt.Fprintf(&sb, `
motif "follow-%d" {
    match A -> B;
    match B =[follow]=> C within %s;
    where count(B) >= %d;
    emit C to A via B;
    limit fanout %d;
}`, id, w, k, fan)
		}
	}
	for _, k := range []int{2, 3} {
		id++
		fmt.Fprintf(&sb, `
motif "content-%d" {
    match A -> B;
    match B =[retweet]=> C within 5m;
    match B =[favorite]=> C within 15m;
    where count(B) >= %d;
    emit C to A via B;
    limit fanout 32;
    limit candidates 16;
}`, id, k)
	}
	for i := 0; i < 2; i++ {
		id++
		fmt.Fprintf(&sb, `
motif "broadcast-%d" {
    match A -> B;
    match B =[follow]=> C;
    where count(B) >= 1;
    emit C to A;
    limit candidates 8;
}`, id)
	}
	return sb.String()
}

// multiQueryPrograms returns a NewPrograms constructor for the seeded
// motif set, with a hand-written Diamond leading the registration order so
// grouped and ungrouped programs interleave.
func multiQueryPrograms(t testing.TB, seed int64) func() []motif.Program {
	t.Helper()
	src := multiQueryDSL(seed)
	if _, err := motifdsl.Compile(src); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return func() []motif.Program {
		progs, err := motifdsl.Compile(src)
		if err != nil {
			panic(err)
		}
		out := make([]motif.Program, 0, len(progs)+1)
		out = append(out, motif.NewDiamond(motif.DiamondConfig{
			Name: "oracle", K: 2, Window: 10 * time.Minute, MaxFanout: 64,
		}))
		return append(out, progs...)
	}
}

// fanStatic wires users 0..n-1 so each follows the next three, letting
// thresholds up to k=3 complete.
func fanStatic(n int) []graph.Edge {
	var static []graph.Edge
	for a := graph.VertexID(0); a < graph.VertexID(n); a++ {
		for d := graph.VertexID(1); d <= 3; d++ {
			static = append(static, graph.Edge{Src: a, Dst: (a + d) % graph.VertexID(n)})
		}
	}
	return static
}

// multiTypeWorkload is a seeded stream where 2-3 consecutive ring members
// act on a fresh target with mixed edge types, so follow families, content
// families, and broadcasts all fire. Stream time advances ~3s per step.
func multiTypeWorkload(seed int64, users, steps int) []graph.Edge {
	r := rand.New(rand.NewSource(seed))
	t0 := int64(10_000_000)
	var out []graph.Edge
	for i := 0; i < steps; i++ {
		b := graph.VertexID(r.Intn(users))
		target := graph.VertexID(200_000 + i)
		ts := t0 + int64(i)*3_000
		n := 2 + r.Intn(2)
		for j := 0; j < n; j++ {
			out = append(out, graph.Edge{
				Src:  (b + graph.VertexID(j)) % graph.VertexID(users),
				Dst:  target,
				Type: graph.EdgeType(r.Intn(3)),
				TS:   ts + int64(j),
			})
		}
	}
	return out
}

// TestMultiQuerySharedMatchesIndependent is the cluster-level multi-query
// differential: across randomized motif sets, seeds, and batch/worker
// configurations, a shared-trie cluster must deliver exactly the
// DisableSharing cluster's notification multiset and converge to
// bit-identical recoverable state (per-replica CRC32C fingerprints).
func TestMultiQuerySharedMatchesIndependent(t *testing.T) {
	const users = 40
	static := fanStatic(users)
	type variant struct {
		batch, workers int
	}
	variants := []variant{
		{batch: 1, workers: 1},
		{batch: 16, workers: 2},
		{batch: 64, workers: 4},
	}
	for _, seed := range []int64{5, 21} {
		stream := multiTypeWorkload(seed, users, 300)
		newProgs := multiQueryPrograms(t, seed)

		refCfg := recoveryConfig(t, static)
		refCfg.NewPrograms = newProgs
		refCfg.DisableSharing = true
		refNotes := collectNotes(&refCfg)
		ref, err := New(refCfg)
		if err != nil {
			t.Fatal(err)
		}
		ref.Start()
		for _, e := range stream {
			if err := ref.Publish(e); err != nil {
				t.Fatal(err)
			}
		}
		ref.Stop()

		for _, v := range variants {
			name := fmt.Sprintf("seed%d/batch%d_workers%d", seed, v.batch, v.workers)
			t.Run(name, func(t *testing.T) {
				cfg := recoveryConfig(t, static)
				cfg.NewPrograms = newProgs
				cfg.ApplyBatch = v.batch
				cfg.ApplyWorkers = v.workers
				notes := collectNotes(&cfg)
				c, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				c.Start()
				for _, e := range stream {
					if err := c.Publish(e); err != nil {
						t.Fatal(err)
					}
				}
				c.Stop()

				assertSameNotes(t, refNotes(), notes())
				for pid := 0; pid < cfg.Partitions; pid++ {
					for r := 0; r < cfg.Replicas; r++ {
						sp, err := c.Replica(pid, r)
						if err != nil {
							t.Fatal(err)
						}
						rp, err := ref.Replica(pid, r)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sp.Fingerprint()
						if err != nil {
							t.Fatal(err)
						}
						want, err := rp.Fingerprint()
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Errorf("partition %d replica %d: shared fingerprint %08x != independent %08x", pid, r, got, want)
						}
					}
				}
			})
		}
	}
}

// TestMultiQueryKillRestore extends the crash matrix to multi-motif
// configurations: a kill/checkpoint/restore/replay run over a shared-trie
// standing-query set must deliver the no-fault run's notification set
// exactly, and the recorded state fingerprints must cross-verify clean.
func TestMultiQueryKillRestore(t *testing.T) {
	const users = 50
	static := fanStatic(users)
	stream := multiTypeWorkload(33, users, 400)
	newProgs := multiQueryPrograms(t, 33)

	oracleCfg := recoveryConfig(t, static)
	oracleCfg.NewPrograms = newProgs
	oracleNotes := collectNotes(&oracleCfg)
	oracle, err := New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Start()
	for _, e := range stream {
		if err := oracle.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	oracle.Stop()

	faultCfg := recoveryConfig(t, static)
	faultCfg.NewPrograms = newProgs
	faultCfg.ApplyBatch = 16
	faultCfg.ApplyWorkers = 2
	faultNotes := collectNotes(&faultCfg)
	fault, err := New(faultCfg)
	if err != nil {
		t.Fatal(err)
	}
	fault.Start()
	killAt, restoreAt := len(stream)/3, 2*len(stream)/3
	for i, e := range stream {
		if i == killAt {
			for pid := 0; pid < faultCfg.Partitions; pid++ {
				if err := fault.KillReplica(pid, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		if i == restoreAt {
			for pid := 0; pid < faultCfg.Partitions; pid++ {
				if err := fault.RestoreReplica(pid, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := fault.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	fault.Stop()

	assertSameNotes(t, oracleNotes(), faultNotes())
	records := 0
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		rep, err := fault.VerifyFingerprints(pid)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Mismatches) > 0 {
			t.Fatalf("partition %d: fingerprint mismatches under multi-motif recovery: %+v", pid, rep.Mismatches)
		}
		records += rep.Records
		recovered, err := fault.Replica(pid, 1)
		if err != nil {
			t.Fatal(err)
		}
		reference, err := oracle.Replica(pid, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recovered.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		want, err := reference.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("partition %d: recovered fingerprint %08x != oracle %08x", pid, got, want)
		}
	}
	if records == 0 {
		t.Fatal("vacuous: audit recorded no fingerprints")
	}
}
