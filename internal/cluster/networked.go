package cluster

// Networked deployment tier: the same Cluster type can run as one of two
// out-of-process roles connected by internal/transport instead of
// in-process function calls.
//
//   - Hub (Config.Listen): owns the durable firehose WAL, the delivery
//     pipeline, the placement table, and the broker read tier. It runs no
//     replica consumers; every replica slot is remote, represented by a
//     dial-based broker member (transport.RemoteReplica) that a worker
//     process animates by attaching over TCP.
//   - Worker (Config.Join): owns replica detection state for an explicit
//     set of slots (Config.OwnedReplicas). Its firehose is a TCP feed
//     client against the hub's log; its candidates flow back over a
//     sequenced, cumulative-ack stream; its durable checkpoint chains
//     live in the shared CheckpointDir exactly where an in-process
//     replica's would.
//
// Topology is driven by the durable placement table: both roles load the
// same table from the shared CheckpointDir (gated by the hub log's
// identity), so generations and decommission tombstones agree, and a
// worker's chain directory is placement.Dir of its slot — the hub can
// audit fingerprints and scan mirror floors over the shared filesystem
// without owning the partitions.
//
// Exactly-once across the sockets needs no new machinery: envelope
// redelivery after a reconnect is dropped by the worker's next-offset
// filter, and re-sent candidate batches are collapsed by the delivery
// tier's per-group monotonic offset filter — the same filter that absorbs
// replica replays in process. The one genuinely new invariant is the
// checkpoint ack gate: a worker counts every candidate message before
// publishing it locally and refuses to cut a checkpoint until the hub has
// acked everything counted, so a durable cut can never cover an offset
// whose candidates existed only in a process that then died.

import (
	"errors"
	"fmt"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/queue"
	"motifstream/internal/transport"
)

// ErrNotLocal is returned by the replica lifecycle and elasticity calls
// in networked mode: replicas live in worker processes, so kills and
// restores are process starts and stops, not API calls on the hub.
var ErrNotLocal = errors.New("cluster: replica lifecycle is process-level in networked mode")

// edgeFeed is the cluster's view of the firehose: satisfied by the
// in-process queue.Topic and, on a worker, by transport.FeedClient.
type edgeFeed interface {
	Publish(e graph.Edge, carried time.Duration) error
	Subscribe() <-chan queue.Envelope[graph.Edge]
	SubscribeFrom(offset uint64) (<-chan queue.Envelope[graph.Edge], error)
	Unsubscribe(ch <-chan queue.Envelope[graph.Edge])
	Close()
	Published() uint64
	LogStart() uint64
	TruncateBelow(offset uint64) int
}

// hubState is the hub role's transport wiring.
type hubState struct {
	server       *transport.Server
	remotes      map[[2]int]*transport.RemoteReplica
	drainTimeout time.Duration
}

// workerState is the worker role's transport wiring.
type workerState struct {
	feed *transport.FeedClient
	fw   *transport.CandForwarder
	rs   *transport.ReplicaServer
	// subs maps owned slots to their feed subscriptions. Written during
	// Start before any consumer goroutine launches, read-only after.
	subs         map[[2]int]*transport.FeedSub
	owned        map[[2]int]bool
	drainTimeout time.Duration
}

// networked reports whether this cluster is a hub or worker process.
func (c *Cluster) networked() bool { return c.hub != nil || c.worker != nil }

// validateNetworked checks the Listen/Join configuration surface.
func validateNetworked(cfg Config) error {
	if cfg.Listen != "" && cfg.Join != "" {
		return fmt.Errorf("cluster: Listen and Join are mutually exclusive roles")
	}
	if cfg.Listen != "" {
		if cfg.LogDir == "" {
			return fmt.Errorf("cluster: Listen (hub mode) requires LogDir — workers restore against the durable log's identity")
		}
		if len(cfg.OwnedReplicas) > 0 {
			return fmt.Errorf("cluster: OwnedReplicas is a worker (Join) option")
		}
	}
	if cfg.Join != "" {
		if cfg.CheckpointDir == "" {
			return fmt.Errorf("cluster: Join (worker mode) requires the shared CheckpointDir")
		}
		if cfg.LogDir != "" {
			return fmt.Errorf("cluster: Join (worker mode) must not set LogDir — the hub owns the log")
		}
		if len(cfg.OwnedReplicas) == 0 {
			return fmt.Errorf("cluster: Join (worker mode) requires OwnedReplicas")
		}
		seen := make(map[[2]int]bool)
		for _, or := range cfg.OwnedReplicas {
			if or[0] < 0 || or[0] >= cfg.Partitions || or[1] < 0 {
				return fmt.Errorf("cluster: owned replica %d/%d out of range", or[0], or[1])
			}
			if seen[or] {
				return fmt.Errorf("cluster: owned replica %d/%d listed twice", or[0], or[1])
			}
			seen[or] = true
		}
	}
	return nil
}

func (cfg *Config) netTimeout() time.Duration {
	if cfg.NetTimeout > 0 {
		return cfg.NetTimeout
	}
	return 5 * time.Second
}

func (cfg *Config) netDrainTimeout() time.Duration {
	if cfg.NetDrainTimeout > 0 {
		return cfg.NetDrainTimeout
	}
	return 30 * time.Second
}

// newWorkerState builds the worker transport stack: the meta handshake
// (which yields the hub log's identity — the worker's runID), the
// candidate forwarder, and the read-RPC listener.
func newWorkerState(cfg Config, reg *metrics.Registry) (*workerState, error) {
	opts := transport.ClientOptions{
		DialTimeout: cfg.netTimeout(),
		RetryFor:    cfg.NetRetryFor,
		Metrics:     reg,
	}
	feed, err := transport.DialFeed(cfg.Join, opts)
	if err != nil {
		return nil, err
	}
	rs, err := transport.NewReplicaServer(cfg.ReadListen, reg)
	if err != nil {
		feed.Close()
		return nil, err
	}
	w := &workerState{
		feed:         feed,
		fw:           transport.NewCandForwarder(cfg.Join, feed.LogID(), opts),
		rs:           rs,
		subs:         make(map[[2]int]*transport.FeedSub),
		owned:        make(map[[2]int]bool, len(cfg.OwnedReplicas)),
		drainTimeout: cfg.netDrainTimeout(),
	}
	for _, or := range cfg.OwnedReplicas {
		w.owned[or] = true
	}
	return w, nil
}

func (w *workerState) close() {
	if w.fw != nil {
		w.fw.Close()
	}
	if w.feed != nil {
		w.feed.Close()
	}
	if w.rs != nil {
		w.rs.Close()
	}
}

// startHubServer binds the hub listener and wires the backend. Called
// last in New: accepting starts immediately, so the topology must be in
// place first.
func (c *Cluster) startHubServer(cfg Config) error {
	batch := cfg.ApplyBatch
	if batch < 1 {
		batch = 64
	}
	srv, err := transport.NewServer(transport.ServerConfig{
		Listen:       cfg.Listen,
		Backend:      hubBackend{c},
		BatchMax:     batch,
		HelloTimeout: cfg.netTimeout(),
		Metrics:      c.reg,
	})
	if err != nil {
		return err
	}
	c.hub.server = srv
	return nil
}

// ListenAddr returns the hub's bound listen address ("" on non-hubs) —
// needed when Listen was ":0".
func (c *Cluster) ListenAddr() string {
	if c.hub == nil || c.hub.server == nil {
		return ""
	}
	return c.hub.server.Addr()
}

// DropConnections severs every attached worker connection without
// closing the listener — a network-blip injection for fault harnesses.
// Workers observe a drop, retry-with-backoff, and resume from their
// sticky floors; redelivered envelopes and candidate batches are
// absorbed by the offset filters. Returns the number of connections
// severed; 0 on non-hubs.
func (c *Cluster) DropConnections() int {
	if c.hub == nil || c.hub.server == nil {
		return 0
	}
	return c.hub.server.DropConnections()
}

// hubBackend adapts the Cluster to the transport server's callback
// surface. All methods run on per-connection handler goroutines.
type hubBackend struct{ c *Cluster }

func (h hubBackend) LogMeta() (uint64, uint64, uint64) {
	return h.c.runID, h.c.firehose.Published(), h.c.firehose.LogStart()
}

func (h hubBackend) SubscribeFrom(offset uint64) (<-chan queue.Envelope[graph.Edge], error) {
	return h.c.firehose.SubscribeFrom(offset)
}

func (h hubBackend) Unsubscribe(ch <-chan queue.Envelope[graph.Edge]) {
	h.c.firehose.Unsubscribe(ch)
}

func (h hubBackend) ReplicaAttached(pid, r, gen int, readAddr string) error {
	c := h.c
	slot, err := c.slot(pid, r)
	if err != nil {
		return err
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	if slot.state.Load() == replicaRemoved {
		return fmt.Errorf("cluster: replica %d/%d is decommissioned", pid, r)
	}
	if gen != slot.gen {
		return fmt.Errorf("cluster: replica %d/%d generation %d is stale (placement table says %d)", pid, r, gen, slot.gen)
	}
	if rr := c.hub.remotes[[2]int{pid, r}]; rr != nil && readAddr != "" {
		rr.SetAddr(readAddr)
	}
	if slot.state.Load() == replicaDead {
		// Attached but not yet caught up: same broker-down catch-up state
		// the in-process restore machine uses.
		slot.state.Store(replicaReplaying)
	}
	return nil
}

func (h hubBackend) ReplicaLive(pid, r int) {
	c := h.c
	slot, err := c.slot(pid, r)
	if err != nil {
		return
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	switch slot.state.Load() {
	case replicaReplaying, replicaDead:
		slot.state.Store(replicaLive)
		c.broker.MarkUp(pid, r)
		close(slot.live)
	}
}

func (h hubBackend) ReplicaFloor(pid, r int, floor uint64) {
	c := h.c
	slot, err := c.slot(pid, r)
	if err != nil {
		return
	}
	for {
		cur := slot.floor.Load()
		if floor <= cur || slot.floor.CompareAndSwap(cur, floor) {
			break
		}
	}
	c.maybeTruncateLog()
}

func (h hubBackend) ReplicaDetached(pid, r int) {
	c := h.c
	slot, err := c.slot(pid, r)
	if err != nil {
		return
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	switch st := slot.state.Load(); st {
	case replicaLive, replicaReplaying:
		slot.state.Store(replicaDead)
		c.broker.MarkDown(pid, r)
		if st == replicaLive {
			// Fresh, open live channel for the next attach cycle.
			slot.live = make(chan struct{})
		}
	}
}

func (h hubBackend) DeliverCandidates(msgs []transport.CandMsg) error {
	for _, m := range msgs {
		cm := candidateMsg{pid: m.Pid, offset: m.Offset, pubNS: m.PubNS, cands: m.Cands}
		if err := h.c.candidates.Publish(cm, m.Delay); err != nil {
			return err
		}
	}
	return nil
}

// markLive flips a slot's read availability on the replaying→live
// transition: in-process that is a broker MarkUp; on a worker it is a
// live report to the hub (re-sent automatically after reconnects).
func (c *Cluster) markLive(slot *replicaSlot) {
	if c.worker != nil {
		if ws := c.worker.subs[[2]int{slot.pid, slot.idx}]; ws != nil {
			ws.NotifyLive()
		}
		return
	}
	c.broker.MarkUp(slot.pid, slot.idx)
}

// wireCand converts one local candidate envelope to its wire twin.
func wireCand(env queue.Envelope[candidateMsg]) transport.CandMsg {
	return transport.CandMsg{
		Pid:    env.Msg.pid,
		Offset: env.Msg.offset,
		PubNS:  env.Msg.pubNS,
		Delay:  env.VirtualDelay,
		Cands:  env.Msg.cands,
	}
}

// runForwarder is the worker-side replacement for runDelivery: it drains
// the local candidates topic, coalesces immediately-available messages
// into batches, and ships them through the sequenced/acked forwarder.
// On a clean shutdown (topic closed) it flushes and FINs so the hub's
// candidate drain completes; if the forwarder was aborted it keeps
// draining the topic so blocked publishers can exit.
func (c *Cluster) runForwarder(sub <-chan queue.Envelope[candidateMsg]) {
	defer c.deliverWG.Done()
	fw := c.worker.fw
	max := c.cfg.ApplyBatch
	if max < 16 {
		max = 16
	}
	batch := make([]transport.CandMsg, 0, max)
	sending := true
	closed := false
	for !closed {
		env, ok := <-sub
		if !ok {
			break
		}
		batch = append(batch[:0], wireCand(env))
		for len(batch) < cap(batch) {
			select {
			case env2, ok2 := <-sub:
				if !ok2 {
					closed = true
				} else {
					batch = append(batch, wireCand(env2))
					continue
				}
			default:
			}
			break
		}
		if sending && fw.Send(batch) != nil {
			sending = false
		}
	}
	if sending && !fw.Finish(c.worker.drainTimeout) {
		c.ckptErrors.Inc()
	}
}

// Wait blocks until the hub ends the stream (EOS on every feed), then
// runs the full durable stop: final checkpoint cuts gated on candidate
// acks, forwarder flush + FIN, listener teardown. This is a worker
// process's main loop — start, Wait, exit.
func (c *Cluster) Wait() error {
	if c.worker == nil {
		return fmt.Errorf("cluster: Wait is the worker-mode main loop")
	}
	c.wg.Wait()
	c.stop(true)
	return nil
}

// Abort tears a worker down as a crash would, at the durable-state level:
// connections drop (no FIN, no flush), consumers stop, NO final
// checkpoint cut. Pending already-gated cuts still drain to disk — like a
// kernel flushing a dying process's page cache. The crash-matrix harness
// uses this where the OS-process tests use SIGKILL.
func (c *Cluster) Abort() {
	if c.worker == nil {
		return
	}
	c.stopOnce.Do(func() {
		c.worker.fw.Abort()
		c.worker.feed.Close()
		c.wg.Wait()
		c.ctl.Lock()
		for _, group := range c.slots {
			for _, slot := range group {
				stopWriterLocked(slot)
			}
		}
		c.ctl.Unlock()
		c.candidates.Close()
		c.deliverWG.Wait()
		c.worker.rs.Close()
	})
}
