package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"motifstream/internal/delivery"
	"motifstream/internal/graph"
)

// hubConfig builds a networked hub over fresh (or given) directories with
// the recovery-test delivery settings.
func hubConfig(t testing.TB, partitions, replicas int, logDir, ckptDir string) Config {
	t.Helper()
	cfg := recoveryConfig(t, ringStatic(8))
	cfg.Partitions = partitions
	cfg.Replicas = replicas
	cfg.Listen = "127.0.0.1:0"
	cfg.LogDir = logDir
	cfg.CheckpointDir = ckptDir
	cfg.NetDrainTimeout = 20 * time.Second
	return cfg
}

// workerConfig builds a networked worker joined to addr, owning the given
// slots, over the hub's shared checkpoint directory.
func workerConfig(t testing.TB, hub Config, addr string, owned [][2]int) Config {
	t.Helper()
	cfg := hub
	cfg.Listen = ""
	cfg.LogDir = ""
	cfg.Join = addr
	cfg.OwnedReplicas = owned
	cfg.OnNotify = nil
	cfg.Metrics = nil
	return cfg
}

// startWorker constructs and starts a worker, returning it plus a join
// function that blocks until the worker's main loop exits (hub EOS).
func startWorker(t testing.TB, cfg Config) (*Cluster, func()) {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Wait(); err != nil {
			t.Errorf("worker Wait: %v", err)
		}
	}()
	return w, wg.Wait
}

// awaitAllLive waits for every non-removed hub slot to report live.
func awaitAllLive(t testing.TB, hub *Cluster) {
	t.Helper()
	for pid := range hub.slots {
		for r := range hub.slots[pid] {
			if hub.slots[pid][r].state.Load() == replicaRemoved {
				continue
			}
			if err := hub.AwaitReplicaLive(pid, r, 15*time.Second); err != nil {
				t.Fatalf("replica %d/%d never went live: %v", pid, r, err)
			}
		}
	}
}

// oracleNotes runs the same workload on a single-process durable cluster
// and returns its delivered set — the equivalence baseline.
func oracleNotes(t testing.TB, partitions, replicas int, edges []graph.Edge) map[noteKey]int {
	t.Helper()
	cfg := recoveryConfig(t, ringStatic(8))
	cfg.Partitions = partitions
	cfg.Replicas = replicas
	notes := collectNotes(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for _, e := range edges {
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	c.Stop()
	return notes()
}

func diffNotes(t testing.TB, want, got map[noteKey]int, label string) {
	t.Helper()
	if len(want) == 0 {
		t.Fatal("oracle delivered nothing; workload is too weak to compare")
	}
	for k := range want {
		if got[k] == 0 {
			t.Errorf("%s: missing notification user=%d item=%d", label, k.user, k.item)
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("%s: unexpected notification user=%d item=%d", label, k.user, k.item)
		} else if n != 1 {
			t.Errorf("%s: notification user=%d item=%d delivered %d times", label, k.user, k.item, n)
		}
	}
}

func verifyAllFingerprints(t testing.TB, hub *Cluster) {
	t.Helper()
	for pid := range hub.slots {
		rep, err := hub.VerifyFingerprints(pid)
		if err != nil {
			t.Fatalf("VerifyFingerprints(%d): %v", pid, err)
		}
		if len(rep.Mismatches) != 0 {
			t.Fatalf("partition %d fingerprint mismatches: %+v", pid, rep.Mismatches)
		}
	}
}

func TestNetworkedValidation(t *testing.T) {
	base := recoveryConfig(t, fig1Static())
	base.Partitions = 2

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"listen and join", func(c *Config) {
			c.Listen = "127.0.0.1:0"
			c.LogDir = t.TempDir()
			c.Join = "127.0.0.1:1"
			c.OwnedReplicas = [][2]int{{0, 0}}
		}},
		{"listen without logdir", func(c *Config) { c.Listen = "127.0.0.1:0" }},
		{"listen with owned", func(c *Config) { c.Listen = "127.0.0.1:0"; c.LogDir = t.TempDir(); c.OwnedReplicas = [][2]int{{0, 0}} }},
		{"join with logdir", func(c *Config) { c.Join = "127.0.0.1:1"; c.LogDir = t.TempDir(); c.OwnedReplicas = [][2]int{{0, 0}} }},
		{"join without owned", func(c *Config) { c.Join = "127.0.0.1:1" }},
		{"join without checkpoint dir", func(c *Config) { c.Join = "127.0.0.1:1"; c.OwnedReplicas = [][2]int{{0, 0}}; c.CheckpointDir = "" }},
		{"owned out of range", func(c *Config) { c.Join = "127.0.0.1:1"; c.OwnedReplicas = [][2]int{{9, 0}} }},
		{"owned duplicated", func(c *Config) { c.Join = "127.0.0.1:1"; c.OwnedReplicas = [][2]int{{0, 0}, {0, 0}} }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestNetworkedLifecycleOpsAreGated(t *testing.T) {
	hcfg := hubConfig(t, 2, 1, t.TempDir(), t.TempDir())
	hub, err := New(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Stop()
	hub.Start()

	wcfg := workerConfig(t, hcfg, hub.ListenAddr(), [][2]int{{0, 0}, {1, 0}})
	wk, joinWorker := startWorker(t, wcfg)
	awaitAllLive(t, hub)

	for name, op := range map[string]func(*Cluster) error{
		"KillReplica":         func(c *Cluster) error { return c.KillReplica(0, 0) },
		"RestoreReplica":      func(c *Cluster) error { return c.RestoreReplica(0, 0) },
		"ReprovisionReplica":  func(c *Cluster) error { return c.ReprovisionReplica(0, 0) },
		"DecommissionReplica": func(c *Cluster) error { return c.DecommissionReplica(0, 0) },
		"AddReplica":          func(c *Cluster) error { _, err := c.AddReplica(0); return err },
	} {
		if err := op(hub); !errors.Is(err, ErrNotLocal) {
			t.Errorf("hub %s = %v, want ErrNotLocal", name, err)
		}
		if err := op(wk); !errors.Is(err, ErrNotLocal) {
			t.Errorf("worker %s = %v, want ErrNotLocal", name, err)
		}
	}
	// Worker-side read and failover surfaces are hub business.
	if _, err := wk.RecommendationsFor(1); !errors.Is(err, ErrNotLocal) {
		t.Errorf("worker RecommendationsFor = %v, want ErrNotLocal", err)
	}
	if _, err := wk.TopItems(3); !errors.Is(err, ErrNotLocal) {
		t.Errorf("worker TopItems = %v, want ErrNotLocal", err)
	}
	if err := wk.FailReplica(0, 0); !errors.Is(err, ErrNotLocal) {
		t.Errorf("worker FailReplica = %v, want ErrNotLocal", err)
	}
	// A remote slot has no local partition handle.
	if _, err := hub.Replica(0, 0); err == nil {
		t.Error("hub Replica(0,0) returned a handle for a remote slot")
	}

	hub.Shutdown()
	joinWorker()
}

// TestNetworkedEndToEnd is the success bar's happy path: hub + one worker
// process boundary over real sockets, oracle delivered-set equivalence,
// fan-out reads through dial-based broker members, clean shutdown with
// final checkpoint cuts, clean fingerprint audit.
func TestNetworkedEndToEnd(t *testing.T) {
	edges := motifWorkload(42, 8, 120)
	want := oracleNotes(t, 2, 1, edges)

	hcfg := hubConfig(t, 2, 1, t.TempDir(), t.TempDir())
	notes := collectNotes(&hcfg)
	hub, err := New(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	hub.Start()
	if hub.ListenAddr() == "" {
		t.Fatal("hub has no listen address")
	}

	wcfg := workerConfig(t, hcfg, hub.ListenAddr(), [][2]int{{0, 0}, {1, 0}})
	_, joinWorker := startWorker(t, wcfg)
	awaitAllLive(t, hub)

	for _, e := range edges {
		if err := hub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}

	// Fan-out reads reach the worker over its read listener.
	deadline := time.Now().Add(10 * time.Second)
	for {
		top, err := hub.TopItems(5)
		if err != nil {
			t.Fatal(err)
		}
		if len(top) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("TopItems never returned data over the read RPC")
		}
		time.Sleep(20 * time.Millisecond)
	}
	var anyRecs bool
	for a := graph.VertexID(0); a < 8 && !anyRecs; a++ {
		recs, err := hub.RecommendationsFor(a)
		if err != nil {
			t.Fatal(err)
		}
		anyRecs = len(recs) > 0
	}

	hub.Shutdown()
	joinWorker()

	diffNotes(t, want, notes(), "networked")
	if !anyRecs {
		t.Error("no user returned recommendations over the read RPC")
	}
	verifyAllFingerprints(t, hub)
	if got := hub.Stats().Delivered; got == 0 {
		t.Error("hub delivered counter is zero")
	}
}

// TestNetworkedTwoWorkersRedundant runs a replicated topology split across
// two worker processes: every event is detected twice (once per worker),
// and the hub's per-group offset filter must still collapse delivery to
// exactly-once.
func TestNetworkedTwoWorkersRedundant(t *testing.T) {
	edges := motifWorkload(7, 8, 150)
	want := oracleNotes(t, 2, 2, edges)

	hcfg := hubConfig(t, 2, 2, t.TempDir(), t.TempDir())
	notes := collectNotes(&hcfg)
	hub, err := New(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	hub.Start()

	wcfgA := workerConfig(t, hcfg, hub.ListenAddr(), [][2]int{{0, 0}, {1, 0}})
	wcfgB := workerConfig(t, hcfg, hub.ListenAddr(), [][2]int{{0, 1}, {1, 1}})
	_, joinA := startWorker(t, wcfgA)
	_, joinB := startWorker(t, wcfgB)
	awaitAllLive(t, hub)

	for _, e := range edges {
		if err := hub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	hub.Shutdown()
	joinA()
	joinB()

	diffNotes(t, want, notes(), "two-workers")
	verifyAllFingerprints(t, hub)
}

// TestNetworkedConnectionDrops injects repeated network blips — every
// worker connection severed mid-stream — and requires the reconnect path
// (idempotent envelope redelivery, candidate resend, sticky live reports)
// to keep the delivered set byte-equal to the no-fault oracle.
func TestNetworkedConnectionDrops(t *testing.T) {
	edges := motifWorkload(11, 8, 200)
	want := oracleNotes(t, 2, 1, edges)

	hcfg := hubConfig(t, 2, 1, t.TempDir(), t.TempDir())
	notes := collectNotes(&hcfg)
	hub, err := New(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	hub.Start()

	wcfg := workerConfig(t, hcfg, hub.ListenAddr(), [][2]int{{0, 0}, {1, 0}})
	wk, joinWorker := startWorker(t, wcfg)
	awaitAllLive(t, hub)

	for i, e := range edges {
		if err := hub.Publish(e); err != nil {
			t.Fatal(err)
		}
		if i%60 == 59 {
			if n := hub.DropConnections(); n == 0 {
				t.Fatalf("drop %d severed no connections", i)
			}
		}
	}
	hub.Shutdown()
	joinWorker()

	diffNotes(t, want, notes(), "conn-drops")
	verifyAllFingerprints(t, hub)
	if rec := wk.Metrics().Counter("transport.reconnects").Value(); rec == 0 {
		t.Error("worker recorded no reconnects despite injected drops")
	}
}

// TestNetworkedWorkerCrashRestart is the crash-matrix leg over real
// sockets: one of two redundant workers dies mid-stream (Abort — the
// in-process equivalent of SIGKILL: sockets drop, no flush, no final
// cut), the surviving worker covers delivery, and a restarted worker
// process recovers from its durable chains, replays the hub log, and goes
// live — with the delivered set still exactly the no-fault oracle's.
func TestNetworkedWorkerCrashRestart(t *testing.T) {
	edges := motifWorkload(23, 8, 240)
	want := oracleNotes(t, 2, 2, edges)

	hcfg := hubConfig(t, 2, 2, t.TempDir(), t.TempDir())
	notes := collectNotes(&hcfg)
	hub, err := New(hcfg)
	if err != nil {
		t.Fatal(err)
	}
	hub.Start()

	wcfgA := workerConfig(t, hcfg, hub.ListenAddr(), [][2]int{{0, 0}, {1, 0}})
	wcfgB := workerConfig(t, hcfg, hub.ListenAddr(), [][2]int{{0, 1}, {1, 1}})
	_, joinA := startWorker(t, wcfgA)
	wkB, _ := startWorker(t, wcfgB)
	awaitAllLive(t, hub)

	third := len(edges) / 3
	for _, e := range edges[:third] {
		if err := hub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}

	wkB.Abort() // crash: connections drop, unflushed state is lost

	for _, e := range edges[third : 2*third] {
		if err := hub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	// The hub marks B's slots dead when the sockets drop (the feed
	// handlers notice the sever asynchronously).
	for pid := 0; pid < 2; pid++ {
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, err := hub.ReplicaState(pid, 1)
			if err != nil {
				t.Fatal(err)
			}
			if st == "dead" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("crashed worker's slot %d/1 state = %q, want dead", pid, st)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Restart: a fresh worker process over the same shared directories.
	wkB2, joinB2 := startWorker(t, wcfgB)
	if err := hub.AwaitReplicaLive(0, 1, 20*time.Second); err != nil {
		t.Fatalf("restarted worker 0/1: %v", err)
	}
	if err := hub.AwaitReplicaLive(1, 1, 20*time.Second); err != nil {
		t.Fatalf("restarted worker 1/1: %v", err)
	}
	if wkB2.Stats().Restores == 0 {
		t.Error("restarted worker recorded no restores")
	}

	for _, e := range edges[2*third:] {
		if err := hub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	hub.Shutdown()
	joinA()
	joinB2()

	diffNotes(t, want, notes(), "crash-restart")
	verifyAllFingerprints(t, hub)
}

// TestNetworkedFullRestart shuts the whole deployment down cleanly and
// brings it back over the same directories: the hub reopens its durable
// log and delivery offsets, workers recompose their chains, and a second
// workload stretch delivers exactly-once overall.
func TestNetworkedFullRestart(t *testing.T) {
	edges := motifWorkload(31, 8, 160)
	want := oracleNotes(t, 2, 1, edges)
	half := len(edges) / 2

	logDir, ckptDir := t.TempDir(), t.TempDir()
	total := map[noteKey]int{}
	var mu sync.Mutex

	runStretch := func(stretch []graph.Edge) {
		hcfg := hubConfig(t, 2, 1, logDir, ckptDir)
		hcfg.OnNotify = func(n delivery.Notification) {
			mu.Lock()
			total[noteKey{n.Candidate.User, n.Candidate.Item}]++
			mu.Unlock()
		}
		hub, err := New(hcfg)
		if err != nil {
			t.Fatal(err)
		}
		hub.Start()
		wcfg := workerConfig(t, hcfg, hub.ListenAddr(), [][2]int{{0, 0}, {1, 0}})
		_, joinWorker := startWorker(t, wcfg)
		awaitAllLive(t, hub)
		for _, e := range stretch {
			if err := hub.Publish(e); err != nil {
				t.Fatal(err)
			}
		}
		hub.Shutdown()
		joinWorker()
		verifyAllFingerprints(t, hub)
	}

	runStretch(edges[:half])
	runStretch(edges[half:])

	mu.Lock()
	got := make(map[noteKey]int, len(total))
	for k, v := range total {
		got[k] = v
	}
	mu.Unlock()
	diffNotes(t, want, got, "full-restart")
}
