package cluster

import (
	"sync"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
	"motifstream/internal/queue"
)

// This file implements the batched, parallel replica hot path selected by
// Config.ApplyBatch. The consumer drains its subscription into a bounded
// batch, fans candidate generation across a bounded worker pool sharded by
// edge target, then runs an ordered commit stage that replays the batch in
// offset order: candidate-log commit, candidate publish, sweep, checkpoint
// clock tick and cut — exactly the per-envelope sequence of applyEnvelope.
//
// Equivalence to the sequential path rests on three facts, stated as the
// invariants they preserve (docs/DURABILITY.md expands on each):
//
//  1. Motif programs read D only at the triggering edge's target
//     (motif.Program's locality contract), and the worker sharding sends
//     every envelope of one target to the same worker in offset order — so
//     each detection sees exactly the D prefix it would have seen
//     sequentially, regardless of how the stream was chopped into batches.
//  2. D sweeps and checkpoint cuts mutate or capture state across ALL
//     targets, so the batch assembler force-ends a batch at the first
//     envelope whose timestamp makes either due (simulated read-only on
//     copies of the clocks); the ordered commit stage then performs them
//     at that envelope, after all of the batch's publishes — publish
//     before cut, at the same stream position as sequential apply.
//  3. One state load per envelope gates both its candidate publish and
//     (for the batch-final envelope) the checkpoint cut, preserving the
//     one-fate-per-envelope rule that keeps a zombie span from cutting a
//     checkpoint whose candidates were never handed to delivery.

// ckptClock is a replica's checkpoint stream clock with a bounded forward
// jump. The naive clock (`lastTS = env.TS` on every cut) lets one
// future-dated event from a clock-skewed producer push the clock so far
// ahead that cuts are suppressed until stream time catches up — an
// unbounded widening of the suppression-loss window. tick instead clamps
// each advance to two checkpoint intervals past the newer of the clock and
// the previous envelope's timestamp: a genuine quiet gap still cuts
// immediately and re-anchors on the next event, while a lone outlier can
// defer the following cut by at most ~three intervals of stream time.
type ckptClock struct {
	// lastTS is the stream time the newest cut is accounted to; zero means
	// unseeded (first envelope after Start or a restore seeds it so a full
	// interval elapses before the first cut).
	lastTS int64
	// prevTS is the previous envelope's timestamp — the clamp anchor that
	// keeps one outlier from poisoning later advances.
	prevTS int64
}

// tick advances the clock over one envelope timestamp and reports whether
// a checkpoint cut is due at this envelope. everyMS must be > 0. The batch
// assembler calls tick on a copy of the slot's clock to probe boundaries
// without committing; the commit stage calls it on the slot's clock.
func (k *ckptClock) tick(ts, everyMS int64) bool {
	if k.lastTS == 0 {
		k.lastTS = ts
		k.prevTS = ts
		return false
	}
	cut := ts-k.lastTS >= everyMS
	if cut {
		next := k.lastTS
		if k.prevTS > next {
			next = k.prevTS
		}
		next += 2 * everyMS
		if ts < next {
			next = ts
		}
		k.lastTS = next
	}
	k.prevTS = ts
	return cut
}

// replicaBatch holds one consumer's reusable batch buffers; everything is
// recycled across batches so a warmed-up consumer allocates nothing per
// drain beyond the candidates the programs emit.
type replicaBatch struct {
	max     int
	workers int
	envs    []queue.Envelope[graph.Edge]
	// Per-worker shards: the edges routed to worker w and each edge's
	// position in envs, so results scatter back into offset order.
	edges [][]graph.Edge
	pos   [][]int
	outs  [][]candList
	// cands[i] is envelope i's detection result, in batch order.
	cands []candList
	// closed records that the subscription closed mid-drain; the partial
	// batch is still applied before the consumer exits.
	closed bool
}

// candList aliases the candidate slice type to keep the scatter buffers
// readable.
type candList = []motif.Candidate

func newReplicaBatch(max, workers int) *replicaBatch {
	if workers < 1 {
		workers = 1
	}
	b := &replicaBatch{max: max, workers: workers}
	b.edges = make([][]graph.Edge, workers)
	b.pos = make([][]int, workers)
	b.outs = make([][]candList, workers)
	return b
}

// consumeBatched is the batched replica consumer loop: block for one
// envelope, drain up to the batch bound, apply, repeat.
func (c *Cluster) consumeBatched(slot *replicaSlot) {
	b := newReplicaBatch(c.cfg.ApplyBatch, c.cfg.ApplyWorkers)
	for {
		select {
		case <-slot.quit:
			return
		case env, ok := <-slot.sub:
			if !ok {
				return
			}
			c.assembleBatch(slot, b, env)
			if !c.applyBatch(slot, b) {
				return
			}
			if b.closed {
				return
			}
		}
	}
}

// assembleBatch collects first plus whatever is already buffered on the
// subscription, up to the batch bound, ending the batch early at the first
// envelope where the sequential path would sweep D or cut a checkpoint.
// The probes are read-only: the sweep clock cannot advance during assembly
// (only this consumer sweeps this engine) and the checkpoint clock is
// simulated on a copy.
func (c *Cluster) assembleBatch(slot *replicaSlot, b *replicaBatch, first queue.Envelope[graph.Edge]) {
	b.envs = append(b.envs[:0], first)
	p := slot.p.Load()
	sim := slot.clock
	if c.batchBoundary(p, &sim, first.Msg.TS) {
		return
	}
	for len(b.envs) < b.max {
		select {
		case env, ok := <-slot.sub:
			if !ok {
				b.closed = true
				return
			}
			b.envs = append(b.envs, env)
			if c.batchBoundary(p, &sim, env.Msg.TS) {
				return
			}
		default:
			return
		}
	}
}

// batchBoundary reports whether an envelope with timestamp ts must be the
// last of its batch: the sequential path would sweep D or cut a checkpoint
// at it, and both act across all edge targets, so no later envelope may be
// detected before they run.
func (c *Cluster) batchBoundary(p *partition.Partition, sim *ckptClock, ts int64) bool {
	if p.SweepDue(ts) {
		return true
	}
	return c.ckptEveryMS > 0 && sim.tick(ts, c.ckptEveryMS)
}

// applyBatch runs detection for the whole batch across the worker pool,
// then commits in offset order. Returns false only when the candidates
// topic has closed (shutdown race), mirroring applyEnvelope.
func (c *Cluster) applyBatch(slot *replicaSlot, b *replicaBatch) bool {
	p := slot.p.Load()
	n := len(b.envs)
	if cap(b.cands) < n {
		b.cands = make([]candList, n)
	}
	cands := b.cands[:n]

	w := b.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		// Inline: one DetectBatch over the whole batch — still amortizes
		// scratch and counters, just without goroutine fan-out.
		b.edges[0] = b.edges[0][:0]
		for _, env := range b.envs {
			b.edges[0] = append(b.edges[0], env.Msg)
		}
		p.DetectBatch(b.edges[0], cands)
	} else {
		// Shard by edge target: same target, same worker, offset order
		// within the worker — the arrangement that makes concurrent
		// detection exactly sequential-equivalent.
		for i := 0; i < w; i++ {
			b.edges[i] = b.edges[i][:0]
			b.pos[i] = b.pos[i][:0]
		}
		for i, env := range b.envs {
			h := int((uint64(env.Msg.Dst) * 0x9e3779b97f4a7c15 >> 32) % uint64(w))
			b.edges[h] = append(b.edges[h], env.Msg)
			b.pos[h] = append(b.pos[h], i)
		}
		var wg sync.WaitGroup
		for i := 1; i < w; i++ {
			if len(b.edges[i]) == 0 {
				continue
			}
			if cap(b.outs[i]) < len(b.edges[i]) {
				b.outs[i] = make([]candList, len(b.edges[i]))
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p.DetectBatch(b.edges[i], b.outs[i][:len(b.edges[i])])
			}(i)
		}
		// Worker 0's shard runs inline on the consumer goroutine.
		if len(b.edges[0]) > 0 {
			if cap(b.outs[0]) < len(b.edges[0]) {
				b.outs[0] = make([]candList, len(b.edges[0]))
			}
			p.DetectBatch(b.edges[0], b.outs[0][:len(b.edges[0])])
		}
		wg.Wait()
		for i := 0; i < w; i++ {
			for j, at := range b.pos[i] {
				cands[at] = b.outs[i][j]
			}
		}
	}

	c.applyBatches.Inc()
	// The histogram stores unitless envelope counts; snapshot quantiles
	// read as counts, not durations.
	c.batchSize.Observe(time.Duration(n))

	// Ordered commit: replay the batch in offset order through exactly the
	// per-envelope sequence of applyEnvelope — log commit, state-gated
	// publish, sweep, clock tick, state-gated cut, catch-up transition.
	for i, env := range b.envs {
		ev := cands[i]
		cands[i] = nil // the slice is handed off; drop the batch's reference
		p.Commit(ev)

		// One state load gates BOTH this envelope's publish and its cut,
		// preserving the one-fate rule (see applyEnvelope).
		state := slot.state.Load()

		if len(ev) > 0 && state != replicaDead {
			msg := candidateMsg{pid: slot.pid, offset: env.Offset, pubNS: env.PubUnixNS, cands: ev}
			// Count against a networked worker's checkpoint ack gate
			// before publishing (see applyEnvelope).
			if c.worker != nil {
				c.worker.fw.NoteEnqueued()
			}
			if c.candidates.Publish(msg, env.VirtualDelay) != nil {
				if c.worker != nil {
					c.worker.fw.NoteAbandoned()
				}
				return false
			}
		}

		if c.worker != nil {
			slot.applied.Store(env.Offset + 1)
		}

		// Sweep before any cut at this envelope, as the sequential path
		// does (engine.Apply sweeps inside, before the cut in
		// applyEnvelope). By construction only the batch-final envelope can
		// be due; for the rest this is one atomic load.
		p.MaybeSweep(env.Msg.TS)

		if c.ckptEveryMS > 0 && state != replicaDead {
			if slot.clock.tick(env.Msg.TS, c.ckptEveryMS) {
				c.cutCheckpoint(slot, env.Offset+1)
			}
		}

		if slot.state.Load() == replicaReplaying && env.Offset+1 >= slot.target {
			if slot.state.CompareAndSwap(replicaReplaying, replicaLive) {
				c.markLive(slot)
				close(slot.live)
			}
		}
	}
	return true
}
