package cluster

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"motifstream/internal/dynstore"
)

// TestCkptClockNormalCadence pins the clock's ordinary behavior: with
// timestamps advancing well under the interval, cuts land once per
// interval and the clock tracks stream time exactly (the clamp never
// engages).
func TestCkptClockNormalCadence(t *testing.T) {
	const interval = int64(1000)
	var k ckptClock
	cuts := 0
	for ts := int64(5_000); ts <= 25_000; ts += 100 {
		if k.tick(ts, interval) {
			cuts++
			if k.lastTS != ts {
				t.Fatalf("clamp engaged on a normal stream: clock %d at ts %d", k.lastTS, ts)
			}
		}
	}
	if cuts != 20 {
		t.Fatalf("cuts = %d over 20 intervals, want 20", cuts)
	}
}

// TestCkptClockOutlierBounded is the regression for the unbounded
// suppression window: one future-dated event from a clock-skewed producer
// used to set the clock to its timestamp, suppressing every later cut
// until stream time caught up. The clamped clock may defer cuts by at
// most ~three intervals after the outlier.
func TestCkptClockOutlierBounded(t *testing.T) {
	const interval = int64(1000)
	var k ckptClock
	ts := int64(5_000)
	for ; ts < 10_000; ts += 100 {
		k.tick(ts, interval)
	}
	// A producer an hour in the future.
	if !k.tick(ts+3_600_000, interval) {
		t.Fatal("outlier did not trigger a cut")
	}
	if jump := k.lastTS - ts; jump > 2*interval {
		t.Fatalf("clock jumped %dms past the stream on the outlier, want <= %d", jump, 2*interval)
	}
	// Back to normal stream time: a cut must land within three intervals.
	sinceCut := int64(0)
	for ; ts < 60_000; ts += 100 {
		sinceCut += 100
		if k.tick(ts, interval) {
			if sinceCut > 3*interval {
				t.Fatalf("first post-outlier cut took %dms of stream time, want <= %d", sinceCut, 3*interval)
			}
			sinceCut = 0
		}
	}
	if sinceCut > 3*interval {
		t.Fatalf("cuts still suppressed %dms after the outlier", sinceCut)
	}
}

// TestCkptClockQuietGapReanchors: a genuine idle gap (no events for many
// intervals) cuts immediately when traffic resumes and re-anchors within
// one follow-up event, rather than dribbling catch-up cuts.
func TestCkptClockQuietGapReanchors(t *testing.T) {
	const interval = int64(1000)
	var k ckptClock
	for ts := int64(5_000); ts < 8_000; ts += 100 {
		k.tick(ts, interval)
	}
	// Quiet for 100 intervals, then steady traffic resumes.
	resume := int64(8_000 + 100*interval)
	if !k.tick(resume, interval) {
		t.Fatal("no cut when traffic resumed after a quiet gap")
	}
	// The second post-gap event re-anchors: its cut decision is again
	// driven by real stream progress, at most one interval later.
	cutAt := int64(0)
	for ts := resume + 100; ts < resume+3*interval; ts += 100 {
		if k.tick(ts, interval) {
			cutAt = ts
			break
		}
	}
	if cutAt == 0 {
		t.Fatal("clock failed to re-anchor after the quiet gap")
	}
}

// TestCheckpointClockOutlierIntegration runs the satellite-bug scenario
// through a real cluster: a mid-stream timestamp outlier must not
// suppress the remaining stream's checkpoint cuts.
func TestCheckpointClockOutlierIntegration(t *testing.T) {
	static := ringStatic(30)
	cfg := recoveryConfig(t, static)
	cfg.CheckpointInterval = 2 * time.Second // stream time

	stream := motifWorkload(7, 30, 400) // ~3s of stream time per step
	// One clock-skewed producer a day in the future, a quarter in.
	outlierAt := len(stream) / 4
	stream[outlierAt].TS += 24 * 3_600_000

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for _, e := range stream {
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	c.Stop()

	// The post-outlier stream spans ~900s of stream time at a 2s interval.
	// The old clock cut nothing there (stream time never reaches
	// outlier+interval); the clamped clock keeps cutting, so the total is
	// far above what the pre-outlier prefix alone could produce.
	prefixBound := uint64(outlierAt) // cuts cannot exceed events
	if st := c.Stats(); st.Checkpoints <= prefixBound {
		t.Fatalf("Checkpoints = %d: outlier suppressed post-outlier cuts (prefix bound %d)", st.Checkpoints, prefixBound)
	}
}

// TestParallelApplyEquivalence is the batched-path property test: across
// seeds, batch sizes, worker counts, and GOMAXPROCS values, the batched
// cluster delivers exactly the sequential cluster's notification multiset
// and converges to bit-identical recoverable state (CRC32C state
// fingerprints compared per replica).
func TestParallelApplyEquivalence(t *testing.T) {
	const users = 40
	static := ringStatic(users)

	type variant struct {
		batch, workers, maxprocs int
	}
	variants := []variant{
		{batch: 4, workers: 1, maxprocs: 1},
		{batch: 16, workers: 2, maxprocs: 1},
		{batch: 16, workers: 4, maxprocs: 2},
		{batch: 64, workers: 3, maxprocs: 4},
	}

	for _, seed := range []int64{3, 11} {
		stream := motifWorkload(seed, users, 300)
		// Sequential reference run for this seed.
		seqCfg := recoveryConfig(t, static)
		seqCfg.Dynamic = dynstore.Options{Retention: time.Minute} // sweeps prune mid-stream
		seqNotes := collectNotes(&seqCfg)
		seq, err := New(seqCfg)
		if err != nil {
			t.Fatal(err)
		}
		seq.Start()
		for _, e := range stream {
			if err := seq.Publish(e); err != nil {
				t.Fatal(err)
			}
		}
		seq.Stop()
		if len(seqNotes()) == 0 {
			t.Fatal("vacuous: sequential run delivered nothing")
		}

		for _, v := range variants {
			name := fmt.Sprintf("seed%d/batch%d_workers%d_procs%d", seed, v.batch, v.workers, v.maxprocs)
			t.Run(name, func(t *testing.T) {
				prev := runtime.GOMAXPROCS(v.maxprocs)
				defer runtime.GOMAXPROCS(prev)

				parCfg := recoveryConfig(t, static)
				parCfg.Dynamic = dynstore.Options{Retention: time.Minute}
				parCfg.ApplyBatch = v.batch
				parCfg.ApplyWorkers = v.workers
				parNotes := collectNotes(&parCfg)
				par, err := New(parCfg)
				if err != nil {
					t.Fatal(err)
				}
				par.Start()
				for _, e := range stream {
					if err := par.Publish(e); err != nil {
						t.Fatal(err)
					}
				}
				par.Stop()

				assertSameNotes(t, seqNotes(), parNotes())
				for pid := 0; pid < parCfg.Partitions; pid++ {
					for r := 0; r < parCfg.Replicas; r++ {
						pp, err := par.Replica(pid, r)
						if err != nil {
							t.Fatal(err)
						}
						sp, err := seq.Replica(pid, r)
						if err != nil {
							t.Fatal(err)
						}
						gotFP, err := pp.Fingerprint()
						if err != nil {
							t.Fatal(err)
						}
						wantFP, err := sp.Fingerprint()
						if err != nil {
							t.Fatal(err)
						}
						if gotFP != wantFP {
							t.Errorf("partition %d replica %d: batched fingerprint %08x != sequential %08x", pid, r, gotFP, wantFP)
						}
					}
				}
				if st := par.Stats(); st.ApplyBatches == 0 {
					t.Fatal("vacuous: batched run applied no batches")
				}
			})
		}
	}
}

// TestParallelApplyKillRestore reruns the fault-equivalence oracle with
// the worker pool on: kill/restore mid-stream under batched apply must
// still deliver the sequential no-fault set exactly.
func TestParallelApplyKillRestore(t *testing.T) {
	static := ringStatic(50)
	stream := motifWorkload(91, 50, 400)

	oracleCfg := recoveryConfig(t, static)
	oracleNotes := collectNotes(&oracleCfg)
	oracle, err := New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Start()
	for _, e := range stream {
		if err := oracle.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	oracle.Stop()

	faultCfg := recoveryConfig(t, static)
	faultCfg.ApplyBatch = 16
	faultCfg.ApplyWorkers = 2
	faultNotes := collectNotes(&faultCfg)
	fault, err := New(faultCfg)
	if err != nil {
		t.Fatal(err)
	}
	fault.Start()
	killAt, restoreAt := len(stream)/3, 2*len(stream)/3
	for i, e := range stream {
		if i == killAt {
			for pid := 0; pid < faultCfg.Partitions; pid++ {
				if err := fault.KillReplica(pid, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		if i == restoreAt {
			for pid := 0; pid < faultCfg.Partitions; pid++ {
				if err := fault.RestoreReplica(pid, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := fault.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	fault.Stop()

	assertSameNotes(t, oracleNotes(), faultNotes())
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		recovered, _ := fault.Replica(pid, 1)
		reference, _ := oracle.Replica(pid, 1)
		if got, want := recovered.Engine().Dynamic().Stats(), reference.Engine().Dynamic().Stats(); got != want {
			t.Fatalf("partition %d recovered D stats %+v != oracle %+v", pid, got, want)
		}
	}
}
