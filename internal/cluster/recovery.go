package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"motifstream/internal/audit"
	"motifstream/internal/codecutil"
	"motifstream/internal/partition"
	"motifstream/internal/placement"
	"motifstream/internal/queue"
	"motifstream/internal/statstore"
)

// On-disk layout of the incremental checkpoint pipeline (see
// docs/DURABILITY.md for the full contract):
//
//	<CheckpointDir>/
//	  delivery.off              per-group delivery high-water offsets
//	  delivery.state            delivery pipeline dedup LRU + fatigue budgets
//	  p000-r00/                 one directory per replica
//	    MANIFEST                ordered segment list (atomic rename)
//	    base-00000007.seg       compacted base checkpoint
//	    delta-00000008.seg      delta segments cut since the base
//	    delta-00000009.seg
//
// Every segment is recorded in the MANIFEST together with the firehose
// offset its cut corresponds to (all envelopes below it are included).
// The ordering is crash-safe: a segment file is written and fsynced
// before the manifest that references it is renamed into place, so the
// manifest never names a missing or partial segment; conversely a crash
// between the two leaves an orphan segment that the next cluster
// construction removes with the rest of the foreign-run files.
// The gating id protects offset integrity: with the in-memory firehose
// log it is a random per-process run id — the log dies with the process,
// so foreign-run files are wiped at construction rather than resurrected.
// With a durable log (Config.LogDir) it is the log's persistent identity,
// and chains survive process restarts exactly as long as the log that
// assigned their offsets; integrity within a segment is the CRC32C
// trailer's job (verified at every compose).

// ErrRecoveryDisabled is returned by KillReplica/RestoreReplica when the
// cluster was built without Config.CheckpointDir.
var ErrRecoveryDisabled = errors.New("cluster: recovery requires Config.CheckpointDir")

// Reopen constructs and starts a brand-new Cluster over an existing
// durable deployment — the whole-cluster restart path. cfg must name the
// same LogDir and CheckpointDir a previous cluster ran with (and a
// workload-compatible configuration); every replica is restored from its
// durable checkpoint chain and replays the durable log from its floor
// offset, with the delivery tier's exactly-once filter seeded from the
// persisted high-water offsets so nothing already pushed repeats, and the
// delivery pipeline's suppression state (dedup LRU + fatigue budgets)
// restored from delivery.state so a (user, item) pair pushed before the
// restart stays suppressed and daily budgets are not reset. After a
// clean Shutdown the reopened cluster delivers exactly the notification
// set an uninterrupted run would have; after a hard crash, at most the
// un-fsynced log tail (bounded by Config.LogSyncEvery) and the last
// delivery-offset persistence interval are re-exposed, the paper's
// product-level dedup tolerance. Reopen over a fresh pair of directories
// is simply a cold start.
func Reopen(cfg Config) (*Cluster, error) {
	if cfg.LogDir == "" {
		return nil, fmt.Errorf("cluster: Reopen requires Config.LogDir")
	}
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	c.Start()
	return c, nil
}

// manifestMagic identifies the checkpoint manifest format, version 1.
var manifestMagic = [8]byte{'M', 'S', 'M', 'A', 'N', 'F', 0, 1}

// deliveryMagic identifies the delivery offsets file format, version 1.
var deliveryMagic = [8]byte{'M', 'S', 'D', 'L', 'V', 'O', 0, 1}

// deliveryStateMagic identifies the delivery pipeline state file header,
// version 1. The header (magic + version + gating id) wraps the
// pipeline's own CRC32C-framed snapshot (delivery.Pipeline.WriteTo).
var deliveryStateMagic = [8]byte{'M', 'S', 'D', 'L', 'S', 'T', 0, 1}

const (
	manifestVersion      = 1
	deliveryVersion      = 1
	deliveryStateVersion = 1

	segKindBase  = 0
	segKindDelta = 1

	// maxManifestSegs bounds manifest decoding against corruption.
	maxManifestSegs = 1 << 20

	// ckptQueueDepth is the async writer's job buffer: cuts beyond it
	// block the apply loop (backpressure) until the writer drains.
	ckptQueueDepth = 2

	// deliveryPersistEvery is how many processed candidate batches elapse
	// between persisted snapshots of the per-group high-water offsets.
	deliveryPersistEvery = 64

	// deliveryStatePersistEvery is how many processed candidate batches
	// elapse between cuts of the delivery pipeline's suppression state
	// (dedup LRU + fatigue budgets). Coarser than the offsets cadence:
	// a state cut copies the whole LRU, not a vector of counters, and
	// staleness between cuts only re-exposes the documented repeated-pair
	// tolerance after a hard crash — a clean Shutdown always cuts a final
	// exact snapshot.
	deliveryStatePersistEvery = 256
)

// segmentRef names one durable checkpoint segment: its kind, the
// monotonic sequence number its file name derives from, and the firehose
// offset its cut corresponds to (every envelope with Offset < offset is
// folded in).
type segmentRef struct {
	kind   uint8
	seq    uint64
	offset uint64
}

// manifest is a replica's durable chain: at most one leading base
// followed by delta segments in cut order (ascending offsets). nextSeq
// stays monotonic across compactions so file names never collide.
type manifest struct {
	segs    []segmentRef
	nextSeq uint64
}

// floorOffset returns the oldest offset this chain can restore to — the
// base's offset, or zero while the chain still composes from the implicit
// empty base (no compaction yet). Log truncation must stay below the
// minimum floor across replicas.
func (m *manifest) floorOffset() uint64 {
	if len(m.segs) > 0 && m.segs[0].kind == segKindBase {
		return m.segs[0].offset
	}
	return 0
}

func (m *manifest) deltaCount() int {
	n := 0
	for _, s := range m.segs {
		if s.kind == segKindDelta {
			n++
		}
	}
	return n
}

// replicaCkptDir names a generation-0 replica checkpoint directory — the
// placement a cluster is constructed with. Re-provisioned replicas live
// in later-generation directories (placement.Dir); running code always
// uses slot.dir, which tracks the current generation.
func replicaCkptDir(dir string, pid, r int) string {
	return placement.Dir(dir, pid, r, 0)
}

func manifestPath(dir string) string { return filepath.Join(dir, "MANIFEST") }

func segmentPath(dir string, ref segmentRef) string {
	kind := "delta"
	if ref.kind == segKindBase {
		kind = "base"
	}
	return filepath.Join(dir, fmt.Sprintf("%s-%08d.seg", kind, ref.seq))
}

func deliveryOffsetsPath(dir string) string { return filepath.Join(dir, "delivery.off") }

func deliveryStatePath(dir string) string { return filepath.Join(dir, "delivery.state") }

func staticSnapshotPath(dir string, pid int) string {
	return filepath.Join(dir, fmt.Sprintf("s-p%03d.snap", pid))
}

// syncDir best-effort fsyncs a directory so a rename within it is
// durable before we rely on it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// atomicWriteFile writes via a temp file, fsyncs, and renames into place
// so readers only ever observe complete content.
func atomicWriteFile(path string, write func(io.Writer) error) error {
	return atomicWrite(path, write, true)
}

// atomicReplaceFile is atomicWriteFile without the fsyncs: readers still
// only ever observe complete content (the rename is atomic), but an OS
// crash may lose the newest version. For advisory data written on a hot
// path, skipping the two fsyncs is the point.
func atomicReplaceFile(path string, write func(io.Writer) error) error {
	return atomicWrite(path, write, false)
}

func atomicWrite(path string, write func(io.Writer) error, durable bool) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil && durable {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if durable {
		syncDir(filepath.Dir(path))
	}
	return nil
}

// openSegFile opens the file every checkpoint segment and base mirror is
// written through. It is a variable so fault-injection tests (errfs-lite,
// codecutil.FailNth) can fail an individual Write or Sync call inside the
// pipeline; set it only while no cluster is running.
var openSegFile = func(path string) (codecutil.WriteSyncCloser, error) {
	return os.Create(path)
}

// writeFileSync writes a file directly and fsyncs it. Segment files use
// this rather than the atomic dance: their names are fresh and only the
// manifest makes them reachable.
func writeFileSync(path string, write func(io.Writer) error) error {
	f, err := openSegFile(path)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
	}
	return err
}

// writeManifest durably replaces the manifest file.
func (m *manifest) write(path string, runID uint64) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		enc := &codecutil.Writer{BW: bufio.NewWriter(w)}
		enc.PutBytes(manifestMagic[:])
		enc.PutU(manifestVersion)
		enc.PutU(runID)
		enc.PutU(m.nextSeq)
		enc.PutU(uint64(len(m.segs)))
		for _, s := range m.segs {
			enc.PutU(uint64(s.kind))
			enc.PutU(s.seq)
			enc.PutU(s.offset)
		}
		return enc.Flush()
	})
}

// loadManifest reads a manifest, returning an empty one when the file is
// absent or belongs to a different cluster run (recover from scratch in
// both cases). Malformed content returns an error.
func loadManifest(path string, runID uint64) (manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return manifest{}, nil
		}
		return manifest{}, err
	}
	defer f.Close()
	br := &codecutil.CountingReader{R: bufio.NewReader(f)}
	r := &codecutil.Reader{BR: br, Prefix: "manifest"}
	if err := codecutil.ExpectMagic(br, manifestMagic[:], "manifest"); err != nil {
		return manifest{}, err
	}
	if v := r.U("version"); r.Err == nil && v != manifestVersion {
		return manifest{}, fmt.Errorf("unsupported manifest version %d", v)
	}
	fileRun := r.U("run id")
	nextSeq := r.U("next seq")
	count := r.U("segment count")
	if r.Err == nil && count > maxManifestSegs {
		return manifest{}, fmt.Errorf("implausible segment count %d", count)
	}
	m := manifest{nextSeq: nextSeq}
	for i := uint64(0); i < count && r.Err == nil; i++ {
		kind := r.U("segment kind")
		seq := r.U("segment seq")
		off := r.U("segment offset")
		m.segs = append(m.segs, segmentRef{kind: uint8(kind), seq: seq, offset: off})
	}
	if r.Err != nil {
		return manifest{}, r.Err
	}
	if fileRun != runID {
		// A previous run's chain: its offsets index a firehose log that
		// died with that process.
		return manifest{}, nil
	}
	return m, nil
}

// ckptJob is one cut handed from the apply loop to the async writer: the
// captured delta and the firehose offset it corresponds to. With auditing
// on, fp carries the CRC32C fingerprint of the replica's full state at
// the cut (hasFP false when auditing is off or the encode failed).
type ckptJob struct {
	delta  *partition.Delta
	offset uint64
	fp     uint32
	hasFP  bool
}

// ckptWriter is a replica's asynchronous persistence stage: it owns the
// replica's checkpoint directory, encodes and fsyncs delta segments off
// the apply loop, maintains the manifest, and folds long chains back into
// a fresh base (compaction). Exactly one writer runs per live replica;
// the consume loop is the only sender and lifecycle transitions
// (kill/restore/stop) close jobs only after the consumer has exited.
type ckptWriter struct {
	c      *Cluster
	slot   *replicaSlot
	dir    string
	jobs   chan ckptJob
	done   chan struct{}
	man    manifest
	deltas int // delta segments since the last base
	// pending holds a cut whose persistence failed. CaptureDelta drains
	// the partition's dirty sets, so the failed cut's keys exist nowhere
	// else — they are merged into the next cut rather than dropped, or
	// the chain would silently compose a hole. A writer stopped with
	// pending set is still consistent: the chain simply ends at the last
	// durable segment's offset and replay rebuilds the lost window.
	pending *partition.Delta
	// alog is the replica's append-only fingerprint audit log (nil when
	// auditing is off or the log failed to open — the audit is advisory).
	// lastFP is the newest recorded live-cut fingerprint; compact
	// self-checks every composed base against it.
	alog         *audit.Log
	lastFP       uint32
	lastFPOffset uint64
	hasLastFP    bool
}

// auditLogPath names a replica directory's fingerprint audit log.
func auditLogPath(dir string) string { return filepath.Join(dir, "audit.log") }

// startWriter launches the async persistence goroutine for slot,
// continuing the given manifest chain.
func (c *Cluster) startWriter(slot *replicaSlot, man manifest) *ckptWriter {
	w := &ckptWriter{
		c:    c,
		slot: slot,
		// The slot's current generation directory — NOT the generation-0
		// name: a reprovisioned replica's chain lives in its new dir.
		dir:  slot.dir,
		jobs: make(chan ckptJob, ckptQueueDepth),
		done: make(chan struct{}),
		man:  man,
	}
	w.deltas = man.deltaCount()
	slot.floor.Store(man.floorOffset())
	if c.audit {
		alog, err := audit.Open(auditLogPath(w.dir), c.runID)
		if err != nil {
			// Advisory subsystem: a replica that cannot audit still
			// checkpoints; the gap is visible as a missing source in
			// VerifyFingerprints.
			c.ckptErrors.Inc()
		} else {
			w.alog = alog
		}
	}
	go w.run()
	return w
}

func (w *ckptWriter) run() {
	defer close(w.done)
	defer func() {
		if w.alog != nil {
			w.alog.Close()
		}
	}()
	closed := false
	for !closed {
		job, ok := <-w.jobs
		if !ok {
			return
		}
		// Coalesce: fold everything already queued into this cut before
		// touching the disk, so a backlogged writer pays one segment
		// fsync and one manifest publication per drain instead of per
		// cut. Sound because deltas compose with last-write-wins per key
		// (MergeOlder): the merged delta at the newest cut's offset is
		// byte-equivalent to the chain of individual segments.
	drain:
		for {
			select {
			case next, ok := <-w.jobs:
				if !ok {
					closed = true
					break drain
				}
				next.delta.MergeOlder(job.delta)
				job = next
				// The elided segment would have cost two fsyncs: its own
				// file and the manifest replacing it.
				w.c.fsyncsSaved.Add(2)
			default:
				break drain
			}
		}
		w.appendSegment(job)
	}
}

// stopWriterLocked drains and stops a slot's writer. The caller holds ctl
// and has already observed the consumer goroutine stopped, so no further
// jobs can arrive.
func stopWriterLocked(slot *replicaSlot) {
	if slot.writer == nil {
		return
	}
	close(slot.writer.jobs)
	<-slot.writer.done
	slot.writer = nil
}

// appendSegment encodes one cut as a delta segment, fsyncs it, and
// publishes it through the manifest. On failure the cut is parked in
// pending and carried into the next segment (its keys were already
// drained from the dirty sets), so the durable chain stays hole-free — a
// replica with a stale chain just replays more.
func (w *ckptWriter) appendSegment(job ckptJob) {
	if w.pending != nil {
		job.delta.MergeOlder(w.pending)
		w.pending = nil
	}
	ref := segmentRef{kind: segKindDelta, seq: w.man.nextSeq, offset: job.offset}
	path := segmentPath(w.dir, ref)
	if err := writeFileSync(path, func(f io.Writer) error {
		_, err := job.delta.WriteTo(f)
		return err
	}); err != nil {
		w.pending = job.delta
		w.c.ckptErrors.Inc()
		return
	}
	w.man.segs = append(w.man.segs, ref)
	w.man.nextSeq++
	if err := w.man.write(manifestPath(w.dir), w.c.runID); err != nil {
		// The manifest on disk still describes the old chain; keep the
		// in-memory view consistent with it.
		w.man.segs = w.man.segs[:len(w.man.segs)-1]
		w.man.nextSeq--
		os.Remove(path)
		w.pending = job.delta
		w.c.ckptErrors.Inc()
		return
	}
	w.c.checkpoints.Inc()
	if job.hasFP {
		w.recordFingerprint(audit.Record{Offset: job.offset, Sum: job.fp})
		w.lastFP, w.lastFPOffset, w.hasLastFP = job.fp, job.offset, true
	}
	w.deltas++
	if w.deltas >= w.c.compactEvery {
		w.compact()
	}
	w.c.maybeTruncateLog()
}

// recordFingerprint appends one record to the replica's audit log.
func (w *ckptWriter) recordFingerprint(rec audit.Record) {
	if w.alog == nil {
		return
	}
	if err := w.alog.Append(rec); err != nil {
		w.c.ckptErrors.Inc()
		return
	}
	w.c.auditRecords.Inc()
}

// compact folds the whole chain into a single fresh base whose offset is
// the newest segment's, then drops the old files. Compaction is what
// advances the replica's restore floor — and with it the cluster-wide
// firehose truncation horizon — and what bounds restore composition time.
func (w *ckptWriter) compact() {
	if len(w.man.segs) < 2 {
		return
	}
	st, used, offset := composeChain(w.dir, w.man.segs)
	if used < len(w.man.segs) {
		// A corrupt segment mid-chain: leave it for restore-time fallback
		// rather than compacting a prefix and silently losing the rest.
		w.c.ckptErrors.Inc()
		return
	}
	if w.c.audit {
		// Compaction self-check: the composed chain re-derives a state the
		// replica also held live (the newest cut), so their fingerprints
		// must match bit-for-bit. A mismatch here is the divergence class
		// the audit exists for — a recovery composition that would install
		// different state than the replica actually had — caught at write
		// time instead of at the next restore. The composed fingerprint is
		// recorded either way (it re-records the offset, so VerifyFingerprints
		// exposes the disagreement too); the base is still published — its
		// bytes are what the chain durably says, and refusing to compact
		// would only hide the divergence behind a longer chain.
		if fp, err := st.Fingerprint(); err == nil {
			if w.hasLastFP && w.lastFPOffset == offset && w.lastFP != fp {
				w.c.auditMismatches.Inc()
			}
			w.recordFingerprint(audit.Record{Offset: offset, Sum: fp})
		} else {
			w.c.ckptErrors.Inc()
		}
	}
	ref := segmentRef{kind: segKindBase, seq: w.man.nextSeq, offset: offset}
	path := segmentPath(w.dir, ref)
	if err := writeFileSync(path, func(f io.Writer) error {
		_, err := st.WriteBaseTo(f)
		return err
	}); err != nil {
		w.c.ckptErrors.Inc()
		return
	}
	old := w.man.segs
	w.man.segs = []segmentRef{ref}
	w.man.nextSeq++
	if err := w.man.write(manifestPath(w.dir), w.c.runID); err != nil {
		w.man.segs = old
		w.man.nextSeq--
		os.Remove(path)
		w.c.ckptErrors.Inc()
		return
	}
	for _, s := range old {
		os.Remove(segmentPath(w.dir, s))
	}
	w.deltas = 0
	w.slot.floor.Store(offset)
	w.c.compactions.Inc()
	// Base replication: push the fresh base to peer replica directories
	// so the partition keeps restore points even when this machine — or
	// this base — is lost.
	w.c.mirrorBase(w.slot, path, offset)
}

// composeChain reads segments in order into a neutral checkpoint state,
// stopping at the first unreadable or corrupt segment — the
// segment-at-a-time fallback. Returns the composed state, how many
// segments were used, and the offset of the last used segment (zero when
// none were).
func composeChain(dir string, segs []segmentRef) (*partition.CheckpointState, int, uint64) {
	st := partition.NewCheckpointState()
	offset := uint64(0)
	used := 0
	for _, ref := range segs {
		f, err := os.Open(segmentPath(dir, ref))
		if err != nil {
			break
		}
		br := bufio.NewReader(f)
		if ref.kind == segKindBase {
			fresh := partition.NewCheckpointState()
			if _, err := fresh.ReadBaseFrom(br); err != nil {
				f.Close()
				break
			}
			st = fresh
		} else if _, err := st.ApplyDeltaFrom(br); err != nil {
			f.Close()
			break
		}
		f.Close()
		offset = ref.offset
		used++
	}
	return st, used, offset
}

// clampChainPrefix returns how many leading segments have cut offsets at
// or below limit — the prefix a restore falls back to when the group's
// delivered high-water lags the newest checkpoint.
func clampChainPrefix(segs []segmentRef, limit uint64) int {
	keep := 0
	for i, ref := range segs {
		if ref.offset > limit {
			break
		}
		keep = i + 1
	}
	return keep
}

// truncateManifest drops segments beyond keep, rewrites the manifest, and
// removes the dropped files, reporting whether the trim stuck. Used by
// restore for corruption fallback and the delivered-offset clamp. A
// failed rewrite is counted and the trim abandoned — in-memory chain and
// files stay exactly as the on-disk manifest describes them, so nothing
// leaks unreferenced and a later restore retries the same fallback.
func (c *Cluster) truncateManifest(dir string, man *manifest, keep int) bool {
	if keep >= len(man.segs) {
		return true
	}
	dropped := man.segs[keep:]
	trimmed := man.segs[:keep:keep]
	old := man.segs
	man.segs = trimmed
	if err := man.write(manifestPath(dir), c.runID); err != nil {
		man.segs = old
		c.ckptErrors.Inc()
		return false
	}
	for _, s := range dropped {
		os.Remove(segmentPath(dir, s))
	}
	return true
}

// persistDeliveryOffsets snapshots the delivery consumer's per-group
// high-water offsets. Called only from the delivery goroutine. The
// periodic hot-path persists are atomic-by-rename but deliberately
// unsynced (durable=false): mid-run the offsets are advisory — the
// restore clamp tolerates staleness by design — and fsyncing inline
// every interval would stall the entire delivery tier on disk I/O. The
// final persist at drain passes durable=true: on a durable-log cluster
// that file is load-bearing for the restart contract (the reopened
// filter seeds from it), so it must survive a power loss after a clean
// Shutdown just like the WAL and the checkpoint manifests do.
func (c *Cluster) persistDeliveryOffsets(next []uint64, durable bool) {
	write := atomicReplaceFile
	if durable {
		write = atomicWriteFile
	}
	err := write(deliveryOffsetsPath(c.cfg.CheckpointDir), func(w io.Writer) error {
		enc := &codecutil.Writer{BW: bufio.NewWriter(w)}
		enc.PutBytes(deliveryMagic[:])
		enc.PutU(deliveryVersion)
		enc.PutU(c.runID)
		enc.PutU(uint64(len(next)))
		for _, off := range next {
			enc.PutU(off)
		}
		return enc.Flush()
	})
	if err != nil {
		c.ckptErrors.Inc()
	}
}

// persistDeliveryState cuts the delivery tier's restart state to
// delivery.state as ONE atomic file: a gating header carrying the
// per-group high-water offsets passed by the caller (CRC32C-trailed),
// then the pipeline's own CRC32C-framed suppression snapshot (dedup LRU
// + fatigue budgets). The pairing invariant — a restored filter seeded
// from this file never runs ahead of the dedup state restored from it —
// rests on a one-sided capture order the callers must preserve: `next`
// is snapshotted AT OR BEFORE the moment WriteTo captures the pipeline
// state (the async cut copies the offsets at the cadence point, then
// captures strictly later on this goroutine; the final drain cut takes
// both at the same quiesced instant). Offsets older than the state only
// re-process replayed batches the restored dedup entries suppress;
// offsets newer than the state would skip spans the LRU has never seen
// — the loss direction this file exists to rule out. delivery.off
// (which the hot path keeps fresher) is only the fallback when this
// file is missing or corrupt. Always durable (tmp+rename+fsync): it
// runs off the delivery goroutine (the periodic async cut) or at drain
// (the final exact cut), so the fsync stalls nobody.
func (c *Cluster) persistDeliveryState(next []uint64) error {
	err := atomicWriteFile(deliveryStatePath(c.cfg.CheckpointDir), func(w io.Writer) error {
		hw := &codecutil.HashWriter{W: w}
		enc := &codecutil.Writer{BW: bufio.NewWriter(hw)}
		enc.PutBytes(deliveryStateMagic[:])
		enc.PutU(deliveryStateVersion)
		enc.PutU(c.runID)
		enc.PutU(uint64(len(next)))
		for _, off := range next {
			enc.PutU(off)
		}
		if err := enc.Flush(); err != nil {
			return err
		}
		if err := codecutil.WriteChecksum(w, hw.Sum()); err != nil {
			return err
		}
		_, err := c.pipeline.WriteTo(w)
		return err
	})
	if err != nil {
		c.ckptErrors.Inc()
		return err
	}
	c.deliveryStateCuts.Inc()
	return nil
}

// cutDeliveryStateAsync schedules one delivery state cut off the
// delivery goroutine, with the filter offsets captured at the cadence
// point. At most one cut is in flight: if the previous one is still
// writing, this tick is skipped — the next cadence point captures a
// strictly newer state anyway (latest wins).
func (c *Cluster) cutDeliveryStateAsync(next []uint64) {
	if !c.stateBusy.CompareAndSwap(false, true) {
		return
	}
	c.stateWG.Add(1)
	go func() {
		defer c.stateWG.Done()
		defer c.stateBusy.Store(false)
		c.persistDeliveryState(next)
	}()
}

// loadDeliveryState restores the delivery pipeline's dedup LRU and
// fatigue budgets from delivery.state and returns the filter offsets
// captured with them. ok is false — and nothing is installed — when the
// file is missing, foreign-run, shaped for a different partition count,
// or corrupt: the caller then degrades to delivery.off seeding and a
// fresh pipeline, the pre-durable-state tolerance (a repeated (user,
// item) pair may be re-pushed once), never a failed reopen. Only
// corruption and shape mismatches are counted as errors.
func (c *Cluster) loadDeliveryState() ([]uint64, bool) {
	f, err := os.Open(deliveryStatePath(c.cfg.CheckpointDir))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	hr := &codecutil.HashReader{R: bufio.NewReader(f)}
	br := &codecutil.CountingReader{R: hr}
	r := &codecutil.Reader{BR: br, Prefix: "delivery state header"}
	if err := codecutil.ExpectMagic(br, deliveryStateMagic[:], "delivery state header"); err != nil {
		c.ckptErrors.Inc()
		return nil, false
	}
	if v := r.U("version"); r.Err != nil || v != deliveryStateVersion {
		c.ckptErrors.Inc()
		return nil, false
	}
	if run := r.U("run id"); r.Err != nil || run != c.runID {
		// A foreign run's pipeline state indexes a stream this log never
		// carried; ignoring it is the correct degrade, not an error.
		return nil, false
	}
	n := r.U("group count")
	if r.Err != nil || n > maxManifestSegs {
		c.ckptErrors.Inc()
		return nil, false
	}
	offsets := make([]uint64, 0, codecutil.PreallocHint(n))
	for i := uint64(0); i < n && r.Err == nil; i++ {
		offsets = append(offsets, r.U("group offset"))
	}
	if r.Err != nil {
		c.ckptErrors.Inc()
		return nil, false
	}
	sum := hr.Sum()
	if err := codecutil.VerifyChecksum(br, sum, "delivery state header"); err != nil {
		c.ckptErrors.Inc()
		return nil, false
	}
	if len(offsets) != c.cfg.Partitions {
		// A different deployment shape under the same log identity; the
		// offsets cannot seed this filter, so reject the pair whole.
		c.ckptErrors.Inc()
		return nil, false
	}
	if _, err := c.pipeline.ReadFrom(br); err != nil {
		c.ckptErrors.Inc()
		return nil, false
	}
	c.deliveryStateRestores.Inc()
	return offsets, true
}

// loadDeliveryOffset reads the persisted delivery high-water offset for a
// group. ok is false when the file is absent, unreadable, foreign-run, or
// does not cover pid.
func (c *Cluster) loadDeliveryOffset(pid int) (uint64, bool) {
	f, err := os.Open(deliveryOffsetsPath(c.cfg.CheckpointDir))
	if err != nil {
		return 0, false
	}
	defer f.Close()
	br := &codecutil.CountingReader{R: bufio.NewReader(f)}
	r := &codecutil.Reader{BR: br, Prefix: "delivery offsets"}
	if codecutil.ExpectMagic(br, deliveryMagic[:], "delivery offsets") != nil {
		return 0, false
	}
	if v := r.U("version"); r.Err != nil || v != deliveryVersion {
		return 0, false
	}
	if run := r.U("run id"); r.Err != nil || run != c.runID {
		return 0, false
	}
	n := r.U("group count")
	if r.Err != nil || uint64(pid) >= n || n > maxManifestSegs {
		return 0, false
	}
	var off uint64
	for i := uint64(0); i <= uint64(pid); i++ {
		off = r.U("group offset")
	}
	if r.Err != nil {
		return 0, false
	}
	return off, true
}

// planStartupRestore is New's half of a durable-log restart for one
// replica: load the chain manifest (gated by the log's identity), trim
// any segments the durable log cannot back — a cut past the log head
// means a torn tail lost the suffix the chain claims, so fall back to the
// newest segment at or below it — compose the chain with every segment's
// checksum verified (corrupt tails trimmed, a corrupt base treated like a
// corrupt delta: the chain falls all the way back to scratch), and
// install the result. Start subscribes at the computed offset. The one
// unrecoverable case is a restore point below the log's truncation
// horizon — scratch recovery above a compacted log — which surfaces as
// the documented ErrTruncated error instead of composing garbage.
func (c *Cluster) planStartupRestore(slot *replicaSlot) error {
	dir := slot.dir
	man, err := loadManifest(manifestPath(dir), c.runID)
	if err != nil {
		// Unreadable manifest: recover from scratch; replaying the full
		// log rebuilds identical state, just more slowly.
		c.ckptErrors.Inc()
		man = manifest{}
	}
	head := c.firehose.Published()
	if keep := clampChainPrefix(man.segs, head); keep < len(man.segs) {
		c.ckptErrors.Inc()
		if !c.truncateManifest(dir, &man, keep) {
			return fmt.Errorf("cluster: replica %d/%d: cannot trim chain past durable log head %d", slot.pid, slot.idx, head)
		}
	}
	st, used, offset := composeChain(dir, man.segs)
	if used < len(man.segs) {
		c.ckptErrors.Inc()
		if !c.truncateManifest(dir, &man, used) {
			return fmt.Errorf("cluster: replica %d/%d: cannot trim corrupt chain tail", slot.pid, slot.idx)
		}
	}
	if used == 0 {
		offset = 0
	}
	if start := c.firehose.LogStart(); offset < start {
		// Scratch recovery above a compacted log — the historically
		// unrecoverable corner. With base replication the partition's
		// base pool (a mirror pushed into this directory, or a peer's own
		// compacted base) can still provide a restore point the log
		// extends; only when the pool too is empty does the documented
		// ErrTruncated surface.
		st2, data, off2, ok := composeFromPool(c.basePool(slot.pid, nil), start, head)
		if !ok {
			return fmt.Errorf("cluster: replica %d/%d: restore point %d below durable log start %d (chain lost above a compacted log): %w",
				slot.pid, slot.idx, offset, start, queue.ErrTruncated)
		}
		man2, err := c.seedChain(dir, data, off2, man)
		if err != nil {
			c.ckptErrors.Inc()
			return fmt.Errorf("cluster: replica %d/%d: seeding chain from base pool: %w",
				slot.pid, slot.idx, queue.ErrTruncated)
		}
		st, used, offset, man = st2, 1, off2, man2
		c.poolRestores.Inc()
	}
	if used > 0 {
		// Audit cross-check: the composed restart state must fingerprint-
		// equal what a replica recorded when it held that state live.
		c.verifyComposedState(slot.pid, st, offset)
		slot.p.Load().LoadState(st)
	}
	c.reloadStatic(slot)
	slot.restoreMan = man
	slot.restoreOffset = offset
	slot.floor.Store(man.floorOffset())
	return nil
}

// loadDeliveryOffsets reads every group's persisted delivery high-water
// offset, zero-filled when the file is absent, unreadable, or gated away.
func (c *Cluster) loadDeliveryOffsets() []uint64 {
	out := make([]uint64, c.cfg.Partitions)
	for pid := range out {
		if off, ok := c.loadDeliveryOffset(pid); ok {
			out[pid] = off
		}
	}
	return out
}

// maybeTruncateLog compacts the retained firehose log below the minimum
// restore floor across all replicas: every offset below it is covered by
// a durable restore point, so no restore — including segment-at-a-time
// corruption fallback — can ever need to replay it. The floor counts two
// kinds of restore point: every non-removed replica's own chain floor,
// and each source's newest intact mirror base in the partition pools (a
// mirror's offset is its replay point, and composeFromPool refuses one below the log start
// — so truncating past one would silently disarm the base pool exactly
// when it is needed, e.g. a mirror-only survivor whose own base later
// corrupts). Mirror offsets normally trail their source's chain floor by
// nothing — compact pushes them at the floor offset — but a mirror
// outlives its source (kill, decommission), and then it is the pool's
// only claim on that span. Called from writer goroutines after durable
// progress. The scan and the truncation are one atomic step under truncMu
// so a restore lowering a replica's floor (corrupt chain → scratch)
// cannot interleave between them and have its just-started replay
// truncated out from under it.
func (c *Cluster) maybeTruncateLog() {
	c.truncMu.Lock()
	defer c.truncMu.Unlock()
	c.topoMu.RLock()
	floor := ^uint64(0)
	var dirs []string
	for _, group := range c.slots {
		for _, s := range group {
			if s.state.Load() == replicaRemoved {
				// A tombstone never restores; its floor is irrelevant.
				continue
			}
			if f := s.floor.Load(); f < floor {
				floor = f
			}
			if s.dir != "" {
				dirs = append(dirs, s.dir)
			}
		}
	}
	c.topoMu.RUnlock()
	for _, dir := range dirs {
		for _, off := range mirrorOffsets(dir) {
			if off < floor {
				floor = off
			}
		}
	}
	if floor == 0 || floor == ^uint64(0) {
		return
	}
	if n := c.firehose.TruncateBelow(floor); n > 0 {
		c.truncated.Add(uint64(n))
	}
}

// reloadStatic picks up a newer offline S build for the replica, if the
// configured snapshot directory holds one for its partition — the
// production behavior of a rejoining detection server loading the latest
// published S rather than keeping the build it crashed with. Absent files
// are fine (no newer build); unreadable ones are counted and the current
// S kept.
func (c *Cluster) reloadStatic(slot *replicaSlot) {
	dir := c.cfg.StaticSnapshotDir
	if dir == "" {
		return
	}
	f, err := os.Open(staticSnapshotPath(dir, slot.pid))
	if err != nil {
		return
	}
	defer f.Close()
	snap, err := statstore.ReadSnapshot(f)
	if err != nil {
		c.ckptErrors.Inc()
		return
	}
	slot.p.Load().Engine().ReloadStatic(snap)
	c.staticReloads.Inc()
}

// KillReplica crashes a replica for real: it stops consuming the firehose
// and its entire recoverable state is dropped, unlike FailReplica's
// health-flag failure. Reads route around it, and candidate delivery
// continues from the surviving replicas' redundant emissions. The last
// alive replica of a group cannot be killed — that would lose in-flight
// motifs for the whole partition, which the architecture (like the
// paper's) does not survive.
func (c *Cluster) KillReplica(pid, r int) error {
	if c.cfg.CheckpointDir == "" {
		return ErrRecoveryDisabled
	}
	if c.networked() {
		return ErrNotLocal
	}
	slot, err := c.slot(pid, r)
	if err != nil {
		return err
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	if slot.quit == nil {
		return fmt.Errorf("cluster: replica %d/%d cannot be killed before Start", pid, r)
	}
	switch slot.state.Load() {
	case replicaDead:
		return fmt.Errorf("cluster: replica %d/%d is already dead", pid, r)
	case replicaRemoved:
		return fmt.Errorf("cluster: replica %d/%d is decommissioned", pid, r)
	}
	if c.aliveLocked(pid, slot) < 1 {
		return fmt.Errorf("cluster: cannot kill last alive replica of partition %d", pid)
	}
	slot.state.Store(replicaDead)
	// Tear the consumer down: stop the goroutine, detach the subscription
	// (releasing any publisher blocked on its buffer — buffered envelopes
	// are lost, as with a dead process), then drop the state. The broker
	// MarkDown happens only after the goroutine has stopped: a consumer
	// mid-way through its replaying→live transition may still issue a
	// MarkUp, and ordering ours after <-slot.stopped guarantees the dead
	// replica ends broker-down. The async writer stops after the consumer
	// (its only sender): pending segments drain to disk first, like a
	// kernel flushing a dying process's page cache — the durable chain
	// stays valid for the future restore.
	close(slot.quit)
	c.firehose.Unsubscribe(slot.sub)
	<-slot.stopped
	stopWriterLocked(slot)
	if err := c.broker.MarkDown(pid, r); err != nil {
		return err
	}
	slot.p.Load().Reset()
	// Fresh, open live channel: closed again when a future restore
	// finishes catch-up.
	slot.live = make(chan struct{})
	return nil
}

// aliveLocked counts partition pid's live-or-replaying replicas,
// excluding the given slot. Caller holds ctl (so membership and states
// are stable for the guard's purposes).
func (c *Cluster) aliveLocked(pid int, except *replicaSlot) int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	alive := 0
	for _, s := range c.slots[pid] {
		if s == except {
			continue
		}
		if st := s.state.Load(); st != replicaDead && st != replicaRemoved {
			alive++
		}
	}
	return alive
}

// RestoreReplica rejoins a killed replica through the catch-up state
// machine: compose the durable chain (base plus delta segments, falling
// back a segment at a time on corruption), install the result, then
// replay the retained firehose log from the chain's offset. When the
// replica would rejoin as its group's only coverage and the persisted
// delivery high-water lags the chain head, the chain is clamped back to
// the delivered offset so the replayed span re-emits the candidates the
// group may never have delivered (the promoted-replica gap). The replica
// stays broker-down while replaying, and the delivery tier's offset
// filter absorbs its replayed candidate batches; it turns live once it
// has applied every offset that existed when recovery began. A restore
// also picks up a newer offline S build when Config.StaticSnapshotDir
// provides one. Must not be called concurrently with Stop.
func (c *Cluster) RestoreReplica(pid, r int) error {
	if c.cfg.CheckpointDir == "" {
		return ErrRecoveryDisabled
	}
	if c.networked() {
		return ErrNotLocal
	}
	slot, err := c.slot(pid, r)
	if err != nil {
		return err
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	switch slot.state.Load() {
	case replicaDead:
	case replicaRemoved:
		return fmt.Errorf("cluster: replica %d/%d is decommissioned; use AddReplica for new capacity", pid, r)
	default:
		return fmt.Errorf("cluster: replica %d/%d is not dead; only killed replicas restore", pid, r)
	}
	dir := slot.dir
	man, err := loadManifest(manifestPath(dir), c.runID)
	if err != nil {
		// Unreadable manifest: recover from scratch; replaying the full
		// log rebuilds identical state, just more slowly.
		c.ckptErrors.Inc()
		man = manifest{}
	}
	st, used, offset := composeChain(dir, man.segs)
	if used < len(man.segs) {
		c.ckptErrors.Inc()
		c.truncateManifest(dir, &man, used)
	}
	// The promoted-replica clamp (defense-in-depth: the last-alive guard
	// makes sole-coverage rejoins unreachable through the public API):
	// rejoining as sole coverage with a chain cut ahead of what the group
	// has delivered would skip the span between them, so fall the chain
	// back to the delivered offset. Two safety bounds: never fall below
	// the durable floor (the log may already be truncated up to it — the
	// residual span is the documented truncation-vs-gap tradeoff), and
	// never destroy segments unless the clamped replay point is actually
	// still retained.
	if used > 0 {
		alivePeer := c.aliveLocked(pid, slot) > 0
		if !alivePeer {
			if y, ok := c.loadDeliveryOffset(pid); ok && y < offset {
				keep := clampChainPrefix(man.segs, y)
				if man.segs[0].kind == segKindBase && keep < 1 {
					keep = 1
				}
				replayFrom := uint64(0)
				if keep > 0 {
					replayFrom = man.segs[keep-1].offset
				}
				if keep < used && replayFrom >= c.firehose.LogStart() {
					c.truncateManifest(dir, &man, keep)
					st, used, offset = composeChain(dir, man.segs)
				}
			}
		}
	}
	if used == 0 {
		offset = 0
	}
	if start := c.firehose.LogStart(); offset < start {
		// Scratch recovery above a compacted log (corrupt base, or a
		// chain lost entirely): the partition's base pool — mirrors
		// pushed into this directory by peers, or a peer's own compacted
		// base — can still provide a restore point the log extends. Only
		// when it cannot does SubscribeFrom below surface the documented
		// ErrTruncated.
		head := c.firehose.Published()
		if st2, data, off2, ok := composeFromPool(c.basePool(pid, nil), start, head); ok {
			if man2, serr := c.seedChain(dir, data, off2, man); serr == nil {
				st, used, offset, man = st2, 1, off2, man2
				c.poolRestores.Inc()
			} else {
				c.ckptErrors.Inc()
			}
		}
	}
	if used == 0 {
		slot.p.Load().Reset()
	} else {
		// Audit cross-check: the composed rejoin state must fingerprint-
		// equal what a replica recorded when it held that state live.
		c.verifyComposedState(pid, st, offset)
		slot.p.Load().LoadState(st)
	}
	c.reloadStatic(slot)
	// Publish the restore floor and subscribe as one atomic step against
	// the writers' floor-scan-plus-truncate: a stale floor from this
	// replica's previous incarnation could otherwise let a concurrent peer
	// compaction truncate the log out from under the replay we are about
	// to start. The floor is derived from the chain prefix actually
	// installed — not the manifest, which can retain extra segments when a
	// fallback trim failed — so a scratch restore always advertises zero.
	floor := uint64(0)
	if used > 0 && man.segs[0].kind == segKindBase {
		floor = man.segs[0].offset
	}
	c.truncMu.Lock()
	slot.floor.Store(floor)
	target := c.firehose.Published()
	sub, err := c.firehose.SubscribeFrom(offset)
	c.truncMu.Unlock()
	if err != nil {
		// Only reachable when the chain was lost (corrupt base) after the
		// log below it was truncated; surface rather than silently diverge.
		return fmt.Errorf("cluster: replay from %d: %w", offset, err)
	}
	slot.sub = sub
	slot.quit = make(chan struct{})
	slot.stopped = make(chan struct{})
	slot.clock = ckptClock{}
	slot.writer = c.startWriter(slot, man)
	if offset >= target {
		// Nothing to replay: the checkpoint is already at the head.
		slot.state.Store(replicaLive)
		c.broker.MarkUp(pid, r)
		close(slot.live)
	} else {
		slot.target = target
		slot.state.Store(replicaReplaying)
	}
	c.restores.Inc()
	c.wg.Add(1)
	go c.runReplica(slot)
	return nil
}

// ReplicaState reports a replica's position in the catch-up state machine:
// "live", "replaying", "dead", or "removed" (decommissioned).
func (c *Cluster) ReplicaState(pid, r int) (string, error) {
	slot, err := c.slot(pid, r)
	if err != nil {
		return "", err
	}
	switch slot.state.Load() {
	case replicaReplaying:
		return "replaying", nil
	case replicaDead:
		return "dead", nil
	case replicaRemoved:
		return "removed", nil
	default:
		return "live", nil
	}
}

// AwaitReplicaLive blocks until the replica reaches the live state, up to
// timeout — the test and benchmark hook for measuring catch-up. Waiting
// is event-driven (the slot's live channel closes on the replaying→live
// transition), not a poll. A kill/restore cycle racing the wait counts as
// not reaching live.
func (c *Cluster) AwaitReplicaLive(pid, r int, timeout time.Duration) error {
	slot, err := c.slot(pid, r)
	if err != nil {
		return err
	}
	c.ctl.Lock()
	live := slot.live
	c.ctl.Unlock()
	if slot.state.Load() == replicaLive {
		return nil
	}
	select {
	case <-live:
		return nil
	case <-time.After(timeout):
		state, _ := c.ReplicaState(pid, r)
		return fmt.Errorf("cluster: replica %d/%d still %s after %v", pid, r, state, timeout)
	}
}
