package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"motifstream/internal/codecutil"
	"os"
	"path/filepath"
	"time"
)

// Checkpoint files frame a partition checkpoint with the firehose offset
// it corresponds to: magic, format version, the writing cluster's run id,
// the offset as a uvarint, then the partition payload. One file per
// replica, replaced atomically (write-temp-then-rename) so a crash
// mid-write leaves the previous checkpoint intact. The run id ties a
// checkpoint to the in-memory firehose log its offset indexes: a file
// left behind by a previous process run names positions in a log that no
// longer exists, so restore ignores it and replays from scratch instead
// of resurrecting foreign state.

// ckptMagic identifies the replica checkpoint file format, version 1.
var ckptMagic = [8]byte{'M', 'S', 'C', 'K', 'P', 'T', 0, 1}

const ckptVersion = 1

// ErrRecoveryDisabled is returned by KillReplica/RestoreReplica when the
// cluster was built without Config.CheckpointDir.
var ErrRecoveryDisabled = errors.New("cluster: recovery requires Config.CheckpointDir")

// checkpointPath names the checkpoint file for one replica.
func checkpointPath(dir string, pid, r int) string {
	return filepath.Join(dir, fmt.Sprintf("p%03d-r%02d.ckpt", pid, r))
}

// writeCheckpoint durably persists the replica's state as of nextOffset:
// every envelope with Offset < nextOffset has been applied. Runs inline in
// the replica's consume loop, so the partition state is quiescent. Errors
// are counted, the temp file removed, and the previous checkpoint kept —
// a replica with a stale checkpoint just replays more.
func (c *Cluster) writeCheckpoint(slot *replicaSlot, nextOffset uint64) {
	path := checkpointPath(c.cfg.CheckpointDir, slot.pid, slot.idx)
	tmp := path + ".tmp"
	err := func() error {
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		defer f.Close()
		w := &codecutil.Writer{BW: bufio.NewWriter(f)}
		w.PutBytes(ckptMagic[:])
		w.PutU(ckptVersion)
		w.PutU(c.runID)
		w.PutU(nextOffset)
		if err := w.Flush(); err != nil {
			return err
		}
		if _, err := slot.p.WriteTo(f); err != nil {
			return err
		}
		return f.Sync()
	}()
	if err != nil {
		os.Remove(tmp)
		c.ckptErrors.Inc()
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		c.ckptErrors.Inc()
		return
	}
	c.checkpoints.Inc()
}

// loadCheckpoint restores the newest durable checkpoint for slot into its
// partition and returns the firehose offset replay must start from.
// found is false when no checkpoint exists or the file belongs to a
// different cluster run (recover from scratch in both cases).
func (c *Cluster) loadCheckpoint(dir string, slot *replicaSlot) (offset uint64, found bool, err error) {
	f, err := os.Open(checkpointPath(dir, slot.pid, slot.idx))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, false, fmt.Errorf("checkpoint magic: %w", err)
	}
	if magic != ckptMagic {
		return 0, false, fmt.Errorf("bad checkpoint magic %q", magic[:])
	}
	r := &codecutil.Reader{BR: &codecutil.CountingReader{R: br}, Prefix: "checkpoint"}
	if v := r.U("version"); r.Err == nil && v != ckptVersion {
		return 0, false, fmt.Errorf("unsupported checkpoint version %d", v)
	}
	runID := r.U("run id")
	offset = r.U("offset")
	if r.Err != nil {
		return 0, false, r.Err
	}
	if runID != c.runID {
		// A previous run's checkpoint: its offset indexes a firehose log
		// that died with that process. Recover from scratch instead.
		return 0, false, nil
	}
	if _, err := slot.p.ReadFrom(br); err != nil {
		return 0, false, err
	}
	return offset, true, nil
}

// KillReplica crashes a replica for real: it stops consuming the firehose
// and its entire recoverable state is dropped, unlike FailReplica's
// health-flag failure. Reads route around it, and candidate delivery
// continues from the surviving replicas' redundant emissions. The last
// alive replica of a group cannot be killed — that would lose in-flight
// motifs for the whole partition, which the architecture (like the
// paper's) does not survive.
func (c *Cluster) KillReplica(pid, r int) error {
	if c.cfg.CheckpointDir == "" {
		return ErrRecoveryDisabled
	}
	slot, err := c.slot(pid, r)
	if err != nil {
		return err
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	if slot.quit == nil {
		return fmt.Errorf("cluster: replica %d/%d cannot be killed before Start", pid, r)
	}
	if slot.state.Load() == replicaDead {
		return fmt.Errorf("cluster: replica %d/%d is already dead", pid, r)
	}
	alive := 0
	for _, s := range c.slots[pid] {
		if s.state.Load() != replicaDead {
			alive++
		}
	}
	if alive <= 1 {
		return fmt.Errorf("cluster: cannot kill last alive replica of partition %d", pid)
	}
	slot.state.Store(replicaDead)
	// Tear the consumer down: stop the goroutine, detach the subscription
	// (releasing any publisher blocked on its buffer — buffered envelopes
	// are lost, as with a dead process), then drop the state. The broker
	// MarkDown happens only after the goroutine has stopped: a consumer
	// mid-way through its replaying→live transition may still issue a
	// MarkUp, and ordering ours after <-slot.stopped guarantees the dead
	// replica ends broker-down.
	close(slot.quit)
	c.firehose.Unsubscribe(slot.sub)
	<-slot.stopped
	if err := c.broker.MarkDown(pid, r); err != nil {
		return err
	}
	slot.p.Reset()
	// Fresh, open live channel: closed again when a future restore
	// finishes catch-up.
	slot.live = make(chan struct{})
	return nil
}

// RestoreReplica rejoins a killed replica through the catch-up state
// machine: restore the newest durable checkpoint (or start empty if none
// exists or it is unreadable), then replay the retained firehose log from
// the checkpoint's offset. The replica stays broker-down while replaying,
// and the delivery tier's offset filter absorbs its replayed candidate
// batches; it turns live once it has applied every offset that existed
// when recovery began. Must not be called concurrently with Stop.
func (c *Cluster) RestoreReplica(pid, r int) error {
	if c.cfg.CheckpointDir == "" {
		return ErrRecoveryDisabled
	}
	slot, err := c.slot(pid, r)
	if err != nil {
		return err
	}
	c.ctl.Lock()
	defer c.ctl.Unlock()
	if slot.state.Load() != replicaDead {
		return fmt.Errorf("cluster: replica %d/%d is not dead; only killed replicas restore", pid, r)
	}
	offset, found, err := c.loadCheckpoint(c.cfg.CheckpointDir, slot)
	if err != nil || !found {
		// Unreadable or absent checkpoint: recover from scratch. A failed
		// ReadFrom leaves the partition reset, so replaying the full log
		// rebuilds identical state, just more slowly.
		slot.p.Reset()
		offset = 0
		if err != nil {
			c.ckptErrors.Inc()
		}
	}
	target := c.firehose.Published()
	sub, err := c.firehose.SubscribeFrom(offset)
	if err != nil {
		return fmt.Errorf("cluster: replay from %d: %w", offset, err)
	}
	slot.sub = sub
	slot.quit = make(chan struct{})
	slot.stopped = make(chan struct{})
	slot.lastCkptTS = 0
	if offset >= target {
		// Nothing to replay: the checkpoint is already at the head.
		slot.state.Store(replicaLive)
		c.broker.MarkUp(pid, r)
		close(slot.live)
	} else {
		slot.target = target
		slot.state.Store(replicaReplaying)
	}
	c.restores.Inc()
	c.wg.Add(1)
	go c.runReplica(slot)
	return nil
}

// ReplicaState reports a replica's position in the catch-up state machine:
// "live", "replaying", or "dead".
func (c *Cluster) ReplicaState(pid, r int) (string, error) {
	slot, err := c.slot(pid, r)
	if err != nil {
		return "", err
	}
	switch slot.state.Load() {
	case replicaReplaying:
		return "replaying", nil
	case replicaDead:
		return "dead", nil
	default:
		return "live", nil
	}
}

// AwaitReplicaLive blocks until the replica reaches the live state, up to
// timeout — the test and benchmark hook for measuring catch-up. Waiting
// is event-driven (the slot's live channel closes on the replaying→live
// transition), not a poll. A kill/restore cycle racing the wait counts as
// not reaching live.
func (c *Cluster) AwaitReplicaLive(pid, r int, timeout time.Duration) error {
	slot, err := c.slot(pid, r)
	if err != nil {
		return err
	}
	c.ctl.Lock()
	live := slot.live
	c.ctl.Unlock()
	if slot.state.Load() == replicaLive {
		return nil
	}
	select {
	case <-live:
		return nil
	case <-time.After(timeout):
		state, _ := c.ReplicaState(pid, r)
		return fmt.Errorf("cluster: replica %d/%d still %s after %v", pid, r, state, timeout)
	}
}
