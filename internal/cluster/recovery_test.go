package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"motifstream/internal/delivery"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
)

// recoveryConfig is a 2-partition, 2-replica cluster with durable
// checkpoints and a deterministic, suppression-free delivery pipeline.
func recoveryConfig(t testing.TB, static []graph.Edge) Config {
	t.Helper()
	return Config{
		Partitions:         2,
		Replicas:           2,
		StaticEdges:        static,
		Dynamic:            dynstore.Options{Retention: time.Hour},
		NewPrograms:        diamondPrograms,
		CheckpointDir:      t.TempDir(),
		CheckpointInterval: time.Minute, // stream time
		// Every recovery test runs with the fingerprint audit on: each cut
		// records a state fingerprint and every recovery composition is
		// cross-checked, so any divergence a scenario provokes is caught as
		// a bit-level mismatch, not only as a delivered-set difference.
		Audit: true,
		Delivery: delivery.Options{
			SleepStartHour: 1, SleepEndHour: 1,
			MaxPerUserPerDay: 1 << 30,
			TimezoneOf:       func(graph.VertexID) int { return 0 },
		},
	}
}

// ringStatic wires users 0..n-1 so each follows the next two — motifs can
// complete for A's in every partition.
func ringStatic(n int) []graph.Edge {
	var static []graph.Edge
	for a := graph.VertexID(0); a < graph.VertexID(n); a++ {
		static = append(static,
			graph.Edge{Src: a, Dst: (a + 1) % graph.VertexID(n)},
			graph.Edge{Src: a, Dst: (a + 2) % graph.VertexID(n)},
		)
	}
	return static
}

// motifWorkload generates a seeded stream where consecutive ring members
// follow fresh targets, completing diamonds continually. Stream time
// advances ~3s per step so checkpoint intervals and sweeps trigger.
func motifWorkload(seed int64, users, steps int) []graph.Edge {
	r := rand.New(rand.NewSource(seed))
	t0 := int64(10_000_000)
	var out []graph.Edge
	for i := 0; i < steps; i++ {
		b1 := graph.VertexID(r.Intn(users))
		b2 := (b1 + 1) % graph.VertexID(users)
		target := graph.VertexID(100_000 + i)
		ts := t0 + int64(i)*3_000
		out = append(out,
			graph.Edge{Src: b1, Dst: target, Type: graph.Follow, TS: ts},
			graph.Edge{Src: b2, Dst: target, Type: graph.Follow, TS: ts + 1},
		)
	}
	return out
}

// noteKey identifies one delivered notification for set comparison.
type noteKey struct {
	user, item graph.VertexID
}

// collectNotes wires a mutex-guarded notification recorder into cfg.
func collectNotes(cfg *Config) func() map[noteKey]int {
	var mu sync.Mutex
	got := map[noteKey]int{}
	cfg.OnNotify = func(n delivery.Notification) {
		mu.Lock()
		got[noteKey{n.Candidate.User, n.Candidate.Item}]++
		mu.Unlock()
	}
	return func() map[noteKey]int {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[noteKey]int, len(got))
		for k, v := range got {
			out[k] = v
		}
		return out
	}
}

func TestKillRestoreValidation(t *testing.T) {
	// Without CheckpointDir the recovery subsystem is unavailable.
	plain, err := New(testConfig(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.KillReplica(0, 0); err != ErrRecoveryDisabled {
		t.Fatalf("KillReplica without CheckpointDir = %v", err)
	}
	if err := plain.RestoreReplica(0, 0); err != ErrRecoveryDisabled {
		t.Fatalf("RestoreReplica without CheckpointDir = %v", err)
	}

	cfg := recoveryConfig(t, fig1Static())
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	if err := c.KillReplica(9, 0); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	if err := c.RestoreReplica(0, 0); err == nil {
		t.Fatal("restoring a live replica accepted")
	}
	if err := c.KillReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.KillReplica(0, 0); err == nil {
		t.Fatal("double kill accepted")
	}
	if err := c.KillReplica(0, 1); err == nil {
		t.Fatal("killing the last alive replica accepted")
	}
	if err := c.RecoverReplica(0, 0); err == nil {
		t.Fatal("RecoverReplica on a dead replica accepted; must use RestoreReplica")
	}
	if state, _ := c.ReplicaState(0, 0); state != "dead" {
		t.Fatalf("killed replica state = %q", state)
	}
	if err := c.RestoreReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitReplicaLive(0, 0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestKillReplicaDropsStateAndStopsConsuming(t *testing.T) {
	cfg := recoveryConfig(t, ringStatic(40))
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	stream := motifWorkload(5, 40, 300)
	half := len(stream) / 2
	for _, e := range stream[:half] {
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.KillReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Replica(0, 1)
	if st := p.Engine().Dynamic().Stats(); st.Edges != 0 {
		t.Fatalf("killed replica kept its D store: %+v", st)
	}
	for _, e := range stream[half:] {
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	c.Stop()
	// Dead replica consumed nothing after the kill.
	if st := p.Engine().Dynamic().Stats(); st.Edges != 0 {
		t.Fatalf("dead replica kept consuming: %+v", st)
	}
	// Its healthy peer consumed everything.
	peer, _ := c.Replica(0, 0)
	if st := peer.Engine().Dynamic().Stats(); st.Edges == 0 {
		t.Fatal("surviving replica has an empty D store")
	}
}

// TestFaultEquivalenceOracle is the suite's centerpiece: the same seeded
// workload runs through a no-fault cluster and through a cluster whose
// replica is killed mid-stream, restored from its durable checkpoint, and
// caught up by replaying the firehose. The delivered notification sets
// must be identical — no lost and no duplicate pushes — and the recovered
// replica's D store must converge to the no-fault replica's.
func TestFaultEquivalenceOracle(t *testing.T) {
	static := ringStatic(60)
	stream := motifWorkload(42, 60, 600)

	// Oracle: no faults.
	oracleCfg := recoveryConfig(t, static)
	oracleNotes := collectNotes(&oracleCfg)
	oracle, err := New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Start()
	for _, e := range stream {
		if err := oracle.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	oracle.Stop()

	// Fault run: kill replica 1 of both partitions a third in, restore
	// two thirds in, let catch-up finish before the stream ends.
	faultCfg := recoveryConfig(t, static)
	faultNotes := collectNotes(&faultCfg)
	fault, err := New(faultCfg)
	if err != nil {
		t.Fatal(err)
	}
	fault.Start()
	killAt := len(stream) / 3
	restoreAt := 2 * len(stream) / 3
	for i, e := range stream {
		if i == killAt {
			for pid := 0; pid < faultCfg.Partitions; pid++ {
				if err := fault.KillReplica(pid, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		if i == restoreAt {
			for pid := 0; pid < faultCfg.Partitions; pid++ {
				if err := fault.RestoreReplica(pid, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := fault.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	fault.Stop()
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		if state, _ := fault.ReplicaState(pid, 1); state != "live" {
			t.Fatalf("partition %d replica 1 state = %q after drain, want live", pid, state)
		}
	}

	// Delivered notification sets are identical.
	want, got := oracleNotes(), faultNotes()
	if len(want) == 0 {
		t.Fatal("vacuous: oracle run delivered nothing")
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("notification %v delivered %d times in fault run, %d in oracle", k, got[k], n)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("fault run delivered %v, oracle did not", k)
		}
	}

	// The recovered replicas' D stores converge to the no-fault ones.
	for pid := 0; pid < faultCfg.Partitions; pid++ {
		recovered, _ := fault.Replica(pid, 1)
		reference, _ := oracle.Replica(pid, 1)
		gotD := recovered.Engine().Dynamic().Stats()
		wantD := reference.Engine().Dynamic().Stats()
		if gotD != wantD {
			t.Fatalf("partition %d recovered D stats %+v != oracle %+v", pid, gotD, wantD)
		}
		// And to their own surviving peer's.
		peer, _ := fault.Replica(pid, 0)
		if peerD := peer.Engine().Dynamic().Stats(); gotD != peerD {
			t.Fatalf("partition %d recovered D stats %+v != peer %+v", pid, gotD, peerD)
		}
	}

	// Checkpoints were actually written and used.
	st := fault.Stats()
	if st.Checkpoints == 0 {
		t.Fatal("fault run wrote no checkpoints")
	}
	if st.Restores != uint64(faultCfg.Partitions) {
		t.Fatalf("Restores = %d, want %d", st.Restores, faultCfg.Partitions)
	}
}

// TestRestoreWithoutCheckpointReplaysFromZero covers the cold-restore
// path: no checkpoint file exists, so the replica rebuilds purely from
// the retained firehose log.
func TestRestoreWithoutCheckpointReplaysFromZero(t *testing.T) {
	cfg := recoveryConfig(t, ringStatic(40))
	cfg.CheckpointInterval = time.Hour * 24 * 365 // never checkpoint
	notes := collectNotes(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	stream := motifWorkload(11, 40, 400)
	third := len(stream) / 3
	for _, e := range stream[:third] {
		c.Publish(e)
	}
	if err := c.KillReplica(1, 0); err != nil {
		t.Fatal(err)
	}
	for _, e := range stream[third : 2*third] {
		c.Publish(e)
	}
	if err := c.RestoreReplica(1, 0); err != nil {
		t.Fatal(err)
	}
	for _, e := range stream[2*third:] {
		c.Publish(e)
	}
	c.Stop()
	if state, _ := c.ReplicaState(1, 0); state != "live" {
		t.Fatalf("state = %q after drain", state)
	}
	restored, _ := c.Replica(1, 0)
	peer, _ := c.Replica(1, 1)
	if got, want := restored.Engine().Dynamic().Stats(), peer.Engine().Dynamic().Stats(); got != want {
		t.Fatalf("cold-restored D stats %+v != peer %+v", got, want)
	}
	if len(notes()) == 0 {
		t.Fatal("vacuous: nothing delivered")
	}
}

// TestRestoreFromCorruptCheckpointFallsBack truncates the newest durable
// segment on disk: restore must not fail or panic — it falls the chain
// back a segment (replaying the difference from the firehose) and still
// converges.
func TestRestoreFromCorruptCheckpointFallsBack(t *testing.T) {
	cfg := recoveryConfig(t, ringStatic(40))
	cfg.CheckpointInterval = time.Second // checkpoint densely (stream time)
	// Disable compaction so the chain stays all-delta: the newest segment
	// is then never the base, and fallback — even all the way to scratch —
	// always has the full retained log to replay (truncation only begins
	// once bases exist). A corrupt *base* above a truncated log is the
	// documented unrecoverable case (docs/DURABILITY.md), not this test's.
	cfg.CompactEvery = 1 << 20
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	stream := motifWorkload(13, 40, 300)
	half := len(stream) / 2
	for _, e := range stream[:half] {
		c.Publish(e)
	}
	// Publishing and persistence are asynchronous: wait for the replica to
	// have at least one durable segment before crashing it.
	dir := replicaCkptDir(cfg.CheckpointDir, 0, 0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if man, err := loadManifest(manifestPath(dir), c.runID); err == nil && len(man.segs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint segment appeared within 10s")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.KillReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest segment of the (now quiescent) chain.
	man, err := loadManifest(manifestPath(dir), c.runID)
	if err != nil || len(man.segs) == 0 {
		t.Fatalf("manifest unreadable after kill: %v (%d segs)", err, len(man.segs))
	}
	path := segmentPath(dir, man.segs[len(man.segs)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	// The fallback trimmed the corrupt segment out of the durable chain.
	if after, err := loadManifest(manifestPath(dir), c.runID); err != nil || len(after.segs) >= len(man.segs) {
		t.Fatalf("corrupt segment not trimmed: %v (%d -> %d segs)", err, len(man.segs), len(after.segs))
	}
	for _, e := range stream[half:] {
		c.Publish(e)
	}
	c.Stop()
	restored, _ := c.Replica(0, 0)
	peer, _ := c.Replica(0, 1)
	if got, want := restored.Engine().Dynamic().Stats(), peer.Engine().Dynamic().Stats(); got != want {
		t.Fatalf("fallback-restored D stats %+v != peer %+v", got, want)
	}
}

// TestCheckpointFilesAreWrittenAtomically checks the on-disk layout: one
// directory per replica whose manifest names only existing segment files,
// no leftover temp files, no orphan segments outside the manifest.
func TestCheckpointFilesAreWrittenAtomically(t *testing.T) {
	cfg := recoveryConfig(t, ringStatic(40))
	cfg.CheckpointInterval = time.Second
	cfg.CompactEvery = 4 // force at least one compaction
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for _, e := range motifWorkload(17, 40, 200) {
		c.Publish(e)
	}
	c.Stop()
	for pid := 0; pid < cfg.Partitions; pid++ {
		for r := 0; r < cfg.Replicas; r++ {
			dir := replicaCkptDir(cfg.CheckpointDir, pid, r)
			man, err := loadManifest(manifestPath(dir), c.runID)
			if err != nil {
				t.Fatalf("manifest for %d/%d: %v", pid, r, err)
			}
			if len(man.segs) == 0 {
				t.Fatalf("empty chain for %d/%d", pid, r)
			}
			// The audit log rides alongside the chain (recoveryConfig
			// turns the fingerprint audit on).
			named := map[string]bool{"MANIFEST": true, "audit.log": true}
			for _, seg := range man.segs {
				path := segmentPath(dir, seg)
				if _, err := os.Stat(path); err != nil {
					t.Fatalf("manifest names missing segment %s: %v", path, err)
				}
				named[filepath.Base(path)] = true
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if !named[e.Name()] {
					t.Fatalf("orphan file %s in %s", e.Name(), dir)
				}
			}
		}
	}
	tmps, err := filepath.Glob(filepath.Join(cfg.CheckpointDir, "*", "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("leftover temp files: %v", tmps)
	}
	st := c.Stats()
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints recorded")
	}
	if st.Compactions == 0 {
		t.Fatal("no compactions recorded despite CompactEvery=4")
	}
}

// TestRestoredReplicaServesReadsAfterCatchUp exercises the broker gate:
// while replaying, reads never route to the stale replica; after catch-up
// they do again.
func TestRestoredReplicaServesReadsAfterCatchUp(t *testing.T) {
	cfg := recoveryConfig(t, ringStatic(40))
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	stream := motifWorkload(19, 40, 300)
	half := len(stream) / 2
	for _, e := range stream[:half] {
		c.Publish(e)
	}
	if err := c.KillReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if c.Broker().ReplicaHealthy(0, 0) {
		t.Fatal("dead replica still broker-healthy")
	}
	if err := c.RestoreReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	// The broker keeps the replica down until catch-up completes. The
	// state machine may already have flipped to live if replay was quick,
	// so only assert the invariant: replaying => broker-down.
	if state, _ := c.ReplicaState(0, 0); state == "replaying" && c.Broker().ReplicaHealthy(0, 0) {
		t.Fatal("replaying replica marked broker-healthy")
	}
	if err := c.AwaitReplicaLive(0, 0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.Broker().ReplicaHealthy(0, 0) {
		t.Fatal("live replica not broker-healthy after catch-up")
	}
	for _, e := range stream[half:] {
		c.Publish(e)
	}
	c.Stop()
	// Both replicas healthy: reads for partition-0 users succeed.
	served := 0
	for a := graph.VertexID(0); a < 40; a++ {
		if c.part.PartitionOf(a) != 0 {
			continue
		}
		if recs, err := c.RecommendationsFor(a); err == nil && len(recs) > 0 {
			served++
		}
	}
	if served == 0 {
		t.Fatal("no partition-0 reads served after recovery")
	}
}

// TestRepeatedKillRestoreCycles stresses the state machine: several
// sequential crash/recover cycles against a flowing stream, alternating
// replicas, must keep converging.
func TestRepeatedKillRestoreCycles(t *testing.T) {
	cfg := recoveryConfig(t, ringStatic(40))
	cfg.CheckpointInterval = 5 * time.Second
	notes := collectNotes(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	stream := motifWorkload(23, 40, 800)
	chunk := len(stream) / 8
	kills := 0
	for i, e := range stream {
		if i > 0 && i%chunk == 0 {
			// Alternate crash and recover on replica 1 at each boundary,
			// waiting out catch-up so every cycle starts from full health.
			if state, _ := c.ReplicaState(0, 1); state == "dead" {
				if err := c.RestoreReplica(0, 1); err != nil {
					t.Fatal(err)
				}
				if err := c.AwaitReplicaLive(0, 1, 30*time.Second); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := c.KillReplica(0, 1); err != nil {
					t.Fatal(err)
				}
				kills++
			}
		}
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	// Restore if the last cycle left the replica dead, so the run drains
	// to full health.
	if state, _ := c.ReplicaState(0, 1); state == "dead" {
		if err := c.RestoreReplica(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	c.Stop()
	if kills < 3 {
		t.Fatalf("only %d kill cycles ran", kills)
	}
	for r := 0; r < 2; r++ {
		if state, _ := c.ReplicaState(0, r); state != "live" {
			t.Fatalf("replica %d state = %q after drain", r, state)
		}
	}
	a, _ := c.Replica(0, 0)
	b, _ := c.Replica(0, 1)
	if got, want := a.Engine().Dynamic().Stats(), b.Engine().Dynamic().Stats(); got != want {
		t.Fatalf("replicas diverged after cycles: %+v != %+v", got, want)
	}
	if len(notes()) == 0 {
		t.Fatal("vacuous: nothing delivered")
	}
	if st := c.Stats(); st.Restores < uint64(kills) {
		t.Fatalf("Restores = %d for %d kills", st.Restores, kills)
	}
}

// TestRestoreIgnoresForeignRunCheckpoints reuses a checkpoint directory
// across two cluster runs: the second run's restore must not resurrect
// the first run's state — its offsets index a firehose log that died with
// that cluster — and must instead replay its own log from scratch.
func TestRestoreIgnoresForeignRunCheckpoints(t *testing.T) {
	dir := t.TempDir()
	static := ringStatic(40)
	newCfg := func() Config {
		cfg := recoveryConfig(t, static)
		cfg.CheckpointDir = dir
		cfg.CheckpointInterval = time.Second
		return cfg
	}

	// Run 1: a long stream, checkpoints land on disk.
	c1, err := New(newCfg())
	if err != nil {
		t.Fatal(err)
	}
	c1.Start()
	for _, e := range motifWorkload(41, 40, 400) {
		c1.Publish(e)
	}
	c1.Stop()
	if st := c1.Stats(); st.Checkpoints == 0 {
		t.Fatal("run 1 wrote no checkpoints")
	}

	// Run 2: same dir, much shorter stream. Restore must ignore run 1's
	// files (their offsets exceed run 2's head) and converge to the peer.
	c2, err := New(newCfg())
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	stream := motifWorkload(43, 40, 60)
	half := len(stream) / 2
	for _, e := range stream[:half] {
		c2.Publish(e)
	}
	if err := c2.KillReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c2.RestoreReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	for _, e := range stream[half:] {
		c2.Publish(e)
	}
	c2.Stop()
	if state, _ := c2.ReplicaState(0, 1); state != "live" {
		t.Fatalf("state = %q after drain", state)
	}
	restored, _ := c2.Replica(0, 1)
	peer, _ := c2.Replica(0, 0)
	if got, want := restored.Engine().Dynamic().Stats(), peer.Engine().Dynamic().Stats(); got != want {
		t.Fatalf("restored replica diverged (foreign state resurrected?): %+v != %+v", got, want)
	}
}

// TestConcurrentKillRestoreIsSerialized hammers the lifecycle API from
// many goroutines: no panics (double close), and the last-alive guard
// must hold — both replicas can never be dead at once.
func TestConcurrentKillRestoreIsSerialized(t *testing.T) {
	cfg := recoveryConfig(t, ringStatic(40))
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for _, e := range motifWorkload(31, 40, 100) {
		if err := c.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			victim := g % 2
			for i := 0; i < 50; i++ {
				c.KillReplica(0, victim)    // errors expected, panics not
				c.RestoreReplica(0, victim) // ditto
			}
		}(g)
	}
	wg.Wait()
	aDead, _ := c.ReplicaState(0, 0)
	bDead, _ := c.ReplicaState(0, 1)
	if aDead == "dead" && bDead == "dead" {
		t.Fatal("both replicas dead: last-alive guard violated under concurrency")
	}
	// Drain to full health and stop cleanly.
	for r := 0; r < 2; r++ {
		if state, _ := c.ReplicaState(0, r); state == "dead" {
			if err := c.RestoreReplica(0, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Stop()
}

// TestRecoveryStatsString smoke-checks the state names.
func TestRecoveryStatsString(t *testing.T) {
	cfg := recoveryConfig(t, fig1Static())
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	for _, want := range []string{"live"} {
		got, err := c.ReplicaState(0, 0)
		if err != nil || got != want {
			t.Fatalf("ReplicaState = %q, %v; want %q", got, err, want)
		}
	}
	if _, err := c.ReplicaState(7, 7); err == nil {
		t.Fatal("out-of-range state query accepted")
	}
	_ = fmt.Sprintf("%v", c.Stats())
}
