// Package codecutil holds the small helpers shared by the binary
// checkpoint codecs (dynstore, core, partition): byte-exact read/write
// counting so nested io.WriterTo/io.ReaderFrom sections compose, and
// capped preallocation for lengths decoded from untrusted input.
package codecutil

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// castagnoli is the CRC32C polynomial table shared by every checksummed
// frame in the repository (checkpoint segments, WAL records). Castagnoli
// is hardware-accelerated on amd64/arm64, so hashing at write and verify
// at read costs well under a memory copy.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C returns the Castagnoli CRC of p.
func CRC32C(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// HashWriter forwards writes to W while folding every byte into a CRC32C.
// Codecs wrap their payload writer with it and append Sum() as a trailer,
// so any later bit flip in the stored bytes is detected at decode.
type HashWriter struct {
	W   io.Writer
	crc uint32
}

// Write implements io.Writer.
func (h *HashWriter) Write(p []byte) (int, error) {
	n, err := h.W.Write(p)
	h.crc = crc32.Update(h.crc, castagnoli, p[:n])
	return n, err
}

// Sum returns the CRC32C of everything written so far.
func (h *HashWriter) Sum() uint32 { return h.crc }

// HashReader forwards reads from R while folding every byte into a
// CRC32C — the decode-side mirror of HashWriter. It preserves the
// ByteReader contract so varint decoding stays read-ahead free.
type HashReader struct {
	R   ByteReader
	crc uint32
}

// ReadByte implements io.ByteReader.
func (h *HashReader) ReadByte() (byte, error) {
	b, err := h.R.ReadByte()
	if err == nil {
		h.crc = crc32.Update(h.crc, castagnoli, []byte{b})
	}
	return b, err
}

// Read implements io.Reader.
func (h *HashReader) Read(p []byte) (int, error) {
	n, err := h.R.Read(p)
	h.crc = crc32.Update(h.crc, castagnoli, p[:n])
	return n, err
}

// Sum returns the CRC32C of everything read so far.
func (h *HashReader) Sum() uint32 { return h.crc }

// WriteChecksum appends sum as the 4-byte little-endian frame trailer.
func WriteChecksum(w io.Writer, sum uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], sum)
	_, err := w.Write(buf[:])
	return err
}

// VerifyChecksum reads a 4-byte trailer from r and compares it with want
// (the hash of the payload just consumed). Context names the frame in the
// error.
func VerifyChecksum(r io.Reader, want uint32, context string) error {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return fmt.Errorf("%s: reading checksum trailer: %w", context, err)
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != want {
		return fmt.Errorf("%s: checksum mismatch: stored %08x, computed %08x", context, got, want)
	}
	return nil
}

// ExpectMagic reads len(want) bytes from r and fails unless they match.
// Context names the file kind in the error. (Newer codecs open their
// files with it; several older codecs still hand-roll the same check.)
func ExpectMagic(r io.Reader, want []byte, context string) error {
	got := make([]byte, len(want))
	if _, err := io.ReadFull(r, got); err != nil {
		return fmt.Errorf("%s magic: %w", context, err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("%s: bad magic %q", context, got)
	}
	return nil
}

// ByteReader is the reader contract varint decoding needs; *bufio.Reader
// satisfies it.
type ByteReader interface {
	io.Reader
	io.ByteReader
}

// AsByteReader adapts r without double-buffering when it already buffers.
// Wrapping a raw reader in bufio means read-ahead, so framed container
// formats must pass a ByteReader down to embedded sections.
func AsByteReader(r io.Reader) ByteReader {
	if br, ok := r.(ByteReader); ok {
		return br
	}
	return bufio.NewReader(r)
}

// CountingReader counts consumed bytes without read-ahead, so a section
// embedded in a larger stream leaves the reader positioned exactly past
// its own payload and the reported total is exact.
type CountingReader struct {
	R ByteReader
	N int64
}

// ReadByte implements io.ByteReader.
func (c *CountingReader) ReadByte() (byte, error) {
	b, err := c.R.ReadByte()
	if err == nil {
		c.N++
	}
	return b, err
}

// Read implements io.Reader.
func (c *CountingReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	c.N += int64(n)
	return n, err
}

// CountingWriter counts bytes written for the io.WriterTo contract.
type CountingWriter struct {
	W io.Writer
	N int64
}

// Write implements io.Writer.
func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	c.N += int64(n)
	return n, err
}

// Writer is an error-latching varint writer: after the first failure
// every Put becomes a no-op and the error is reported once via Err.
type Writer struct {
	BW  *bufio.Writer
	Err error
	buf [binary.MaxVarintLen64]byte
}

// PutU writes v as a uvarint.
func (w *Writer) PutU(v uint64) {
	if w.Err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.Err = w.BW.Write(w.buf[:n])
}

// PutI writes v as a zigzag varint.
func (w *Writer) PutI(v int64) {
	if w.Err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], v)
	_, w.Err = w.BW.Write(w.buf[:n])
}

// PutBytes writes b raw.
func (w *Writer) PutBytes(b []byte) {
	if w.Err != nil {
		return
	}
	_, w.Err = w.BW.Write(b)
}

// PutString writes a length-prefixed string.
func (w *Writer) PutString(s string) {
	w.PutU(uint64(len(s)))
	w.PutBytes([]byte(s))
}

// Flush latches any flush error and returns the first error seen.
func (w *Writer) Flush() error {
	if w.Err == nil {
		w.Err = w.BW.Flush()
	}
	return w.Err
}

// Reader is an error-latching varint reader: after the first failure
// every get returns zero values and the error is reported once via Err.
// Prefix names the decoding layer in error messages.
type Reader struct {
	BR     *CountingReader
	Prefix string
	Err    error
}

// Fail latches err with the given field context.
func (r *Reader) Fail(context string, err error) {
	if r.Err == nil {
		r.Err = fmt.Errorf("%s: %s: %w", r.Prefix, context, err)
	}
}

// U reads a uvarint.
func (r *Reader) U(context string) uint64 {
	if r.Err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.BR)
	if err != nil {
		r.Fail(context, err)
	}
	return v
}

// I reads a zigzag varint.
func (r *Reader) I(context string) int64 {
	if r.Err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.BR)
	if err != nil {
		r.Fail(context, err)
	}
	return v
}

// String reads a length-prefixed string, rejecting lengths above max.
func (r *Reader) String(context string, max uint64) string {
	n := r.U(context)
	if r.Err != nil {
		return ""
	}
	if n > max {
		r.Fail(context, fmt.Errorf("implausible length %d", n))
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.BR, b); err != nil {
		r.Fail(context, err)
		return ""
	}
	return string(b)
}

// maxPreallocHint caps capacity hints taken from untrusted length fields:
// a corrupt length under a format's plausibility bound must fail with a
// decode error when the data runs out, not allocate gigabytes up front.
const maxPreallocHint = 4096

// PreallocHint returns n clamped to the preallocation cap.
func PreallocHint(n uint64) int {
	if n > maxPreallocHint {
		return maxPreallocHint
	}
	return int(n)
}
