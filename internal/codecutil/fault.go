package codecutil

import (
	"errors"
	"io"
)

// errfs-lite: an injected-failure layer below the checkpoint pipeline's
// file writes. The crash matrix kills at pipeline *stages*; wrapping the
// file handle itself lets a test fail (and tear) an individual Write or
// Sync call — the failure mode of a machine dying mid-push — without a
// real filesystem shim.

// WriteSyncCloser is the file surface the durability pipeline writes
// through; *os.File satisfies it.
type WriteSyncCloser interface {
	io.Writer
	Sync() error
	io.Closer
}

// ErrInjected is the error every FailNth-injected failure returns.
var ErrInjected = errors.New("codecutil: injected fault")

// FailNth wraps a WriteSyncCloser and fails the Nth Write and/or the Nth
// Sync (1-based; zero never fires). A failing Write is *torn*: the first
// half of the buffer reaches the underlying file before the error, which
// is exactly what a machine crash mid-write leaves on disk — readers must
// survive it via their checksums, not via tidy error-path cleanup.
type FailNth struct {
	F           WriteSyncCloser
	FailWriteAt int
	FailSyncAt  int

	writes, syncs int
}

// Write implements io.Writer, tearing the armed call.
func (f *FailNth) Write(p []byte) (int, error) {
	f.writes++
	if f.FailWriteAt > 0 && f.writes == f.FailWriteAt {
		n, _ := f.F.Write(p[:len(p)/2])
		return n, ErrInjected
	}
	return f.F.Write(p)
}

// Sync fails the armed call without reaching the device.
func (f *FailNth) Sync() error {
	f.syncs++
	if f.FailSyncAt > 0 && f.syncs == f.FailSyncAt {
		return ErrInjected
	}
	return f.F.Sync()
}

// Close closes the underlying file (never injected: a crashed process's
// descriptors close either way).
func (f *FailNth) Close() error { return f.F.Close() }
