package codecutil

import (
	"bytes"
	"errors"
	"testing"
)

// memFile is an in-memory WriteSyncCloser.
type memFile struct {
	bytes.Buffer
	syncs int
}

func (m *memFile) Sync() error  { m.syncs++; return nil }
func (m *memFile) Close() error { return nil }

func TestFailNthWriteTears(t *testing.T) {
	m := &memFile{}
	f := &FailNth{F: m, FailWriteAt: 2}
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd write err = %v", err)
	}
	if n != 2 {
		t.Fatalf("torn write landed %d bytes, want half (2)", n)
	}
	if got := m.String(); got != "aaaabb" {
		t.Fatalf("file contents %q: the tear must leave a half-written record", got)
	}
	// Later writes pass through again (the process, were it real, is gone
	// anyway — but the wrapper must not latch).
	if _, err := f.Write([]byte("cc")); err != nil {
		t.Fatal(err)
	}
}

func TestFailNthSync(t *testing.T) {
	m := &memFile{}
	f := &FailNth{F: m, FailSyncAt: 1}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("1st sync err = %v", err)
	}
	if m.syncs != 0 {
		t.Fatal("injected sync reached the device")
	}
	if err := f.Sync(); err != nil || m.syncs != 1 {
		t.Fatalf("2nd sync err=%v device syncs=%d", err, m.syncs)
	}
}

func TestFailNthDisarmed(t *testing.T) {
	m := &memFile{}
	f := &FailNth{F: m}
	for i := 0; i < 10; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
