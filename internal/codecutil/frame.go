package codecutil

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Record framing shared by the WAL segments and the transport wire
// protocol: every frame is
//
//	u32 payload length | u32 CRC32C(payload) | payload
//
// The framing was born in internal/queue's WAL; it lives here so the
// networked transport can reuse the exact same codec without importing
// the queue package (and so both sides stay byte-compatible forever —
// a WAL record and a wire frame are the same thing at the byte level).

// FrameHeaderLen is the fixed per-frame header size.
const FrameHeaderLen = 8

// ErrFrameCorrupt is returned by ReadFrame when a frame's checksum does
// not match its payload or its length field is implausible (zero).
var ErrFrameCorrupt = errors.New("codecutil: frame corrupt")

// ErrFrameTooLarge is returned by ReadFrame when a frame's length field
// exceeds the caller's bound — on a socket this is either corruption or a
// hostile peer, and must fail before allocating the claimed length.
var ErrFrameTooLarge = errors.New("codecutil: frame exceeds size bound")

// EncodeFrameHeader fills hdr (at least FrameHeaderLen bytes) with the
// length and CRC32C of payload.
func EncodeFrameHeader(hdr []byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], CRC32C(payload))
}

// DecodeFrameHeader extracts the length and CRC fields from hdr.
func DecodeFrameHeader(hdr []byte) (n, crc uint32) {
	return binary.LittleEndian.Uint32(hdr[:4]), binary.LittleEndian.Uint32(hdr[4:8])
}

// WriteFrame writes one framed payload: header, then payload bytes.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [FrameHeaderLen]byte
	EncodeFrameHeader(hdr[:], payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from r, verifying the checksum. buf is an
// optional reuse buffer; the returned slice aliases it when it is large
// enough. max bounds the accepted payload length (frames claiming more
// fail with ErrFrameTooLarge before any allocation). A clean EOF at a
// frame boundary returns io.EOF; EOF inside a frame returns
// io.ErrUnexpectedEOF — the caller decides whether a torn frame is a
// recoverable tail or a protocol failure.
func ReadFrame(r io.Reader, buf []byte, max uint32) ([]byte, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("codecutil: frame header: %w", io.ErrUnexpectedEOF)
	}
	n, crc := DecodeFrameHeader(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("codecutil: zero-length frame: %w", ErrFrameCorrupt)
	}
	if n > max {
		return nil, fmt.Errorf("codecutil: frame length %d > bound %d: %w", n, max, ErrFrameTooLarge)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("codecutil: frame payload: %w", io.ErrUnexpectedEOF)
	}
	if CRC32C(payload) != crc {
		return nil, fmt.Errorf("codecutil: frame checksum mismatch: %w", ErrFrameCorrupt)
	}
	return payload, nil
}
