package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

// batchWorkload produces a stream with motif completions, repeats, and
// enough stream-time advance to trigger sweeps.
func batchWorkload(seed int64, n int) []graph.Edge {
	r := rand.New(rand.NewSource(seed))
	t0 := int64(1_000_000)
	out := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, graph.Edge{
			Src:  graph.VertexID(1 + r.Intn(4)),
			Dst:  graph.VertexID(10 + r.Intn(4)),
			Type: graph.Follow,
			TS:   t0 + int64(i)*500, // sweeps (1m default) fire mid-stream
		})
	}
	return out
}

// TestApplyBatchEquivalence: chunked ApplyBatch produces the same
// per-event candidates, counters, D state, and sweep clock as per-event
// Apply, for every chunking.
func TestApplyBatchEquivalence(t *testing.T) {
	stream := batchWorkload(5, 400)
	for _, batch := range []int{1, 3, 16, 400} {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			seq := testEngine(t, fig1Static(), nil)
			var seqCands [][]motif.Candidate
			for _, e := range stream {
				seqCands = append(seqCands, seq.Apply(e))
			}

			bat := testEngine(t, fig1Static(), nil)
			got := make([][]motif.Candidate, len(stream))
			for lo := 0; lo < len(stream); lo += batch {
				hi := lo + batch
				if hi > len(stream) {
					hi = len(stream)
				}
				bat.ApplyBatch(stream[lo:hi], got[lo:hi])
			}

			for i := range stream {
				if !reflect.DeepEqual(seqCands[i], got[i]) {
					t.Fatalf("event %d: batched candidates %+v != sequential %+v", i, got[i], seqCands[i])
				}
			}
			ss, bs := seq.Stats(), bat.Stats()
			if ss.Events != bs.Events || ss.Candidates != bs.Candidates {
				t.Fatalf("counters diverged: seq %d/%d, batch %d/%d", ss.Events, ss.Candidates, bs.Events, bs.Candidates)
			}
			if ss.Dynamic != bs.Dynamic {
				t.Fatalf("D stats diverged: seq %+v, batch %+v", ss.Dynamic, bs.Dynamic)
			}
			if seq.SweepClock() != bat.SweepClock() {
				t.Fatalf("sweep clock diverged: seq %d, batch %d", seq.SweepClock(), bat.SweepClock())
			}
		})
	}
}

// TestLatencyMetricSplit pins the satellite bugfix: engine.query_latency
// observes only the program-execution span, and the new
// engine.ingest_latency keeps the old insert-inclusive total visible.
// Both histograms must observe once per event.
func TestLatencyMetricSplit(t *testing.T) {
	e := testEngine(t, fig1Static(), nil)
	const n = 50
	for i := 0; i < n; i++ {
		e.Apply(graph.Edge{Src: 1, Dst: graph.VertexID(100 + i), Type: graph.Follow, TS: 1_000_000 + int64(i)})
	}
	st := e.Stats()
	if st.QueryLatency.Count != n {
		t.Fatalf("query_latency observed %d times, want %d", st.QueryLatency.Count, n)
	}
	if st.IngestLatency.Count != n {
		t.Fatalf("ingest_latency observed %d times, want %d", st.IngestLatency.Count, n)
	}
	// Ingest covers a superset span of query, so its mean cannot be
	// smaller (histogram bucketing grants equality).
	if st.IngestLatency.Mean < st.QueryLatency.Mean {
		t.Fatalf("ingest mean %v < query mean %v: insert span missing from ingest_latency",
			st.IngestLatency.Mean, st.QueryLatency.Mean)
	}
}

// newAllocEngine builds an engine whose workload completes no motifs (S
// is empty) over a bounded set of targets, the steady-state regime where
// the hot path must not allocate.
func newAllocEngine(tb testing.TB) *Engine {
	tb.Helper()
	b := &statstore.Builder{}
	e, err := NewEngine(Config{
		Static: statstore.New(b.Build(nil)),
		// A short retention keeps the per-target lists bounded so Insert's
		// append reuses capacity in steady state.
		Dynamic: dynstore.New(dynstore.Options{Retention: time.Minute, MaxPerTarget: 64}),
		Programs: []motif.Program{
			motif.NewDiamond(motif.DiamondConfig{K: 3, Window: 30 * time.Second, MaxFanout: 64}),
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// TestApplyBatchAllocBudget is the allocation-regression gate of the
// candidate-generation path: once warm, the no-candidate batched hot path
// must average under one heap allocation per event. The previous
// per-event path allocated the recent-actor slice, the list headers, and
// the intersection output on every edge (~5+ allocs/event); the budget
// pins the >=90%% reduction.
func TestApplyBatchAllocBudget(t *testing.T) {
	e := newAllocEngine(t)
	const batch = 64
	edges := make([]graph.Edge, batch)
	out := make([][]motif.Candidate, batch)
	ts := int64(1_000_000)
	fill := func() {
		for i := range edges {
			ts += 20
			edges[i] = graph.Edge{
				Src:  graph.VertexID(1 + (i % 8)),
				Dst:  graph.VertexID(50 + (i % 4)),
				Type: graph.Follow,
				TS:   ts,
			}
		}
	}
	// Warm up: grow D lists, scratch buffers, and pools to steady state.
	for i := 0; i < 20; i++ {
		fill()
		e.ApplyBatch(edges, out)
	}
	perBatch := testing.AllocsPerRun(20, func() {
		fill()
		e.ApplyBatch(edges, out)
	})
	if perEvent := perBatch / batch; perEvent > 1.0 {
		t.Fatalf("batched no-candidate path allocates %.2f/event (%.1f/batch); budget is 1/event", perEvent, perBatch)
	}
}

// BenchmarkEngineApply measures the per-event sequential path; its alloc
// report is the baseline the batched benchmark is compared against.
func BenchmarkEngineApply(b *testing.B) {
	e := newAllocEngine(b)
	b.ReportAllocs()
	ts := int64(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts += 20
		e.Apply(graph.Edge{Src: graph.VertexID(1 + i%8), Dst: graph.VertexID(50 + i%4), Type: graph.Follow, TS: ts})
	}
}

// BenchmarkEngineApplyBatch measures the batched hot path: lock
// acquisition, scratch, and counter updates amortized over the batch.
// Run in bench-smoke; allocs/op is the number to watch.
func BenchmarkEngineApplyBatch(b *testing.B) {
	e := newAllocEngine(b)
	const batch = 64
	edges := make([]graph.Edge, batch)
	out := make([][]motif.Candidate, batch)
	ts := int64(1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range edges {
			ts += 20
			edges[j] = graph.Edge{Src: graph.VertexID(1 + j%8), Dst: graph.VertexID(50 + j%4), Type: graph.Follow, TS: ts}
		}
		e.ApplyBatch(edges, out)
	}
}
