package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"motifstream/internal/codecutil"
)

// The engine checkpoint format wraps the D-store snapshot with the
// engine's own stream-time state: a magic header, the format version, the
// last-sweep stream timestamp, then the embedded dynstore snapshot.
// Restoring the sweep clock matters for fault equivalence: pruning is
// driven by stream time, so a recovered replica that replays the firehose
// from its checkpoint offset must sweep on exactly the cadence the
// original would have, or its D store diverges from the no-fault run.

// engineMagic identifies the engine checkpoint format, version 1.
var engineMagic = [8]byte{'M', 'S', 'E', 'N', 'G', 'S', 0, 1}

const engineSnapVersion = 1

// WriteTo serializes the engine's recoverable state — the sweep clock and
// the full D store — implementing io.WriterTo. The caller must not run
// Apply concurrently (the replica checkpoint loop serializes them).
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	cw := &codecutil.CountingWriter{W: w}
	var buf [8 + 2*binary.MaxVarintLen64]byte
	copy(buf[:8], engineMagic[:])
	n := 8
	n += binary.PutUvarint(buf[n:], engineSnapVersion)
	e.mu.Lock()
	lastSweep := e.lastSweep
	e.mu.Unlock()
	n += binary.PutVarint(buf[n:], lastSweep)
	if _, err := cw.Write(buf[:n]); err != nil {
		return cw.N, err
	}
	_, err := e.dynamic.WriteTo(cw)
	return cw.N, err
}

// ReadFrom restores engine state written by WriteTo, implementing
// io.ReaderFrom: the sweep clock and the D store are replaced. Malformed
// input returns an error, never panics.
func (e *Engine) ReadFrom(r io.Reader) (int64, error) {
	br := &codecutil.CountingReader{R: codecutil.AsByteReader(r)}
	dec := &codecutil.Reader{BR: br, Prefix: "core"}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return br.N, fmt.Errorf("core: reading engine checkpoint magic: %w", err)
	}
	if magic != engineMagic {
		return br.N, fmt.Errorf("core: bad engine checkpoint magic %q", magic[:])
	}
	if v := dec.U("engine checkpoint version"); dec.Err == nil && v != engineSnapVersion {
		return br.N, fmt.Errorf("core: unsupported engine checkpoint version %d", v)
	}
	lastSweep := dec.I("sweep clock")
	if dec.Err != nil {
		return br.N, dec.Err
	}
	// The store reads through br, so its bytes are already counted.
	if _, err := e.dynamic.ReadFrom(br); err != nil {
		return br.N, err
	}
	e.mu.Lock()
	e.lastSweep = lastSweep
	e.mu.Unlock()
	return br.N, nil
}

// Reset drops the engine's recoverable state — D contents and the sweep
// clock — modeling a crashed detection server. S is rebuilt from the
// offline pipeline, not checkpointed, so it is left in place.
func (e *Engine) Reset() {
	e.mu.Lock()
	e.lastSweep = 0
	e.mu.Unlock()
	e.dynamic.Reset()
}
