package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"motifstream/internal/codecutil"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
)

// The engine checkpoint format wraps the D-store snapshot with the
// engine's own stream-time state: a magic header, the format version, the
// last-sweep stream timestamp, then the embedded dynstore snapshot.
// Restoring the sweep clock matters for fault equivalence: pruning is
// driven by stream time, so a recovered replica that replays the firehose
// from its checkpoint offset must sweep on exactly the cadence the
// original would have, or its D store diverges from the no-fault run.

// engineMagic identifies the engine checkpoint format, version 1.
var engineMagic = [8]byte{'M', 'S', 'E', 'N', 'G', 'S', 0, 1}

const engineSnapVersion = 1

// writeEngineHeader emits the magic, version, and sweep clock.
func writeEngineHeader(w io.Writer, sweepClock int64) (int64, error) {
	var buf [8 + 2*binary.MaxVarintLen64]byte
	copy(buf[:8], engineMagic[:])
	n := 8
	n += binary.PutUvarint(buf[n:], engineSnapVersion)
	n += binary.PutVarint(buf[n:], sweepClock)
	m, err := w.Write(buf[:n])
	return int64(m), err
}

// readEngineHeader parses the magic, version, and sweep clock, leaving br
// positioned at the embedded dynstore snapshot.
func readEngineHeader(br *codecutil.CountingReader) (int64, error) {
	dec := &codecutil.Reader{BR: br, Prefix: "core"}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("core: reading engine checkpoint magic: %w", err)
	}
	if magic != engineMagic {
		return 0, fmt.Errorf("core: bad engine checkpoint magic %q", magic[:])
	}
	if v := dec.U("engine checkpoint version"); dec.Err == nil && v != engineSnapVersion {
		return 0, fmt.Errorf("core: unsupported engine checkpoint version %d", v)
	}
	sweepClock := dec.I("sweep clock")
	return sweepClock, dec.Err
}

// EncodeEngineState serializes a captured engine state — sweep clock plus
// target map — in the engine checkpoint format. This is the compactor's
// path for writing a composed base without touching a live Engine; the
// bytes are identical to Engine.WriteTo of an engine holding that state.
func EncodeEngineState(w io.Writer, sweepClock int64, targets map[graph.VertexID][]dynstore.InEdge) (int64, error) {
	cw := &codecutil.CountingWriter{W: w}
	if _, err := writeEngineHeader(cw, sweepClock); err != nil {
		return cw.N, err
	}
	_, err := dynstore.EncodeSnapshot(cw, targets)
	return cw.N, err
}

// DecodeEngineState parses an engine checkpoint section into its neutral
// representation (sweep clock + target map) without touching any Engine,
// so delta segments can be composed on top before installation. When r is
// an io.ByteReader no read-ahead happens past the section.
func DecodeEngineState(r io.Reader) (sweepClock int64, targets map[graph.VertexID][]dynstore.InEdge, n int64, err error) {
	br := &codecutil.CountingReader{R: codecutil.AsByteReader(r)}
	sweepClock, err = readEngineHeader(br)
	if err != nil {
		return 0, nil, br.N, err
	}
	targets, _, err = dynstore.DecodeSnapshot(br)
	return sweepClock, targets, br.N, err
}

// WriteTo serializes the engine's recoverable state — the sweep clock and
// the full D store — implementing io.WriterTo. The caller must not run
// Apply concurrently (the replica checkpoint pipeline serializes them).
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	cw := &codecutil.CountingWriter{W: w}
	if _, err := writeEngineHeader(cw, e.SweepClock()); err != nil {
		return cw.N, err
	}
	_, err := e.dynamic.WriteTo(cw)
	return cw.N, err
}

// ReadFrom restores engine state written by WriteTo, implementing
// io.ReaderFrom: the sweep clock and the D store are replaced. Malformed
// input returns an error, never panics.
func (e *Engine) ReadFrom(r io.Reader) (int64, error) {
	br := &codecutil.CountingReader{R: codecutil.AsByteReader(r)}
	lastSweep, err := readEngineHeader(br)
	if err != nil {
		return br.N, err
	}
	// The store reads through br, so its bytes are already counted.
	if _, err := e.dynamic.ReadFrom(br); err != nil {
		return br.N, err
	}
	e.lastSweep.Store(lastSweep)
	return br.N, nil
}

// SweepClock returns the stream time of the last D prune — the engine
// half of a checkpoint cut.
func (e *Engine) SweepClock() int64 { return e.lastSweep.Load() }

// LoadState installs a composed checkpoint state: the sweep clock and the
// D contents are replaced, taking ownership of targets. The recovery path
// composes base + delta segments into the map first and installs once.
func (e *Engine) LoadState(sweepClock int64, targets map[graph.VertexID][]dynstore.InEdge) {
	e.dynamic.LoadSnapshot(targets)
	e.lastSweep.Store(sweepClock)
}

// Reset drops the engine's recoverable state — D contents and the sweep
// clock — modeling a crashed detection server. S is rebuilt from the
// offline pipeline, not checkpointed, so it is left in place.
func (e *Engine) Reset() {
	e.lastSweep.Store(0)
	e.dynamic.Reset()
}
