package core

import (
	"bytes"
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

func newCheckpointEngine(t *testing.T) *Engine {
	t.Helper()
	b := &statstore.Builder{}
	snap := b.Build([]graph.Edge{{Src: 1, Dst: 10}, {Src: 2, Dst: 10}})
	e, err := NewEngine(Config{
		Static:        statstore.New(snap),
		Dynamic:       dynstore.New(dynstore.Options{Retention: time.Hour}),
		Programs:      []motif.Program{motif.NewDiamond(motif.DiamondConfig{K: 2, Window: time.Hour})},
		SweepInterval: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineCheckpointRoundTrip(t *testing.T) {
	orig := newCheckpointEngine(t)
	t0 := int64(10_000_000)
	for i := 0; i < 200; i++ {
		orig.Apply(graph.Edge{
			Src: graph.VertexID(10 + i%5),
			Dst: graph.VertexID(500 + i%7),
			TS:  t0 + int64(i)*1_000,
		})
	}

	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	restored := newCheckpointEngine(t)
	m, err := restored.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("ReadFrom consumed %d bytes, checkpoint is %d", m, n)
	}
	if got, want := restored.Dynamic().Stats(), orig.Dynamic().Stats(); got != want {
		t.Fatalf("restored D stats %+v != %+v", got, want)
	}
	gotSweep, wantSweep := restored.SweepClock(), orig.SweepClock()
	if gotSweep != wantSweep {
		t.Fatalf("restored sweep clock %d != %d", gotSweep, wantSweep)
	}
}

// TestEngineCheckpointSweepEquivalence is the sweep-cadence property the
// oracle suite depends on: continuing a restored engine over the stream
// suffix yields the same D store as the uninterrupted engine, because the
// sweep clock survives the checkpoint.
func TestEngineCheckpointSweepEquivalence(t *testing.T) {
	stream := make([]graph.Edge, 3_000)
	t0 := int64(10_000_000)
	for i := range stream {
		stream[i] = graph.Edge{
			Src: graph.VertexID(10 + i%13),
			Dst: graph.VertexID(500 + i%31),
			TS:  t0 + int64(i)*2_500, // crosses many sweep intervals
		}
	}
	cut := len(stream) / 3

	straight := newCheckpointEngine(t)
	for _, e := range stream {
		straight.Apply(e)
	}

	first := newCheckpointEngine(t)
	for _, e := range stream[:cut] {
		first.Apply(e)
	}
	var buf bytes.Buffer
	if _, err := first.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resumed := newCheckpointEngine(t)
	if _, err := resumed.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range stream[cut:] {
		resumed.Apply(e)
	}

	if got, want := resumed.Dynamic().Stats(), straight.Dynamic().Stats(); got != want {
		t.Fatalf("resumed D stats %+v != straight %+v", got, want)
	}
}

func TestEngineCheckpointRejectsCorruptInput(t *testing.T) {
	e := newCheckpointEngine(t)
	e.Apply(graph.Edge{Src: 10, Dst: 500, TS: 1_000_000})
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, bad := range [][]byte{
		{},
		[]byte("NOTMAGIC"),
		good[:5],
		good[:len(good)-3],
	} {
		fresh := newCheckpointEngine(t)
		if _, err := fresh.ReadFrom(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corrupt input of len %d decoded without error", len(bad))
		}
	}
}

func TestEngineReset(t *testing.T) {
	e := newCheckpointEngine(t)
	e.Apply(graph.Edge{Src: 10, Dst: 500, TS: 10_000_000})
	e.Reset()
	if st := e.Dynamic().Stats(); st.Edges != 0 {
		t.Fatalf("Reset left D with %+v", st)
	}
	if got := e.SweepClock(); got != 0 {
		t.Fatalf("Reset left sweep clock at %d", got)
	}
}
