// Package core ties the paper's two logical components together: "the
// partitioned graph infrastructure that maintains the relevant data
// structures" (S and D) and "the 'program' that performs the motif
// detection" (§3). An Engine is the partition-local unit: it owns one S
// snapshot, one D store, and a set of motif programs, and turns a stream of
// dynamic edges into recommendation candidates. The cluster packages stack
// partitioning, replication, brokers, and delivery on top.
package core

import (
	"fmt"
	"sync"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

// Config assembles an Engine.
type Config struct {
	// Static is the S store. Required.
	Static *statstore.Store
	// Dynamic is the D store. Required.
	Dynamic *dynstore.Store
	// Programs are the motif programs to run per edge, in order. At least
	// one is required.
	Programs []motif.Program
	// Follows optionally reports existing a→c follows for candidate
	// suppression.
	Follows func(a, c graph.VertexID) bool
	// Metrics receives engine instrumentation; nil creates a private
	// registry.
	Metrics *metrics.Registry
	// SweepInterval is the stream-time interval between background D
	// prunes; zero selects one minute.
	SweepInterval time.Duration
}

// Engine applies dynamic edges to D and runs motif programs. Safe for
// concurrent Apply calls.
type Engine struct {
	static  *statstore.Store
	dynamic *dynstore.Store
	ctx     *motif.Context
	progs   []motif.Program

	reg          *metrics.Registry
	events       *metrics.Counter
	candidates   *metrics.Counter
	queryLatency *metrics.Histogram

	sweepEvery int64 // ms of stream time between sweeps
	mu         sync.Mutex
	lastSweep  int64
}

// NewEngine validates cfg and constructs an Engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Static == nil {
		return nil, fmt.Errorf("core: Config.Static is required")
	}
	if cfg.Dynamic == nil {
		return nil, fmt.Errorf("core: Config.Dynamic is required")
	}
	if len(cfg.Programs) == 0 {
		return nil, fmt.Errorf("core: at least one motif program is required")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	sweep := cfg.SweepInterval
	if sweep <= 0 {
		sweep = time.Minute
	}
	e := &Engine{
		static:  cfg.Static,
		dynamic: cfg.Dynamic,
		ctx: &motif.Context{
			S:       cfg.Static,
			D:       cfg.Dynamic,
			Follows: cfg.Follows,
		},
		progs:        cfg.Programs,
		reg:          reg,
		events:       reg.Counter("engine.events"),
		candidates:   reg.Counter("engine.candidates"),
		queryLatency: reg.Histogram("engine.query_latency"),
		sweepEvery:   sweep.Milliseconds(),
	}
	return e, nil
}

// Apply ingests one dynamic edge: inserts it into D exactly once, runs
// every program, and returns the combined candidates. The measured
// wall-clock duration of the graph work is recorded in the
// engine.query_latency histogram — the paper's "the actual graph queries
// take only a few milliseconds" claim is checked against this.
func (e *Engine) Apply(edge graph.Edge) []motif.Candidate {
	start := time.Now()
	e.dynamic.Insert(edge)
	var out []motif.Candidate
	for _, p := range e.progs {
		cands := p.OnEdge(e.ctx, edge)
		if len(cands) > 0 {
			out = append(out, cands...)
		}
	}
	e.queryLatency.Observe(time.Since(start))
	e.events.Inc()
	e.candidates.Add(uint64(len(out)))
	e.maybeSweep(edge.TS)
	return out
}

// maybeSweep prunes D when enough stream time has elapsed. Pruning is
// driven by stream time, not wall time, so replayed/simulated streams prune
// identically to live ones.
func (e *Engine) maybeSweep(nowMS int64) {
	e.mu.Lock()
	due := nowMS-e.lastSweep >= e.sweepEvery
	if due {
		e.lastSweep = nowMS
	}
	e.mu.Unlock()
	if due {
		e.dynamic.Sweep(nowMS)
	}
}

// ReloadStatic swaps in a freshly built S snapshot, modeling the periodic
// offline load of the paper.
func (e *Engine) ReloadStatic(s *statstore.Snapshot) { e.static.Reload(s) }

// Static returns the engine's S store.
func (e *Engine) Static() *statstore.Store { return e.static }

// Dynamic returns the engine's D store.
func (e *Engine) Dynamic() *dynstore.Store { return e.dynamic }

// Metrics returns the engine's registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Stats summarizes engine activity.
type Stats struct {
	Events       uint64
	Candidates   uint64
	QueryLatency metrics.Snapshot
	Dynamic      dynstore.Stats
}

// Stats returns current counters and store sizes.
func (e *Engine) Stats() Stats {
	return Stats{
		Events:       e.events.Value(),
		Candidates:   e.candidates.Value(),
		QueryLatency: e.queryLatency.Snapshot(),
		Dynamic:      e.dynamic.Stats(),
	}
}
