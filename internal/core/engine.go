// Package core ties the paper's two logical components together: "the
// partitioned graph infrastructure that maintains the relevant data
// structures" (S and D) and "the 'program' that performs the motif
// detection" (§3). An Engine is the partition-local unit: it owns one S
// snapshot, one D store, and a set of motif programs, and turns a stream of
// dynamic edges into recommendation candidates. The cluster packages stack
// partitioning, replication, brokers, and delivery on top.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

// Config assembles an Engine.
type Config struct {
	// Static is the S store. Required.
	Static *statstore.Store
	// Dynamic is the D store. Required.
	Dynamic *dynstore.Store
	// Programs are the motif programs to run per edge, in order. At least
	// one is required.
	Programs []motif.Program
	// Follows optionally reports existing a→c follows for candidate
	// suppression.
	Follows func(a, c graph.VertexID) bool
	// Metrics receives engine instrumentation; nil creates a private
	// registry.
	Metrics *metrics.Registry
	// SweepInterval is the stream-time interval between background D
	// prunes; zero selects one minute.
	SweepInterval time.Duration
	// DisableSharing runs every planned program as an independent per-event
	// scan instead of grouping common probe prefixes. The shared and
	// independent paths produce identical candidates; the knob exists for
	// differential tests and for measuring the sharing win.
	DisableSharing bool
}

// Engine applies dynamic edges to D and runs motif programs. Safe for
// concurrent Apply calls.
type Engine struct {
	static  *statstore.Store
	dynamic *dynstore.Store
	ctx     *motif.Context
	progs   []progEntry

	// Shared execution trie: planned programs with a common probe prefix
	// (equal ShareKey) run the per-event D/S work once. groupSlots[i]
	// holds the registration index of each member of groups[i], so group
	// results land in their registration-order slots.
	groups     []*motif.PlannedGroup
	groupSlots [][]int
	// scansSavedPerEvent is the number of per-event program invocations
	// sharing avoids versus independent execution: sum over groups of
	// (members - 1).
	scansSavedPerEvent int

	stats *graph.LiveDegreeStats

	reg           *metrics.Registry
	events        *metrics.Counter
	candidates    *metrics.Counter
	queryLatency  *metrics.Histogram
	ingestLatency *metrics.Histogram

	sweepEvery int64 // ms of stream time between sweeps
	lastSweep  atomic.Int64
}

// progEntry caches the ScratchProgram assertion per program so the hot
// path does not repeat the interface check on every edge.
type progEntry struct {
	p  motif.Program
	sp motif.ScratchProgram // non-nil when p implements the scratch path
	// grouped marks programs executed by a shared group; their candidates
	// are picked up from the result slot instead of a direct invocation.
	grouped bool
}

// NewEngine validates cfg and constructs an Engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Static == nil {
		return nil, fmt.Errorf("core: Config.Static is required")
	}
	if cfg.Dynamic == nil {
		return nil, fmt.Errorf("core: Config.Dynamic is required")
	}
	if len(cfg.Programs) == 0 {
		return nil, fmt.Errorf("core: at least one motif program is required")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	sweep := cfg.SweepInterval
	if sweep <= 0 {
		sweep = time.Minute
	}
	stats := &graph.LiveDegreeStats{}
	e := &Engine{
		static:  cfg.Static,
		dynamic: cfg.Dynamic,
		stats:   stats,
		ctx: &motif.Context{
			S:       cfg.Static,
			D:       cfg.Dynamic,
			Follows: cfg.Follows,
			Stats:   stats,
		},
		reg:           reg,
		events:        reg.Counter("engine.events"),
		candidates:    reg.Counter("engine.candidates"),
		queryLatency:  reg.Histogram("engine.query_latency"),
		ingestLatency: reg.Histogram("engine.ingest_latency"),
		sweepEvery:    sweep.Milliseconds(),
	}
	for _, p := range cfg.Programs {
		ent := progEntry{p: p}
		ent.sp, _ = p.(motif.ScratchProgram)
		e.progs = append(e.progs, ent)
	}
	if !cfg.DisableSharing {
		if err := e.buildGroups(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// buildGroups partitions the planned programs by ShareKey and forms a
// shared group for every key with at least two members (a singleton gains
// nothing from the group machinery). Group members keep their
// registration indices so candidate assembly stays in registration order.
func (e *Engine) buildGroups() error {
	byKey := map[string][]int{}
	var keys []string
	for i := range e.progs {
		pp, ok := e.progs[i].p.(*motif.PlannedProgram)
		if !ok {
			continue
		}
		k := pp.ShareKey()
		if len(byKey[k]) == 0 {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], i)
	}
	for _, k := range keys {
		idxs := byKey[k]
		if len(idxs) < 2 {
			continue
		}
		members := make([]*motif.PlannedProgram, len(idxs))
		for j, i := range idxs {
			members[j] = e.progs[i].p.(*motif.PlannedProgram)
			e.progs[i].grouped = true
		}
		g, err := motif.NewPlannedGroup(members)
		if err != nil {
			return fmt.Errorf("core: grouping programs: %w", err)
		}
		e.groups = append(e.groups, g)
		e.groupSlots = append(e.groupSlots, idxs)
		e.scansSavedPerEvent += len(idxs) - 1
	}
	if len(e.groups) > 0 {
		e.reg.Counter("engine.shared_groups").Add(uint64(len(e.groups)))
		e.reg.Counter("engine.shared_group_members").Add(uint64(len(e.groups) + e.scansSavedPerEvent))
	}
	return nil
}

// Apply ingests one dynamic edge: inserts it into D exactly once, runs
// every program, and returns the combined candidates. Two histograms time
// the work: engine.query_latency covers only the program-execution span —
// the paper's "the actual graph queries take only a few milliseconds" claim
// is checked against this — while engine.ingest_latency covers the full
// span including the D-store insert.
func (e *Engine) Apply(edge graph.Edge) []motif.Candidate {
	s := motif.GetScratch()
	out := e.applyOne(edge, s)
	motif.PutScratch(s)
	e.events.Inc()
	e.candidates.Add(uint64(len(out)))
	e.maybeSweep(edge.TS)
	return out
}

// applyOne inserts edge into D, runs every program with the given scratch,
// and observes the latency histograms. Counters and sweeps are the
// caller's responsibility so batched callers can amortize them.
func (e *Engine) applyOne(edge graph.Edge, s *motif.Scratch) []motif.Candidate {
	start := time.Now()
	e.dynamic.Insert(edge)
	detect := time.Now()
	var out []motif.Candidate
	var res [][]motif.Candidate
	if len(e.groups) > 0 {
		// Shared prefixes first: each group runs its trigger filter and
		// D/S probes once, parking member results in their registration
		// slots. Programs are read-only past the D insert above, so
		// running groups ahead of ungrouped programs cannot change any
		// result — only the assembly below determines candidate order.
		res = s.ResultSlots(len(e.progs))
		for gi, g := range e.groups {
			g.DetectInto(e.ctx, edge, s, res, e.groupSlots[gi])
		}
	}
	for i := range e.progs {
		ent := &e.progs[i]
		var cands []motif.Candidate
		switch {
		case ent.grouped:
			cands = res[i]
			res[i] = nil
		case ent.sp != nil:
			cands = ent.sp.OnEdgeScratch(e.ctx, edge, s)
		default:
			cands = ent.p.OnEdge(e.ctx, edge)
		}
		if len(cands) > 0 {
			if out == nil {
				out = cands
			} else {
				out = append(out, cands...)
			}
		}
	}
	end := time.Now()
	e.queryLatency.Observe(end.Sub(detect))
	e.ingestLatency.Observe(end.Sub(start))
	return out
}

// DetectBatch ingests edges[i] and stores its candidates into out[i]
// (which must have len(edges) slots), amortizing scratch acquisition and
// counter updates across the batch. It deliberately does NOT advance the
// sweep clock: batched callers sequence sweeps explicitly through
// SweepDue/MaybeSweep so that concurrent DetectBatch calls cannot race a
// prune. Concurrent calls are safe and equivalent to some sequential
// interleaving provided no two concurrent batches share an edge target —
// programs only read D at the triggering edge's target (see
// motif.Program's locality contract), so per-target insert order is all
// that matters.
func (e *Engine) DetectBatch(edges []graph.Edge, out [][]motif.Candidate) {
	if len(edges) == 0 {
		return
	}
	s := motif.GetScratch()
	total := 0
	for i, edge := range edges {
		out[i] = e.applyOne(edge, s)
		total += len(out[i])
	}
	motif.PutScratch(s)
	e.events.Add(uint64(len(edges)))
	e.candidates.Add(uint64(total))
}

// ApplyBatch is the batched equivalent of calling Apply on each edge in
// order: identical detection results and identical sweep points, with
// scratch acquisition and counter updates paid once per batch instead of
// once per edge. out must have len(edges) slots; out[i] receives edge i's
// candidates.
func (e *Engine) ApplyBatch(edges []graph.Edge, out [][]motif.Candidate) {
	if len(edges) == 0 {
		return
	}
	s := motif.GetScratch()
	total := 0
	for i, edge := range edges {
		out[i] = e.applyOne(edge, s)
		total += len(out[i])
		e.maybeSweep(edge.TS)
	}
	motif.PutScratch(s)
	e.events.Add(uint64(len(edges)))
	e.candidates.Add(uint64(total))
}

// SweepDue reports whether a D prune would trigger at stream time nowMS,
// without performing one. The cluster's batched path uses it to force a
// batch boundary exactly where the sequential path would sweep.
func (e *Engine) SweepDue(nowMS int64) bool {
	return nowMS-e.lastSweep.Load() >= e.sweepEvery
}

// MaybeSweep prunes D if a sweep is due at nowMS. Exported for batched
// callers that sequence sweeps in their ordered commit stage.
func (e *Engine) MaybeSweep(nowMS int64) { e.maybeSweep(nowMS) }

// maybeSweep prunes D when enough stream time has elapsed. Pruning is
// driven by stream time, not wall time, so replayed/simulated streams prune
// identically to live ones. The clock is a CAS so the due-check costs one
// atomic load on the hot path; a lost race means another goroutine claimed
// this sweep.
func (e *Engine) maybeSweep(nowMS int64) {
	last := e.lastSweep.Load()
	if nowMS-last < e.sweepEvery {
		return
	}
	if e.lastSweep.CompareAndSwap(last, nowMS) {
		e.dynamic.Sweep(nowMS)
	}
}

// ReloadStatic swaps in a freshly built S snapshot, modeling the periodic
// offline load of the paper.
func (e *Engine) ReloadStatic(s *statstore.Snapshot) { e.static.Reload(s) }

// Static returns the engine's S store.
func (e *Engine) Static() *statstore.Store { return e.static }

// Dynamic returns the engine's D store.
func (e *Engine) Dynamic() *dynstore.Store { return e.dynamic }

// Metrics returns the engine's registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// LiveDegrees returns the incrementally maintained degree views fed by the
// detection hot path. Compile motifs with motifdsl.CompileLive against
// this view to let the planner order probes from live quantiles.
func (e *Engine) LiveDegrees() *graph.LiveDegreeStats { return e.stats }

// SharingStats describes the engine's shared execution trie.
type SharingStats struct {
	// Programs is the number of registered programs.
	Programs int
	// Groups is the number of shared-prefix groups (>= 2 members each).
	Groups int
	// GroupedPrograms is the number of programs executed through a group.
	GroupedPrograms int
	// ScansSavedPerEvent is the per-event program invocations avoided by
	// sharing: sum over groups of (members - 1).
	ScansSavedPerEvent int
}

// SharedFraction is the fraction of per-event program scans the trie
// eliminates relative to independent execution.
func (s SharingStats) SharedFraction() float64 {
	if s.Programs == 0 {
		return 0
	}
	return float64(s.ScansSavedPerEvent) / float64(s.Programs)
}

// Sharing reports how the registered programs were grouped.
func (e *Engine) Sharing() SharingStats {
	grouped := 0
	for i := range e.progs {
		if e.progs[i].grouped {
			grouped++
		}
	}
	return SharingStats{
		Programs:           len(e.progs),
		Groups:             len(e.groups),
		GroupedPrograms:    grouped,
		ScansSavedPerEvent: e.scansSavedPerEvent,
	}
}

// Stats summarizes engine activity.
type Stats struct {
	Events     uint64
	Candidates uint64
	// QueryLatency is the program-execution span only (the paper's
	// "queries take a few milliseconds" claim).
	QueryLatency metrics.Snapshot
	// IngestLatency is the full per-event span: D insert plus programs.
	IngestLatency metrics.Snapshot
	Dynamic       dynstore.Stats
}

// Stats returns current counters and store sizes.
func (e *Engine) Stats() Stats {
	return Stats{
		Events:        e.events.Value(),
		Candidates:    e.candidates.Value(),
		QueryLatency:  e.queryLatency.Snapshot(),
		IngestLatency: e.ingestLatency.Snapshot(),
		Dynamic:       e.dynamic.Stats(),
	}
}
