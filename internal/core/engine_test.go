package core

import (
	"sync"
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

func testEngine(t *testing.T, static []graph.Edge, cfgTweak func(*Config)) *Engine {
	t.Helper()
	b := &statstore.Builder{}
	cfg := Config{
		Static:  statstore.New(b.Build(static)),
		Dynamic: dynstore.New(dynstore.Options{Retention: time.Hour}),
		Programs: []motif.Program{
			motif.NewDiamond(motif.DiamondConfig{K: 2, Window: 10 * time.Minute}),
		},
	}
	if cfgTweak != nil {
		cfgTweak(&cfg)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func fig1Static() []graph.Edge {
	return []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 2, Dst: 10},
		{Src: 2, Dst: 11}, {Src: 3, Dst: 11},
	}
}

func TestNewEngineValidation(t *testing.T) {
	b := &statstore.Builder{}
	s := statstore.New(b.Build(nil))
	d := dynstore.New(dynstore.Options{})
	progs := []motif.Program{&motif.FreshFollow{}}
	if _, err := NewEngine(Config{Dynamic: d, Programs: progs}); err == nil {
		t.Fatal("missing Static accepted")
	}
	if _, err := NewEngine(Config{Static: s, Programs: progs}); err == nil {
		t.Fatal("missing Dynamic accepted")
	}
	if _, err := NewEngine(Config{Static: s, Dynamic: d}); err == nil {
		t.Fatal("missing Programs accepted")
	}
}

func TestEngineDetectsAndCounts(t *testing.T) {
	e := testEngine(t, fig1Static(), nil)
	t0 := int64(1_000_000)
	e.Apply(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0})
	got := e.Apply(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1_000})
	if len(got) != 1 || got[0].User != 2 {
		t.Fatalf("candidates = %v", got)
	}
	st := e.Stats()
	if st.Events != 2 {
		t.Fatalf("Events = %d", st.Events)
	}
	if st.Candidates != 1 {
		t.Fatalf("Candidates = %d", st.Candidates)
	}
	if st.QueryLatency.Count != 2 {
		t.Fatalf("latency observations = %d", st.QueryLatency.Count)
	}
	if st.Dynamic.Edges != 2 {
		t.Fatalf("D edges = %d", st.Dynamic.Edges)
	}
}

func TestEngineInsertsEachEdgeOnce(t *testing.T) {
	// Two programs must not double-insert: D should hold exactly the
	// applied edges.
	e := testEngine(t, fig1Static(), func(c *Config) {
		c.Programs = append(c.Programs, &motif.FreshFollow{})
	})
	for i := 0; i < 5; i++ {
		e.Apply(graph.Edge{Src: 10, Dst: graph.VertexID(50 + i), Type: graph.Follow, TS: int64(i)})
	}
	if st := e.Stats(); st.Dynamic.Edges != 5 {
		t.Fatalf("D edges = %d, want 5", st.Dynamic.Edges)
	}
}

func TestEngineStreamTimeSweep(t *testing.T) {
	e := testEngine(t, fig1Static(), func(c *Config) {
		c.Dynamic = dynstore.New(dynstore.Options{Retention: time.Minute})
		c.SweepInterval = time.Minute
	})
	t0 := int64(1_000_000)
	// Fill D with edges to many distinct targets.
	for i := 0; i < 10; i++ {
		e.Apply(graph.Edge{Src: 10, Dst: graph.VertexID(100 + i), Type: graph.Follow, TS: t0})
	}
	if st := e.Stats(); st.Dynamic.Targets != 10 {
		t.Fatalf("targets before sweep = %d", st.Dynamic.Targets)
	}
	// Advance stream time by 2 minutes: sweep becomes due and the old
	// targets (outside 1m retention) vanish.
	e.Apply(graph.Edge{Src: 11, Dst: 200, Type: graph.Follow, TS: t0 + 120_000})
	if st := e.Stats(); st.Dynamic.Targets != 1 {
		t.Fatalf("targets after sweep = %d, want 1 (only the fresh one)", st.Dynamic.Targets)
	}
}

func TestEngineReloadStatic(t *testing.T) {
	e := testEngine(t, fig1Static(), nil)
	b := &statstore.Builder{}
	// New static graph: only user 7 follows the B's.
	e.ReloadStatic(b.Build([]graph.Edge{
		{Src: 7, Dst: 10}, {Src: 7, Dst: 11},
	}))
	t0 := int64(1_000_000)
	e.Apply(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0})
	got := e.Apply(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1})
	if len(got) != 1 || got[0].User != 7 {
		t.Fatalf("after reload: %v, want recommendation to user 7", got)
	}
}

func TestEngineFollowsSuppression(t *testing.T) {
	e := testEngine(t, fig1Static(), func(c *Config) {
		c.Follows = func(a, cID graph.VertexID) bool { return true } // suppress everything
	})
	t0 := int64(1_000_000)
	e.Apply(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0})
	if got := e.Apply(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1}); len(got) != 0 {
		t.Fatalf("suppression ignored: %v", got)
	}
}

func TestEngineSharedMetricsRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	e := testEngine(t, fig1Static(), func(c *Config) { c.Metrics = reg })
	if e.Metrics() != reg {
		t.Fatal("engine did not adopt the shared registry")
	}
	e.Apply(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: 1})
	if reg.Counter("engine.events").Value() != 1 {
		t.Fatal("shared registry not updated")
	}
}

func TestEngineConcurrentApply(t *testing.T) {
	e := testEngine(t, fig1Static(), nil)
	var wg sync.WaitGroup
	const writers = 4
	const per = 1_000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.Apply(graph.Edge{
					Src: graph.VertexID(10 + w),
					Dst: graph.VertexID(i % 100),
					TS:  int64(i),
				})
			}
		}(w)
	}
	wg.Wait()
	if st := e.Stats(); st.Events != writers*per {
		t.Fatalf("Events = %d, want %d", st.Events, writers*per)
	}
}

func TestEngineAccessors(t *testing.T) {
	e := testEngine(t, fig1Static(), nil)
	if e.Static() == nil || e.Dynamic() == nil {
		t.Fatal("nil accessors")
	}
}
