package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/motifdsl"
	"motifstream/internal/statstore"
)

// sharedMotifSet compiles a mixed standing-query set: three share groups
// (follow diamonds, content co-action with per-type windows, k=1
// broadcasts) plus a hand-written Diamond that stays outside the trie.
func sharedMotifSet(t testing.TB) []motif.Program {
	t.Helper()
	src := ""
	for i, k := range []int{2, 3, 4} {
		src += fmt.Sprintf(`
motif "follow-k%d" {
    match A -> B;
    match B =[follow]=> C within 10m;
    where count(B) >= %d;
    emit C to A via B;
    limit fanout 64;
}`, k, k)
		_ = i
	}
	for _, k := range []int{2, 3} {
		src += fmt.Sprintf(`
motif "content-k%d" {
    match A -> B;
    match B =[retweet]=> C within 5m;
    match B =[favorite]=> C within 30m;
    where count(B) >= %d;
    emit C to A via B;
    limit fanout 32;
    limit candidates 20;
}`, k, k)
	}
	src += `
motif "broadcast" {
    match A -> B;
    match B =[follow]=> C;
    where count(B) >= 1;
    emit C to A;
    limit candidates 8;
}
motif "broadcast-rt" {
    match A -> B;
    match B =[retweet]=> C;
    where count(B) >= 1;
    emit C to A;
}
motif "broadcast2" {
    match A -> B;
    match B =[follow]=> C;
    where count(B) >= 1;
    emit C to A;
}`
	progs, err := motifdsl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// A hand-written detector in the middle of the registration order
	// exercises mixed grouped/ungrouped assembly.
	withOracle := make([]motif.Program, 0, len(progs)+1)
	withOracle = append(withOracle, progs[:3]...)
	withOracle = append(withOracle, motif.NewDiamond(motif.DiamondConfig{
		Name: "oracle", K: 2, Window: 10 * time.Minute, MaxFanout: 64,
	}))
	withOracle = append(withOracle, progs[3:]...)
	return withOracle
}

func sharedTestEngine(t testing.TB, disable bool) *Engine {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	var sEdges []graph.Edge
	for i := 0; i < 600; i++ {
		src := graph.VertexID(1 + r.Intn(40))
		dst := graph.VertexID(1 + r.Intn(40))
		if src != dst {
			sEdges = append(sEdges, graph.Edge{Src: src, Dst: dst})
		}
	}
	b := &statstore.Builder{}
	e, err := NewEngine(Config{
		Static:         statstore.New(b.Build(sEdges)),
		Dynamic:        dynstore.New(dynstore.Options{Retention: time.Hour, MaxPerTarget: 256}),
		Programs:       sharedMotifSet(t),
		DisableSharing: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineSharedMatchesIndependent is the engine-level differential: a
// shared-trie engine and a DisableSharing engine must produce identical
// per-event candidate slices (same order, same attribution) over a random
// multi-type stream.
func TestEngineSharedMatchesIndependent(t *testing.T) {
	shared := sharedTestEngine(t, false)
	indep := sharedTestEngine(t, true)

	// Expected trie: {follow-k2,k3,k4}, {content-k2,k3}, and the two
	// follow broadcasts; broadcast-rt (retweet trigger) stays a singleton.
	ss := shared.Sharing()
	if ss.Groups != 3 || ss.GroupedPrograms != 7 || ss.ScansSavedPerEvent != 4 {
		t.Fatalf("sharing did not engage as expected: %+v", ss)
	}
	if is := indep.Sharing(); is.Groups != 0 || is.ScansSavedPerEvent != 0 {
		t.Fatalf("DisableSharing engine still grouped: %+v", is)
	}

	r := rand.New(rand.NewSource(99))
	ts := int64(1_000_000)
	emitted := 0
	for i := 0; i < 4000; i++ {
		ts += int64(r.Intn(20_000))
		e := graph.Edge{
			Src:  graph.VertexID(1 + r.Intn(40)),
			Dst:  graph.VertexID(1 + r.Intn(40)),
			Type: graph.EdgeType(r.Intn(3)),
			TS:   ts,
		}
		want := indep.Apply(e)
		got := shared.Apply(e)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("event %d (%v): shared candidates diverge\nindependent: %v\nshared: %v", i, e, want, got)
		}
		emitted += len(want)
	}
	if emitted == 0 {
		t.Fatal("vacuous run: no candidates emitted")
	}
	sst, ist := shared.Stats(), indep.Stats()
	if sst.Candidates != ist.Candidates || sst.Events != ist.Events {
		t.Fatalf("counters diverged: shared %d/%d, independent %d/%d",
			sst.Events, sst.Candidates, ist.Events, ist.Candidates)
	}
}

// TestEngineFeedsLiveDegrees checks the statistics-free feedback loop: a
// planned program's probes populate the engine's live degree view, and a
// recompile against that view cites live quantiles in EXPLAIN.
func TestEngineFeedsLiveDegrees(t *testing.T) {
	e := sharedTestEngine(t, false)
	r := rand.New(rand.NewSource(7))
	ts := int64(1_000_000)
	for i := 0; i < 500; i++ {
		ts += 1000
		e.Apply(graph.Edge{
			Src: graph.VertexID(1 + r.Intn(40)), Dst: graph.VertexID(1 + r.Intn(40)),
			Type: graph.Follow, TS: ts,
		})
	}
	live := e.LiveDegrees()
	if live.DynIn.N() == 0 || live.Static.N() == 0 {
		t.Fatalf("live views not fed: dyn=%d static=%d", live.DynIn.N(), live.Static.N())
	}
}

// TestApplyBatchAllocBudgetMultiMotif extends the alloc gate to the shared
// executor: five planned motifs in one share group plus the hand-written
// baseline must still average <= 1 alloc/event warm on the no-candidate
// path.
func TestApplyBatchAllocBudgetMultiMotif(t *testing.T) {
	b := &statstore.Builder{}
	progs := []motif.Program{
		motif.NewDiamond(motif.DiamondConfig{K: 3, Window: 30 * time.Second, MaxFanout: 64}),
	}
	for _, k := range []int{2, 3, 3, 4, 5} {
		src := fmt.Sprintf(`
motif "g%d" {
    match A -> B;
    match B =[follow]=> C within 30s;
    where count(B) >= %d;
    emit C to A via B;
    limit fanout 64;
}`, len(progs), k)
		ps, err := motifdsl.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, ps...)
	}
	e, err := NewEngine(Config{
		Static:   statstore.New(b.Build(nil)),
		Dynamic:  dynstore.New(dynstore.Options{Retention: time.Minute, MaxPerTarget: 64}),
		Programs: progs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Sharing(); s.Groups != 1 || s.ScansSavedPerEvent != 4 {
		t.Fatalf("expected one 5-member group: %+v", s)
	}
	const batch = 64
	edges := make([]graph.Edge, batch)
	out := make([][]motif.Candidate, batch)
	ts := int64(1_000_000)
	fill := func() {
		for i := range edges {
			ts += 20
			edges[i] = graph.Edge{
				Src:  graph.VertexID(1 + (i % 8)),
				Dst:  graph.VertexID(50 + (i % 4)),
				Type: graph.Follow,
				TS:   ts,
			}
		}
	}
	for i := 0; i < 20; i++ {
		fill()
		e.ApplyBatch(edges, out)
	}
	perBatch := testing.AllocsPerRun(20, func() {
		fill()
		e.ApplyBatch(edges, out)
	})
	if perEvent := perBatch / batch; perEvent > 1.0 {
		t.Fatalf("multi-motif no-candidate path allocates %.2f/event (%.1f/batch); budget is 1/event", perEvent, perBatch)
	}
}
