package delivery

import (
	"testing"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

func BenchmarkOffer(b *testing.B) {
	p := NewPipeline(Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := motif.Candidate{
			User:         graph.VertexID(i % 100_000),
			Item:         graph.VertexID(i % 1_000),
			DetectedAtMS: int64(i),
			Trigger:      graph.Edge{TS: int64(i)},
		}
		p.Offer(c, 0)
	}
}

func BenchmarkOfferHotDuplicates(b *testing.B) {
	// The common production case: the same hot (user,item) pair offered
	// repeatedly; dedup must reject cheaply.
	p := NewPipeline(Options{DedupTTL: 24 * time.Hour})
	c := motif.Candidate{User: 1, Item: 2, DetectedAtMS: 1, Trigger: graph.Edge{TS: 1}}
	p.Offer(c, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Offer(c, 0)
	}
}
