// Package delivery implements the notification pipeline between raw motif
// candidates and actual pushes. The paper: "billions of raw candidates are
// generated, yielding millions of push notifications (after eliminating
// duplicates, suppressing messages during non-waking hours, controlling
// for fatigue, etc.)" (§2). The pipeline stages run in that order and the
// funnel counters feed experiment E3.
package delivery

import (
	"container/list"
	"math"
	"sync"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

// Decision records what the pipeline did with one candidate.
type Decision uint8

const (
	// Delivered means the candidate became a push notification.
	Delivered Decision = iota
	// DroppedDuplicate means the (user,item) pair was pushed recently.
	DroppedDuplicate
	// DroppedAsleep means the user's local time was within sleeping hours.
	DroppedAsleep
	// DroppedFatigue means the user hit the daily push budget.
	DroppedFatigue
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Delivered:
		return "delivered"
	case DroppedDuplicate:
		return "dropped-duplicate"
	case DroppedAsleep:
		return "dropped-asleep"
	case DroppedFatigue:
		return "dropped-fatigue"
	default:
		return "unknown"
	}
}

// Notification is a candidate that survived the funnel.
type Notification struct {
	Candidate motif.Candidate
	// DeliveredAtMS is the stream time at delivery.
	DeliveredAtMS int64
	// Latency is the full end-to-end latency from edge creation to push:
	// simulated queue propagation plus measured processing.
	Latency time.Duration
}

// SleepDisabled, assigned to both SleepStartHour and SleepEndHour, turns
// waking-hours suppression off explicitly. The sentinel exists because the
// zero pair cannot express disabling: (0, 0) is the unset state and
// selects the 23..8 default.
const SleepDisabled = -1

// Options configures the pipeline.
type Options struct {
	// DedupTTL suppresses repeat (user,item) pushes within this window.
	// Zero selects 24h.
	DedupTTL time.Duration
	// DedupCapacity bounds the dedup LRU; zero selects 1<<20 entries.
	DedupCapacity int
	// MaxPerUserPerDay is the fatigue budget; zero selects 4 (push fatigue
	// budgets are small in practice).
	MaxPerUserPerDay int
	// SleepStartHour..SleepEndHour (local, 24h clock) is the non-waking
	// interval; pushes inside it are suppressed. The zero pair selects the
	// 23..8 default. Equal non-zero values — or SleepDisabled in both —
	// disable suppression.
	SleepStartHour, SleepEndHour int
	// TimezoneOf returns the user's UTC offset in hours (may be negative).
	// Nil derives a deterministic offset from the user ID, spreading users
	// over 24 zones.
	TimezoneOf func(u graph.VertexID) int
}

// Pipeline applies dedup, waking-hours, and fatigue policies. Safe for
// concurrent use.
type Pipeline struct {
	opts Options

	mu      sync.Mutex
	dedup   *lruTTL
	fatigue map[graph.VertexID]*budget

	stats FunnelStats
}

// FunnelStats counts candidates through each pipeline stage.
type FunnelStats struct {
	Raw              uint64
	DroppedDuplicate uint64
	DroppedAsleep    uint64
	DroppedFatigue   uint64
	Delivered        uint64
}

// DeliveryRate returns Delivered/Raw, or 0 for an empty funnel.
func (s FunnelStats) DeliveryRate() float64 {
	if s.Raw == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Raw)
}

type budget struct {
	day   int64 // stream-day index
	spent int
}

// NewPipeline constructs a pipeline with defaults applied.
func NewPipeline(opts Options) *Pipeline {
	if opts.DedupTTL <= 0 {
		opts.DedupTTL = 24 * time.Hour
	}
	if opts.DedupCapacity <= 0 {
		opts.DedupCapacity = 1 << 20
	}
	if opts.MaxPerUserPerDay <= 0 {
		opts.MaxPerUserPerDay = 4
	}
	if opts.SleepStartHour == SleepDisabled || opts.SleepEndHour == SleepDisabled {
		// Either end carrying the sentinel disables the window outright
		// (equal values short-circuit isAsleep).
		opts.SleepStartHour, opts.SleepEndHour = SleepDisabled, SleepDisabled
	} else if opts.SleepStartHour == 0 && opts.SleepEndHour == 0 {
		opts.SleepStartHour, opts.SleepEndHour = 23, 8
	}
	if opts.TimezoneOf == nil {
		opts.TimezoneOf = func(u graph.VertexID) int {
			return int((uint64(u)*0x9e3779b97f4a7c15)>>40%24) - 12
		}
	}
	return &Pipeline{
		opts:    opts,
		dedup:   newLRUTTL(opts.DedupCapacity, opts.DedupTTL),
		fatigue: make(map[graph.VertexID]*budget),
	}
}

// Offer runs one candidate through the funnel. queueDelay is the simulated
// propagation delay accumulated on the way here; it is folded into the
// notification latency. The returned notification is non-nil only when the
// decision is Delivered.
func (p *Pipeline) Offer(c motif.Candidate, queueDelay time.Duration) (Decision, *Notification) {
	nowMS := c.DetectedAtMS + queueDelay.Milliseconds()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Raw++

	if !p.dedup.add(dedupKey{user: c.User, item: c.Item}, nowMS) {
		p.stats.DroppedDuplicate++
		return DroppedDuplicate, nil
	}
	if p.isAsleep(c.User, nowMS) {
		p.stats.DroppedAsleep++
		return DroppedAsleep, nil
	}
	if !p.spendBudget(c.User, nowMS) {
		p.stats.DroppedFatigue++
		return DroppedFatigue, nil
	}
	p.stats.Delivered++
	lat := time.Duration(nowMS-c.Trigger.TS) * time.Millisecond
	if lat < 0 {
		lat = 0
	}
	return Delivered, &Notification{
		Candidate:     c,
		DeliveredAtMS: nowMS,
		Latency:       lat,
	}
}

// isAsleep reports whether the user's local hour falls in the sleep window.
func (p *Pipeline) isAsleep(u graph.VertexID, nowMS int64) bool {
	start, end := p.opts.SleepStartHour, p.opts.SleepEndHour
	if start == end {
		return false
	}
	utcHour := (nowMS / int64(time.Hour/time.Millisecond)) % 24
	local := (int(utcHour) + p.opts.TimezoneOf(u)) % 24
	if local < 0 {
		local += 24
	}
	if start < end {
		return local >= start && local < end
	}
	// Window wraps midnight, e.g. 23..8.
	return local >= start || local < end
}

// spendBudget consumes one unit of the user's daily budget, resetting at
// stream-day boundaries.
func (p *Pipeline) spendBudget(u graph.VertexID, nowMS int64) bool {
	day := nowMS / (24 * int64(time.Hour/time.Millisecond))
	b := p.fatigue[u]
	if b == nil {
		b = &budget{day: day}
		p.fatigue[u] = b
	}
	if b.day != day {
		b.day = day
		b.spent = 0
	}
	if b.spent >= p.opts.MaxPerUserPerDay {
		return false
	}
	b.spent++
	return true
}

// Stats returns a copy of the funnel counters.
func (p *Pipeline) Stats() FunnelStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// dedupKey identifies a (user,item) push.
type dedupKey struct {
	user, item graph.VertexID
}

// lruTTL is a capacity-bounded map with per-entry expiry, used for push
// dedup. Stream-time based, so replays behave identically.
type lruTTL struct {
	cap   int
	ttlMS int64
	ll    *list.List // front = most recent
	items map[dedupKey]*list.Element
	// minExpMS is a lower bound on the earliest expiry anywhere in the
	// list, refreshed by the eviction sweep. Recency order is not expiry
	// order (a live duplicate refreshes recency but keeps its expiry), so
	// finding an expired entry means walking the list; the bound lets a
	// full LRU of live entries skip that walk entirely — a sweep that
	// found nothing expired cannot find anything until minExpMS passes
	// (new and refreshed entries always expire later than the bound).
	minExpMS int64
}

type lruEntry struct {
	key   dedupKey
	expMS int64
}

func newLRUTTL(capacity int, ttl time.Duration) *lruTTL {
	return &lruTTL{
		cap:   capacity,
		ttlMS: ttl.Milliseconds(),
		ll:    list.New(),
		items: make(map[dedupKey]*list.Element),
	}
}

// add returns true if the key was absent (or expired) and has now been
// recorded; false if it is a live duplicate.
func (l *lruTTL) add(k dedupKey, nowMS int64) bool {
	if el, ok := l.items[k]; ok {
		ent := el.Value.(*lruEntry)
		if ent.expMS > nowMS {
			l.ll.MoveToFront(el)
			return false
		}
		ent.expMS = nowMS + l.ttlMS
		l.ll.MoveToFront(el)
		return true
	}
	for l.ll.Len() >= l.cap {
		l.evict(nowMS)
	}
	l.items[k] = l.ll.PushFront(&lruEntry{key: k, expMS: nowMS + l.ttlMS})
	return true
}

// evict removes entries to make room for one insertion: dead (expired)
// entries first — wherever they sit in the recency order — and only when
// none exist the genuinely least-recently-used live entry. Evicting the
// plain LRU tail would drop live dedup state while retaining entries that
// can never suppress anything again.
func (l *lruTTL) evict(nowMS int64) {
	if nowMS >= l.minExpMS {
		// Something may have expired since the last sweep: walk from the
		// cold end, drop every dead entry, and record the next bound. The
		// walk is O(n), but it either frees at least one slot (paid for by
		// the entries removed, amortized) or proves nothing can expire
		// before the new minExpMS, disarming itself until then.
		min := int64(math.MaxInt64)
		removed := 0
		for el := l.ll.Back(); el != nil; {
			prev := el.Prev()
			if ent := el.Value.(*lruEntry); ent.expMS <= nowMS {
				l.remove(el)
				removed++
			} else if ent.expMS < min {
				min = ent.expMS
			}
			el = prev
		}
		if min == math.MaxInt64 {
			// The sweep removed every entry: there is no survivor to bound
			// the next expiry, and storing the sentinel would disarm the
			// sweep forever (stream time never reaches it). Zero re-arms
			// it; the next capacity sweep recomputes a real bound.
			min = 0
		}
		l.minExpMS = min
		if removed > 0 {
			return
		}
	}
	// Every entry is live: fall back to true LRU.
	l.remove(l.ll.Back())
}

func (l *lruTTL) remove(el *list.Element) {
	l.ll.Remove(el)
	delete(l.items, el.Value.(*lruEntry).key)
}
