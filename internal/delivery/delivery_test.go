package delivery

import (
	"testing"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

const hourMS = int64(time.Hour / time.Millisecond)

// alwaysAwake pins every user's local clock to midday.
func alwaysAwake(opts *Options) {
	opts.TimezoneOf = func(graph.VertexID) int { return 0 }
	opts.SleepStartHour, opts.SleepEndHour = 1, 1 // equal = disabled
}

func cand(user, item graph.VertexID, ts int64) motif.Candidate {
	return motif.Candidate{
		User: user, Item: item, DetectedAtMS: ts,
		Trigger: graph.Edge{Src: 1, Dst: item, TS: ts},
	}
}

func TestDeliverBasic(t *testing.T) {
	opts := Options{}
	alwaysAwake(&opts)
	p := NewPipeline(opts)
	d, note := p.Offer(cand(1, 2, 1_000), 0)
	if d != Delivered || note == nil {
		t.Fatalf("decision = %v, note = %v", d, note)
	}
	if note.Candidate.User != 1 {
		t.Fatal("wrong candidate in notification")
	}
	st := p.Stats()
	if st.Raw != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DeliveryRate() != 1 {
		t.Fatalf("rate = %f", st.DeliveryRate())
	}
}

func TestDedup(t *testing.T) {
	opts := Options{DedupTTL: time.Hour}
	alwaysAwake(&opts)
	p := NewPipeline(opts)
	p.Offer(cand(1, 2, 1_000), 0)
	d, note := p.Offer(cand(1, 2, 2_000), 0)
	if d != DroppedDuplicate || note != nil {
		t.Fatalf("duplicate not dropped: %v", d)
	}
	// Different item is not a duplicate.
	if d, _ := p.Offer(cand(1, 3, 3_000), 0); d != Delivered {
		t.Fatalf("different item dropped: %v", d)
	}
	// Different user is not a duplicate.
	if d, _ := p.Offer(cand(2, 2, 4_000), 0); d != Delivered {
		t.Fatalf("different user dropped: %v", d)
	}
}

func TestDedupExpiry(t *testing.T) {
	opts := Options{DedupTTL: time.Minute}
	alwaysAwake(&opts)
	p := NewPipeline(opts)
	p.Offer(cand(1, 2, 0), 0)
	// Within TTL: duplicate.
	if d, _ := p.Offer(cand(1, 2, 30_000), 0); d != DroppedDuplicate {
		t.Fatalf("within TTL: %v", d)
	}
	// After TTL: allowed again.
	if d, _ := p.Offer(cand(1, 2, 61_000), 0); d != Delivered {
		t.Fatalf("after TTL: %v", d)
	}
}

func TestFatigueBudget(t *testing.T) {
	opts := Options{MaxPerUserPerDay: 2}
	alwaysAwake(&opts)
	p := NewPipeline(opts)
	ts := int64(0)
	for i := 0; i < 2; i++ {
		ts += 1_000
		if d, _ := p.Offer(cand(1, graph.VertexID(10+i), ts), 0); d != Delivered {
			t.Fatalf("push %d: %v", i, d)
		}
	}
	if d, _ := p.Offer(cand(1, 99, ts+1_000), 0); d != DroppedFatigue {
		t.Fatalf("over budget: %v", d)
	}
	// Another user has their own budget.
	if d, _ := p.Offer(cand(2, 99, ts+2_000), 0); d != Delivered {
		t.Fatalf("other user: %v", d)
	}
	// Next stream-day the budget resets.
	if d, _ := p.Offer(cand(1, 100, 24*hourMS+1_000), 0); d != Delivered {
		t.Fatalf("next day: %v", d)
	}
}

func TestSleepSuppression(t *testing.T) {
	opts := Options{
		SleepStartHour: 23,
		SleepEndHour:   8,
		TimezoneOf:     func(graph.VertexID) int { return 0 },
	}
	p := NewPipeline(opts)
	// 03:00 UTC: asleep (inside 23..8 wrap window).
	if d, _ := p.Offer(cand(1, 2, 3*hourMS), 0); d != DroppedAsleep {
		t.Fatalf("03:00 = %v, want asleep", d)
	}
	// 12:00 UTC: awake.
	if d, _ := p.Offer(cand(1, 3, 12*hourMS), 0); d != Delivered {
		t.Fatalf("12:00 = %v, want delivered", d)
	}
	// 23:30 UTC: asleep again.
	if d, _ := p.Offer(cand(1, 4, 23*hourMS+1800_000), 0); d != DroppedAsleep {
		t.Fatalf("23:30 = %v, want asleep", d)
	}
}

func TestSleepTimezoneShifts(t *testing.T) {
	// User at UTC+9: 03:00 UTC is noon local — awake.
	opts := Options{
		SleepStartHour: 23,
		SleepEndHour:   8,
		TimezoneOf:     func(graph.VertexID) int { return 9 },
	}
	p := NewPipeline(opts)
	if d, _ := p.Offer(cand(1, 2, 3*hourMS), 0); d != Delivered {
		t.Fatalf("UTC+9 at 03:00 UTC = %v, want delivered", d)
	}
	// Negative offsets also work: UTC-4 at 12:00 UTC is 08:00 local,
	// which is the boundary (SleepEndHour excluded) — awake.
	opts.TimezoneOf = func(graph.VertexID) int { return -4 }
	p2 := NewPipeline(opts)
	if d, _ := p2.Offer(cand(1, 2, 12*hourMS), 0); d != Delivered {
		t.Fatalf("UTC-4 at 12:00 UTC = %v, want delivered (8am boundary)", d)
	}
}

func TestNonWrappingSleepWindow(t *testing.T) {
	// Window 2..5 (does not wrap midnight).
	opts := Options{
		SleepStartHour: 2,
		SleepEndHour:   5,
		TimezoneOf:     func(graph.VertexID) int { return 0 },
	}
	p := NewPipeline(opts)
	if d, _ := p.Offer(cand(1, 2, 3*hourMS), 0); d != DroppedAsleep {
		t.Fatal("03:00 should be asleep in the 2..5 window")
	}
	if d, _ := p.Offer(cand(1, 3, 6*hourMS), 0); d != Delivered {
		t.Fatal("06:00 should be awake in the 2..5 window")
	}
}

func TestLatencyIncludesQueueDelay(t *testing.T) {
	opts := Options{}
	alwaysAwake(&opts)
	p := NewPipeline(opts)
	delay := 7 * time.Second
	_, note := p.Offer(cand(1, 2, 10_000), delay)
	if note == nil {
		t.Fatal("not delivered")
	}
	if note.Latency != delay {
		t.Fatalf("latency = %v, want %v", note.Latency, delay)
	}
	if note.DeliveredAtMS != 10_000+delay.Milliseconds() {
		t.Fatalf("DeliveredAtMS = %d", note.DeliveredAtMS)
	}
}

func TestFunnelAccounting(t *testing.T) {
	opts := Options{MaxPerUserPerDay: 1, DedupTTL: time.Hour}
	alwaysAwake(&opts)
	p := NewPipeline(opts)
	p.Offer(cand(1, 2, 1_000), 0) // delivered
	p.Offer(cand(1, 2, 2_000), 0) // duplicate
	p.Offer(cand(1, 3, 3_000), 0) // fatigue
	st := p.Stats()
	if st.Raw != 3 || st.Delivered != 1 || st.DroppedDuplicate != 1 || st.DroppedFatigue != 1 {
		t.Fatalf("funnel = %+v", st)
	}
	if got := st.DeliveryRate(); got < 0.33 || got > 0.34 {
		t.Fatalf("rate = %f", got)
	}
	if (FunnelStats{}).DeliveryRate() != 0 {
		t.Fatal("empty funnel rate should be 0")
	}
}

func TestDedupLRUCapacityEviction(t *testing.T) {
	opts := Options{DedupCapacity: 2, DedupTTL: time.Hour, MaxPerUserPerDay: 1 << 30}
	alwaysAwake(&opts)
	p := NewPipeline(opts)
	p.Offer(cand(1, 1, 1_000), 0)
	p.Offer(cand(2, 2, 2_000), 0) // LRU full: {1,1},{2,2}
	p.Offer(cand(3, 3, 3_000), 0) // evicts (1,1)
	// (1,1) was evicted, so it is deliverable again despite the TTL.
	if d, _ := p.Offer(cand(1, 1, 4_000), 0); d != Delivered {
		t.Fatalf("evicted key still deduped: %v", d)
	}
}

func TestSleepDisabledSentinel(t *testing.T) {
	// The sentinel pair disables suppression outright — including at
	// 03:00, deep inside the default 23..8 window.
	opts := Options{
		SleepStartHour: SleepDisabled,
		SleepEndHour:   SleepDisabled,
		TimezoneOf:     func(graph.VertexID) int { return 0 },
	}
	p := NewPipeline(opts)
	if d, _ := p.Offer(cand(1, 2, 3*hourMS), 0); d != Delivered {
		t.Fatalf("03:00 with SleepDisabled = %v, want delivered", d)
	}
	// One-sided sentinel still disables (it cannot mean a real hour).
	opts.SleepStartHour, opts.SleepEndHour = SleepDisabled, 8
	p2 := NewPipeline(opts)
	if d, _ := p2.Offer(cand(1, 2, 3*hourMS), 0); d != Delivered {
		t.Fatalf("03:00 with one-sided sentinel = %v, want delivered", d)
	}
}

func TestZeroSleepPairSelectsDefaultWindow(t *testing.T) {
	// The unset (0, 0) pair keeps selecting the 23..8 default: only the
	// sentinel expresses "no sleep window".
	p := NewPipeline(Options{TimezoneOf: func(graph.VertexID) int { return 0 }})
	if d, _ := p.Offer(cand(1, 2, 3*hourMS), 0); d != DroppedAsleep {
		t.Fatalf("03:00 with zero options = %v, want asleep (default window)", d)
	}
}

func TestDedupLRUEvictsExpiredBeforeLive(t *testing.T) {
	// An expired entry buried mid-list (a live-duplicate hit refreshes
	// recency but keeps the original expiry, so recency order is not
	// expiry order) must be evicted before the live LRU tail.
	opts := Options{DedupCapacity: 3, DedupTTL: time.Minute, MaxPerUserPerDay: 1 << 30}
	alwaysAwake(&opts)
	p := NewPipeline(opts)
	p.Offer(cand(1, 1, 0), 0)      // expires at 60s
	p.Offer(cand(2, 2, 30_000), 0) // expires at 90s
	p.Offer(cand(1, 1, 31_000), 0) // live dup: front of the list, expiry still 60s
	p.Offer(cand(3, 3, 32_000), 0) // full; recency front→back: 3, 1, 2
	// 62s: (1,1) is dead mid-list, the tail (2,2) is live. The insert
	// must evict the dead entry, not the tail.
	p.Offer(cand(4, 4, 62_000), 0)
	if d, _ := p.Offer(cand(2, 2, 63_000), 0); d != DroppedDuplicate {
		t.Fatalf("live tail (2,2) was evicted while a dead entry sat mid-list: %v", d)
	}
	if d, _ := p.Offer(cand(3, 3, 63_500), 0); d != DroppedDuplicate {
		t.Fatalf("live entry (3,3) was evicted: %v", d)
	}
}

func TestDedupLRUCapacityPressureKeepsLiveEntries(t *testing.T) {
	// Under sustained capacity pressure the sweep evicts the one dead
	// entry first, and only the next insertion falls back to true LRU.
	opts := Options{DedupCapacity: 4, DedupTTL: time.Minute, MaxPerUserPerDay: 1 << 30}
	alwaysAwake(&opts)
	p := NewPipeline(opts)
	p.Offer(cand(1, 1, 0), 0)      // expires at 60s
	p.Offer(cand(2, 2, 30_000), 0) // expires at 90s — the true live tail
	p.Offer(cand(3, 3, 31_000), 0)
	p.Offer(cand(1, 1, 32_000), 0) // refresh recency; expiry stays 60s
	p.Offer(cand(4, 4, 33_000), 0) // full; front→back: 4, 1, 3, 2
	// 61s: first insert sweeps out the dead (1,1); the second finds all
	// entries live and evicts the LRU tail (2,2).
	p.Offer(cand(5, 5, 61_000), 0)
	p.Offer(cand(6, 6, 62_000), 0)
	for _, want := range []struct {
		u graph.VertexID
		d Decision
	}{
		{3, DroppedDuplicate}, // live, retained
		{4, DroppedDuplicate},
		{5, DroppedDuplicate},
		{6, DroppedDuplicate},
		{1, Delivered}, // dead, swept first
		{2, Delivered}, // true LRU tail, evicted second
	} {
		if d, _ := p.Offer(cand(want.u, want.u, 63_000), 0); d != want.d {
			t.Fatalf("key (%d,%d): got %v, want %v", want.u, want.u, d, want.d)
		}
	}
}

func TestDedupLRUSweepSurvivesFullExpiry(t *testing.T) {
	// Regression: a sweep that removes EVERY entry has no survivor to
	// bound the next expiry; storing the scan's MaxInt64 sentinel would
	// disarm the expired-first sweep for the pipeline's lifetime, and
	// later capacity pressure would silently regress to evicting live
	// LRU tails over dead entries.
	opts := Options{DedupCapacity: 3, DedupTTL: time.Minute, MaxPerUserPerDay: 1 << 30}
	alwaysAwake(&opts)
	p := NewPipeline(opts)
	p.Offer(cand(1, 1, 0), 0)
	p.Offer(cand(2, 2, 1_000), 0)
	p.Offer(cand(3, 3, 2_000), 0)
	// 70s: all three are dead; this insert's sweep empties the list.
	p.Offer(cand(4, 4, 70_000), 0) // expires at 130s
	// Refill, burying (4,4) mid-list via a live-dup recency refresh.
	p.Offer(cand(5, 5, 75_000), 0)  // expires at 135s
	p.Offer(cand(6, 6, 76_000), 0)  // expires at 136s
	p.Offer(cand(4, 4, 100_000), 0) // live dup: front of list, expiry still 130s
	// 131s: (4,4) is dead mid-list, the tail (5,5) is live. The sweep
	// must still be armed after the earlier full-expiry sweep.
	p.Offer(cand(7, 7, 131_000), 0)
	if d, _ := p.Offer(cand(5, 5, 132_000), 0); d != DroppedDuplicate {
		t.Fatalf("live tail (5,5) evicted: the expired-first sweep disarmed itself (%v)", d)
	}
	if d, _ := p.Offer(cand(6, 6, 132_500), 0); d != DroppedDuplicate {
		t.Fatalf("live entry (6,6) evicted: %v", d)
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		Delivered:        "delivered",
		DroppedDuplicate: "dropped-duplicate",
		DroppedAsleep:    "dropped-asleep",
		DroppedFatigue:   "dropped-fatigue",
		Decision(99):     "unknown",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), want)
		}
	}
}

func TestDefaultTimezoneSpread(t *testing.T) {
	p := NewPipeline(Options{})
	zones := map[int]bool{}
	for u := graph.VertexID(0); u < 1_000; u++ {
		z := p.opts.TimezoneOf(u)
		if z < -12 || z > 11 {
			t.Fatalf("timezone %d out of range", z)
		}
		zones[z] = true
	}
	if len(zones) < 12 {
		t.Fatalf("default timezones poorly spread: only %d distinct", len(zones))
	}
}
