package delivery

import (
	"math/rand"
	"testing"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

// TestFatigueNeverExceedsBudget drives random candidate streams through
// the pipeline and checks the core fatigue invariant: no user ever
// receives more than the daily budget within one stream day.
func TestFatigueNeverExceedsBudget(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		budget := 1 + r.Intn(5)
		opts := Options{
			MaxPerUserPerDay: budget,
			DedupTTL:         time.Millisecond, // effectively off
		}
		alwaysAwake(&opts)
		p := NewPipeline(opts)
		type userDay struct {
			u   graph.VertexID
			day int64
		}
		delivered := map[userDay]int{}
		ts := int64(0)
		for i := 0; i < 2_000; i++ {
			ts += int64(r.Intn(3_600_000))
			c := motif.Candidate{
				User:         graph.VertexID(r.Intn(5)),
				Item:         graph.VertexID(r.Intn(1_000_000)), // rarely duplicated
				DetectedAtMS: ts,
				Trigger:      graph.Edge{TS: ts},
			}
			if d, _ := p.Offer(c, 0); d == Delivered {
				k := userDay{c.User, ts / (24 * hourMS)}
				delivered[k]++
				if delivered[k] > budget {
					t.Fatalf("trial %d: user %d got %d pushes in day %d (budget %d)",
						trial, c.User, delivered[k], k.day, budget)
				}
			}
		}
	}
}

// TestDedupNeverDeliversLiveDuplicate fuzzes the dedup LRU: within the
// TTL, a (user,item) pair is never delivered twice, regardless of
// interleaving.
func TestDedupNeverDeliversLiveDuplicate(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ttl := 10 * time.Minute
	opts := Options{
		DedupTTL:         ttl,
		MaxPerUserPerDay: 1 << 30,
		DedupCapacity:    1 << 16, // large enough to avoid evictions here
	}
	alwaysAwake(&opts)
	p := NewPipeline(opts)
	type key struct {
		u, i graph.VertexID
	}
	lastDelivered := map[key]int64{}
	ts := int64(0)
	for i := 0; i < 5_000; i++ {
		ts += int64(r.Intn(30_000))
		c := motif.Candidate{
			User:         graph.VertexID(r.Intn(10)),
			Item:         graph.VertexID(r.Intn(10)),
			DetectedAtMS: ts,
			Trigger:      graph.Edge{TS: ts},
		}
		d, _ := p.Offer(c, 0)
		k := key{c.User, c.Item}
		if d == Delivered {
			if prev, ok := lastDelivered[k]; ok && ts-prev < ttl.Milliseconds() {
				t.Fatalf("duplicate (%d,%d) delivered %dms apart (TTL %v)",
					c.User, c.Item, ts-prev, ttl)
			}
			lastDelivered[k] = ts
		}
	}
}
