// Durable pipeline state: a versioned, CRC32C-framed snapshot codec for
// the parts of the funnel that decide suppression — the dedup LRU (key,
// expiry, recency order) and the per-user fatigue budgets. The cluster
// cuts these snapshots next to its delivery high-water offsets and
// restores them at whole-cluster restart, closing the restart
// duplicate-push window documented in docs/DURABILITY.md: a (user, item)
// pair pushed before a clean Shutdown stays suppressed after Reopen, and
// a user's daily budget is not silently reset by the process boundary.
//
// The funnel counters (FunnelStats) are deliberately not part of the
// snapshot: they are observability, reset per run, and callers that want
// totals across restarts fold them externally (cmd/magicrecs does).

package delivery

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"motifstream/internal/codecutil"
	"motifstream/internal/graph"
)

// stateMagic identifies the pipeline state snapshot format, version 1.
var stateMagic = [8]byte{'M', 'S', 'D', 'L', 'V', 'S', 0, 1}

const (
	stateVersion = 1

	// maxStateEntries bounds decoded entry counts against corruption: a
	// flipped length byte must fail when the data runs out, not allocate
	// gigabytes up front. Far above any real DedupCapacity.
	maxStateEntries = 1 << 26
)

// dedupSnap is one dedup LRU entry in a captured snapshot.
type dedupSnap struct {
	user, item graph.VertexID
	expMS      int64
}

// budgetSnap is one fatigue budget in a captured snapshot.
type budgetSnap struct {
	user  graph.VertexID
	day   int64
	spent int
}

// captureState copies the suppression state out from under the mutex:
// dedup entries oldest-first (so a restore replays them into the same
// recency order) and fatigue budgets sorted by user (so equal states
// encode to equal bytes). The copy is plain memory movement — the
// pipeline stalls for the capture, not for the encode or the disk.
func (p *Pipeline) captureState() ([]dedupSnap, []budgetSnap) {
	p.mu.Lock()
	defer p.mu.Unlock()
	dedup := make([]dedupSnap, 0, p.dedup.ll.Len())
	for el := p.dedup.ll.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*lruEntry)
		dedup = append(dedup, dedupSnap{user: ent.key.user, item: ent.key.item, expMS: ent.expMS})
	}
	fatigue := make([]budgetSnap, 0, len(p.fatigue))
	for u, b := range p.fatigue {
		fatigue = append(fatigue, budgetSnap{user: u, day: b.day, spent: b.spent})
	}
	sort.Slice(fatigue, func(i, j int) bool { return fatigue[i].user < fatigue[j].user })
	return dedup, fatigue
}

// WriteTo snapshots the pipeline's suppression state — dedup LRU and
// fatigue budgets — as one self-contained frame: magic, version, entry
// sections, CRC32C trailer over everything before it. Safe for concurrent
// use; Offer calls block only while the state is copied out, not while it
// is encoded or written.
func (p *Pipeline) WriteTo(w io.Writer) (int64, error) {
	dedup, fatigue := p.captureState()
	cw := &codecutil.CountingWriter{W: w}
	hw := &codecutil.HashWriter{W: cw}
	enc := &codecutil.Writer{BW: bufio.NewWriter(hw)}
	enc.PutBytes(stateMagic[:])
	enc.PutU(stateVersion)
	enc.PutU(uint64(len(dedup)))
	for _, e := range dedup {
		enc.PutU(uint64(e.user))
		enc.PutU(uint64(e.item))
		enc.PutI(e.expMS)
	}
	enc.PutU(uint64(len(fatigue)))
	for _, b := range fatigue {
		enc.PutU(uint64(b.user))
		enc.PutI(b.day)
		enc.PutU(uint64(b.spent))
	}
	if err := enc.Flush(); err != nil {
		return cw.N, err
	}
	return cw.N, codecutil.WriteChecksum(cw, hw.Sum())
}

// ReadFrom restores a snapshot written by WriteTo, replacing the
// pipeline's dedup LRU and fatigue budgets wholesale. The frame is
// decoded and checksum-verified in full before anything is installed, so
// corrupt or truncated input returns an error and leaves the pipeline
// exactly as it was. When the snapshot holds more dedup entries than the
// pipeline's capacity (a config shrink across a restart), the newest
// entries win. Funnel counters are untouched.
func (p *Pipeline) ReadFrom(r io.Reader) (int64, error) {
	hr := &codecutil.HashReader{R: codecutil.AsByteReader(r)}
	br := &codecutil.CountingReader{R: hr}
	if err := codecutil.ExpectMagic(br, stateMagic[:], "delivery state"); err != nil {
		return br.N, err
	}
	dec := &codecutil.Reader{BR: br, Prefix: "delivery state"}
	if v := dec.U("version"); dec.Err == nil && v != stateVersion {
		return br.N, fmt.Errorf("delivery state: unsupported version %d", v)
	}
	nDedup := dec.U("dedup count")
	if dec.Err == nil && nDedup > maxStateEntries {
		return br.N, fmt.Errorf("delivery state: implausible dedup count %d", nDedup)
	}
	dedup := make([]dedupSnap, 0, codecutil.PreallocHint(nDedup))
	for i := uint64(0); i < nDedup && dec.Err == nil; i++ {
		e := dedupSnap{
			user:  graph.VertexID(dec.U("dedup user")),
			item:  graph.VertexID(dec.U("dedup item")),
			expMS: dec.I("dedup expiry"),
		}
		dedup = append(dedup, e)
	}
	nFatigue := dec.U("fatigue count")
	if dec.Err == nil && nFatigue > maxStateEntries {
		return br.N, fmt.Errorf("delivery state: implausible fatigue count %d", nFatigue)
	}
	fatigue := make([]budgetSnap, 0, codecutil.PreallocHint(nFatigue))
	for i := uint64(0); i < nFatigue && dec.Err == nil; i++ {
		b := budgetSnap{
			user:  graph.VertexID(dec.U("fatigue user")),
			day:   dec.I("fatigue day"),
			spent: int(dec.U("fatigue spent")),
		}
		fatigue = append(fatigue, b)
	}
	if dec.Err != nil {
		return br.N, dec.Err
	}
	sum := hr.Sum()
	if err := codecutil.VerifyChecksum(br, sum, "delivery state"); err != nil {
		return br.N, err
	}
	p.install(dedup, fatigue)
	return br.N, nil
}

// install swaps a fully decoded snapshot in under the mutex.
func (p *Pipeline) install(dedup []dedupSnap, fatigue []budgetSnap) {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := newLRUTTL(p.opts.DedupCapacity, p.opts.DedupTTL)
	if len(dedup) > l.cap {
		dedup = dedup[len(dedup)-l.cap:] // newest entries win
	}
	for _, e := range dedup {
		k := dedupKey{user: e.user, item: e.item}
		if el, ok := l.items[k]; ok {
			// Duplicate keys cannot come from WriteTo, but arbitrary input
			// may carry them; keep the newest and its recency.
			l.remove(el)
		}
		l.items[k] = l.ll.PushFront(&lruEntry{key: k, expMS: e.expMS})
	}
	m := make(map[graph.VertexID]*budget, len(fatigue))
	for _, b := range fatigue {
		m[b.user] = &budget{day: b.day, spent: b.spent}
	}
	p.dedup = l
	p.fatigue = m
}
