package delivery

import (
	"bytes"
	"testing"
	"time"

	"motifstream/internal/graph"
)

// stateOpts is a deterministic pipeline configuration for codec tests.
func stateOpts(capacity, budget int) Options {
	opts := Options{
		DedupTTL:         time.Hour,
		DedupCapacity:    capacity,
		MaxPerUserPerDay: budget,
	}
	alwaysAwake(&opts)
	return opts
}

func encodeState(t *testing.T, p *Pipeline) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestStateRoundTripSuppression(t *testing.T) {
	src := NewPipeline(stateOpts(16, 2))
	src.Offer(cand(1, 2, 1_000), 0)
	src.Offer(cand(3, 4, 2_000), 0)
	src.Offer(cand(5, 10, 3_000), 0)
	src.Offer(cand(5, 11, 4_000), 0) // user 5's budget (2) is now spent
	data := encodeState(t, src)

	dst := NewPipeline(stateOpts(16, 2))
	if n, err := dst.ReadFrom(bytes.NewReader(data)); err != nil || n != int64(len(data)) {
		t.Fatalf("ReadFrom = %d, %v", n, err)
	}
	// Restored dedup entries suppress repeats within the TTL.
	if d, _ := dst.Offer(cand(1, 2, 5_000), 0); d != DroppedDuplicate {
		t.Fatalf("restored (1,2) = %v, want duplicate", d)
	}
	if d, _ := dst.Offer(cand(3, 4, 5_000), 0); d != DroppedDuplicate {
		t.Fatalf("restored (3,4) = %v, want duplicate", d)
	}
	// Restored fatigue budget blocks a fresh item on the same stream day.
	if d, _ := dst.Offer(cand(5, 12, 6_000), 0); d != DroppedFatigue {
		t.Fatalf("restored budget for user 5 = %v, want fatigue", d)
	}
	// Expiry times survive: past the TTL the pair delivers again.
	if d, _ := dst.Offer(cand(1, 2, 1_000+time.Hour.Milliseconds()+1), 0); d != Delivered {
		t.Fatalf("expired restored entry = %v, want delivered", d)
	}
}

func TestStateRecencyOrderSurvives(t *testing.T) {
	src := NewPipeline(stateOpts(2, 1<<30))
	src.Offer(cand(1, 1, 1_000), 0) // oldest
	src.Offer(cand(2, 2, 2_000), 0) // newest
	data := encodeState(t, src)

	dst := NewPipeline(stateOpts(2, 1<<30))
	if _, err := dst.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	// Capacity pressure evicts the restored LRU tail — (1,1), not (2,2).
	dst.Offer(cand(3, 3, 3_000), 0)
	if d, _ := dst.Offer(cand(2, 2, 4_000), 0); d != DroppedDuplicate {
		t.Fatalf("most recent restored entry evicted first: %v", d)
	}
	if d, _ := dst.Offer(cand(1, 1, 5_000), 0); d != Delivered {
		t.Fatalf("LRU tail survived eviction: %v", d)
	}
}

func TestStateRestoreClampsToCapacity(t *testing.T) {
	src := NewPipeline(stateOpts(4, 1<<30))
	for i := 1; i <= 4; i++ {
		src.Offer(cand(graph.VertexID(i), graph.VertexID(i), int64(i)*1_000), 0)
	}
	data := encodeState(t, src)

	// Restore into a pipeline whose capacity shrank: the newest entries win.
	dst := NewPipeline(stateOpts(2, 1<<30))
	if _, err := dst.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if d, _ := dst.Offer(cand(graph.VertexID(i), graph.VertexID(i), 10_000), 0); d != Delivered {
			t.Fatalf("oldest entry %d survived the capacity clamp: %v", i, d)
		}
	}
	// Offers above refilled the LRU; the clamped-in newest pair from the
	// snapshot was present before them.
	src2 := NewPipeline(stateOpts(2, 1<<30))
	if _, err := src2.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	for i := 3; i <= 4; i++ {
		if d, _ := src2.Offer(cand(graph.VertexID(i), graph.VertexID(i), 10_000), 0); d != DroppedDuplicate {
			t.Fatalf("newest entry %d lost in the capacity clamp: %v", i, d)
		}
	}
}

func TestStateEmptyRoundTrip(t *testing.T) {
	data := encodeState(t, NewPipeline(stateOpts(8, 4)))
	dst := NewPipeline(stateOpts(8, 4))
	if _, err := dst.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if d, _ := dst.Offer(cand(1, 2, 1_000), 0); d != Delivered {
		t.Fatalf("empty restore poisoned the pipeline: %v", d)
	}
}

func TestStateCorruptionDetected(t *testing.T) {
	src := NewPipeline(stateOpts(16, 2))
	for i := 1; i <= 8; i++ {
		src.Offer(cand(graph.VertexID(i), graph.VertexID(100+i), int64(i)*1_000), 0)
	}
	data := encodeState(t, src)

	// A flipped bit anywhere must surface as an error, and a failed
	// restore must leave the target pipeline untouched.
	for _, at := range []int{0, len(data) / 3, len(data) / 2, len(data) - 2} {
		bad := bytes.Clone(data)
		bad[at] ^= 0x10
		dst := NewPipeline(stateOpts(16, 2))
		dst.Offer(cand(50, 50, 1_000), 0)
		if _, err := dst.ReadFrom(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d decoded cleanly", at)
		}
		if d, _ := dst.Offer(cand(50, 50, 2_000), 0); d != DroppedDuplicate {
			t.Fatalf("failed restore mutated the pipeline (at byte %d): %v", at, d)
		}
		if d, _ := dst.Offer(cand(1, 101, 2_000), 0); d != Delivered {
			t.Fatalf("failed restore installed snapshot state (at byte %d): %v", at, d)
		}
	}

	// Truncation must surface too.
	for _, keep := range []int{0, 4, len(data) / 2, len(data) - 1} {
		dst := NewPipeline(stateOpts(16, 2))
		if _, err := dst.ReadFrom(bytes.NewReader(data[:keep])); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", keep)
		}
	}
}

// FuzzDeliveryStateReadFrom pins the decoder's contract: arbitrary input
// yields a clean error or a valid restored state — never a panic, and
// never a pipeline the next Offer can crash.
func FuzzDeliveryStateReadFrom(f *testing.F) {
	seed := NewPipeline(stateOpts(8, 2))
	seed.Offer(cand(1, 2, 1_000), 0)
	seed.Offer(cand(3, 4, 2_000), 0)
	var buf bytes.Buffer
	if _, err := seed.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var empty bytes.Buffer
	if _, err := NewPipeline(stateOpts(8, 2)).WriteTo(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte{})
	f.Add([]byte("MSDLVS\x00\x01garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewPipeline(stateOpts(8, 2))
		if _, err := p.ReadFrom(bytes.NewReader(data)); err != nil {
			return
		}
		// A clean decode must leave a usable pipeline.
		p.Offer(cand(9, 9, 1_000), 0)
		p.Offer(cand(9, 9, 2_000), 0)
	})
}
