package dynstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"motifstream/internal/graph"
)

func benchEdges(n int) []graph.Edge {
	r := rand.New(rand.NewSource(1))
	out := make([]graph.Edge, n)
	ts := int64(0)
	for i := range out {
		ts += int64(r.Intn(3))
		out[i] = graph.Edge{
			Src: graph.VertexID(r.Intn(10_000)),
			Dst: graph.VertexID(r.Intn(2_000)), // concentrated targets
			TS:  ts,
		}
	}
	return out
}

func BenchmarkInsert(b *testing.B) {
	edges := benchEdges(100_000)
	s := New(Options{Retention: time.Minute, MaxPerTarget: 1024})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(edges[i%len(edges)])
	}
}

// BenchmarkInsertShards is the sharding ablation: contention at 1 shard
// vs the default 64 under parallel writers.
func BenchmarkInsertShards(b *testing.B) {
	edges := benchEdges(100_000)
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := New(Options{Retention: time.Minute, Shards: shards, MaxPerTarget: 1024})
			b.RunParallel(func(pb *testing.PB) {
				i := rand.Int()
				for pb.Next() {
					s.Insert(edges[i%len(edges)])
					i++
				}
			})
		})
	}
}

func BenchmarkRecentLimit(b *testing.B) {
	s := New(Options{MaxPerTarget: 2048})
	for i := 0; i < 2_000; i++ {
		s.Insert(graph.Edge{Src: graph.VertexID(i % 500), Dst: 7, TS: int64(i)})
	}
	for _, limit := range []int{0, 64} {
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.RecentLimit(7, 0, limit)
			}
		})
	}
}

// BenchmarkSnapshotEncode measures the cost of cutting one replica
// checkpoint's D payload — the stop-the-world window a replica pays per
// checkpoint interval.
func BenchmarkSnapshotEncode(b *testing.B) {
	edges := benchEdges(100_000)
	s := New(Options{Retention: time.Hour, MaxPerTarget: 1024})
	for _, e := range edges {
		s.Insert(e)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := s.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkSnapshotDecode measures the restore half of recovery: how fast
// a rejoining replica rebuilds D from its checkpoint before replay starts.
func BenchmarkSnapshotDecode(b *testing.B) {
	edges := benchEdges(100_000)
	s := New(Options{Retention: time.Hour, MaxPerTarget: 1024})
	for _, e := range edges {
		s.Insert(e)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restored := New(Options{Retention: time.Hour, MaxPerTarget: 1024})
		if _, err := restored.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweep(b *testing.B) {
	edges := benchEdges(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(Options{Retention: time.Millisecond})
		for _, e := range edges {
			s.Insert(e)
		}
		b.StartTimer()
		s.Sweep(edges[len(edges)-1].TS + int64(time.Hour/time.Millisecond))
	}
}
