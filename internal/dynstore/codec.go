package dynstore

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"motifstream/internal/codecutil"
	"motifstream/internal/graph"
)

// The binary snapshot format is the durable half of a partition replica's
// checkpoint: a magic header, the format version, then per query vertex C
// its retained in-edge list in arrival order — B as a uvarint and the
// timestamp as a zigzag delta from the previous entry (the stream is
// near-ordered, so deltas stay small). Targets are written in ascending C
// order so equal stores serialize identically. The layout is independent
// of the shard count, so a snapshot restores into a store configured with
// any Shards value.

// snapMagic identifies the dynstore snapshot format, version 1.
var snapMagic = [8]byte{'M', 'S', 'D', 'S', 'N', 'P', 0, 1}

const snapVersion = 1

// Plausibility bounds for decoding; inputs beyond them are corrupt.
const (
	maxSnapTargets = 1 << 30
	maxSnapList    = 1 << 28
)

// WriteTo serializes the store's full contents in the versioned binary
// snapshot format, implementing io.WriterTo. Each shard is copied under
// its read lock; for a point-in-time-consistent snapshot across shards the
// caller must quiesce writers (the replica checkpoint loop serializes
// WriteTo with Apply, so this holds there).
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	cw := &codecutil.CountingWriter{W: w}
	enc := &codecutil.Writer{BW: bufio.NewWriter(cw)}
	enc.PutBytes(snapMagic[:])
	enc.PutU(snapVersion)

	// Gather and sort only the target IDs for deterministic output, then
	// copy one list at a time under its shard lock while encoding —
	// peak extra memory stays at a single list rather than a full
	// duplicate of D. Lists must be copied because Insert reuses backing
	// arrays in place.
	var ids []graph.VertexID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for c := range sh.targets {
			ids = append(ids, c)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	enc.PutU(uint64(len(ids)))
	var list []InEdge
	for _, c := range ids {
		sh := s.shardFor(c)
		sh.mu.RLock()
		list = append(list[:0], sh.targets[c]...)
		sh.mu.RUnlock()
		// A target removed since gathering (only possible if the caller
		// broke the quiescence contract) encodes as an empty list,
		// keeping the frame count consistent.
		enc.PutU(uint64(c))
		enc.PutU(uint64(len(list)))
		prev := int64(0)
		for _, in := range list {
			enc.PutU(uint64(in.B))
			enc.PutI(in.TS - prev)
			prev = in.TS
		}
	}
	return cw.N, enc.Flush()
}

// ReadFrom replaces the store's contents with a snapshot previously
// produced by WriteTo, implementing io.ReaderFrom. The store's own options
// (retention, caps, shard count) are kept; only the data is restored.
// Malformed or truncated input returns an error and leaves the store
// emptied, never panics. When r is an io.ByteReader (e.g. *bufio.Reader)
// no read-ahead happens, so framed container formats can embed snapshots.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	br := &codecutil.CountingReader{R: codecutil.AsByteReader(r)}
	n, err := s.decodeFrom(br)
	if err != nil {
		// Honor the contract: a failed restore leaves the store emptied,
		// not half-populated.
		s.Reset()
	}
	return n, err
}

// decodeFrom parses the snapshot payload into the store.
func (s *Store) decodeFrom(br *codecutil.CountingReader) (int64, error) {
	s.Reset()
	r := &codecutil.Reader{BR: br, Prefix: "dynstore"}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return br.N, fmt.Errorf("dynstore: reading magic: %w", err)
	}
	if magic != snapMagic {
		return br.N, fmt.Errorf("dynstore: bad snapshot magic %q", magic[:])
	}
	if v := r.U("version"); r.Err == nil && v != snapVersion {
		return br.N, fmt.Errorf("dynstore: unsupported snapshot version %d", v)
	}
	count := r.U("target count")
	if r.Err == nil && count > maxSnapTargets {
		return br.N, fmt.Errorf("dynstore: implausible target count %d", count)
	}
	for i := uint64(0); i < count && r.Err == nil; i++ {
		c := r.U("target id")
		n := r.U("target length")
		if r.Err != nil {
			break
		}
		if n > maxSnapList {
			return br.N, fmt.Errorf("dynstore: implausible list length %d", n)
		}
		list := make([]InEdge, 0, codecutil.PreallocHint(n))
		prev := int64(0)
		for j := uint64(0); j < n && r.Err == nil; j++ {
			b := r.U("entry source")
			prev += r.I("entry timestamp")
			list = append(list, InEdge{B: graph.VertexID(b), TS: prev})
		}
		if r.Err != nil {
			break
		}
		cid := graph.VertexID(c)
		sh := s.shardFor(cid)
		sh.mu.Lock()
		if _, dup := sh.targets[cid]; dup {
			sh.mu.Unlock()
			return br.N, fmt.Errorf("dynstore: duplicate target %d in snapshot", cid)
		}
		sh.targets[cid] = list
		sh.edges += int64(len(list))
		sh.mu.Unlock()
	}
	return br.N, r.Err
}

// Reset drops every retained edge, modeling the state loss of a crashed
// replica; options are kept.
func (s *Store) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.targets = make(map[graph.VertexID][]InEdge)
		sh.edges = 0
		sh.mu.Unlock()
	}
}
