package dynstore

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"motifstream/internal/codecutil"
	"motifstream/internal/graph"
)

// The binary snapshot format is the durable half of a partition replica's
// checkpoint: a magic header, the format version, then per query vertex C
// its retained in-edge list in arrival order — B as a uvarint and the
// timestamp as a zigzag delta from the previous entry (the stream is
// near-ordered, so deltas stay small). Targets are written in ascending C
// order so equal stores serialize identically. The layout is independent
// of the shard count, so a snapshot restores into a store configured with
// any Shards value.
//
// The same frame encoding, under a different magic, carries delta
// checkpoint segments (see delta.go): a delta frame is a full replacement
// of one target's list, with an empty list meaning the target was deleted.

// snapMagic identifies the dynstore snapshot format. Version 2 appends a
// CRC32C trailer over the whole frame (magic through payload), so silent
// media corruption is detected at decode instead of composing garbage.
var snapMagic = [8]byte{'M', 'S', 'D', 'S', 'N', 'P', 0, 1}

const snapVersion = 2

// Plausibility bounds for decoding; inputs beyond them are corrupt.
const (
	maxSnapTargets = 1 << 30
	maxSnapList    = 1 << 28
)

// encodeFrames writes the shared container: magic, version, target count,
// then one frame per id in the given order, closed by a CRC32C trailer
// over everything before it. get returns the list for an id; it may lock
// per call, so peak extra memory stays at one list.
func encodeFrames(w io.Writer, magic [8]byte, ids []graph.VertexID, get func(graph.VertexID) []InEdge) (int64, error) {
	cw := &codecutil.CountingWriter{W: w}
	hw := &codecutil.HashWriter{W: cw}
	enc := &codecutil.Writer{BW: bufio.NewWriter(hw)}
	enc.PutBytes(magic[:])
	enc.PutU(snapVersion)
	enc.PutU(uint64(len(ids)))
	for _, c := range ids {
		list := get(c)
		enc.PutU(uint64(c))
		enc.PutU(uint64(len(list)))
		prev := int64(0)
		for _, in := range list {
			enc.PutU(uint64(in.B))
			enc.PutI(in.TS - prev)
			prev = in.TS
		}
	}
	if err := enc.Flush(); err != nil {
		return cw.N, err
	}
	return cw.N, codecutil.WriteChecksum(cw, hw.Sum())
}

// decodeFrames parses the shared container written by encodeFrames into a
// fresh map and verifies the CRC32C trailer. Malformed or corrupted input
// returns an error, never panics.
func decodeFrames(rd io.Reader, magic [8]byte, name string) (map[graph.VertexID][]InEdge, int64, error) {
	hr := &codecutil.HashReader{R: codecutil.AsByteReader(rd)}
	br := &codecutil.CountingReader{R: hr}
	r := &codecutil.Reader{BR: br, Prefix: name}
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, br.N, fmt.Errorf("%s: reading magic: %w", name, err)
	}
	if got != magic {
		return nil, br.N, fmt.Errorf("%s: bad magic %q", name, got[:])
	}
	if v := r.U("version"); r.Err == nil && v != snapVersion {
		return nil, br.N, fmt.Errorf("%s: unsupported version %d", name, v)
	}
	count := r.U("target count")
	if r.Err == nil && count > maxSnapTargets {
		return nil, br.N, fmt.Errorf("%s: implausible target count %d", name, count)
	}
	out := make(map[graph.VertexID][]InEdge, codecutil.PreallocHint(count))
	for i := uint64(0); i < count && r.Err == nil; i++ {
		c := r.U("target id")
		n := r.U("target length")
		if r.Err != nil {
			break
		}
		if n > maxSnapList {
			return nil, br.N, fmt.Errorf("%s: implausible list length %d", name, n)
		}
		var list []InEdge
		if n > 0 {
			list = make([]InEdge, 0, codecutil.PreallocHint(n))
		}
		prev := int64(0)
		for j := uint64(0); j < n && r.Err == nil; j++ {
			b := r.U("entry source")
			prev += r.I("entry timestamp")
			list = append(list, InEdge{B: graph.VertexID(b), TS: prev})
		}
		if r.Err != nil {
			break
		}
		cid := graph.VertexID(c)
		if _, dup := out[cid]; dup {
			return nil, br.N, fmt.Errorf("%s: duplicate target %d", name, cid)
		}
		out[cid] = list
	}
	if r.Err != nil {
		return nil, br.N, r.Err
	}
	// The payload hash must be captured before the trailer bytes pass
	// through the hashing reader.
	sum := hr.Sum()
	if err := codecutil.VerifyChecksum(br, sum, name); err != nil {
		return nil, br.N, err
	}
	return out, br.N, nil
}

// sortedIDs returns the map's keys in ascending order for deterministic
// output.
func sortedIDs(targets map[graph.VertexID][]InEdge) []graph.VertexID {
	ids := make([]graph.VertexID, 0, len(targets))
	for c := range targets {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EncodeSnapshot serializes a captured target map in the snapshot format —
// the checkpoint compactor's path for writing a composed base without
// instantiating a Store.
func EncodeSnapshot(w io.Writer, targets map[graph.VertexID][]InEdge) (int64, error) {
	return encodeFrames(w, snapMagic, sortedIDs(targets), func(c graph.VertexID) []InEdge {
		return targets[c]
	})
}

// DecodeSnapshot parses a snapshot into a target map without touching any
// Store — the restore path decodes into a neutral representation first so
// delta segments can be composed on top before installation. When r is an
// io.ByteReader no read-ahead happens, so framed container formats can
// embed snapshots.
func DecodeSnapshot(r io.Reader) (map[graph.VertexID][]InEdge, int64, error) {
	return decodeFrames(r, snapMagic, "dynstore")
}

// WriteTo serializes the store's full contents in the versioned binary
// snapshot format, implementing io.WriterTo. Each target list is copied
// under its shard's read lock; for a point-in-time-consistent snapshot
// across shards the caller must quiesce writers (the replica checkpoint
// pipeline serializes cuts with Apply, so this holds there).
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	// Gather and sort only the target IDs for deterministic output, then
	// copy one list at a time under its shard lock while encoding — peak
	// extra memory stays at a single list rather than a full duplicate of
	// D. Lists must be copied because Insert reuses backing arrays in
	// place. A target removed since gathering (only possible if the caller
	// broke the quiescence contract) encodes as an empty list, keeping the
	// frame count consistent.
	var ids []graph.VertexID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for c := range sh.targets {
			ids = append(ids, c)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var list []InEdge
	return encodeFrames(w, snapMagic, ids, func(c graph.VertexID) []InEdge {
		sh := s.shardFor(c)
		sh.mu.RLock()
		list = append(list[:0], sh.targets[c]...)
		sh.mu.RUnlock()
		return list
	})
}

// ReadFrom replaces the store's contents with a snapshot previously
// produced by WriteTo, implementing io.ReaderFrom. The store's own options
// (retention, caps, shard count) are kept; only the data is restored.
// Malformed or truncated input returns an error and leaves the store
// emptied, never panics. When r is an io.ByteReader (e.g. *bufio.Reader)
// no read-ahead happens, so framed container formats can embed snapshots.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	targets, n, err := DecodeSnapshot(r)
	if err != nil {
		// Honor the contract: a failed restore leaves the store emptied,
		// not half-populated.
		s.Reset()
		return n, err
	}
	s.LoadSnapshot(targets)
	return n, nil
}

// LoadSnapshot replaces the store's contents with the given target map,
// taking ownership of it and its lists. The dirty sets are cleared: the
// loaded state is by definition what the checkpoint chain already
// contains, so the next delta cut captures only changes applied after it.
func (s *Store) LoadSnapshot(targets map[graph.VertexID][]InEdge) {
	s.Reset()
	for c, list := range targets {
		if len(list) == 0 {
			continue
		}
		sh := s.shardFor(c)
		sh.mu.Lock()
		sh.targets[c] = list
		sh.edges += int64(len(list))
		sh.mu.Unlock()
	}
}

// CaptureSnapshot copies the store's full contents into a fresh target
// map — the "full cut" baseline that delta checkpoints replace. Unlike
// CaptureDelta it does not drain the dirty sets, so it never perturbs an
// ongoing incremental chain.
func (s *Store) CaptureSnapshot() map[graph.VertexID][]InEdge {
	out := make(map[graph.VertexID][]InEdge)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for c, list := range sh.targets {
			cp := make([]InEdge, len(list))
			copy(cp, list)
			out[c] = cp
		}
		sh.mu.RUnlock()
	}
	return out
}

// Reset drops every retained edge, modeling the state loss of a crashed
// replica; options are kept.
func (s *Store) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.targets = make(map[graph.VertexID][]InEdge)
		sh.edges = 0
		sh.dirty = make(map[graph.VertexID]struct{})
		sh.mu.Unlock()
	}
}
