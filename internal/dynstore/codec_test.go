package dynstore

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"motifstream/internal/graph"
)

// randomStore builds a store from a random near-ordered stream, mirroring
// how D is populated in production: arrival-ordered inserts with lazy
// pruning and per-target caps.
func randomStore(r *rand.Rand, opts Options, events int) *Store {
	s := New(opts)
	ts := int64(1_000_000)
	for i := 0; i < events; i++ {
		ts += int64(r.Intn(50))
		e := graph.Edge{
			Src: graph.VertexID(r.Intn(200)),
			Dst: graph.VertexID(r.Intn(80)),
			TS:  ts - int64(r.Intn(20)), // occasional out-of-order straggler
		}
		s.Insert(e)
	}
	return s
}

// storeContents extracts every retained target list for deep comparison.
func storeContents(s *Store) map[graph.VertexID][]InEdge {
	out := map[graph.VertexID][]InEdge{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for c, list := range sh.targets {
			cp := make([]InEdge, len(list))
			copy(cp, list)
			out[c] = cp
		}
		sh.mu.RUnlock()
	}
	return out
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		opts := Options{
			Retention:    time.Duration(1+r.Intn(600)) * time.Second,
			MaxPerTarget: []int{0, 4, 64}[r.Intn(3)],
			Shards:       []int{0, 1, 8}[r.Intn(3)],
		}
		orig := randomStore(r, opts, 1+r.Intn(3_000))

		var buf bytes.Buffer
		n, err := orig.WriteTo(&buf)
		if err != nil {
			t.Fatalf("trial %d: WriteTo: %v", trial, err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("trial %d: WriteTo reported %d bytes, wrote %d", trial, n, buf.Len())
		}

		// Restore into a store with a different shard layout: the format
		// must be layout-independent.
		restored := New(Options{
			Retention:    opts.Retention,
			MaxPerTarget: opts.MaxPerTarget,
			Shards:       16,
		})
		m, err := restored.ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: ReadFrom: %v", trial, err)
		}
		if m != n {
			t.Fatalf("trial %d: ReadFrom consumed %d bytes, snapshot is %d", trial, m, n)
		}

		// Stats deep-equal.
		if got, want := restored.Stats(), orig.Stats(); got != want {
			t.Fatalf("trial %d: stats %+v != %+v", trial, got, want)
		}
		// Full contents deep-equal, including per-target arrival order.
		if got, want := storeContents(restored), storeContents(orig); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: contents diverge", trial)
		}
		// Query results deep-equal at a few probe points.
		for c := graph.VertexID(0); c < 80; c += 7 {
			for _, since := range []int64{0, 1_000_000, 1_030_000} {
				got := restored.Recent(c, since)
				want := orig.Recent(c, since)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: Recent(%d,%d) = %v, want %v", trial, c, since, got, want)
				}
			}
		}
	}
}

func TestSnapshotRoundTripEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New(Options{}).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New(Options{})
	if _, err := restored.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if st := restored.Stats(); st.Edges != 0 || st.Targets != 0 {
		t.Fatalf("restored empty store has %+v", st)
	}
}

func TestSnapshotReadFromReplacesContents(t *testing.T) {
	a := New(Options{})
	a.Insert(graph.Edge{Src: 1, Dst: 2, TS: 10})
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(Options{})
	b.Insert(graph.Edge{Src: 9, Dst: 9, TS: 99}) // pre-existing junk
	if _, err := b.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if got := b.Recent(9, 0); got != nil {
		t.Fatalf("pre-restore contents survived: %v", got)
	}
	if got := b.Recent(2, 0); len(got) != 1 || got[0].B != 1 {
		t.Fatalf("restored contents wrong: %v", got)
	}
}

func TestSnapshotDecodeRejectsCorruptInput(t *testing.T) {
	s := New(Options{})
	for i := 0; i < 100; i++ {
		s.Insert(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i % 5), TS: int64(i)})
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXXXXXX"), good[8:]...),
		"bad version": func() []byte {
			b := append([]byte(nil), good...)
			b[8] = 0x7f // version 127
			return b
		}(),
		"huge target count": append(append([]byte(nil), good[:9]...),
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
	}
	// Every truncation of the valid snapshot must error, not panic.
	for cut := 0; cut < len(good); cut += 1 + len(good)/37 {
		cases["truncated"] = good[:cut]
		for name, in := range cases {
			fresh := New(Options{})
			if _, err := fresh.ReadFrom(bytes.NewReader(in)); err == nil {
				t.Fatalf("%s input (len %d) decoded without error", name, len(in))
			}
			// The contract: a failed restore leaves the store emptied,
			// never half-populated.
			if st := fresh.Stats(); st.Edges != 0 || st.Targets != 0 {
				t.Fatalf("%s input left partial contents: %+v", name, st)
			}
		}
	}
}

func TestSnapshotDecodeRejectsDuplicateTarget(t *testing.T) {
	// Hand-assemble a snapshot with the same target twice.
	var buf bytes.Buffer
	buf.Write(snapMagic[:])
	buf.WriteByte(snapVersion)
	buf.WriteByte(2) // two targets
	for i := 0; i < 2; i++ {
		buf.WriteByte(7) // target C=7
		buf.WriteByte(1) // one entry
		buf.WriteByte(3) // B=3
		buf.WriteByte(2) // TS delta zigzag(1)
	}
	s := New(Options{})
	if _, err := s.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("duplicate target decoded without error")
	}
}

func TestSnapshotEmbeddedInLargerStream(t *testing.T) {
	// A snapshot followed by trailing bytes: ReadFrom must stop exactly at
	// the snapshot boundary, leaving the trailer for the caller — the
	// contract the engine and partition checkpoint containers rely on.
	s := New(Options{})
	s.Insert(graph.Edge{Src: 1, Dst: 2, TS: 5})
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snapLen := buf.Len()
	buf.WriteString("TRAILER")

	br := bytes.NewReader(buf.Bytes())
	restored := New(Options{})
	n, err := restored.ReadFrom(br)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(snapLen) {
		t.Fatalf("consumed %d bytes, snapshot is %d", n, snapLen)
	}
	rest := make([]byte, 7)
	if _, err := br.Read(rest); err != nil || string(rest) != "TRAILER" {
		t.Fatalf("trailer = %q, %v", rest, err)
	}
}

func TestResetDropsEverything(t *testing.T) {
	s := New(Options{})
	for i := 0; i < 50; i++ {
		s.Insert(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i % 3), TS: int64(i)})
	}
	s.Reset()
	if st := s.Stats(); st.Edges != 0 || st.Targets != 0 {
		t.Fatalf("Reset left %+v", st)
	}
	// The store stays usable.
	s.Insert(graph.Edge{Src: 1, Dst: 2, TS: 100})
	if s.CountRecent(2, 0) != 1 {
		t.Fatal("store unusable after Reset")
	}
}

// FuzzSnapshotDecode throws arbitrary bytes at the decoder; the only
// acceptable outcomes are a clean error or a successful decode that
// re-encodes losslessly.
func FuzzSnapshotDecode(f *testing.F) {
	seed := New(Options{})
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		seed.Insert(graph.Edge{
			Src: graph.VertexID(r.Intn(100)),
			Dst: graph.VertexID(r.Intn(30)),
			TS:  int64(i),
		})
	}
	var valid bytes.Buffer
	if _, err := seed.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(snapMagic[:])
	f.Add(valid.Bytes()[:valid.Len()/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		s := New(Options{})
		if _, err := s.ReadFrom(bytes.NewReader(data)); err != nil {
			return
		}
		// Decoded successfully: encoding the result must round-trip.
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode of decoded store failed: %v", err)
		}
		again := New(Options{})
		if _, err := again.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("decode of re-encoded store failed: %v", err)
		}
		if again.Stats() != s.Stats() {
			t.Fatalf("re-encode changed stats: %+v != %+v", again.Stats(), s.Stats())
		}
	})
}
