package dynstore

import (
	"io"

	"motifstream/internal/graph"
)

// deltaMagic identifies the dynstore delta segment format (same version
// and CRC32C framing as the snapshot format). A delta reuses the snapshot
// frame encoding: per dirtied target the full replacement list, with an
// empty list meaning the target was deleted (swept or fully pruned) since
// the previous cut.
var deltaMagic = [8]byte{'M', 'S', 'D', 'S', 'D', 'L', 0, 1}

// Delta is the dirtied-since-last-cut slice of a Store: for every target
// touched since the previous capture, its complete current list. Full
// replacement (rather than an operation log) makes deltas idempotent and
// trivially composable — applying segments in cut order, last write wins
// per target, reconstructs the store exactly.
type Delta struct {
	// Targets maps each dirtied C to a copy of its current list; an empty
	// or nil list records a deletion.
	Targets map[graph.VertexID][]InEdge
}

// Len returns the number of dirtied targets carried by the delta.
func (d Delta) Len() int { return len(d.Targets) }

// CaptureDelta copies every dirtied target's current list and resets the
// dirty sets — the synchronous part of an incremental checkpoint cut. Its
// cost is proportional to the number of targets touched since the last
// cut, not to the store size, which is what keeps the apply-loop pause
// bounded. The caller must quiesce writers for a consistent cut (the
// replica checkpoint pipeline serializes cuts with Apply).
func (s *Store) CaptureDelta() Delta {
	out := make(map[graph.VertexID][]InEdge)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for c := range sh.dirty {
			list := sh.targets[c] // absent => deletion, encoded as empty
			cp := make([]InEdge, len(list))
			copy(cp, list)
			out[c] = cp
		}
		if len(sh.dirty) > 0 {
			sh.dirty = make(map[graph.VertexID]struct{})
		}
		sh.mu.Unlock()
	}
	return Delta{Targets: out}
}

// WriteTo serializes the delta segment, implementing io.WriterTo. Targets
// are written in ascending order so equal deltas serialize identically.
func (d Delta) WriteTo(w io.Writer) (int64, error) {
	return encodeFrames(w, deltaMagic, sortedIDs(d.Targets), func(c graph.VertexID) []InEdge {
		return d.Targets[c]
	})
}

// DecodeDelta parses a delta segment written by WriteTo. When r is an
// io.ByteReader no read-ahead happens, so container formats can embed
// delta sections.
func DecodeDelta(r io.Reader) (Delta, int64, error) {
	targets, n, err := decodeFrames(r, deltaMagic, "dynstore delta")
	if err != nil {
		return Delta{}, n, err
	}
	return Delta{Targets: targets}, n, nil
}

// ApplyTo folds the delta into a composed target map (base-plus-chain
// restore composition): each carried target replaces the map's entry, and
// an empty list deletes it.
func (d Delta) ApplyTo(targets map[graph.VertexID][]InEdge) {
	for c, list := range d.Targets {
		if len(list) == 0 {
			delete(targets, c)
		} else {
			targets[c] = list
		}
	}
}
