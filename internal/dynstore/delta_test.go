package dynstore

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"motifstream/internal/graph"
)

func deltaTestStore() *Store {
	return New(Options{Retention: time.Hour, Shards: 4})
}

func TestCaptureDeltaTracksOnlyDirtiedTargets(t *testing.T) {
	s := deltaTestStore()
	t0 := int64(1_000_000)
	for i := 0; i < 100; i++ {
		s.Insert(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i % 10), TS: t0 + int64(i)})
	}
	first := s.CaptureDelta()
	if first.Len() != 10 {
		t.Fatalf("first delta carries %d targets, want 10", first.Len())
	}
	// Nothing dirtied since: the next delta is empty.
	if d := s.CaptureDelta(); d.Len() != 0 {
		t.Fatalf("idle delta carries %d targets", d.Len())
	}
	// One more insert dirties exactly one target.
	s.Insert(graph.Edge{Src: 999, Dst: 3, TS: t0 + 200})
	d := s.CaptureDelta()
	if d.Len() != 1 {
		t.Fatalf("delta after one insert carries %d targets", d.Len())
	}
	if _, ok := d.Targets[3]; !ok {
		t.Fatalf("delta missing dirtied target 3: %v", d.Targets)
	}
}

func TestCaptureDeltaRecordsSweepDeletions(t *testing.T) {
	s := deltaTestStore()
	t0 := int64(1_000_000)
	s.Insert(graph.Edge{Src: 1, Dst: 7, TS: t0})
	s.CaptureDelta() // drain
	// Sweep far past retention: target 7 is deleted and must appear in the
	// next delta as an empty list.
	s.Sweep(t0 + 2*time.Hour.Milliseconds())
	d := s.CaptureDelta()
	list, ok := d.Targets[7]
	if !ok {
		t.Fatalf("sweep deletion not dirtied: %v", d.Targets)
	}
	if len(list) != 0 {
		t.Fatalf("deleted target carries %d entries", len(list))
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	s := deltaTestStore()
	t0 := int64(1_000_000)
	for i := 0; i < 50; i++ {
		s.Insert(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i % 5), TS: t0 + int64(i)})
	}
	d := s.CaptureDelta()
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, m, err := DecodeDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("DecodeDelta consumed %d bytes, want %d", m, n)
	}
	if !reflect.DeepEqual(got.Targets, d.Targets) {
		t.Fatalf("round trip diverged:\n got %v\nwant %v", got.Targets, d.Targets)
	}
}

func TestDeltaDecodeRejectsCorruptInput(t *testing.T) {
	s := deltaTestStore()
	for i := 0; i < 20; i++ {
		s.Insert(graph.Edge{Src: graph.VertexID(i), Dst: 1, TS: int64(1_000_000 + i)})
	}
	var buf bytes.Buffer
	if _, err := s.CaptureDelta().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, _, err := DecodeDelta(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated delta accepted")
	}
	bad := append([]byte{}, data...)
	bad[0] ^= 0xff
	if _, _, err := DecodeDelta(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestDeltaComposeEqualsFullSnapshot pins the composition law the restore
// path depends on: base-capture + applied deltas == later full capture.
func TestDeltaComposeEqualsFullSnapshot(t *testing.T) {
	s := deltaTestStore()
	t0 := int64(1_000_000)
	apply := func(from, to int) {
		for i := from; i < to; i++ {
			s.Insert(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i % 13), TS: t0 + int64(i)*1000})
		}
	}
	apply(0, 200)
	base := s.CaptureSnapshot()
	s.CaptureDelta() // start the chain at the base
	apply(200, 300)
	d1 := s.CaptureDelta()
	apply(300, 400)
	// A sweep mid-chain exercises deletion frames.
	s.Sweep(t0 + 400*1000 + time.Hour.Milliseconds()/2)
	d2 := s.CaptureDelta()

	d1.ApplyTo(base)
	d2.ApplyTo(base)
	want := s.CaptureSnapshot()
	if !reflect.DeepEqual(base, want) {
		t.Fatalf("composed base+deltas diverged from full snapshot:\n got %d targets\nwant %d targets", len(base), len(want))
	}

	// And the composed map loads into a store that captures identically.
	restored := deltaTestStore()
	restored.LoadSnapshot(base)
	if got := restored.CaptureSnapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("LoadSnapshot of composed state diverged from original store")
	}
	if gotSt, wantSt := restored.Stats(), s.Stats(); gotSt != wantSt {
		t.Fatalf("restored stats %+v != original %+v", gotSt, wantSt)
	}
}
