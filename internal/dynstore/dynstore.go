// Package dynstore implements the paper's D data structure: for each query
// vertex C, the recent B→C edges with their creation timestamps. D is the
// hot, fully-dynamic half of the system — every partition ingests the
// entire edge stream into its own D — so it is sharded for write
// concurrency, pruned to a retention window to bound memory (paper §2:
// "memory pressure can be alleviated by pruning the D data structure to
// only retain the most recent edges"), and accounts its own size for
// experiment E5.
package dynstore

import (
	"sync"
	"time"

	"motifstream/internal/graph"
)

// InEdge is one retained B→C edge: the source B and its creation time.
type InEdge struct {
	B  graph.VertexID
	TS int64 // Unix milliseconds
}

// entryBytes approximates the resident cost of one retained InEdge,
// including slice overhead amortization.
const entryBytes = 16

// Options configures a Store.
type Options struct {
	// Retention is the window τ within which edges count toward motifs.
	// Edges older than Retention relative to the newest observed time are
	// pruned. Zero means no time-based pruning.
	Retention time.Duration

	// MaxPerTarget caps retained in-edges per C; the oldest fall off.
	// Protects against celebrity C's during viral events. Zero = unlimited.
	MaxPerTarget int

	// Shards is the number of lock shards; it is rounded up to a power of
	// two. Zero selects 64.
	Shards int
}

// Store is the D structure. All methods are safe for concurrent use.
type Store struct {
	retentionMS int64
	maxPer      int
	mask        uint64
	shards      []shard
}

type shard struct {
	mu      sync.RWMutex
	targets map[graph.VertexID][]InEdge
	edges   int64 // retained edge count in this shard
	// dirty is the set of targets modified since the last CaptureDelta —
	// inserts, prunes, and sweep deletions all mark it. It is what makes
	// incremental checkpoints possible: a cut copies only these lists
	// instead of the whole shard.
	dirty map[graph.VertexID]struct{}
}

// New creates a Store with the given options.
func New(opts Options) *Store {
	n := opts.Shards
	if n <= 0 {
		n = 64
	}
	// Round up to power of two for cheap masking.
	p := 1
	for p < n {
		p <<= 1
	}
	s := &Store{
		retentionMS: opts.Retention.Milliseconds(),
		maxPer:      opts.MaxPerTarget,
		mask:        uint64(p - 1),
		shards:      make([]shard, p),
	}
	for i := range s.shards {
		s.shards[i].targets = make(map[graph.VertexID][]InEdge)
		s.shards[i].dirty = make(map[graph.VertexID]struct{})
	}
	return s
}

func (s *Store) shardFor(c graph.VertexID) *shard {
	// Fibonacci hashing spreads sequential IDs across shards.
	h := uint64(c) * 0x9e3779b97f4a7c15
	return &s.shards[(h>>32)&s.mask]
}

// Insert records edge e (Src=B, Dst=C) and returns the number of retained
// in-edges for C after insertion, pruning expired entries along the way.
func (s *Store) Insert(e graph.Edge) int {
	sh := s.shardFor(e.Dst)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.targets[e.Dst]
	before := len(list)
	list = append(list, InEdge{B: e.Src, TS: e.TS})
	list = s.pruneLocked(list, e.TS)
	if s.maxPer > 0 && len(list) > s.maxPer {
		drop := len(list) - s.maxPer
		list = append(list[:0], list[drop:]...)
	}
	sh.targets[e.Dst] = list
	sh.edges += int64(len(list) - before)
	sh.dirty[e.Dst] = struct{}{}
	return len(list)
}

// pruneLocked drops entries older than the retention window relative to
// now. Entries are appended in arrival order; the stream is near-ordered,
// so a linear scan from the front removes the expired prefix. Out-of-order
// stragglers are tolerated: they are removed on a later prune pass.
func (s *Store) pruneLocked(list []InEdge, nowMS int64) []InEdge {
	if s.retentionMS <= 0 || len(list) == 0 {
		return list
	}
	cutoff := nowMS - s.retentionMS
	i := 0
	for i < len(list) && list[i].TS < cutoff {
		i++
	}
	if i == 0 {
		return list
	}
	return append(list[:0], list[i:]...)
}

// seenPool recycles the dedup scratch sets used by Recent queries; the
// query path runs once per stream event per partition, so map allocation
// here dominated whole-system CPU before pooling.
var seenPool = sync.Pool{
	New: func() any { return make(map[graph.VertexID]struct{}, 64) },
}

// Recent returns the B's that pointed at c at or after since (Unix ms),
// deduplicated keeping the most recent timestamp per B, oldest first. The
// result is freshly allocated.
func (s *Store) Recent(c graph.VertexID, sinceMS int64) []InEdge {
	return s.RecentLimit(c, sinceMS, 0)
}

// RecentLimit is Recent restricted to the limit most recent distinct B's;
// limit <= 0 means unlimited. The detection hot path passes its fanout cap
// here so a viral target with thousands of in-window edges costs O(limit)
// per query rather than O(window).
func (s *Store) RecentLimit(c graph.VertexID, sinceMS int64, limit int) []InEdge {
	return s.RecentLimitInto(nil, c, sinceMS, limit)
}

// RecentLimitInto is the appending form of RecentLimit: results are
// appended to dst (usually dst[:0] of a reusable buffer) and the extended
// slice is returned. Once dst has capacity the call performs zero heap
// allocation, which is what keeps the per-event detection path
// allocation-free.
func (s *Store) RecentLimitInto(dst []InEdge, c graph.VertexID, sinceMS int64, limit int) []InEdge {
	sh := s.shardFor(c)
	sh.mu.RLock()
	list := sh.targets[c]
	if len(list) == 0 {
		sh.mu.RUnlock()
		return dst
	}
	base := len(dst)
	out := dst
	seen := seenPool.Get().(map[graph.VertexID]struct{})
	// Scan newest-first: entries are appended in arrival order, so the
	// first time a B appears in the backward scan carries its most recent
	// in-window timestamp, and the scan can stop at the limit.
	for i := len(list) - 1; i >= 0; i-- {
		in := list[i]
		if in.TS < sinceMS {
			// Near-chronological arrival order means entries below the
			// window are rare past this point (out-of-order stragglers
			// only), and the expired prefix is pruned on insert; keep
			// scanning the short remainder rather than breaking early
			// and missing stragglers.
			continue
		}
		if _, dup := seen[in.B]; dup {
			continue
		}
		seen[in.B] = struct{}{}
		out = append(out, in)
		if limit > 0 && len(out)-base >= limit {
			break
		}
	}
	sh.mu.RUnlock()
	clear(seen)
	seenPool.Put(seen)
	// Restore chronological (oldest-first) order within the appended span.
	for i, j := base, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// CountRecent returns the number of distinct B's pointing at c since
// sinceMS.
func (s *Store) CountRecent(c graph.VertexID, sinceMS int64) int {
	return len(s.Recent(c, sinceMS))
}

// Sweep prunes every target against the given current time and drops empty
// targets. It is called periodically by the partition's background pruner;
// Insert also prunes lazily per target. Returns edges removed.
func (s *Store) Sweep(nowMS int64) int {
	if s.retentionMS <= 0 {
		return 0
	}
	cutoff := nowMS - s.retentionMS
	removed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for c, list := range sh.targets {
			keep := list[:0]
			for _, in := range list {
				if in.TS >= cutoff {
					keep = append(keep, in)
				}
			}
			removed += len(list) - len(keep)
			sh.edges -= int64(len(list) - len(keep))
			if len(keep) < len(list) {
				sh.dirty[c] = struct{}{}
			}
			if len(keep) == 0 {
				delete(sh.targets, c)
			} else {
				sh.targets[c] = keep
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Targets int    // distinct C's retained
	Edges   int64  // retained in-edges
	Bytes   uint64 // approximate resident size
}

// Stats scans the shards and returns current totals.
func (s *Store) Stats() Stats {
	var st Stats
	const mapEntryOverhead = 48
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Targets += len(sh.targets)
		st.Edges += sh.edges
		sh.mu.RUnlock()
	}
	st.Bytes = uint64(st.Edges)*entryBytes + uint64(st.Targets)*mapEntryOverhead
	return st
}
