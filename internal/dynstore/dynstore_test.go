package dynstore

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"motifstream/internal/graph"
)

func edge(b, c graph.VertexID, ts int64) graph.Edge {
	return graph.Edge{Src: b, Dst: c, Type: graph.Follow, TS: ts}
}

func bsOf(ins []InEdge) []graph.VertexID {
	out := make([]graph.VertexID, len(ins))
	for i, in := range ins {
		out[i] = in.B
	}
	return out
}

func TestInsertAndRecent(t *testing.T) {
	s := New(Options{Retention: time.Minute})
	s.Insert(edge(1, 100, 1_000))
	s.Insert(edge(2, 100, 2_000))
	s.Insert(edge(3, 200, 3_000))

	got := s.Recent(100, 0)
	if len(got) != 2 {
		t.Fatalf("Recent(100) = %v, want 2 entries", got)
	}
	if got[0].B != 1 || got[1].B != 2 {
		t.Fatalf("Recent(100) order = %v, want chronological [1 2]", bsOf(got))
	}
	if got := s.Recent(200, 0); len(got) != 1 || got[0].B != 3 {
		t.Fatalf("Recent(200) = %v", got)
	}
	if got := s.Recent(999, 0); got != nil {
		t.Fatalf("Recent(unknown) = %v, want nil", got)
	}
}

func TestRecentSinceFilter(t *testing.T) {
	s := New(Options{})
	s.Insert(edge(1, 100, 1_000))
	s.Insert(edge(2, 100, 2_000))
	s.Insert(edge(3, 100, 3_000))
	got := s.Recent(100, 2_000)
	if len(got) != 2 || got[0].B != 2 || got[1].B != 3 {
		t.Fatalf("Recent(since=2000) = %v, want B's [2 3]", bsOf(got))
	}
}

func TestRecentDedupsKeepingLatest(t *testing.T) {
	s := New(Options{})
	s.Insert(edge(1, 100, 1_000))
	s.Insert(edge(2, 100, 2_000))
	s.Insert(edge(1, 100, 5_000)) // B=1 acts again, later
	got := s.Recent(100, 0)
	if len(got) != 2 {
		t.Fatalf("Recent = %v, want 2 distinct B's", got)
	}
	// B=1's entry must carry its most recent timestamp.
	for _, in := range got {
		if in.B == 1 && in.TS != 5_000 {
			t.Fatalf("B=1 TS = %d, want 5000 (most recent)", in.TS)
		}
	}
}

func TestRecentLimitKeepsFreshest(t *testing.T) {
	s := New(Options{})
	for i := 0; i < 10; i++ {
		s.Insert(edge(graph.VertexID(i), 100, int64(1_000+i)))
	}
	got := s.RecentLimit(100, 0, 3)
	if len(got) != 3 {
		t.Fatalf("RecentLimit = %d entries, want 3", len(got))
	}
	// Freshest three are B=7,8,9, returned oldest-first.
	want := []graph.VertexID{7, 8, 9}
	for i, in := range got {
		if in.B != want[i] {
			t.Fatalf("RecentLimit = %v, want %v", bsOf(got), want)
		}
	}
	// Limit 0 means unlimited.
	if got := s.RecentLimit(100, 0, 0); len(got) != 10 {
		t.Fatalf("unlimited = %d entries, want 10", len(got))
	}
	// Limit larger than population.
	if got := s.RecentLimit(100, 0, 99); len(got) != 10 {
		t.Fatalf("big limit = %d entries, want 10", len(got))
	}
}

func TestInsertPrunesExpired(t *testing.T) {
	s := New(Options{Retention: time.Second})
	s.Insert(edge(1, 100, 1_000))
	s.Insert(edge(2, 100, 2_500))
	// At t=3000 the cutoff is 2000: edge@1000 is pruned, edge@2500 stays.
	n := s.Insert(edge(3, 100, 3_000))
	if n != 2 {
		t.Fatalf("retained %d in-edges, want 2 (edge@1000 pruned)", n)
	}
	got := s.Recent(100, 0)
	for _, in := range got {
		if in.B == 1 {
			t.Fatal("expired edge still visible")
		}
	}
}

func TestMaxPerTarget(t *testing.T) {
	s := New(Options{MaxPerTarget: 3})
	for i := 0; i < 10; i++ {
		s.Insert(edge(graph.VertexID(i), 100, int64(1_000+i)))
	}
	got := s.Recent(100, 0)
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3 (MaxPerTarget)", len(got))
	}
	// The oldest fell off; the newest three remain.
	want := []graph.VertexID{7, 8, 9}
	for i, in := range got {
		if in.B != want[i] {
			t.Fatalf("retained %v, want %v", bsOf(got), want)
		}
	}
}

func TestSweep(t *testing.T) {
	s := New(Options{Retention: time.Second})
	for i := 0; i < 5; i++ {
		s.Insert(edge(graph.VertexID(i), graph.VertexID(100+i), 1_000))
	}
	if st := s.Stats(); st.Targets != 5 || st.Edges != 5 {
		t.Fatalf("before sweep: %+v", st)
	}
	removed := s.Sweep(10_000) // everything is older than 1s now
	if removed != 5 {
		t.Fatalf("Sweep removed %d, want 5", removed)
	}
	st := s.Stats()
	if st.Targets != 0 || st.Edges != 0 {
		t.Fatalf("after sweep: %+v, want empty", st)
	}
	// Sweeping with no retention is a no-op.
	s2 := New(Options{})
	s2.Insert(edge(1, 2, 1))
	if removed := s2.Sweep(1 << 60); removed != 0 {
		t.Fatal("Sweep without retention should remove nothing")
	}
}

func TestSweepPartial(t *testing.T) {
	s := New(Options{Retention: time.Second})
	s.Insert(edge(1, 100, 1_000))
	s.Insert(edge(2, 100, 1_500)) // both inside retention at insert time
	removed := s.Sweep(2_300)     // cutoff 1300: first edge out, second in
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	got := s.Recent(100, 0)
	if len(got) != 1 || got[0].B != 2 {
		t.Fatalf("after partial sweep: %v", bsOf(got))
	}
}

func TestStatsBytes(t *testing.T) {
	s := New(Options{})
	if st := s.Stats(); st.Bytes != 0 {
		t.Fatalf("empty store bytes = %d", st.Bytes)
	}
	s.Insert(edge(1, 2, 1))
	if st := s.Stats(); st.Bytes == 0 || st.Edges != 1 || st.Targets != 1 {
		t.Fatalf("stats after one insert: %+v", st)
	}
}

func TestShardRounding(t *testing.T) {
	for _, n := range []int{0, 1, 3, 64, 100} {
		s := New(Options{Shards: n})
		// Power-of-two mask: mask+1 must be a power of two >= max(n,1).
		p := s.mask + 1
		if p&(p-1) != 0 {
			t.Fatalf("Shards=%d: %d shards is not a power of two", n, p)
		}
		if n > 0 && int(p) < n {
			t.Fatalf("Shards=%d rounded down to %d", n, p)
		}
	}
}

func TestCountRecent(t *testing.T) {
	s := New(Options{})
	s.Insert(edge(1, 100, 1_000))
	s.Insert(edge(1, 100, 2_000)) // same B twice
	s.Insert(edge(2, 100, 3_000))
	if got := s.CountRecent(100, 0); got != 2 {
		t.Fatalf("CountRecent = %d, want 2 distinct B's", got)
	}
}

// Property: for random insert sequences, Recent agrees with a brute-force
// reference on the set of distinct in-window B's and their latest
// timestamps.
func TestRecentAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		retention := time.Duration(1+r.Intn(10)) * time.Second
		s := New(Options{Retention: retention})
		type rec struct {
			b  graph.VertexID
			ts int64
		}
		var history []rec
		now := int64(0)
		const target = graph.VertexID(7)
		for i := 0; i < 300; i++ {
			now += int64(r.Intn(500))
			b := graph.VertexID(r.Intn(10))
			s.Insert(edge(b, target, now))
			history = append(history, rec{b, now})
		}
		since := now - retention.Milliseconds()
		// Reference: latest in-window TS per B. Entries pruned by Insert
		// are exactly those below the retention cutoff relative to the
		// max seen time, so the window filter matches.
		wantTS := map[graph.VertexID]int64{}
		for _, h := range history {
			if h.ts >= since && h.ts > wantTS[h.b] {
				wantTS[h.b] = h.ts
			}
		}
		got := s.Recent(target, since)
		if len(got) != len(wantTS) {
			t.Fatalf("trial %d: %d distinct B's, want %d", trial, len(got), len(wantTS))
		}
		for _, in := range got {
			if wantTS[in.B] != in.TS {
				t.Fatalf("trial %d: B=%d TS=%d, want %d", trial, in.B, in.TS, wantTS[in.B])
			}
		}
	}
}

func TestConcurrentInsertAndQuery(t *testing.T) {
	s := New(Options{Retention: time.Minute, Shards: 8})
	var wg sync.WaitGroup
	const writers = 4
	const perWriter = 2_000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Insert(edge(graph.VertexID(w), graph.VertexID(i%50), int64(i)))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1_000; i++ {
			s.Recent(graph.VertexID(i%50), 0)
			s.Stats()
		}
	}()
	wg.Wait()
	<-done
	st := s.Stats()
	if st.Edges == 0 {
		t.Fatal("no edges retained after concurrent inserts")
	}
}
