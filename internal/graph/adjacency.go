package graph

import "sort"

// AdjList is a sorted, duplicate-free list of vertex IDs. The S data
// structure keeps follower lists in this form so that intersections can be
// computed with linear merges or galloping search (paper §2: "we can easily
// keep the A's sorted and thus intersections can be implemented efficiently
// using well-known algorithms").
type AdjList []VertexID

// NewAdjList sorts and deduplicates ids into a valid AdjList. The input
// slice is not modified.
func NewAdjList(ids []VertexID) AdjList {
	if len(ids) == 0 {
		return nil
	}
	out := make(AdjList, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out.dedupInPlace()
}

// dedupInPlace removes adjacent duplicates from an already-sorted list.
func (l AdjList) dedupInPlace() AdjList {
	if len(l) < 2 {
		return l
	}
	w := 1
	for i := 1; i < len(l); i++ {
		if l[i] != l[w-1] {
			l[w] = l[i]
			w++
		}
	}
	return l[:w]
}

// Contains reports whether id is present, using binary search.
func (l AdjList) Contains(id VertexID) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= id })
	return i < len(l) && l[i] == id
}

// Insert returns a list with id added, preserving order. It is O(n); the
// static store only uses it at build time.
func (l AdjList) Insert(id VertexID) AdjList {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= id })
	if i < len(l) && l[i] == id {
		return l
	}
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = id
	return l
}

// IsSorted reports whether the list satisfies the AdjList invariant
// (strictly increasing). Used by tests and validation paths.
func (l AdjList) IsSorted() bool {
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (l AdjList) Clone() AdjList {
	if l == nil {
		return nil
	}
	out := make(AdjList, len(l))
	copy(out, l)
	return out
}
