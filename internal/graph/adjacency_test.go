package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAdjListSortsAndDedups(t *testing.T) {
	tests := []struct {
		name string
		in   []VertexID
		want AdjList
	}{
		{"empty", nil, nil},
		{"single", []VertexID{5}, AdjList{5}},
		{"sorted", []VertexID{1, 2, 3}, AdjList{1, 2, 3}},
		{"reverse", []VertexID{3, 2, 1}, AdjList{1, 2, 3}},
		{"duplicates", []VertexID{2, 1, 2, 3, 1}, AdjList{1, 2, 3}},
		{"all same", []VertexID{7, 7, 7, 7}, AdjList{7}},
		{"max ids", []VertexID{1<<64 - 1, 0, 1<<64 - 1}, AdjList{0, 1<<64 - 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewAdjList(tt.in)
			if len(got) != len(tt.want) {
				t.Fatalf("NewAdjList(%v) = %v, want %v", tt.in, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("NewAdjList(%v) = %v, want %v", tt.in, got, tt.want)
				}
			}
		})
	}
}

func TestNewAdjListDoesNotModifyInput(t *testing.T) {
	in := []VertexID{3, 1, 2}
	NewAdjList(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input slice modified: %v", in)
	}
}

func TestAdjListContains(t *testing.T) {
	l := NewAdjList([]VertexID{2, 4, 6, 8})
	for _, v := range []VertexID{2, 4, 6, 8} {
		if !l.Contains(v) {
			t.Errorf("Contains(%d) = false, want true", v)
		}
	}
	for _, v := range []VertexID{0, 1, 3, 5, 7, 9, 100} {
		if l.Contains(v) {
			t.Errorf("Contains(%d) = true, want false", v)
		}
	}
	var empty AdjList
	if empty.Contains(1) {
		t.Error("empty list Contains(1) = true")
	}
}

func TestAdjListInsert(t *testing.T) {
	var l AdjList
	for _, v := range []VertexID{5, 1, 3, 1, 5, 2, 4} {
		l = l.Insert(v)
	}
	want := AdjList{1, 2, 3, 4, 5}
	if len(l) != len(want) {
		t.Fatalf("after inserts: %v, want %v", l, want)
	}
	for i := range l {
		if l[i] != want[i] {
			t.Fatalf("after inserts: %v, want %v", l, want)
		}
	}
	if !l.IsSorted() {
		t.Error("list not sorted after inserts")
	}
}

func TestAdjListInsertIdempotent(t *testing.T) {
	l := NewAdjList([]VertexID{1, 2, 3})
	l2 := l.Insert(2)
	if len(l2) != 3 {
		t.Fatalf("inserting existing element changed length: %v", l2)
	}
}

func TestAdjListIsSorted(t *testing.T) {
	if !(AdjList{}).IsSorted() {
		t.Error("empty list should be sorted")
	}
	if !(AdjList{1}).IsSorted() {
		t.Error("singleton should be sorted")
	}
	if (AdjList{1, 1}).IsSorted() {
		t.Error("duplicate entries violate the strict invariant")
	}
	if (AdjList{2, 1}).IsSorted() {
		t.Error("descending list reported sorted")
	}
}

func TestAdjListClone(t *testing.T) {
	l := NewAdjList([]VertexID{1, 2, 3})
	c := l.Clone()
	c[0] = 99
	if l[0] != 1 {
		t.Error("Clone shares storage with original")
	}
	if (AdjList)(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

// Property: NewAdjList always yields a strictly sorted list containing
// exactly the distinct input values.
func TestNewAdjListProperties(t *testing.T) {
	f := func(ids []uint64) bool {
		in := make([]VertexID, len(ids))
		set := make(map[VertexID]bool)
		for i, v := range ids {
			in[i] = VertexID(v)
			set[VertexID(v)] = true
		}
		l := NewAdjList(in)
		if !l.IsSorted() {
			return false
		}
		if len(l) != len(set) {
			return false
		}
		for _, v := range l {
			if !set[v] {
				return false
			}
		}
		// Contains must agree with the set for members and a non-member.
		for v := range set {
			if !l.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Insert maintains the sorted/dedup invariant from any valid
// starting list.
func TestInsertProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		base := make([]VertexID, r.Intn(50))
		for i := range base {
			base[i] = VertexID(r.Intn(100))
		}
		l := NewAdjList(base)
		v := VertexID(r.Intn(100))
		had := l.Contains(v)
		l = l.Insert(v)
		if !l.IsSorted() {
			t.Fatalf("trial %d: not sorted after Insert(%d): %v", trial, v, l)
		}
		if !l.Contains(v) {
			t.Fatalf("trial %d: Insert(%d) not visible", trial, v)
		}
		wantLen := len(NewAdjList(base))
		if !had {
			wantLen++
		}
		if len(l) != wantLen {
			t.Fatalf("trial %d: length %d, want %d", trial, len(l), wantLen)
		}
	}
}
