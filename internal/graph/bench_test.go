package graph

import (
	"math/rand"
	"testing"
)

func benchList(seed int64, n, space int) AdjList {
	r := rand.New(rand.NewSource(seed))
	ids := make([]VertexID, n)
	for i := range ids {
		ids[i] = VertexID(r.Intn(space))
	}
	return NewAdjList(ids)
}

func BenchmarkIntersectMergeBalanced(b *testing.B) {
	x := benchList(1, 10_000, 100_000)
	y := benchList(2, 10_000, 100_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		IntersectMerge(x, y)
	}
}

func BenchmarkIntersectGallopSkewed(b *testing.B) {
	x := benchList(1, 100, 1_000_000)
	y := benchList(2, 100_000, 1_000_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		IntersectGallop(x, y)
	}
}

func BenchmarkIntersectAutoSkewed(b *testing.B) {
	x := benchList(1, 100, 1_000_000)
	y := benchList(2, 100_000, 1_000_000)
	for i := 0; i < b.N; i++ {
		Intersect(x, y)
	}
}

func BenchmarkThresholdIntersect(b *testing.B) {
	lists := make([]AdjList, 16)
	for i := range lists {
		lists[i] = benchList(int64(i), 2_000, 100_000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ThresholdIntersect(lists, 3)
	}
}

func BenchmarkBuildCSR(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	edges := make([]Edge, 200_000)
	for i := range edges {
		edges[i] = Edge{Src: VertexID(r.Intn(10_000)), Dst: VertexID(r.Intn(10_000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCSR(edges)
	}
}

func BenchmarkCSRInvert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	edges := make([]Edge, 200_000)
	for i := range edges {
		edges[i] = Edge{Src: VertexID(r.Intn(10_000)), Dst: VertexID(r.Intn(10_000))}
	}
	c := BuildCSR(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Invert()
	}
}

func BenchmarkAdjListContains(b *testing.B) {
	l := benchList(1, 10_000, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Contains(VertexID(i % 1_000_000))
	}
}
