package graph

import (
	"errors"
	"sort"
)

// CSR is a compressed-sparse-row immutable directed graph. The offline
// pipeline that builds the S store emits a CSR of the A→B follow edges; its
// compactness is what makes "all data structures held in main memory"
// (paper §2) feasible.
type CSR struct {
	offsets []uint64   // len = maxVertex+2; neighbors of v are targets[offsets[v]:offsets[v+1]]
	targets []VertexID // sorted within each row
	edges   uint64
}

// ErrVertexRange reports a vertex outside the CSR's ID space.
var ErrVertexRange = errors.New("graph: vertex id out of range")

// BuildCSR constructs a CSR from an edge list. Vertex IDs are used directly
// as row indices, so IDs should be reasonably dense; the workload generator
// guarantees this. Duplicate edges are removed.
func BuildCSR(edges []Edge) *CSR {
	var maxV VertexID
	for _, e := range edges {
		if e.Src > maxV {
			maxV = e.Src
		}
		if e.Dst > maxV {
			maxV = e.Dst
		}
	}
	n := uint64(maxV) + 1
	if len(edges) == 0 {
		n = 0
	}
	counts := make([]uint64, n+1)
	for _, e := range edges {
		counts[uint64(e.Src)+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	offsets := counts
	targets := make([]VertexID, len(edges))
	fill := make([]uint64, n)
	for _, e := range edges {
		s := uint64(e.Src)
		targets[offsets[s]+fill[s]] = e.Dst
		fill[s]++
	}
	// Sort and dedup each row.
	c := &CSR{offsets: offsets, targets: targets}
	var w uint64
	newOffsets := make([]uint64, len(offsets))
	for v := uint64(0); v < n; v++ {
		row := targets[offsets[v]:offsets[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		newOffsets[v] = w
		for i := range row {
			if i > 0 && row[i] == row[i-1] {
				continue
			}
			targets[w] = row[i]
			w++
		}
	}
	if n > 0 {
		newOffsets[n] = w
	}
	c.offsets = newOffsets
	c.targets = targets[:w]
	c.edges = w
	return c
}

// NumVertices returns the size of the ID space (max vertex + 1).
func (c *CSR) NumVertices() int {
	if len(c.offsets) == 0 {
		return 0
	}
	return len(c.offsets) - 1
}

// NumEdges returns the deduplicated edge count.
func (c *CSR) NumEdges() uint64 { return c.edges }

// Neighbors returns the sorted out-neighbors of v. The returned slice
// aliases internal storage and must not be modified.
func (c *CSR) Neighbors(v VertexID) AdjList {
	if int(v) >= c.NumVertices() {
		return nil
	}
	return AdjList(c.targets[c.offsets[v]:c.offsets[v+1]])
}

// OutDegree returns the out-degree of v.
func (c *CSR) OutDegree(v VertexID) int { return len(c.Neighbors(v)) }

// HasEdge reports whether the edge v→w exists.
func (c *CSR) HasEdge(v, w VertexID) bool { return c.Neighbors(v).Contains(w) }

// Invert produces the reverse CSR (w→v for every v→w). Inverting the A→B
// follow CSR yields exactly the S layout: for each B, the sorted A's.
func (c *CSR) Invert() *CSR {
	n := uint64(c.NumVertices())
	counts := make([]uint64, n+1)
	for _, w := range c.targets {
		counts[uint64(w)+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	targets := make([]VertexID, len(c.targets))
	fill := make([]uint64, n)
	for v := uint64(0); v < n; v++ {
		for _, w := range c.targets[c.offsets[v]:c.offsets[v+1]] {
			targets[counts[w]+fill[w]] = VertexID(v)
			fill[w]++
		}
	}
	// Rows of an inversion built in increasing source order are already
	// sorted, because sources are visited in order.
	return &CSR{offsets: counts, targets: targets, edges: uint64(len(targets))}
}

// MemoryBytes returns the approximate resident size of the CSR.
func (c *CSR) MemoryBytes() uint64 {
	return uint64(len(c.offsets))*8 + uint64(len(c.targets))*8
}
