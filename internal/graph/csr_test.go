package graph

import (
	"math/rand"
	"testing"
)

func edgesOf(pairs ...[2]VertexID) []Edge {
	out := make([]Edge, len(pairs))
	for i, p := range pairs {
		out[i] = Edge{Src: p[0], Dst: p[1], Type: Follow}
	}
	return out
}

func TestBuildCSRBasic(t *testing.T) {
	c := BuildCSR(edgesOf(
		[2]VertexID{0, 1}, [2]VertexID{0, 2}, [2]VertexID{1, 2}, [2]VertexID{2, 0},
	))
	if c.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", c.NumVertices())
	}
	if c.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", c.NumEdges())
	}
	if got := c.Neighbors(0); !equalLists(got, AdjList{1, 2}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if got := c.Neighbors(1); !equalLists(got, AdjList{2}) {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	if got := c.Neighbors(2); !equalLists(got, AdjList{0}) {
		t.Fatalf("Neighbors(2) = %v", got)
	}
	if c.OutDegree(0) != 2 || c.OutDegree(1) != 1 {
		t.Fatal("wrong out-degrees")
	}
	if !c.HasEdge(0, 1) || c.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBuildCSREmpty(t *testing.T) {
	c := BuildCSR(nil)
	if c.NumVertices() != 0 || c.NumEdges() != 0 {
		t.Fatalf("empty CSR: %d vertices, %d edges", c.NumVertices(), c.NumEdges())
	}
	if c.Neighbors(0) != nil {
		t.Fatal("Neighbors on empty CSR should be nil")
	}
}

func TestBuildCSRDedupsAndSorts(t *testing.T) {
	c := BuildCSR(edgesOf(
		[2]VertexID{0, 3}, [2]VertexID{0, 1}, [2]VertexID{0, 3}, [2]VertexID{0, 2},
	))
	got := c.Neighbors(0)
	if !equalLists(got, AdjList{1, 2, 3}) {
		t.Fatalf("Neighbors(0) = %v, want [1 2 3]", got)
	}
	if c.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d after dedup, want 3", c.NumEdges())
	}
}

func TestCSRNeighborsOutOfRange(t *testing.T) {
	c := BuildCSR(edgesOf([2]VertexID{0, 1}))
	if c.Neighbors(99) != nil {
		t.Fatal("out-of-range Neighbors should be nil")
	}
	if c.OutDegree(99) != 0 {
		t.Fatal("out-of-range OutDegree should be 0")
	}
}

func TestCSRSparseIDs(t *testing.T) {
	// Vertex 100 with nothing in between: rows 1..99 must be empty.
	c := BuildCSR(edgesOf([2]VertexID{100, 0}))
	if c.NumVertices() != 101 {
		t.Fatalf("NumVertices = %d, want 101", c.NumVertices())
	}
	for v := VertexID(1); v < 100; v++ {
		if len(c.Neighbors(v)) != 0 {
			t.Fatalf("vertex %d should have no neighbors", v)
		}
	}
	if !equalLists(c.Neighbors(100), AdjList{0}) {
		t.Fatal("vertex 100 neighbors wrong")
	}
}

func TestCSRInvert(t *testing.T) {
	edges := edgesOf(
		[2]VertexID{0, 2}, [2]VertexID{1, 2}, [2]VertexID{3, 2}, [2]VertexID{1, 0},
	)
	inv := BuildCSR(edges).Invert()
	if got := inv.Neighbors(2); !equalLists(got, AdjList{0, 1, 3}) {
		t.Fatalf("inverted Neighbors(2) = %v, want [0 1 3]", got)
	}
	if got := inv.Neighbors(0); !equalLists(got, AdjList{1}) {
		t.Fatalf("inverted Neighbors(0) = %v, want [1]", got)
	}
	if inv.NumEdges() != 4 {
		t.Fatalf("inverted NumEdges = %d, want 4", inv.NumEdges())
	}
}

// Property: Invert twice is the identity (on the deduplicated graph), and
// every row of an inversion is sorted.
func TestCSRInvertRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(50)
		var edges []Edge
		for i := 0; i < 200; i++ {
			edges = append(edges, Edge{
				Src: VertexID(r.Intn(n)), Dst: VertexID(r.Intn(n)),
			})
		}
		c := BuildCSR(edges)
		inv := c.Invert()
		back := inv.Invert()
		if back.NumEdges() != c.NumEdges() {
			t.Fatalf("trial %d: round-trip edge count %d != %d", trial, back.NumEdges(), c.NumEdges())
		}
		for v := 0; v < c.NumVertices(); v++ {
			if !AdjList(inv.Neighbors(VertexID(v))).IsSorted() {
				t.Fatalf("trial %d: inverted row %d not sorted", trial, v)
			}
			if !equalLists(back.Neighbors(VertexID(v)), c.Neighbors(VertexID(v))) {
				t.Fatalf("trial %d: row %d differs after double inversion", trial, v)
			}
		}
		// Edge-level check: v→w in c iff w→v in inv.
		for v := 0; v < c.NumVertices(); v++ {
			for _, w := range c.Neighbors(VertexID(v)) {
				if !inv.HasEdge(w, VertexID(v)) {
					t.Fatalf("trial %d: edge %d→%d missing from inversion", trial, v, w)
				}
			}
		}
	}
}

func TestCSRMemoryBytes(t *testing.T) {
	c := BuildCSR(edgesOf([2]VertexID{0, 1}, [2]VertexID{1, 0}))
	if c.MemoryBytes() == 0 {
		t.Fatal("MemoryBytes should be positive for a non-empty CSR")
	}
}

func TestDegreeStats(t *testing.T) {
	s := ComputeDegreeStats([]int{0, 1, 2, 3, 4, 0, 0})
	if s.N != 4 {
		t.Fatalf("N = %d, want 4 (zeros ignored)", s.N)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	if s.Mean != 2.5 {
		t.Fatalf("mean = %f", s.Mean)
	}
	if s.Gini < 0 || s.Gini > 1 {
		t.Fatalf("gini = %f out of [0,1]", s.Gini)
	}
	if got := ComputeDegreeStats(nil); got.N != 0 {
		t.Fatal("empty stats should be zero")
	}
	// A perfectly equal distribution has Gini 0.
	eq := ComputeDegreeStats([]int{5, 5, 5, 5})
	if eq.Gini > 1e-9 {
		t.Fatalf("equal distribution gini = %f, want 0", eq.Gini)
	}
	// An extremely skewed one approaches 1.
	skew := make([]int, 1000)
	for i := range skew {
		skew[i] = 1
	}
	skew[0] = 1_000_000
	sk := ComputeDegreeStats(skew)
	if sk.Gini < 0.9 {
		t.Fatalf("skewed gini = %f, want near 1", sk.Gini)
	}
}

func TestInOutDegrees(t *testing.T) {
	edges := edgesOf([2]VertexID{0, 1}, [2]VertexID{0, 2}, [2]VertexID{1, 2})
	in := InDegrees(edges)
	out := OutDegrees(edges)
	if in[2] != 2 || in[1] != 1 || in[0] != 0 {
		t.Fatalf("in-degrees = %v", in)
	}
	if out[0] != 2 || out[1] != 1 || out[2] != 0 {
		t.Fatalf("out-degrees = %v", out)
	}
	if InDegrees(nil) != nil || OutDegrees(nil) != nil {
		t.Fatal("degrees of empty edge set should be nil")
	}
}

func TestEdgeStringAndTime(t *testing.T) {
	e := Edge{Src: 1, Dst: 2, Type: Retweet, TS: 1_000}
	if e.String() == "" {
		t.Fatal("empty String()")
	}
	if e.Time().UnixMilli() != 1_000 {
		t.Fatal("Time() round-trip failed")
	}
	if Follow.String() != "follow" || Retweet.String() != "retweet" || Favorite.String() != "favorite" {
		t.Fatal("EdgeType names wrong")
	}
	if EdgeType(42).String() == "" {
		t.Fatal("unknown EdgeType should still render")
	}
}
