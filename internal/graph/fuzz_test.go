package graph

import (
	"bytes"
	"testing"
)

// decodeFuzzLists turns raw fuzz bytes into sorted, possibly
// duplicate-bearing input lists. 0xFF starts a new list; every other byte
// advances the running value by b%8 — a zero delta produces a duplicate, so
// the corpus naturally exercises the within-list-duplicate semantics the
// kernels must get right.
func decodeFuzzLists(data []byte) []AdjList {
	var lists []AdjList
	var cur AdjList
	v := VertexID(0)
	for _, b := range data {
		if b == 0xFF {
			lists = append(lists, cur)
			cur = nil
			v = 0
			continue
		}
		v += VertexID(b % 8)
		cur = append(cur, v)
	}
	lists = append(lists, cur)
	return lists
}

// FuzzThresholdIntersect differentially tests the heap kernel, the
// counting fallback, and the Into variant against the naive distinct-lists
// oracle, over duplicate-bearing sorted inputs and every feasible k.
func FuzzThresholdIntersect(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0xFF, 7})          // [[0,0],[7]] — the reported bug shape
	f.Add([]byte{0, 0, 0xFF, 0, 3})       // [[0,0],[0,3]]
	f.Add([]byte{1, 0, 2, 0xFF, 1, 2, 0}) // dup tails
	f.Add(bytes.Repeat([]byte{0xFF}, 5))  // many empty lists
	f.Add([]byte{1, 2, 3, 0xFF, 1, 2, 3, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<10 {
			return
		}
		lists := decodeFuzzLists(data)
		s := GetScratch()
		defer PutScratch(s)
		var dst AdjList
		for k := 1; k <= len(lists); k++ {
			want := refThreshold(lists, k)
			if got := ThresholdIntersect(lists, k); !equalLists(got, want) {
				t.Fatalf("k=%d: heap kernel = %v, oracle = %v (lists=%v)", k, got, want, lists)
			}
			if got := ThresholdIntersectCount(lists, k); !equalLists(got, want) {
				t.Fatalf("k=%d: counting fallback = %v, oracle = %v (lists=%v)", k, got, want, lists)
			}
			dst = ThresholdIntersectInto(dst[:0], lists, k, s)
			if !equalLists(dst, want) {
				t.Fatalf("k=%d: Into variant = %v, oracle = %v (lists=%v)", k, dst, want, lists)
			}
		}
	})
}
