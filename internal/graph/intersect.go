package graph

import (
	"container/heap"
	"sort"
	"sync"
)

// This file implements the intersection kernels used by the diamond
// detector. The paper intersects the sorted follower lists of the B's that
// recently pointed at C; with the production setting k=3 out of n≥3 recent
// B's, the required operation is the k-of-n threshold intersection: every A
// appearing in at least k of the lists. Exact intersection (k == n) gets
// the classic two-pointer and galloping kernels; threshold intersection
// gets a heap-based multi-way merge and a counting fallback. Benchmark E8
// compares them.
//
// Semantics: all kernels treat their inputs as *sets* presented in sorted
// order. AdjList's invariant is sorted-and-distinct, but the kernels must
// tolerate duplicate entries within a list (callers may hand them slices
// built outside NewAdjList): a vertex appearing twice in one list still
// counts that list once toward k, and outputs never contain duplicates.
//
// The *Into variants append into a caller-owned buffer and take a Scratch
// for intermediates, so a warmed-up caller does zero heap allocation per
// call. The allocation-friendly wrappers (Intersect, ThresholdIntersect,
// ...) remain for callers that don't care.

// Scratch holds the reusable intermediates the *Into kernels need. A
// Scratch is single-goroutine; use GetScratch/PutScratch to recycle them
// across calls without allocation.
type Scratch struct {
	heap cursorHeap
	tmpA AdjList
	tmpB AdjList
	ord  []AdjList
}

var scratchPool = sync.Pool{New: func() interface{} { return new(Scratch) }}

// GetScratch returns a Scratch from the pool, buffers warmed by prior use.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch recycles s. The caller must not use s afterwards.
func PutScratch(s *Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}

// IntersectMerge computes the exact intersection of two sorted lists with a
// linear two-pointer merge. Output is sorted and duplicate-free.
func IntersectMerge(a, b AdjList) AdjList {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	return IntersectMergeInto(make(AdjList, 0, minInt(len(a), len(b))), a, b)
}

// IntersectMergeInto appends the exact intersection of two sorted lists to
// dst and returns the extended slice. Zero allocations once dst has
// capacity.
func IntersectMergeInto(dst AdjList, a, b AdjList) AdjList {
	base := len(dst)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if len(dst) == base || dst[len(dst)-1] != a[i] {
				dst = append(dst, a[i])
			}
			i++
			j++
		}
	}
	return dst
}

// IntersectGallop computes the exact intersection of two sorted lists by
// galloping (exponential) search of the longer list for each element of the
// shorter. It wins when the lists differ greatly in length, the common case
// when one B is a celebrity account and another is not.
func IntersectGallop(a, b AdjList) AdjList {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	return IntersectGallopInto(make(AdjList, 0, minInt(len(a), len(b))), a, b)
}

// IntersectGallopInto appends the exact intersection of two sorted lists to
// dst and returns the extended slice.
func IntersectGallopInto(dst AdjList, a, b AdjList) AdjList {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	base := len(dst)
	lo := 0
	for _, v := range a {
		if len(dst) > base && dst[len(dst)-1] == v {
			continue // duplicate within a; already matched
		}
		// Gallop forward from lo to find the first b index with b[i] >= v.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < v {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		i := lo + sort.Search(hi-lo, func(i int) bool { return b[lo+i] >= v })
		if i < len(b) && b[i] == v {
			dst = append(dst, v)
			lo = i + 1
		} else {
			lo = i
		}
		if lo >= len(b) {
			break
		}
	}
	return dst
}

// Intersect picks an exact-intersection kernel based on the size ratio of
// the inputs. The 32x cutover matches the E8 ablation crossover.
func Intersect(a, b AdjList) AdjList {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	return IntersectInto(make(AdjList, 0, minInt(len(a), len(b))), a, b)
}

// IntersectInto is the appending form of Intersect: it picks a kernel by
// size ratio and appends the result to dst.
func IntersectInto(dst AdjList, a, b AdjList) AdjList {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return dst
	}
	if la > lb {
		la, lb = lb, la
	}
	if lb/la >= 32 {
		return IntersectGallopInto(dst, a, b)
	}
	return IntersectMergeInto(dst, a, b)
}

// IntersectAll computes the exact intersection of all lists (k == n).
// Lists are processed shortest-first so intermediate results shrink fast.
// The result is a fresh slice (never aliases an input).
func IntersectAll(lists []AdjList) AdjList {
	if len(lists) == 0 {
		return nil
	}
	s := GetScratch()
	out := intersectAllInto(nil, lists, s)
	PutScratch(s)
	return out
}

// intersectAllInto appends the exact intersection of all lists to dst,
// using s for intermediates. dst never aliases an input list.
func intersectAllInto(dst AdjList, lists []AdjList, s *Scratch) AdjList {
	switch len(lists) {
	case 0:
		return dst
	case 1:
		base := len(dst)
		for _, v := range lists[0] {
			if len(dst) > base && dst[len(dst)-1] == v {
				continue
			}
			dst = append(dst, v)
		}
		return dst
	}
	ord := append(s.ord[:0], lists...)
	// Insertion sort by length: n is small and sort.Slice would allocate.
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && len(ord[j]) < len(ord[j-1]); j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	s.ord = ord
	acc := IntersectInto(s.tmpA[:0], ord[0], ord[1])
	spare := s.tmpB
	for _, l := range ord[2:] {
		if len(acc) == 0 {
			break
		}
		next := IntersectInto(spare[:0], acc, l)
		spare, acc = acc, next
	}
	s.tmpA, s.tmpB = acc, spare // return grown buffers to the scratch
	return append(dst, acc...)
}

// listCursor tracks a position within one input list for the heap merge.
type listCursor struct {
	list AdjList
	pos  int
}

type cursorHeap []listCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	return h[i].list[h[i].pos] < h[j].list[h[j].pos]
}
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(listCursor)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ThresholdIntersect returns, in sorted order, every vertex that appears in
// at least k *distinct* lists. A vertex occurring multiple times within one
// list counts that list once — lists are sets, duplicates carry no weight.
// k == len(lists) degenerates to IntersectAll; k == 1 is a sorted union. It
// uses a k-way heap merge, so cost is O(total · log n) independent of k.
func ThresholdIntersect(lists []AdjList, k int) AdjList {
	if k <= 0 || len(lists) < k {
		return nil
	}
	s := GetScratch()
	out := ThresholdIntersectInto(nil, lists, k, s)
	PutScratch(s)
	return out
}

// ThresholdIntersectInto appends the k-of-n threshold intersection to dst
// and returns the extended slice. s provides the heap and intermediate
// buffers; a warmed-up (Scratch, dst) pair makes the call allocation-free.
func ThresholdIntersectInto(dst AdjList, lists []AdjList, k int, s *Scratch) AdjList {
	if k <= 0 || len(lists) < k {
		return dst
	}
	if k == len(lists) {
		return intersectAllInto(dst, lists, s)
	}
	// Work through &s.heap rather than a local slice: passing a local's
	// address into container/heap's interface would force the slice header
	// to escape, costing one allocation per call. s is already on the heap.
	h := &s.heap
	*h = (*h)[:0]
	for _, l := range lists {
		if len(l) > 0 {
			*h = append(*h, listCursor{list: l})
		}
	}
	if len(*h) < k {
		return dst
	}
	heap.Init(h)
	for len(*h) > 0 {
		cur := (*h)[0].list[(*h)[0].pos]
		count := 0
		for len(*h) > 0 && (*h)[0].list[(*h)[0].pos] == cur {
			count++
			c := (*h)[0]
			c.pos++
			// Skip duplicates of cur within this list: one list contributes
			// at most one count per vertex.
			for c.pos < len(c.list) && c.list[c.pos] == cur {
				c.pos++
			}
			if c.pos < len(c.list) {
				(*h)[0] = c
				heap.Fix(h, 0)
			} else {
				// Drop the exhausted cursor without heap.Pop: Pop returns an
				// interface{} and would box the cursor (one alloc per list).
				n := len(*h) - 1
				(*h)[0] = (*h)[n]
				*h = (*h)[:n]
				if n > 1 {
					heap.Fix(h, 0)
				}
			}
		}
		if count >= k {
			dst = append(dst, cur)
		}
	}
	return dst
}

// ThresholdIntersectCount is the counting-map fallback used as the E8
// baseline: no sortedness assumed, output sorted at the end. Like the heap
// kernel, it counts distinct lists per vertex, not occurrences.
func ThresholdIntersectCount(lists []AdjList, k int) AdjList {
	if k <= 0 || len(lists) < k {
		return nil
	}
	type tally struct {
		count    int
		lastList int // 1-based index of the last list that counted v
	}
	counts := make(map[VertexID]tally)
	for li, l := range lists {
		for _, v := range l {
			t := counts[v]
			if t.lastList == li+1 {
				continue // duplicate within this list
			}
			counts[v] = tally{count: t.count + 1, lastList: li + 1}
		}
	}
	var out AdjList
	for v, t := range counts {
		if t.count >= k {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
