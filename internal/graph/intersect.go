package graph

import (
	"container/heap"
	"sort"
)

// This file implements the intersection kernels used by the diamond
// detector. The paper intersects the sorted follower lists of the B's that
// recently pointed at C; with the production setting k=3 out of n≥3 recent
// B's, the required operation is the k-of-n threshold intersection: every A
// appearing in at least k of the lists. Exact intersection (k == n) gets
// the classic two-pointer and galloping kernels; threshold intersection
// gets a heap-based multi-way merge and a counting fallback. Benchmark E8
// compares them.

// IntersectMerge computes the exact intersection of two sorted lists with a
// linear two-pointer merge. Output is sorted.
func IntersectMerge(a, b AdjList) AdjList {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(AdjList, 0, minInt(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// IntersectGallop computes the exact intersection of two sorted lists by
// galloping (exponential) search of the longer list for each element of the
// shorter. It wins when the lists differ greatly in length, the common case
// when one B is a celebrity account and another is not.
func IntersectGallop(a, b AdjList) AdjList {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return nil
	}
	out := make(AdjList, 0, len(a))
	lo := 0
	for _, v := range a {
		// Gallop forward from lo to find the first b index with b[i] >= v.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < v {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		i := lo + sort.Search(hi-lo, func(i int) bool { return b[lo+i] >= v })
		if i < len(b) && b[i] == v {
			out = append(out, v)
			lo = i + 1
		} else {
			lo = i
		}
		if lo >= len(b) {
			break
		}
	}
	return out
}

// Intersect picks an exact-intersection kernel based on the size ratio of
// the inputs. The 32x cutover matches the E8 ablation crossover.
func Intersect(a, b AdjList) AdjList {
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return nil
	}
	if la > lb {
		la, lb = lb, la
	}
	if lb/la >= 32 {
		return IntersectGallop(a, b)
	}
	return IntersectMerge(a, b)
}

// IntersectAll computes the exact intersection of all lists (k == n).
// Lists are processed shortest-first so intermediate results shrink fast.
func IntersectAll(lists []AdjList) AdjList {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0].Clone()
	}
	ordered := make([]AdjList, len(lists))
	copy(ordered, lists)
	sort.Slice(ordered, func(i, j int) bool { return len(ordered[i]) < len(ordered[j]) })
	acc := Intersect(ordered[0], ordered[1])
	for _, l := range ordered[2:] {
		if len(acc) == 0 {
			return nil
		}
		acc = Intersect(acc, l)
	}
	return acc
}

// listCursor tracks a position within one input list for the heap merge.
type listCursor struct {
	list AdjList
	pos  int
}

type cursorHeap []listCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	return h[i].list[h[i].pos] < h[j].list[h[j].pos]
}
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(listCursor)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ThresholdIntersect returns, in sorted order, every vertex that appears in
// at least k of the sorted input lists. k == len(lists) degenerates to
// IntersectAll; k == 1 is a sorted union. It uses a k-way heap merge, so
// cost is O(total · log n) independent of k.
func ThresholdIntersect(lists []AdjList, k int) AdjList {
	if k <= 0 || len(lists) < k {
		return nil
	}
	if k == len(lists) {
		return IntersectAll(lists)
	}
	h := make(cursorHeap, 0, len(lists))
	for _, l := range lists {
		if len(l) > 0 {
			h = append(h, listCursor{list: l})
		}
	}
	if len(h) < k {
		return nil
	}
	heap.Init(&h)
	var out AdjList
	for len(h) > 0 {
		cur := h[0].list[h[0].pos]
		count := 0
		for len(h) > 0 && h[0].list[h[0].pos] == cur {
			count++
			c := h[0]
			c.pos++
			if c.pos < len(c.list) {
				h[0] = c
				heap.Fix(&h, 0)
			} else {
				heap.Pop(&h)
			}
		}
		if count >= k {
			out = append(out, cur)
		}
	}
	return out
}

// ThresholdIntersectCount is the counting-map fallback used as the E8
// baseline: no sortedness assumed, output sorted at the end.
func ThresholdIntersectCount(lists []AdjList, k int) AdjList {
	if k <= 0 || len(lists) < k {
		return nil
	}
	counts := make(map[VertexID]int)
	for _, l := range lists {
		for _, v := range l {
			counts[v]++
		}
	}
	var out AdjList
	for v, c := range counts {
		if c >= k {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
