package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// refIntersect is the trivially correct reference: map-count membership.
func refIntersect(a, b AdjList) AdjList {
	in := make(map[VertexID]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	var out AdjList
	for _, v := range b {
		if in[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// refThreshold is the reference k-of-n implementation: a vertex qualifies
// when it appears in at least k distinct lists (duplicates within one list
// count once — lists are sets).
func refThreshold(lists []AdjList, k int) AdjList {
	if k <= 0 || len(lists) < k {
		return nil
	}
	counts := make(map[VertexID]int)
	for _, l := range lists {
		seen := make(map[VertexID]bool, len(l))
		for _, v := range l {
			if seen[v] {
				continue
			}
			seen[v] = true
			counts[v]++
		}
	}
	var out AdjList
	for v, c := range counts {
		if c >= k {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalLists(a, b AdjList) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randList(r *rand.Rand, n, space int) AdjList {
	ids := make([]VertexID, n)
	for i := range ids {
		ids[i] = VertexID(r.Intn(space))
	}
	return NewAdjList(ids)
}

func TestIntersectKernelsFixedCases(t *testing.T) {
	cases := []struct {
		a, b, want AdjList
	}{
		{nil, nil, nil},
		{AdjList{1}, nil, nil},
		{nil, AdjList{1}, nil},
		{AdjList{1, 2, 3}, AdjList{2, 3, 4}, AdjList{2, 3}},
		{AdjList{1, 3, 5}, AdjList{2, 4, 6}, nil},
		{AdjList{1, 2, 3}, AdjList{1, 2, 3}, AdjList{1, 2, 3}},
		{AdjList{5}, AdjList{1, 2, 3, 4, 5, 6}, AdjList{5}},
		{AdjList{0, 1<<64 - 1}, AdjList{1<<64 - 1}, AdjList{1<<64 - 1}},
	}
	for i, c := range cases {
		for name, fn := range map[string]func(a, b AdjList) AdjList{
			"merge":  IntersectMerge,
			"gallop": IntersectGallop,
			"auto":   Intersect,
		} {
			got := fn(c.a, c.b)
			if !equalLists(got, c.want) {
				t.Errorf("case %d %s(%v, %v) = %v, want %v", i, name, c.a, c.b, got, c.want)
			}
		}
	}
}

// Property: all three exact kernels agree with the reference on random
// inputs across a range of size skews.
func TestIntersectKernelsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		na, nb := r.Intn(200), r.Intn(200)
		if trial%3 == 0 {
			nb = r.Intn(2000) // skewed case exercises galloping
		}
		a := randList(r, na, 500)
		b := randList(r, nb, 500)
		want := refIntersect(a, b)
		if got := IntersectMerge(a, b); !equalLists(got, want) {
			t.Fatalf("trial %d: merge = %v, want %v", trial, got, want)
		}
		if got := IntersectGallop(a, b); !equalLists(got, want) {
			t.Fatalf("trial %d: gallop = %v, want %v", trial, got, want)
		}
		if got := Intersect(a, b); !equalLists(got, want) {
			t.Fatalf("trial %d: auto = %v, want %v", trial, got, want)
		}
	}
}

func TestIntersectAll(t *testing.T) {
	lists := []AdjList{
		{1, 2, 3, 4, 5},
		{2, 3, 4, 5, 6},
		{3, 4, 5, 6, 7},
	}
	want := AdjList{3, 4, 5}
	if got := IntersectAll(lists); !equalLists(got, want) {
		t.Fatalf("IntersectAll = %v, want %v", got, want)
	}
	if got := IntersectAll(nil); got != nil {
		t.Fatalf("IntersectAll(nil) = %v", got)
	}
	single := []AdjList{{1, 2}}
	got := IntersectAll(single)
	if !equalLists(got, AdjList{1, 2}) {
		t.Fatalf("IntersectAll(single) = %v", got)
	}
	// Must be a copy, not an alias.
	got[0] = 99
	if single[0][0] != 1 {
		t.Error("IntersectAll(single) aliases its input")
	}
	// Empty member kills the whole intersection.
	if got := IntersectAll([]AdjList{{1, 2}, nil, {1, 2}}); len(got) != 0 {
		t.Fatalf("IntersectAll with empty member = %v, want empty", got)
	}
}

func TestThresholdIntersectFixedCases(t *testing.T) {
	lists := []AdjList{
		{1, 2, 3},
		{2, 3, 4},
		{3, 4, 5},
	}
	tests := []struct {
		k    int
		want AdjList
	}{
		{1, AdjList{1, 2, 3, 4, 5}}, // union
		{2, AdjList{2, 3, 4}},
		{3, AdjList{3}}, // full intersection
		{4, nil},        // k > n
		{0, nil},
		{-1, nil},
	}
	for _, tt := range tests {
		if got := ThresholdIntersect(lists, tt.k); !equalLists(got, tt.want) {
			t.Errorf("ThresholdIntersect(k=%d) = %v, want %v", tt.k, got, tt.want)
		}
		if got := ThresholdIntersectCount(lists, tt.k); !equalLists(got, tt.want) {
			t.Errorf("ThresholdIntersectCount(k=%d) = %v, want %v", tt.k, got, tt.want)
		}
	}
}

func TestThresholdIntersectEmptyLists(t *testing.T) {
	// Empty input lists are skipped; threshold applies to remaining.
	lists := []AdjList{nil, {1, 2}, nil, {2, 3}}
	if got := ThresholdIntersect(lists, 2); !equalLists(got, AdjList{2}) {
		t.Fatalf("got %v, want [2]", got)
	}
	// All empty with k <= n returns nothing.
	if got := ThresholdIntersect([]AdjList{nil, nil, nil}, 2); got != nil {
		t.Fatalf("all-empty got %v", got)
	}
}

// Property: the heap-based threshold intersection agrees with the counting
// reference for random inputs and all k.
func TestThresholdIntersectAgreesWithReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(8)
		lists := make([]AdjList, n)
		for i := range lists {
			lists[i] = randList(r, r.Intn(60), 40)
		}
		for k := 1; k <= n; k++ {
			want := refThreshold(lists, k)
			got := ThresholdIntersect(lists, k)
			if !equalLists(got, want) {
				t.Fatalf("trial %d k=%d/%d: got %v, want %v (lists=%v)",
					trial, k, n, got, want, lists)
			}
		}
	}
}

// Property (quick): intersection is commutative and a subset of both
// inputs.
func TestIntersectQuickProperties(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := make([]VertexID, len(xs))
		for i, v := range xs {
			a[i] = VertexID(v)
		}
		b := make([]VertexID, len(ys))
		for i, v := range ys {
			b[i] = VertexID(v)
		}
		la, lb := NewAdjList(a), NewAdjList(b)
		ab := Intersect(la, lb)
		ba := Intersect(lb, la)
		if !equalLists(ab, ba) {
			return false
		}
		for _, v := range ab {
			if !la.Contains(v) || !lb.Contains(v) {
				return false
			}
		}
		return ab.IsSorted() || len(ab) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: threshold results are monotone in k — raising k can only
// shrink the result set.
func TestThresholdMonotoneInK(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(6)
		lists := make([]AdjList, n)
		for i := range lists {
			lists[i] = randList(r, 30, 50)
		}
		prev := ThresholdIntersect(lists, 1)
		for k := 2; k <= n; k++ {
			cur := ThresholdIntersect(lists, k)
			curSet := make(map[VertexID]bool, len(cur))
			for _, v := range cur {
				curSet[v] = true
			}
			for _, v := range cur {
				if !contains(prev, v) {
					t.Fatalf("trial %d: k=%d result %d not in k=%d result", trial, k, v, k-1)
				}
			}
			_ = curSet
			prev = cur
		}
	}
}

func contains(l AdjList, v VertexID) bool { return l.Contains(v) }

// Regression: duplicate entries within one list must not count toward k.
// The old heap merge counted occurrences, so [[5,5],[7]] with k=2 reported
// 5 even though it appears in only one list.
func TestThresholdIntersectDuplicatesWithinList(t *testing.T) {
	cases := []struct {
		lists []AdjList
		k     int
		want  AdjList
	}{
		{[]AdjList{{5, 5}, {7}}, 2, nil},
		{[]AdjList{{5, 5}, {5, 7}}, 2, AdjList{5}},
		{[]AdjList{{5, 5, 5}}, 1, AdjList{5}},
		{[]AdjList{{1, 1, 2}, {1, 2, 2}}, 2, AdjList{1, 2}},
		{[]AdjList{{1, 1, 2}, {1, 2, 2}}, 1, AdjList{1, 2}},
		{[]AdjList{{3, 3}, {3, 3}, {4}}, 2, AdjList{3}},
		{[]AdjList{{3, 3}, {3, 3}, {4}}, 3, nil},
		// k == n path (delegates to the exact-intersection kernels).
		{[]AdjList{{5, 5, 7}, {5, 7, 7}}, 2, AdjList{5, 7}},
		{[]AdjList{{5, 5}}, 1, AdjList{5}},
	}
	for i, c := range cases {
		if got := ThresholdIntersect(c.lists, c.k); !equalLists(got, c.want) {
			t.Errorf("case %d: ThresholdIntersect(%v, k=%d) = %v, want %v", i, c.lists, c.k, got, c.want)
		}
		if got := ThresholdIntersectCount(c.lists, c.k); !equalLists(got, c.want) {
			t.Errorf("case %d: ThresholdIntersectCount(%v, k=%d) = %v, want %v", i, c.lists, c.k, got, c.want)
		}
		s := GetScratch()
		if got := ThresholdIntersectInto(nil, c.lists, c.k, s); !equalLists(got, c.want) {
			t.Errorf("case %d: ThresholdIntersectInto(%v, k=%d) = %v, want %v", i, c.lists, c.k, got, c.want)
		}
		PutScratch(s)
	}
}

// The exact kernels are set operations: duplicate-bearing inputs yield
// duplicate-free output.
func TestIntersectKernelsTolerateDuplicates(t *testing.T) {
	a := AdjList{2, 5, 5, 7, 7, 7}
	b := AdjList{2, 2, 5, 7, 9}
	want := AdjList{2, 5, 7}
	for name, fn := range map[string]func(a, b AdjList) AdjList{
		"merge":  IntersectMerge,
		"gallop": IntersectGallop,
		"auto":   Intersect,
	} {
		if got := fn(a, b); !equalLists(got, want) {
			t.Errorf("%s(%v, %v) = %v, want %v", name, a, b, got, want)
		}
	}
	if got := IntersectAll([]AdjList{a, b}); !equalLists(got, want) {
		t.Errorf("IntersectAll = %v, want %v", got, want)
	}
	if got := IntersectAll([]AdjList{{5, 5, 7}}); !equalLists(got, AdjList{5, 7}) {
		t.Errorf("IntersectAll(single dup list) = %v, want [5 7]", got)
	}
}

// The Into variants append after existing dst content and leave the prefix
// untouched, even when the prefix ends with a value the kernel is about to
// emit.
func TestIntersectIntoPreservesPrefix(t *testing.T) {
	a := AdjList{2, 3, 4}
	b := AdjList{2, 3, 9}
	prefix := AdjList{7, 2} // ends with 2 on purpose: base guard, not value guard
	for name, fn := range map[string]func(dst AdjList, a, b AdjList) AdjList{
		"merge":  IntersectMergeInto,
		"gallop": IntersectGallopInto,
		"auto":   IntersectInto,
	} {
		dst := append(AdjList(nil), prefix...)
		got := fn(dst, a, b)
		want := AdjList{7, 2, 2, 3}
		if !equalLists(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	s := GetScratch()
	defer PutScratch(s)
	dst := append(AdjList(nil), prefix...)
	got := ThresholdIntersectInto(dst, []AdjList{a, b, {2, 8}}, 2, s)
	want := AdjList{7, 2, 2, 3}
	if !equalLists(got, want) {
		t.Errorf("ThresholdIntersectInto = %v, want %v", got, want)
	}
}

// Property: the Into variants agree with their allocating counterparts.
func TestThresholdIntersectIntoAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	s := GetScratch()
	defer PutScratch(s)
	var dst AdjList
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(8)
		lists := make([]AdjList, n)
		for i := range lists {
			lists[i] = randList(r, r.Intn(60), 40)
		}
		for k := 1; k <= n; k++ {
			want := ThresholdIntersect(lists, k)
			dst = ThresholdIntersectInto(dst[:0], lists, k, s)
			if !equalLists(dst, want) {
				t.Fatalf("trial %d k=%d: Into = %v, want %v", trial, k, dst, want)
			}
		}
	}
}

// The whole point of the Into variants: zero heap allocations per call once
// the scratch and destination buffers are warm. This is the kernel-level
// half of the per-event alloc budget; engine/cluster tests gate the rest.
func TestThresholdIntersectIntoZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	lists := make([]AdjList, 6)
	for i := range lists {
		lists[i] = randList(r, 200, 300)
	}
	s := GetScratch()
	defer PutScratch(s)
	dst := make(AdjList, 0, 512)
	dst = ThresholdIntersectInto(dst[:0], lists, 3, s) // warm buffers
	if allocs := testing.AllocsPerRun(100, func() {
		dst = ThresholdIntersectInto(dst[:0], lists, 3, s)
	}); allocs != 0 {
		t.Fatalf("heap path: %v allocs/op, want 0", allocs)
	}
	dst = ThresholdIntersectInto(dst[:0], lists, len(lists), s)
	if allocs := testing.AllocsPerRun(100, func() {
		dst = ThresholdIntersectInto(dst[:0], lists, len(lists), s)
	}); allocs != 0 {
		t.Fatalf("k==n path: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		dst = IntersectInto(dst[:0], lists[0], lists[1])
	}); allocs != 0 {
		t.Fatalf("IntersectInto: %v allocs/op, want 0", allocs)
	}
}

func TestIntersectDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randList(r, 1000, 10_000)
	b := randList(r, 1000, 10_000)
	first := Intersect(a, b)
	for i := 0; i < 5; i++ {
		if got := Intersect(a, b); !reflect.DeepEqual(got, first) {
			t.Fatal("Intersect is not deterministic")
		}
	}
}
