package graph

import "sort"

// DegreeStats summarizes a degree distribution; the workload generator uses
// it to verify the synthetic graph reproduces the heavy-tailed in-degree
// shape of the Twitter follow graph (Myers et al., WWW 2014, paper ref [7]).
type DegreeStats struct {
	N    int // vertices with degree > 0
	Min  int
	Max  int
	Mean float64
	P50  int
	P90  int
	P99  int
	Gini float64 // inequality of the distribution; heavy tails push this toward 1
}

// ComputeDegreeStats summarizes the given per-vertex degrees, ignoring
// zero-degree vertices.
func ComputeDegreeStats(degrees []int) DegreeStats {
	nz := make([]int, 0, len(degrees))
	for _, d := range degrees {
		if d > 0 {
			nz = append(nz, d)
		}
	}
	if len(nz) == 0 {
		return DegreeStats{}
	}
	sort.Ints(nz)
	var sum float64
	for _, d := range nz {
		sum += float64(d)
	}
	s := DegreeStats{
		N:    len(nz),
		Min:  nz[0],
		Max:  nz[len(nz)-1],
		Mean: sum / float64(len(nz)),
		P50:  quantileInt(nz, 0.50),
		P90:  quantileInt(nz, 0.90),
		P99:  quantileInt(nz, 0.99),
	}
	// Gini over the sorted values: (2*sum_i i*x_i)/(n*sum x) - (n+1)/n.
	var weighted float64
	for i, d := range nz {
		weighted += float64(i+1) * float64(d)
	}
	n := float64(len(nz))
	s.Gini = 2*weighted/(n*sum) - (n+1)/n
	return s
}

// InDegrees computes the in-degree of every vertex in the edge set, indexed
// by vertex ID.
func InDegrees(edges []Edge) []int {
	var maxV VertexID
	for _, e := range edges {
		if e.Dst > maxV {
			maxV = e.Dst
		}
		if e.Src > maxV {
			maxV = e.Src
		}
	}
	if len(edges) == 0 {
		return nil
	}
	deg := make([]int, uint64(maxV)+1)
	for _, e := range edges {
		deg[e.Dst]++
	}
	return deg
}

// OutDegrees computes the out-degree of every vertex in the edge set.
func OutDegrees(edges []Edge) []int {
	var maxV VertexID
	for _, e := range edges {
		if e.Dst > maxV {
			maxV = e.Dst
		}
		if e.Src > maxV {
			maxV = e.Src
		}
	}
	if len(edges) == 0 {
		return nil
	}
	deg := make([]int, uint64(maxV)+1)
	for _, e := range edges {
		deg[e.Src]++
	}
	return deg
}

func quantileInt(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
