package graph

import (
	"sort"
	"sync/atomic"
)

// DegreeStats summarizes a degree distribution; the workload generator uses
// it to verify the synthetic graph reproduces the heavy-tailed in-degree
// shape of the Twitter follow graph (Myers et al., WWW 2014, paper ref [7]).
type DegreeStats struct {
	N    int // vertices with degree > 0
	Min  int
	Max  int
	Mean float64
	P50  int
	P90  int
	P99  int
	Gini float64 // inequality of the distribution; heavy tails push this toward 1
}

// ComputeDegreeStats summarizes the given per-vertex degrees, ignoring
// zero-degree vertices.
func ComputeDegreeStats(degrees []int) DegreeStats {
	nz := make([]int, 0, len(degrees))
	for _, d := range degrees {
		if d > 0 {
			nz = append(nz, d)
		}
	}
	if len(nz) == 0 {
		return DegreeStats{}
	}
	sort.Ints(nz)
	var sum float64
	for _, d := range nz {
		sum += float64(d)
	}
	s := DegreeStats{
		N:    len(nz),
		Min:  nz[0],
		Max:  nz[len(nz)-1],
		Mean: sum / float64(len(nz)),
		P50:  quantileInt(nz, 0.50),
		P90:  quantileInt(nz, 0.90),
		P99:  quantileInt(nz, 0.99),
	}
	// Gini over the sorted values: (2*sum_i i*x_i)/(n*sum x) - (n+1)/n.
	var weighted float64
	for i, d := range nz {
		weighted += float64(i+1) * float64(d)
	}
	n := float64(len(nz))
	s.Gini = 2*weighted/(n*sum) - (n+1)/n
	return s
}

// InDegrees computes the in-degree of every vertex in the edge set, indexed
// by vertex ID.
func InDegrees(edges []Edge) []int {
	var maxV VertexID
	for _, e := range edges {
		if e.Dst > maxV {
			maxV = e.Dst
		}
		if e.Src > maxV {
			maxV = e.Src
		}
	}
	if len(edges) == 0 {
		return nil
	}
	deg := make([]int, uint64(maxV)+1)
	for _, e := range edges {
		deg[e.Dst]++
	}
	return deg
}

// OutDegrees computes the out-degree of every vertex in the edge set.
func OutDegrees(edges []Edge) []int {
	var maxV VertexID
	for _, e := range edges {
		if e.Dst > maxV {
			maxV = e.Dst
		}
		if e.Src > maxV {
			maxV = e.Src
		}
	}
	if len(edges) == 0 {
		return nil
	}
	deg := make([]int, uint64(maxV)+1)
	for _, e := range edges {
		deg[e.Src]++
	}
	return deg
}

func quantileInt(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// liveBuckets is the number of log2 buckets in a LiveDegrees histogram.
// Bucket 0 holds degree 0; bucket i (i >= 1) holds degrees in
// [2^(i-1), 2^i). 33 buckets cover every degree a uint32-sized graph can
// produce.
const liveBuckets = 33

// LiveDegrees is an incrementally maintained degree-distribution view: a
// lock-free log2-bucket histogram. The detection hot path calls Observe
// with degrees it sees anyway (in-window actor counts, follower-list
// lengths) — one atomic add each — and the motif planner reads Quantile to
// order probes without a statistics catalog. Quantiles are approximate
// (bucket-midpoint resolution, i.e. within 2x), which is all greedy
// ordering needs.
//
// The zero value is ready to use. All methods are safe for concurrent use.
type LiveDegrees struct {
	buckets [liveBuckets]atomic.Uint64
	n       atomic.Uint64
	sum     atomic.Uint64
}

// liveBucketOf maps a degree to its histogram bucket.
func liveBucketOf(d int) int {
	if d <= 0 {
		return 0
	}
	b := 1
	for v := uint64(d); v > 1; v >>= 1 {
		b++
	}
	if b >= liveBuckets {
		b = liveBuckets - 1
	}
	return b
}

// liveBucketMid returns the representative degree of a bucket: the midpoint
// of [2^(i-1), 2^i) for i >= 1, and 0 for the zero bucket.
func liveBucketMid(i int) int {
	if i <= 0 {
		return 0
	}
	lo := 1 << (i - 1)
	hi := 1<<i - 1
	return (lo + hi) / 2
}

// Observe records one degree sample.
func (l *LiveDegrees) Observe(d int) {
	if d < 0 {
		d = 0
	}
	l.buckets[liveBucketOf(d)].Add(1)
	l.n.Add(1)
	l.sum.Add(uint64(d))
}

// N returns the number of samples observed so far.
func (l *LiveDegrees) N() uint64 { return l.n.Load() }

// Quantile returns the approximate q-quantile (0 <= q <= 1) of the observed
// degrees: the midpoint of the bucket containing that rank. Returns 0 when
// nothing has been observed.
func (l *LiveDegrees) Quantile(q float64) int {
	n := l.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n-1))
	var cum uint64
	for i := 0; i < liveBuckets; i++ {
		cum += l.buckets[i].Load()
		if cum > rank {
			return liveBucketMid(i)
		}
	}
	return liveBucketMid(liveBuckets - 1)
}

// Snapshot summarizes the histogram as a DegreeStats. Min/Max and the
// quantiles are bucket-resolution approximations; Gini is not computable
// from the histogram and is left 0. Unlike ComputeDegreeStats, zero-degree
// samples count toward N and the mean (the view reflects what the hot path
// actually saw).
func (l *LiveDegrees) Snapshot() DegreeStats {
	n := l.n.Load()
	if n == 0 {
		return DegreeStats{}
	}
	s := DegreeStats{
		N:    int(n),
		Mean: float64(l.sum.Load()) / float64(n),
		P50:  l.Quantile(0.50),
		P90:  l.Quantile(0.90),
		P99:  l.Quantile(0.99),
	}
	lo, hi := -1, 0
	for i := 0; i < liveBuckets; i++ {
		if l.buckets[i].Load() > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo >= 0 {
		s.Min = liveBucketMid(lo)
		s.Max = liveBucketMid(hi)
	}
	return s
}

// LiveDegreeStats bundles the two degree views the statistics-free motif
// planner consults: the distribution of distinct in-window actors per
// probed target (how wide a dynamic-window probe fans out) and the
// distribution of follower-list lengths per S lookup (how wide a static-hop
// probe fans out). The engine feeds both incrementally from lookups the
// detection path performs anyway; there is no offline statistics catalog.
type LiveDegreeStats struct {
	// DynIn samples len(recent) per dynamic-window probe.
	DynIn LiveDegrees
	// Static samples follower-list lengths per static-hop probe. To keep
	// the hot-path cost at one atomic add per event, callers sample the
	// first list of each probe rather than every list.
	Static LiveDegrees
}
