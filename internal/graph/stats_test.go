package graph

import (
	"sync"
	"testing"
)

func TestComputeDegreeStats(t *testing.T) {
	s := ComputeDegreeStats([]int{0, 1, 2, 3, 4, 5, 0})
	if s.N != 5 {
		t.Fatalf("N = %d, want 5 (zero degrees ignored)", s.N)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Fatalf("Min/Max = %d/%d, want 1/5", s.Min, s.Max)
	}
	if s.Mean != 3 {
		t.Fatalf("Mean = %v, want 3", s.Mean)
	}
	if s.P50 != 3 {
		t.Fatalf("P50 = %d, want 3", s.P50)
	}
}

func TestLiveDegreesQuantiles(t *testing.T) {
	var l LiveDegrees
	if got := l.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	// 90 small degrees and 10 large ones: p50 should land in the small
	// bucket, p99 in the large one. Buckets are log2 so we assert within-2x.
	for i := 0; i < 90; i++ {
		l.Observe(4)
	}
	for i := 0; i < 10; i++ {
		l.Observe(1000)
	}
	if got := l.Quantile(0.5); got < 4 || got > 7 {
		t.Fatalf("p50 = %d, want within the [4,8) bucket", got)
	}
	if got := l.Quantile(0.99); got < 512 || got > 1023 {
		t.Fatalf("p99 = %d, want within the [512,1024) bucket", got)
	}
	if n := l.N(); n != 100 {
		t.Fatalf("N = %d, want 100", n)
	}
	s := l.Snapshot()
	if s.N != 100 {
		t.Fatalf("snapshot N = %d, want 100", s.N)
	}
	wantMean := (90*4 + 10*1000) / 100.0
	if s.Mean != wantMean {
		t.Fatalf("snapshot mean = %v, want %v", s.Mean, wantMean)
	}
	if s.Min > 7 || s.Max < 512 {
		t.Fatalf("snapshot min/max = %d/%d, want ~4 and ~768", s.Min, s.Max)
	}
}

func TestLiveDegreesZeroAndNegative(t *testing.T) {
	var l LiveDegrees
	l.Observe(0)
	l.Observe(-5)
	l.Observe(1)
	if got := l.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d, want 0", got)
	}
	if got := l.Quantile(1); got != 1 {
		t.Fatalf("q1 = %d, want 1", got)
	}
}

func TestLiveDegreesConcurrent(t *testing.T) {
	var l LiveDegrees
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Observe(w*10 + i%7)
				_ = l.Quantile(0.9)
			}
		}(w)
	}
	wg.Wait()
	if n := l.N(); n != 8000 {
		t.Fatalf("N = %d, want 8000", n)
	}
}

func TestLiveBucketOf(t *testing.T) {
	cases := []struct{ d, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 40, liveBuckets - 1},
	}
	for _, c := range cases {
		if got := liveBucketOf(c.d); got != c.want {
			t.Errorf("liveBucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}
