// Package graph provides the core graph primitives used throughout
// motifstream: vertex and edge types, sorted adjacency lists, a compact
// static CSR representation, and the sorted-set intersection algorithms
// that the paper's detection step is built on.
package graph

import (
	"fmt"
	"time"
)

// VertexID identifies a user account. The paper's A/B/C roles are all
// VertexIDs; the role is positional, not a property of the vertex.
type VertexID uint64

// EdgeType distinguishes the user actions that create edges. The paper's
// running example uses follows; the same machinery serves retweets and
// favorites for content recommendation.
type EdgeType uint8

const (
	// Follow is a B→C "B followed C" edge.
	Follow EdgeType = iota
	// Retweet is a B→C "B retweeted tweet C" edge; C is a tweet vertex.
	Retweet
	// Favorite is a B→C "B favorited tweet C" edge; C is a tweet vertex.
	Favorite
)

// String returns the lowercase action name.
func (t EdgeType) String() string {
	switch t {
	case Follow:
		return "follow"
	case Retweet:
		return "retweet"
	case Favorite:
		return "favorite"
	default:
		return fmt.Sprintf("edgetype(%d)", uint8(t))
	}
}

// Edge is a directed, timestamped action edge. In the paper's notation the
// dynamic stream consists of B→C edges: Src is the B, Dst is the C.
type Edge struct {
	Src  VertexID
	Dst  VertexID
	Type EdgeType
	// TS is the creation time in Unix milliseconds. Milliseconds keep the
	// struct compact while comfortably exceeding the paper's seconds-level
	// freshness window resolution.
	TS int64
}

// Time converts the edge timestamp to a time.Time.
func (e Edge) Time() time.Time { return time.UnixMilli(e.TS) }

// String renders the edge for logs and tests.
func (e Edge) String() string {
	return fmt.Sprintf("%d-%s->%d@%d", e.Src, e.Type, e.Dst, e.TS)
}

// Millis converts a time.Time to the Unix-millisecond representation used
// by Edge.TS.
func Millis(t time.Time) int64 { return t.UnixMilli() }
