// Package metrics provides the lightweight instrumentation used across the
// system: counters, gauges, and log-bucketed latency histograms with
// quantile snapshots. Experiment E2 reports the paper's median/p99
// end-to-end latency from these histograms.
package metrics

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// histBuckets is the number of log-spaced buckets. With base 1.15 and a
// 1µs floor this spans 1µs..~2.6h, plenty for both graph-query latencies
// (few ms) and end-to-end queue latencies (seconds).
const (
	histBuckets = 160
	histBase    = 1.15
	histFloorNS = 1e3 // 1µs
)

// Histogram records durations into logarithmic buckets. It is safe for
// concurrent use and never allocates on the record path.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	total  uint64
	sumNS  float64
	minNS  int64
	maxNS  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{minNS: math.MaxInt64}
}

func bucketFor(ns int64) int {
	if ns < int64(histFloorNS) {
		return 0
	}
	b := int(math.Log(float64(ns)/histFloorNS) / math.Log(histBase))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpperNS returns the upper bound (ns) of bucket b; quantiles report
// this bound, so they over- rather than under-estimate.
func bucketUpperNS(b int) float64 {
	return histFloorNS * math.Pow(histBase, float64(b+1))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := bucketFor(ns)
	h.mu.Lock()
	h.counts[b]++
	h.total++
	h.sumNS += float64(ns)
	if ns < h.minNS {
		h.minNS = ns
	}
	if ns > h.maxNS {
		h.maxNS = ns
	}
	h.mu.Unlock()
}

// Snapshot is a consistent point-in-time view of a histogram.
type Snapshot struct {
	Count uint64
	Min   time.Duration
	Max   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
}

// Snapshot computes quantiles from the current buckets.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	counts := h.counts
	total := h.total
	sum := h.sumNS
	minNS, maxNS := h.minNS, h.maxNS
	h.mu.Unlock()

	var s Snapshot
	s.Count = total
	if total == 0 {
		return s
	}
	s.Min = time.Duration(minNS)
	s.Max = time.Duration(maxNS)
	s.Mean = time.Duration(sum / float64(total))
	q := func(p float64) time.Duration {
		target := uint64(p * float64(total))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for b := 0; b < histBuckets; b++ {
			cum += counts[b]
			if cum >= target {
				up := time.Duration(bucketUpperNS(b))
				if up > s.Max && s.Max > 0 {
					return s.Max
				}
				return up
			}
		}
		return s.Max
	}
	s.P50 = q(0.50)
	s.P90 = q(0.90)
	s.P99 = q(0.99)
	s.P999 = q(0.999)
	return s
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p90=%v p99=%v max=%v mean=%v",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean)
}
