package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHistogramObserveDuringSnapshot races writers against concurrent
// Snapshot calls — the pattern the cluster hot path actually runs, where
// Stats() snapshots histograms while ingest threads keep observing.
// Under -race this proves the locking covers both directions; the
// consistency asserts prove each snapshot is an atomic view (a torn copy
// would show Count disagreeing with the bucket sum it was taken with).
func TestHistogramObserveDuringSnapshot(t *testing.T) {
	h := NewHistogram()
	const writers, perWriter = 4, 5_000
	var done atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				h.Observe(time.Duration(1+(i*perWriter+j)%1000) * time.Millisecond)
			}
		}(i)
	}
	go func() { wg.Wait(); done.Store(true) }()
	var prev uint64
	for snaps := 0; !done.Load(); snaps++ {
		s := h.Snapshot()
		if s.Count < prev {
			t.Fatalf("Count went backwards: %d after %d", s.Count, prev)
		}
		prev = s.Count
		if s.Count > 0 {
			if s.Min > s.Max {
				t.Fatalf("torn snapshot: min %v > max %v", s.Min, s.Max)
			}
			if s.P50 > s.P99 || s.P99 > s.Max {
				t.Fatalf("torn snapshot: p50 %v p99 %v max %v", s.P50, s.P99, s.Max)
			}
		}
		if snaps%64 == 63 {
			time.Sleep(time.Millisecond)
		}
	}
	if s := h.Snapshot(); s.Count != writers*perWriter {
		t.Fatalf("final Count = %d, want %d", s.Count, writers*perWriter)
	}
}

// TestHistogramQuantileOneBucketBound pins the documented accuracy
// contract, not just a loose percentage: quantiles report bucket upper
// bounds, so for any workload the reported quantile must be >= the exact
// order statistic and <= one bucket factor (histBase) above it, clamped
// to the true max. The loose uniform-workload check elsewhere would not
// catch a regression that, say, reported lower bounds (silent
// under-estimation) — this one does.
func TestHistogramQuantileOneBucketBound(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram()
		n := 500 + r.Intn(2_000)
		vals := make([]float64, n)
		for i := range vals {
			// Log-uniform over 10µs..10s: exercises ~90 of the 160 buckets.
			ns := 1e4 * math.Pow(1e6, r.Float64())
			vals[i] = ns
			h.Observe(time.Duration(ns))
		}
		sort.Float64s(vals)
		s := h.Snapshot()
		for _, q := range []struct {
			p   float64
			got time.Duration
		}{{0.50, s.P50}, {0.90, s.P90}, {0.99, s.P99}} {
			// Snapshot targets the ceil(p*n)-th observation (1-based).
			target := int(q.p * float64(n))
			if target == 0 {
				target = 1
			}
			exact := vals[target-1]
			got := float64(q.got)
			if got < exact && q.got != s.Max {
				t.Fatalf("trial %d p%v: reported %v below exact order statistic %v ns",
					trial, q.p, q.got, time.Duration(exact))
			}
			// Upper bound: one log bucket above the exact value (plus the
			// duration truncation to whole nanoseconds).
			if got > exact*histBase+1 {
				t.Fatalf("trial %d p%v: reported %v, more than one bucket above exact %v ns",
					trial, q.p, q.got, time.Duration(exact))
			}
		}
	}
}
