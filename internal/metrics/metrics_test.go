package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value should be 0")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1_000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8_000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("Value = %d, want 7", g.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Min != 5*time.Millisecond || s.Max != 5*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Quantiles report bucket upper bounds, clamped to max.
	if s.P50 > s.Max || s.P99 > s.Max {
		t.Fatalf("quantiles exceed max: %+v", s)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// 1000 observations uniform over 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	// Log bucketing with base 1.15 gives ~15% resolution; accept 20%.
	within := func(got time.Duration, want float64) bool {
		g := got.Seconds()
		return g > want*0.80 && g < want*1.25
	}
	if !within(s.P50, 0.5) {
		t.Errorf("P50 = %v, want ~500ms", s.P50)
	}
	if !within(s.P90, 0.9) {
		t.Errorf("P90 = %v, want ~900ms", s.P90)
	}
	if !within(s.P99, 0.99) {
		t.Errorf("P99 = %v, want ~990ms", s.P99)
	}
	if s.Mean < 400*time.Millisecond || s.Mean > 600*time.Millisecond {
		t.Errorf("Mean = %v, want ~500ms", s.Mean)
	}
}

func TestHistogramNegativeDurationClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 0 {
		t.Fatalf("negative observation: %+v", s)
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Nanosecond) // below floor
	h.Observe(24 * time.Hour)  // beyond top bucket
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatal("observations lost")
	}
	if s.Max != 24*time.Hour {
		t.Fatalf("max = %v", s.Max)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1_000; j++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 4_000 {
		t.Fatalf("Count = %d, want 4000", s.Count)
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	if s := h.Snapshot().String(); !strings.Contains(s, "n=1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("Counter(x) returned a different instance")
	}
	if r.Counter("y").Value() != 0 {
		t.Fatal("different names must be different counters")
	}
	h1 := r.Histogram("h")
	h1.Observe(time.Second)
	if r.Histogram("h").Snapshot().Count != 1 {
		t.Fatal("Histogram(h) returned a different instance")
	}
	g := r.Gauge("g")
	g.Set(3)
	if r.Gauge("g").Value() != 3 {
		t.Fatal("Gauge(g) returned a different instance")
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(2)
	r.Gauge("b.gauge").Set(-1)
	r.Histogram("c.hist").Observe(time.Millisecond)
	dump := r.Dump()
	for _, want := range []string{"counter a.count = 2", "gauge b.gauge = -1", "hist c.hist"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
	// Sorted output: counter line precedes gauge line.
	if strings.Index(dump, "counter") > strings.Index(dump, "gauge") {
		t.Error("Dump not sorted")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Counter("shared").Value() != 800 {
		t.Fatal("lost increments under concurrency")
	}
}

func TestBucketMonotonicity(t *testing.T) {
	// Bucket index must be non-decreasing in duration.
	prev := 0
	for ns := int64(1); ns < int64(time.Hour); ns *= 3 {
		b := bucketFor(ns)
		if b < prev {
			t.Fatalf("bucketFor(%d) = %d < previous %d", ns, b, prev)
		}
		prev = b
	}
	if bucketFor(int64(100*time.Hour)) != histBuckets-1 {
		t.Fatal("huge durations must clamp to the last bucket")
	}
}
