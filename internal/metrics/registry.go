package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics. Components create their
// instruments through a shared registry so cmd/benchreport and
// cmd/magicrecs can dump a full view.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Dump renders every metric, sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("hist %s: %s", name, h.Snapshot()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
