// Package motif implements online motif detection over the S and D stores.
// A motif program is invoked once per incoming dynamic edge and emits
// recommendation candidates the moment the motif completes — the paper's
// novel "twist" over batch motif detection. The diamond program implements
// the production algorithm of §2; the package also provides the content
// co-action variant and a k=1 fresh-follow program, and the motifdsl
// package compiles declarative specifications down to this interface.
package motif

import (
	"sync"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/statstore"
)

// Candidate is one raw recommendation produced by a program: "push item
// Item to user User because the supporting B's acted on it". Candidates
// flow into the delivery pipeline, which dedups and rate-limits them.
type Candidate struct {
	// User is the A receiving the recommendation.
	User graph.VertexID
	// Item is the C being recommended (an account for follow motifs, a
	// tweet for content motifs).
	Item graph.VertexID
	// Via lists the supporting B's: followings of User that acted on Item
	// within the window.
	Via []graph.VertexID
	// Trigger is the edge whose arrival completed the motif.
	Trigger graph.Edge
	// DetectedAtMS is when detection ran (stream time, Unix ms).
	DetectedAtMS int64
	// Program names the emitting program.
	Program string
	// Score ranks the candidate; more supporting B's score higher.
	Score float64
}

// Context carries the partition-local stores a program reads. The engine
// that owns the context inserts each edge into D exactly once before
// invoking programs, so programs must never write to D themselves.
type Context struct {
	// S is the static inverted adjacency (B → sorted A's), already
	// restricted to the partition's A's.
	S *statstore.Store
	// D is the dynamic store of recent B→C edges (full stream).
	D *dynstore.Store
	// Follows reports whether a already follows c, used to suppress
	// redundant follow recommendations. Nil disables the check.
	Follows func(a, c graph.VertexID) bool
	// Stats, when non-nil, receives degree observations from planned
	// programs (in-window actor counts per dynamic probe, follower-list
	// lengths per static probe). The statistics-free planner reads these
	// live quantiles to order probes; there is no offline catalog.
	Stats *graph.LiveDegreeStats
}

// Program detects one motif shape. OnEdge is called after e has been
// inserted into ctx.D and returns the candidates completed by e.
// Implementations must be safe for concurrent OnEdge calls.
//
// Locality contract: a program's D reads must be confined to the in-edge
// list of e.Dst (the triggering edge's target). Every built-in program and
// every DSL-compiled plan honors this, and the cluster's batched apply
// path depends on it: events with distinct targets are detected
// concurrently, which is only equivalent to sequential apply when no
// program peeks at another target's dynamic state. S reads are
// unrestricted (S is immutable between reloads).
type Program interface {
	// Name identifies the program in candidates and metrics.
	Name() string
	// OnEdge reports the candidates whose motif e completes.
	OnEdge(ctx *Context, e graph.Edge) []Candidate
}

// Scratch holds the reusable per-invocation buffers of the detection hot
// path. A Scratch is single-goroutine; recycle via GetScratch/PutScratch
// (or hold one per worker) so a warmed-up caller pays zero heap
// allocation per event that emits no candidates. Emitted candidates and
// their Via lists are always freshly allocated — they outlive the call.
type Scratch struct {
	recent []dynstore.InEdge
	bs     []graph.VertexID
	lists  []graph.AdjList
	as     graph.AdjList
	g      graph.Scratch

	// Expansion buffers for planned chain programs: sources and follower
	// lists of the current expansion round, plus ping-pong frontiers so an
	// expansion never clobbers the shared threshold result in as.
	bs2    []graph.VertexID
	lists2 []graph.AdjList
	ex1    graph.AdjList
	ex2    graph.AdjList

	// res holds per-program candidate slots for the engine's shared
	// executor; entries are nilled after each event so pooled scratches
	// never retain candidates.
	res [][]Candidate
}

var scratchPool = sync.Pool{New: func() interface{} { return new(Scratch) }}

// GetScratch returns a Scratch from the pool, buffers warmed by prior use.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch recycles s. The caller must not use s afterwards.
func PutScratch(s *Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}

// ScratchProgram is the allocation-free variant of Program. OnEdgeScratch
// behaves exactly like OnEdge but takes caller-owned scratch for its
// intermediates. The engine's hot path uses it when implemented; OnEdge
// remains the compatibility entry point.
type ScratchProgram interface {
	Program
	// OnEdgeScratch reports the candidates whose motif e completes, using
	// s for intermediate buffers. The returned slice (when non-nil) is
	// freshly allocated and safe to retain; the contents of s are not.
	OnEdgeScratch(ctx *Context, e graph.Edge, s *Scratch) []Candidate
}

// DiamondConfig parametrizes the diamond motif detector.
type DiamondConfig struct {
	// Name overrides the program name; empty selects "diamond".
	Name string
	// K is the minimum number of A's followings that must act on the same
	// item within the window (paper: k, production value 3).
	K int
	// Window is the freshness period τ.
	Window time.Duration
	// EdgeTypes restricts which actions trigger the motif. Empty means
	// follows only.
	EdgeTypes []graph.EdgeType
	// MaxFanout caps the recent B's considered per event, bounding work on
	// viral items; 0 means unlimited.
	MaxFanout int
	// MaxCandidates caps emitted candidates per event; 0 means unlimited.
	MaxCandidates int
}

// Diamond is the production algorithm of §2: on edge B→C, fetch the other
// recent B's pointing at C from D; if at least K, look up each B's
// followers in S and emit the K-threshold intersection.
type Diamond struct {
	cfg   DiamondConfig
	types map[graph.EdgeType]bool
}

// NewDiamond validates cfg and returns the program. K < 2 or Window <= 0
// are programmer errors and panic.
func NewDiamond(cfg DiamondConfig) *Diamond {
	if cfg.K < 2 {
		panic("motif: diamond requires K >= 2 (use NewFreshFollow for K=1)")
	}
	if cfg.Window <= 0 {
		panic("motif: diamond requires a positive window")
	}
	if cfg.Name == "" {
		cfg.Name = "diamond"
	}
	types := map[graph.EdgeType]bool{}
	if len(cfg.EdgeTypes) == 0 {
		types[graph.Follow] = true
	}
	for _, t := range cfg.EdgeTypes {
		types[t] = true
	}
	return &Diamond{cfg: cfg, types: types}
}

// Name implements Program.
func (d *Diamond) Name() string { return d.cfg.Name }

// Config returns the program's configuration.
func (d *Diamond) Config() DiamondConfig { return d.cfg }

// OnEdge implements Program. It is the allocation-friendly wrapper around
// OnEdgeScratch using pooled scratch.
func (d *Diamond) OnEdge(ctx *Context, e graph.Edge) []Candidate {
	s := GetScratch()
	out := d.OnEdgeScratch(ctx, e, s)
	PutScratch(s)
	return out
}

// OnEdgeScratch implements ScratchProgram: the §2 diamond detection with
// every intermediate drawn from s. The only heap allocation on a warmed-up
// scratch is the emitted candidate slice itself.
func (d *Diamond) OnEdgeScratch(ctx *Context, e graph.Edge, s *Scratch) []Candidate {
	if !d.types[e.Type] {
		return nil
	}
	since := e.TS - d.cfg.Window.Milliseconds()
	// The fanout cap is pushed into the store query so a viral target with
	// thousands of in-window actors costs O(MaxFanout), not O(window); the
	// store returns the freshest distinct actors.
	recent := ctx.D.RecentLimitInto(s.recent[:0], e.Dst, since, d.cfg.MaxFanout)
	s.recent = recent
	if len(recent) < d.cfg.K {
		return nil
	}
	bs := s.bs[:0]
	lists := s.lists[:0]
	for _, in := range recent {
		l := ctx.S.Followers(in.B)
		if len(l) == 0 {
			continue
		}
		bs = append(bs, in.B)
		lists = append(lists, l)
	}
	s.bs, s.lists = bs, lists
	if len(lists) < d.cfg.K {
		return nil
	}
	as := graph.ThresholdIntersectInto(s.as[:0], lists, d.cfg.K, &s.g)
	s.as = as
	if len(as) == 0 {
		return nil
	}
	out := make([]Candidate, 0, len(as))
	for _, a := range as {
		if a == e.Dst {
			continue // never recommend someone to themselves
		}
		if ctx.Follows != nil && ctx.Follows(a, e.Dst) {
			continue // a already follows/acted on the item
		}
		via := supportersOf(a, bs, lists)
		out = append(out, Candidate{
			User:         a,
			Item:         e.Dst,
			Via:          via,
			Trigger:      e,
			DetectedAtMS: e.TS,
			Program:      d.cfg.Name,
			Score:        float64(len(via)),
		})
		if d.cfg.MaxCandidates > 0 && len(out) >= d.cfg.MaxCandidates {
			break
		}
	}
	return out
}

// supportersOf returns the B's whose follower lists contain a. Survivor
// sets are small, so a binary-search pass per survivor is cheap.
func supportersOf(a graph.VertexID, bs []graph.VertexID, lists []graph.AdjList) []graph.VertexID {
	via := make([]graph.VertexID, 0, len(bs))
	for i, l := range lists {
		if l.Contains(a) {
			via = append(via, bs[i])
		}
	}
	return via
}

// NewContentCoAction returns a diamond program over retweet and favorite
// edges: "recommend tweet C to A when at least k of A's followings engaged
// with it within τ" — the content-recommendation application of §1.
func NewContentCoAction(k int, window time.Duration) *Diamond {
	return NewDiamond(DiamondConfig{
		Name:      "content-coaction",
		K:         k,
		Window:    window,
		EdgeTypes: []graph.EdgeType{graph.Retweet, graph.Favorite},
	})
}

// FreshFollow is the degenerate k=1 motif: every new B→C follow is
// broadcast to all of B's followers. It exists to drive the delivery
// funnel experiment (E3) with realistic raw-candidate volume; production
// uses k≥2 precisely because k=1 floods.
type FreshFollow struct {
	// MaxCandidates caps emissions per event; 0 means unlimited.
	MaxCandidates int
}

// Name implements Program.
func (f *FreshFollow) Name() string { return "fresh-follow" }

// OnEdgeScratch implements ScratchProgram. FreshFollow has no
// intermediates — the only allocations are the emitted candidates — so the
// scratch is unused and the call simply delegates.
func (f *FreshFollow) OnEdgeScratch(ctx *Context, e graph.Edge, _ *Scratch) []Candidate {
	return f.OnEdge(ctx, e)
}

// OnEdge implements Program.
func (f *FreshFollow) OnEdge(ctx *Context, e graph.Edge) []Candidate {
	if e.Type != graph.Follow {
		return nil
	}
	followers := ctx.S.Followers(e.Src)
	if len(followers) == 0 {
		return nil
	}
	out := make([]Candidate, 0, len(followers))
	for _, a := range followers {
		if a == e.Dst {
			continue
		}
		if ctx.Follows != nil && ctx.Follows(a, e.Dst) {
			continue
		}
		out = append(out, Candidate{
			User:         a,
			Item:         e.Dst,
			Via:          []graph.VertexID{e.Src},
			Trigger:      e,
			DetectedAtMS: e.TS,
			Program:      f.Name(),
			Score:        1,
		})
		if f.MaxCandidates > 0 && len(out) >= f.MaxCandidates {
			break
		}
	}
	return out
}
