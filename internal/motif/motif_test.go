package motif

import (
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/statstore"
)

// newCtx builds a context from static A→B edges with an optional
// already-follows suppressor derived from the same edges.
func newCtx(t *testing.T, static []graph.Edge, suppress bool, retention time.Duration) *Context {
	t.Helper()
	b := &statstore.Builder{}
	s := statstore.New(b.Build(static))
	d := dynstore.New(dynstore.Options{Retention: retention})
	ctx := &Context{S: s, D: d}
	if suppress {
		byA := make(map[graph.VertexID][]graph.VertexID)
		for _, e := range static {
			byA[e.Src] = append(byA[e.Src], e.Dst)
		}
		idx := make(map[graph.VertexID]graph.AdjList, len(byA))
		for a, bs := range byA {
			idx[a] = graph.NewAdjList(bs)
		}
		ctx.Follows = func(a, c graph.VertexID) bool { return idx[a].Contains(c) }
	}
	return ctx
}

// apply inserts and detects, as the engine does.
func apply(ctx *Context, p Program, e graph.Edge) []Candidate {
	ctx.D.Insert(e)
	return p.OnEdge(ctx, e)
}

// Figure 1 of the paper: A1→B1, A2→B1, A2→B2, A3→B2. With k=2, the edge
// B2→C2 arriving after B1→C2 must recommend C2 to exactly A2.
func TestFigure1Walkthrough(t *testing.T) {
	const (
		a1 = graph.VertexID(iota + 1)
		a2
		a3
		b1
		b2
		c2
	)
	static := []graph.Edge{
		{Src: a1, Dst: b1}, {Src: a2, Dst: b1},
		{Src: a2, Dst: b2}, {Src: a3, Dst: b2},
	}
	ctx := newCtx(t, static, false, time.Hour)
	p := NewDiamond(DiamondConfig{K: 2, Window: 10 * time.Minute})

	t0 := int64(1_000_000)
	if got := apply(ctx, p, graph.Edge{Src: b1, Dst: c2, Type: graph.Follow, TS: t0}); len(got) != 0 {
		t.Fatalf("first edge completed a motif: %v", got)
	}
	got := apply(ctx, p, graph.Edge{Src: b2, Dst: c2, Type: graph.Follow, TS: t0 + 60_000})
	if len(got) != 1 {
		t.Fatalf("want exactly one candidate, got %v", got)
	}
	c := got[0]
	if c.User != a2 || c.Item != c2 {
		t.Fatalf("want recommend C2 to A2, got item %d to user %d", c.Item, c.User)
	}
	if len(c.Via) != 2 {
		t.Fatalf("want 2 supporting B's, got %v", c.Via)
	}
	if c.Program != "diamond" {
		t.Fatalf("program name = %q", c.Program)
	}
	if c.Score != 2 {
		t.Fatalf("score = %f, want 2 (supporter count)", c.Score)
	}
}

func TestDiamondWindowExpiry(t *testing.T) {
	static := []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 1, Dst: 11},
	}
	ctx := newCtx(t, static, false, time.Hour)
	p := NewDiamond(DiamondConfig{K: 2, Window: time.Minute})

	t0 := int64(1_000_000)
	apply(ctx, p, graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0})
	// The second supporting edge arrives 2 minutes later: outside τ.
	got := apply(ctx, p, graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 120_000})
	if len(got) != 0 {
		t.Fatalf("stale support should not complete the motif: %v", got)
	}
	// A third edge inside the window relative to the second completes it
	// only if two B's acted within τ — B=11 and B=10 again.
	got = apply(ctx, p, graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0 + 150_000})
	if len(got) != 1 {
		t.Fatalf("re-action inside window should complete: %v", got)
	}
}

func TestDiamondKThreshold(t *testing.T) {
	// User 1 follows B's 10,11,12; k=3 requires all three to act.
	static := []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 1, Dst: 11}, {Src: 1, Dst: 12},
	}
	ctx := newCtx(t, static, false, time.Hour)
	p := NewDiamond(DiamondConfig{K: 3, Window: time.Hour})
	t0 := int64(1_000_000)
	if got := apply(ctx, p, graph.Edge{Src: 10, Dst: 99, TS: t0}); len(got) != 0 {
		t.Fatal("1 of 3")
	}
	if got := apply(ctx, p, graph.Edge{Src: 11, Dst: 99, TS: t0 + 1}); len(got) != 0 {
		t.Fatal("2 of 3")
	}
	got := apply(ctx, p, graph.Edge{Src: 12, Dst: 99, TS: t0 + 2})
	if len(got) != 1 || got[0].User != 1 {
		t.Fatalf("3 of 3 should recommend to user 1: %v", got)
	}
	if len(got[0].Via) != 3 {
		t.Fatalf("Via = %v, want all three B's", got[0].Via)
	}
}

func TestDiamondSelfRecommendationSuppressed(t *testing.T) {
	// User 99 follows B's 10 and 11; both follow 99 back. The candidate
	// "recommend 99 to 99" must be suppressed.
	static := []graph.Edge{
		{Src: 99, Dst: 10}, {Src: 99, Dst: 11},
	}
	ctx := newCtx(t, static, false, time.Hour)
	p := NewDiamond(DiamondConfig{K: 2, Window: time.Hour})
	t0 := int64(1_000)
	apply(ctx, p, graph.Edge{Src: 10, Dst: 99, TS: t0})
	got := apply(ctx, p, graph.Edge{Src: 11, Dst: 99, TS: t0 + 1})
	if len(got) != 0 {
		t.Fatalf("self-recommendation emitted: %v", got)
	}
}

func TestDiamondAlreadyFollowsSuppressed(t *testing.T) {
	// User 1 follows 10, 11, and also already follows 99.
	static := []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 1, Dst: 11}, {Src: 1, Dst: 99},
	}
	ctx := newCtx(t, static, true, time.Hour)
	p := NewDiamond(DiamondConfig{K: 2, Window: time.Hour})
	t0 := int64(1_000)
	apply(ctx, p, graph.Edge{Src: 10, Dst: 99, TS: t0})
	got := apply(ctx, p, graph.Edge{Src: 11, Dst: 99, TS: t0 + 1})
	if len(got) != 0 {
		t.Fatalf("already-follows candidate emitted: %v", got)
	}
}

func TestDiamondEdgeTypeFilter(t *testing.T) {
	static := []graph.Edge{{Src: 1, Dst: 10}, {Src: 1, Dst: 11}}
	ctx := newCtx(t, static, false, time.Hour)
	// Follow-only program ignores retweets.
	p := NewDiamond(DiamondConfig{K: 2, Window: time.Hour})
	t0 := int64(1_000)
	apply(ctx, p, graph.Edge{Src: 10, Dst: 99, Type: graph.Retweet, TS: t0})
	got := apply(ctx, p, graph.Edge{Src: 11, Dst: 99, Type: graph.Retweet, TS: t0 + 1})
	if len(got) != 0 {
		t.Fatalf("retweets triggered a follow-only program: %v", got)
	}

	// A content program sees them. Note D now already has both retweets.
	ctx2 := newCtx(t, static, false, time.Hour)
	pc := NewContentCoAction(2, time.Hour)
	apply(ctx2, pc, graph.Edge{Src: 10, Dst: 99, Type: graph.Retweet, TS: t0})
	got = apply(ctx2, pc, graph.Edge{Src: 11, Dst: 99, Type: graph.Favorite, TS: t0 + 1})
	if len(got) != 1 {
		t.Fatalf("content co-action should complete: %v", got)
	}
	if got[0].Program != "content-coaction" {
		t.Fatalf("program name = %q", got[0].Program)
	}
}

func TestDiamondMaxFanout(t *testing.T) {
	// 50 B's act on the target; the fanout cap must bound the supporter
	// set considered without losing the detection.
	var static []graph.Edge
	for b := graph.VertexID(10); b < 60; b++ {
		static = append(static, graph.Edge{Src: 1, Dst: b})
	}
	ctx := newCtx(t, static, false, time.Hour)
	p := NewDiamond(DiamondConfig{K: 2, Window: time.Hour, MaxFanout: 5})
	t0 := int64(1_000)
	var last []Candidate
	for i, e := range static {
		last = apply(ctx, p, graph.Edge{Src: e.Dst, Dst: 99, TS: t0 + int64(i)})
	}
	if len(last) != 1 {
		t.Fatalf("detection lost under fanout cap: %v", last)
	}
	if len(last[0].Via) > 5 {
		t.Fatalf("Via %v exceeds fanout cap", last[0].Via)
	}
}

func TestDiamondMaxCandidates(t *testing.T) {
	// Two users each follow both acting B's: two candidates, capped to 1.
	static := []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 1, Dst: 11},
		{Src: 2, Dst: 10}, {Src: 2, Dst: 11},
	}
	ctx := newCtx(t, static, false, time.Hour)
	p := NewDiamond(DiamondConfig{K: 2, Window: time.Hour, MaxCandidates: 1})
	t0 := int64(1_000)
	apply(ctx, p, graph.Edge{Src: 10, Dst: 99, TS: t0})
	got := apply(ctx, p, graph.Edge{Src: 11, Dst: 99, TS: t0 + 1})
	if len(got) != 1 {
		t.Fatalf("MaxCandidates not honored: %d candidates", len(got))
	}
}

func TestDiamondMultipleRecipients(t *testing.T) {
	static := []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 1, Dst: 11},
		{Src: 2, Dst: 10}, {Src: 2, Dst: 11},
		{Src: 3, Dst: 10}, // only one of the two B's
	}
	ctx := newCtx(t, static, false, time.Hour)
	p := NewDiamond(DiamondConfig{K: 2, Window: time.Hour})
	t0 := int64(1_000)
	apply(ctx, p, graph.Edge{Src: 10, Dst: 99, TS: t0})
	got := apply(ctx, p, graph.Edge{Src: 11, Dst: 99, TS: t0 + 1})
	if len(got) != 2 {
		t.Fatalf("want candidates for users 1 and 2, got %v", got)
	}
	users := map[graph.VertexID]bool{}
	for _, c := range got {
		users[c.User] = true
	}
	if !users[1] || !users[2] || users[3] {
		t.Fatalf("wrong recipients: %v", users)
	}
}

func TestDiamondDuplicateBCountsOnce(t *testing.T) {
	// The same B acting twice must not satisfy k=2 alone.
	static := []graph.Edge{{Src: 1, Dst: 10}, {Src: 1, Dst: 11}}
	ctx := newCtx(t, static, false, time.Hour)
	p := NewDiamond(DiamondConfig{K: 2, Window: time.Hour})
	t0 := int64(1_000)
	apply(ctx, p, graph.Edge{Src: 10, Dst: 99, TS: t0})
	got := apply(ctx, p, graph.Edge{Src: 10, Dst: 99, TS: t0 + 1})
	if len(got) != 0 {
		t.Fatalf("duplicate B satisfied k=2: %v", got)
	}
}

func TestNewDiamondValidation(t *testing.T) {
	assertPanics(t, func() { NewDiamond(DiamondConfig{K: 1, Window: time.Minute}) })
	assertPanics(t, func() { NewDiamond(DiamondConfig{K: 2}) })
	p := NewDiamond(DiamondConfig{K: 2, Window: time.Minute, Name: "custom"})
	if p.Name() != "custom" {
		t.Fatalf("custom name lost: %q", p.Name())
	}
	if p.Config().K != 2 {
		t.Fatal("Config() does not round-trip")
	}
}

func TestFreshFollow(t *testing.T) {
	static := []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 2, Dst: 10}, {Src: 10, Dst: 20},
	}
	ctx := newCtx(t, static, false, time.Hour)
	p := &FreshFollow{}
	got := apply(ctx, p, graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: 1})
	if len(got) != 2 {
		t.Fatalf("fresh-follow should broadcast to both followers: %v", got)
	}
	for _, c := range got {
		if c.Item != 99 || len(c.Via) != 1 || c.Via[0] != 10 {
			t.Fatalf("bad candidate: %+v", c)
		}
	}
	// Non-follow edges are ignored.
	if got := apply(ctx, p, graph.Edge{Src: 10, Dst: 98, Type: graph.Retweet, TS: 2}); len(got) != 0 {
		t.Fatal("fresh-follow should ignore retweets")
	}
	// Candidate cap.
	capped := &FreshFollow{MaxCandidates: 1}
	if got := apply(ctx, capped, graph.Edge{Src: 10, Dst: 97, Type: graph.Follow, TS: 3}); len(got) != 1 {
		t.Fatalf("MaxCandidates not honored: %v", got)
	}
}

func TestFreshFollowSelfAndKnownSuppression(t *testing.T) {
	static := []graph.Edge{
		{Src: 99, Dst: 10},                   // the target itself follows B
		{Src: 1, Dst: 10}, {Src: 1, Dst: 99}, // user 1 already follows 99
	}
	ctx := newCtx(t, static, true, time.Hour)
	p := &FreshFollow{}
	got := apply(ctx, p, graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: 1})
	if len(got) != 0 {
		t.Fatalf("self/known suppression failed: %v", got)
	}
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
