package motif

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/statstore"
)

// refDetector is a brute-force diamond oracle: it keeps the entire
// dynamic history and, per event, recomputes from first principles the
// set of (user, item) pairs whose motif the event completes. It shares no
// code with the production path (no AdjList, no D store, no
// intersections), so agreement is meaningful.
type refDetector struct {
	k        int
	windowMS int64
	// follows[a] is the set of B's that a follows.
	follows map[graph.VertexID]map[graph.VertexID]bool
	history []graph.Edge
}

func newRefDetector(k int, window time.Duration, static []graph.Edge) *refDetector {
	follows := map[graph.VertexID]map[graph.VertexID]bool{}
	for _, e := range static {
		m := follows[e.Src]
		if m == nil {
			m = map[graph.VertexID]bool{}
			follows[e.Src] = m
		}
		m[e.Dst] = true
	}
	return &refDetector{k: k, windowMS: window.Milliseconds(), follows: follows}
}

// onEdge returns the sorted "user>item" keys completed by e.
func (r *refDetector) onEdge(e graph.Edge) []string {
	r.history = append(r.history, e)
	if e.Type != graph.Follow {
		return nil
	}
	// Distinct actors on e.Dst within the window ending at e.TS.
	actors := map[graph.VertexID]bool{}
	for _, h := range r.history {
		if h.Dst == e.Dst && h.Type == graph.Follow && h.TS >= e.TS-r.windowMS && h.TS <= e.TS {
			actors[h.Src] = true
		}
	}
	if len(actors) < r.k {
		return nil
	}
	var out []string
	for a, bs := range r.follows {
		if a == e.Dst {
			continue
		}
		if bs[e.Dst] {
			continue // already follows the item
		}
		n := 0
		for b := range actors {
			if bs[b] {
				n++
			}
		}
		if n >= r.k {
			out = append(out, fmt.Sprintf("%d>%d", a, e.Dst))
		}
	}
	sort.Strings(out)
	return out
}

// TestDiamondAgainstOracle drives random worlds through both the
// production diamond and the brute-force oracle and requires identical
// detections event by event.
func TestDiamondAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(20140901))
	for trial := 0; trial < 30; trial++ {
		users := 5 + r.Intn(20)
		k := 2 + r.Intn(2)
		window := time.Duration(1+r.Intn(10)) * time.Minute

		// Random static graph.
		var static []graph.Edge
		for a := 0; a < users; a++ {
			deg := r.Intn(6)
			for j := 0; j < deg; j++ {
				b := graph.VertexID(r.Intn(users))
				if b != graph.VertexID(a) {
					static = append(static, graph.Edge{
						Src: graph.VertexID(a), Dst: b, Type: graph.Follow,
					})
				}
			}
		}

		b := &statstore.Builder{}
		s := statstore.New(b.Build(static))
		d := dynstore.New(dynstore.Options{Retention: window})
		followsIdx := map[graph.VertexID]map[graph.VertexID]bool{}
		for _, e := range static {
			m := followsIdx[e.Src]
			if m == nil {
				m = map[graph.VertexID]bool{}
				followsIdx[e.Src] = m
			}
			m[e.Dst] = true
		}
		ctx := &Context{
			S: s, D: d,
			Follows: func(a, c graph.VertexID) bool { return followsIdx[a][c] },
		}
		prog := NewDiamond(DiamondConfig{K: k, Window: window})
		oracle := newRefDetector(k, window, static)

		// Random dynamic stream with clustered targets so motifs form.
		now := int64(1_000_000)
		for i := 0; i < 300; i++ {
			now += int64(r.Intn(60_000))
			e := graph.Edge{
				Src:  graph.VertexID(r.Intn(users)),
				Dst:  graph.VertexID(r.Intn(users/2 + 1)), // concentrated
				Type: graph.Follow,
				TS:   now,
			}
			if e.Src == e.Dst {
				continue
			}
			d.Insert(e)
			var got []string
			for _, c := range prog.OnEdge(ctx, e) {
				got = append(got, fmt.Sprintf("%d>%d", c.User, c.Item))
			}
			sort.Strings(got)
			want := oracle.onEdge(e)
			if len(got) != len(want) {
				t.Fatalf("trial %d event %d (%v, k=%d w=%v):\n got %v\nwant %v",
					trial, i, e, k, window, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("trial %d event %d: got %v want %v", trial, i, got, want)
				}
			}
		}
	}
}
