package motif

import (
	"fmt"
	"strings"

	"motifstream/internal/graph"
)

// This file implements the planned-motif runtime: a small probe-op IR
// produced by the motifdsl planner, an interpreter (PlannedProgram) that
// executes an op sequence under the Program/ScratchProgram contracts, and a
// shared-execution node (PlannedGroup) that runs the common probe prefix of
// several plans once per event and fans out only where the plans diverge.
//
// The IR generalizes the hand-written Diamond/FreshFollow detectors (which
// remain as oracles for the differential tests) to longer static chains,
// k-of-n thresholds, and per-trigger-type freshness windows.

// NumEdgeTypes is the number of edge types the planned runtime indexes
// per-type windows by. Filter ops reject any trigger type outside this
// range.
const NumEdgeTypes = 3

// OpKind enumerates the probe-op IR.
type OpKind uint8

const (
	// OpFilterTrigger gates on the trigger edge's type and selects the
	// freshness window for the accepted type (WindowMS).
	OpFilterTrigger OpKind = iota
	// OpBindTrigger binds the trigger actor e.Src as the sole support and
	// resolves its follower list — the k=1 plan shape, where the trigger
	// edge is itself the single in-window support and the dynamic-window
	// probe is pruned entirely (the plan reads no dynamic state).
	OpBindTrigger
	// OpProbeDynamic fetches the distinct in-window actors at e.Dst from
	// the D store (fanout-capped by Limit) and early-exits below K actors.
	OpProbeDynamic
	// OpProbeStatic resolves each bound support's follower list in S,
	// dropping supports with no followers.
	OpProbeStatic
	// OpThreshold intersects the follower lists with a K-of-n threshold,
	// yielding the survivor frontier.
	OpThreshold
	// OpExpand replaces the survivor frontier with the union of its
	// members' follower lists (one more static hop toward the user),
	// capping the expanded survivors at Limit.
	OpExpand
	// OpEmit turns the final frontier into candidates: self/already-follows
	// suppression, via attribution, and a Limit cap on emissions.
	OpEmit
)

// String names the op for EXPLAIN output and errors.
func (k OpKind) String() string {
	switch k {
	case OpFilterTrigger:
		return "filter-trigger"
	case OpBindTrigger:
		return "bind-trigger"
	case OpProbeDynamic:
		return "probe-dynamic"
	case OpProbeStatic:
		return "probe-static"
	case OpThreshold:
		return "threshold-intersect"
	case OpExpand:
		return "expand"
	case OpEmit:
		return "emit"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one instruction of a planned motif. Fields are interpreted per
// kind; unused fields are zero.
type Op struct {
	Kind OpKind
	// WindowMS (OpFilterTrigger) holds the freshness window in stream
	// milliseconds per trigger edge type; 0 rejects the type.
	WindowMS [NumEdgeTypes]int64
	// K is the OpProbeDynamic early-exit minimum and the OpThreshold
	// support threshold.
	K int
	// Limit caps OpProbeDynamic fanout, OpExpand survivors, and OpEmit
	// candidates; 0 means unlimited.
	Limit int
}

// PlannedProgram interprets a validated op sequence as a motif program. It
// satisfies the same contracts as the hand-written detectors: safe for
// concurrent OnEdge calls, D reads confined to e.Dst's in-edge list (k=1
// plans read no dynamic state at all), and zero heap allocation per
// non-emitting event on a warmed-up Scratch.
type PlannedProgram struct {
	name string
	ops  []Op

	// Decoded summary of the op sequence, fixed at construction.
	windowMS    [NumEdgeTypes]int64
	k           int
	fanout      int
	maxCands    int
	expands     int
	expandCaps  [2]int
	triggerOnly bool
	shareKey    string
}

// NewPlannedProgram validates ops as one of the two legal shapes —
//
//	filter-trigger, probe-dynamic, probe-static, threshold, expand*, emit
//	filter-trigger, bind-trigger, expand*, emit            (k = 1)
//
// — and returns the interpreter. The op order is the planner's output;
// the runtime trusts its dataflow but re-checks the shape so a hand-built
// sequence cannot crash the interpreter.
func NewPlannedProgram(name string, ops []Op) (*PlannedProgram, error) {
	if name == "" {
		return nil, fmt.Errorf("motif: planned program needs a name")
	}
	p := &PlannedProgram{name: name, ops: append([]Op(nil), ops...)}
	i := 0
	next := func() (Op, bool) {
		if i >= len(p.ops) {
			return Op{}, false
		}
		op := p.ops[i]
		i++
		return op, true
	}
	op, ok := next()
	if !ok || op.Kind != OpFilterTrigger {
		return nil, fmt.Errorf("motif: plan %q must start with filter-trigger", name)
	}
	any := false
	for t := 0; t < NumEdgeTypes; t++ {
		if op.WindowMS[t] < 0 {
			return nil, fmt.Errorf("motif: plan %q has a negative window for %s", name, graph.EdgeType(t))
		}
		if op.WindowMS[t] > 0 {
			any = true
		}
	}
	if !any {
		return nil, fmt.Errorf("motif: plan %q accepts no trigger types", name)
	}
	p.windowMS = op.WindowMS

	op, ok = next()
	switch {
	case ok && op.Kind == OpBindTrigger:
		p.triggerOnly = true
		p.k = 1
	case ok && op.Kind == OpProbeDynamic:
		if op.K < 2 {
			return nil, fmt.Errorf("motif: plan %q probe-dynamic needs K >= 2 (k=1 plans bind the trigger)", name)
		}
		p.k = op.K
		p.fanout = op.Limit
		op, ok = next()
		if !ok || op.Kind != OpProbeStatic {
			return nil, fmt.Errorf("motif: plan %q needs probe-static after probe-dynamic", name)
		}
		op, ok = next()
		if !ok || op.Kind != OpThreshold || op.K != p.k {
			return nil, fmt.Errorf("motif: plan %q needs threshold-intersect k=%d after probe-static", name, p.k)
		}
	default:
		return nil, fmt.Errorf("motif: plan %q needs bind-trigger or probe-dynamic after the filter", name)
	}

	for {
		op, ok = next()
		if !ok {
			return nil, fmt.Errorf("motif: plan %q is missing emit", name)
		}
		if op.Kind != OpExpand {
			break
		}
		if p.expands >= 2 {
			return nil, fmt.Errorf("motif: plan %q chains too deep (at most 2 expansions)", name)
		}
		p.expandCaps[p.expands] = op.Limit
		p.expands++
	}
	if op.Kind != OpEmit {
		return nil, fmt.Errorf("motif: plan %q has %s where emit was expected", name, op.Kind)
	}
	p.maxCands = op.Limit
	if _, extra := next(); extra {
		return nil, fmt.Errorf("motif: plan %q has ops after emit", name)
	}
	p.shareKey = shareKeyOf(p.triggerOnly, p.windowMS, p.fanout)
	return p, nil
}

// shareKeyOf canonicalizes the shared probe prefix: trigger filter (with
// per-type windows), probe kind, and fanout cap. Plans with equal keys
// perform identical per-event D/S prefix work and can execute it once.
// Trigger-only plans key on accepted types alone — their windows are
// vacuous (the trigger is always inside its own window).
func shareKeyOf(triggerOnly bool, windowMS [NumEdgeTypes]int64, fanout int) string {
	var b strings.Builder
	if triggerOnly {
		b.WriteString("trig|")
		for t := 0; t < NumEdgeTypes; t++ {
			if windowMS[t] > 0 {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	fmt.Fprintf(&b, "dyn|fan%d|", fanout)
	for t := 0; t < NumEdgeTypes; t++ {
		fmt.Fprintf(&b, "%d,", windowMS[t])
	}
	return b.String()
}

// Name implements Program.
func (p *PlannedProgram) Name() string { return p.name }

// Ops returns a copy of the program's op sequence.
func (p *PlannedProgram) Ops() []Op { return append([]Op(nil), p.ops...) }

// K returns the support threshold.
func (p *PlannedProgram) K() int { return p.k }

// MaxFanout returns the dynamic-probe fanout cap (0 = unlimited).
func (p *PlannedProgram) MaxFanout() int { return p.fanout }

// MaxCandidates returns the per-event emission cap (0 = unlimited).
func (p *PlannedProgram) MaxCandidates() int { return p.maxCands }

// Expands returns the number of expansion hops between the threshold
// survivors and the emitted users (0 for the diamond shape).
func (p *PlannedProgram) Expands() int { return p.expands }

// TriggerOnly reports whether the plan is the pruned k=1 shape that reads
// no dynamic state.
func (p *PlannedProgram) TriggerOnly() bool { return p.triggerOnly }

// WindowFor returns the freshness window in milliseconds for a trigger
// type, 0 when the type is rejected.
func (p *PlannedProgram) WindowFor(t graph.EdgeType) int64 {
	if int(t) >= NumEdgeTypes {
		return 0
	}
	return p.windowMS[t]
}

// ShareKey identifies the program's shared probe prefix. Programs with
// equal keys can be grouped under one PlannedGroup.
func (p *PlannedProgram) ShareKey() string { return p.shareKey }

// OnEdge implements Program via pooled scratch.
func (p *PlannedProgram) OnEdge(ctx *Context, e graph.Edge) []Candidate {
	s := GetScratch()
	out := p.OnEdgeScratch(ctx, e, s)
	PutScratch(s)
	return out
}

// OnEdgeScratch interprets the op sequence. Register state (the bound
// supports, their follower lists, and the survivor frontier) lives in s;
// the only heap allocation on a warmed-up scratch is the emitted
// candidates.
func (p *PlannedProgram) OnEdgeScratch(ctx *Context, e graph.Edge, s *Scratch) []Candidate {
	var (
		win      int64
		bs       []graph.VertexID
		lists    []graph.AdjList
		cur      graph.AdjList
		expanded int
	)
	for _, op := range p.ops {
		switch op.Kind {
		case OpFilterTrigger:
			if int(e.Type) >= NumEdgeTypes {
				return nil
			}
			win = op.WindowMS[e.Type]
			if win <= 0 {
				return nil
			}
		case OpBindTrigger:
			bs, lists, cur = bindTrigger(ctx, e, s)
			if cur == nil {
				return nil
			}
		case OpProbeDynamic:
			recent := ctx.D.RecentLimitInto(s.recent[:0], e.Dst, e.TS-win, op.Limit)
			s.recent = recent
			if ctx.Stats != nil {
				ctx.Stats.DynIn.Observe(len(recent))
			}
			if len(recent) < op.K {
				return nil
			}
		case OpProbeStatic:
			bs, lists = probeStatic(ctx, s)
			if len(lists) == 0 {
				return nil
			}
		case OpThreshold:
			if len(lists) < op.K {
				return nil
			}
			cur = graph.ThresholdIntersectInto(s.as[:0], lists, op.K, &s.g)
			s.as = cur
			if len(cur) == 0 {
				return nil
			}
		case OpExpand:
			expanded++
			cur = expandFrontier(ctx, s, cur, op.Limit, expanded)
			if len(cur) == 0 {
				return nil
			}
		case OpEmit:
			return emitFrontier(ctx, e, s, p.name, bs, lists, cur, expanded, op.Limit)
		}
	}
	return nil
}

// bindTrigger is the k=1 shape: the trigger actor is the sole support and
// its follower list is the initial frontier.
func bindTrigger(ctx *Context, e graph.Edge, s *Scratch) ([]graph.VertexID, []graph.AdjList, graph.AdjList) {
	l := ctx.S.Followers(e.Src)
	if ctx.Stats != nil {
		ctx.Stats.Static.Observe(len(l))
	}
	if len(l) == 0 {
		return nil, nil, nil
	}
	s.bs = append(s.bs[:0], e.Src)
	s.lists = append(s.lists[:0], l)
	return s.bs, s.lists, l
}

// probeStatic resolves the follower list of every recent actor in
// s.recent, dropping actors nobody follows. The first list length is
// sampled into the live degree view (one atomic add per event, not per
// list).
func probeStatic(ctx *Context, s *Scratch) ([]graph.VertexID, []graph.AdjList) {
	bs := s.bs[:0]
	lists := s.lists[:0]
	for _, in := range s.recent {
		l := ctx.S.Followers(in.B)
		if len(l) == 0 {
			continue
		}
		if ctx.Stats != nil && len(lists) == 0 {
			ctx.Stats.Static.Observe(len(l))
		}
		bs = append(bs, in.B)
		lists = append(lists, l)
	}
	s.bs, s.lists = bs, lists
	return bs, lists
}

// expandFrontier replaces the survivor frontier with the union of its
// members' follower lists — one more static hop toward the user. The
// sources and their lists are kept in s.bs2/s.lists2 for via attribution;
// the result ping-pongs between s.ex1 and s.ex2 so consecutive expansions
// (and the group executor's shared threshold buffer) never alias. A
// positive limit caps the survivors expanded, bounding the frontier at
// limit × max-follower-list; survivors are sorted, so the cap is
// deterministic.
func expandFrontier(ctx *Context, s *Scratch, cur graph.AdjList, limit, round int) graph.AdjList {
	if limit > 0 && len(cur) > limit {
		cur = cur[:limit]
	}
	bs2 := s.bs2[:0]
	lists2 := s.lists2[:0]
	for _, m := range cur {
		l := ctx.S.Followers(m)
		if len(l) == 0 {
			continue
		}
		bs2 = append(bs2, m)
		lists2 = append(lists2, l)
	}
	s.bs2, s.lists2 = bs2, lists2
	if len(lists2) == 0 {
		return nil
	}
	dst := s.ex1[:0]
	if round%2 == 0 {
		dst = s.ex2[:0]
	}
	out := graph.ThresholdIntersectInto(dst, lists2, 1, &s.g)
	if round%2 == 0 {
		s.ex2 = out
	} else {
		s.ex1 = out
	}
	return out
}

// emitFrontier turns the final frontier into candidates with the same
// suppression rules as the hand-written detectors: never recommend a user
// to themselves, skip users already following the item. Via attribution
// depends on how far the frontier was expanded: unexpanded survivors carry
// their full support set; one expansion carries the connector's support
// set; deeper expansions carry just the immediate connector (exact
// attribution is not tracked through two unions).
func emitFrontier(ctx *Context, e graph.Edge, s *Scratch, name string,
	bs []graph.VertexID, lists []graph.AdjList, cur graph.AdjList, expanded, limit int) []Candidate {
	var out []Candidate
	for _, a := range cur {
		if a == e.Dst {
			continue
		}
		if ctx.Follows != nil && ctx.Follows(a, e.Dst) {
			continue
		}
		var via []graph.VertexID
		switch expanded {
		case 0:
			via = supportersOf(a, bs, lists)
		case 1:
			conn, ok := connectorOf(a, s)
			if !ok {
				continue
			}
			via = supportersOf(conn, bs, lists)
		default:
			conn, ok := connectorOf(a, s)
			if !ok {
				continue
			}
			via = []graph.VertexID{conn}
		}
		if out == nil {
			hint := len(cur)
			if limit > 0 && limit < hint {
				hint = limit
			}
			out = make([]Candidate, 0, hint)
		}
		out = append(out, Candidate{
			User:         a,
			Item:         e.Dst,
			Via:          via,
			Trigger:      e,
			DetectedAtMS: e.TS,
			Program:      name,
			Score:        float64(len(via)),
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// connectorOf finds the first source of the last expansion round whose
// follower list contains a.
func connectorOf(a graph.VertexID, s *Scratch) (graph.VertexID, bool) {
	for j, l := range s.lists2 {
		if l.Contains(a) {
			return s.bs2[j], true
		}
	}
	return 0, false
}

// ResultSlots returns a scratch-backed slice of n candidate slots, all
// nil. The engine's shared executor hands slots to DetectInto and then
// assembles the combined output in program-registration order, so sharing
// never perturbs downstream candidate ordering. Callers should nil
// consumed entries so a pooled Scratch does not retain candidates.
func (s *Scratch) ResultSlots(n int) [][]Candidate {
	if cap(s.res) < n {
		s.res = make([][]Candidate, n)
	}
	s.res = s.res[:n]
	for i := range s.res {
		s.res[i] = nil
	}
	return s.res
}

// PlannedGroup is one node of the engine's shared execution trie: the
// members share an identical probe prefix (same trigger filter and
// windows, same probe kind, same fanout cap — see ShareKey), so the
// per-event D lookup, window scan, and S expansion run once for the whole
// group. Execution fans out where the plans diverge: each distinct
// threshold k intersects once (members are ordered by ascending k so equal
// thresholds reuse the survivor set and the first failing k short-circuits
// the rest), and expansions/emissions run per member with per-program
// candidate attribution intact.
type PlannedGroup struct {
	members []*PlannedProgram
	byK     []int // member indices ordered by ascending k (stable)
	minK    int

	windowMS    [NumEdgeTypes]int64
	fanout      int
	triggerOnly bool
}

// NewPlannedGroup groups members sharing one ShareKey. At least one member
// is required; mixed keys are a programmer error.
func NewPlannedGroup(members []*PlannedProgram) (*PlannedGroup, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("motif: a planned group needs at least one member")
	}
	g := &PlannedGroup{
		members:     members,
		windowMS:    members[0].windowMS,
		fanout:      members[0].fanout,
		triggerOnly: members[0].triggerOnly,
		minK:        members[0].k,
	}
	key := members[0].shareKey
	for _, m := range members {
		if m.shareKey != key {
			return nil, fmt.Errorf("motif: planned group mixes share keys %q and %q", key, m.shareKey)
		}
		if m.k < g.minK {
			g.minK = m.k
		}
	}
	g.byK = make([]int, len(members))
	for i := range g.byK {
		g.byK[i] = i
	}
	// Insertion sort keeps equal-k members in registration order.
	for i := 1; i < len(g.byK); i++ {
		for j := i; j > 0 && members[g.byK[j]].k < members[g.byK[j-1]].k; j-- {
			g.byK[j], g.byK[j-1] = g.byK[j-1], g.byK[j]
		}
	}
	return g, nil
}

// Members returns the group's programs in the order given at construction;
// DetectInto's slots align with this order.
func (g *PlannedGroup) Members() []*PlannedProgram { return g.members }

// DetectInto runs the group against one edge, storing member i's
// candidates into res[slots[i]]. Slots not written remain untouched, so
// callers must pre-clear. The shared prefix honors the same D-locality
// contract as every member would individually: dynamic reads confined to
// e.Dst's in-edge list.
func (g *PlannedGroup) DetectInto(ctx *Context, e graph.Edge, s *Scratch, res [][]Candidate, slots []int) {
	if int(e.Type) >= NumEdgeTypes {
		return
	}
	win := g.windowMS[e.Type]
	if win <= 0 {
		return
	}
	if g.triggerOnly {
		bs, lists, cur := bindTrigger(ctx, e, s)
		if cur == nil {
			return
		}
		for i, m := range g.members {
			res[slots[i]] = m.runSuffix(ctx, e, s, bs, lists, cur)
		}
		return
	}
	recent := ctx.D.RecentLimitInto(s.recent[:0], e.Dst, e.TS-win, g.fanout)
	s.recent = recent
	if ctx.Stats != nil {
		ctx.Stats.DynIn.Observe(len(recent))
	}
	if len(recent) < g.minK {
		return
	}
	bs, lists := probeStatic(ctx, s)
	if len(lists) == 0 {
		return
	}
	curK := -1
	var cur graph.AdjList
	for _, idx := range g.byK {
		m := g.members[idx]
		if len(lists) < m.k {
			break // ascending k: every later member fails too
		}
		if m.k != curK {
			cur = graph.ThresholdIntersectInto(s.as[:0], lists, m.k, &s.g)
			s.as = cur
			curK = m.k
		}
		if len(cur) == 0 {
			break // larger k can only shrink the survivor set further
		}
		res[slots[idx]] = m.runSuffix(ctx, e, s, bs, lists, cur)
	}
}

// runSuffix executes the member's post-prefix ops (expansions and emit)
// from the shared register state. It must not touch s.recent, s.bs,
// s.lists, or s.as — those belong to the group prefix and later members.
func (p *PlannedProgram) runSuffix(ctx *Context, e graph.Edge, s *Scratch,
	bs []graph.VertexID, lists []graph.AdjList, cur graph.AdjList) []Candidate {
	for round := 1; round <= p.expands; round++ {
		cur = expandFrontier(ctx, s, cur, p.expandCaps[round-1], round)
		if len(cur) == 0 {
			return nil
		}
	}
	return emitFrontier(ctx, e, s, p.name, bs, lists, cur, p.expands, p.maxCands)
}
