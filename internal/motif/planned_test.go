package motif

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/statstore"
)

// opsForDiamond builds the op sequence the planner emits for a k>=2
// diamond: filter, dynamic probe, static probe, threshold, emit.
func opsForDiamond(k int, window time.Duration, types []graph.EdgeType, fanout, maxCands int) []Op {
	var win [NumEdgeTypes]int64
	if len(types) == 0 {
		types = []graph.EdgeType{graph.Follow}
	}
	for _, t := range types {
		win[t] = window.Milliseconds()
	}
	return []Op{
		{Kind: OpFilterTrigger, WindowMS: win},
		{Kind: OpProbeDynamic, K: k, Limit: fanout},
		{Kind: OpProbeStatic},
		{Kind: OpThreshold, K: k},
		{Kind: OpEmit, Limit: maxCands},
	}
}

// opsForTriggerOnly builds the pruned k=1 sequence.
func opsForTriggerOnly(types []graph.EdgeType, maxCands int) []Op {
	var win [NumEdgeTypes]int64
	if len(types) == 0 {
		types = []graph.EdgeType{graph.Follow}
	}
	for _, t := range types {
		win[t] = defaultTriggerWindowMS
	}
	return []Op{
		{Kind: OpFilterTrigger, WindowMS: win},
		{Kind: OpBindTrigger},
		{Kind: OpEmit, Limit: maxCands},
	}
}

const defaultTriggerWindowMS = int64(600_000)

// randomWorld builds a seeded random static graph, follows index, and
// dynamic stream for differential runs.
func randomWorld(seed int64, users, statics, events int) (*Context, []graph.Edge) {
	rng := rand.New(rand.NewSource(seed))
	var sEdges []graph.Edge
	for i := 0; i < statics; i++ {
		src := graph.VertexID(1 + rng.Intn(users))
		dst := graph.VertexID(1 + rng.Intn(users))
		if src == dst {
			continue
		}
		sEdges = append(sEdges, graph.Edge{Src: src, Dst: dst})
	}
	b := &statstore.Builder{}
	s := statstore.New(b.Build(sEdges))
	follows := make(map[[2]graph.VertexID]bool, len(sEdges))
	for _, e := range sEdges {
		follows[[2]graph.VertexID{e.Src, e.Dst}] = true
	}
	d := dynstore.New(dynstore.Options{Retention: time.Hour, MaxPerTarget: 256})
	ctx := &Context{
		S: s, D: d,
		Follows: func(a, c graph.VertexID) bool { return follows[[2]graph.VertexID{a, c}] },
	}
	ts := int64(1_000_000)
	stream := make([]graph.Edge, 0, events)
	for i := 0; i < events; i++ {
		ts += int64(rng.Intn(30_000))
		stream = append(stream, graph.Edge{
			Src:  graph.VertexID(1 + rng.Intn(users)),
			Dst:  graph.VertexID(1 + rng.Intn(users)),
			Type: graph.EdgeType(rng.Intn(3)),
			TS:   ts,
		})
	}
	return ctx, stream
}

func sameCandidates(t *testing.T, i int, want, got []Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("event %d: oracle %d candidates, planned %d\noracle: %v\nplanned: %v",
			i, len(want), len(got), want, got)
	}
	if len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("event %d: candidates differ\noracle: %v\nplanned: %v", i, want, got)
	}
}

// TestPlannedMatchesDiamondOracle drives the interpreted plan and the
// hand-written Diamond over identical random worlds and demands exact
// per-event candidate equality (order, via, scores, labels).
func TestPlannedMatchesDiamondOracle(t *testing.T) {
	cases := []struct {
		seed    int64
		k       int
		window  time.Duration
		types   []graph.EdgeType
		fanout  int
		maxCand int
	}{
		{1, 2, 5 * time.Minute, nil, 0, 0},
		{2, 3, 10 * time.Minute, nil, 64, 100},
		{3, 2, 2 * time.Minute, []graph.EdgeType{graph.Retweet, graph.Favorite}, 8, 3},
		{4, 4, 30 * time.Minute, []graph.EdgeType{graph.Follow, graph.Retweet}, 16, 0},
	}
	for _, c := range cases {
		oracle := NewDiamond(DiamondConfig{
			Name: "m", K: c.k, Window: c.window, EdgeTypes: c.types,
			MaxFanout: c.fanout, MaxCandidates: c.maxCand,
		})
		planned, err := NewPlannedProgram("m", opsForDiamond(c.k, c.window, c.types, c.fanout, c.maxCand))
		if err != nil {
			t.Fatal(err)
		}
		ctx, stream := randomWorld(c.seed, 50, 400, 3000)
		emitted := 0
		for i, e := range stream {
			ctx.D.Insert(e)
			want := oracle.OnEdge(ctx, e)
			got := planned.OnEdge(ctx, e)
			sameCandidates(t, i, want, got)
			emitted += len(want)
		}
		if emitted == 0 {
			t.Fatalf("seed %d: vacuous run, no candidates emitted", c.seed)
		}
	}
}

// TestPlannedTriggerOnlyMatchesFreshFollow checks the pruned k=1 plan
// against the FreshFollow oracle on follow-only triggers.
func TestPlannedTriggerOnlyMatchesFreshFollow(t *testing.T) {
	oracle := &FreshFollow{MaxCandidates: 5}
	planned, err := NewPlannedProgram("fresh-follow", opsForTriggerOnly(nil, 5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, stream := randomWorld(7, 40, 300, 2000)
	emitted := 0
	for i, e := range stream {
		ctx.D.Insert(e)
		want := oracle.OnEdge(ctx, e)
		got := planned.OnEdge(ctx, e)
		sameCandidates(t, i, want, got)
		emitted += len(want)
	}
	if emitted == 0 {
		t.Fatal("vacuous run")
	}
}

// TestPlannedGroupMatchesIndependent proves the shared-prefix executor is
// candidate-for-candidate identical to running each member independently,
// across thresholds, emission caps, and chain depths.
func TestPlannedGroupMatchesIndependent(t *testing.T) {
	window := 10 * time.Minute
	types := []graph.EdgeType{graph.Follow, graph.Retweet}
	mk := func(name string, ops []Op) *PlannedProgram {
		p, err := NewPlannedProgram(name, ops)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	chainOps := opsForDiamond(2, window, types, 32, 0)
	chainOps = append(chainOps[:4:4], Op{Kind: OpExpand, Limit: 64}, chainOps[4])
	members := []*PlannedProgram{
		mk("k3", opsForDiamond(3, window, types, 32, 0)),
		mk("k2", opsForDiamond(2, window, types, 32, 10)),
		mk("k2b", opsForDiamond(2, window, types, 32, 0)),
		mk("k4", opsForDiamond(4, window, types, 32, 2)),
		mk("deep", chainOps),
	}
	g, err := NewPlannedGroup(members)
	if err != nil {
		t.Fatal(err)
	}
	slots := []int{0, 1, 2, 3, 4}
	ctx, stream := randomWorld(11, 40, 500, 3000)
	s := GetScratch()
	defer PutScratch(s)
	res := make([][]Candidate, len(members))
	emitted := 0
	for i, e := range stream {
		ctx.D.Insert(e)
		for j := range res {
			res[j] = nil
		}
		g.DetectInto(ctx, e, s, res, slots)
		for j, m := range members {
			want := m.OnEdge(ctx, e)
			if len(want) == 0 && len(res[j]) == 0 {
				continue
			}
			sameCandidates(t, i, want, res[j])
			emitted += len(want)
		}
	}
	if emitted == 0 {
		t.Fatal("vacuous run")
	}
}

// TestPlannedGroupRejectsMixedKeys pins the grouping precondition.
func TestPlannedGroupRejectsMixedKeys(t *testing.T) {
	a, _ := NewPlannedProgram("a", opsForDiamond(2, time.Minute, nil, 8, 0))
	b, _ := NewPlannedProgram("b", opsForDiamond(2, 2*time.Minute, nil, 8, 0))
	if _, err := NewPlannedGroup([]*PlannedProgram{a, b}); err == nil {
		t.Fatal("mixed windows must not group")
	}
}

// TestPlannedProgramValidation exercises NewPlannedProgram's shape checks.
func TestPlannedProgramValidation(t *testing.T) {
	valid := opsForDiamond(2, time.Minute, nil, 0, 0)
	if _, err := NewPlannedProgram("", valid); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewPlannedProgram("x", valid[1:]); err == nil {
		t.Fatal("missing filter accepted")
	}
	if _, err := NewPlannedProgram("x", valid[:4]); err == nil {
		t.Fatal("missing emit accepted")
	}
	noTypes := append([]Op(nil), valid...)
	noTypes[0].WindowMS = [NumEdgeTypes]int64{}
	if _, err := NewPlannedProgram("x", noTypes); err == nil {
		t.Fatal("typeless filter accepted")
	}
	deep := append(append([]Op(nil), valid[:4]...),
		Op{Kind: OpExpand}, Op{Kind: OpExpand}, Op{Kind: OpExpand}, valid[4])
	if _, err := NewPlannedProgram("x", deep); err == nil {
		t.Fatal("3 expansions accepted")
	}
}
