package motif

import (
	"time"

	"motifstream/internal/graph"
)

// TriangleClosure is an additional motif program of the kind the paper's
// conclusion anticipates: "beyond the 'diamond' motif there may exist
// others that are useful for generating recommendations — these may be
// implemented as additional programs that use the graph infrastructure."
//
// The shape is a co-action triangle: when B acts on C, every user A who
// *also* acted on C recently shares a demonstrated interest with B, so B
// itself is recommended to A ("you and B both engaged with C — follow B").
// The closing A→B edge would complete the triangle A→C←B, A→B.
//
// Unlike the diamond, the candidate recipients come from D (recent
// co-actors), and S is used in reverse: to suppress A's that already
// follow B. MinActorFollowers additionally gates on B's audience size so
// only accounts with some standing get recommended.
type TriangleClosure struct {
	// Window is the co-action freshness period.
	Window time.Duration
	// MaxCoActors caps the recent co-actors considered per event.
	// Zero selects 64.
	MaxCoActors int
	// MinActorFollowers requires the acting B to have at least this many
	// followers in S before it is worth recommending. Zero accepts all.
	MinActorFollowers int
	// MaxCandidates caps emissions per event; 0 means unlimited.
	MaxCandidates int
}

// NewTriangleClosure validates and returns the program.
func NewTriangleClosure(window time.Duration) *TriangleClosure {
	if window <= 0 {
		panic("motif: triangle closure requires a positive window")
	}
	return &TriangleClosure{Window: window}
}

// Name implements Program.
func (t *TriangleClosure) Name() string { return "triangle-closure" }

// OnEdge implements Program: on B→C, recommend B to recent co-actors of C.
// It wraps OnEdgeScratch with pooled scratch.
func (t *TriangleClosure) OnEdge(ctx *Context, e graph.Edge) []Candidate {
	s := GetScratch()
	out := t.OnEdgeScratch(ctx, e, s)
	PutScratch(s)
	return out
}

// OnEdgeScratch implements ScratchProgram; only emitted candidates are
// freshly allocated.
func (t *TriangleClosure) OnEdgeScratch(ctx *Context, e graph.Edge, s *Scratch) []Candidate {
	if t.Window <= 0 {
		return nil
	}
	if t.MinActorFollowers > 0 && len(ctx.S.Followers(e.Src)) < t.MinActorFollowers {
		return nil
	}
	limit := t.MaxCoActors
	if limit <= 0 {
		limit = 64
	}
	since := e.TS - t.Window.Milliseconds()
	recent := ctx.D.RecentLimitInto(s.recent[:0], e.Dst, since, limit)
	s.recent = recent
	if len(recent) == 0 {
		return nil
	}
	out := make([]Candidate, 0, len(recent))
	for _, in := range recent {
		a := in.B // a co-actor of C plays the A role here
		if a == e.Src || a == e.Dst {
			continue
		}
		if ctx.Follows != nil && ctx.Follows(a, e.Src) {
			continue // A already follows B
		}
		out = append(out, Candidate{
			User:         a,
			Item:         e.Src, // recommend the actor B itself
			Via:          []graph.VertexID{e.Dst},
			Trigger:      e,
			DetectedAtMS: e.TS,
			Program:      t.Name(),
			// Fresher co-action scores higher, normalized to (0, 1].
			Score: 1 - float64(e.TS-in.TS)/float64(t.Window.Milliseconds()+1),
		})
		if t.MaxCandidates > 0 && len(out) >= t.MaxCandidates {
			break
		}
	}
	return out
}
