package motif

import (
	"testing"
	"time"

	"motifstream/internal/graph"
)

func TestTriangleClosureBasic(t *testing.T) {
	// Users 1 and 2 retweet tweet 500; then user 3 retweets it. Users 1
	// and 2 should be offered user 3 ("you both engaged with 500").
	ctx := newCtx(t, nil, false, time.Hour)
	p := NewTriangleClosure(10 * time.Minute)
	t0 := int64(1_000_000)
	apply(ctx, p, graph.Edge{Src: 1, Dst: 500, Type: graph.Retweet, TS: t0})
	apply(ctx, p, graph.Edge{Src: 2, Dst: 500, Type: graph.Retweet, TS: t0 + 1_000})
	got := apply(ctx, p, graph.Edge{Src: 3, Dst: 500, Type: graph.Retweet, TS: t0 + 2_000})
	if len(got) != 2 {
		t.Fatalf("candidates = %v, want co-actors 1 and 2", got)
	}
	users := map[graph.VertexID]bool{}
	for _, c := range got {
		users[c.User] = true
		if c.Item != 3 {
			t.Fatalf("recommended item = %d, want the actor 3", c.Item)
		}
		if c.Program != "triangle-closure" {
			t.Fatalf("program = %q", c.Program)
		}
		if c.Score <= 0 || c.Score > 1 {
			t.Fatalf("score = %f out of (0,1]", c.Score)
		}
		if len(c.Via) != 1 || c.Via[0] != 500 {
			t.Fatalf("via = %v, want the shared item", c.Via)
		}
	}
	if !users[1] || !users[2] {
		t.Fatalf("recipients = %v", users)
	}
}

func TestTriangleClosureFreshnessScoring(t *testing.T) {
	ctx := newCtx(t, nil, false, time.Hour)
	p := NewTriangleClosure(10 * time.Minute)
	t0 := int64(1_000_000)
	apply(ctx, p, graph.Edge{Src: 1, Dst: 500, Type: graph.Retweet, TS: t0})
	apply(ctx, p, graph.Edge{Src: 2, Dst: 500, Type: graph.Retweet, TS: t0 + 300_000})
	got := apply(ctx, p, graph.Edge{Src: 3, Dst: 500, Type: graph.Retweet, TS: t0 + 400_000})
	var s1, s2 float64
	for _, c := range got {
		switch c.User {
		case 1:
			s1 = c.Score
		case 2:
			s2 = c.Score
		}
	}
	if s2 <= s1 {
		t.Fatalf("fresher co-actor should score higher: s1=%f s2=%f", s1, s2)
	}
}

func TestTriangleClosureWindowExpiry(t *testing.T) {
	ctx := newCtx(t, nil, false, time.Hour)
	p := NewTriangleClosure(time.Minute)
	t0 := int64(1_000_000)
	apply(ctx, p, graph.Edge{Src: 1, Dst: 500, Type: graph.Retweet, TS: t0})
	got := apply(ctx, p, graph.Edge{Src: 3, Dst: 500, Type: graph.Retweet, TS: t0 + 120_000})
	if len(got) != 0 {
		t.Fatalf("expired co-action recommended: %v", got)
	}
}

func TestTriangleClosureSuppression(t *testing.T) {
	// User 1 already follows actor 3: no candidate.
	static := []graph.Edge{{Src: 1, Dst: 3}}
	ctx := newCtx(t, static, true, time.Hour)
	p := NewTriangleClosure(10 * time.Minute)
	t0 := int64(1_000_000)
	apply(ctx, p, graph.Edge{Src: 1, Dst: 500, Type: graph.Retweet, TS: t0})
	got := apply(ctx, p, graph.Edge{Src: 3, Dst: 500, Type: graph.Retweet, TS: t0 + 1})
	if len(got) != 0 {
		t.Fatalf("known follow recommended: %v", got)
	}
}

func TestTriangleClosureMinFollowers(t *testing.T) {
	// Actor 3 has no followers in S: gated out by MinActorFollowers.
	ctx := newCtx(t, nil, false, time.Hour)
	p := NewTriangleClosure(10 * time.Minute)
	p.MinActorFollowers = 1
	t0 := int64(1_000_000)
	apply(ctx, p, graph.Edge{Src: 1, Dst: 500, Type: graph.Retweet, TS: t0})
	if got := apply(ctx, p, graph.Edge{Src: 3, Dst: 500, Type: graph.Retweet, TS: t0 + 1}); len(got) != 0 {
		t.Fatalf("unknown actor recommended: %v", got)
	}

	// With followers, the gate opens.
	ctx2 := newCtx(t, []graph.Edge{{Src: 9, Dst: 3}}, false, time.Hour)
	apply(ctx2, p, graph.Edge{Src: 1, Dst: 500, Type: graph.Retweet, TS: t0})
	if got := apply(ctx2, p, graph.Edge{Src: 3, Dst: 500, Type: graph.Retweet, TS: t0 + 1}); len(got) != 1 {
		t.Fatalf("followed actor not recommended: %v", got)
	}
}

func TestTriangleClosureMaxCandidates(t *testing.T) {
	ctx := newCtx(t, nil, false, time.Hour)
	p := NewTriangleClosure(10 * time.Minute)
	p.MaxCandidates = 2
	t0 := int64(1_000_000)
	for i := graph.VertexID(1); i <= 5; i++ {
		apply(ctx, p, graph.Edge{Src: i, Dst: 500, Type: graph.Retweet, TS: t0 + int64(i)})
	}
	got := apply(ctx, p, graph.Edge{Src: 9, Dst: 500, Type: graph.Retweet, TS: t0 + 100})
	if len(got) != 2 {
		t.Fatalf("MaxCandidates not honored: %d", len(got))
	}
}

func TestNewTriangleClosurePanics(t *testing.T) {
	assertPanics(t, func() { NewTriangleClosure(0) })
}
