package motifdsl

import (
	"fmt"
	"strings"
	"time"
)

// Spec is the parsed form of one motif declaration.
type Spec struct {
	// Name is the quoted motif name.
	Name string
	// Matches are the declared hops, in source order.
	Matches []MatchClause
	// Wheres are the support constraints.
	Wheres []WhereClause
	// Emit is the candidate shape. Exactly one per spec.
	Emit EmitClause
	// Limits are optional plan hints (fanout, candidates).
	Limits []LimitClause
	// Pos is where the declaration starts.
	Pos Pos
}

// HopKind distinguishes static (S-resolved) from dynamic (stream) hops.
type HopKind uint8

const (
	// StaticHop is resolved against the offline-built S structure ('->').
	StaticHop HopKind = iota
	// DynamicHop is matched against the live edge stream ('=>').
	DynamicHop
)

// String names the hop kind.
func (k HopKind) String() string {
	if k == StaticHop {
		return "static"
	}
	return "dynamic"
}

// MatchClause is one "match X -> Y" or "match X =[types]=> Y within d"
// declaration.
type MatchClause struct {
	From, To string
	Kind     HopKind
	// EdgeTypes restricts a dynamic hop; empty means follow-only.
	EdgeTypes []string
	// Window is the freshness window for a dynamic hop.
	Window time.Duration
	Pos    Pos
}

// String renders the clause approximately as written.
func (m MatchClause) String() string {
	if m.Kind == StaticHop {
		return fmt.Sprintf("match %s -> %s", m.From, m.To)
	}
	arrow := "=>"
	if len(m.EdgeTypes) > 0 {
		arrow = fmt.Sprintf("=[%s]=>", strings.Join(m.EdgeTypes, ","))
	}
	s := fmt.Sprintf("match %s %s %s", m.From, arrow, m.To)
	if m.Window > 0 {
		s += fmt.Sprintf(" within %s", m.Window)
	}
	return s
}

// WhereClause is one "where count(X) >= N" constraint.
type WhereClause struct {
	Var string
	Min int
	Pos Pos
}

// String renders the clause.
func (w WhereClause) String() string {
	return fmt.Sprintf("where count(%s) >= %d", w.Var, w.Min)
}

// EmitClause is the "emit ITEM to USER via SUPPORT" declaration.
type EmitClause struct {
	Item, User, Via string
	Pos             Pos
}

// String renders the clause.
func (e EmitClause) String() string {
	s := fmt.Sprintf("emit %s to %s", e.Item, e.User)
	if e.Via != "" {
		s += " via " + e.Via
	}
	return s
}

// LimitClause is a plan hint: "limit fanout N" or "limit candidates N".
type LimitClause struct {
	What string // "fanout" or "candidates"
	N    int
	Pos  Pos
}

// String renders the clause.
func (l LimitClause) String() string {
	return fmt.Sprintf("limit %s %d", l.What, l.N)
}

// String renders the whole spec in canonical form.
func (s *Spec) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "motif %q {\n", s.Name)
	for _, m := range s.Matches {
		fmt.Fprintf(&sb, "    %s;\n", m)
	}
	for _, w := range s.Wheres {
		fmt.Fprintf(&sb, "    %s;\n", w)
	}
	fmt.Fprintf(&sb, "    %s;\n", s.Emit)
	for _, l := range s.Limits {
		fmt.Fprintf(&sb, "    %s;\n", l)
	}
	sb.WriteString("}\n")
	return sb.String()
}
