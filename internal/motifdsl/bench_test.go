package motifdsl

import "testing"

// BenchmarkCompile measures the full lex → parse → plan pipeline; it runs
// once per deployment, off the hot path, so even milliseconds would be
// fine — it is nanoseconds.
func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(validDiamond); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Lex(validDiamond); err != nil {
			b.Fatal(err)
		}
	}
}
