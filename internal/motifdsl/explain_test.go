package motifdsl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"motifstream/internal/graph"
)

// TestExplainGolden pins the EXPLAIN output for one plan of each shape.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/motifdsl -run Golden.
func TestExplainGolden(t *testing.T) {
	cases := []struct {
		file, src string
	}{
		{"diamond.golden", validDiamond},
		{"k1_broadcast.golden", `
motif "broadcast" {
    match A -> B;
    match B =[follow]=> C;
    where count(B) >= 1;
    emit C to A;
    limit candidates 10;
}`},
		{"content_pertype.golden", `
motif "content" {
    match A -> B;
    match B =[retweet]=> C within 5m;
    match B =[favorite]=> C within 30m;
    where count(B) >= 2;
    emit C to A via B;
    limit fanout 64;
}`},
		{"chain_depth2.golden", `
motif "deep" {
    match A -> M;
    match M -> B;
    match B => C;
    where count(B) >= 2;
    emit C to A;
}`},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			spec, err := ParseOne(c.src)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := PlanSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			got := plan.Describe()
			path := filepath.Join("testdata", c.file)
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_GOLDEN=1): %v", err)
			}
			if got != string(want) {
				t.Fatalf("EXPLAIN drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", c.file, got, want)
			}
		})
	}
}

// TestExplainLiveStats checks that a warmed live view switches the
// estimate provenance from cold-start defaults to live quantiles.
func TestExplainLiveStats(t *testing.T) {
	spec, err := ParseOne(validDiamond)
	if err != nil {
		t.Fatal(err)
	}
	var live graph.LiveDegreeStats
	for i := 0; i < 200; i++ {
		live.DynIn.Observe(40)
		live.Static.Observe(100)
	}
	plan, err := PlanSpecLive(spec, &live)
	if err != nil {
		t.Fatal(err)
	}
	desc := plan.Describe()
	if !strings.Contains(desc, "live p90 in-degree") || !strings.Contains(desc, "live p50 list length") {
		t.Fatalf("EXPLAIN does not cite live stats:\n%s", desc)
	}
	// Under-sampled views keep the cold-start annotation.
	var cold graph.LiveDegreeStats
	cold.DynIn.Observe(1)
	plan2, err := PlanSpecLive(spec, &cold)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan2.Describe(), "cold-start default") {
		t.Fatalf("EXPLAIN should fall back to cold-start defaults:\n%s", plan2.Describe())
	}
}
