package motifdsl

import (
	"strings"
	"testing"
)

// FuzzCompile asserts that arbitrary source can never panic the lexer,
// parser, or planner — it either compiles or returns an error. When a
// plan is produced, Describe must render without panicking too.
func FuzzCompile(f *testing.F) {
	f.Add(validDiamond)
	f.Add(`motif "b" { match A -> B; match B => C; where count(B) >= 1; emit C to A; }`)
	f.Add(`motif "c" { match A -> M; match M -> B; match B =[retweet]=> C within 5m; match B =[favorite]=> C within 30m; where count(B) >= 2; emit C to A; limit fanout 64; limit candidates 9; }`)
	f.Add(`motif "x" { match A => B; }`)
	f.Add(`motif "" {} motif`)
	f.Add("# comment only\n// another")
	f.Add(`motif "u" { match A -> B; match B =[poke]=> C within -1m; where count(B) >= 0; emit C to A via Q; }`)
	f.Fuzz(func(t *testing.T, src string) {
		specs, err := Parse(src)
		if err != nil {
			return
		}
		for _, s := range specs {
			plan, err := PlanSpec(s)
			if err != nil {
				continue
			}
			desc := plan.Describe()
			if !strings.Contains(desc, "plan") {
				t.Fatalf("EXPLAIN lost its header: %q", desc)
			}
			if plan.Program() == nil {
				t.Fatal("plan without a program")
			}
		}
	})
}
