package motifdsl

import (
	"strings"
	"unicode"
)

// lexer produces tokens from a source string. It is a hand-written scanner
// with one rune of lookahead; the language is regular enough that no
// buffering is needed.
type lexer struct {
	src  string
	pos  int // byte offset
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input; it returns the first lexical error
// encountered.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) here() Pos { return Pos{Line: l.line, Col: l.col} }

// skipSpace consumes whitespace and comments. Both '#' and '//' introduce
// line comments.
func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#', c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (Token, error) {
	l.skipSpace()
	pos := l.here()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case c == '{':
		l.advance()
		return Token{Kind: TokLBrace, Text: "{", Pos: pos}, nil
	case c == '}':
		l.advance()
		return Token{Kind: TokRBrace, Text: "}", Pos: pos}, nil
	case c == '(':
		l.advance()
		return Token{Kind: TokLParen, Text: "(", Pos: pos}, nil
	case c == ')':
		l.advance()
		return Token{Kind: TokRParen, Text: ")", Pos: pos}, nil
	case c == '[':
		l.advance()
		return Token{Kind: TokLBracket, Text: "[", Pos: pos}, nil
	case c == ']':
		l.advance()
		return Token{Kind: TokRBracket, Text: "]", Pos: pos}, nil
	case c == ';':
		l.advance()
		return Token{Kind: TokSemi, Text: ";", Pos: pos}, nil
	case c == ',':
		l.advance()
		return Token{Kind: TokComma, Text: ",", Pos: pos}, nil
	case c == '-':
		l.advance()
		if l.peek() != '>' {
			return Token{}, errf(pos, "expected '->' after '-'")
		}
		l.advance()
		return Token{Kind: TokArrow, Text: "->", Pos: pos}, nil
	case c == '=':
		l.advance()
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: TokDynArrow, Text: "=>", Pos: pos}, nil
		}
		// Bare '=' opens the typed dynamic arrow form =[t1,t2]=>; the
		// parser assembles the pieces.
		return Token{Kind: TokEq, Text: "=", Pos: pos}, nil
	case c == '>':
		l.advance()
		if l.peek() != '=' {
			return Token{}, errf(pos, "expected '>=' after '>'")
		}
		l.advance()
		return Token{Kind: TokGE, Text: ">=", Pos: pos}, nil
	case c == '"':
		return l.lexString(pos)
	case unicode.IsDigit(rune(c)):
		return l.lexNumber(pos)
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: pos}, nil
	default:
		return Token{}, errf(pos, "unexpected character %q", string(rune(c)))
	}
}

func (l *lexer) lexString(pos Pos) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, errf(pos, "unterminated string")
		}
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: TokString, Text: sb.String(), Pos: pos}, nil
		case '\n':
			return Token{}, errf(pos, "newline in string")
		case '\\':
			if l.pos >= len(l.src) {
				return Token{}, errf(pos, "unterminated escape")
			}
			e := l.advance()
			switch e {
			case '"', '\\':
				sb.WriteByte(e)
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				return Token{}, errf(pos, "unknown escape \\%s", string(rune(e)))
			}
		default:
			sb.WriteByte(c)
		}
	}
}

// lexNumber scans an integer, or a duration if a unit suffix follows
// (ns, us, µs, ms, s, m, h — the time.ParseDuration units).
func (l *lexer) lexNumber(pos Pos) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.peek())) {
		l.advance()
	}
	// A duration may contain a fractional part and multiple unit groups
	// (e.g. 1h30m, 1.5s). Accept [0-9.]+ followed by unit letters,
	// repeated.
	isUnitChar := func(c byte) bool {
		return c == 'n' || c == 'u' || c == 'm' || c == 's' || c == 'h'
	}
	if l.pos < len(l.src) && (l.peek() == '.' || isUnitChar(l.peek())) {
		for l.pos < len(l.src) {
			c := l.peek()
			if unicode.IsDigit(rune(c)) || c == '.' || isUnitChar(c) {
				l.advance()
				continue
			}
			break
		}
		text := l.src[start:l.pos]
		// All-digit means it never had a unit after all.
		if strings.IndexFunc(text, func(r rune) bool { return !unicode.IsDigit(r) }) == -1 {
			return Token{Kind: TokInt, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokDuration, Text: text, Pos: pos}, nil
	}
	return Token{Kind: TokInt, Text: l.src[start:l.pos], Pos: pos}, nil
}
