package motifdsl

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex(`motif "x" { } ( ) [ ] ; , -> => >= =`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokIdent, TokString, TokLBrace, TokRBrace, TokLParen, TokRParen,
		TokLBracket, TokRBracket, TokSemi, TokComma, TokArrow, TokDynArrow,
		TokGE, TokEq, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbersAndDurations(t *testing.T) {
	toks, err := Lex(`123 10m 250ms 1h30m 1.5s 42`)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokInt, "123"},
		{TokDuration, "10m"},
		{TokDuration, "250ms"},
		{TokDuration, "1h30m"},
		{TokDuration, "1.5s"},
		{TokInt, "42"},
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Fatalf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a # line comment\nb // another\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Text != "c" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`"a\"b\\c\nd\te"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\"b\\c\nd\te" {
		t.Fatalf("string = %q", toks[0].Text)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Fatalf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Fatalf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		`"newline
		in string"`,
		`"bad \q escape"`,
		`- alone`,
		`> alone`,
		`@`,
	} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexIdentWithDashAndDigits(t *testing.T) {
	toks, err := Lex("who-to-follow B2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "who-to-follow" || toks[1].Text != "B2" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestErrorRendering(t *testing.T) {
	err := errf(Pos{3, 7}, "bad %s", "thing")
	want := "motifdsl: 3:7: bad thing"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestTokenKindStrings(t *testing.T) {
	for k := TokEOF; k <= TokEq; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty String()", k)
		}
	}
	if TokenKind(200).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}
