package motifdsl

import (
	"strconv"
	"strings"
	"time"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses one or more motif declarations.
func Parse(src string) ([]*Spec, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var specs []*Spec
	for p.cur().Kind != TokEOF {
		s, err := p.parseSpec()
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		return nil, errf(Pos{1, 1}, "no motif declarations found")
	}
	return specs, nil
}

// ParseOne parses exactly one declaration and rejects trailing input.
func ParseOne(src string) (*Spec, error) {
	specs, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(specs) != 1 {
		return nil, errf(specs[1].Pos, "expected a single motif declaration, found %d", len(specs))
	}
	return specs[0], nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s %q", k, t.Kind, t.Text)
	}
	return p.next(), nil
}

// expectKeyword consumes an identifier matching word (case-insensitive).
func (p *parser) expectKeyword(word string) (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent || !strings.EqualFold(t.Text, word) {
		return t, errf(t.Pos, "expected keyword %q, found %s %q", word, t.Kind, t.Text)
	}
	return p.next(), nil
}

// atKeyword reports whether the current token is the given keyword.
func (p *parser) atKeyword(word string) bool {
	t := p.cur()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, word)
}

func (p *parser) parseSpec() (*Spec, error) {
	start, err := p.expectKeyword("motif")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokString)
	if err != nil {
		return nil, err
	}
	if name.Text == "" {
		return nil, errf(name.Pos, "motif name must be non-empty")
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	spec := &Spec{Name: name.Text, Pos: start.Pos}
	haveEmit := false
	for {
		t := p.cur()
		if t.Kind == TokRBrace {
			p.next()
			break
		}
		switch {
		case p.atKeyword("match"):
			m, err := p.parseMatch()
			if err != nil {
				return nil, err
			}
			spec.Matches = append(spec.Matches, m)
		case p.atKeyword("where"):
			w, err := p.parseWhere()
			if err != nil {
				return nil, err
			}
			spec.Wheres = append(spec.Wheres, w)
		case p.atKeyword("emit"):
			if haveEmit {
				return nil, errf(t.Pos, "duplicate emit clause")
			}
			e, err := p.parseEmit()
			if err != nil {
				return nil, err
			}
			spec.Emit = e
			haveEmit = true
		case p.atKeyword("limit"):
			l, err := p.parseLimit()
			if err != nil {
				return nil, err
			}
			spec.Limits = append(spec.Limits, l)
		case t.Kind == TokEOF:
			return nil, errf(t.Pos, "unexpected end of input inside motif %q (missing '}')", spec.Name)
		default:
			return nil, errf(t.Pos, "expected match/where/emit/limit clause, found %s %q", t.Kind, t.Text)
		}
	}
	if !haveEmit {
		return nil, errf(spec.Pos, "motif %q has no emit clause", spec.Name)
	}
	return spec, nil
}

// parseMatch parses:
//
//	match FROM -> TO ;
//	match FROM => TO [within DUR] ;
//	match FROM =[t1,t2]=> TO [within DUR] ;
func (p *parser) parseMatch() (MatchClause, error) {
	kw, err := p.expectKeyword("match")
	if err != nil {
		return MatchClause{}, err
	}
	from, err := p.expect(TokIdent)
	if err != nil {
		return MatchClause{}, err
	}
	m := MatchClause{From: from.Text, Pos: kw.Pos}
	switch t := p.cur(); t.Kind {
	case TokArrow:
		p.next()
		m.Kind = StaticHop
	case TokDynArrow:
		p.next()
		m.Kind = DynamicHop
	case TokEq:
		// =[t1,t2]=> typed dynamic arrow.
		p.next()
		if _, err := p.expect(TokLBracket); err != nil {
			return MatchClause{}, err
		}
		for {
			ty, err := p.expect(TokIdent)
			if err != nil {
				return MatchClause{}, err
			}
			m.EdgeTypes = append(m.EdgeTypes, strings.ToLower(ty.Text))
			if p.cur().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return MatchClause{}, err
		}
		if _, err := p.expect(TokDynArrow); err != nil {
			return MatchClause{}, err
		}
		m.Kind = DynamicHop
	default:
		return MatchClause{}, errf(t.Pos, "expected '->', '=>' or '=[types]=>' after %q", from.Text)
	}
	to, err := p.expect(TokIdent)
	if err != nil {
		return MatchClause{}, err
	}
	m.To = to.Text
	if p.atKeyword("within") {
		p.next()
		d, err := p.parseDuration()
		if err != nil {
			return MatchClause{}, err
		}
		if m.Kind == StaticHop {
			return MatchClause{}, errf(kw.Pos, "'within' applies only to dynamic hops")
		}
		m.Window = d
	}
	if _, err := p.expect(TokSemi); err != nil {
		return MatchClause{}, err
	}
	if m.From == m.To {
		return MatchClause{}, errf(kw.Pos, "hop endpoints must differ, got %s -> %s", m.From, m.To)
	}
	return m, nil
}

// parseWhere parses: where count ( VAR ) >= INT ;
func (p *parser) parseWhere() (WhereClause, error) {
	kw, err := p.expectKeyword("where")
	if err != nil {
		return WhereClause{}, err
	}
	if _, err := p.expectKeyword("count"); err != nil {
		return WhereClause{}, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return WhereClause{}, err
	}
	v, err := p.expect(TokIdent)
	if err != nil {
		return WhereClause{}, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return WhereClause{}, err
	}
	if _, err := p.expect(TokGE); err != nil {
		return WhereClause{}, err
	}
	n, err := p.parseInt()
	if err != nil {
		return WhereClause{}, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return WhereClause{}, err
	}
	if n < 1 {
		return WhereClause{}, errf(kw.Pos, "count threshold must be >= 1, got %d", n)
	}
	return WhereClause{Var: v.Text, Min: n, Pos: kw.Pos}, nil
}

// parseEmit parses: emit ITEM to USER [via SUPPORT] ;
func (p *parser) parseEmit() (EmitClause, error) {
	kw, err := p.expectKeyword("emit")
	if err != nil {
		return EmitClause{}, err
	}
	item, err := p.expect(TokIdent)
	if err != nil {
		return EmitClause{}, err
	}
	if _, err := p.expectKeyword("to"); err != nil {
		return EmitClause{}, err
	}
	user, err := p.expect(TokIdent)
	if err != nil {
		return EmitClause{}, err
	}
	e := EmitClause{Item: item.Text, User: user.Text, Pos: kw.Pos}
	if p.atKeyword("via") {
		p.next()
		via, err := p.expect(TokIdent)
		if err != nil {
			return EmitClause{}, err
		}
		e.Via = via.Text
	}
	if _, err := p.expect(TokSemi); err != nil {
		return EmitClause{}, err
	}
	return e, nil
}

// parseLimit parses: limit fanout INT ; | limit candidates INT ;
func (p *parser) parseLimit() (LimitClause, error) {
	kw, err := p.expectKeyword("limit")
	if err != nil {
		return LimitClause{}, err
	}
	what, err := p.expect(TokIdent)
	if err != nil {
		return LimitClause{}, err
	}
	w := strings.ToLower(what.Text)
	if w != "fanout" && w != "candidates" {
		return LimitClause{}, errf(what.Pos, "unknown limit %q (want fanout or candidates)", what.Text)
	}
	n, err := p.parseInt()
	if err != nil {
		return LimitClause{}, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return LimitClause{}, err
	}
	if n < 1 {
		return LimitClause{}, errf(kw.Pos, "limit must be >= 1, got %d", n)
	}
	return LimitClause{What: w, N: n, Pos: kw.Pos}, nil
}

func (p *parser) parseInt() (int, error) {
	t, err := p.expect(TokInt)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, errf(t.Pos, "bad integer %q: %v", t.Text, err)
	}
	return n, nil
}

func (p *parser) parseDuration() (time.Duration, error) {
	t := p.cur()
	if t.Kind != TokDuration {
		return 0, errf(t.Pos, "expected duration (e.g. 10m, 30s), found %s %q", t.Kind, t.Text)
	}
	p.next()
	d, err := time.ParseDuration(t.Text)
	if err != nil {
		return 0, errf(t.Pos, "bad duration %q: %v", t.Text, err)
	}
	if d <= 0 {
		return 0, errf(t.Pos, "duration must be positive, got %s", d)
	}
	return d, nil
}
