package motifdsl

import (
	"strings"
	"testing"
	"time"
)

const validDiamond = `
motif "diamond" {
    match A -> B;
    match B =[follow]=> C within 10m;
    where count(B) >= 3;
    emit C to A via B;
    limit fanout 64;
    limit candidates 100;
}`

func TestParseValidDiamond(t *testing.T) {
	spec, err := ParseOne(validDiamond)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "diamond" {
		t.Fatalf("name = %q", spec.Name)
	}
	if len(spec.Matches) != 2 {
		t.Fatalf("%d matches", len(spec.Matches))
	}
	m0, m1 := spec.Matches[0], spec.Matches[1]
	if m0.Kind != StaticHop || m0.From != "A" || m0.To != "B" {
		t.Fatalf("static hop = %+v", m0)
	}
	if m1.Kind != DynamicHop || m1.From != "B" || m1.To != "C" {
		t.Fatalf("dynamic hop = %+v", m1)
	}
	if m1.Window != 10*time.Minute {
		t.Fatalf("window = %v", m1.Window)
	}
	if len(m1.EdgeTypes) != 1 || m1.EdgeTypes[0] != "follow" {
		t.Fatalf("edge types = %v", m1.EdgeTypes)
	}
	if len(spec.Wheres) != 1 || spec.Wheres[0].Var != "B" || spec.Wheres[0].Min != 3 {
		t.Fatalf("wheres = %+v", spec.Wheres)
	}
	if spec.Emit.Item != "C" || spec.Emit.User != "A" || spec.Emit.Via != "B" {
		t.Fatalf("emit = %+v", spec.Emit)
	}
	if len(spec.Limits) != 2 {
		t.Fatalf("limits = %+v", spec.Limits)
	}
}

func TestParseUntypedDynamicHop(t *testing.T) {
	spec, err := ParseOne(`
motif "x" {
    match A -> B;
    match B => C;
    where count(B) >= 2;
    emit C to A;
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Matches[1]
	if m.Kind != DynamicHop || len(m.EdgeTypes) != 0 || m.Window != 0 {
		t.Fatalf("hop = %+v", m)
	}
	if spec.Emit.Via != "" {
		t.Fatal("emit via should be empty")
	}
}

func TestParseMultipleEdgeTypes(t *testing.T) {
	spec, err := ParseOne(`
motif "content" {
    match A -> B;
    match B =[retweet, favorite]=> C within 5m;
    where count(B) >= 3;
    emit C to A via B;
}`)
	if err != nil {
		t.Fatal(err)
	}
	types := spec.Matches[1].EdgeTypes
	if len(types) != 2 || types[0] != "retweet" || types[1] != "favorite" {
		t.Fatalf("types = %v", types)
	}
}

func TestParseMultipleDeclarations(t *testing.T) {
	specs, err := Parse(validDiamond + `
motif "second" {
    match A -> B;
    match B => C;
    where count(B) >= 2;
    emit C to A;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[1].Name != "second" {
		t.Fatalf("specs = %v", specs)
	}
}

func TestParseOneRejectsMultiple(t *testing.T) {
	if _, err := ParseOne(validDiamond + validDiamond); err == nil {
		t.Fatal("two declarations accepted by ParseOne")
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	_, err := ParseOne(`
MOTIF "x" {
    MATCH A -> B;
    Match B => C Within 1m;
    WHERE COUNT(B) >= 2;
    EMIT C TO A VIA B;
    LIMIT FANOUT 8;
}`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", "", "no motif"},
		{"no name", `motif { }`, "expected string"},
		{"empty name", `motif "" { match A -> B; match B => C; where count(B) >= 2; emit C to A; }`, "non-empty"},
		{"missing brace", `motif "x" match A -> B;`, "'{'"},
		{"no emit", `motif "x" { match A -> B; match B => C; where count(B) >= 2; }`, "no emit"},
		{"double emit", `motif "x" { match A -> B; match B => C; where count(B) >= 2; emit C to A; emit C to A; }`, "duplicate emit"},
		{"same endpoints", `motif "x" { match A -> A; match A => C; where count(A) >= 2; emit C to A; }`, "must differ"},
		{"within on static", `motif "x" { match A -> B within 5m; match B => C; where count(B) >= 2; emit C to A; }`, "dynamic"},
		{"zero threshold", `motif "x" { match A -> B; match B => C; where count(B) >= 0; emit C to A; }`, ">= 1"},
		{"bad limit kind", `motif "x" { match A -> B; match B => C; where count(B) >= 2; emit C to A; limit widgets 5; }`, "unknown limit"},
		{"zero limit", `motif "x" { match A -> B; match B => C; where count(B) >= 2; emit C to A; limit fanout 0; }`, ">= 1"},
		{"bad clause", `motif "x" { frobnicate; }`, "expected match"},
		{"unclosed body", `motif "x" { match A -> B;`, "end of input"},
		{"missing arrow", `motif "x" { match A B; }`, "expected"},
		{"bad duration", `motif "x" { match A -> B; match B => C within 5; where count(B) >= 2; emit C to A; }`, "duration"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err.Error(), c.wantSub)
			}
		})
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	_, err := Parse("motif \"x\" {\n    bogus;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error %q lacks line 2 position", err.Error())
	}
}

func TestSpecStringRoundTrips(t *testing.T) {
	spec, err := ParseOne(validDiamond)
	if err != nil {
		t.Fatal(err)
	}
	rendered := spec.String()
	// The canonical rendering must itself parse to an equivalent spec.
	again, err := ParseOne(rendered)
	if err != nil {
		t.Fatalf("rendered spec does not parse: %v\n%s", err, rendered)
	}
	// Compare canonical renderings (positions legitimately differ).
	if again.String() != rendered {
		t.Fatalf("round trip changed the spec:\n%s\nvs\n%s", rendered, again.String())
	}
}

func TestHopKindString(t *testing.T) {
	if StaticHop.String() != "static" || DynamicHop.String() != "dynamic" {
		t.Fatal("HopKind names wrong")
	}
}
