package motifdsl

import (
	"fmt"
	"strings"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

// Plan is a validated, executable form of a Spec: a sequence of probe ops
// (motif.Op) ordered by a statistics-free greedy rule, plus the rationale
// behind the ordering for EXPLAIN. The planner generalizes the paper's
// two-hop diamond to static chains up to three hops deep, k-of-n support
// thresholds, and per-trigger-type freshness windows.
//
// There is no statistics catalog. When a live degree view is supplied
// (PlanSpecLive), probe-cost estimates come from quantiles the engine
// maintains incrementally on its own hot path; otherwise fixed cold-start
// defaults apply. Planning is a single pass over the spec — microseconds
// per motif, following the "When Greedy Beats Optimal" observation that
// greedy orderings from live degree stats beat catalog-driven optimizers
// at a tiny fraction of the planning cost.
type Plan struct {
	Spec *Spec
	// Ops is the probe-op program in execution order.
	Ops []motif.Op
	// ShareKey identifies the plan's shared probe prefix; plans with equal
	// keys execute the prefix once per event under the engine's shared
	// executor.
	ShareKey string

	prog  *motif.PlannedProgram
	depth int      // static hops between user and support
	notes []string // greedy rationale, one line each
	// estimates rendered into EXPLAIN
	estDyn, estStatic int
	estLive           bool
}

// Compile parses src and plans every declaration into runnable programs.
func Compile(src string) ([]motif.Program, error) {
	return CompileLive(src, nil)
}

// CompileLive is Compile with a live degree view guiding probe ordering.
func CompileLive(src string, live *graph.LiveDegreeStats) ([]motif.Program, error) {
	specs, err := Parse(src)
	if err != nil {
		return nil, err
	}
	out := make([]motif.Program, 0, len(specs))
	for _, s := range specs {
		p, err := PlanSpecLive(s, live)
		if err != nil {
			return nil, err
		}
		out = append(out, p.Program())
	}
	return out, nil
}

// CompileOne parses and plans exactly one declaration.
func CompileOne(src string) (motif.Program, error) {
	spec, err := ParseOne(src)
	if err != nil {
		return nil, err
	}
	p, err := PlanSpec(spec)
	if err != nil {
		return nil, err
	}
	return p.Program(), nil
}

// defaultWindow applies when a dynamic hop omits 'within'.
const defaultWindow = 10 * time.Minute

// Cold-start estimates used before the live view has enough samples: the
// p90 count of distinct in-window actors per target and the p50
// follower-list length. They only influence EXPLAIN text and probe
// ordering, never results.
const (
	coldDynIn     = 8
	coldStatic    = 16
	liveMinSample = 64
)

// defaultExpandCap bounds the survivors carried into a chain expansion
// when no 'limit fanout' is declared, keeping deep chains from exploding
// on viral items.
const defaultExpandCap = 256

// maxChainDepth caps the static chain length (expansions are depth-1).
const maxChainDepth = 3

// PlanSpec semantically checks spec and produces a Plan using cold-start
// cost estimates.
func PlanSpec(spec *Spec) (*Plan, error) { return PlanSpecLive(spec, nil) }

// PlanSpecLive plans spec, ordering probes with quantiles from the live
// degree view when it has seen enough samples.
func PlanSpecLive(spec *Spec, live *graph.LiveDegreeStats) (*Plan, error) {
	var statics []*MatchClause
	var dynamics []*MatchClause
	for i := range spec.Matches {
		m := &spec.Matches[i]
		if m.Kind == StaticHop {
			statics = append(statics, m)
		} else {
			dynamics = append(dynamics, m)
		}
	}
	if len(dynamics) == 0 {
		return nil, errf(spec.Pos, "motif %q: need one dynamic hop ('=>')", spec.Name)
	}
	for _, d := range dynamics[1:] {
		if d.From != dynamics[0].From || d.To != dynamics[0].To {
			return nil, errf(d.Pos,
				"motif %q: more than one dynamic hop (%s=>%s and %s=>%s); only per-type windows over the same hop may repeat",
				spec.Name, dynamics[0].From, dynamics[0].To, d.From, d.To)
		}
	}
	support, item := dynamics[0].From, dynamics[0].To

	// Per-trigger-type windows: each dynamic clause contributes its types
	// at its window; a type declared twice is ambiguous.
	windowMS, err := typeWindowsOf(spec.Name, dynamics)
	if err != nil {
		return nil, err
	}

	// The static hops must form one simple chain USER -> ... -> SUPPORT.
	user, depth, err := chainOf(spec, statics, support)
	if err != nil {
		return nil, err
	}

	// Emit must be ITEM to USER (via SUPPORT).
	if spec.Emit.Item != item {
		return nil, errf(spec.Emit.Pos,
			"motif %q: emit item %q must be the dynamic hop target %q", spec.Name, spec.Emit.Item, item)
	}
	if spec.Emit.User != user {
		return nil, errf(spec.Emit.Pos,
			"motif %q: emit recipient %q must be the chain source %q", spec.Name, spec.Emit.User, user)
	}
	if spec.Emit.Via != "" {
		if spec.Emit.Via != support {
			return nil, errf(spec.Emit.Pos,
				"motif %q: emit via %q must be the support variable %q", spec.Name, spec.Emit.Via, support)
		}
		if depth > 2 {
			return nil, errf(spec.Emit.Pos,
				"motif %q: via attribution is not tracked through %d-hop chains; omit 'via'", spec.Name, depth)
		}
	}

	// Threshold: exactly one where clause, over the support variable.
	k := 0
	for _, w := range spec.Wheres {
		if w.Var != support {
			return nil, errf(w.Pos,
				"motif %q: count(%s) is not supported; the threshold must be over the support variable %q",
				spec.Name, w.Var, support)
		}
		if k != 0 {
			return nil, errf(w.Pos, "motif %q: duplicate count(%s) constraint", spec.Name, support)
		}
		k = w.Min
	}
	if k == 0 {
		return nil, errf(spec.Pos,
			"motif %q: missing 'where count(%s) >= k' support threshold", spec.Name, support)
	}

	fanout, maxCands := 0, 0
	for _, l := range spec.Limits {
		switch l.What {
		case "fanout":
			fanout = l.N
		case "candidates":
			maxCands = l.N
		}
	}

	p := &Plan{Spec: spec, depth: depth}
	p.estimate(live)
	p.build(k, windowMS, fanout, maxCands)

	prog, err := motif.NewPlannedProgram(spec.Name, p.Ops)
	if err != nil {
		return nil, errf(spec.Pos, "motif %q: %v", spec.Name, err)
	}
	p.prog = prog
	p.ShareKey = prog.ShareKey()
	return p, nil
}

// typeWindowsOf merges the dynamic clauses into one per-trigger-type
// window table. A clause without explicit types means follow-only, and a
// clause without 'within' gets the default window. Note the window gates
// the *probe* at the trigger's type: the in-window actor scan counts every
// recent actor on the target regardless of which action they took, exactly
// like the hand-written detectors.
func typeWindowsOf(name string, dynamics []*MatchClause) ([motif.NumEdgeTypes]int64, error) {
	var windowMS [motif.NumEdgeTypes]int64
	for _, d := range dynamics {
		types, err := edgeTypesOf(d)
		if err != nil {
			return windowMS, err
		}
		if len(types) == 0 {
			types = []graph.EdgeType{graph.Follow}
		}
		w := d.Window
		if w <= 0 {
			w = defaultWindow
		}
		for _, t := range types {
			if windowMS[t] != 0 {
				return windowMS, errf(d.Pos,
					"motif %q: duplicate window for edge type %s", name, t)
			}
			windowMS[t] = w.Milliseconds()
		}
	}
	return windowMS, nil
}

// chainOf validates that the static hops form one simple chain ending at
// the support variable and returns the chain's source (the user) and its
// length.
func chainOf(spec *Spec, statics []*MatchClause, support string) (string, int, error) {
	if len(statics) == 0 {
		return "", 0, errf(spec.Pos, "motif %q: need one static hop ('->')", spec.Name)
	}
	if len(statics) > maxChainDepth {
		return "", 0, errf(statics[maxChainDepth].Pos,
			"motif %q: static chains support at most %d hops, got %d", spec.Name, maxChainDepth, len(statics))
	}
	byFrom := make(map[string]*MatchClause, len(statics))
	isTo := make(map[string]bool, len(statics))
	for _, m := range statics {
		if byFrom[m.From] != nil {
			return "", 0, errf(m.Pos,
				"motif %q: static hops branch at %q; they must form a single chain", spec.Name, m.From)
		}
		byFrom[m.From] = m
		isTo[m.To] = true
	}
	start := ""
	for _, m := range statics {
		if !isTo[m.From] {
			if start != "" {
				return "", 0, errf(m.Pos,
					"motif %q: hops do not chain: static hops start at both %q and %q", spec.Name, start, m.From)
			}
			start = m.From
		}
	}
	if start == "" {
		return "", 0, errf(statics[0].Pos, "motif %q: static hops form a cycle", spec.Name)
	}
	at, steps := start, 0
	for byFrom[at] != nil {
		at = byFrom[at].To
		steps++
		if steps > len(statics) {
			break
		}
	}
	if steps != len(statics) || at != support {
		return "", 0, errf(spec.Pos,
			"motif %q: hops do not chain: static hops must form %s -> ... -> %s (the dynamic hop source)",
			spec.Name, start, support)
	}
	return start, len(statics), nil
}

// estimate pulls probe-cost estimates from the live degree view, falling
// back to cold-start defaults below the sample floor.
func (p *Plan) estimate(live *graph.LiveDegreeStats) {
	p.estDyn, p.estStatic = coldDynIn, coldStatic
	if live != nil && live.DynIn.N() >= liveMinSample && live.Static.N() >= liveMinSample {
		p.estDyn = live.DynIn.Quantile(0.90)
		p.estStatic = live.Static.Quantile(0.50)
		p.estLive = true
	}
}

// build emits the op sequence using the greedy ordering rule: among the
// dataflow-valid probe orders, take the probe with the smallest expected
// output first and place the threshold at the narrowest point. With one
// dynamic and one static probe family there are two valid pipelines —
// window-probe-first, or (when the trigger alone satisfies the threshold)
// no window probe at all — and the estimates decide the text of the
// rationale while the k=1 prune decides the shape.
func (p *Plan) build(k int, windowMS [motif.NumEdgeTypes]int64, fanout, maxCands int) {
	filter := motif.Op{Kind: motif.OpFilterTrigger, WindowMS: windowMS}
	expandCap := fanout
	if expandCap <= 0 {
		expandCap = defaultExpandCap
	}
	if k == 1 {
		// The trigger edge is itself the single in-window support: the
		// dynamic-window probe and the threshold-intersect are pruned, the
		// window constraint is vacuously satisfied, and the plan reads no
		// dynamic state at all.
		p.Ops = append(p.Ops, filter, motif.Op{Kind: motif.OpBindTrigger})
		p.note("k=1 prune: the trigger edge is always its own in-window support — dynamic-window probe and threshold-intersect eliminated ('within' is vacuously satisfied)")
	} else {
		effDyn := p.estDyn
		if fanout > 0 && fanout < effDyn {
			effDyn = fanout
		}
		p.Ops = append(p.Ops,
			filter,
			motif.Op{Kind: motif.OpProbeDynamic, K: k, Limit: fanout},
			motif.Op{Kind: motif.OpProbeStatic},
			motif.Op{Kind: motif.OpThreshold, K: k},
		)
		p.note("dynamic-window probe ordered first: expected %d in-window actors/event (%s) vs %d followers per static list (%s) — the window filter is the most selective probe and early-exits below k=%d",
			effDyn, p.estSource("p90 in-degree"), p.estStatic, p.estSource("p50 list length"), k)
		p.note("threshold-intersect k=%d placed at the narrowest point, before any chain expansion", k)
	}
	for i := 1; i < p.depth; i++ {
		p.Ops = append(p.Ops, motif.Op{Kind: motif.OpExpand, Limit: expandCap})
	}
	if p.depth > 1 {
		p.note("chain depth %d: %d expansion hop(s) after the threshold, survivors capped at %d per hop",
			p.depth, p.depth-1, expandCap)
	}
	p.Ops = append(p.Ops, motif.Op{Kind: motif.OpEmit, Limit: maxCands})
}

func (p *Plan) note(format string, args ...interface{}) {
	p.notes = append(p.notes, fmt.Sprintf(format, args...))
}

func (p *Plan) estSource(what string) string {
	if p.estLive {
		return "live " + what
	}
	return "cold-start default"
}

// edgeTypesOf resolves the dynamic hop's type names.
func edgeTypesOf(m *MatchClause) ([]graph.EdgeType, error) {
	if len(m.EdgeTypes) == 0 {
		return nil, nil // defaults to follow
	}
	out := make([]graph.EdgeType, 0, len(m.EdgeTypes))
	for _, name := range m.EdgeTypes {
		switch name {
		case "follow":
			out = append(out, graph.Follow)
		case "retweet":
			out = append(out, graph.Retweet)
		case "favorite":
			out = append(out, graph.Favorite)
		default:
			return nil, errf(m.Pos, "unknown edge type %q (want follow, retweet, or favorite)", name)
		}
	}
	return out, nil
}

// Program returns the runnable interpreted program for the plan.
func (p *Plan) Program() motif.Program { return p.prog }

// Planned returns the typed planned program (the same object Program
// returns).
func (p *Plan) Planned() *motif.PlannedProgram { return p.prog }

// Describe renders the plan as a multi-line EXPLAIN: the probe order with
// cost estimates, the sharing group, and the greedy rationale.
func (p *Plan) Describe() string {
	var b strings.Builder
	shape := "k-of-n diamond"
	if p.prog.TriggerOnly() {
		shape = "fresh-follow broadcast (k=1)"
	}
	if p.depth > 1 {
		shape += fmt.Sprintf(", chain depth %d", p.depth)
	}
	fmt.Fprintf(&b, "plan %q (%s)\n", p.Spec.Name, shape)
	b.WriteString("  probe order (greedy, statistics-free):\n")
	for i, op := range p.Ops {
		fmt.Fprintf(&b, "    %d. %s", i+1, p.describeOp(op))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  sharing: key %s — plans with this key run the trigger filter and D/S probes once per event\n", p.ShareKey)
	b.WriteString("  rationale:\n")
	for _, n := range p.notes {
		fmt.Fprintf(&b, "    - %s\n", n)
	}
	return b.String()
}

func (p *Plan) describeOp(op motif.Op) string {
	switch op.Kind {
	case motif.OpFilterTrigger:
		var parts []string
		for t := 0; t < motif.NumEdgeTypes; t++ {
			if op.WindowMS[t] > 0 {
				parts = append(parts, fmt.Sprintf("%s(within %s)",
					graph.EdgeType(t), time.Duration(op.WindowMS[t])*time.Millisecond))
			}
		}
		return "filter-trigger: " + strings.Join(parts, ", ")
	case motif.OpBindTrigger:
		return "bind-trigger: the acting B is the single support; S.followers(B) is the frontier"
	case motif.OpProbeDynamic:
		s := fmt.Sprintf("probe-dynamic D.recent(item): est ~%d in-window actors (%s), early-exit < %d",
			p.estDyn, p.estSource("p90 in-degree"), op.K)
		if op.Limit > 0 {
			s += fmt.Sprintf(", fanout cap %d", op.Limit)
		}
		return s
	case motif.OpProbeStatic:
		return fmt.Sprintf("probe-static S.followers(B) per actor: est ~%d followers/list (%s)",
			p.estStatic, p.estSource("p50 list length"))
	case motif.OpThreshold:
		return fmt.Sprintf("threshold-intersect k=%d over the follower lists", op.K)
	case motif.OpExpand:
		return fmt.Sprintf("expand: one static hop toward the user (union of survivor follower lists, cap %d)", op.Limit)
	case motif.OpEmit:
		s := "emit item -> user with via attribution"
		if op.Limit > 0 {
			s += fmt.Sprintf(" (candidate cap %d)", op.Limit)
		}
		return s
	default:
		return op.Kind.String()
	}
}
