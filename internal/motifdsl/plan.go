package motifdsl

import (
	"fmt"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

// Plan is a validated, executable form of a Spec. The currently supported
// plan family is the paper's diamond: one static hop USER->SUPPORT resolved
// in S, one dynamic hop SUPPORT=>ITEM over the stream, a support threshold,
// and an emit of ITEM to USER. The planner's job is to recognize that
// family regardless of the variable names used, reject what the engine
// cannot run, and choose the execution parameters.
type Plan struct {
	Spec *Spec
	// Diamond holds the compiled configuration when K >= 2.
	Diamond *motif.DiamondConfig
	// FreshFollow is set instead when the threshold is 1.
	FreshFollow *motif.FreshFollow
}

// Compile parses src and plans every declaration into runnable programs.
func Compile(src string) ([]motif.Program, error) {
	specs, err := Parse(src)
	if err != nil {
		return nil, err
	}
	out := make([]motif.Program, 0, len(specs))
	for _, s := range specs {
		p, err := PlanSpec(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p.Program())
	}
	return out, nil
}

// CompileOne parses and plans exactly one declaration.
func CompileOne(src string) (motif.Program, error) {
	spec, err := ParseOne(src)
	if err != nil {
		return nil, err
	}
	p, err := PlanSpec(spec)
	if err != nil {
		return nil, err
	}
	return p.Program(), nil
}

// defaultWindow applies when a dynamic hop omits 'within'.
const defaultWindow = 10 * time.Minute

// PlanSpec semantically checks spec and produces a Plan.
func PlanSpec(spec *Spec) (*Plan, error) {
	if len(spec.Matches) != 2 {
		return nil, errf(spec.Pos,
			"motif %q: the engine supports exactly two hops (one static, one dynamic), got %d",
			spec.Name, len(spec.Matches))
	}
	var static, dynamic *MatchClause
	for i := range spec.Matches {
		m := &spec.Matches[i]
		switch m.Kind {
		case StaticHop:
			if static != nil {
				return nil, errf(m.Pos, "motif %q: more than one static hop", spec.Name)
			}
			static = m
		case DynamicHop:
			if dynamic != nil {
				return nil, errf(m.Pos, "motif %q: more than one dynamic hop", spec.Name)
			}
			dynamic = m
		}
	}
	if static == nil {
		return nil, errf(spec.Pos, "motif %q: need one static hop ('->')", spec.Name)
	}
	if dynamic == nil {
		return nil, errf(spec.Pos, "motif %q: need one dynamic hop ('=>')", spec.Name)
	}
	// The hops must chain: USER -> SUPPORT => ITEM.
	if static.To != dynamic.From {
		return nil, errf(dynamic.Pos,
			"motif %q: hops do not chain: static hop ends at %q but dynamic hop starts at %q",
			spec.Name, static.To, dynamic.From)
	}
	user, support, item := static.From, static.To, dynamic.To

	// Emit must be ITEM to USER (via SUPPORT).
	if spec.Emit.Item != item {
		return nil, errf(spec.Emit.Pos,
			"motif %q: emit item %q must be the dynamic hop target %q", spec.Name, spec.Emit.Item, item)
	}
	if spec.Emit.User != user {
		return nil, errf(spec.Emit.Pos,
			"motif %q: emit recipient %q must be the static hop source %q", spec.Name, spec.Emit.User, user)
	}
	if spec.Emit.Via != "" && spec.Emit.Via != support {
		return nil, errf(spec.Emit.Pos,
			"motif %q: emit via %q must be the support variable %q", spec.Name, spec.Emit.Via, support)
	}

	// Threshold: exactly one where clause, over the support variable.
	k := 0
	for _, w := range spec.Wheres {
		if w.Var != support {
			return nil, errf(w.Pos,
				"motif %q: count(%s) is not supported; the threshold must be over the support variable %q",
				spec.Name, w.Var, support)
		}
		if k != 0 {
			return nil, errf(w.Pos, "motif %q: duplicate count(%s) constraint", spec.Name, support)
		}
		k = w.Min
	}
	if k == 0 {
		return nil, errf(spec.Pos,
			"motif %q: missing 'where count(%s) >= k' support threshold", spec.Name, support)
	}

	types, err := edgeTypesOf(dynamic)
	if err != nil {
		return nil, err
	}
	window := dynamic.Window
	if window <= 0 {
		window = defaultWindow
	}

	fanout, maxCands := 0, 0
	for _, l := range spec.Limits {
		switch l.What {
		case "fanout":
			fanout = l.N
		case "candidates":
			maxCands = l.N
		}
	}

	plan := &Plan{Spec: spec}
	if k == 1 {
		if len(types) > 0 {
			for _, t := range types {
				if t != graph.Follow {
					return nil, errf(dynamic.Pos,
						"motif %q: k=1 plans support follow edges only", spec.Name)
				}
			}
		}
		plan.FreshFollow = &motif.FreshFollow{MaxCandidates: maxCands}
		return plan, nil
	}
	plan.Diamond = &motif.DiamondConfig{
		Name:          spec.Name,
		K:             k,
		Window:        window,
		EdgeTypes:     types,
		MaxFanout:     fanout,
		MaxCandidates: maxCands,
	}
	return plan, nil
}

// edgeTypesOf resolves the dynamic hop's type names.
func edgeTypesOf(m *MatchClause) ([]graph.EdgeType, error) {
	if len(m.EdgeTypes) == 0 {
		return nil, nil // defaults to follow in DiamondConfig
	}
	out := make([]graph.EdgeType, 0, len(m.EdgeTypes))
	for _, name := range m.EdgeTypes {
		switch name {
		case "follow":
			out = append(out, graph.Follow)
		case "retweet":
			out = append(out, graph.Retweet)
		case "favorite":
			out = append(out, graph.Favorite)
		default:
			return nil, errf(m.Pos, "unknown edge type %q (want follow, retweet, or favorite)", name)
		}
	}
	return out, nil
}

// Program instantiates the runnable motif program for the plan.
func (p *Plan) Program() motif.Program {
	if p.FreshFollow != nil {
		return p.FreshFollow
	}
	return motif.NewDiamond(*p.Diamond)
}

// Describe returns a human-readable query-plan summary, the moral
// equivalent of EXPLAIN.
func (p *Plan) Describe() string {
	if p.FreshFollow != nil {
		return fmt.Sprintf("plan %q: fresh-follow broadcast (k=1), S-lookup per event", p.Spec.Name)
	}
	d := p.Diamond
	types := "follow"
	if len(d.EdgeTypes) > 0 {
		types = ""
		for i, t := range d.EdgeTypes {
			if i > 0 {
				types += ","
			}
			types += t.String()
		}
	}
	return fmt.Sprintf(
		"plan %q: diamond k=%d window=%s types=%s; per event: D-lookup(item) -> S-lookup(supports) -> %d-threshold intersect (fanout cap %d, candidate cap %d)",
		p.Spec.Name, d.K, d.Window, types, d.K, d.MaxFanout, d.MaxCandidates)
}
