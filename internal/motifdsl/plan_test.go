package motifdsl

import (
	"strings"
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

func TestPlanDiamond(t *testing.T) {
	p, err := CompileOne(validDiamond)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := p.(*motif.Diamond)
	if !ok {
		t.Fatalf("program type %T, want *motif.Diamond", p)
	}
	cfg := d.Config()
	if cfg.K != 3 || cfg.Window != 10*time.Minute || cfg.MaxFanout != 64 || cfg.MaxCandidates != 100 {
		t.Fatalf("config = %+v", cfg)
	}
	if d.Name() != "diamond" {
		t.Fatalf("name = %q", d.Name())
	}
}

func TestPlanDefaultWindow(t *testing.T) {
	p, err := CompileOne(`
motif "x" {
    match A -> B;
    match B => C;
    where count(B) >= 2;
    emit C to A;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.(*motif.Diamond).Config().Window; got != defaultWindow {
		t.Fatalf("window = %v, want default %v", got, defaultWindow)
	}
}

func TestPlanK1CompilesToFreshFollow(t *testing.T) {
	p, err := CompileOne(`
motif "broadcast" {
    match A -> B;
    match B =[follow]=> C;
    where count(B) >= 1;
    emit C to A;
    limit candidates 10;
}`)
	if err != nil {
		t.Fatal(err)
	}
	ff, ok := p.(*motif.FreshFollow)
	if !ok {
		t.Fatalf("program type %T, want *motif.FreshFollow", p)
	}
	if ff.MaxCandidates != 10 {
		t.Fatalf("MaxCandidates = %d", ff.MaxCandidates)
	}
}

func TestPlanK1RejectsContentTypes(t *testing.T) {
	_, err := CompileOne(`
motif "bad" {
    match A -> B;
    match B =[retweet]=> C;
    where count(B) >= 1;
    emit C to A;
}`)
	if err == nil || !strings.Contains(err.Error(), "follow edges only") {
		t.Fatalf("err = %v", err)
	}
}

func TestPlanVariableNamesAreFree(t *testing.T) {
	// Any identifiers work as long as the roles chain correctly.
	p, err := CompileOne(`
motif "renamed" {
    match user -> influencer;
    match influencer =[favorite]=> tweet within 2m;
    where count(influencer) >= 2;
    emit tweet to user via influencer;
}`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.(*motif.Diamond).Config()
	if cfg.K != 2 || len(cfg.EdgeTypes) != 1 || cfg.EdgeTypes[0] != graph.Favorite {
		t.Fatalf("config = %+v", cfg)
	}
}

func TestPlanSemanticErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{
			"one hop",
			`motif "x" { match A -> B; where count(B) >= 2; emit B to A; }`,
			"exactly two hops",
		},
		{
			"two static hops",
			`motif "x" { match A -> B; match B -> C; where count(B) >= 2; emit C to A; }`,
			"more than one static hop",
		},
		{
			"two dynamic hops",
			`motif "x" { match A => B; match B => C; where count(B) >= 2; emit C to A; }`,
			"more than one dynamic hop",
		},
		{
			"hops do not chain",
			`motif "x" { match A -> B; match X => C; where count(X) >= 2; emit C to A; }`,
			"do not chain",
		},
		{
			"emit wrong item",
			`motif "x" { match A -> B; match B => C; where count(B) >= 2; emit B to A; }`,
			"emit item",
		},
		{
			"emit wrong user",
			`motif "x" { match A -> B; match B => C; where count(B) >= 2; emit C to B; }`,
			"recipient",
		},
		{
			"emit wrong via",
			`motif "x" { match A -> B; match B => C; where count(B) >= 2; emit C to A via C; }`,
			"via",
		},
		{
			"threshold on wrong var",
			`motif "x" { match A -> B; match B => C; where count(A) >= 2; emit C to A; }`,
			"support variable",
		},
		{
			"no threshold",
			`motif "x" { match A -> B; match B => C; emit C to A; }`,
			"missing",
		},
		{
			"duplicate threshold",
			`motif "x" { match A -> B; match B => C; where count(B) >= 2; where count(B) >= 3; emit C to A; }`,
			"duplicate",
		},
		{
			"unknown edge type",
			`motif "x" { match A -> B; match B =[poke]=> C; where count(B) >= 2; emit C to A; }`,
			"unknown edge type",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := CompileOne(c.src)
			if err == nil {
				t.Fatal("compile succeeded")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err.Error(), c.wantSub)
			}
		})
	}
}

func TestCompileMultiple(t *testing.T) {
	progs, err := Compile(validDiamond + `
motif "content" {
    match A -> B;
    match B =[retweet,favorite]=> C within 5m;
    where count(B) >= 3;
    emit C to A via B;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("%d programs", len(progs))
	}
	if progs[0].Name() != "diamond" || progs[1].Name() != "content" {
		t.Fatalf("names = %q, %q", progs[0].Name(), progs[1].Name())
	}
}

func TestPlanDescribe(t *testing.T) {
	spec, err := ParseOne(validDiamond)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	desc := plan.Describe()
	for _, want := range []string{"diamond", "k=3", "10m", "follow"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe() = %q missing %q", desc, want)
		}
	}
	// FreshFollow plans describe themselves too.
	spec2, _ := ParseOne(`
motif "b" {
    match A -> B;
    match B => C;
    where count(B) >= 1;
    emit C to A;
}`)
	plan2, err := PlanSpec(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan2.Describe(), "fresh-follow") {
		t.Fatalf("Describe() = %q", plan2.Describe())
	}
}

// TestCompiledProgramDetects is the end-to-end DSL test: the compiled
// diamond detects the paper's Figure 1 motif exactly like the hand-coded
// one (the E10 equivalence property, in miniature).
func TestCompiledProgramDetects(t *testing.T) {
	prog, err := CompileOne(`
motif "fig1" {
    match A -> B;
    match B =[follow]=> C within 10m;
    where count(B) >= 2;
    emit C to A via B;
}`)
	if err != nil {
		t.Fatal(err)
	}
	b := &statstore.Builder{}
	s := statstore.New(b.Build([]graph.Edge{
		{Src: 1, Dst: 10}, {Src: 2, Dst: 10},
		{Src: 2, Dst: 11}, {Src: 3, Dst: 11},
	}))
	d := dynstore.New(dynstore.Options{Retention: time.Hour})
	ctx := &motif.Context{S: s, D: d}
	t0 := int64(1_000_000)
	e1 := graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0}
	e2 := graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1_000}
	d.Insert(e1)
	if got := prog.OnEdge(ctx, e1); len(got) != 0 {
		t.Fatalf("premature: %v", got)
	}
	d.Insert(e2)
	got := prog.OnEdge(ctx, e2)
	if len(got) != 1 || got[0].User != 2 || got[0].Item != 99 {
		t.Fatalf("candidates = %v", got)
	}
	if got[0].Program != "fig1" {
		t.Fatalf("program label = %q", got[0].Program)
	}
}
